// Pedestrian tracking with the two-timescale EBBI (future-work feature).
//
// Section IV: the base pipeline does not track "slow and small objects
// like humans" because a 66 ms window catches only a sliver of events
// from a sub-pixel-per-frame walker.  The proposed fix — "a second frame
// ... with longer exposure times" — is implemented by
// TwoTimescaleBuilder.  This demo runs both frames through identical
// RPN+tracker stages and prints the recall gap.
#include <cstdio>
#include <memory>

#include "src/core/pipeline.hpp"
#include "src/ebbi/two_timescale.hpp"
#include "src/eval/metrics.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/ground_truth.hpp"
#include "src/sim/scene.hpp"

namespace {

using namespace ebbiot;

struct SidewalkWorld {
  SidewalkWorld() : scene(240, 180) {
    scene.addLinear(ObjectClass::kHuman, BBox{-8, 100, 8, 20}, Vec2f{4, 0},
                    0, secondsToUs(40.0));
    scene.addLinear(ObjectClass::kHuman, BBox{240, 125, 8, 21},
                    Vec2f{-3.5F, 0}, secondsToUs(3.0), secondsToUs(40.0));
    // A car passes too: the fast frame must keep working for it.
    scene.addLinear(ObjectClass::kCar, BBox{-48, 40, 48, 22}, Vec2f{65, 0},
                    secondsToUs(8.0), secondsToUs(40.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.15;
    config.seed = 23;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

}  // namespace

int main() {
  std::printf("Two-timescale pedestrian demo — humans at ~0.25 px/frame\n\n");

  constexpr int kSlowFactor = 4;  // 4 x 66 ms = 264 ms exposure
  SidewalkWorld world;
  TwoTimescaleBuilder frames(240, 180, kSlowFactor);
  MedianFilter median(3);
  HistogramRpn rpnFast{HistogramRpnConfig{}};
  HistogramRpn rpnSlow{HistogramRpnConfig{}};
  OverlapTrackerConfig trackerConfig;
  trackerConfig.minSeedArea = 6.0F;
  OverlapTracker fastTracker(trackerConfig);
  OverlapTracker slowTracker(trackerConfig);
  PrSweepAccumulator fastScore({0.2F});
  PrSweepAccumulator slowScore({0.2F});

  BinaryImage filtered(240, 180);
  const auto frameCount = static_cast<std::size_t>(
      secondsToUs(35.0) / kDefaultFramePeriodUs);
  for (std::size_t f = 0; f < frameCount; ++f) {
    const EventPacket window = latchReadout(
        world.synth->nextWindow(kDefaultFramePeriodUs), 240, 180);
    frames.addWindow(window);

    // Humans only in the ground truth for the pedestrian score.
    GtFrame gt = annotateScene(world.scene, window.tEnd());
    GtFrame humansOnly{gt.t, {}};
    for (const GtBox& b : gt.boxes) {
      if (b.kind == ObjectClass::kHuman) {
        humansOnly.boxes.push_back(b);
      }
    }

    median.applyInto(frames.fastFrame(), filtered);
    fastScore.addFrame(fastTracker.update(rpnFast.propose(filtered)),
                       humansOnly.boxes);
    median.applyInto(frames.slowFrame(), filtered);
    slowScore.addFrame(slowTracker.update(rpnSlow.propose(filtered)),
                       humansOnly.boxes);
  }

  const PrCounts& fast = fastScore.counts()[0];
  const PrCounts& slow = slowScore.counts()[0];
  std::printf("Pedestrian recall at IoU 0.2 over 35 s:\n");
  std::printf("  fast frame  (tF = 66 ms):        %.3f  (precision %.3f)\n",
              fast.recall(), fast.precision());
  std::printf("  slow frame  (%d x tF = %d ms):   %.3f  (precision %.3f)\n",
              kSlowFactor, kSlowFactor * 66, slow.recall(),
              slow.precision());
  std::printf("\nThe long exposure integrates enough events for the "
              "median filter and RPN to\nsee the walker; the fast frame "
              "stays responsive for vehicles.  A production\nnode runs "
              "both, as the paper's future-work section proposes.\n");
  return 0;
}
