// File replay — the record / annotate / replay / analyse workflow.
//
// 1. record:   synthesize 20 s of traffic, save the event stream (.ebbt)
//              and its ground truth (.csv);
// 2. replay:   read both back, run the EBBIOT pipeline on the recorded
//              events (exactly what a deployment replaying field data
//              does), logging the output tracks;
// 3. analyse:  score the tracks, export the track log CSV, estimate
//              per-track speeds, and dump a debug frame as PPM.
//
// Everything goes through the public file APIs, so this example doubles
// as an end-to-end IO smoke test.
#include <cstdio>
#include <fstream>

#include "src/core/pipeline.hpp"
#include "src/eval/metrics.hpp"
#include "src/eval/track_log.hpp"
#include "src/events/stream_io.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/recording.hpp"
#include "src/viz/render.hpp"

int main() {
  using namespace ebbiot;
  const std::string dir = "/tmp/ebbiot_replay";
  (void)std::system(("mkdir -p " + dir).c_str());

  // ---- 1. Record.
  RecordingSpec spec = makeSyntheticEng(29);
  spec.durationS = 20.0;
  Recording rec = openRecording(spec);
  const auto frames = static_cast<std::size_t>(
      secondsToUs(spec.durationS) / spec.framePeriod);
  EventPacket everything(0, secondsToUs(spec.durationS));
  for (std::size_t f = 0; f < frames; ++f) {
    everything.append(rec.source->nextWindow(spec.framePeriod));
  }
  everything.sortByTime();
  const std::string eventsPath = dir + "/traffic.ebbt";
  writeBinaryStreamFile(eventsPath, everything, 240, 180);

  GtOptions gtOptions;
  gtOptions.minVisibleFraction = 0.10F;
  const GroundTruth gt = rec.scenario->groundTruth(spec.framePeriod,
                                                   gtOptions);
  const std::string gtPath = dir + "/traffic_gt.csv";
  {
    std::ofstream os(gtPath);
    writeGroundTruthCsv(os, gt);
  }
  std::printf("recorded:  %zu events -> %s\n", everything.size(),
              eventsPath.c_str());
  std::printf("annotated: %zu boxes over %zu frames -> %s\n",
              gt.totalBoxes(), gt.frames.size(), gtPath.c_str());

  // ---- 2. Replay through the pipeline.
  const BinaryStreamContents recorded = readBinaryStreamFile(eventsPath);
  GroundTruth gtBack;
  {
    std::ifstream is(gtPath);
    gtBack = readGroundTruthCsv(is);
  }
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  TrackLog log;
  PrSweepAccumulator score({0.1F, 0.3F, 0.5F});
  RgbImage snapshot;
  // The ground-truth CSV only stores instants that had boxes, so walk all
  // frame windows and look the annotations up by timestamp.
  std::size_t gtIndex = 0;
  const std::vector<GtBox> kNoBoxes;
  for (std::size_t f = 0; f < frames; ++f) {
    const TimeUs t0 = static_cast<TimeUs>(f) * spec.framePeriod;
    const TimeUs tEnd = t0 + spec.framePeriod;
    const EventPacket window =
        latchReadout(recorded.packet.slice(t0, tEnd), 240, 180);
    const Tracks tracks = pipeline.processWindow(window);
    log.addFrame(tEnd, tracks);
    while (gtIndex < gtBack.frames.size() &&
           gtBack.frames[gtIndex].t < tEnd) {
      ++gtIndex;
    }
    const std::vector<GtBox>& boxes =
        (gtIndex < gtBack.frames.size() && gtBack.frames[gtIndex].t == tEnd)
            ? gtBack.frames[gtIndex].boxes
            : kNoBoxes;
    score.addFrame(tracks, boxes);
    if (f == frames / 2) {
      FrameOverlay overlay;
      overlay.tracks = &tracks;
      overlay.groundTruth = &boxes;
      snapshot = renderFrame(pipeline.lastEbbi(), overlay);
    }
  }

  // ---- 3. Analyse and export.
  const std::string tracksPath = dir + "/tracks.csv";
  {
    std::ofstream os(tracksPath);
    writeTrackLogCsv(os, log);
  }
  const std::string framePath = dir + "/frame.ppm";
  writePpmFile(framePath, snapshot);

  std::printf("replayed:  %zu frames, %zu track boxes -> %s\n",
              log.frameCount(), log.totalBoxes(), tracksPath.c_str());
  std::printf("snapshot:  %s (events gray, tracks red, ground truth "
              "green)\n\n",
              framePath.c_str());

  std::printf("score:     ");
  for (std::size_t i = 0; i < score.thresholds().size(); ++i) {
    std::printf("P/R@%.1f = %.2f/%.2f   ", score.thresholds()[i],
                score.counts()[i].precision(), score.counts()[i].recall());
  }
  std::printf("\n\nper-track mean speeds (px/frame):\n");
  int shown = 0;
  for (const auto& [id, points] : log.trajectories()) {
    if (points.size() < 15 || shown >= 8) {
      continue;
    }
    std::printf("  track %-4u %5zu samples, %.2f px/frame\n", id,
                points.size(), log.meanSpeed(id, spec.framePeriod));
    ++shown;
  }
  return 0;
}
