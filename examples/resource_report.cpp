// Resource report — size an EBBIOT deployment before building it.
//
// Takes a sensor geometry and operating point (how busy the scene is,
// how noisy the sensor) and prints the full Eq. (1)-(8) budget for the
// three candidate pipelines, plus a recommendation.  This is the
// "IoT node datasheet" use of the paper's cost models.
#include <cstdio>

#include "src/resource/cost_model.hpp"

namespace {

void report(const char* title, ebbiot::SensorGeometry geometry, double alpha,
            double beta, double eventsPerFrameAfterFilter) {
  using namespace ebbiot;
  PipelineCostParams params;
  params.ebbi.geometry = geometry;
  params.ebbi.alpha = alpha;
  params.nnFilt.geometry = geometry;
  params.nnFilt.alpha = alpha;
  params.nnFilt.beta = beta;
  params.rpn.geometry = geometry;
  params.ebms.nF = eventsPerFrameAfterFilter;

  const CostEstimate ours = ebbiotPipelineCost(params);
  const CostEstimate kf = ebbiKfPipelineCost(params);
  const CostEstimate ebms = ebmsPipelineCost(params);

  std::printf("%s  (%d x %d, alpha=%.2f, beta=%.1f, NF=%.0f)\n", title,
              geometry.width, geometry.height, alpha, beta,
              eventsPerFrameAfterFilter);
  std::printf("  %-16s %12s %12s\n", "pipeline", "kops/frame", "memory kB");
  std::printf("  %-16s %12.1f %12.2f\n", "EBBIOT",
              ours.computesPerFrame / 1e3, ours.memoryKB());
  std::printf("  %-16s %12.1f %12.2f\n", "EBBI+KF",
              kf.computesPerFrame / 1e3, kf.memoryKB());
  std::printf("  %-16s %12.1f %12.2f\n", "NN-filt+EBMS",
              ebms.computesPerFrame / 1e3, ebms.memoryKB());
  const char* pick =
      ours.computesPerFrame <= ebms.computesPerFrame ? "EBBIOT" : "EBMS";
  std::printf("  -> cheapest computes: %s (%.1fx margin)\n\n", pick,
              ebms.computesPerFrame > ours.computesPerFrame
                  ? ebms.computesPerFrame / ours.computesPerFrame
                  : ours.computesPerFrame / ebms.computesPerFrame);
}

}  // namespace

int main() {
  using namespace ebbiot;
  std::printf("EBBIOT deployment resource report\n");
  std::printf("=================================\n\n");

  // The paper's node: DAVIS240 at a busy junction.
  report("DAVIS240, busy junction (paper)", SensorGeometry{240, 180}, 0.10,
         2.0, 650.0);

  // A quiet residential street: far fewer events — the event-driven
  // chain becomes competitive in computes (its cost scales with events,
  // EBBIOT's with pixels), though not in memory.
  report("DAVIS240, quiet street", SensorGeometry{240, 180}, 0.01, 1.5,
         80.0);

  // A higher-resolution next-gen sensor at the same relative activity:
  // frame-domain costs grow with area; so do event counts.
  report("VGA sensor (640x480), busy", SensorGeometry{640, 480}, 0.10, 2.0,
         4800.0);

  std::printf("Rule of thumb: EBBIOT wins whenever the scene keeps the "
              "sensor busy\n(alpha*beta*A*B events/frame competitive with "
              "A*B pixel touches), and its\nmemory advantage (no "
              "timestamp map) holds everywhere.\n");
  return 0;
}
