// Traffic surveillance — the paper's headline scenario, end to end.
//
// Stochastic lane traffic (SyntheticENG preset), all three pipelines
// running side by side, live per-frame track listings for the first
// seconds, then a full precision/recall scorecard — a miniature of
// bench_fig4_precision_recall with human-readable output.
#include <cstdio>

#include "src/analytics/traffic_analytics.hpp"
#include "src/core/runner.hpp"
#include "src/eval/track_log.hpp"
#include "src/sim/recording.hpp"

namespace {

using namespace ebbiot;

void printAsciiFrame(const ScriptedScene*, const GtFrame& gt,
                     const Tracks& tracks) {
  // 60x12 character map of the 240x180 frame: '#' ground truth, 'o'
  // tracker box centres.
  char canvas[12][61];
  for (auto& row : canvas) {
    for (int x = 0; x < 60; ++x) {
      row[x] = '.';
    }
    row[60] = '\0';
  }
  auto plot = [&](const BBox& b, char c) {
    const int x0 = std::max(0, static_cast<int>(b.left() / 4.0F));
    const int x1 = std::min(59, static_cast<int>(b.right() / 4.0F));
    const int y0 = std::max(0, static_cast<int>(b.bottom() / 15.0F));
    const int y1 = std::min(11, static_cast<int>(b.top() / 15.0F));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        canvas[y][x] = c;
      }
    }
  };
  for (const GtBox& b : gt.boxes) {
    plot(b.box, '#');
  }
  for (const Track& t : tracks) {
    plot(t.box, 'o');
  }
  for (int y = 11; y >= 0; --y) {  // y grows upward
    std::printf("    %s\n", canvas[y]);
  }
}

}  // namespace

int main() {
  std::printf("EBBIOT traffic surveillance demo — SyntheticENG preset\n\n");

  RecordingSpec spec = makeSyntheticEng(21);
  spec.durationS = 45.0;
  Recording rec = openRecording(spec);

  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  PrSweepAccumulator accuracy(defaultIouSweep());
  TrackLog trackLog;

  const auto frames = static_cast<std::size_t>(
      secondsToUs(spec.durationS) / spec.framePeriod);
  for (std::size_t f = 0; f < frames; ++f) {
    const EventPacket stream = rec.source->nextWindow(spec.framePeriod);
    const EventPacket window = latchReadout(stream, 240, 180);
    const Tracks tracks = pipeline.processWindow(window);
    const GtFrame gt = annotateScene(*rec.scenario, stream.tEnd());
    accuracy.addFrame(tracks, gt.boxes);
    trackLog.addFrame(stream.tEnd(), tracks);

    if (f > 0 && f % 150 == 0) {  // every ~10 s
      std::printf("t = %.1f s: %zu events in window, %zu proposals, "
                  "%zu tracks / %zu GT objects\n",
                  usToSeconds(stream.tEnd()), stream.size(),
                  pipeline.lastProposals().size(), tracks.size(),
                  gt.boxes.size());
      printAsciiFrame(nullptr, gt, tracks);
      std::printf("    ('#' = ground truth, 'o' = EBBIOT track)\n\n");
    }
  }

  std::printf("Scorecard over %.0f s (%zu frames):\n", spec.durationS,
              frames);
  std::printf("  %-10s %10s %10s %10s\n", "IoU thr", "precision", "recall",
              "F1");
  for (std::size_t i = 0; i < accuracy.thresholds().size(); ++i) {
    const PrCounts& c = accuracy.counts()[i];
    std::printf("  %-10.2f %10.3f %10.3f %10.3f\n",
                accuracy.thresholds()[i], c.precision(), c.recall(),
                c.f1());
  }

  // What a deployment dashboard would compute from the uplinked tracks.
  const TrafficSummary summary = summarizeTraffic(trackLog, 120.0F);
  std::printf("\nAnalytics (counting line at x = 120, 4 px/m "
              "calibration):\n");
  std::printf("  tracks seen:        %zu\n", summary.tracksTotal);
  std::printf("  crossings L->R:     %zu\n", summary.countedLeftToRight);
  std::printf("  crossings R->L:     %zu\n", summary.countedRightToLeft);
  std::printf("  flow:               %.1f vehicles/min\n",
              summary.flowPerMinute);
  std::printf("  mean track speed:   %.1f km/h\n", summary.meanSpeedKmh);
  return 0;
}
