// Quickstart — the smallest complete EBBIOT application.
//
// Builds a scene with one car, simulates the DAVIS sensor, runs the
// EBBIOT pipeline (EBBI -> median -> histogram RPN -> overlap tracker)
// frame by frame, and prints the tracks.  ~40 lines of API surface.
#include <cstdio>

#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/scene.hpp"

int main() {
  using namespace ebbiot;

  // 1. A scene: one car crossing a 240x180 sensor at ~4 px/frame.
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{-48, 70, 48, 22}, Vec2f{60, 0},
                  0, secondsToUs(6.0));

  // 2. A sensor: the behavioural DAVIS simulator with default noise.
  DavisSimulator sensor(scene, DavisConfig{});

  // 3. The pipeline, at the paper's defaults (tF = 66 ms, p = 3,
  //    s1 x s2 = 6 x 3, NT = 8).
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};

  std::printf("frame |  tracks\n");
  std::printf("------+-----------------------------------------------\n");
  for (int frame = 0; frame < 60; ++frame) {
    // Duty-cycled readout: latch the window, wake, process, sleep.
    const EventPacket window =
        latchReadout(sensor.nextWindow(kDefaultFramePeriodUs), 240, 180);
    const Tracks tracks = pipeline.processWindow(window);
    if (frame % 10 != 9) {
      continue;
    }
    std::printf("%5d |", frame);
    for (const Track& t : tracks) {
      std::printf("  id=%u box=(%.0f,%.0f %.0fx%.0f) v=(%.1f,%.1f)px/fr",
                  t.id, t.box.x, t.box.y, t.box.w, t.box.h, t.velocity.x,
                  t.velocity.y);
    }
    std::printf("\n");
  }
  std::printf("\nDone.  See examples/traffic_surveillance.cpp for the "
              "full multi-object scenario.\n");
  return 0;
}
