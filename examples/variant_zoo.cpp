// Variant zoo — every registered pipeline, one recording, one call.
//
// Demonstrates the variant registry (src/core/variant_registry.hpp):
// makeRegistryRunnerConfig() asks runRecording() for *all registered
// variants* — the paper's three built-ins plus the EBBINNOT NN-filtered,
// hybrid-tracker and CCA back ends — and prints each variant's
// precision/recall and measured cost side by side.  Registering your own
// variant is the one add() call at the top.
#include <cstdio>
#include <memory>

#include "src/core/runner.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

int main() {
  using namespace ebbiot;

  // A custom variant rides along with one registration: the paper
  // pipeline with a 5x5 median patch.
  if (!variantRegistry().contains("EBBIOT-p5")) {
    variantRegistry().add(
        "EBBIOT-p5", "paper pipeline with a 5x5 median patch",
        [](const VariantContext& ctx) {
          EbbiotPipelineConfig config;
          config.width = ctx.width;
          config.height = ctx.height;
          config.medianPatch = 5;
          return std::make_unique<EbbiotPipeline>(config, "EBBIOT-p5");
        });
  }

  // Two vehicles crossing over light background noise.
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{-48, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(12.0));
  scene.addLinear(ObjectClass::kVan, BBox{240, 100, 60, 28}, Vec2f{-45, 0},
                  secondsToUs(1.0), secondsToUs(12.0));
  EventSynthConfig synthConfig;
  synthConfig.backgroundActivityHz = 0.3;
  synthConfig.seed = 17;
  FastEventSynth synth(scene, synthConfig);

  // One call evaluates the whole registry under the same protocol.
  const RunnerConfig config = makeRegistryRunnerConfig(240, 180);
  const RunResult run =
      runRecording(synth, scene, secondsToUs(10.0), config);

  std::printf("Variant zoo — %zu registered pipelines, %zu frames, "
              "%zu GT tracks\n\n",
              run.pipelines.size(), run.frames, run.gtTracks);
  std::printf("%-18s %10s %10s %10s %14s %14s\n", "variant", "P@0.3",
              "R@0.3", "F1@0.3", "kops/frame", "accesses/fr");
  std::printf("%.*s\n", 80,
              "----------------------------------------------------------"
              "----------------------");
  for (const PipelineRunStats& stats : run.pipelines) {
    const double frames = static_cast<double>(stats.frames);
    std::printf("%-18s %10.3f %10.3f %10.3f %14.1f %14.0f\n",
                stats.name.c_str(), stats.counts[2].precision(),
                stats.counts[2].recall(), stats.counts[2].f1(),
                stats.meanOpsPerFrame() / 1e3,
                frames > 0.0
                    ? static_cast<double>(stats.totalOps.memAccesses()) /
                          frames
                    : 0.0);
  }

  std::printf("\nDescriptions:\n");
  for (const VariantInfo& v : variantRegistry().variants()) {
    std::printf("  %-18s %s\n", v.key.c_str(), v.description.c_str());
  }
  return 0;
}
