// Occlusion lab — watch the overlap tracker's occlusion logic work.
//
// Two vehicles cross in opposite directions (the paper's dynamic
// occlusion case, Section II-C step 5).  The demo prints the tracker's
// state frame by frame through the approach, merge and separation, and
// verifies both identities survive — then repeats the run with the
// occlusion look-ahead disabled (n = 0 is approximated by merging
// whenever proposals collide) to show why the prediction step matters.
#include <cstdio>

#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace {

using namespace ebbiot;

struct CrossingWorld {
  CrossingWorld() : scene(240, 180) {
    scene.addLinear(ObjectClass::kCar, BBox{-48, 70, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(8.0));
    scene.addLinear(ObjectClass::kVan, BBox{240, 74, 60, 26},
                    Vec2f{-55, 0}, 0, secondsToUs(8.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.2;
    config.seed = 5;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

int runCrossing(int occlusionLookahead, bool verbose) {
  CrossingWorld world;
  EbbiotPipelineConfig config;
  config.tracker.occlusionLookahead = occlusionLookahead;
  EbbiotPipeline pipeline(config);

  std::uint32_t idA = 0;
  std::uint32_t idB = 0;
  int survivedBoth = 0;
  for (int f = 0; f < 110; ++f) {
    const EventPacket window = latchReadout(
        world.synth->nextWindow(kDefaultFramePeriodUs), 240, 180);
    const Tracks tracks = pipeline.processWindow(window);
    if (f == 25 && tracks.size() == 2) {  // before the crossing
      idA = tracks[0].id;
      idB = tracks[1].id;
    }
    if (verbose && f % 10 == 5) {
      std::printf("  frame %3d: ", f);
      for (const Track& t : tracks) {
        std::printf("[id=%u x=%5.1f v=%+4.1f%s] ", t.id, t.box.x,
                    t.velocity.x, t.occluded ? " OCC" : "");
      }
      std::printf("\n");
    }
    // Verify identities shortly after separation, while both vehicles
    // are still inside the frame (they exit around frames 73 and 83).
    if (f == 62) {
      bool sawA = false;
      bool sawB = false;
      for (const Track& t : tracks) {
        sawA = sawA || t.id == idA;
        sawB = sawB || t.id == idB;
      }
      survivedBoth = (idA != 0 && sawA && sawB) ? 1 : 0;
    }
  }
  return survivedBoth;
}

}  // namespace

int main() {
  std::printf("Occlusion lab — two vehicles crossing at ~7.5 px/frame "
              "closing speed\n\n");

  std::printf("With the paper's n = 2 look-ahead:\n");
  const int withLookahead = runCrossing(2, true);
  std::printf("  -> both identities survived the crossing: %s\n\n",
              withLookahead ? "YES" : "NO");

  std::printf("With a myopic n = 1 look-ahead (for contrast):\n");
  const int myopic = runCrossing(1, false);
  std::printf("  -> both identities survived the crossing: %s\n\n",
              myopic ? "YES" : "NO");

  std::printf("The look-ahead classifies a shared proposal as *occlusion* "
              "(coast both\ntrackers on their own velocity) rather than "
              "*fragmentation* (merge the\ntrackers), so crossings do not "
              "destroy identities.\n");
  return withLookahead ? 0 : 1;
}
