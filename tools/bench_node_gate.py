#!/usr/bin/env python3
"""Gate on BENCH_node.json, the ingest-resilience sweep emitted by
bench_iovt_node --json.

Usage:
    bench_iovt_node --json BENCH_node.json
    tools/bench_node_gate.py BENCH_node.json

All sweep counters are seed-deterministic (the only host-dependent field
is wall_ns_per_window, which is never gated), so the checks are exact:

  * steady_allocs_per_window must be 0 — the session hot path (offer ->
    decode -> queue -> drain) is allocation-free once warm, pinned also
    by tests/test_allocation.cpp.  A null value (sanitizer build, where
    the counter is disabled) skips this check.
  * every (profile x streams) cell of the sweep grid must be present;
    a missing cell means the bench silently lost coverage.
  * clean cells: nothing corrupted, nothing dropped, nothing resynced,
    no recovery-ladder activity, every offered frame delivered.
  * fault cells: the session layer must keep delivering — a fault
    profile that starves delivery entirely means containment failed.
  * every cell: drain-side p99 latency stays within two window periods
    (the sweep pumps once per period, so anything above that means
    backlog is accumulating) AND strictly above p50 — the sweep injects
    per-stream phase offsets and deterministic consumer hiccups, so a
    flat distribution means the latency sampling degenerated again.
  * live cells (real producer threads, lossless): every expected stream
    count present; every scripted window accepted and delivered exactly
    once; nothing rejected, nobody quarantined.  Wall time and wait
    counts are host-dependent and never gated.
  * accuracy under fault: clean recall is exactly 1.0 (bit-identical
    delivery), and each fault profile's matched-track recall stays
    above its committed floor.

Stdlib only, no dependencies.
"""
import json
import sys

EXPECTED_PROFILES = ("clean", "bitflip", "truncate", "flood", "stall")
EXPECTED_STREAMS = (1, 8, 32)
EXPECTED_LIVE_STREAMS = (64, 256, 1024)

# Matched-track recall floors per fault profile (measured values sit
# comfortably above: bitflip/truncate ~0.95, flood ~0.77, stall 1.0).
RECALL_FLOORS = {
    "clean": 1.0,
    "bitflip": 0.85,
    "truncate": 0.85,
    "flood": 0.60,
    "stall": 0.90,
}


def fail(msg):
    print(f"bench_node_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        data = json.load(f)

    allocs = data.get("steady_allocs_per_window", "missing")
    if allocs == "missing":
        fail("steady_allocs_per_window missing from the record")
    if allocs is not None and allocs != 0:
        fail(f"session hot path allocated in steady state: "
             f"{allocs} allocs/window (expected 0)")

    frames = data["frames_per_stream"]
    period = data["frame_period_us"]
    cells = {(c["profile"], c["streams"]): c for c in data["cells"]}
    for profile in EXPECTED_PROFILES:
        for streams in EXPECTED_STREAMS:
            cell = cells.get((profile, streams))
            if cell is None:
                fail(f"sweep cell missing: {profile} x {streams} streams")
            name = f"{profile}/{streams}"
            if cell["p99_latency_us"] > 2 * period:
                fail(f"{name}: p99 drain latency "
                     f"{cell['p99_latency_us']} us exceeds two window "
                     f"periods ({2 * period} us)")
            if cell["p99_latency_us"] <= cell["p50_latency_us"]:
                fail(f"{name}: flat drain-latency distribution "
                     f"(p50 = p99 = {cell['p50_latency_us']} us) — the "
                     f"latency sampling degenerated")
            if profile == "clean":
                for key in ("frames_corrupted", "resyncs", "seq_gaps",
                            "windows_rejected", "windows_shed_stale",
                            "windows_shed_overload", "watchdog_stalls",
                            "degrade_entries", "recovery_attempts",
                            "recovery_failures",
                            "sessions_quarantined"):
                    if cell[key] != 0:
                        fail(f"{name}: {key} = {cell[key]} on a clean "
                             f"stream (expected 0)")
                if cell["windows_delivered"] != frames * streams:
                    fail(f"{name}: delivered {cell['windows_delivered']} "
                         f"of {frames * streams} clean windows")
            else:
                if cell["windows_delivered"] == 0:
                    fail(f"{name}: fault profile starved delivery "
                         f"entirely — containment failed")

    live_frames = data.get("live_frames_per_stream")
    if live_frames is None:
        fail("live_frames_per_stream missing from the record")
    live = {c["streams"]: c for c in data.get("live_cells", [])}
    for streams in EXPECTED_LIVE_STREAMS:
        cell = live.get(streams)
        if cell is None:
            fail(f"live cell missing: {streams} streams")
        name = f"live/{streams}"
        expected = live_frames * streams
        for key in ("chunks_delivered", "frames_accepted",
                    "windows_delivered"):
            if cell[key] != expected:
                fail(f"{name}: {key} = {cell[key]}, expected {expected} "
                     f"(lossless real-thread delivery must be exact)")
        if cell["windows_rejected"] != 0:
            fail(f"{name}: {cell['windows_rejected']} windows rejected "
                 f"on a lossless clean run")
        if cell["sessions_quarantined"] != 0:
            fail(f"{name}: {cell['sessions_quarantined']} sessions "
                 f"quarantined on a clean run")

    acc = data.get("accuracy_under_fault")
    if acc is None:
        fail("accuracy_under_fault section missing from the record")
    rows = {r["profile"]: r for r in acc["profiles"]}
    for profile in EXPECTED_PROFILES:
        row = rows.get(profile)
        if row is None:
            fail(f"accuracy row missing: {profile}")
        if row["baseline_tracks"] == 0:
            fail(f"accuracy/{profile}: baseline produced no tracks — "
                 f"the scenario no longer exercises the tracker")
        floor = RECALL_FLOORS[profile]
        if profile == "clean":
            if row["recall"] != 1.0:
                fail(f"accuracy/clean: recall {row['recall']} != 1.0 — "
                     f"clean delivery is no longer bit-identical")
        elif row["recall"] < floor:
            fail(f"accuracy/{profile}: recall {row['recall']} below "
                 f"floor {floor}")

    print(f"bench_node_gate: OK ({len(cells)} cells, "
          f"{len(live)} live cells, {len(rows)} accuracy profiles, "
          f"steady allocs/window = {allocs})")


if __name__ == "__main__":
    main()
