#!/usr/bin/env python3
"""Gate on BENCH_node.json, the ingest-resilience sweep emitted by
bench_iovt_node --json.

Usage:
    bench_iovt_node --json BENCH_node.json
    tools/bench_node_gate.py BENCH_node.json

All sweep counters are seed-deterministic (the only host-dependent field
is wall_ns_per_window, which is never gated), so the checks are exact:

  * steady_allocs_per_window must be 0 — the session hot path (offer ->
    decode -> queue -> drain) is allocation-free once warm, pinned also
    by tests/test_allocation.cpp.  A null value (sanitizer build, where
    the counter is disabled) skips this check.
  * every (profile x streams) cell of the sweep grid must be present;
    a missing cell means the bench silently lost coverage.
  * clean cells: nothing corrupted, nothing dropped, nothing resynced,
    every offered frame delivered.
  * fault cells: the session layer must keep delivering — a fault
    profile that starves delivery entirely means containment failed.
  * every cell: drain-side p99 latency stays within two window periods
    (the sweep pumps once per period, so anything above that means
    backlog is accumulating).

Stdlib only, no dependencies.
"""
import json
import sys

EXPECTED_PROFILES = ("clean", "bitflip", "truncate", "flood", "stall")
EXPECTED_STREAMS = (1, 8, 32)


def fail(msg):
    print(f"bench_node_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        data = json.load(f)

    allocs = data.get("steady_allocs_per_window", "missing")
    if allocs == "missing":
        fail("steady_allocs_per_window missing from the record")
    if allocs is not None and allocs != 0:
        fail(f"session hot path allocated in steady state: "
             f"{allocs} allocs/window (expected 0)")

    frames = data["frames_per_stream"]
    period = data["frame_period_us"]
    cells = {(c["profile"], c["streams"]): c for c in data["cells"]}
    for profile in EXPECTED_PROFILES:
        for streams in EXPECTED_STREAMS:
            cell = cells.get((profile, streams))
            if cell is None:
                fail(f"sweep cell missing: {profile} x {streams} streams")
            name = f"{profile}/{streams}"
            if cell["p99_latency_us"] > 2 * period:
                fail(f"{name}: p99 drain latency "
                     f"{cell['p99_latency_us']} us exceeds two window "
                     f"periods ({2 * period} us)")
            if profile == "clean":
                for key in ("frames_corrupted", "resyncs", "seq_gaps",
                            "windows_rejected", "windows_shed_stale",
                            "windows_shed_overload", "watchdog_stalls",
                            "sessions_quarantined"):
                    if cell[key] != 0:
                        fail(f"{name}: {key} = {cell[key]} on a clean "
                             f"stream (expected 0)")
                if cell["windows_delivered"] != frames * streams:
                    fail(f"{name}: delivered {cell['windows_delivered']} "
                         f"of {frames * streams} clean windows")
            else:
                if cell["windows_delivered"] == 0:
                    fail(f"{name}: fault profile starved delivery "
                         f"entirely — containment failed")

    print(f"bench_node_gate: OK ({len(cells)} cells, "
          f"steady allocs/window = {allocs})")


if __name__ == "__main__":
    main()
