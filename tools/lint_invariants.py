#!/usr/bin/env python3
"""House-invariant linter: statically enforce the conventions ROADMAP
calls load-bearing, so they survive contributors who never read it.

Three checks, mirroring the repo's correctness story:

1. differential-twin coverage (`--check twins`)
   Every fast-path implementation with a `*_reference.*` twin (e.g.
   src/detect/cca.cpp vs src/detect/cca_reference.cpp) must be named in
   at least one test file together with its reference class AND that
   test must compare operation counts (`lastOps` appears in the file).
   The bit-identical + identical-OpCounts differential tests are what
   let the fast paths evolve; this check keeps a new twin from landing
   without one.

2. hot-path allocation discipline (`--check hotpath`)
   Files listed in tools/hot_path_manifest.json claim a zero-alloc
   steady state (pinned dynamically by tests/test_allocation.cpp).  This
   check statically bans the constructs that break the claim —
   `new` / `make_unique` / `make_shared`, `std::function`, and container
   growth (`push_back` / `emplace_back` / `resize` / `assign`) — outside
   constructors and manifest-listed init functions.  Container growth is
   additionally tolerated when it is capacity-bounded by idiom:
     * the receiver is a member (trailing `_` on a path component, or
       `this->`): members keep their high-water capacity across frames;
     * the receiver has a `.reserve(...)` in the same function;
     * the receiver is a reference binding / reference parameter in the
       same function (the scratch-struct idiom: the owner reserves).
   Anything else needs an inline waiver `// hot-path: <reason>` on the
   same line, which makes the exception visible in review.

3. op-accounting declarations (`--check opsmodel`)
   Every header declaring a `lastOps()` stage accessor must declare how
   the counts are produced: either a `closedFormOps` function is in
   scope (header or sibling .cpp) or the header carries an explicit
   `/// ops-model: closed-form|metered|composite — <rationale>` tag.
   The bench ops-baseline gate (tools/bench_micro_json.py) only guards
   stages it samples; this keeps the accounting story complete.

Exit status 0 when clean, 1 with one `file:line: [rule] message` per
violation otherwise.  Run locally from the repo root:

    python3 tools/lint_invariants.py
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

GROWTH_CALLS = ("push_back", "emplace_back", "resize", "assign")
WAIVER_RE = re.compile(r"//\s*hot-path:\s*(\S.*)")
OPS_MODEL_RE = re.compile(r"ops-model:\s*(closed-form|metered|composite)\b")
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "static_assert", "alignof", "decltype", "noexcept", "assert",
}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string / char
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
            out.append(" ")
        i += 1
    return "".join(out)


class Scope:
    __slots__ = ("kind", "name", "depth")

    def __init__(self, kind: str, name: str, depth: int):
        self.kind = kind  # namespace | class | function | block
        self.name = name
        self.depth = depth


def _classify_scope(sig: str) -> tuple[str, str]:
    """Classify the brace-opening construct described by `sig` (the text
    accumulated since the previous ; { or })."""
    m = re.search(r"\bnamespace\s+(\w+)?\s*$", sig)
    if m:
        return "namespace", m.group(1) or "<anon>"
    m = re.search(r"\b(?:class|struct|union|enum)\s+[A-Z_a-z]\w*", sig)
    if m and "(" not in sig.split("class")[-1].split("struct")[-1][:0]:
        # `class X final : public Y` — but not `return make<class X>()`;
        # good enough for this codebase's style.
        name = re.findall(r"\b(?:class|struct|union|enum)\s+(?:class\s+)?"
                          r"([A-Z_a-z]\w*)", sig)[-1]
        if not re.search(r"\(", sig.split(name)[-1]):
            return "class", name
    paren = sig.find("(")
    if paren != -1:
        head = sig[:paren].strip()
        m = re.search(r"([A-Za-z_~]\w*)\s*$", head)
        if m and m.group(1) not in CONTROL_KEYWORDS:
            name = m.group(1)
            qual = re.search(r"(\w+)\s*::\s*~?" + re.escape(name) + r"\s*$",
                             head)
            kind = "function"
            # Constructor / destructor: qualifier equals the name.
            if qual and qual.group(1) == name:
                kind = "ctor"
            return kind, name
        return "block", ""  # lambda or initializer braces
    return "block", ""


def parse_scopes(stripped: str):
    """Yield, per line (0-based), the innermost (function, class, is_init)
    context plus a map of function-id -> (start, end) line ranges."""
    lines = stripped.split("\n")
    stack: list[Scope] = []
    depth = 0
    sig = ""
    line_ctx = []  # per line: (fn_index or None, class_name, fn_is_ctor)
    functions = []  # (name, is_ctor, class_name, start_line, end_line)
    open_fns = []  # indices into functions

    def innermost_fn():
        return open_fns[-1] if open_fns else None

    for lineno, line in enumerate(lines):
        for ch in line:
            if ch == "{":
                kind, name = _classify_scope(sig)
                if kind in ("function", "ctor"):
                    cls = next((s.name for s in reversed(stack)
                                if s.kind == "class"), "")
                    is_ctor = kind == "ctor" or (cls != "" and name == cls)
                    functions.append([name, is_ctor, cls, lineno, lineno])
                    open_fns.append(len(functions) - 1)
                    stack.append(Scope("function", name, depth))
                else:
                    stack.append(Scope(kind, name, depth))
                depth += 1
                sig = ""
            elif ch == "}":
                depth -= 1
                while stack and stack[-1].depth >= depth:
                    popped = stack.pop()
                    if popped.kind == "function" and open_fns:
                        functions[open_fns[-1]][4] = lineno
                        open_fns.pop()
            elif ch == ";":
                sig = ""
            else:
                sig += ch
        sig += " "
        fn = innermost_fn()
        cls = next((s.name for s in reversed(stack) if s.kind == "class"), "")
        line_ctx.append((fn, cls))
    return lines, line_ctx, functions


def check_hot_paths(root: Path, manifest_path: Path) -> list[str]:
    problems = []
    if not manifest_path.exists():
        return [f"{manifest_path}: [hotpath] manifest missing"]
    manifest = json.loads(manifest_path.read_text())
    for entry in manifest.get("hot_paths", []):
        rel = entry["file"]
        path = root / rel
        if not path.exists():
            problems.append(f"{rel}: [hotpath] listed in manifest but absent")
            continue
        init_fns = set(entry.get("init_functions", []))
        original = path.read_text()
        stripped = strip_comments_and_strings(original)
        lines, line_ctx, functions = parse_scopes(stripped)
        orig_lines = original.split("\n")

        def fn_text(fn_idx):
            _, _, _, start, end = functions[fn_idx]
            return "\n".join(lines[start:end + 1])

        for lineno, line in enumerate(lines):
            fn_idx, _cls = line_ctx[lineno]
            if fn_idx is not None:
                name, is_ctor, _, _, _ = functions[fn_idx]
                if is_ctor or name in init_fns:
                    continue  # init phase: allocation is the point
            # A waiver comment counts on the flagged line or the line
            # above it (clang-format rarely leaves room inline).
            waiver = None
            for probe in (lineno, lineno - 1):
                if 0 <= probe < len(orig_lines):
                    waiver = waiver or WAIVER_RE.search(orig_lines[probe])
            where = f"{rel}:{lineno + 1}"

            def report(msg):
                if waiver is None:
                    problems.append(f"{where}: [hotpath] {msg}")

            if re.search(r"\bnew\b", line):
                report("`new` in steady-state code (fixed memory rule)")
            if re.search(r"\bmake_(unique|shared)\b", line):
                report("make_unique/make_shared in steady-state code")
            if re.search(r"\bstd\s*::\s*function\b", line):
                report("std::function (type-erased allocation + indirect "
                       "call) in a hot path")
            for m in re.finditer(
                    r"([A-Za-z_][\w\.\->\[\]]*?)\s*\.\s*"
                    r"(push_back|emplace_back|resize|assign)\s*\(", line):
                receiver, call = m.group(1), m.group(2)
                base = re.sub(r"\[[^\]]*\]", "", receiver)
                components = re.split(r"\.|->", base)
                memberish = (receiver.startswith("this->")
                             or any(c.endswith("_") for c in components if c))
                if memberish:
                    continue
                if fn_idx is not None:
                    body = fn_text(fn_idx)
                    head = re.escape(components[0])
                    if re.search(rf"\b{head}\s*\.\s*reserve\s*\(", body):
                        continue  # reserve-guarded in this function
                    if re.search(rf"&\s*{head}\s*[=,)]", body):
                        continue  # reference to caller/scratch-owned storage
                report(f"`{receiver}.{call}(...)` grows a non-member, "
                       "non-reserved container in steady state")
    return problems


def check_reference_twins(root: Path) -> list[str]:
    problems = []
    tests = list((root / "tests").glob("*.cpp"))
    test_texts = {t: t.read_text() for t in tests}
    for ref_header in sorted((root / "src").rglob("*_reference.hpp")):
        rel = ref_header.relative_to(root)
        fast_header = ref_header.with_name(
            ref_header.name.replace("_reference", ""))
        if not fast_header.exists():
            problems.append(f"{rel}: [twins] no fast twin "
                            f"{fast_header.name} next to it")
            continue
        m = re.search(r"\b(?:class|struct)\s+(\w+Reference)\b",
                      ref_header.read_text())
        if not m:
            problems.append(f"{rel}: [twins] cannot find a *Reference "
                            "class in the reference header")
            continue
        ref_class = m.group(1)
        fast_class = ref_class[:-len("Reference")]
        if not re.search(rf"\b(?:class|struct)\s+{fast_class}\b",
                         fast_header.read_text()):
            problems.append(
                f"{rel}: [twins] fast twin {fast_header.name} does not "
                f"declare class {fast_class}")
            continue
        covered = any(
            ref_class in text and re.search(rf"\b{fast_class}\b", text)
            and "lastOps" in text
            for text in test_texts.values())
        if not covered:
            problems.append(
                f"{rel}: [twins] no test file names both {fast_class} and "
                f"{ref_class} and compares lastOps() — the differential "
                "(outputs + OpCounts) test is mandatory for twins")
    return problems


def check_ops_model(root: Path) -> list[str]:
    problems = []
    for header in sorted((root / "src").rglob("*.hpp")):
        text = header.read_text()
        if not re.search(r"\blastOps\s*\(\s*\)", text):
            continue
        rel = header.relative_to(root)
        if "closedFormOps" in text or OPS_MODEL_RE.search(text):
            continue
        sibling = header.with_suffix(".cpp")
        if sibling.exists() and "closedFormOps" in sibling.read_text():
            continue
        problems.append(
            f"{rel}: [opsmodel] declares lastOps() but neither references "
            "closedFormOps nor carries an `ops-model: "
            "closed-form|metered|composite` declaration")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="hot-path manifest (default: "
                             "<repo>/tools/hot_path_manifest.json)")
    parser.add_argument("--check", choices=["twins", "hotpath", "opsmodel"],
                        action="append",
                        help="run only the named check(s); default: all")
    args = parser.parse_args(argv)
    root = args.repo.resolve()
    manifest = args.manifest or root / "tools" / "hot_path_manifest.json"

    checks = args.check or ["twins", "hotpath", "opsmodel"]
    problems = []
    if "twins" in checks:
        problems += check_reference_twins(root)
    if "hotpath" in checks:
        problems += check_hot_paths(root, manifest)
    if "opsmodel" in checks:
        problems += check_ops_model(root)

    for p in problems:
        print(p)
    if problems:
        print(f"lint_invariants: {len(problems)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({', '.join(checks)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
