#!/usr/bin/env python3
"""Convert google-benchmark JSON output of bench_micro_stages into the
compact perf-trajectory record BENCH_micro.json.

Usage:
    bench_micro_stages --benchmark_format=json > raw.json
    tools/bench_micro_json.py raw.json BENCH_micro.json [--fail-on-steady-allocs]

Each benchmark becomes {"name", "ns_per_frame", "ops_per_frame",
"allocs_per_frame"} (the latter two are null for benchmarks without the
counters).  CI runs this every build so the history of the word-parallel
hot path stays measurable; stdlib only, no dependencies.

With --fail-on-steady-allocs the script exits non-zero (after writing the
JSON) if any stage pinned allocation-free in steady state reports
allocs_per_frame above zero — the benchmarks warm those stages up before
taking the allocation baseline, so any non-zero value is a regression of
the reuse discipline, not warm-up noise.
"""
import json
import sys

# Stages whose per-frame loop must not allocate once warm (reused member
# buffers; pinned by tests/test_allocation.cpp).  The tracker and
# whole-pipeline benchmarks return Tracks by value and are excluded.
STEADY_STATE_BENCHES = frozenset(
    {
        "BM_EbbiBuild",
        "BM_MedianFilter",
        "BM_MedianFilterReference",
        "BM_DownsampleAndHistogram",
        "BM_HistogramRpn",
        "BM_CcaRpn",
        "BM_CcaRpnReference",
        "BM_NnFilter",
    }
)


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = {a for a in sys.argv[1:] if a.startswith("--")}
    unknown = flags - {"--fail-on-steady-allocs"}
    if len(args) != 2 or unknown:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        raw = json.load(f)

    records = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # google-benchmark reports real_time in the benchmark's time_unit;
        # normalise to nanoseconds per iteration (= per frame here).
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        records.append(
            {
                "name": bench["name"],
                "ns_per_frame": bench["real_time"] * scale,
                "ops_per_frame": bench.get("ops_frame"),
                "allocs_per_frame": bench.get("allocs_frame"),
            }
        )

    context = raw.get("context", {})
    out = {
        "schema": "ebbiot-bench-micro/1",
        "date": context.get("date"),
        "host_cpus": context.get("num_cpus"),
        "build_type": context.get("library_build_type"),
        "benchmarks": records,
    }
    with open(args[1], "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {args[1]} with {len(records)} benchmarks")

    if "--fail-on-steady-allocs" in flags:
        # The gate must stay self-verifying: a pinned benchmark that was
        # renamed, or that lost its allocs_frame counter, is itself a
        # failure — otherwise the check silently stops applying.
        by_name = {r["name"]: r for r in records}
        failures = []
        for name in sorted(STEADY_STATE_BENCHES):
            record = by_name.get(name)
            if record is None:
                failures.append(f"pinned benchmark {name} missing from output")
            elif record["allocs_per_frame"] is None:
                failures.append(f"{name} reports no allocs_frame counter")
            elif record["allocs_per_frame"] > 0:
                failures.append(
                    f"steady-state stage {name} allocates "
                    f"{record['allocs_per_frame']:.6f} times/frame (expected 0)"
                )
        for failure in failures:
            print(failure, file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
