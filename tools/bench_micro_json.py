#!/usr/bin/env python3
"""Convert google-benchmark JSON output of bench_micro_stages into the
compact perf-trajectory record BENCH_micro.json.

Usage:
    bench_micro_stages --benchmark_format=json > raw.json
    tools/bench_micro_json.py raw.json BENCH_micro.json \
        [--fail-on-steady-allocs] \
        [--fail-on-ops-regression=BASELINE.json] \
        [--update-ops-baseline=BASELINE.json]

Each benchmark becomes {"name", "ns_per_frame", "ops_per_frame",
"allocs_per_frame"} (the latter two are null for benchmarks without the
counters).  CI runs this every build so the history of the word-parallel
hot path stays measurable; stdlib only, no dependencies.

The BM_RunRecordingRegistry/<threads>/<pipelined> grid is additionally
summarised into a "thread_scaling" section: one row per (threads,
pipelined) cell with its speedup over the serial threads=1 /
pipelined=0 cell, plus the host CPU count so a 1.0x row on a
single-core host reads as parity, not a regression.

With --fail-on-steady-allocs the script exits non-zero (after writing the
JSON) if any stage pinned allocation-free in steady state reports
allocs_per_frame above zero — the benchmarks warm those stages up before
taking the allocation baseline, so any non-zero value is a regression of
the reuse discipline, not warm-up noise.

With --fail-on-ops-regression=BASELINE.json the script additionally
compares each pinned stage's ops_per_frame against the recorded baseline
and exits non-zero on drift beyond the baseline's tolerance.  The
reported ops are the paper's closed-form models over a *deterministic*
synthetic workload, so they are host-independent: any drift means the
abstract cost model changed (deliberately — then regenerate the baseline
with --update-ops-baseline — or by accident, which is exactly what the
gate exists to catch).  A pinned stage missing from the run, or missing
its counter, is itself a failure, keeping the gate self-verifying.
"""
import json
import sys

# Stages whose per-frame loop must not allocate once warm (reused member
# buffers; pinned by tests/test_allocation.cpp).  The reference trackers
# and whole-pipeline benchmarks return Tracks by value (or keep deque
# histories) and are excluded.
STEADY_STATE_BENCHES = frozenset(
    {
        "BM_EbbiBuild",
        "BM_MedianFilter",
        "BM_MedianFilterReference",
        "BM_MedianFilterIncremental",
        "BM_MedianFilterStableScene",
        "BM_MedianFilterIncrementalStableScene",
        "BM_DownsampleAndHistogram",
        "BM_HistogramRpn",
        "BM_CcaRpn",
        "BM_CcaRpnReference",
        "BM_NnFilter",
        "BM_NnFilterReference",
        "BM_NnFilterDenseNoise",
        "BM_NnFilterDenseNoiseReference",
        "BM_EbmsTracker",
        "BM_EbmsTrackerCrowded",
        "BM_EbmsTrackerEng",
    }
)

# Stages whose ops_per_frame is a closed-form model over the
# deterministic synthetic workload: recorded in the ops baseline and
# gated by --fail-on-ops-regression.
OPS_PINNED_BENCHES = (
    "BM_EbbiBuild",
    "BM_MedianFilter",
    "BM_MedianFilterReference",
    "BM_MedianFilterIncremental",
    "BM_MedianFilterStableScene",
    "BM_MedianFilterIncrementalStableScene",
    "BM_DownsampleAndHistogram",
    "BM_HistogramRpn",
    "BM_CcaRpn",
    "BM_CcaRpnReference",
    "BM_NnFilter",
    "BM_NnFilterReference",
    "BM_NnFilterDenseNoise",
    "BM_NnFilterDenseNoiseReference",
    "BM_EbmsTracker",
    "BM_EbmsTrackerReference",
    "BM_EbmsTrackerCrowded",
    "BM_EbmsTrackerCrowdedReference",
    "BM_EbmsTrackerEng",
    "BM_EbmsTrackerEngReference",
)

# Averages over benchmark iterations include partial passes over the
# cycling frame banks, so a small relative wobble is expected; anything
# beyond this means the closed form itself moved.
DEFAULT_TOLERANCE = 0.05


def check_steady_allocs(records):
    by_name = {r["name"]: r for r in records}
    failures = []
    for name in sorted(STEADY_STATE_BENCHES):
        record = by_name.get(name)
        if record is None:
            failures.append(f"pinned benchmark {name} missing from output")
        elif record["allocs_per_frame"] is None:
            failures.append(f"{name} reports no allocs_frame counter")
        elif record["allocs_per_frame"] > 0:
            failures.append(
                f"steady-state stage {name} allocates "
                f"{record['allocs_per_frame']:.6f} times/frame (expected 0)"
            )
    return failures


def check_ops_regression(records, baseline_path):
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    pinned = baseline.get("ops_per_frame", {})
    by_name = {r["name"]: r for r in records}
    failures = []
    # Self-verification both ways: a stage added to OPS_PINNED_BENCHES
    # without regenerating the baseline (or removed from the code but
    # still recorded) must fail loudly, not silently stop being gated.
    for name in OPS_PINNED_BENCHES:
        if name not in pinned:
            failures.append(
                f"{name} is ops-pinned in code but missing from the "
                f"baseline — regenerate with --update-ops-baseline"
            )
    for name in sorted(pinned):
        if name not in OPS_PINNED_BENCHES:
            failures.append(
                f"baseline records {name}, which is no longer in "
                f"OPS_PINNED_BENCHES — regenerate with --update-ops-baseline"
            )
    for name, want in sorted(pinned.items()):
        record = by_name.get(name)
        if record is None:
            failures.append(f"ops-pinned benchmark {name} missing from output")
            continue
        got = record["ops_per_frame"]
        if got is None:
            failures.append(f"{name} reports no ops_frame counter")
            continue
        drift = abs(got - want) / want if want else abs(got)
        if drift > tolerance:
            failures.append(
                f"{name} ops/frame drifted {drift:.1%} from baseline "
                f"({got:.1f} vs {want:.1f}, tolerance {tolerance:.0%})"
            )
    return failures


def write_ops_baseline(records, baseline_path):
    by_name = {r["name"]: r for r in records}
    ops = {}
    for name in OPS_PINNED_BENCHES:
        record = by_name.get(name)
        if record is None or record["ops_per_frame"] is None:
            print(f"cannot baseline {name}: no ops_frame in run",
                  file=sys.stderr)
            return 1
        ops[name] = round(record["ops_per_frame"], 1)
    out = {
        "schema": "ebbiot-bench-ops-baseline/1",
        "tolerance": DEFAULT_TOLERANCE,
        "ops_per_frame": ops,
    }
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote ops baseline {baseline_path} with {len(ops)} stages")
    return 0


def thread_scaling_section(records, host_cpus):
    """Summarise the BM_RunRecordingRegistry/<threads>/<pipelined> grid.

    Speedups are relative to the serial threads=1 / pipelined=0 cell.
    On a single-core host every cell sits near 1.0x (the runner clamps
    to the hardware) — host_cpus is recorded so readers can tell parity
    from regression.
    """
    cells = []
    for record in records:
        parts = record["name"].split("/")
        if parts[0] != "BM_RunRecordingRegistry" or len(parts) != 3:
            continue
        cells.append(
            {
                "threads": int(parts[1]),
                "pipelined": bool(int(parts[2])),
                "ns_per_run": record["ns_per_frame"],
            }
        )
    if not cells:
        return None
    serial = next(
        (c for c in cells if c["threads"] == 1 and not c["pipelined"]), None
    )
    for cell in cells:
        cell["speedup_vs_serial"] = (
            round(serial["ns_per_run"] / cell["ns_per_run"], 3)
            if serial
            else None
        )
    cells.sort(key=lambda c: (c["threads"], c["pipelined"]))
    return {"benchmark": "BM_RunRecordingRegistry",
            "host_cpus": host_cpus,
            "cells": cells}


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = [a for a in sys.argv[1:] if a.startswith("--")]
    fail_allocs = False
    ops_baseline = None
    update_baseline = None
    for flag in flags:
        if flag == "--fail-on-steady-allocs":
            fail_allocs = True
        elif flag.startswith("--fail-on-ops-regression="):
            ops_baseline = flag.split("=", 1)[1]
        elif flag.startswith("--update-ops-baseline="):
            update_baseline = flag.split("=", 1)[1]
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        raw = json.load(f)

    records = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # google-benchmark reports real_time in the benchmark's time_unit;
        # normalise to nanoseconds per iteration (= per frame here).
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        records.append(
            {
                "name": bench["name"],
                "ns_per_frame": bench["real_time"] * scale,
                "ops_per_frame": bench.get("ops_frame"),
                "allocs_per_frame": bench.get("allocs_frame"),
            }
        )

    context = raw.get("context", {})
    out = {
        "schema": "ebbiot-bench-micro/1",
        "date": context.get("date"),
        "host_cpus": context.get("num_cpus"),
        "build_type": context.get("library_build_type"),
        "benchmarks": records,
    }
    scaling = thread_scaling_section(records, context.get("num_cpus"))
    if scaling is not None:
        out["thread_scaling"] = scaling
    with open(args[1], "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {args[1]} with {len(records)} benchmarks")

    if update_baseline is not None:
        status = write_ops_baseline(records, update_baseline)
        if status != 0:
            return status

    failures = []
    if fail_allocs:
        failures += check_steady_allocs(records)
    if ops_baseline is not None:
        failures += check_ops_regression(records, ops_baseline)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
