#!/usr/bin/env python3
"""Convert google-benchmark JSON output of bench_micro_stages into the
compact perf-trajectory record BENCH_micro.json.

Usage:
    bench_micro_stages --benchmark_format=json > raw.json
    tools/bench_micro_json.py raw.json BENCH_micro.json

Each benchmark becomes {"name", "ns_per_frame", "ops_per_frame",
"allocs_per_frame"} (the latter two are null for benchmarks without the
counters).  CI runs this every build so the history of the word-parallel
hot path stays measurable; stdlib only, no dependencies.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        raw = json.load(f)

    records = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # google-benchmark reports real_time in the benchmark's time_unit;
        # normalise to nanoseconds per iteration (= per frame here).
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        records.append(
            {
                "name": bench["name"],
                "ns_per_frame": bench["real_time"] * scale,
                "ops_per_frame": bench.get("ops_frame"),
                "allocs_per_frame": bench.get("allocs_frame"),
            }
        )

    context = raw.get("context", {})
    out = {
        "schema": "ebbiot-bench-micro/1",
        "date": context.get("date"),
        "host_cpus": context.get("num_cpus"),
        "build_type": context.get("library_build_type"),
        "benchmarks": records,
    }
    with open(sys.argv[2], "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {sys.argv[2]} with {len(records)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
