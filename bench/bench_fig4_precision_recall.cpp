// Figure 4 — precision and recall vs IoU threshold for EBMS, KF and
// EBBIOT, weighted across the two recordings by ground-truth track count.
//
// Paper's qualitative result: "EBBIOT outperforms others and shows more
// stable precision and recall values for varying thresholds."
//
// Default: 90 s of each recording (set EBBIOT_BENCH_SECONDS to change;
// the traffic process is stationary so the curves converge quickly).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

namespace {

double benchSeconds() {
  if (const char* env = std::getenv("EBBIOT_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return 90.0;
}

}  // namespace

int main() {
  using namespace ebbiot;
  const double seconds = benchSeconds();
  std::printf("Figure 4 — precision/recall vs IoU threshold "
              "(%.0f s per recording)\n\n",
              seconds);

  // The recordings are independent syntheses, so the sweep shards them
  // across the shared scheduler (one task per recording); RunResults
  // land in per-recording slots and everything prints in fixed order
  // afterwards, identical to the serial sweep.
  std::vector<RecordingSpec> specs;
  for (const RecordingSpec& fullSpec :
       {makeSyntheticEng(), makeSyntheticLt4()}) {
    RecordingSpec spec = fullSpec;
    spec.durationS = seconds;
    specs.push_back(spec);
  }
  std::vector<RunResult> results(specs.size());
  globalThreadPool().parallelFor(specs.size(), [&](std::size_t i) {
    const RecordingSpec& spec = specs[i];
    Recording rec = openRecording(spec);
    RunnerConfig config = makeDefaultRunnerConfig(spec.traffic.width,
                                                  spec.traffic.height);
    // Annotate objects as soon as a tenth is visible so entering/leaving
    // vehicles score against their tracks rather than as false positives.
    config.gtOptions.minVisibleFraction = 0.10F;
    if (spec.traffic.lensScale < 1.0F) {
      // 6 mm lens: smaller objects, relax the seed gates proportionally.
      config.ebbiot.tracker.minSeedArea = 6.0F;
      config.kalman.tracker.minSeedArea = 6.0F;
      config.ebms.ebms.captureRadius = 18.0F;
    }
    results[i] = runRecording(*rec.source, *rec.scenario,
                              secondsToUs(spec.durationS), config);
  });

  std::vector<RecordingResult> ebbiotResults;
  std::vector<RecordingResult> kalmanResults;
  std::vector<RecordingResult> ebmsResults;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RecordingSpec& spec = specs[i];
    const RunResult& result = results[i];
    std::printf("  %s: %zu frames, %zu GT tracks, %zu GT boxes, "
                "%.0f events/frame\n",
                spec.name.c_str(), result.frames, result.gtTracks,
                result.gtBoxes, result.meanEventsPerFrame);
    ebbiotResults.push_back(
        result.toRecordingResult(*result.ebbiot, spec.name));
    kalmanResults.push_back(
        result.toRecordingResult(*result.kalman, spec.name));
    ebmsResults.push_back(result.toRecordingResult(*result.ebms, spec.name));
  }

  const auto ebbiotAvg = weightedAverage(ebbiotResults);
  const auto kalmanAvg = weightedAverage(kalmanResults);
  const auto ebmsAvg = weightedAverage(ebmsResults);

  std::printf("\n%-10s | %-21s | %-21s | %-21s\n", "", "EBMS", "KF (EBBI+KF)",
              "EBBIOT");
  std::printf("%-10s | %10s %10s | %10s %10s | %10s %10s\n", "IoU thr",
              "precision", "recall", "precision", "recall", "precision",
              "recall");
  std::printf("%.*s\n", 82,
              "----------------------------------------------------------"
              "--------------------------");
  for (std::size_t i = 0; i < ebbiotAvg.size(); ++i) {
    std::printf("%-10.2f | %10.3f %10.3f | %10.3f %10.3f | %10.3f %10.3f\n",
                ebbiotAvg[i].threshold, ebmsAvg[i].precision,
                ebmsAvg[i].recall, kalmanAvg[i].precision,
                kalmanAvg[i].recall, ebbiotAvg[i].precision,
                ebbiotAvg[i].recall);
  }

  // Stability summary (the paper's second claim for Fig. 4).
  auto stability = [](const std::vector<WeightedPr>& sweep) {
    // Relative drop in recall from the loosest threshold to IoU 0.5.
    double first = sweep.front().recall;
    double mid = first;
    for (const WeightedPr& p : sweep) {
      if (p.threshold >= 0.499F && p.threshold <= 0.501F) {
        mid = p.recall;
      }
    }
    return first > 0.0 ? (first - mid) / first : 1.0;
  };
  std::printf("\nRecall drop 0.1 -> 0.5 IoU (lower = more stable): "
              "EBMS %.2f, KF %.2f, EBBIOT %.2f\n",
              stability(ebmsAvg), stability(kalmanAvg),
              stability(ebbiotAvg));
  return 0;
}
