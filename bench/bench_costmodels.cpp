// Reproduces every in-text resource number of the paper from the
// closed-form models of Eqs. (1)-(8) (src/resource/cost_model.*).
//
// Paper targets (Sections II-A..II-C):
//   C_EBBI    ~= 125.2 kops/frame      M_EBBI    = 10.8 kB
//   C_NN-filt ~= 276.4 kops/frame      M_NN-filt = 8 x M_EBBI
//   C_RPN     =  45.6 kops/frame*      M_RPN     ~= 1.6 kB
//   C_OT      ~= 564 ops/frame         M_OT      < 0.5 kB
//   C_KF      =  1200 ops/frame        M_KF      ~= 1.1 kB
//   C_EBMS    =  252 kops/frame        M_EBMS    = 3320 bits (Eq. 8)
//   (* printed value; the Eq. (5) formula gives 48.0 kops — both shown.)
#include <cstdio>
#include <string>

#include "src/core/variant_registry.hpp"
#include "src/resource/cost_model.hpp"

namespace {

void row(const char* name, double computes, double memBits,
         const char* note) {
  std::printf("%-22s %14.1f %15.1f %12.2f   %s\n", name, computes,
              memBits, memBits / 8.0 / 1024.0, note);
}

}  // namespace

int main() {
  using namespace ebbiot;

  std::printf("EBBIOT cost models — Eqs. (1)-(8) at the paper's operating "
              "point\n");
  std::printf("(A x B = 240 x 180, p = 3, alpha = 0.1, beta = 2, Bt = 16, "
              "s1 = 6, s2 = 3,\n NT = 2, NF = 650, CL = 2, gamma_merge = "
              "0.1, CLmax = 8)\n\n");
  std::printf("%-22s %14s %15s %12s   %s\n", "block", "ops/frame",
              "memory [bits]", "mem [kB]", "paper target");
  std::printf("%.*s\n", 100,
              "----------------------------------------------------------"
              "------------------------------------------");

  const CostEstimate ebbi = ebbiCost();
  row("EBBI + median (Eq 1)", ebbi.computesPerFrame, ebbi.memoryBits,
      "125.2 kops, 10.8 kB");

  const CostEstimate nn = nnFiltCost();
  row("NN-filt (Eq 2)", nn.computesPerFrame, nn.memoryBits,
      "276.4 kops, 8x EBBI memory");
  std::printf("%-22s %14s %15.1fx\n", "  memory vs EBBI", "",
              nn.memoryBits / ebbi.memoryBits);

  const CostEstimate rpn = rpnCost();
  row("RPN (Eq 5, formula)", rpn.computesPerFrame, rpn.memoryBits,
      "~1.6 kB memory");
  RpnCostParams printed;
  printed.printedVariant = true;
  const CostEstimate rpnPrinted = rpnCost(printed);
  row("RPN (printed 45.6k)", rpnPrinted.computesPerFrame,
      rpnPrinted.memoryBits, "paper's printed compute");

  const CostEstimate ot = otCost();
  row("Overlap tracker (Eq 6)", ot.computesPerFrame, ot.memoryBits,
      "~564 ops, < 0.5 kB");

  const CostEstimate kf = kfCost();
  row("Kalman filter (Eq 7)", kf.computesPerFrame, kf.memoryBits,
      "1200 ops, ~1.1 kB");

  const CostEstimate ebms = ebmsCost();
  row("EBMS (Eq 8)", ebms.computesPerFrame, ebms.memoryBits,
      "252 kops, 3320 bits");
  std::printf("%-22s %14.1fx%15s   (paper: '~500X')\n",
              "  compute vs OT", ebms.computesPerFrame / ot.computesPerFrame,
              "");

  std::printf("\nBack-end extensions (registry variants; models mirror "
              "the measured\nimplementations, not paper equations)\n");
  const CostEstimate rf = regionFilterCost();
  row("NN region filter", rf.computesPerFrame, rf.memoryBits,
      "EBBINNOT stage (arXiv:2006.00422)");
  const CostEstimate ht = hybridTrackerCost();
  row("Hybrid tracker", ht.computesPerFrame, ht.memoryBits,
      "OT assoc + per-track KF (arXiv:2007.11404)");

  std::printf("\nPipeline totals — every registered variant with a "
              "closed-form model\n");
  const CostEstimate ours = ebbiotPipelineCost();
  const CostEstimate theirs = ebmsPipelineCost();
  for (const VariantInfo& variant : variantRegistry().variants()) {
    const CostEstimate est = costModelForVariant(variant.key);
    if (est.computesPerFrame <= 0.0) {
      continue;  // no closed form (e.g. EBBIOT-CCA) — measured-only
    }
    row(variant.key.c_str(), est.computesPerFrame, est.memoryBits, "");
  }
  std::printf("\nEBMS-chain / EBBIOT: computes %.2fx (paper: ~3x), memory "
              "%.2fx (paper: ~7x)\n",
              theirs.computesPerFrame / ours.computesPerFrame,
              theirs.memoryBits / ours.memoryBits);

  const CostEstimate cnn = frameBasedDetectorReference();
  std::printf("Frame-based CNN detector / EBBIOT RPN: computes %.0fx, "
              "memory %.0fx (paper: '> 1000X')\n",
              cnn.computesPerFrame / rpn.computesPerFrame,
              cnn.memoryBits / rpn.memoryBits);
  return 0;
}
