// IoVT node budget and ingest resilience — the paper's motivating
// numbers, made concrete, plus the fault tolerance of the node ingest
// layer (src/node/) that feeds those pipelines.
//
// Section 1 (budget): for each processing + transmission policy, reports
// duty cycle, energy per frame, mean node power, uplink bandwidth and
// battery life on a Cortex-M-class node (see src/core/node_model.hpp):
//
//   * EBBIOT, transmit tracks            (the paper's design point)
//   * EBBIOT, transmit EBBI frames       (edge detection, raw-ish frames)
//   * NN-filt + EBMS, transmit tracks    (event-domain baseline)
//   * no processing, transmit raw events (stream everything)
//   * frame camera + CNN, transmit boxes (the ">1000X" strawman)
//
// Workloads are measured from SyntheticENG traffic, not assumed.
//
// Section 2 (resilience sweep): {1, 8, 32} sensor streams per node ×
// {clean, bitflip, truncate, flood, stall} seeded fault profiles driven
// through NodeSupervisor/SensorSession on a virtual ingest clock.
// Reports delivered/dropped windows, corruption and resync counts, and
// p50/p99 drain latency per cell, plus the steady-state allocation count
// of the session hot path (pinned to zero by tests/test_allocation.cpp).
// `--json PATH` additionally emits the sweep as BENCH_node.json for
// tools/bench_node_gate.py; all counters are seed-deterministic, only
// the wall-clock column varies across hosts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/common/alloc_counter.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/node_model.hpp"
#include "src/core/runner.hpp"
#include "src/node/fault_injection.hpp"
#include "src/node/node_supervisor.hpp"
#include "src/node/wire_format.hpp"
#include "src/resource/cost_model.hpp"
#include "src/sim/recording.hpp"

namespace {

using namespace ebbiot;

void printRow(const char* name, const NodeBudget& b) {
  std::printf("%-26s %9.2f%% %12.1f %10.2f %12.0f %12.0f%s\n", name,
              b.dutyCycle * 100.0,
              b.processorEnergyUjPerFrame + b.radioEnergyUjPerFrame +
                  b.sensorEnergyUjPerFrame,
              b.meanPowerMw, b.bandwidthBps, b.batteryLifeHours,
              b.feasible ? "" : "  [INFEASIBLE]");
}

// ---- resilience sweep ----------------------------------------------

constexpr TimeUs kSweepWindowUs = 10'000;
constexpr std::uint32_t kSweepFramesPerStream = 256;
constexpr std::uint32_t kSweepEventsPerFrame = 48;

/// Counting sink: the sweep cares about delivery totals, not contents.
struct CountingSink final : WindowSink {
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  void onWindow(const EventPacket& window, std::uint32_t /*seq*/,
                TimeUs /*ingestTime*/) override {
    ++windows;
    events += window.size();
  }
};

/// Deterministic pristine stream for sensor `sensorId`: dense in-bounds
/// windows at the sweep cadence (closed-form, no RNG, so every cell's
/// input is identical across hosts).
std::vector<std::vector<std::byte>> makePristineFrames(
    std::uint16_t sensorId) {
  std::vector<std::vector<std::byte>> frames;
  frames.reserve(kSweepFramesPerStream);
  for (std::uint32_t seq = 0; seq < kSweepFramesPerStream; ++seq) {
    const TimeUs tStart = static_cast<TimeUs>(seq) * kSweepWindowUs;
    EventPacket window(tStart, tStart + kSweepWindowUs);
    for (std::uint32_t j = 0; j < kSweepEventsPerFrame; ++j) {
      Event e;
      e.x = static_cast<std::uint16_t>((sensorId * 13 + seq + 5 * j) % 240);
      e.y = static_cast<std::uint16_t>((sensorId * 7 + 3 * seq + j) % 180);
      e.p = (seq + j) % 2 == 0 ? Polarity::kOn : Polarity::kOff;
      e.t = tStart + static_cast<TimeUs>(j) * 150;
      window.push(e);
    }
    std::vector<std::byte> bytes;
    encodeFrame(bytes, seq, sensorId, window);
    frames.push_back(std::move(bytes));
  }
  return frames;
}

struct SweepProfile {
  const char* name;
  FaultProfile profile;
};

std::vector<SweepProfile> sweepProfiles() {
  std::vector<SweepProfile> out;
  out.push_back({"clean", {}});
  {
    FaultProfile p;
    p.bitFlipProb = 0.05;
    out.push_back({"bitflip", p});
  }
  {
    FaultProfile p;
    p.truncateProb = 0.05;
    out.push_back({"truncate", p});
  }
  {
    FaultProfile p;
    p.floodProb = 0.02;
    out.push_back({"flood", p});
  }
  {
    FaultProfile p;
    p.stallProb = 0.02;
    out.push_back({"stall", p});
  }
  return out;
}

struct CellResult {
  const char* profile = "";
  int streams = 0;
  SessionCounters totals;            ///< summed across sessions
  std::uint64_t sinkWindows = 0;     ///< delivered as seen by the sinks
  std::size_t quarantined = 0;       ///< sessions in the terminal state
  TimeUs p50LatencyUs = 0;
  TimeUs p99LatencyUs = 0;
  double wallNsPerWindow = 0.0;      ///< host-dependent; not gated
};

SessionCounters& operator+=(SessionCounters& a, const SessionCounters& b) {
  a.bytesOffered += b.bytesOffered;
  a.bytesDroppedOverflow += b.bytesDroppedOverflow;
  a.bytesSkipped += b.bytesSkipped;
  a.resyncs += b.resyncs;
  a.framesCorrupted += b.framesCorrupted;
  a.framesDecoded += b.framesDecoded;
  a.framesAccepted += b.framesAccepted;
  a.seqGaps += b.seqGaps;
  a.framesLostToGaps += b.framesLostToGaps;
  a.outOfOrderDropped += b.outOfOrderDropped;
  a.timestampRegressions += b.timestampRegressions;
  a.wrapEpochs += b.wrapEpochs;
  a.windowsRejected += b.windowsRejected;
  a.bytesIgnoredQuarantined += b.bytesIgnoredQuarantined;
  a.watchdogStalls += b.watchdogStalls;
  a.degradeEntries += b.degradeEntries;
  a.recoveries += b.recoveries;
  a.windowsDelivered += b.windowsDelivered;
  a.windowsShedStale += b.windowsShedStale;
  a.windowsShedOverload += b.windowsShedOverload;
  return a;
}

TimeUs percentile(const std::vector<TimeUs>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const auto last = sorted.size() - 1;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(last) + 0.5);
  return sorted[std::min(idx, last)];
}

/// Drive one (profile × streams) cell on a virtual ingest clock: chunks
/// are delivered in global time order, the supervisor pumps and ticks
/// watchdogs once per window period (including across stall gaps, so
/// the watchdog/recovery path runs exactly as it would live).
CellResult runCell(const SweepProfile& sweep, int streams,
                   std::size_t cellIndex, ThreadPool& pool) {
  NodeConfig config;
  config.watchdogTimeoutUs = 200'000;  // well under the 1 s stall gap
  NodeSupervisor supervisor(config, pool);

  std::vector<CountingSink> sinks(static_cast<std::size_t>(streams));
  struct Feed {
    std::vector<DeliveryChunk> chunks;
    std::size_t next = 0;
    TimeUs dueAt = 0;
  };
  std::vector<Feed> feeds(static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    const auto id = static_cast<std::uint16_t>(s);
    supervisor.addSensor({id, /*priority=*/s % 4, &sinks[static_cast<
        std::size_t>(s)]});
    FaultInjector injector(0x5EED0000ull + cellIndex * 977ull +
                           static_cast<std::uint64_t>(s));
    injector.setProfile(sweep.profile);
    const auto pristine = makePristineFrames(id);
    Feed& feed = feeds[static_cast<std::size_t>(s)];
    feed.chunks = injector.corrupt(pristine);
    feed.dueAt = feed.chunks.empty() ? 0 : feed.chunks.front().delayUs;
  }

  const auto t0 = std::chrono::steady_clock::now();
  TimeUs now = 0;
  TimeUs lastPump = 0;
  for (;;) {
    int nextStream = -1;
    for (int s = 0; s < streams; ++s) {
      const Feed& feed = feeds[static_cast<std::size_t>(s)];
      if (feed.next >= feed.chunks.size()) {
        continue;
      }
      if (nextStream < 0 ||
          feed.dueAt < feeds[static_cast<std::size_t>(nextStream)].dueAt) {
        nextStream = s;
      }
    }
    if (nextStream < 0) {
      break;
    }
    Feed& feed = feeds[static_cast<std::size_t>(nextStream)];
    const TimeUs target = std::max(now, feed.dueAt);
    while (lastPump + kSweepWindowUs <= target) {
      lastPump += kSweepWindowUs;
      supervisor.tickWatchdogs(lastPump);
      (void)supervisor.pump(lastPump);
    }
    now = target;
    supervisor.offerBytes(static_cast<std::uint16_t>(nextStream),
                          feed.chunks[feed.next].bytes, now);
    ++feed.next;
    if (feed.next < feed.chunks.size()) {
      feed.dueAt = now + feed.chunks[feed.next].delayUs;
    }
  }
  now += kSweepWindowUs;
  supervisor.tickWatchdogs(now);
  (void)supervisor.pump(now);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  CellResult result;
  result.profile = sweep.name;
  result.streams = streams;
  std::vector<TimeUs> latencies;
  for (int s = 0; s < streams; ++s) {
    SensorSession* session = supervisor.find(static_cast<std::uint16_t>(s));
    result.totals += session->counters();
    if (session->state() == SessionState::kQuarantined) {
      ++result.quarantined;
    }
    const auto samples = session->latencySamples();
    latencies.insert(latencies.end(), samples.begin(), samples.end());
    result.sinkWindows += sinks[static_cast<std::size_t>(s)].windows;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50LatencyUs = percentile(latencies, 0.50);
  result.p99LatencyUs = percentile(latencies, 0.99);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      elapsed).count();
  result.wallNsPerWindow =
      result.totals.windowsDelivered == 0
          ? 0.0
          : static_cast<double>(ns) /
                static_cast<double>(result.totals.windowsDelivered);
  return result;
}

/// Steady-state allocations per window of the single-session hot path
/// (offerBytes -> decode -> queue -> drainInto), after warm-up.  Returns
/// -1 when the counter is disabled (sanitizer builds).
double measureSteadyAllocsPerWindow() {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  return -1.0;
#else
  NodeConfig config;
  SensorSession session(1, config);
  CountingSink sink;
  const auto frames = makePristineFrames(1);
  constexpr std::uint32_t kWarm = 32;
  std::uint32_t seq = 0;
  for (; seq < kWarm; ++seq) {
    session.offerBytes(frames[seq],
                       static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
    (void)session.drainInto(sink,
                            static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
  }
  const std::uint64_t before = gAllocationCount.load();
  for (; seq < kSweepFramesPerStream; ++seq) {
    session.offerBytes(frames[seq],
                       static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
    (void)session.drainInto(sink,
                            static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
  }
  const std::uint64_t after = gAllocationCount.load();
  return static_cast<double>(after - before) /
         static_cast<double>(kSweepFramesPerStream - kWarm);
#endif
}

void writeJson(const char* path, const std::vector<CellResult>& cells,
               double steadyAllocs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_iovt_node\",\n");
  std::fprintf(f, "  \"frames_per_stream\": %u,\n", kSweepFramesPerStream);
  std::fprintf(f, "  \"frame_period_us\": %lld,\n",
               static_cast<long long>(kSweepWindowUs));
  if (steadyAllocs < 0.0) {
    std::fprintf(f, "  \"steady_allocs_per_window\": null,\n");
  } else {
    std::fprintf(f, "  \"steady_allocs_per_window\": %.4f,\n", steadyAllocs);
  }
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    const SessionCounters& t = c.totals;
    std::fprintf(
        f,
        "    {\"profile\": \"%s\", \"streams\": %d,"
        " \"frames_decoded\": %llu, \"frames_corrupted\": %llu,"
        " \"frames_accepted\": %llu, \"resyncs\": %llu,"
        " \"seq_gaps\": %llu, \"frames_lost_to_gaps\": %llu,"
        " \"out_of_order_dropped\": %llu, \"timestamp_regressions\": %llu,"
        " \"windows_delivered\": %llu, \"windows_rejected\": %llu,"
        " \"windows_shed_stale\": %llu, \"windows_shed_overload\": %llu,"
        " \"watchdog_stalls\": %llu, \"degrade_entries\": %llu,"
        " \"recoveries\": %llu, \"sessions_quarantined\": %zu,"
        " \"p50_latency_us\": %lld, \"p99_latency_us\": %lld,"
        " \"wall_ns_per_window\": %.1f}%s\n",
        c.profile, c.streams,
        static_cast<unsigned long long>(t.framesDecoded),
        static_cast<unsigned long long>(t.framesCorrupted),
        static_cast<unsigned long long>(t.framesAccepted),
        static_cast<unsigned long long>(t.resyncs),
        static_cast<unsigned long long>(t.seqGaps),
        static_cast<unsigned long long>(t.framesLostToGaps),
        static_cast<unsigned long long>(t.outOfOrderDropped),
        static_cast<unsigned long long>(t.timestampRegressions),
        static_cast<unsigned long long>(t.windowsDelivered),
        static_cast<unsigned long long>(t.windowsRejected),
        static_cast<unsigned long long>(t.windowsShedStale),
        static_cast<unsigned long long>(t.windowsShedOverload),
        static_cast<unsigned long long>(t.watchdogStalls),
        static_cast<unsigned long long>(t.degradeEntries),
        static_cast<unsigned long long>(t.recoveries), c.quarantined,
        static_cast<long long>(c.p50LatencyUs),
        static_cast<long long>(c.p99LatencyUs), c.wallNsPerWindow,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void runResilienceSweep(const char* jsonPath) {
  std::printf("\nIngest resilience sweep — %u frames/stream, %lld us "
              "windows, seeded fault profiles\n",
              kSweepFramesPerStream,
              static_cast<long long>(kSweepWindowUs));
  std::printf("%-10s %8s %10s %9s %9s %8s %7s %10s %10s\n", "profile",
              "streams", "delivered", "dropped", "corrupt", "resyncs",
              "stalls", "p50 us", "p99 us");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------"
              "------------------------------");
  ThreadPool pool(4);
  const auto profiles = sweepProfiles();
  std::vector<CellResult> cells;
  std::size_t cellIndex = 0;
  for (const SweepProfile& profile : profiles) {
    for (int streams : {1, 8, 32}) {
      CellResult cell = runCell(profile, streams, cellIndex++, pool);
      const SessionCounters& t = cell.totals;
      const std::uint64_t dropped = t.windowsShedStale +
                                    t.windowsShedOverload +
                                    t.windowsRejected;
      std::printf("%-10s %8d %10llu %9llu %9llu %8llu %7llu %10lld "
                  "%10lld\n",
                  cell.profile, cell.streams,
                  static_cast<unsigned long long>(t.windowsDelivered),
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(t.framesCorrupted),
                  static_cast<unsigned long long>(t.resyncs),
                  static_cast<unsigned long long>(t.watchdogStalls),
                  static_cast<long long>(cell.p50LatencyUs),
                  static_cast<long long>(cell.p99LatencyUs));
      cells.push_back(cell);
    }
  }
  const double steadyAllocs = measureSteadyAllocsPerWindow();
  if (steadyAllocs < 0.0) {
    std::printf("\nsteady-state allocs/window: n/a (counter disabled "
                "under sanitizers)\n");
  } else {
    std::printf("\nsteady-state allocs/window (single-session hot path): "
                "%.4f\n", steadyAllocs);
  }
  if (jsonPath != nullptr) {
    writeJson(jsonPath, cells, steadyAllocs);
    std::printf("wrote %s\n", jsonPath);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ebbiot;

  const char* jsonPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
  }

  // Measure the workloads on 30 s of ENG traffic.
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = 30.0;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult run = runRecording(*rec.source, *rec.scenario,
                                     secondsToUs(spec.durationS), config);

  const NodePlatform node;
  const double meanTracks = 2.0;  // the paper's NT operating point

  std::printf("IoVT node budget — measured on SyntheticENG (%zu frames, "
              "%.0f raw events/frame)\n",
              run.frames, run.meanEventsPerFrame);
  std::printf("platform: %.0f MHz MCU, %.0f mW active / %.0f uW sleep, "
              "%.0f nJ/bit radio, %.0f mW sensor\n\n",
              node.clockHz / 1e6, node.activePowerMw, node.sleepPowerUw,
              node.radioEnergyPerBitNj, node.sensorPowerMw);
  std::printf("%-26s %10s %12s %10s %12s %12s\n", "policy", "duty",
              "uJ/frame", "mean mW", "uplink bps", "battery h");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------"
              "------------------------------");

  {
    NodeWorkload w;
    w.opsPerFrame = run.ebbiot->meanOpsPerFrame();
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("EBBIOT -> tracks", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = run.ebbiot->meanOpsPerFrame();
    w.txBitsPerFrame = ebbiPayloadBits(240, 180);
    printRow("EBBIOT -> EBBI frames", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = run.ebms->meanOpsPerFrame();
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("NN-filt+EBMS -> tracks", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = 0.0;
    w.txBitsPerFrame = rawEventPayloadBits(run.meanEventsPerFrame);
    printRow("no processing -> events", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = frameBasedDetectorReference().computesPerFrame;
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("frame CNN -> boxes", estimateNodeBudget(node, w));
  }

  std::printf("\nEBBIOT keeps the processor asleep most of each 66 ms "
              "window and the radio\npayload to a few hundred bits — the "
              "paper's IoVT argument in one table.\n(The sensor's own "
              "power dominates once processing is this cheap.)\n");

  runResilienceSweep(jsonPath);
  return 0;
}
