// IoVT node budget — the paper's motivating numbers, made concrete.
//
// For each processing + transmission policy, reports duty cycle, energy
// per frame, mean node power, uplink bandwidth and battery life on a
// Cortex-M-class node (see src/core/node_model.hpp):
//
//   * EBBIOT, transmit tracks            (the paper's design point)
//   * EBBIOT, transmit EBBI frames       (edge detection, raw-ish frames)
//   * NN-filt + EBMS, transmit tracks    (event-domain baseline)
//   * no processing, transmit raw events (stream everything)
//   * frame camera + CNN, transmit boxes (the ">1000X" strawman)
//
// Workloads are measured from SyntheticENG traffic, not assumed.
#include <cstdio>

#include "src/core/node_model.hpp"
#include "src/core/runner.hpp"
#include "src/resource/cost_model.hpp"
#include "src/sim/recording.hpp"

namespace {

void printRow(const char* name, const ebbiot::NodeBudget& b) {
  std::printf("%-26s %9.2f%% %12.1f %10.2f %12.0f %12.0f%s\n", name,
              b.dutyCycle * 100.0,
              b.processorEnergyUjPerFrame + b.radioEnergyUjPerFrame +
                  b.sensorEnergyUjPerFrame,
              b.meanPowerMw, b.bandwidthBps, b.batteryLifeHours,
              b.feasible ? "" : "  [INFEASIBLE]");
}

}  // namespace

int main() {
  using namespace ebbiot;

  // Measure the workloads on 30 s of ENG traffic.
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = 30.0;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult run = runRecording(*rec.source, *rec.scenario,
                                     secondsToUs(spec.durationS), config);

  const NodePlatform node;
  const double meanTracks = 2.0;  // the paper's NT operating point

  std::printf("IoVT node budget — measured on SyntheticENG (%zu frames, "
              "%.0f raw events/frame)\n",
              run.frames, run.meanEventsPerFrame);
  std::printf("platform: %.0f MHz MCU, %.0f mW active / %.0f uW sleep, "
              "%.0f nJ/bit radio, %.0f mW sensor\n\n",
              node.clockHz / 1e6, node.activePowerMw, node.sleepPowerUw,
              node.radioEnergyPerBitNj, node.sensorPowerMw);
  std::printf("%-26s %10s %12s %10s %12s %12s\n", "policy", "duty",
              "uJ/frame", "mean mW", "uplink bps", "battery h");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------"
              "------------------------------");

  {
    NodeWorkload w;
    w.opsPerFrame = run.ebbiot->meanOpsPerFrame();
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("EBBIOT -> tracks", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = run.ebbiot->meanOpsPerFrame();
    w.txBitsPerFrame = ebbiPayloadBits(240, 180);
    printRow("EBBIOT -> EBBI frames", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = run.ebms->meanOpsPerFrame();
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("NN-filt+EBMS -> tracks", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = 0.0;
    w.txBitsPerFrame = rawEventPayloadBits(run.meanEventsPerFrame);
    printRow("no processing -> events", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = frameBasedDetectorReference().computesPerFrame;
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("frame CNN -> boxes", estimateNodeBudget(node, w));
  }

  std::printf("\nEBBIOT keeps the processor asleep most of each 66 ms "
              "window and the radio\npayload to a few hundred bits — the "
              "paper's IoVT argument in one table.\n(The sensor's own "
              "power dominates once processing is this cheap.)\n");
  return 0;
}
