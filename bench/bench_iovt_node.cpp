// IoVT node budget and ingest resilience — the paper's motivating
// numbers, made concrete, plus the fault tolerance of the node ingest
// layer (src/node/) that feeds those pipelines.
//
// Section 1 (budget): for each processing + transmission policy, reports
// duty cycle, energy per frame, mean node power, uplink bandwidth and
// battery life on a Cortex-M-class node (see src/core/node_model.hpp):
//
//   * EBBIOT, transmit tracks            (the paper's design point)
//   * EBBIOT, transmit EBBI frames       (edge detection, raw-ish frames)
//   * NN-filt + EBMS, transmit tracks    (event-domain baseline)
//   * no processing, transmit raw events (stream everything)
//   * frame camera + CNN, transmit boxes (the ">1000X" strawman)
//
// Workloads are measured from SyntheticENG traffic, not assumed.
//
// Section 2 (resilience sweep): {1, 8, 32} sensor streams per node ×
// {clean, bitflip, truncate, flood, stall} seeded fault profiles driven
// through NodeSupervisor/SensorSession on a virtual ingest clock.
// Reports delivered/dropped windows, corruption and resync counts, and
// p50/p99 drain latency per cell, plus the steady-state allocation count
// of the session hot path (pinned to zero by tests/test_allocation.cpp).
// Section 3 (live cells): the same ingest layer under REAL producer
// threads — LiveTransport drives {64, 256, 1024} concurrent lossless
// streams against a scaled wall clock while the supervisor pumps on the
// bench thread.  Delivery counters stay exactly deterministic (lossless
// + reject policy: every window delivered exactly once); only wall time
// and wait counts vary across hosts.
//
// Section 4 (accuracy under fault): per-sensor tracking pipelines
// (PipelineSink, gap-coast + snapshot resync) fed through each fault
// profile on the virtual clock, scored as matched-track recall against
// the fault-free run of the same windows (greedy IoU matching).  Clean
// recall is 1.0 by construction — bit-identical delivery — and each
// fault profile's degradation is measured, committed, and gated.
//
// `--json PATH` additionally emits the sweep as BENCH_node.json for
// tools/bench_node_gate.py; all counters are seed-deterministic, only
// the wall-clock column varies across hosts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/alloc_counter.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/node_model.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/runner.hpp"
#include "src/eval/matching.hpp"
#include "src/node/fault_injection.hpp"
#include "src/node/live_transport.hpp"
#include "src/node/node_supervisor.hpp"
#include "src/node/pipeline_sink.hpp"
#include "src/node/wire_format.hpp"
#include "src/resource/cost_model.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/recording.hpp"
#include "src/sim/scene.hpp"

namespace {

using namespace ebbiot;

void printRow(const char* name, const NodeBudget& b) {
  std::printf("%-26s %9.2f%% %12.1f %10.2f %12.0f %12.0f%s\n", name,
              b.dutyCycle * 100.0,
              b.processorEnergyUjPerFrame + b.radioEnergyUjPerFrame +
                  b.sensorEnergyUjPerFrame,
              b.meanPowerMw, b.bandwidthBps, b.batteryLifeHours,
              b.feasible ? "" : "  [INFEASIBLE]");
}

// ---- resilience sweep ----------------------------------------------

constexpr TimeUs kSweepWindowUs = 10'000;
constexpr std::uint32_t kSweepFramesPerStream = 256;
constexpr std::uint32_t kSweepEventsPerFrame = 48;

/// Counting sink: the sweep cares about delivery totals, not contents.
struct CountingSink final : WindowSink {
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  void onWindow(const EventPacket& window, std::uint32_t /*seq*/,
                TimeUs /*ingestTime*/) override {
    ++windows;
    events += window.size();
  }
};

/// Deterministic pristine stream for sensor `sensorId`: dense in-bounds
/// windows at the sweep cadence (closed-form, no RNG, so every cell's
/// input is identical across hosts).
std::vector<std::vector<std::byte>> makePristineFrames(
    std::uint16_t sensorId,
    std::uint32_t frameCount = kSweepFramesPerStream) {
  std::vector<std::vector<std::byte>> frames;
  frames.reserve(frameCount);
  for (std::uint32_t seq = 0; seq < frameCount; ++seq) {
    const TimeUs tStart = static_cast<TimeUs>(seq) * kSweepWindowUs;
    EventPacket window(tStart, tStart + kSweepWindowUs);
    for (std::uint32_t j = 0; j < kSweepEventsPerFrame; ++j) {
      Event e;
      e.x = static_cast<std::uint16_t>((sensorId * 13 + seq + 5 * j) % 240);
      e.y = static_cast<std::uint16_t>((sensorId * 7 + 3 * seq + j) % 180);
      e.p = (seq + j) % 2 == 0 ? Polarity::kOn : Polarity::kOff;
      e.t = tStart + static_cast<TimeUs>(j) * 150;
      window.push(e);
    }
    std::vector<std::byte> bytes;
    encodeFrame(bytes, seq, sensorId, window);
    frames.push_back(std::move(bytes));
  }
  return frames;
}

struct SweepProfile {
  const char* name;
  FaultProfile profile;
};

std::vector<SweepProfile> sweepProfiles() {
  std::vector<SweepProfile> out;
  out.push_back({"clean", {}});
  {
    FaultProfile p;
    p.bitFlipProb = 0.05;
    out.push_back({"bitflip", p});
  }
  {
    FaultProfile p;
    p.truncateProb = 0.05;
    out.push_back({"truncate", p});
  }
  {
    FaultProfile p;
    p.floodProb = 0.02;
    out.push_back({"flood", p});
  }
  {
    FaultProfile p;
    p.stallProb = 0.02;
    out.push_back({"stall", p});
  }
  return out;
}

struct CellResult {
  const char* profile = "";
  int streams = 0;
  SessionCounters totals;            ///< summed across sessions
  std::uint64_t sinkWindows = 0;     ///< delivered as seen by the sinks
  std::size_t quarantined = 0;       ///< sessions in the terminal state
  TimeUs p50LatencyUs = 0;
  TimeUs p99LatencyUs = 0;
  double wallNsPerWindow = 0.0;      ///< host-dependent; not gated
};

SessionCounters& operator+=(SessionCounters& a, const SessionCounters& b) {
  a.bytesOffered += b.bytesOffered;
  a.bytesDroppedOverflow += b.bytesDroppedOverflow;
  a.bytesSkipped += b.bytesSkipped;
  a.resyncs += b.resyncs;
  a.framesCorrupted += b.framesCorrupted;
  a.framesDecoded += b.framesDecoded;
  a.framesAccepted += b.framesAccepted;
  a.seqGaps += b.seqGaps;
  a.framesLostToGaps += b.framesLostToGaps;
  a.outOfOrderDropped += b.outOfOrderDropped;
  a.timestampRegressions += b.timestampRegressions;
  a.wrapEpochs += b.wrapEpochs;
  a.windowsRejected += b.windowsRejected;
  a.bytesIgnoredQuarantined += b.bytesIgnoredQuarantined;
  a.watchdogStalls += b.watchdogStalls;
  a.degradeEntries += b.degradeEntries;
  a.recoveryAttempts += b.recoveryAttempts;
  a.recoveryFailures += b.recoveryFailures;
  a.recoveries += b.recoveries;
  a.windowsDelivered += b.windowsDelivered;
  a.windowsShedStale += b.windowsShedStale;
  a.windowsShedOverload += b.windowsShedOverload;
  return a;
}

TimeUs percentile(const std::vector<TimeUs>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const auto last = sorted.size() - 1;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(last) + 0.5);
  return sorted[std::min(idx, last)];
}

/// Drive one (profile × streams) cell on a virtual ingest clock: chunks
/// are delivered in global time order, the supervisor pumps and ticks
/// watchdogs once per window period (including across stall gaps, so
/// the watchdog/recovery path runs exactly as it would live).
///
/// Two deterministic realism knobs keep the latency distribution honest
/// (without them every sample is exactly one period — ingest and drain
/// both land on pump boundaries and the percentiles degenerate to
/// p50 == p99):
///   * each stream starts at a fixed phase offset inside the window
///     period, as unsynchronised sensors do, so queue waits spread over
///     (0, period];
///   * every 16th pump boundary the consumer skips its drain (a
///     deterministic stand-in for scheduler/GC hiccups), so a slice of
///     windows waits into the second period and the tail is real.
CellResult runCell(const SweepProfile& sweep, int streams,
                   std::size_t cellIndex, ThreadPool& pool) {
  NodeConfig config;
  config.watchdogTimeoutUs = 200'000;  // well under the 1 s stall gap
  NodeSupervisor supervisor(config, pool);

  std::vector<CountingSink> sinks(static_cast<std::size_t>(streams));
  struct Feed {
    std::vector<DeliveryChunk> chunks;
    std::size_t next = 0;
    TimeUs dueAt = 0;
  };
  std::vector<Feed> feeds(static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    const auto id = static_cast<std::uint16_t>(s);
    supervisor.addSensor({id, /*priority=*/s % 4, &sinks[static_cast<
        std::size_t>(s)]});
    FaultInjector injector(0x5EED0000ull + cellIndex * 977ull +
                           static_cast<std::uint64_t>(s));
    injector.setProfile(sweep.profile);
    const auto pristine = makePristineFrames(id);
    Feed& feed = feeds[static_cast<std::size_t>(s)];
    feed.chunks = injector.corrupt(pristine);
    // Fixed per-stream phase inside the window period (2611 is coprime
    // to the 10 ms period, so 32 streams land on 32 distinct phases).
    const TimeUs phase =
        (static_cast<TimeUs>(s) * 2611) % kSweepWindowUs;
    feed.dueAt =
        phase + (feed.chunks.empty() ? 0 : feed.chunks.front().delayUs);
  }

  const auto t0 = std::chrono::steady_clock::now();
  TimeUs now = 0;
  TimeUs lastPump = 0;
  std::uint64_t pumpTick = 0;
  for (;;) {
    int nextStream = -1;
    for (int s = 0; s < streams; ++s) {
      const Feed& feed = feeds[static_cast<std::size_t>(s)];
      if (feed.next >= feed.chunks.size()) {
        continue;
      }
      if (nextStream < 0 ||
          feed.dueAt < feeds[static_cast<std::size_t>(nextStream)].dueAt) {
        nextStream = s;
      }
    }
    if (nextStream < 0) {
      break;
    }
    Feed& feed = feeds[static_cast<std::size_t>(nextStream)];
    const TimeUs target = std::max(now, feed.dueAt);
    while (lastPump + kSweepWindowUs <= target) {
      lastPump += kSweepWindowUs;
      supervisor.tickWatchdogs(lastPump);
      // Deterministic consumer hiccup: skip one drain in every 16.  The
      // backlog (bounded by queueCapacity) is drained next boundary, so
      // nothing is lost, but those windows wait into a second period.
      if (++pumpTick % 16 != 7) {
        (void)supervisor.pump(lastPump);
      }
    }
    now = target;
    supervisor.offerBytes(static_cast<std::uint16_t>(nextStream),
                          feed.chunks[feed.next].bytes, now);
    ++feed.next;
    if (feed.next < feed.chunks.size()) {
      feed.dueAt = now + feed.chunks[feed.next].delayUs;
    }
  }
  now += kSweepWindowUs;
  supervisor.tickWatchdogs(now);
  (void)supervisor.pump(now);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  CellResult result;
  result.profile = sweep.name;
  result.streams = streams;
  std::vector<TimeUs> latencies;
  for (int s = 0; s < streams; ++s) {
    SensorSession* session = supervisor.find(static_cast<std::uint16_t>(s));
    result.totals += session->counters();
    if (session->state() == SessionState::kQuarantined) {
      ++result.quarantined;
    }
    const auto samples = session->latencySamples();
    latencies.insert(latencies.end(), samples.begin(), samples.end());
    result.sinkWindows += sinks[static_cast<std::size_t>(s)].windows;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50LatencyUs = percentile(latencies, 0.50);
  result.p99LatencyUs = percentile(latencies, 0.99);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      elapsed).count();
  result.wallNsPerWindow =
      result.totals.windowsDelivered == 0
          ? 0.0
          : static_cast<double>(ns) /
                static_cast<double>(result.totals.windowsDelivered);
  return result;
}

/// Steady-state allocations per window of the single-session hot path
/// (offerBytes -> decode -> queue -> drainInto), after warm-up.  Returns
/// -1 when the counter is disabled (sanitizer builds).
double measureSteadyAllocsPerWindow() {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  return -1.0;
#else
  NodeConfig config;
  SensorSession session(1, config);
  CountingSink sink;
  const auto frames = makePristineFrames(1);
  constexpr std::uint32_t kWarm = 32;
  std::uint32_t seq = 0;
  for (; seq < kWarm; ++seq) {
    session.offerBytes(frames[seq],
                       static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
    (void)session.drainInto(sink,
                            static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
  }
  const std::uint64_t before = gAllocationCount.load();
  for (; seq < kSweepFramesPerStream; ++seq) {
    session.offerBytes(frames[seq],
                       static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
    (void)session.drainInto(sink,
                            static_cast<TimeUs>(seq + 1) * kSweepWindowUs);
  }
  const std::uint64_t after = gAllocationCount.load();
  return static_cast<double>(after - before) /
         static_cast<double>(kSweepFramesPerStream - kWarm);
#endif
}

// ---- live real-thread cells ----------------------------------------

constexpr std::uint32_t kLiveFramesPerStream = 64;

struct LiveCellResult {
  int streams = 0;
  int producerThreads = 0;
  std::uint64_t chunksDelivered = 0;
  std::uint64_t windowsDelivered = 0;  ///< summed session counters
  std::uint64_t framesAccepted = 0;
  std::uint64_t windowsRejected = 0;
  std::uint64_t losslessWaits = 0;  ///< host-dependent; not gated
  std::size_t quarantined = 0;
  double wallSeconds = 0.0;  ///< host-dependent; not gated
};

/// One clean lossless cell over real producer threads: every window is
/// delivered exactly once (kRejectPacket + lossless backpressure), so
/// the delivery counters are exact across hosts even though thread
/// scheduling is not.
LiveCellResult runLiveCell(int streams, ThreadPool& pool) {
  NodeConfig config;
  config.queueCapacity = 4;
  config.backpressure = BackpressurePolicy::kRejectPacket;
  // Producer scheduling is up to the OS under a scaled clock; the
  // watchdog must not mistake a preempted producer for a dead sensor.
  config.watchdogTimeoutUs = 100'000'000;
  NodeSupervisor supervisor(config, pool);

  std::vector<CountingSink> sinks(static_cast<std::size_t>(streams));
  std::vector<LiveStreamSpec> specs;
  specs.reserve(static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    const auto id = static_cast<std::uint16_t>(s);
    supervisor.addSensor({id, /*priority=*/s % 4,
                          &sinks[static_cast<std::size_t>(s)]});
    LiveStreamSpec spec;
    spec.sensorId = id;
    const auto frames = makePristineFrames(id, kLiveFramesPerStream);
    spec.chunks.reserve(frames.size());
    for (const std::vector<std::byte>& frame : frames) {
      spec.chunks.push_back(DeliveryChunk{frame, kSweepWindowUs});
    }
    specs.push_back(std::move(spec));
  }

  LiveTransportConfig transport;
  transport.producerThreads = 4;
  transport.timeScale = 200.0;
  transport.pumpPeriodUs = kSweepWindowUs;
  transport.lossless = true;
  LiveTransport live(supervisor, specs, transport);
  const LiveTransport::RunStats stats = live.run();

  LiveCellResult result;
  result.streams = streams;
  result.producerThreads = transport.producerThreads;
  result.chunksDelivered = stats.chunksDelivered;
  result.losslessWaits = stats.losslessWaits;
  result.wallSeconds = stats.wallSeconds;
  for (int s = 0; s < streams; ++s) {
    const SensorSession* session =
        supervisor.find(static_cast<std::uint16_t>(s));
    const SessionCounters c = session->counters();
    result.windowsDelivered += c.windowsDelivered;
    result.framesAccepted += c.framesAccepted;
    result.windowsRejected += c.windowsRejected;
    if (session->state() == SessionState::kQuarantined) {
      ++result.quarantined;
    }
  }
  return result;
}

// ---- accuracy under fault ------------------------------------------

constexpr int kAccWidth = 64;
constexpr int kAccHeight = 48;
constexpr int kAccSensors = 4;
constexpr std::uint32_t kAccFrames = 128;
constexpr float kAccIouThreshold = 0.3F;

struct AccuracyRow {
  const char* profile = "";
  std::uint64_t baselineTracks = 0;  ///< fault-free tracks over all windows
  std::uint64_t matchedTracks = 0;   ///< IoU-matched under the fault
  std::uint64_t windowsTracked = 0;  ///< windows that reached the pipeline
  std::uint64_t windowsCoasted = 0;  ///< gap windows bridged by coasting
  std::uint64_t resyncs = 0;         ///< snapshot restores + resets
  double recall = 0.0;
};

/// Tracked windows for one accuracy sensor: a car crossing the small
/// frame, synthesised deterministically per sensor seed.
std::vector<EventPacket> makeTrackedWindows(std::uint64_t seed) {
  ScriptedScene scene(kAccWidth, kAccHeight);
  scene.addLinear(ObjectClass::kCar, BBox{2, 18, 20, 10}, Vec2f{120, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig config;
  config.backgroundActivityHz = 0.2;
  config.seed = seed;
  FastEventSynth synth(scene, config);
  std::vector<EventPacket> windows;
  windows.reserve(kAccFrames);
  for (std::uint32_t i = 0; i < kAccFrames; ++i) {
    windows.push_back(synth.nextWindow(kSweepWindowUs));
  }
  return windows;
}

EbbiotPipelineConfig accuracyPipelineConfig() {
  EbbiotPipelineConfig config;
  config.width = kAccWidth;
  config.height = kAccHeight;
  return config;
}

/// Per-window tracks of the fault-free single-threaded reference.
std::vector<Tracks> accuracyBaseline(
    const std::vector<EventPacket>& windows) {
  EbbiotPipeline pipeline(accuracyPipelineConfig());
  std::vector<Tracks> perWindow;
  perWindow.reserve(windows.size());
  for (const EventPacket& window : windows) {
    perWindow.push_back(pipeline.processWindow(
        latchReadout(window, kAccWidth, kAccHeight)));
  }
  return perWindow;
}

/// Run one fault profile over per-sensor tracking pipelines on the
/// virtual clock and score matched-track recall against the fault-free
/// baseline: every baseline track in every window either has an
/// IoU-matched counterpart in the faulted run's output for that window,
/// or counts as a miss (including windows that never arrived).
AccuracyRow runAccuracyCell(const SweepProfile& sweep,
                            const std::vector<std::vector<EventPacket>>&
                                sensorWindows,
                            const std::vector<std::vector<Tracks>>& baselines,
                            ThreadPool& pool) {
  NodeConfig config;
  config.width = kAccWidth;
  config.height = kAccHeight;
  config.watchdogTimeoutUs = 200'000;
  NodeSupervisor supervisor(config, pool);

  struct Capture {
    std::vector<std::optional<Tracks>> bySeq;
  };
  std::vector<Capture> captures(kAccSensors);
  std::vector<std::unique_ptr<PipelineSink>> sinks;
  struct Feed {
    std::vector<DeliveryChunk> chunks;
    std::size_t next = 0;
    TimeUs dueAt = 0;
  };
  std::vector<Feed> feeds(kAccSensors);
  for (int s = 0; s < kAccSensors; ++s) {
    const auto id = static_cast<std::uint16_t>(s);
    auto sink = std::make_unique<PipelineSink>(
        std::make_unique<EbbiotPipeline>(accuracyPipelineConfig()),
        kAccWidth, kAccHeight, PipelineSinkConfig{});
    Capture& capture = captures[static_cast<std::size_t>(s)];
    capture.bySeq.resize(kAccFrames);
    sink->setTrackObserver(
        [&capture](std::uint32_t seq, const Tracks& tracks) {
          if (seq < kAccFrames) {  // flood can mint fresh out-of-range seqs
            capture.bySeq[seq] = tracks;
          }
        });
    supervisor.addSensor({id, /*priority=*/0, sink.get()});
    sinks.push_back(std::move(sink));

    std::vector<std::vector<std::byte>> frames;
    frames.reserve(kAccFrames);
    const auto& windows = sensorWindows[static_cast<std::size_t>(s)];
    for (std::uint32_t seq = 0; seq < kAccFrames; ++seq) {
      std::vector<std::byte> bytes;
      encodeFrame(bytes, seq, id, windows[seq]);
      frames.push_back(std::move(bytes));
    }
    FaultInjector injector(0xACC0ull + static_cast<std::uint64_t>(s) * 613);
    injector.setProfile(sweep.profile);
    Feed& feed = feeds[static_cast<std::size_t>(s)];
    feed.chunks = injector.corrupt(frames);
    feed.dueAt = feed.chunks.empty() ? 0 : feed.chunks.front().delayUs;
  }

  // Same global time-ordered delivery loop as the resilience sweep (no
  // hiccups/phases: accuracy scoring wants clean delivery == baseline).
  TimeUs now = 0;
  TimeUs lastPump = 0;
  for (;;) {
    int nextStream = -1;
    for (int s = 0; s < kAccSensors; ++s) {
      const Feed& feed = feeds[static_cast<std::size_t>(s)];
      if (feed.next >= feed.chunks.size()) {
        continue;
      }
      if (nextStream < 0 ||
          feed.dueAt < feeds[static_cast<std::size_t>(nextStream)].dueAt) {
        nextStream = s;
      }
    }
    if (nextStream < 0) {
      break;
    }
    Feed& feed = feeds[static_cast<std::size_t>(nextStream)];
    const TimeUs target = std::max(now, feed.dueAt);
    while (lastPump + kSweepWindowUs <= target) {
      lastPump += kSweepWindowUs;
      supervisor.tickWatchdogs(lastPump);
      (void)supervisor.pump(lastPump);
    }
    now = target;
    supervisor.offerBytes(static_cast<std::uint16_t>(nextStream),
                          feed.chunks[feed.next].bytes, now);
    ++feed.next;
    if (feed.next < feed.chunks.size()) {
      feed.dueAt = now + feed.chunks[feed.next].delayUs;
    }
  }
  now += kSweepWindowUs;
  supervisor.tickWatchdogs(now);
  (void)supervisor.pump(now);

  AccuracyRow row;
  row.profile = sweep.name;
  for (int s = 0; s < kAccSensors; ++s) {
    const auto& baseline = baselines[static_cast<std::size_t>(s)];
    const auto& capture = captures[static_cast<std::size_t>(s)];
    for (std::uint32_t seq = 0; seq < kAccFrames; ++seq) {
      const Tracks& expected = baseline[seq];
      if (expected.empty()) {
        continue;
      }
      row.baselineTracks += expected.size();
      const std::optional<Tracks>& got = capture.bySeq[seq];
      if (!got.has_value() || got->empty()) {
        continue;
      }
      // Baseline tracks as ground truth, faulted tracks as predictions.
      std::vector<GtBox> gt;
      gt.reserve(expected.size());
      for (const Track& track : expected) {
        gt.push_back(GtBox{track.id, ObjectClass::kCar, track.box});
      }
      row.matchedTracks +=
          matchFrame(*got, gt, kAccIouThreshold).truePositives();
    }
    const PipelineSink::Counters sinkCounters =
        sinks[static_cast<std::size_t>(s)]->counters();
    row.windowsTracked += sinkCounters.windowsTracked;
    row.windowsCoasted += sinkCounters.windowsCoasted;
    row.resyncs += sinkCounters.resyncRestores + sinkCounters.resyncResets;
  }
  row.recall = row.baselineTracks == 0
                   ? 0.0
                   : static_cast<double>(row.matchedTracks) /
                         static_cast<double>(row.baselineTracks);
  return row;
}

void writeJson(const char* path, const std::vector<CellResult>& cells,
               const std::vector<LiveCellResult>& liveCells,
               const std::vector<AccuracyRow>& accuracy,
               double steadyAllocs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_iovt_node\",\n");
  std::fprintf(f, "  \"frames_per_stream\": %u,\n", kSweepFramesPerStream);
  std::fprintf(f, "  \"frame_period_us\": %lld,\n",
               static_cast<long long>(kSweepWindowUs));
  if (steadyAllocs < 0.0) {
    std::fprintf(f, "  \"steady_allocs_per_window\": null,\n");
  } else {
    std::fprintf(f, "  \"steady_allocs_per_window\": %.4f,\n", steadyAllocs);
  }
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    const SessionCounters& t = c.totals;
    std::fprintf(
        f,
        "    {\"profile\": \"%s\", \"streams\": %d,"
        " \"frames_decoded\": %llu, \"frames_corrupted\": %llu,"
        " \"frames_accepted\": %llu, \"resyncs\": %llu,"
        " \"seq_gaps\": %llu, \"frames_lost_to_gaps\": %llu,"
        " \"out_of_order_dropped\": %llu, \"timestamp_regressions\": %llu,"
        " \"windows_delivered\": %llu, \"windows_rejected\": %llu,"
        " \"windows_shed_stale\": %llu, \"windows_shed_overload\": %llu,"
        " \"watchdog_stalls\": %llu, \"degrade_entries\": %llu,"
        " \"recovery_attempts\": %llu, \"recovery_failures\": %llu,"
        " \"recoveries\": %llu, \"sessions_quarantined\": %zu,"
        " \"p50_latency_us\": %lld, \"p99_latency_us\": %lld,"
        " \"wall_ns_per_window\": %.1f}%s\n",
        c.profile, c.streams,
        static_cast<unsigned long long>(t.framesDecoded),
        static_cast<unsigned long long>(t.framesCorrupted),
        static_cast<unsigned long long>(t.framesAccepted),
        static_cast<unsigned long long>(t.resyncs),
        static_cast<unsigned long long>(t.seqGaps),
        static_cast<unsigned long long>(t.framesLostToGaps),
        static_cast<unsigned long long>(t.outOfOrderDropped),
        static_cast<unsigned long long>(t.timestampRegressions),
        static_cast<unsigned long long>(t.windowsDelivered),
        static_cast<unsigned long long>(t.windowsRejected),
        static_cast<unsigned long long>(t.windowsShedStale),
        static_cast<unsigned long long>(t.windowsShedOverload),
        static_cast<unsigned long long>(t.watchdogStalls),
        static_cast<unsigned long long>(t.degradeEntries),
        static_cast<unsigned long long>(t.recoveryAttempts),
        static_cast<unsigned long long>(t.recoveryFailures),
        static_cast<unsigned long long>(t.recoveries), c.quarantined,
        static_cast<long long>(c.p50LatencyUs),
        static_cast<long long>(c.p99LatencyUs), c.wallNsPerWindow,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"live_frames_per_stream\": %u,\n",
               kLiveFramesPerStream);
  std::fprintf(f, "  \"live_cells\": [\n");
  for (std::size_t i = 0; i < liveCells.size(); ++i) {
    const LiveCellResult& c = liveCells[i];
    std::fprintf(
        f,
        "    {\"streams\": %d, \"producer_threads\": %d,"
        " \"chunks_delivered\": %llu, \"frames_accepted\": %llu,"
        " \"windows_delivered\": %llu, \"windows_rejected\": %llu,"
        " \"lossless_waits\": %llu, \"sessions_quarantined\": %zu,"
        " \"wall_seconds\": %.4f}%s\n",
        c.streams, c.producerThreads,
        static_cast<unsigned long long>(c.chunksDelivered),
        static_cast<unsigned long long>(c.framesAccepted),
        static_cast<unsigned long long>(c.windowsDelivered),
        static_cast<unsigned long long>(c.windowsRejected),
        static_cast<unsigned long long>(c.losslessWaits), c.quarantined,
        c.wallSeconds, i + 1 < liveCells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"accuracy_under_fault\": {\n");
  std::fprintf(f, "    \"sensors\": %d,\n", kAccSensors);
  std::fprintf(f, "    \"frames\": %u,\n", kAccFrames);
  std::fprintf(f, "    \"iou_threshold\": %.2f,\n",
               static_cast<double>(kAccIouThreshold));
  std::fprintf(f, "    \"profiles\": [\n");
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyRow& row = accuracy[i];
    std::fprintf(
        f,
        "      {\"profile\": \"%s\", \"baseline_tracks\": %llu,"
        " \"matched_tracks\": %llu, \"windows_tracked\": %llu,"
        " \"windows_coasted\": %llu, \"resyncs\": %llu,"
        " \"recall\": %.4f}%s\n",
        row.profile, static_cast<unsigned long long>(row.baselineTracks),
        static_cast<unsigned long long>(row.matchedTracks),
        static_cast<unsigned long long>(row.windowsTracked),
        static_cast<unsigned long long>(row.windowsCoasted),
        static_cast<unsigned long long>(row.resyncs), row.recall,
        i + 1 < accuracy.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
}

void runResilienceSweep(const char* jsonPath) {
  std::printf("\nIngest resilience sweep — %u frames/stream, %lld us "
              "windows, seeded fault profiles\n",
              kSweepFramesPerStream,
              static_cast<long long>(kSweepWindowUs));
  std::printf("%-10s %8s %10s %9s %9s %8s %7s %10s %10s\n", "profile",
              "streams", "delivered", "dropped", "corrupt", "resyncs",
              "stalls", "p50 us", "p99 us");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------"
              "------------------------------");
  ThreadPool pool(4);
  const auto profiles = sweepProfiles();
  std::vector<CellResult> cells;
  std::size_t cellIndex = 0;
  for (const SweepProfile& profile : profiles) {
    for (int streams : {1, 8, 32}) {
      CellResult cell = runCell(profile, streams, cellIndex++, pool);
      const SessionCounters& t = cell.totals;
      const std::uint64_t dropped = t.windowsShedStale +
                                    t.windowsShedOverload +
                                    t.windowsRejected;
      std::printf("%-10s %8d %10llu %9llu %9llu %8llu %7llu %10lld "
                  "%10lld\n",
                  cell.profile, cell.streams,
                  static_cast<unsigned long long>(t.windowsDelivered),
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(t.framesCorrupted),
                  static_cast<unsigned long long>(t.resyncs),
                  static_cast<unsigned long long>(t.watchdogStalls),
                  static_cast<long long>(cell.p50LatencyUs),
                  static_cast<long long>(cell.p99LatencyUs));
      cells.push_back(cell);
    }
  }
  const double steadyAllocs = measureSteadyAllocsPerWindow();
  if (steadyAllocs < 0.0) {
    std::printf("\nsteady-state allocs/window: n/a (counter disabled "
                "under sanitizers)\n");
  } else {
    std::printf("\nsteady-state allocs/window (single-session hot path): "
                "%.4f\n", steadyAllocs);
  }

  std::printf("\nLive real-thread cells — %u frames/stream, lossless, "
              "4 producer threads + pump thread\n",
              kLiveFramesPerStream);
  std::printf("%-8s %10s %10s %9s %12s %10s\n", "streams", "chunks",
              "delivered", "rejected", "waits", "wall s");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------"
              "------------------------------");
  std::vector<LiveCellResult> liveCells;
  for (int streams : {64, 256, 1024}) {
    LiveCellResult cell = runLiveCell(streams, pool);
    std::printf("%-8d %10llu %10llu %9llu %12llu %10.3f\n", cell.streams,
                static_cast<unsigned long long>(cell.chunksDelivered),
                static_cast<unsigned long long>(cell.windowsDelivered),
                static_cast<unsigned long long>(cell.windowsRejected),
                static_cast<unsigned long long>(cell.losslessWaits),
                cell.wallSeconds);
    liveCells.push_back(cell);
  }

  std::printf("\nTracking accuracy under fault — %d sensors x %u windows, "
              "matched-track recall vs the fault-free run (IoU %.2f)\n",
              kAccSensors, kAccFrames,
              static_cast<double>(kAccIouThreshold));
  std::printf("%-10s %10s %10s %10s %10s %8s %8s\n", "profile", "baseline",
              "matched", "tracked", "coasted", "resyncs", "recall");
  std::printf("%.*s\n", 72,
              "----------------------------------------------------------"
              "------------------------------");
  std::vector<std::vector<EventPacket>> sensorWindows;
  std::vector<std::vector<Tracks>> baselines;
  for (int s = 0; s < kAccSensors; ++s) {
    sensorWindows.push_back(
        makeTrackedWindows(7000 + static_cast<std::uint64_t>(s)));
    baselines.push_back(accuracyBaseline(sensorWindows.back()));
  }
  std::vector<AccuracyRow> accuracy;
  for (const SweepProfile& profile : profiles) {
    AccuracyRow row =
        runAccuracyCell(profile, sensorWindows, baselines, pool);
    std::printf("%-10s %10llu %10llu %10llu %10llu %8llu %8.4f\n",
                row.profile,
                static_cast<unsigned long long>(row.baselineTracks),
                static_cast<unsigned long long>(row.matchedTracks),
                static_cast<unsigned long long>(row.windowsTracked),
                static_cast<unsigned long long>(row.windowsCoasted),
                static_cast<unsigned long long>(row.resyncs), row.recall);
    accuracy.push_back(row);
  }

  if (jsonPath != nullptr) {
    writeJson(jsonPath, cells, liveCells, accuracy, steadyAllocs);
    std::printf("wrote %s\n", jsonPath);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ebbiot;

  const char* jsonPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
  }

  // Measure the workloads on 30 s of ENG traffic.
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = 30.0;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult run = runRecording(*rec.source, *rec.scenario,
                                     secondsToUs(spec.durationS), config);

  const NodePlatform node;
  const double meanTracks = 2.0;  // the paper's NT operating point

  std::printf("IoVT node budget — measured on SyntheticENG (%zu frames, "
              "%.0f raw events/frame)\n",
              run.frames, run.meanEventsPerFrame);
  std::printf("platform: %.0f MHz MCU, %.0f mW active / %.0f uW sleep, "
              "%.0f nJ/bit radio, %.0f mW sensor\n\n",
              node.clockHz / 1e6, node.activePowerMw, node.sleepPowerUw,
              node.radioEnergyPerBitNj, node.sensorPowerMw);
  std::printf("%-26s %10s %12s %10s %12s %12s\n", "policy", "duty",
              "uJ/frame", "mean mW", "uplink bps", "battery h");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------"
              "------------------------------");

  {
    NodeWorkload w;
    w.opsPerFrame = run.ebbiot->meanOpsPerFrame();
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("EBBIOT -> tracks", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = run.ebbiot->meanOpsPerFrame();
    w.txBitsPerFrame = ebbiPayloadBits(240, 180);
    printRow("EBBIOT -> EBBI frames", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = run.ebms->meanOpsPerFrame();
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("NN-filt+EBMS -> tracks", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = 0.0;
    w.txBitsPerFrame = rawEventPayloadBits(run.meanEventsPerFrame);
    printRow("no processing -> events", estimateNodeBudget(node, w));
  }
  {
    NodeWorkload w;
    w.opsPerFrame = frameBasedDetectorReference().computesPerFrame;
    w.txBitsPerFrame = trackPayloadBits(meanTracks);
    printRow("frame CNN -> boxes", estimateNodeBudget(node, w));
  }

  std::printf("\nEBBIOT keeps the processor asleep most of each 66 ms "
              "window and the radio\npayload to a few hundred bits — the "
              "paper's IoVT argument in one table.\n(The sensor's own "
              "power dominates once processing is this cheap.)\n");

  runResilienceSweep(jsonPath);
  return 0;
}
