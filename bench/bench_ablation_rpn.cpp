// Ablation — region-proposal design (Section II-B + the paper's stated
// future work).
//
// Sweeps:
//   1. downsample factors (s1, s2): proposal quality (end-to-end EBBIOT
//      F1) vs RPN compute, including the paper's (6, 3);
//   2. histogram RPN vs the future-work CCA RPN (full resolution), same
//      tracker behind both.
#include <cstdio>
#include <utility>

#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

namespace {

ebbiot::RunResult runEbbiot(const ebbiot::EbbiotPipelineConfig& pipeConfig,
                            double seconds) {
  using namespace ebbiot;
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = seconds;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = false;
  config.ebbiot = pipeConfig;
  return runRecording(*rec.source, *rec.scenario,
                      secondsToUs(spec.durationS), config);
}

}  // namespace

int main() {
  using namespace ebbiot;
  constexpr double kSeconds = 45.0;
  std::printf("RPN ablation — SyntheticENG, %.0f s per setting "
              "(F1 at IoU 0.3 / 0.5)\n\n",
              kSeconds);

  std::printf("Downsample factor sweep (histogram RPN):\n");
  std::printf("%-12s %10s %10s %14s\n", "(s1, s2)", "F1@0.3", "F1@0.5",
              "RPN+trk ops/fr");
  std::printf("%.*s\n", 50,
              "--------------------------------------------------");
  const std::pair<int, int> factors[] = {{1, 1}, {2, 2}, {4, 2}, {6, 3},
                                         {8, 4}, {12, 6}, {24, 12}};
  for (const auto& [s1, s2] : factors) {
    EbbiotPipelineConfig pipe;
    pipe.rpn.s1 = s1;
    pipe.rpn.s2 = s2;
    const RunResult result = runEbbiot(pipe, kSeconds);
    char label[24];
    std::snprintf(label, sizeof label, "(%d, %d)", s1, s2);
    std::printf("%-12s %10.3f %10.3f %14.0f\n", label,
                result.ebbiot->counts[2].f1(),
                result.ebbiot->counts[4].f1(),
                result.ebbiot->meanOpsPerFrame());
  }

  std::printf("\nProposer comparison (same overlap tracker):\n");
  std::printf("%-26s %10s %10s %14s\n", "proposer", "F1@0.3", "F1@0.5",
              "pipe ops/fr");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------"
              "------");
  {
    EbbiotPipelineConfig pipe;  // paper default histogram RPN
    const RunResult result = runEbbiot(pipe, kSeconds);
    std::printf("%-26s %10.3f %10.3f %14.0f\n", "histogram (6,3) [paper]",
                result.ebbiot->counts[2].f1(),
                result.ebbiot->counts[4].f1(),
                result.ebbiot->meanOpsPerFrame());
  }
  {
    EbbiotPipelineConfig pipe;
    pipe.rpnKind = RpnKind::kCca;
    pipe.cca.minComponentPixels = 6;
    const RunResult result = runEbbiot(pipe, kSeconds);
    std::printf("%-26s %10.3f %10.3f %14.0f\n", "CCA full-res [future work]",
                result.ebbiot->counts[2].f1(),
                result.ebbiot->counts[4].f1(),
                result.ebbiot->meanOpsPerFrame());
  }
  std::printf("\n(The histogram RPN trades a little box tightness for a "
              "large compute cut;\nCCA generalises beyond side views at "
              "higher per-frame cost.)\n");
  return 0;
}
