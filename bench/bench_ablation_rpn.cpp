// Ablation — region-proposal design (Section II-B + the paper's stated
// future work), driven entirely through the variant registry.
//
// Sweeps:
//   1. downsample factors (s1, s2): each grid point registers as a named
//      variant in a *local* registry and a single runRecording evaluates
//      the whole grid on the same recording — proposal quality (end-to-end
//      EBBIOT F1) vs RPN compute, including the paper's (6, 3);
//   2. every pipeline in the *global* registry (histogram RPN, CCA,
//      NN-filtered, hybrid back ends, ...), same recording, one run.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

namespace {

ebbiot::RunResult runVariants(const ebbiot::VariantRegistry* registry,
                              double seconds) {
  using namespace ebbiot;
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = seconds;
  Recording rec = openRecording(spec);
  const RunnerConfig config = makeRegistryRunnerConfig(240, 180, registry);
  return runRecording(*rec.source, *rec.scenario,
                      secondsToUs(spec.durationS), config);
}

}  // namespace

int main() {
  using namespace ebbiot;
  constexpr double kSeconds = 45.0;
  std::printf("RPN ablation — SyntheticENG, %.0f s "
              "(F1 at IoU 0.3 / 0.5)\n\n",
              kSeconds);

  std::printf("Downsample factor sweep (histogram RPN), one run over the "
              "registered grid:\n");
  std::printf("%-16s %10s %10s %14s\n", "variant", "F1@0.3", "F1@0.5",
              "pipe ops/fr");
  std::printf("%.*s\n", 54,
              "------------------------------------------------------");
  VariantRegistry grid;
  const std::pair<int, int> factors[] = {{1, 1}, {2, 2}, {4, 2}, {6, 3},
                                         {8, 4}, {12, 6}, {24, 12}};
  for (const auto& [s1, s2] : factors) {
    const std::string key =
        "EBBIOT-s" + std::to_string(s1) + "x" + std::to_string(s2);
    grid.add(key, "downsample grid point",
             [key, s1 = s1, s2 = s2](const VariantContext& ctx) {
               EbbiotPipelineConfig pipe;
               pipe.width = ctx.width;
               pipe.height = ctx.height;
               pipe.rpn.s1 = s1;
               pipe.rpn.s2 = s2;
               return std::make_unique<EbbiotPipeline>(pipe, key);
             });
  }
  // The grid run and the global-registry zoo run synthesize independent
  // recordings, so they shard across the shared scheduler as two tasks;
  // rows still print in fixed order below.
  std::vector<RunResult> sharded(2);
  globalThreadPool().parallelFor(sharded.size(), [&](std::size_t i) {
    sharded[i] = runVariants(i == 0 ? &grid : nullptr, kSeconds);
  });
  const RunResult& gridRun = sharded[0];
  for (const PipelineRunStats& stats : gridRun.pipelines) {
    std::printf("%-16s %10.3f %10.3f %14.0f\n", stats.name.c_str(),
                stats.counts[2].f1(), stats.counts[4].f1(),
                stats.meanOpsPerFrame());
  }

  std::printf("\nRegistered pipeline variants (global registry), one "
              "run:\n");
  std::printf("%-18s %10s %10s %14s\n", "variant", "F1@0.3", "F1@0.5",
              "pipe ops/fr");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");
  const RunResult& zoo = sharded[1];
  for (const PipelineRunStats& stats : zoo.pipelines) {
    std::printf("%-18s %10.3f %10.3f %14.0f\n", stats.name.c_str(),
                stats.counts[2].f1(), stats.counts[4].f1(),
                stats.meanOpsPerFrame());
  }

  std::printf("\n(The histogram RPN trades a little box tightness for a "
              "large compute cut;\nregister new grid points or back ends "
              "with variantRegistry().add(...) to\nextend either sweep.)\n");
  return 0;
}
