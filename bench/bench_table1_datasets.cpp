// Table I — Dataset details.
//
//   Location  Lens (mm)  Duration (s)  Num Events
//   ENG       12         2998.4        107.5 M
//   LT4       6          999.5         12.5 M
//
// We regenerate both recordings with the synthetic traffic substrate
// (DESIGN.md substitution) and report the measured totals next to the
// paper's.  By default a 10% slice of each recording is synthesized and
// the totals extrapolated (the traffic process is stationary); set
// EBBIOT_BENCH_SCALE=1.0 to stream the full 1.1 hours.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/events/stats.hpp"
#include "src/sim/recording.hpp"

namespace {

double benchScale() {
  if (const char* env = std::getenv("EBBIOT_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) {
      return v;
    }
  }
  return 0.1;
}

struct MeasuredRecording {
  double durationS = 0.0;
  std::uint64_t events = 0;
  double eventsExtrapolated = 0.0;
  double meanEventsPerFrame = 0.0;
  double meanAlpha = 0.0;
  double meanBeta = 0.0;
  std::size_t gtTracks = 0;
};

MeasuredRecording measure(const ebbiot::RecordingSpec& fullSpec,
                          double scale) {
  using namespace ebbiot;
  const RecordingSpec spec = scaledRecording(fullSpec, scale);
  Recording rec = openRecording(spec);
  StreamStatsAccumulator stats(spec.traffic.width, spec.traffic.height);
  const auto frames = static_cast<std::size_t>(
      secondsToUs(spec.durationS) / spec.framePeriod);
  for (std::size_t i = 0; i < frames; ++i) {
    stats.addPacket(rec.source->nextWindow(spec.framePeriod));
  }
  MeasuredRecording out;
  out.durationS = usToSeconds(stats.totalDuration());
  out.events = stats.totalEvents();
  out.eventsExtrapolated =
      static_cast<double>(stats.totalEvents()) / scale;
  out.meanEventsPerFrame = stats.meanEventsPerFrame();
  out.meanAlpha = stats.meanAlpha();
  out.meanBeta = stats.meanBeta();
  out.gtTracks = rec.scenario->groundTruth(spec.framePeriod).distinctTracks();
  return out;
}

}  // namespace

int main() {
  using namespace ebbiot;
  const double scale = benchScale();
  std::printf("Table I — dataset details (synthetic reproduction, "
              "scale = %.3f of full duration)\n\n",
              scale);
  std::printf("%-14s %-9s %-12s %-16s %-16s %-12s %-9s %-8s %-8s\n",
              "Location", "Lens(mm)", "Duration(s)", "Events(paper)",
              "Events(extrap)", "ev/frame", "tracks", "alpha", "beta");

  // Each recording is an independent synthesis + measurement, so the
  // dataset sweep shards recordings across the shared scheduler (one
  // task per recording); results land in per-recording slots and print
  // in fixed order, so the output is identical to the serial sweep.
  const std::vector<RecordingSpec> specs{makeSyntheticEng(),
                                         makeSyntheticLt4()};
  std::vector<MeasuredRecording> measured(specs.size());
  globalThreadPool().parallelFor(specs.size(), [&](std::size_t i) {
    measured[i] = measure(specs[i], scale);
  });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RecordingSpec& spec = specs[i];
    const MeasuredRecording& m = measured[i];
    std::printf("%-14s %-9.0f %-12.1f %-16.1fM %-16.1fM %-12.0f %-9zu "
                "%-8.4f %-8.2f\n",
                spec.name.c_str(), spec.lensMm, spec.durationS,
                static_cast<double>(spec.paperEventCount) / 1e6,
                m.eventsExtrapolated / 1e6, m.meanEventsPerFrame,
                m.gtTracks, m.meanAlpha, m.meanBeta);
  }
  std::printf("\n(paper ENG: 107.5M over 2998.4 s = 35.9 k events/s; "
              "LT4: 12.5M over 999.5 s = 12.5 k events/s)\n");
  return 0;
}
