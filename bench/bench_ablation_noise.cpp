// Ablation — sensor noise rate vs denoising strategy (Section II-A).
//
// Sweeps the background-activity rate and compares EBBIOT quality with
// the median filter enabled (paper pipeline) against a median-less
// variant (p = 1), plus the event-domain NN-filt + EBMS chain on the same
// streams.  Shows the salt-and-pepper robustness the EBBI + median design
// buys, and where everything degrades.
#include <cstdio>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

namespace {

ebbiot::RunResult runAt(double noiseHz, int medianPatch, bool withEbms) {
  using namespace ebbiot;
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = 40.0;
  spec.synth.backgroundActivityHz = noiseHz;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = withEbms;
  config.ebbiot.medianPatch = medianPatch;
  return runRecording(*rec.source, *rec.scenario,
                      secondsToUs(spec.durationS), config);
}

}  // namespace

int main() {
  using namespace ebbiot;
  std::printf("Noise ablation — SyntheticENG traffic, 40 s per setting, "
              "F1 at IoU 0.3\n\n");
  std::printf("%-14s %14s %14s %14s\n", "noise [Hz/px]", "EBBIOT p=3",
              "EBBIOT p=1", "NN-filt+EBMS");
  std::printf("%.*s\n", 60,
              "------------------------------------------------------------");

  // Every (noise, config) cell synthesizes its own recording, so the
  // grid shards across the shared scheduler; rows print in fixed order
  // from the per-cell slots, identical to the serial sweep.
  const std::vector<double> noiseLevels{0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  std::vector<RunResult> withMedian(noiseLevels.size());
  std::vector<RunResult> noMedian(noiseLevels.size());
  globalThreadPool().parallelFor(2 * noiseLevels.size(), [&](std::size_t i) {
    const std::size_t level = i / 2;
    if (i % 2 == 0) {
      withMedian[level] = runAt(noiseLevels[level], 3, true);
    } else {
      noMedian[level] = runAt(noiseLevels[level], 1, false);
    }
  });
  for (std::size_t level = 0; level < noiseLevels.size(); ++level) {
    std::printf("%-14.1f %14.3f %14.3f %14.3f\n", noiseLevels[level],
                withMedian[level].ebbiot->counts[2].f1(),
                noMedian[level].ebbiot->counts[2].f1(),
                withMedian[level].ebms->counts[2].f1());
  }
  std::printf("\n(The p = 3 median keeps the RPN clean well past typical "
              "DAVIS noise rates;\nwithout it, noise pixels seed ghost "
              "regions and precision collapses first.)\n");
  return 0;
}
