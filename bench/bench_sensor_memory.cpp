// Figure 2 concept — the "sensor as memory" duty-cycled readout.
//
// Quantifies what the latch scheme of Section II-A costs and saves:
// for a sweep of frame periods tF, compares the raw stream event count
// (what an always-on event-driven processor must touch) against the
// latched count (at most one event per pixel per window, which is all
// the EBBI needs), plus the implied processor duty factor.
#include <cstdio>

#include "src/sim/davis.hpp"
#include "src/sim/recording.hpp"

int main() {
  using namespace ebbiot;
  std::printf("Sensor-as-memory readout (Fig. 2 concept) — SyntheticENG "
              "traffic, 30 s per setting\n\n");
  std::printf("%-10s %16s %16s %12s %18s\n", "tF [ms]", "stream ev/s",
              "latched ev/s", "saved", "latched/pixel/fr");
  std::printf("%.*s\n", 76,
              "----------------------------------------------------------"
              "------------------");

  for (const double tFms : {16.5, 33.0, 66.0, 132.0, 264.0}) {
    RecordingSpec spec = makeSyntheticEng();
    spec.durationS = 30.0;
    Recording rec = openRecording(spec);
    const TimeUs tF = millisToUs(tFms);
    const auto frames =
        static_cast<std::size_t>(secondsToUs(spec.durationS) / tF);
    std::uint64_t stream = 0;
    std::uint64_t latched = 0;
    for (std::size_t i = 0; i < frames; ++i) {
      const EventPacket packet = rec.source->nextWindow(tF);
      stream += packet.size();
      latched += latchReadout(packet, 240, 180).size();
    }
    const double durS = usToSeconds(static_cast<TimeUs>(frames) * tF);
    std::printf("%-10.1f %16.0f %16.0f %11.1f%% %18.4f\n", tFms,
                static_cast<double>(stream) / durS,
                static_cast<double>(latched) / durS,
                100.0 * (1.0 - static_cast<double>(latched) /
                                   static_cast<double>(stream)),
                static_cast<double>(latched) /
                    (static_cast<double>(frames) * 240.0 * 180.0));
  }
  std::printf("\nLonger exposures save more re-fires (beta grows with tF) "
              "but blur fast objects;\nthe paper picks tF = 66 ms as "
              "sufficient for traffic.\n");
  return 0;
}
