// Figure 5 — total computes per frame and total memory of the EBMS chain
// and EBBI+KF, relative to EBBIOT.
//
// Two independent columns:
//   * "model": the paper's own accounting, Eqs. (1)-(8) (bench_costmodels
//     breaks these down block by block);
//   * "measured": operation counts metered inside the running pipelines
//     on SyntheticENG traffic (exact counts of compares / adds /
//     multiplies / memory writes the implementations actually performed).
//
// The paper's claims: EBMS chain ~3x computes and ~7x memory of EBBIOT;
// EBBI+KF is compute-comparable (front-end dominated).
#include <cstdio>
#include <cstdlib>

#include "src/core/runner.hpp"
#include "src/resource/cost_model.hpp"
#include "src/sim/recording.hpp"

namespace {

double benchSeconds() {
  if (const char* env = std::getenv("EBBIOT_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return 60.0;
}

}  // namespace

int main() {
  using namespace ebbiot;
  const double seconds = benchSeconds();

  // --- Measured side: run all three pipelines over SyntheticENG.
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = seconds;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(spec.traffic.width,
                                                spec.traffic.height);
  const RunResult run = runRecording(*rec.source, *rec.scenario,
                                     secondsToUs(spec.durationS), config);

  const double measuredOurs = run.ebbiot->meanOpsPerFrame();
  const double measuredKf = run.kalman->meanOpsPerFrame();
  const double measuredEbms = run.ebms->meanOpsPerFrame();

  // --- Model side, at the operating point measured from this very run
  // (alpha, beta, NF feed Eqs. (1), (2), (8)).
  PipelineCostParams params;
  params.ebbi.alpha = run.meanAlpha;
  params.nnFilt.alpha = run.meanAlpha;
  params.nnFilt.beta = run.meanBeta;
  params.ebms.nF = run.meanFilteredEventsPerFrame;
  const CostEstimate modelOurs = ebbiotPipelineCost(params);
  const CostEstimate modelKf = ebbiKfPipelineCost(params);
  const CostEstimate modelEbms = ebmsPipelineCost(params);

  std::printf("Figure 5 — resource comparison (SyntheticENG, %.0f s, "
              "%zu frames)\n",
              seconds, run.frames);
  std::printf("operating point: alpha = %.4f, beta = %.2f, NF = %.0f "
              "events/frame after NN-filt\n\n",
              run.meanAlpha, run.meanBeta,
              run.meanFilteredEventsPerFrame);

  std::printf("%-16s %18s %18s %15s\n", "pipeline", "model ops/frame",
              "measured ops/frame", "model mem [kB]");
  std::printf("%.*s\n", 72,
              "----------------------------------------------------------"
              "--------------");
  std::printf("%-16s %18.0f %18.0f %15.2f\n", "EBBIOT",
              modelOurs.computesPerFrame, measuredOurs,
              modelOurs.memoryBits / 8.0 / 1024.0);
  std::printf("%-16s %18.0f %18.0f %15.2f\n", "EBBI+KF",
              modelKf.computesPerFrame, measuredKf,
              modelKf.memoryBits / 8.0 / 1024.0);
  std::printf("%-16s %18.0f %18.0f %15.2f\n", "NN-filt+EBMS",
              modelEbms.computesPerFrame, measuredEbms,
              modelEbms.memoryBits / 8.0 / 1024.0);

  std::printf("\nRelative to EBBIOT (the Fig. 5 bars):\n");
  std::printf("%-16s %14s %14s %14s\n", "pipeline", "model ops",
              "measured ops", "model memory");
  std::printf("%-16s %14.2fx %14.2fx %14.2fx\n", "EBBI+KF",
              modelKf.computesPerFrame / modelOurs.computesPerFrame,
              measuredKf / measuredOurs,
              modelKf.memoryBits / modelOurs.memoryBits);
  std::printf("%-16s %14.2fx %14.2fx %14.2fx\n", "NN-filt+EBMS",
              modelEbms.computesPerFrame / modelOurs.computesPerFrame,
              measuredEbms / measuredOurs,
              modelEbms.memoryBits / modelOurs.memoryBits);
  std::printf("\n(paper: EBMS chain ~3x computes, ~7x memory of EBBIOT)\n");

  std::printf(
      "\nNote on measured EBMS ops: Eq. (8) charges ~%.0f ops per filtered\n"
      "event (9*CL^2 + (169 + 16*g)*CL + 11 at CL = 2), the cost of the\n"
      "jAER-style cluster tracker the paper assumed.  Our lean\n"
      "reimplementation measures ~%.0f ops/event, so the *measured* EBMS\n"
      "bar sits below the model's.  The memory comparison and the\n"
      "frame-domain measurements are implementation-faithful; see\n"
      "EXPERIMENTS.md for the discussion.\n",
      9.0 * 4.0 + (169.0 + 1.6) * 2.0 + 11.0,
      run.meanFilteredEventsPerFrame > 0.0
          ? (measuredEbms -
             run.meanEventsPerFrame * 32.0) /  // NN-filt share (Eq. 2)
                run.meanFilteredEventsPerFrame
          : 0.0);
  return 0;
}
