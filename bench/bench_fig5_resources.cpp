// Figure 5 — total computes per frame and total memory of the EBMS chain
// and EBBI+KF, relative to EBBIOT — extended to every pipeline in the
// variant registry (the EBBINNOT NN-filtered and hybrid back ends ride
// along in the same run).
//
// Two independent columns:
//   * "model": the paper's own accounting, Eqs. (1)-(8) (bench_costmodels
//     breaks these down block by block), plus the extension models for
//     the registry variants;
//   * "measured": operation counts metered inside the running pipelines
//     on SyntheticENG traffic (exact counts of compares / adds /
//     multiplies / memory writes the implementations actually performed).
//     Memory *reads* are tracked separately (the paper's op budget
//     excludes them) and reported as accesses/frame — this column now
//     includes the RPN tighten pass and the median patch fetches.
//
// The paper's claims: EBMS chain ~3x computes and ~7x memory of EBBIOT;
// EBBI+KF is compute-comparable (front-end dominated).
#include <cstdio>
#include <cstdlib>

#include "src/core/runner.hpp"
#include "src/resource/cost_model.hpp"
#include "src/sim/recording.hpp"

namespace {

double benchSeconds() {
  if (const char* env = std::getenv("EBBIOT_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return 60.0;
}

}  // namespace

int main() {
  using namespace ebbiot;
  const double seconds = benchSeconds();

  // --- Measured side: one run sweeps every registered variant, with
  // the variants sharded across the scheduler's stage graph (threads = 0
  // resolves to the hardware width; the front end of window N+1 overlaps
  // the pipeline evaluations of window N).  The RunResult is
  // bit-identical to the serial run, so every number below is too.
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = seconds;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeRegistryRunnerConfig(spec.traffic.width,
                                                 spec.traffic.height);
  config.threads = 0;
  const RunResult run = runRecording(*rec.source, *rec.scenario,
                                     secondsToUs(spec.durationS), config);

  const double measuredOurs = run.ebbiot->meanOpsPerFrame();

  // --- Model side, at the operating point measured from this very run
  // (alpha, beta, NF feed Eqs. (1), (2), (8)).
  PipelineCostParams params;
  params.ebbi.alpha = run.meanAlpha;
  params.nnFilt.alpha = run.meanAlpha;
  params.nnFilt.beta = run.meanBeta;
  params.ebms.nF = run.meanFilteredEventsPerFrame;
  const CostEstimate modelOurs = ebbiotPipelineCost(params);

  // Closed-form counterpart of each registered variant (0 = no model).
  auto modelFor = [&](const std::string& name) {
    return costModelForVariant(name, params);
  };

  std::printf("Figure 5 — resource comparison (SyntheticENG, %.0f s, "
              "%zu frames, %zu registered variants)\n",
              seconds, run.frames, run.pipelines.size());
  std::printf("operating point: alpha = %.4f, beta = %.2f, NF = %.0f "
              "events/frame after NN-filt\n\n",
              run.meanAlpha, run.meanBeta,
              run.meanFilteredEventsPerFrame);

  std::printf("%-16s %16s %16s %14s %16s\n", "pipeline", "model ops/fr",
              "measured ops/fr", "model mem[kB]", "measured acc/fr");
  std::printf("%.*s\n", 84,
              "----------------------------------------------------------"
              "--------------------------");
  for (const PipelineRunStats& stats : run.pipelines) {
    const CostEstimate model = modelFor(stats.name);
    const double frames = static_cast<double>(stats.frames);
    const double accesses =
        frames > 0.0
            ? static_cast<double>(stats.totalOps.memAccesses()) / frames
            : 0.0;
    if (model.computesPerFrame > 0.0) {
      std::printf("%-16s %16.0f %16.0f %14.2f %16.0f\n", stats.name.c_str(),
                  model.computesPerFrame, stats.meanOpsPerFrame(),
                  model.memoryBits / 8.0 / 1024.0, accesses);
    } else {
      std::printf("%-16s %16s %16.0f %14s %16.0f\n", stats.name.c_str(),
                  "-", stats.meanOpsPerFrame(), "-", accesses);
    }
  }

  std::printf("\nRelative to EBBIOT (the Fig. 5 bars):\n");
  std::printf("%-16s %14s %14s %14s\n", "pipeline", "model ops",
              "measured ops", "model memory");
  for (const PipelineRunStats& stats : run.pipelines) {
    if (stats.name == "EBBIOT") {
      continue;
    }
    const CostEstimate model = modelFor(stats.name);
    if (model.computesPerFrame > 0.0) {
      std::printf("%-16s %14.2fx %14.2fx %14.2fx\n", stats.name.c_str(),
                  model.computesPerFrame / modelOurs.computesPerFrame,
                  stats.meanOpsPerFrame() / measuredOurs,
                  model.memoryBits / modelOurs.memoryBits);
    } else {
      std::printf("%-16s %14s %14.2fx %14s\n", stats.name.c_str(), "-",
                  stats.meanOpsPerFrame() / measuredOurs, "-");
    }
  }
  std::printf("\n(paper: EBMS chain ~3x computes, ~7x memory of EBBIOT)\n");

  const double measuredEbms = run.ebms->meanOpsPerFrame();
  std::printf(
      "\nNote on measured EBMS ops: Eq. (8) charges ~%.0f ops per filtered\n"
      "event (9*CL^2 + (169 + 16*g)*CL + 11 at CL = 2), the cost of the\n"
      "jAER-style cluster tracker the paper assumed.  Our lean\n"
      "reimplementation measures ~%.0f ops/event, so the *measured* EBMS\n"
      "bar sits below the model's.  The memory comparison and the\n"
      "frame-domain measurements are implementation-faithful; see\n"
      "EXPERIMENTS.md for the discussion.\n",
      9.0 * 4.0 + (169.0 + 1.6) * 2.0 + 11.0,
      run.meanFilteredEventsPerFrame > 0.0
          ? (measuredEbms -
             run.meanEventsPerFrame * 32.0) /  // NN-filt share (Eq. 2)
                run.meanFilteredEventsPerFrame
          : 0.0);
  std::printf(
      "\nNote on the median stage: measured compute is Eq. (1)'s fixed\n"
      "2*A*B floor (activity-independent); the ~p^2*A*B patch fetches are\n"
      "reported in the accesses/frame column, not in ops/frame — Section\n"
      "II-A keeps reads out of the op budget.  The model column still\n"
      "charges the paper's alpha*p^2*A*B counter term, so measured\n"
      "frame-domain ops sit slightly below the model at alpha ~ 0.1.\n");
  return 0;
}
