// Ablation — two-timescale EBBI (the paper's future-work extension for
// slow, small objects).
//
// A pedestrian at sub-pixel-per-frame speed leaves only a handful of
// events per 66 ms window — often too few to survive the median filter.
// The slow frame (OR of the last k windows) integrates k x tF of
// exposure.  This bench sweeps k and reports pedestrian recall when the
// EBBIOT pipeline consumes the slow frame, versus the fast frame.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/pipeline.hpp"
#include "src/ebbi/two_timescale.hpp"
#include "src/eval/metrics.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/ground_truth.hpp"
#include "src/sim/scene.hpp"

namespace {

using namespace ebbiot;

/// A pedestrian-only scene (plus noise): the hard case of Section IV.
struct PedestrianWorld {
  PedestrianWorld() : scene(240, 180) {
    // Three pedestrians at ~4 px/s (~0.25 px/frame), staggered in time.
    scene.addLinear(ObjectClass::kHuman, BBox{-8, 100, 8, 20}, Vec2f{4, 0},
                    0, secondsToUs(40.0));
    scene.addLinear(ObjectClass::kHuman, BBox{240, 120, 8, 20},
                    Vec2f{-3.5F, 0}, secondsToUs(2.0), secondsToUs(40.0));
    scene.addLinear(ObjectClass::kHuman, BBox{-8, 80, 9, 22}, Vec2f{3, 0},
                    secondsToUs(5.0), secondsToUs(40.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.15;
    config.seed = 17;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

double pedestrianRecall(int slowFactor, double seconds) {
  PedestrianWorld world;
  TwoTimescaleBuilder frames(240, 180, slowFactor);
  MedianFilter median(3);
  HistogramRpn rpn{HistogramRpnConfig{}};
  OverlapTrackerConfig trackerConfig;
  trackerConfig.minSeedArea = 6.0F;
  OverlapTracker tracker(trackerConfig);
  PrSweepAccumulator acc({0.2F});

  BinaryImage filtered(240, 180);
  const auto frameCount =
      static_cast<std::size_t>(secondsToUs(seconds) / kDefaultFramePeriodUs);
  for (std::size_t f = 0; f < frameCount; ++f) {
    const EventPacket packet =
        latchReadout(world.synth->nextWindow(kDefaultFramePeriodUs), 240,
                     180);
    frames.addWindow(packet);
    median.applyInto(frames.slowFrame(), filtered);
    const Tracks tracks = tracker.update(rpn.propose(filtered));
    const GtFrame gt = annotateScene(world.scene, packet.tEnd());
    acc.addFrame(tracks, gt.boxes);
  }
  return acc.counts()[0].recall();
}

}  // namespace

int main() {
  std::printf("Two-timescale ablation — pedestrians at ~0.25 px/frame, "
              "35 s, recall at IoU 0.2\n\n");
  std::printf("%-18s %12s %14s\n", "slow factor k", "exposure", "recall");
  std::printf("%.*s\n", 46, "----------------------------------------------");
  // Each slow factor replays its own PedestrianWorld, so the sweep
  // shards factors across the shared scheduler and prints from the
  // per-factor slots in fixed order.
  const std::vector<int> factors{1, 2, 4, 6, 8, 12};
  std::vector<double> recalls(factors.size());
  ebbiot::globalThreadPool().parallelFor(factors.size(), [&](std::size_t i) {
    recalls[i] = pedestrianRecall(factors[i], 35.0);
  });
  for (std::size_t i = 0; i < factors.size(); ++i) {
    std::printf("%-18d %9.0f ms %14.3f\n", factors[i], 66.0 * factors[i],
                recalls[i]);
  }
  std::printf("\n(k = 1 is the plain fast frame of the paper, which "
              "'… [has] not tracked slow and\nsmall objects like "
              "humans'; the slow frame recovers them at the cost of "
              "k-frame\nlatency in the silhouette.)\n");
  return 0;
}
