// Ablation — frame period tF (Section II-A).
//
// The paper argues ~15 Hz (tF = 66 ms) is "good enough for traffic
// surveillance" and that the interrupt scheme "loses appeal as tF becomes
// smaller".  This sweep quantifies both ends: tracking quality (the OT's
// overlap assumption needs frame-to-frame overlap, which breaks for long
// tF on fast objects) and per-second compute (frame cost x frame rate).
#include <cstdio>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

int main() {
  using namespace ebbiot;
  constexpr double kSeconds = 45.0;
  std::printf("Frame-period ablation — SyntheticENG, %.0f s per setting\n\n",
              kSeconds);
  std::printf("%-10s %10s %10s %10s %16s %16s\n", "tF [ms]", "P@0.3",
              "R@0.3", "F1@0.3", "ops/frame", "ops/second");
  std::printf("%.*s\n", 78,
              "----------------------------------------------------------"
              "--------------------");

  // Each frame-period setting replays its own recording, so the sweep
  // shards settings across the shared scheduler and prints the rows in
  // fixed order from the per-setting slots.
  const std::vector<double> periodsMs{16.5, 33.0, 66.0,  99.0,
                                      132.0, 198.0, 264.0};
  std::vector<RunResult> results(periodsMs.size());
  globalThreadPool().parallelFor(periodsMs.size(), [&](std::size_t i) {
    RecordingSpec spec = makeSyntheticEng();
    spec.durationS = kSeconds;
    Recording rec = openRecording(spec);
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.runKalman = false;
    config.runEbms = false;
    config.framePeriod = millisToUs(periodsMs[i]);
    results[i] = runRecording(*rec.source, *rec.scenario,
                              secondsToUs(spec.durationS), config);
  });
  for (std::size_t i = 0; i < periodsMs.size(); ++i) {
    const double tFms = periodsMs[i];
    const PrCounts& c = results[i].ebbiot->counts[2];  // IoU 0.3
    const double opsPerFrame = results[i].ebbiot->meanOpsPerFrame();
    std::printf("%-10.1f %10.3f %10.3f %10.3f %16.0f %16.0f\n", tFms,
                c.precision(), c.recall(), c.f1(), opsPerFrame,
                opsPerFrame * 1000.0 / tFms);
  }
  std::printf("\n(Short tF: more wakeups, thin EBBIs — seeding suffers.  "
              "Long tF: blurred\nsilhouettes and a broken overlap "
              "assumption.  The usable basin is broad\n(~60-200 ms); the "
              "paper's 66 ms sits at its fast edge, buying the lowest\n"
              "latency and least motion blur that still tracks reliably.)\n");
  return 0;
}
