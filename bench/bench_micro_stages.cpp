// Wall-clock microbenchmarks of every pipeline stage (google-benchmark).
//
// The paper's resource argument is in abstract ops; this binary grounds
// it in time on the host CPU: EBBI build, median filter (word-parallel
// and scalar reference), downsample + histograms, RPN, CCA, the three
// trackers and the NN-filter, all on a realistic ENG-like frame.
//
// Two extra counters per stage feed the perf trajectory (BENCH_micro.json
// in CI, via tools/bench_micro_json.py):
//   * ops_frame    — the stage's measured abstract OpCounts::total() per
//                    frame (the paper's metric; independent of the host);
//   * allocs_frame — heap allocations per frame, counted by replacing the
//                    global operator new; steady-state stages must show 0.
//                    Stages pinned allocation-free warm up before the
//                    counter baseline is taken, and the CI bench job fails
//                    if any of them regresses above zero (see
//                    tools/bench_micro_json.py --fail-on-steady-allocs).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "src/common/alloc_counter.hpp"
#include "src/common/rng.hpp"
#include "src/core/runner.hpp"
#include "src/detect/cca_reference.hpp"
#include "src/filters/median_filter_incremental.hpp"
#include "src/filters/median_filter_reference.hpp"
#include "src/filters/nn_filter_reference.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/recording.hpp"
#include "src/trackers/ebms_reference.hpp"

namespace {

using namespace ebbiot;

std::atomic<std::uint64_t>& gAllocations = gAllocationCount;

/// Pre-generated packets of ENG-like traffic shared by all benchmarks.
class FrameBank {
 public:
  static FrameBank& instance() {
    static FrameBank bank;
    return bank;
  }

  /// Number of distinct pre-generated frames (benchmarks warm steady-state
  /// stages over one full cycle so every reused buffer reaches capacity
  /// before the allocation baseline is taken).
  std::size_t size() const { return stream_.size(); }

  const EventPacket& stream(std::size_t i) const {
    return stream_[i % stream_.size()];
  }
  const EventPacket& latched(std::size_t i) const {
    return latched_[i % latched_.size()];
  }
  const BinaryImage& ebbi(std::size_t i) const {
    return ebbi_[i % ebbi_.size()];
  }
  const BinaryImage& filtered(std::size_t i) const {
    return filtered_[i % filtered_.size()];
  }
  const RegionProposals& proposals(std::size_t i) const {
    return proposals_[i % proposals_.size()];
  }

 private:
  FrameBank() {
    RecordingSpec spec = makeSyntheticEng();
    spec.durationS = 20.0;
    Recording rec = openRecording(spec);
    EbbiBuilder builder(240, 180);
    MedianFilter median(3);
    HistogramRpn rpn{HistogramRpnConfig{}};
    for (int i = 0; i < 64; ++i) {
      EventPacket stream = rec.source->nextWindow(kDefaultFramePeriodUs);
      EventPacket latched = latchReadout(stream, 240, 180);
      BinaryImage ebbi = builder.build(latched);
      BinaryImage filtered = median.apply(ebbi);
      proposals_.push_back(rpn.propose(filtered));
      stream_.push_back(std::move(stream));
      latched_.push_back(std::move(latched));
      ebbi_.push_back(std::move(ebbi));
      filtered_.push_back(std::move(filtered));
    }
  }

  std::vector<EventPacket> stream_;
  std::vector<EventPacket> latched_;
  std::vector<BinaryImage> ebbi_;
  std::vector<BinaryImage> filtered_;
  std::vector<RegionProposals> proposals_;
};

/// Tracks the per-frame counters over a benchmark run: call frame() with
/// each frame's measured ops, then report() once after the timing loop.
/// allocs_frame is sampled strictly *between* iterations — from the end of
/// the first frame to the end of the last — so the one-off allocations of
/// the benchmark harness's own loop start/stop (and anything the first
/// iteration still warms up) don't smear the steady-state figure the CI
/// gate pins at zero.
class StageCounters {
 public:
  explicit StageCounters(benchmark::State& state) : state_(state) {}

  void frame(const OpCounts& ops) {
    totalOps_ += ops.total();
    if (frames_ == 0) {
      allocsBefore_ = gAllocations.load();
    }
    ++frames_;
    allocsAfter_ = gAllocations.load();
  }

  void report() {
    const auto iters = static_cast<double>(state_.iterations());
    if (iters <= 0) {
      return;
    }
    state_.counters["ops_frame"] =
        static_cast<double>(totalOps_) / iters;
    state_.counters["allocs_frame"] =
        frames_ > 1 ? static_cast<double>(allocsAfter_ - allocsBefore_) /
                          static_cast<double>(frames_ - 1)
                    : 0.0;
  }

 private:
  benchmark::State& state_;
  std::uint64_t allocsBefore_ = 0;
  std::uint64_t allocsAfter_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t totalOps_ = 0;
};

void BM_EbbiBuild(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbbiBuilder builder(240, 180);
  BinaryImage img(240, 180);
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    builder.buildInto(bank.latched(w), img);  // warm-up: alloc-free after
  }
  StageCounters counters(state);
  for (auto _ : state) {
    builder.buildInto(bank.latched(i++), img);
    benchmark::DoNotOptimize(img);
    counters.frame(builder.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbbiBuild);

void BM_MedianFilter(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  MedianFilter median(3);
  BinaryImage out(240, 180);
  std::size_t i = 0;
  median.applyInto(bank.ebbi(0), out);  // warm-up: alloc-free after
  StageCounters counters(state);
  for (auto _ : state) {
    median.applyInto(bank.ebbi(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilter);

void BM_MedianFilterReference(benchmark::State& state) {
  // The scalar pixel-at-a-time baseline the word-parallel filter is
  // pinned against — kept benchmarked so the speedup stays visible in
  // the perf trajectory.
  FrameBank& bank = FrameBank::instance();
  MedianFilterReference median(3);
  BinaryImage out(240, 180);
  std::size_t i = 0;
  median.applyInto(bank.ebbi(0), out);  // warm-up: alloc-free after
  StageCounters counters(state);
  for (auto _ : state) {
    median.applyInto(bank.ebbi(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilterReference);

void BM_MedianFilterIncremental(benchmark::State& state) {
  // The row-diffing variant over the same cycling frame bank: each frame
  // differs from the previous in the moving traffic band only, so the
  // carry-save majority re-runs on the changed rows (+-1 halo) and the
  // rest of the output is reused.  Pinned bit-identical to BM_MedianFilter
  // by tests/test_median_filter_incremental.cpp.
  FrameBank& bank = FrameBank::instance();
  MedianFilterIncremental median(3);
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(median.apply(bank.ebbi(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const BinaryImage& out = median.apply(bank.ebbi(i++));
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilterIncremental);

/// Stable-scene EBBIs: a persistent saturated activity region (flicker /
/// foliage latching the same pixels every window) plus one small mover —
/// the surveillance regime where consecutive windows repeat most rows.
/// The noisy ENG bank above is the incremental filter's worst case
/// (frame-wide shot noise touches every row, so nothing is reusable and
/// the diff is pure overhead); this is the case it is built for.
std::vector<BinaryImage> stableSceneFrames() {
  std::vector<BinaryImage> frames;
  for (int f = 0; f < 64; ++f) {
    BinaryImage img(240, 180);
    for (int y = 40; y < 140; ++y) {
      for (int x = 30; x < 210; ++x) {
        img.set(x, y, true);
      }
    }
    const int moverX = 20 + 3 * f;
    for (int y = 150; y < 160; ++y) {
      for (int x = moverX; x < moverX + 12; ++x) {
        img.set(x % 240, y, true);
      }
    }
    frames.push_back(std::move(img));
  }
  return frames;
}

void BM_MedianFilterStableScene(benchmark::State& state) {
  static const std::vector<BinaryImage> frames = stableSceneFrames();
  MedianFilter median(3);
  BinaryImage out(240, 180);
  std::size_t i = 0;
  median.applyInto(frames[0], out);  // warm-up: alloc-free after
  StageCounters counters(state);
  for (auto _ : state) {
    median.applyInto(frames[i++ % frames.size()], out);
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilterStableScene);

void BM_MedianFilterIncrementalStableScene(benchmark::State& state) {
  static const std::vector<BinaryImage> frames = stableSceneFrames();
  MedianFilterIncremental median(3);
  std::size_t i = 0;
  for (std::size_t w = 0; w < frames.size(); ++w) {
    benchmark::DoNotOptimize(median.apply(frames[w]));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const BinaryImage& out = median.apply(frames[i++ % frames.size()]);
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilterIncrementalStableScene);

void BM_DownsampleAndHistogram(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  Downsampler down(6, 3);
  HistogramBuilder hist;
  CountImage c;
  HistogramPair h;
  std::size_t i = 0;
  down.downsampleInto(bank.filtered(0), c);  // warm-up: alloc-free after
  hist.buildInto(c, h);
  StageCounters counters(state);
  for (auto _ : state) {
    down.downsampleInto(bank.filtered(i++), c);
    hist.buildInto(c, h);
    benchmark::DoNotOptimize(h);
    counters.frame(down.lastOps() + hist.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_DownsampleAndHistogram);

void BM_HistogramRpn(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  HistogramRpn rpn{HistogramRpnConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(rpn.propose(bank.filtered(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const RegionProposals& p = rpn.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
    counters.frame(rpn.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_HistogramRpn);

void BM_CcaRpn(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  CcaLabeler cca{CcaConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(cca.propose(bank.filtered(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const RegionProposals& p = cca.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
    counters.frame(cca.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_CcaRpn);

void BM_CcaRpnReference(benchmark::State& state) {
  // The scalar pixel-at-a-time two-pass baseline the run-based labeller is
  // pinned against — kept benchmarked so the speedup stays visible in the
  // perf trajectory (same convention as BM_MedianFilterReference).
  FrameBank& bank = FrameBank::instance();
  CcaLabelerReference cca{CcaConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(cca.propose(bank.filtered(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const RegionProposals& p = cca.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
    counters.frame(cca.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_CcaRpnReference);

void BM_OverlapTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  OverlapTracker tracker{OverlapTrackerConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = tracker.update(bank.proposals(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_OverlapTracker);

void BM_KalmanTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  KalmanTracker tracker{KalmanTrackerConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = tracker.update(bank.proposals(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_KalmanTracker);

void BM_NnFilter(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  NnFilter filter{NnFilterConfig{}};
  EventPacket out;
  std::size_t i = 0;
  // Two full warm-up cycles: replaying the bank wraps time backwards, so
  // from the second cycle on the (stateful) filter keeps more events per
  // window; capacity is stable only after the output saw that regime.
  for (std::size_t w = 0; w < 2 * bank.size(); ++w) {
    filter.filterInto(bank.stream(w), out);  // alloc-free after this
  }
  StageCounters counters(state);
  for (auto _ : state) {
    filter.filterInto(bank.stream(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(filter.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_NnFilter);

void BM_NnFilterReference(benchmark::State& state) {
  // The scalar full-neighbourhood-scan twin BM_NnFilter is pinned
  // bit-identical against (kept events and Eq. (2) ops;
  // tests/test_nn_filter.cpp) — kept benchmarked so the event-surface
  // speedup stays visible in the perf trajectory.
  FrameBank& bank = FrameBank::instance();
  NnFilterReference filter{NnFilterConfig{}};
  EventPacket out;
  std::size_t i = 0;
  for (std::size_t w = 0; w < 2 * bank.size(); ++w) {
    filter.filterInto(bank.stream(w), out);  // alloc-free after this
  }
  StageCounters counters(state);
  for (auto _ : state) {
    filter.filterInto(bank.stream(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(filter.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_NnFilterReference);

/// Dense-noise wide-area windows for the NN filter: a 640x480 sensor
/// dominated by uncorrelated shot noise plus a few genuine movers — the
/// regime Eq. (2) is built for (almost every event must be *rejected*,
/// i.e. its whole neighbourhood inspected and found stale).  The scalar
/// reference pays p^2 - 1 scattered timestamp loads per rejection; the
/// surface answers from a handful of bitplane words.
std::vector<EventPacket> denseNoiseWindows(int noiseEvents, int blobs) {
  Rng rng(11);
  std::vector<EventPacket> windows;
  for (int w = 0; w < 4; ++w) {
    EventPacket p(w * 66'000, (w + 1) * 66'000);
    for (int b = 0; b < blobs; ++b) {
      const float cx = 60.0F + 520.0F * static_cast<float>(b) /
                                   static_cast<float>(blobs);
      const float cy = 80.0F + 40.0F * static_cast<float>(b % 3);
      for (int i = 0; i < 200; ++i) {
        const int x = std::clamp(
            static_cast<int>(cx + rng.uniform(-4.0F, 4.0F)), 0, 639);
        const int y = std::clamp(
            static_cast<int>(cy + rng.uniform(-4.0F, 4.0F)), 0, 479);
        p.push(Event{static_cast<std::uint16_t>(x),
                     static_cast<std::uint16_t>(y), Polarity::kOn,
                     w * 66'000 + rng.uniformInt(0, 65'999)});
      }
    }
    for (int i = 0; i < noiseEvents; ++i) {
      p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 639)),
                   static_cast<std::uint16_t>(rng.uniformInt(0, 479)),
                   Polarity::kOn, w * 66'000 + rng.uniformInt(0, 65'999)});
    }
    p.sortByTime();
    windows.push_back(std::move(p));
  }
  return windows;
}

NnFilterConfig denseNoiseNnConfig() {
  NnFilterConfig config;
  config.width = 640;
  config.height = 480;
  // Wide-area tuning: the paper's p = 3 neighbourhood is sized for a
  // 304x240 sensor; at 640x480 the same angular neighbourhood spans
  // ~2.1x more pixels, so the support patch scales to p = 7.  (This is
  // also the regime that separates the implementations: the scalar
  // reference's support scan grows with p^2 while the word-parallel
  // surface only adds patch rows, ~p.)
  config.neighbourhood = 7;
  return config;
}

void BM_NnFilterDenseNoise(benchmark::State& state) {
  static const std::vector<EventPacket> windows =
      denseNoiseWindows(20'000, 6);
  NnFilter filter(denseNoiseNnConfig());
  EventPacket out;
  std::size_t i = 0;
  for (int r = 0; r < 2; ++r) {  // warm-up (see BM_NnFilter)
    for (const EventPacket& p : windows) {
      filter.filterInto(p, out);
    }
  }
  StageCounters counters(state);
  for (auto _ : state) {
    filter.filterInto(windows[i++ % windows.size()], out);
    benchmark::DoNotOptimize(out);
    counters.frame(filter.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_NnFilterDenseNoise);

void BM_NnFilterDenseNoiseReference(benchmark::State& state) {
  static const std::vector<EventPacket> windows =
      denseNoiseWindows(20'000, 6);
  NnFilterReference filter(denseNoiseNnConfig());
  EventPacket out;
  std::size_t i = 0;
  for (int r = 0; r < 2; ++r) {  // warm-up
    for (const EventPacket& p : windows) {
      filter.filterInto(p, out);
    }
  }
  StageCounters counters(state);
  for (auto _ : state) {
    filter.filterInto(windows[i++ % windows.size()], out);
    benchmark::DoNotOptimize(out);
    counters.frame(filter.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_NnFilterDenseNoiseReference);

// The EBMS tracker benchmarks cycle a window set small enough to stay
// cache-resident: in the real event-domain pipeline the tracker consumes
// the packet the NN filter just wrote (warm), so streaming a megabyte of
// cold events per iteration would benchmark DRAM, not the stage — it
// flattened every implementation to the same number.
constexpr std::size_t kEbmsWindowCycle = 8;

void BM_EbmsTracker(benchmark::State& state) {
  // The batched SoA fast path, including the per-window tracks readout
  // into a reused vector: the whole loop is allocation-free once warm
  // (SoA arrays and history rings are sized at construction).  On the
  // paper's ENG default (CLmax = 8, 30 px capture radius) the per-event
  // mean-shift dependency chain dominates and the scalar reference sits
  // at nearly the same wall-clock; BM_EbmsTrackerCrowded below is the
  // regime the batching is built for.
  FrameBank& bank = FrameBank::instance();
  EbmsTracker tracker{EbmsConfig{}};
  Tracks tracks;
  std::size_t i = 0;
  for (std::size_t w = 0; w < kEbmsWindowCycle; ++w) {  // warm-up
    tracker.processPacket(bank.stream(w));
    tracker.visibleTracksInto(tracks);
  }
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(bank.stream(i++ % kEbmsWindowCycle));
    tracker.visibleTracksInto(tracks);
    benchmark::DoNotOptimize(tracks);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTracker);

void BM_EbmsTrackerReference(benchmark::State& state) {
  // The scalar deque-based baseline BM_EbmsTracker is pinned bit-identical
  // against (clusters, tracks and OpCounts; tests/test_ebms_soa.cpp) —
  // kept benchmarked so the comparison stays visible in the perf
  // trajectory.
  FrameBank& bank = FrameBank::instance();
  EbmsTrackerReference tracker{EbmsConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < kEbmsWindowCycle; ++w) {  // warm-up
    tracker.processPacket(bank.stream(w));
  }
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(bank.stream(i++ % kEbmsWindowCycle));
    const Tracks tracks = tracker.visibleTracks();
    benchmark::DoNotOptimize(tracks);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTrackerReference);

/// Crowded wide-area surveillance windows: many small objects spread over
/// a 640x480 sensor plus shot noise — the regime where Eq. (8)'s
/// NF * CLmax scan term dominates the EBMS cost.
std::vector<EventPacket> crowdedWindows() {
  Rng rng(7);
  std::vector<EventPacket> windows;
  constexpr int kBlobs = 56;
  for (int w = 0; w < 4; ++w) {
    EventPacket p(w * 66'000, (w + 1) * 66'000);
    for (int b = 0; b < kBlobs; ++b) {
      const float cx = 40.0F + 560.0F * static_cast<float>(b % 8) / 8.0F +
                       static_cast<float>(w);
      const float cy = 40.0F + 400.0F * static_cast<float>(b / 8) / 8.0F;
      for (int i = 0; i < 60; ++i) {
        const int x = std::clamp(
            static_cast<int>(cx + rng.uniform(-5.0F, 5.0F)), 0, 639);
        const int y = std::clamp(
            static_cast<int>(cy + rng.uniform(-5.0F, 5.0F)), 0, 479);
        p.push(Event{static_cast<std::uint16_t>(x),
                     static_cast<std::uint16_t>(y), Polarity::kOn,
                     w * 66'000 + rng.uniformInt(0, 65'999)});
      }
    }
    for (int i = 0; i < 400; ++i) {
      p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 639)),
                   static_cast<std::uint16_t>(rng.uniformInt(0, 479)),
                   Polarity::kOn, w * 66'000 + rng.uniformInt(0, 65'999)});
    }
    p.sortByTime();
    windows.push_back(std::move(p));
  }
  return windows;
}

EbmsConfig crowdedEbmsConfig() {
  EbmsConfig config;
  config.maxClusters = 64;   // CLmax sized for the crowd
  config.captureRadius = 16.0F;  // small objects
  return config;
}

void BM_EbmsTrackerCrowded(benchmark::State& state) {
  // 64 live clusters: the capture grid hands each event 1-2 candidates
  // instead of a 64-cluster scan, which is where the SoA fast path pulls
  // away from the scalar reference (same differential pinning applies —
  // the tests cover merge/prune/velocity at these configs too).
  static const std::vector<EventPacket> windows = crowdedWindows();
  EbmsTracker tracker{crowdedEbmsConfig()};
  Tracks tracks;
  std::size_t i = 0;
  for (int r = 0; r < 4; ++r) {  // warm-up
    for (const EventPacket& p : windows) {
      tracker.processPacket(p);
      tracker.visibleTracksInto(tracks);
    }
  }
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(windows[i++ % windows.size()]);
    tracker.visibleTracksInto(tracks);
    benchmark::DoNotOptimize(tracks);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTrackerCrowded);

void BM_EbmsTrackerCrowdedReference(benchmark::State& state) {
  static const std::vector<EventPacket> windows = crowdedWindows();
  EbmsTrackerReference tracker{crowdedEbmsConfig()};
  std::size_t i = 0;
  for (int r = 0; r < 4; ++r) {  // warm-up
    for (const EventPacket& p : windows) {
      tracker.processPacket(p);
    }
  }
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(windows[i++ % windows.size()]);
    const Tracks tracks = tracker.visibleTracks();
    benchmark::DoNotOptimize(tracks);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTrackerCrowdedReference);

/// ENG-like windows saturating CLmax = 8: eight well-separated blobs on
/// the 240x180 sensor with events interleaved round-robin in time, plus
/// salt noise.  Consecutive events almost always belong to *different*
/// clusters, so the sequential per-event loop stalls on a different
/// cluster's mean-shift chain each event while the grouped path runs the
/// eight chains back to back — the overlapped-chain regime.
std::vector<EventPacket> engClusterWindows(int noiseEvents) {
  Rng rng(13);
  std::vector<EventPacket> windows;
  constexpr float kCx[] = {30, 120, 210, 30, 120, 210, 75, 165};
  constexpr float kCy[] = {30, 30, 30, 150, 150, 150, 90, 90};
  for (std::size_t w = 0; w < kEbmsWindowCycle; ++w) {
    EventPacket p(static_cast<TimeUs>(w) * 66'000,
                  static_cast<TimeUs>(w + 1) * 66'000);
    // Sensor-realistic arrival: each object's events reach the packet in
    // bursts (readout locality), so the sequential scan sees runs of
    // consecutive captures whose EMA updates form one dependent chain —
    // the serialisation the grouped phase-B replay exists to overlap.
    for (int i = 0; i < 6; ++i) {
      for (int b = 0; b < 8; ++b) {
        for (int k = 0; k < 25; ++k) {
          const int x = std::clamp(
              static_cast<int>(kCx[b] + rng.uniform(-6.0F, 6.0F)), 0, 239);
          const int y = std::clamp(
              static_cast<int>(kCy[b] + rng.uniform(-6.0F, 6.0F)), 0, 179);
          p.push(Event{static_cast<std::uint16_t>(x),
                       static_cast<std::uint16_t>(y), Polarity::kOn,
                       static_cast<TimeUs>(w) * 66'000 +
                           (static_cast<TimeUs>(i) * 8 + b) * 1'300 +
                           static_cast<TimeUs>(k)});
        }
      }
    }
    for (int i = 0; i < noiseEvents; ++i) {
      p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                   static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                   Polarity::kOn, static_cast<TimeUs>(w) * 66'000 +
                                      rng.uniformInt(0, 65'999)});
    }
    p.sortByTime();
    windows.push_back(std::move(p));
  }
  return windows;
}

void BM_EbmsTrackerEng(benchmark::State& state) {
  static const std::vector<EventPacket> windows = engClusterWindows(100);
  // Paper ENG regime: CLmax = 8, headlight-scale objects on the QQVGA
  // sensor — the capture radius matches the ~10 px object extent, so the
  // eight capture regions are disjoint (vehicles in separate lanes).
  EbmsConfig cfg;
  cfg.captureRadius = 12.0F;
  EbmsTracker tracker{cfg};
  Tracks tracks;
  std::size_t i = 0;
  // Acquisition bootstrap: one noise-free cycle so each object claims a
  // cluster slot before the measured steady state (the cell benchmarks
  // tracking, not acquisition; with all CLmax slots owned by objects,
  // noise can no longer seed and only exercises the discard path).
  for (const EventPacket& p : engClusterWindows(0)) {
    tracker.processPacket(p);
  }
  for (int r = 0; r < 4; ++r) {  // warm-up
    for (const EventPacket& p : windows) {
      tracker.processPacket(p);
      tracker.visibleTracksInto(tracks);
    }
  }
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(windows[i++ % windows.size()]);
    tracker.visibleTracksInto(tracks);
    benchmark::DoNotOptimize(tracks);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTrackerEng);

void BM_EbmsTrackerEngReference(benchmark::State& state) {
  static const std::vector<EventPacket> windows = engClusterWindows(100);
  EbmsConfig cfg;
  cfg.captureRadius = 12.0F;  // same ENG config as the fast cell
  EbmsTrackerReference tracker{cfg};
  std::size_t i = 0;
  for (const EventPacket& p : engClusterWindows(0)) {
    tracker.processPacket(p);  // same acquisition bootstrap as the fast cell
  }
  for (int r = 0; r < 4; ++r) {  // warm-up
    for (const EventPacket& p : windows) {
      tracker.processPacket(p);
    }
  }
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(windows[i++ % windows.size()]);
    const Tracks tracks = tracker.visibleTracks();
    benchmark::DoNotOptimize(tracks);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTrackerEngReference);

void BM_FullEbbiotPipeline(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = pipeline.processWindow(bank.latched(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(pipeline.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_FullEbbiotPipeline);

void BM_FullEbmsPipeline(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbmsPipeline pipeline{EbmsPipelineConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = pipeline.processWindow(bank.stream(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(pipeline.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_FullEbmsPipeline);

void BM_LatchReadout(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const EventPacket p = latchReadout(bank.stream(i++), 240, 180);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_LatchReadout);

void BM_RunRecordingRegistry(benchmark::State& state) {
  // The full evaluation harness: all registered variants over a short
  // synthetic ENG slice, at {threads, pipelined} given by the benchmark
  // args.  threads=1 is the serial loop; higher counts exercise the
  // stage-graph (pipelined=1) or per-frame barrier (pipelined=0) paths —
  // tools/bench_micro_json.py turns this grid into the thread-scaling
  // section of BENCH_micro.json.
  const auto threads = static_cast<int>(state.range(0));
  const bool pipelined = state.range(1) != 0;
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = 5.0;
  for (auto _ : state) {
    Recording rec = openRecording(spec);
    RunnerConfig config = makeRegistryRunnerConfig(240, 180);
    config.threads = threads;
    config.pipelined = pipelined;
    config.maxFrames = 45;
    const RunResult result =
        runRecording(*rec.source, *rec.scenario, secondsToUs(5.0), config);
    benchmark::DoNotOptimize(result.frames);
  }
}
BENCHMARK(BM_RunRecordingRegistry)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
