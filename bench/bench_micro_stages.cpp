// Wall-clock microbenchmarks of every pipeline stage (google-benchmark).
//
// The paper's resource argument is in abstract ops; this binary grounds
// it in time on the host CPU: EBBI build, median filter (word-parallel
// and scalar reference), downsample + histograms, RPN, CCA, the three
// trackers and the NN-filter, all on a realistic ENG-like frame.
//
// Two extra counters per stage feed the perf trajectory (BENCH_micro.json
// in CI, via tools/bench_micro_json.py):
//   * ops_frame    — the stage's measured abstract OpCounts::total() per
//                    frame (the paper's metric; independent of the host);
//   * allocs_frame — heap allocations per frame, counted by replacing the
//                    global operator new; steady-state stages must show 0.
//                    Stages pinned allocation-free warm up before the
//                    counter baseline is taken, and the CI bench job fails
//                    if any of them regresses above zero (see
//                    tools/bench_micro_json.py --fail-on-steady-allocs).
#include <benchmark/benchmark.h>

#include "src/common/alloc_counter.hpp"
#include "src/core/runner.hpp"
#include "src/detect/cca_reference.hpp"
#include "src/filters/median_filter_reference.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/recording.hpp"

namespace {

using namespace ebbiot;

std::atomic<std::uint64_t>& gAllocations = gAllocationCount;

/// Pre-generated packets of ENG-like traffic shared by all benchmarks.
class FrameBank {
 public:
  static FrameBank& instance() {
    static FrameBank bank;
    return bank;
  }

  /// Number of distinct pre-generated frames (benchmarks warm steady-state
  /// stages over one full cycle so every reused buffer reaches capacity
  /// before the allocation baseline is taken).
  std::size_t size() const { return stream_.size(); }

  const EventPacket& stream(std::size_t i) const {
    return stream_[i % stream_.size()];
  }
  const EventPacket& latched(std::size_t i) const {
    return latched_[i % latched_.size()];
  }
  const BinaryImage& ebbi(std::size_t i) const {
    return ebbi_[i % ebbi_.size()];
  }
  const BinaryImage& filtered(std::size_t i) const {
    return filtered_[i % filtered_.size()];
  }
  const RegionProposals& proposals(std::size_t i) const {
    return proposals_[i % proposals_.size()];
  }

 private:
  FrameBank() {
    RecordingSpec spec = makeSyntheticEng();
    spec.durationS = 20.0;
    Recording rec = openRecording(spec);
    EbbiBuilder builder(240, 180);
    MedianFilter median(3);
    HistogramRpn rpn{HistogramRpnConfig{}};
    for (int i = 0; i < 64; ++i) {
      EventPacket stream = rec.source->nextWindow(kDefaultFramePeriodUs);
      EventPacket latched = latchReadout(stream, 240, 180);
      BinaryImage ebbi = builder.build(latched);
      BinaryImage filtered = median.apply(ebbi);
      proposals_.push_back(rpn.propose(filtered));
      stream_.push_back(std::move(stream));
      latched_.push_back(std::move(latched));
      ebbi_.push_back(std::move(ebbi));
      filtered_.push_back(std::move(filtered));
    }
  }

  std::vector<EventPacket> stream_;
  std::vector<EventPacket> latched_;
  std::vector<BinaryImage> ebbi_;
  std::vector<BinaryImage> filtered_;
  std::vector<RegionProposals> proposals_;
};

/// Tracks the per-frame counters over a benchmark run: call frame() with
/// each frame's measured ops, then report() once after the timing loop.
/// allocs_frame is sampled strictly *between* iterations — from the end of
/// the first frame to the end of the last — so the one-off allocations of
/// the benchmark harness's own loop start/stop (and anything the first
/// iteration still warms up) don't smear the steady-state figure the CI
/// gate pins at zero.
class StageCounters {
 public:
  explicit StageCounters(benchmark::State& state) : state_(state) {}

  void frame(const OpCounts& ops) {
    totalOps_ += ops.total();
    if (frames_ == 0) {
      allocsBefore_ = gAllocations.load();
    }
    ++frames_;
    allocsAfter_ = gAllocations.load();
  }

  void report() {
    const auto iters = static_cast<double>(state_.iterations());
    if (iters <= 0) {
      return;
    }
    state_.counters["ops_frame"] =
        static_cast<double>(totalOps_) / iters;
    state_.counters["allocs_frame"] =
        frames_ > 1 ? static_cast<double>(allocsAfter_ - allocsBefore_) /
                          static_cast<double>(frames_ - 1)
                    : 0.0;
  }

 private:
  benchmark::State& state_;
  std::uint64_t allocsBefore_ = 0;
  std::uint64_t allocsAfter_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t totalOps_ = 0;
};

void BM_EbbiBuild(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbbiBuilder builder(240, 180);
  BinaryImage img(240, 180);
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    builder.buildInto(bank.latched(w), img);  // warm-up: alloc-free after
  }
  StageCounters counters(state);
  for (auto _ : state) {
    builder.buildInto(bank.latched(i++), img);
    benchmark::DoNotOptimize(img);
    counters.frame(builder.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbbiBuild);

void BM_MedianFilter(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  MedianFilter median(3);
  BinaryImage out(240, 180);
  std::size_t i = 0;
  median.applyInto(bank.ebbi(0), out);  // warm-up: alloc-free after
  StageCounters counters(state);
  for (auto _ : state) {
    median.applyInto(bank.ebbi(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilter);

void BM_MedianFilterReference(benchmark::State& state) {
  // The scalar pixel-at-a-time baseline the word-parallel filter is
  // pinned against — kept benchmarked so the speedup stays visible in
  // the perf trajectory.
  FrameBank& bank = FrameBank::instance();
  MedianFilterReference median(3);
  BinaryImage out(240, 180);
  std::size_t i = 0;
  median.applyInto(bank.ebbi(0), out);  // warm-up: alloc-free after
  StageCounters counters(state);
  for (auto _ : state) {
    median.applyInto(bank.ebbi(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(median.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_MedianFilterReference);

void BM_DownsampleAndHistogram(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  Downsampler down(6, 3);
  HistogramBuilder hist;
  CountImage c;
  HistogramPair h;
  std::size_t i = 0;
  down.downsampleInto(bank.filtered(0), c);  // warm-up: alloc-free after
  hist.buildInto(c, h);
  StageCounters counters(state);
  for (auto _ : state) {
    down.downsampleInto(bank.filtered(i++), c);
    hist.buildInto(c, h);
    benchmark::DoNotOptimize(h);
    counters.frame(down.lastOps() + hist.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_DownsampleAndHistogram);

void BM_HistogramRpn(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  HistogramRpn rpn{HistogramRpnConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(rpn.propose(bank.filtered(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const RegionProposals& p = rpn.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
    counters.frame(rpn.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_HistogramRpn);

void BM_CcaRpn(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  CcaLabeler cca{CcaConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(cca.propose(bank.filtered(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const RegionProposals& p = cca.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
    counters.frame(cca.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_CcaRpn);

void BM_CcaRpnReference(benchmark::State& state) {
  // The scalar pixel-at-a-time two-pass baseline the run-based labeller is
  // pinned against — kept benchmarked so the speedup stays visible in the
  // perf trajectory (same convention as BM_MedianFilterReference).
  FrameBank& bank = FrameBank::instance();
  CcaLabelerReference cca{CcaConfig{}};
  std::size_t i = 0;
  for (std::size_t w = 0; w < bank.size(); ++w) {
    benchmark::DoNotOptimize(cca.propose(bank.filtered(w)));  // warm-up
  }
  StageCounters counters(state);
  for (auto _ : state) {
    const RegionProposals& p = cca.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
    counters.frame(cca.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_CcaRpnReference);

void BM_OverlapTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  OverlapTracker tracker{OverlapTrackerConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = tracker.update(bank.proposals(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_OverlapTracker);

void BM_KalmanTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  KalmanTracker tracker{KalmanTrackerConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = tracker.update(bank.proposals(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_KalmanTracker);

void BM_NnFilter(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  NnFilter filter{NnFilterConfig{}};
  EventPacket out;
  std::size_t i = 0;
  // Two full warm-up cycles: replaying the bank wraps time backwards, so
  // from the second cycle on the (stateful) filter keeps more events per
  // window; capacity is stable only after the output saw that regime.
  for (std::size_t w = 0; w < 2 * bank.size(); ++w) {
    filter.filterInto(bank.stream(w), out);  // alloc-free after this
  }
  StageCounters counters(state);
  for (auto _ : state) {
    filter.filterInto(bank.stream(i++), out);
    benchmark::DoNotOptimize(out);
    counters.frame(filter.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_NnFilter);

void BM_EbmsTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbmsTracker tracker{EbmsConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    tracker.processPacket(bank.stream(i++));
    benchmark::DoNotOptimize(tracker.activeCount());
    counters.frame(tracker.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_EbmsTracker);

void BM_FullEbbiotPipeline(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = pipeline.processWindow(bank.latched(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(pipeline.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_FullEbbiotPipeline);

void BM_FullEbmsPipeline(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbmsPipeline pipeline{EbmsPipelineConfig{}};
  std::size_t i = 0;
  StageCounters counters(state);
  for (auto _ : state) {
    const Tracks t = pipeline.processWindow(bank.stream(i++));
    benchmark::DoNotOptimize(t);
    counters.frame(pipeline.lastOps());
  }
  counters.report();
}
BENCHMARK(BM_FullEbmsPipeline);

void BM_LatchReadout(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const EventPacket p = latchReadout(bank.stream(i++), 240, 180);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_LatchReadout);

void BM_RunRecordingRegistry(benchmark::State& state) {
  // The full evaluation harness: all registered variants over a short
  // synthetic ENG slice, at the thread count given by the benchmark arg.
  // threads=1 is the serial loop; compare against higher counts for the
  // per-frame pipeline fan-out (needs spare hardware threads to win).
  const auto threads = static_cast<int>(state.range(0));
  RecordingSpec spec = makeSyntheticEng();
  spec.durationS = 5.0;
  for (auto _ : state) {
    Recording rec = openRecording(spec);
    RunnerConfig config = makeRegistryRunnerConfig(240, 180);
    config.threads = threads;
    config.maxFrames = 45;
    const RunResult result =
        runRecording(*rec.source, *rec.scenario, secondsToUs(5.0), config);
    benchmark::DoNotOptimize(result.frames);
  }
}
BENCHMARK(BM_RunRecordingRegistry)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
