// Wall-clock microbenchmarks of every pipeline stage (google-benchmark).
//
// The paper's resource argument is in abstract ops; this binary grounds
// it in time on the host CPU: EBBI build, median filter, downsample +
// histograms, RPN, CCA, the three trackers and the NN-filter, all on a
// realistic ENG-like frame.
#include <benchmark/benchmark.h>

#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/recording.hpp"

namespace {

using namespace ebbiot;

/// Pre-generated packets of ENG-like traffic shared by all benchmarks.
class FrameBank {
 public:
  static FrameBank& instance() {
    static FrameBank bank;
    return bank;
  }

  const EventPacket& stream(std::size_t i) const {
    return stream_[i % stream_.size()];
  }
  const EventPacket& latched(std::size_t i) const {
    return latched_[i % latched_.size()];
  }
  const BinaryImage& ebbi(std::size_t i) const {
    return ebbi_[i % ebbi_.size()];
  }
  const BinaryImage& filtered(std::size_t i) const {
    return filtered_[i % filtered_.size()];
  }
  const RegionProposals& proposals(std::size_t i) const {
    return proposals_[i % proposals_.size()];
  }

 private:
  FrameBank() {
    RecordingSpec spec = makeSyntheticEng();
    spec.durationS = 20.0;
    Recording rec = openRecording(spec);
    EbbiBuilder builder(240, 180);
    MedianFilter median(3);
    HistogramRpn rpn{HistogramRpnConfig{}};
    for (int i = 0; i < 64; ++i) {
      EventPacket stream = rec.source->nextWindow(kDefaultFramePeriodUs);
      EventPacket latched = latchReadout(stream, 240, 180);
      BinaryImage ebbi = builder.build(latched);
      BinaryImage filtered = median.apply(ebbi);
      proposals_.push_back(rpn.propose(filtered));
      stream_.push_back(std::move(stream));
      latched_.push_back(std::move(latched));
      ebbi_.push_back(std::move(ebbi));
      filtered_.push_back(std::move(filtered));
    }
  }

  std::vector<EventPacket> stream_;
  std::vector<EventPacket> latched_;
  std::vector<BinaryImage> ebbi_;
  std::vector<BinaryImage> filtered_;
  std::vector<RegionProposals> proposals_;
};

void BM_EbbiBuild(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbbiBuilder builder(240, 180);
  BinaryImage img(240, 180);
  std::size_t i = 0;
  for (auto _ : state) {
    builder.buildInto(bank.latched(i++), img);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_EbbiBuild);

void BM_MedianFilter(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  MedianFilter median(3);
  BinaryImage out(240, 180);
  std::size_t i = 0;
  for (auto _ : state) {
    median.applyInto(bank.ebbi(i++), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MedianFilter);

void BM_DownsampleAndHistogram(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  Downsampler down(6, 3);
  HistogramBuilder hist;
  std::size_t i = 0;
  for (auto _ : state) {
    const CountImage c = down.downsample(bank.filtered(i++));
    const HistogramPair h = hist.build(c);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DownsampleAndHistogram);

void BM_HistogramRpn(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  HistogramRpn rpn{HistogramRpnConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const RegionProposals p = rpn.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_HistogramRpn);

void BM_CcaRpn(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  CcaLabeler cca{CcaConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const RegionProposals p = cca.propose(bank.filtered(i++));
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_CcaRpn);

void BM_OverlapTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  OverlapTracker tracker{OverlapTrackerConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const Tracks t = tracker.update(bank.proposals(i++));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_OverlapTracker);

void BM_KalmanTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  KalmanTracker tracker{KalmanTrackerConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const Tracks t = tracker.update(bank.proposals(i++));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_KalmanTracker);

void BM_NnFilter(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  NnFilter filter{NnFilterConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const EventPacket p = filter.filter(bank.stream(i++));
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_NnFilter);

void BM_EbmsTracker(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbmsTracker tracker{EbmsConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    tracker.processPacket(bank.stream(i++));
    benchmark::DoNotOptimize(tracker.activeCount());
  }
}
BENCHMARK(BM_EbmsTracker);

void BM_FullEbbiotPipeline(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const Tracks t = pipeline.processWindow(bank.latched(i++));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FullEbbiotPipeline);

void BM_FullEbmsPipeline(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  EbmsPipeline pipeline{EbmsPipelineConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const Tracks t = pipeline.processWindow(bank.stream(i++));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FullEbmsPipeline);

void BM_LatchReadout(benchmark::State& state) {
  FrameBank& bank = FrameBank::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const EventPacket p = latchReadout(bank.stream(i++), 240, 180);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_LatchReadout);

}  // namespace

BENCHMARK_MAIN();
