// Ablation — data association in the Kalman baseline.
//
// The KF pipeline's weakest link is matching proposals to tracks.  This
// bench runs the same traffic through greedy nearest-first association
// (what embedded trackers ship, and our default) and through the optimal
// Hungarian assignment, quantifying whether optimality buys anything at
// the paper's operating point (~2 concurrent objects: it should not —
// conflicts are rare — which is itself a finding worth stating).
#include <cstdio>

#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

namespace {

ebbiot::RunResult runWith(ebbiot::AssociationMethod method, double seconds,
                          std::uint64_t seed) {
  using namespace ebbiot;
  RecordingSpec spec = makeSyntheticEng(seed);
  spec.durationS = seconds;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runEbbiot = false;
  config.runEbms = false;
  config.gtOptions.minVisibleFraction = 0.10F;
  config.kalman.tracker.association = method;
  return runRecording(*rec.source, *rec.scenario,
                      secondsToUs(spec.durationS), config);
}

}  // namespace

int main() {
  using namespace ebbiot;
  constexpr double kSeconds = 60.0;
  std::printf("Association ablation — EBBI+KF on SyntheticENG, %.0f s x 2 "
              "seeds\n\n",
              kSeconds);
  std::printf("%-12s %10s %10s %10s %10s %14s\n", "method", "P@0.3",
              "R@0.3", "P@0.5", "R@0.5", "ops/frame");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");
  for (const auto& [name, method] :
       {std::pair{"greedy", AssociationMethod::kGreedy},
        std::pair{"hungarian", AssociationMethod::kHungarian}}) {
    PrCounts at03;
    PrCounts at05;
    double ops = 0.0;
    for (std::uint64_t seed : {7ULL, 77ULL}) {
      const RunResult r = runWith(method, kSeconds, seed);
      at03 += r.kalman->counts[2];
      at05 += r.kalman->counts[4];
      ops += r.kalman->meanOpsPerFrame() / 2.0;
    }
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %14.0f\n", name,
                at03.precision(), at03.recall(), at05.precision(),
                at05.recall(), ops);
  }
  std::printf("\n(At NT ~= 2 concurrent objects, assignment conflicts are "
              "rare: greedy is\nnear-optimal, which justifies the paper's "
              "low-complexity stance.)\n");
  return 0;
}
