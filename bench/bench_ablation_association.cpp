// Ablation — data association in the Kalman baseline.
//
// The KF pipeline's weakest link is matching proposals to tracks.  This
// bench runs the same traffic through greedy nearest-first association
// (what embedded trackers ship, and our default) and through the optimal
// Hungarian assignment, quantifying whether optimality buys anything at
// the paper's operating point (~2 concurrent objects: it should not —
// conflicts are rare — which is itself a finding worth stating).
#include <array>
#include <cstdio>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/runner.hpp"
#include "src/sim/recording.hpp"

namespace {

ebbiot::RunResult runWith(ebbiot::AssociationMethod method, double seconds,
                          std::uint64_t seed) {
  using namespace ebbiot;
  RecordingSpec spec = makeSyntheticEng(seed);
  spec.durationS = seconds;
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runEbbiot = false;
  config.runEbms = false;
  config.gtOptions.minVisibleFraction = 0.10F;
  config.kalman.tracker.association = method;
  return runRecording(*rec.source, *rec.scenario,
                      secondsToUs(spec.durationS), config);
}

}  // namespace

int main() {
  using namespace ebbiot;
  constexpr double kSeconds = 60.0;
  std::printf("Association ablation — EBBI+KF on SyntheticENG, %.0f s x 2 "
              "seeds\n\n",
              kSeconds);
  std::printf("%-12s %10s %10s %10s %10s %14s\n", "method", "P@0.3",
              "R@0.3", "P@0.5", "R@0.5", "ops/frame");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");
  // 2 methods x 2 seeds = 4 independent recordings: shard the whole
  // grid across the shared scheduler, then reduce per method in fixed
  // order from the per-cell slots (identical to the serial sweep).
  const std::array<std::pair<const char*, AssociationMethod>, 2> methods{
      std::pair{"greedy", AssociationMethod::kGreedy},
      std::pair{"hungarian", AssociationMethod::kHungarian}};
  const std::array<std::uint64_t, 2> seeds{7ULL, 77ULL};
  std::vector<RunResult> cells(methods.size() * seeds.size());
  globalThreadPool().parallelFor(cells.size(), [&](std::size_t i) {
    cells[i] = runWith(methods[i / seeds.size()].second, kSeconds,
                       seeds[i % seeds.size()]);
  });
  for (std::size_t m = 0; m < methods.size(); ++m) {
    PrCounts at03;
    PrCounts at05;
    double ops = 0.0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const RunResult& r = cells[m * seeds.size() + s];
      at03 += r.kalman->counts[2];
      at05 += r.kalman->counts[4];
      ops += r.kalman->meanOpsPerFrame() / static_cast<double>(seeds.size());
    }
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %14.0f\n",
                methods[m].first, at03.precision(), at03.recall(),
                at05.precision(), at05.recall(), ops);
  }
  std::printf("\n(At NT ~= 2 concurrent objects, assignment conflicts are "
              "rare: greedy is\nnear-optimal, which justifies the paper's "
              "low-complexity stance.)\n");
  return 0;
}
