#include "src/common/matrix.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

TEST(MatrixTest, ZeroInitialised) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 0.0);
    }
  }
}

TEST(MatrixTest, InitializerListLayoutIsRowMajor) {
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 2), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, AddSubtract) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  EXPECT_EQ(a + b, Matrix(2, 2, {6, 8, 10, 12}));
  EXPECT_EQ(b - a, Matrix(2, 2, {4, 4, 4, 4}));
}

TEST(MatrixTest, MultiplyKnownResult) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix p = a * b;
  EXPECT_EQ(p, Matrix(2, 2, {58, 64, 139, 154}));
}

TEST(MatrixTest, ScalarMultiply) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(a * 2.0, Matrix(2, 2, {2, 4, 6, 8}));
}

TEST(MatrixTest, Transpose) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 2U);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(MatrixTest, InverseOfKnownMatrix) {
  const Matrix a(2, 2, {4, 7, 2, 6});
  const Matrix inv = a.inverted();
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(MatrixTest, SingularMatrixThrows) {
  const Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW((void)a.inverted(), LogicError);
}

TEST(MatrixTest, MismatchedShapesThrow) {
  const Matrix a(2, 2);
  const Matrix b(3, 3);
  EXPECT_THROW((void)(a + b), LogicError);
  EXPECT_THROW((void)(a - b), LogicError);
  EXPECT_THROW((void)(a * Matrix(3, 1)), LogicError);
}

TEST(MatrixTest, OutOfBoundsAccessThrows) {
  Matrix a(2, 2);
  EXPECT_THROW((void)a(2, 0), LogicError);
  EXPECT_THROW((void)a(0, 2), LogicError);
}

TEST(MatrixTest, ColumnVector) {
  const Matrix v = Matrix::columnVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3U);
  EXPECT_EQ(v.cols(), 1U);
  EXPECT_DOUBLE_EQ(v(2, 0), 3.0);
}

TEST(MatrixTest, DistanceAndMaxAbs) {
  const Matrix a(1, 2, {0, 3});
  const Matrix b(1, 2, {4, 3});
  EXPECT_DOUBLE_EQ(a.distance(b), 4.0);
  EXPECT_DOUBLE_EQ((a - b).maxAbs(), 4.0);
}

// Property: A * A^-1 == I for random well-conditioned matrices.
class MatrixInverseProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatrixInverseProperty, InverseTimesSelfIsIdentity) {
  const int n = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(n));
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
    }
    a(r, r) += static_cast<double>(n);  // diagonal dominance
  }
  const Matrix prod = a * a.inverted();
  EXPECT_LT(prod.distance(Matrix::identity(a.rows())), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixInverseProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

// Property: (A*B)^T == B^T * A^T.
class MatrixTransposeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatrixTransposeProperty, ProductTransposeIdentity) {
  const int n = GetParam();
  Rng rng(99 + static_cast<std::uint64_t>(n));
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n + 1));
  Matrix b(static_cast<std::size_t>(n + 1), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      a(r, c) = rng.uniform(-2.0, 2.0);
    }
  }
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      b(r, c) = rng.uniform(-2.0, 2.0);
    }
  }
  const Matrix lhs = (a * b).transposed();
  const Matrix rhs = b.transposed() * a.transposed();
  EXPECT_LT(lhs.distance(rhs), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixTransposeProperty,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace ebbiot
