#include "src/core/node_model.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

NodePlatform testPlatform() {
  NodePlatform p;
  p.clockHz = 100e6;
  p.opsPerCycle = 1.0;
  p.activePowerMw = 10.0;
  p.sleepPowerUw = 10.0;
  p.sensorPowerMw = 0.0;  // isolate processor/radio terms in unit tests
  p.radioEnergyPerBitNj = 100.0;
  p.batteryCapacityMwh = 1'000.0;
  return p;
}

TEST(NodeModelTest, DutyCycleFromOps) {
  NodeWorkload w;
  w.opsPerFrame = 1e6;  // at 100 MHz: 10 ms active
  w.framePeriod = millisToUs(100.0);
  const NodeBudget b = estimateNodeBudget(testPlatform(), w);
  EXPECT_NEAR(b.activeSecondsPerFrame, 0.010, 1e-9);
  EXPECT_NEAR(b.dutyCycle, 0.10, 1e-9);
  EXPECT_TRUE(b.feasible);
}

TEST(NodeModelTest, InfeasibleWhenOpsExceedFrameBudget) {
  NodeWorkload w;
  w.opsPerFrame = 20e6;  // 200 ms of work in a 100 ms frame
  w.framePeriod = millisToUs(100.0);
  const NodeBudget b = estimateNodeBudget(testPlatform(), w);
  EXPECT_FALSE(b.feasible);
  EXPECT_GT(b.dutyCycle, 1.0);
}

TEST(NodeModelTest, ProcessorEnergySplitsActiveAndSleep) {
  NodeWorkload w;
  w.opsPerFrame = 1e6;  // 10 ms active, 90 ms sleep
  w.framePeriod = millisToUs(100.0);
  const NodeBudget b = estimateNodeBudget(testPlatform(), w);
  // active: 10 mW * 10 ms = 100 uJ;  sleep: 10 uW * 90 ms = 0.9 uJ.
  EXPECT_NEAR(b.processorEnergyUjPerFrame, 100.9, 0.01);
}

TEST(NodeModelTest, RadioEnergyFromPayload) {
  NodeWorkload w;
  w.opsPerFrame = 0.0;
  w.txBitsPerFrame = 1'000.0;  // at 100 nJ/bit -> 100 uJ
  w.framePeriod = millisToUs(100.0);
  const NodeBudget b = estimateNodeBudget(testPlatform(), w);
  EXPECT_NEAR(b.radioEnergyUjPerFrame, 100.0, 1e-9);
  EXPECT_NEAR(b.bandwidthBps, 10'000.0, 1e-6);
}

TEST(NodeModelTest, BatteryLifeFromMeanPower) {
  NodeWorkload w;
  w.opsPerFrame = 0.0;
  w.txBitsPerFrame = 0.0;
  w.framePeriod = millisToUs(100.0);
  NodePlatform p = testPlatform();
  p.sleepPowerUw = 1'000.0;  // 1 mW constant
  const NodeBudget b = estimateNodeBudget(p, w);
  EXPECT_NEAR(b.meanPowerMw, 1.0, 1e-6);
  EXPECT_NEAR(b.batteryLifeHours, 1'000.0, 1e-3);
}

TEST(NodeModelTest, SensorPowerAlwaysOn) {
  NodeWorkload w;
  w.framePeriod = millisToUs(100.0);
  NodePlatform p = testPlatform();
  p.sensorPowerMw = 5.0;
  const NodeBudget b = estimateNodeBudget(p, w);
  EXPECT_NEAR(b.sensorEnergyUjPerFrame, 500.0, 1e-6);
}

TEST(NodeModelTest, PayloadHelpers) {
  EXPECT_DOUBLE_EQ(trackPayloadBits(2.0), 224.0);         // 2 * 7 * 16
  EXPECT_DOUBLE_EQ(ebbiPayloadBits(240, 180), 43'200.0);
  EXPECT_DOUBLE_EQ(rawEventPayloadBits(650.0), 650.0 * 32.0);
  EXPECT_DOUBLE_EQ(grayFramePayloadBits(240, 180), 345'600.0);
}

TEST(NodeModelTest, TrackPayloadFarBelowAlternatives) {
  // The IoVT headline: tracks are orders of magnitude lighter than any
  // other uplink policy.
  const double tracks = trackPayloadBits(2.0);
  EXPECT_LT(tracks * 100.0, ebbiPayloadBits(240, 180));
  EXPECT_LT(tracks * 50.0, rawEventPayloadBits(2'500.0));
  EXPECT_LT(tracks * 1'000.0, grayFramePayloadBits(240, 180));
}

TEST(NodeModelTest, InvalidInputsRejected) {
  NodeWorkload w;
  w.framePeriod = 0;
  EXPECT_THROW((void)estimateNodeBudget(testPlatform(), w), LogicError);
  NodeWorkload w2;
  w2.opsPerFrame = -1.0;
  EXPECT_THROW((void)estimateNodeBudget(testPlatform(), w2), LogicError);
  EXPECT_THROW((void)trackPayloadBits(-1.0), LogicError);
}

}  // namespace
}  // namespace ebbiot
