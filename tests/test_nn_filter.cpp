#include "src/filters/nn_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/filters/nn_filter_reference.hpp"

namespace ebbiot {
namespace {

EventPacket randomStream(const NnFilterConfig& c, std::size_t n,
                         double clusterChance, std::uint64_t seed) {
  Rng rng(seed);
  EventPacket p(0, static_cast<TimeUs>(n) * 100 + 1);
  int cx = c.width / 2;
  int cy = c.height / 2;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(clusterChance)) {
      // Walk a cluster centre so bursts land within support range.
      cx = std::clamp(cx + static_cast<int>(rng.uniformInt(0, 2)) - 1, 0,
                      c.width - 1);
      cy = std::clamp(cy + static_cast<int>(rng.uniformInt(0, 2)) - 1, 0,
                      c.height - 1);
      p.push(Event{static_cast<std::uint16_t>(cx),
                   static_cast<std::uint16_t>(cy), Polarity::kOn,
                   static_cast<TimeUs>(i * 100)});
    } else {
      p.push(Event{
          static_cast<std::uint16_t>(rng.uniformInt(0, c.width - 1)),
          static_cast<std::uint16_t>(rng.uniformInt(0, c.height - 1)),
          Polarity::kOn, static_cast<TimeUs>(i * 100)});
    }
  }
  return p;
}

NnFilterConfig smallConfig() {
  NnFilterConfig c;
  c.width = 32;
  c.height = 32;
  c.neighbourhood = 3;
  c.supportWindow = 1'000;
  c.timestampBits = 16;
  return c;
}

/// Run both twins over the packet and require identical kept events and
/// identical Eq. (2) OpCounts (closed form vs. metered full scan).
void expectTwinsAgree(NnFilter& fast, NnFilterReference& reference,
                      const EventPacket& p, const char* label) {
  const EventPacket got = fast.filter(p);
  const EventPacket want = reference.filter(p);
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " event " << i;
  }
  EXPECT_EQ(fast.lastOps(), reference.lastOps())
      << label << ": closed-form ops diverge from metered reference";
}

TEST(NnFilterTest, IsolatedEventDropped) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, NeighbourSupportedEventKept) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});   // dropped (no support yet)
  p.push(Event{11, 10, Polarity::kOn, 200});   // supported by (10,10)
  const EventPacket out = filter.filter(p);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].x, 11);
}

TEST(NnFilterTest, SamePixelDoesNotSupportItself) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{10, 10, Polarity::kOn, 200});  // own pixel only: no support
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, SupportExpiresOutsideWindow) {
  NnFilter filter(smallConfig());  // window = 1000 us
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 10, Polarity::kOn, 2'000});  // 1900 us later: stale
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, SupportWindowBoundaryIsInclusive) {
  // t - ts == supportWindow still supports — the boundary-bucket
  // exact-fallback must keep the inclusive test of the scalar scan.
  NnFilter filter(smallConfig());  // window = 1000 us
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 10, Polarity::kOn, 1'100});  // exactly window later
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, DiagonalNeighbourCounts) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 11, Polarity::kOn, 200});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, StatePersistsAcrossPackets) {
  NnFilter filter(smallConfig());
  EventPacket a(0, 500);
  a.push(Event{10, 10, Polarity::kOn, 400});
  (void)filter.filter(a);
  EventPacket b(500, 1'500);
  b.push(Event{11, 10, Polarity::kOn, 600});  // supported across packets
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(NnFilterTest, ResetClearsSupport) {
  NnFilter filter(smallConfig());
  EventPacket a(0, 500);
  a.push(Event{10, 10, Polarity::kOn, 400});
  (void)filter.filter(a);
  filter.reset();
  EventPacket b(500, 1'500);
  b.push(Event{11, 10, Polarity::kOn, 600});
  EXPECT_TRUE(filter.filter(b).empty());
}

TEST(NnFilterTest, TimeRegressionStartsNewEpoch) {
  // Time only moves forward in a real stream; when a caller replays the
  // past (packet starting before events already recorded), the surface
  // forgets rather than serving stale "future" support.  Both twins
  // implement the identical rule.
  NnFilterConfig c = smallConfig();
  NnFilter fast(c);
  NnFilterReference reference(c);
  EventPacket warm(0, 100'000);
  warm.push(Event{10, 10, Polarity::kOn, 50'000});
  (void)fast.filter(warm);
  (void)reference.filter(warm);
  EventPacket replay(0, 100'000);
  replay.push(Event{11, 10, Polarity::kOn, 100});  // before 50'000: regress
  EXPECT_TRUE(fast.filter(replay).empty());
  EXPECT_TRUE(reference.filter(replay).empty());
  // Forward support inside the replayed epoch works normally again.
  EventPacket next(0, 100'000);
  next.push(Event{12, 10, Polarity::kOn, 300});  // neighbour of (11,10)
  EXPECT_EQ(fast.filter(next).size(), 1U);
  EXPECT_EQ(reference.filter(next).size(), 1U);
}

TEST(NnFilterTest, NegativeTimestampsAreNotNeverFired) {
  // Regression test for the old kNever = -1 sentinel: an event at
  // t = -1 (legal after node-side unwrap rebasing) must provide support
  // like any other event instead of reading as an unfired pixel.
  NnFilterConfig c = smallConfig();
  NnFilter fast(c);
  NnFilterReference reference(c);
  EventPacket p(-10, 10'000);
  p.push(Event{10, 10, Polarity::kOn, -1});
  p.push(Event{11, 10, Polarity::kOn, 0});  // 1 us later: supported
  EXPECT_EQ(fast.filter(p).size(), 1U);
  EXPECT_EQ(reference.filter(p).size(), 1U);
}

TEST(NnFilterTest, DenseBurstMostlySurvives) {
  // A moving-edge burst: events tightly packed in space and time.
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  for (int i = 0; i < 10; ++i) {
    p.push(Event{static_cast<std::uint16_t>(10 + i % 3),
                 static_cast<std::uint16_t>(10 + i / 3), Polarity::kOn,
                 static_cast<TimeUs>(100 + i * 10)});
  }
  const EventPacket out = filter.filter(p);
  EXPECT_GE(out.size(), 8U);  // only the earliest events lack support
}

TEST(NnFilterTest, BorderPixelsHandled) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{0, 0, Polarity::kOn, 100});
  p.push(Event{1, 0, Polarity::kOn, 200});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, UnsortedPacketRejected) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{1, 1, Polarity::kOn, 500});
  p.push(Event{1, 1, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

TEST(NnFilterTest, ConfigValidationThrows) {
  const NnFilterConfig good = smallConfig();
  EXPECT_NO_THROW(good.validate());
  NnFilterConfig c = good;
  c.neighbourhood = 4;  // even
  EXPECT_THROW(NnFilter{c}, ConfigError);
  c = good;
  c.neighbourhood = 1;  // a 1x1 neighbourhood has no neighbours
  EXPECT_THROW(NnFilter{c}, ConfigError);
  c = good;
  c.width = 0;
  EXPECT_THROW(NnFilter{c}, ConfigError);
  c = good;
  c.height = -3;
  EXPECT_THROW(NnFilter{c}, ConfigError);
  c = good;
  c.supportWindow = 0;
  EXPECT_THROW(NnFilter{c}, ConfigError);
  c = good;
  c.timestampBits = 0;
  EXPECT_THROW(NnFilter{c}, ConfigError);
  c = good;
  c.supportWindow = TimeUs{1} << 50;  // beyond packed-timestamp headroom
  EXPECT_THROW(NnFilter{c}, ConfigError);
}

TEST(NnFilterTest, OpsMatchEq2Accounting) {
  // Eq. (2): per event, (p^2 - 1) comparisons + (p^2 - 1) increments +
  // one Bt-bit write.  Interior events see the full 8-cell neighbourhood.
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  (void)filter.filter(p);
  EXPECT_EQ(filter.lastOps().compares, 8U);
  EXPECT_EQ(filter.lastOps().adds, 8U);
  EXPECT_EQ(filter.lastOps().memWrites, 16U);  // Bt bits
  EXPECT_EQ(filter.lastOps().total(), 32U);    // = 2(p^2-1) + Bt per event
}

TEST(NnFilterTest, MemoryBitsMatchesEq2) {
  NnFilter filter(smallConfig());
  EXPECT_EQ(filter.memoryBits(), 16U * 32U * 32U);
  NnFilterConfig davis;  // defaults: 240x180, Bt=16
  NnFilter davisFilter(davis);
  EXPECT_EQ(davisFilter.memoryBits(), 16U * 240U * 180U);  // 86.4 kB
}

TEST(NnFilterTest, WordParallelMatchesReferenceRun) {
  // The bitplane support test must keep the same events AND report the
  // same Eq. (2) full-neighbourhood ops as the metered scalar reference
  // — including border events (clamped patches), multi-packet state and
  // the epoch restart when a new seed's stream regresses time.
  for (int neighbourhood : {3, 5}) {
    NnFilterConfig c = smallConfig();
    c.width = 64;
    c.height = 48;
    c.neighbourhood = neighbourhood;
    c.supportWindow = 700;
    NnFilter fast(c);
    NnFilterReference reference(c);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const EventPacket p = randomStream(c, 400, 0.7, seed);
      expectTwinsAgree(fast, reference, p,
                       ("p=" + std::to_string(neighbourhood) + " seed " +
                        std::to_string(seed))
                           .c_str());
    }
  }
}

TEST(NnFilterTest, CornerAndBorderGeometryMatchesReference) {
  // Clamped neighbourhoods: fire a supporting burst around every corner
  // and border midpoint, for p = 3, 5 and 9 (at p = 9 the patch spans
  // most of the frame, so every probe site clamps on both axes), and
  // require kept events and metered-vs-closed-form ops to agree cell
  // for cell.
  for (int neighbourhood : {3, 5, 9}) {
    NnFilterConfig c = smallConfig();
    c.width = 16;
    c.height = 12;
    c.neighbourhood = neighbourhood;
    NnFilter fast(c);
    NnFilterReference reference(c);
    const int xs[] = {0, c.width - 1, c.width / 2};
    const int ys[] = {0, c.height - 1, c.height / 2};
    TimeUs t = 0;
    EventPacket p(0, 1'000'000);
    for (const int y : ys) {
      for (const int x : xs) {
        // A tight 2x2 block stepping *inward* from the probe site, so
        // every corner/border pixel fires alongside in-bounds support.
        const int dx = (x == c.width - 1) ? -1 : 1;
        const int dy = (y == c.height - 1) ? -1 : 1;
        for (int k = 0; k < 4; ++k) {
          const int ex = std::clamp(x + (k % 2) * dx, 0, c.width - 1);
          const int ey = std::clamp(y + (k / 2) * dy, 0, c.height - 1);
          p.push(Event{static_cast<std::uint16_t>(ex),
                       static_cast<std::uint16_t>(ey), Polarity::kOn, t});
          t += 50;
        }
        t += 5'000;  // let support expire between probe sites
      }
    }
    expectTwinsAgree(fast, reference, p,
                     ("corners p=" + std::to_string(neighbourhood)).c_str());
  }
}

TEST(NnFilterTest, OnePixelTallFrameMatchesReference) {
  // Degenerate geometry: a 1-pixel-tall frame clamps every patch to a
  // single row (and a 64-wide frame keeps whole rows in one plane word).
  for (int neighbourhood : {3, 5, 9}) {
    NnFilterConfig c;
    c.width = 64;
    c.height = 1;
    c.neighbourhood = neighbourhood;
    c.supportWindow = 400;
    NnFilter fast(c);
    NnFilterReference reference(c);
    Rng rng(99);
    EventPacket p(0, 100'000);
    for (int i = 0; i < 300; ++i) {
      p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, c.width - 1)),
                   0, Polarity::kOn, static_cast<TimeUs>(i * 37)});
    }
    expectTwinsAgree(fast, reference, p,
                     ("1-row p=" + std::to_string(neighbourhood)).c_str());
    // Ops sanity: a p-tall patch clamped to one row has min(p, width)
    // cells across, minus the centre.
    EventPacket one(0, 1'000'000);
    one.push(Event{32, 0, Polarity::kOn, 900'000});
    (void)fast.filter(one);
    const auto across = static_cast<std::uint64_t>(neighbourhood);
    EXPECT_EQ(fast.lastOps().compares, across - 1);
  }
}

TEST(NnFilterTest, WideNeighbourhoodCrossesWordBoundary) {
  // p = 5 patches centred near x = 64 straddle two plane words; pin the
  // gather against the reference over a word-boundary burst.
  NnFilterConfig c;
  c.width = 128;
  c.height = 8;
  c.neighbourhood = 5;
  c.supportWindow = 2'000;
  NnFilter fast(c);
  NnFilterReference reference(c);
  EventPacket p(0, 100'000);
  TimeUs t = 0;
  for (int x = 60; x <= 68; ++x) {
    for (int y = 2; y <= 5; ++y) {
      p.push(Event{static_cast<std::uint16_t>(x),
                   static_cast<std::uint16_t>(y), Polarity::kOn, t});
      t += 25;
    }
  }
  expectTwinsAgree(fast, reference, p, "word boundary");
}

TEST(NnFilterTest, FilterIntoReusesPacketAndMatchesFilter) {
  NnFilterConfig c = smallConfig();
  NnFilter a(c);
  NnFilter b(c);
  EventPacket out;
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const EventPacket p = randomStream(c, 200, 0.6, seed);
    a.filterInto(p, out);
    const EventPacket byValue = b.filter(p);
    EXPECT_EQ(out.tStart(), byValue.tStart());
    EXPECT_EQ(out.tEnd(), byValue.tEnd());
    ASSERT_EQ(out.size(), byValue.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], byValue[i]);
    }
    EXPECT_EQ(a.lastOps(), b.lastOps());
  }
}

TEST(NnFilterTest, NoiseRejectionRate) {
  // Uniform random noise at low density: the overwhelming majority of
  // events must be rejected.
  NnFilterConfig c = smallConfig();
  c.width = 240;
  c.height = 180;
  NnFilter filter(c);
  EventPacket p(0, 66'000);
  // 300 random events over 43k pixels: isolated with high probability.
  std::uint64_t s = 12345;
  for (int i = 0; i < 300; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto x = static_cast<std::uint16_t>((s >> 20) % 240);
    const auto y = static_cast<std::uint16_t>((s >> 40) % 180);
    p.push(Event{x, y, Polarity::kOn, static_cast<TimeUs>(i * 200)});
  }
  p.sortByTime();
  const EventPacket out = filter.filter(p);
  EXPECT_LT(out.size(), 15U);
}

}  // namespace
}  // namespace ebbiot
