#include "src/filters/nn_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

/// Scalar reference NN filter: the original full-neighbourhood scan with
/// per-cell metering (one compare + one increment per visited cell, one
/// Bt-bit write per event).  NnFilter early-exits its scan but must keep
/// both the kept-event stream and the reported Eq. (2) ops identical to
/// this exhaustive run.
class NnFilterFullScanReference {
 public:
  explicit NnFilterFullScanReference(const NnFilterConfig& config)
      : config_(config),
        lastTimestamp_(static_cast<std::size_t>(config.width) *
                           static_cast<std::size_t>(config.height),
                       kNever) {}

  EventPacket filter(const EventPacket& packet) {
    ops_.reset();
    EventPacket out(packet.tStart(), packet.tEnd());
    const int r = config_.neighbourhood / 2;
    for (const Event& e : packet) {
      bool supported = false;
      const int x0 = std::max(0, e.x - r);
      const int x1 = std::min(config_.width - 1, e.x + r);
      const int y0 = std::max(0, e.y - r);
      const int y1 = std::min(config_.height - 1, e.y + r);
      for (int yy = y0; yy <= y1; ++yy) {
        for (int xx = x0; xx <= x1; ++xx) {
          if (xx == e.x && yy == e.y) {
            continue;
          }
          const TimeUs ts =
              lastTimestamp_[static_cast<std::size_t>(yy) * config_.width +
                             xx];
          ++ops_.compares;
          ++ops_.adds;
          if (ts != kNever && e.t - ts <= config_.supportWindow) {
            supported = true;
          }
        }
      }
      lastTimestamp_[static_cast<std::size_t>(e.y) * config_.width + e.x] =
          e.t;
      ops_.memWrites += static_cast<std::uint64_t>(config_.timestampBits);
      if (supported) {
        out.push(e);
      }
    }
    return out;
  }

  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

 private:
  static constexpr TimeUs kNever = -1;
  NnFilterConfig config_;
  std::vector<TimeUs> lastTimestamp_;
  OpCounts ops_;
};

EventPacket randomStream(const NnFilterConfig& c, std::size_t n,
                         double clusterChance, std::uint64_t seed) {
  Rng rng(seed);
  EventPacket p(0, static_cast<TimeUs>(n) * 100 + 1);
  int cx = c.width / 2;
  int cy = c.height / 2;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(clusterChance)) {
      // Walk a cluster centre so bursts land within support range.
      cx = std::clamp(cx + static_cast<int>(rng.uniformInt(0, 2)) - 1, 0,
                      c.width - 1);
      cy = std::clamp(cy + static_cast<int>(rng.uniformInt(0, 2)) - 1, 0,
                      c.height - 1);
      p.push(Event{static_cast<std::uint16_t>(cx),
                   static_cast<std::uint16_t>(cy), Polarity::kOn,
                   static_cast<TimeUs>(i * 100)});
    } else {
      p.push(Event{
          static_cast<std::uint16_t>(rng.uniformInt(0, c.width - 1)),
          static_cast<std::uint16_t>(rng.uniformInt(0, c.height - 1)),
          Polarity::kOn, static_cast<TimeUs>(i * 100)});
    }
  }
  return p;
}

NnFilterConfig smallConfig() {
  NnFilterConfig c;
  c.width = 32;
  c.height = 32;
  c.neighbourhood = 3;
  c.supportWindow = 1'000;
  c.timestampBits = 16;
  return c;
}

TEST(NnFilterTest, IsolatedEventDropped) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, NeighbourSupportedEventKept) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});   // dropped (no support yet)
  p.push(Event{11, 10, Polarity::kOn, 200});   // supported by (10,10)
  const EventPacket out = filter.filter(p);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].x, 11);
}

TEST(NnFilterTest, SamePixelDoesNotSupportItself) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{10, 10, Polarity::kOn, 200});  // own pixel only: no support
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, SupportExpiresOutsideWindow) {
  NnFilter filter(smallConfig());  // window = 1000 us
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 10, Polarity::kOn, 2'000});  // 1900 us later: stale
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, DiagonalNeighbourCounts) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 11, Polarity::kOn, 200});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, StatePersistsAcrossPackets) {
  NnFilter filter(smallConfig());
  EventPacket a(0, 500);
  a.push(Event{10, 10, Polarity::kOn, 400});
  (void)filter.filter(a);
  EventPacket b(500, 1'500);
  b.push(Event{11, 10, Polarity::kOn, 600});  // supported across packets
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(NnFilterTest, ResetClearsSupport) {
  NnFilter filter(smallConfig());
  EventPacket a(0, 500);
  a.push(Event{10, 10, Polarity::kOn, 400});
  (void)filter.filter(a);
  filter.reset();
  EventPacket b(500, 1'500);
  b.push(Event{11, 10, Polarity::kOn, 600});
  EXPECT_TRUE(filter.filter(b).empty());
}

TEST(NnFilterTest, DenseBurstMostlySurvives) {
  // A moving-edge burst: events tightly packed in space and time.
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  for (int i = 0; i < 10; ++i) {
    p.push(Event{static_cast<std::uint16_t>(10 + i % 3),
                 static_cast<std::uint16_t>(10 + i / 3), Polarity::kOn,
                 static_cast<TimeUs>(100 + i * 10)});
  }
  const EventPacket out = filter.filter(p);
  EXPECT_GE(out.size(), 8U);  // only the earliest events lack support
}

TEST(NnFilterTest, BorderPixelsHandled) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{0, 0, Polarity::kOn, 100});
  p.push(Event{1, 0, Polarity::kOn, 200});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, UnsortedPacketRejected) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{1, 1, Polarity::kOn, 500});
  p.push(Event{1, 1, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

TEST(NnFilterTest, OpsMatchEq2Accounting) {
  // Eq. (2): per event, (p^2 - 1) comparisons + (p^2 - 1) increments +
  // one Bt-bit write.  Interior events see the full 8-cell neighbourhood.
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  (void)filter.filter(p);
  EXPECT_EQ(filter.lastOps().compares, 8U);
  EXPECT_EQ(filter.lastOps().adds, 8U);
  EXPECT_EQ(filter.lastOps().memWrites, 16U);  // Bt bits
  EXPECT_EQ(filter.lastOps().total(), 32U);    // = 2(p^2-1) + Bt per event
}

TEST(NnFilterTest, MemoryBitsMatchesEq2) {
  NnFilter filter(smallConfig());
  EXPECT_EQ(filter.memoryBits(), 16U * 32U * 32U);
  NnFilterConfig davis;  // defaults: 240x180, Bt=16
  NnFilter davisFilter(davis);
  EXPECT_EQ(davisFilter.memoryBits(), 16U * 240U * 180U);  // 86.4 kB
}

TEST(NnFilterTest, EarlyExitMatchesFullScanReferenceRun) {
  // The early-exit scan must keep the same events AND report the same
  // Eq. (2) full-neighbourhood ops as a metered exhaustive reference run
  // — including border events (clamped patches) and multi-packet state.
  for (int neighbourhood : {3, 5}) {
    NnFilterConfig c = smallConfig();
    c.width = 64;
    c.height = 48;
    c.neighbourhood = neighbourhood;
    c.supportWindow = 700;
    NnFilter fast(c);
    NnFilterFullScanReference reference(c);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const EventPacket p = randomStream(c, 400, 0.7, seed);
      const EventPacket got = fast.filter(p);
      const EventPacket want = reference.filter(p);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << "event " << i;
      }
      EXPECT_EQ(fast.lastOps(), reference.lastOps())
          << "closed-form ops diverge from metered reference, seed " << seed;
    }
  }
}

TEST(NnFilterTest, FilterIntoReusesPacketAndMatchesFilter) {
  NnFilterConfig c = smallConfig();
  NnFilter a(c);
  NnFilter b(c);
  EventPacket out;
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const EventPacket p = randomStream(c, 200, 0.6, seed);
    a.filterInto(p, out);
    const EventPacket byValue = b.filter(p);
    EXPECT_EQ(out.tStart(), byValue.tStart());
    EXPECT_EQ(out.tEnd(), byValue.tEnd());
    ASSERT_EQ(out.size(), byValue.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], byValue[i]);
    }
    EXPECT_EQ(a.lastOps(), b.lastOps());
  }
}

TEST(NnFilterTest, NoiseRejectionRate) {
  // Uniform random noise at low density: the overwhelming majority of
  // events must be rejected.
  NnFilterConfig c = smallConfig();
  c.width = 240;
  c.height = 180;
  NnFilter filter(c);
  EventPacket p(0, 66'000);
  // 300 random events over 43k pixels: isolated with high probability.
  std::uint64_t s = 12345;
  for (int i = 0; i < 300; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto x = static_cast<std::uint16_t>((s >> 20) % 240);
    const auto y = static_cast<std::uint16_t>((s >> 40) % 180);
    p.push(Event{x, y, Polarity::kOn, static_cast<TimeUs>(i * 200)});
  }
  p.sortByTime();
  const EventPacket out = filter.filter(p);
  EXPECT_LT(out.size(), 15U);
}

}  // namespace
}  // namespace ebbiot
