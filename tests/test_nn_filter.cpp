#include "src/filters/nn_filter.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

NnFilterConfig smallConfig() {
  NnFilterConfig c;
  c.width = 32;
  c.height = 32;
  c.neighbourhood = 3;
  c.supportWindow = 1'000;
  c.timestampBits = 16;
  return c;
}

TEST(NnFilterTest, IsolatedEventDropped) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, NeighbourSupportedEventKept) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});   // dropped (no support yet)
  p.push(Event{11, 10, Polarity::kOn, 200});   // supported by (10,10)
  const EventPacket out = filter.filter(p);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].x, 11);
}

TEST(NnFilterTest, SamePixelDoesNotSupportItself) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{10, 10, Polarity::kOn, 200});  // own pixel only: no support
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, SupportExpiresOutsideWindow) {
  NnFilter filter(smallConfig());  // window = 1000 us
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 10, Polarity::kOn, 2'000});  // 1900 us later: stale
  const EventPacket out = filter.filter(p);
  EXPECT_TRUE(out.empty());
}

TEST(NnFilterTest, DiagonalNeighbourCounts) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  p.push(Event{11, 11, Polarity::kOn, 200});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, StatePersistsAcrossPackets) {
  NnFilter filter(smallConfig());
  EventPacket a(0, 500);
  a.push(Event{10, 10, Polarity::kOn, 400});
  (void)filter.filter(a);
  EventPacket b(500, 1'500);
  b.push(Event{11, 10, Polarity::kOn, 600});  // supported across packets
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(NnFilterTest, ResetClearsSupport) {
  NnFilter filter(smallConfig());
  EventPacket a(0, 500);
  a.push(Event{10, 10, Polarity::kOn, 400});
  (void)filter.filter(a);
  filter.reset();
  EventPacket b(500, 1'500);
  b.push(Event{11, 10, Polarity::kOn, 600});
  EXPECT_TRUE(filter.filter(b).empty());
}

TEST(NnFilterTest, DenseBurstMostlySurvives) {
  // A moving-edge burst: events tightly packed in space and time.
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  for (int i = 0; i < 10; ++i) {
    p.push(Event{static_cast<std::uint16_t>(10 + i % 3),
                 static_cast<std::uint16_t>(10 + i / 3), Polarity::kOn,
                 static_cast<TimeUs>(100 + i * 10)});
  }
  const EventPacket out = filter.filter(p);
  EXPECT_GE(out.size(), 8U);  // only the earliest events lack support
}

TEST(NnFilterTest, BorderPixelsHandled) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{0, 0, Polarity::kOn, 100});
  p.push(Event{1, 0, Polarity::kOn, 200});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(NnFilterTest, UnsortedPacketRejected) {
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{1, 1, Polarity::kOn, 500});
  p.push(Event{1, 1, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

TEST(NnFilterTest, OpsMatchEq2Accounting) {
  // Eq. (2): per event, (p^2 - 1) comparisons + (p^2 - 1) increments +
  // one Bt-bit write.  Interior events see the full 8-cell neighbourhood.
  NnFilter filter(smallConfig());
  EventPacket p(0, 10'000);
  p.push(Event{10, 10, Polarity::kOn, 100});
  (void)filter.filter(p);
  EXPECT_EQ(filter.lastOps().compares, 8U);
  EXPECT_EQ(filter.lastOps().adds, 8U);
  EXPECT_EQ(filter.lastOps().memWrites, 16U);  // Bt bits
  EXPECT_EQ(filter.lastOps().total(), 32U);    // = 2(p^2-1) + Bt per event
}

TEST(NnFilterTest, MemoryBitsMatchesEq2) {
  NnFilter filter(smallConfig());
  EXPECT_EQ(filter.memoryBits(), 16U * 32U * 32U);
  NnFilterConfig davis;  // defaults: 240x180, Bt=16
  NnFilter davisFilter(davis);
  EXPECT_EQ(davisFilter.memoryBits(), 16U * 240U * 180U);  // 86.4 kB
}

TEST(NnFilterTest, NoiseRejectionRate) {
  // Uniform random noise at low density: the overwhelming majority of
  // events must be rejected.
  NnFilterConfig c = smallConfig();
  c.width = 240;
  c.height = 180;
  NnFilter filter(c);
  EventPacket p(0, 66'000);
  // 300 random events over 43k pixels: isolated with high probability.
  std::uint64_t s = 12345;
  for (int i = 0; i < 300; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto x = static_cast<std::uint16_t>((s >> 20) % 240);
    const auto y = static_cast<std::uint16_t>((s >> 40) % 180);
    p.push(Event{x, y, Polarity::kOn, static_cast<TimeUs>(i * 200)});
  }
  p.sortByTime();
  const EventPacket out = filter.filter(p);
  EXPECT_LT(out.size(), 15U);
}

}  // namespace
}  // namespace ebbiot
