#include "src/ebbi/downsample.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

TEST(CountImageTest, AccessAndMass) {
  CountImage img(4, 3);
  img.at(1, 2) = 5;
  img.at(0, 0) = 2;
  EXPECT_EQ(img.at(1, 2), 5);
  EXPECT_EQ(img.totalMass(), 7U);
  EXPECT_THROW((void)img.at(4, 0), LogicError);
}

TEST(DownsamplerTest, PaperGeometry240x180By6x3) {
  BinaryImage img(240, 180);
  Downsampler down(6, 3);
  const CountImage out = down.downsample(img);
  EXPECT_EQ(out.width(), 40);   // floor(240/6)
  EXPECT_EQ(out.height(), 60);  // floor(180/3)
}

TEST(DownsamplerTest, BlockSumsMatchEq3) {
  BinaryImage img(12, 6);
  // Fill block (i=1, j=0) for s1=6, s2=3: x in [6,12), y in [0,3).
  for (int y = 0; y < 3; ++y) {
    for (int x = 6; x < 12; ++x) {
      img.set(x, y, true);
    }
  }
  // One extra pixel in block (0, 1).
  img.set(2, 4, true);
  Downsampler down(6, 3);
  const CountImage out = down.downsample(img);
  EXPECT_EQ(out.at(1, 0), 18);
  EXPECT_EQ(out.at(0, 1), 1);
  EXPECT_EQ(out.at(0, 0), 0);
  EXPECT_EQ(out.totalMass(), 19U);
}

TEST(DownsamplerTest, TrailingPixelsDropped) {
  // 13 x 7 with s1=6, s2=3 -> 2 x 2 output; column 12 and rows 6 ignored.
  BinaryImage img(13, 7);
  img.set(12, 0, true);  // outside any full block
  img.set(0, 6, true);   // outside any full block
  img.set(0, 0, true);   // inside block (0,0)
  Downsampler down(6, 3);
  const CountImage out = down.downsample(img);
  EXPECT_EQ(out.width(), 2);
  EXPECT_EQ(out.height(), 2);
  EXPECT_EQ(out.totalMass(), 1U);
}

TEST(DownsamplerTest, IdentityFactorsPreserveImage) {
  BinaryImage img(8, 8);
  img.set(3, 4, true);
  img.set(7, 7, true);
  Downsampler down(1, 1);
  const CountImage out = down.downsample(img);
  EXPECT_EQ(out.width(), 8);
  EXPECT_EQ(out.height(), 8);
  EXPECT_EQ(out.at(3, 4), 1);
  EXPECT_EQ(out.at(7, 7), 1);
  EXPECT_EQ(out.totalMass(), 2U);
}

TEST(DownsamplerTest, SparseSceneDirtyBandMatchesDenseScan) {
  // The dirty-row-span seed bounds the block-row loop; cells outside the
  // band must still come out zero and cells inside exact, including a
  // band in the trailing rows that no complete block covers.
  Downsampler down(6, 3);
  BinaryImage img(240, 181);  // one trailing row beyond the last block
  for (int x = 30; x < 45; ++x) {
    img.set(x, 90, true);
    img.set(x, 91, true);
  }
  img.set(10, 180, true);  // dropped by Eq. (3)'s floor bounds
  const CountImage got = down.downsample(img);
  CountImage want(40, 60);
  for (int j = 0; j < 60; ++j) {
    for (int i = 0; i < 40; ++i) {
      std::uint16_t acc = 0;
      for (int n = 0; n < 3; ++n) {
        for (int m = 0; m < 6; ++m) {
          acc = static_cast<std::uint16_t>(
              acc + (img.get(i * 6 + m, j * 3 + n) ? 1 : 0));
        }
      }
      want.at(i, j) = acc;
    }
  }
  EXPECT_EQ(got, want);
  // A guaranteed-blank frame downsamples to all-zero cells.
  const BinaryImage blank(240, 180);
  const CountImage zero = down.downsample(blank);
  EXPECT_EQ(zero.totalMass(), 0U);
}

TEST(DownsamplerTest, OpsScaleWithSourcePixels) {
  BinaryImage img(240, 180);
  Downsampler down(6, 3);
  (void)down.downsample(img);
  // One add per covered source pixel + one write per output cell.
  EXPECT_EQ(down.lastOps().adds, 240U * 180U);
  EXPECT_EQ(down.lastOps().memWrites, 40U * 60U);
}

// Property: total mass is preserved (for images whose dimensions are
// multiples of the factors).
class DownsampleMassProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DownsampleMassProperty, MassPreserved) {
  const auto [s1, s2] = GetParam();
  Rng rng(7 * static_cast<std::uint64_t>(s1) + static_cast<std::uint64_t>(s2));
  BinaryImage img(s1 * 10, s2 * 10);
  std::size_t set = 0;
  for (int i = 0; i < 300; ++i) {
    const int x = static_cast<int>(rng.uniformInt(0, s1 * 10 - 1));
    const int y = static_cast<int>(rng.uniformInt(0, s2 * 10 - 1));
    if (!img.get(x, y)) {
      img.set(x, y, true);
      ++set;
    }
  }
  Downsampler down(s1, s2);
  EXPECT_EQ(down.downsample(img).totalMass(), set);
}

INSTANTIATE_TEST_SUITE_P(
    Factors, DownsampleMassProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{6, 3},
                      std::pair{3, 6}, std::pair{8, 4}, std::pair{5, 7}));

}  // namespace
}  // namespace ebbiot
