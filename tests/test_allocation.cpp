// Steady-state allocation audit of the frame-domain front end.
//
// The per-frame hot path (EBBI build -> median filter -> RPN) reuses its
// buffers — images, count image, histogram bins, run and proposal vectors
// are all members with stable capacity.  This test pins that: after one
// warm-up window, processing further windows performs *zero* heap
// allocations.  Allocations are counted by replacing the global operator
// new/delete for this test binary (they forward to malloc/free, so every
// other test is unaffected beyond a relaxed atomic increment).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/alloc_counter.hpp"
#include "src/common/rng.hpp"
#include "src/core/front_end.hpp"
#include "src/detect/cca_reference.hpp"
#include "src/filters/median_filter_incremental.hpp"
#include "src/filters/nn_filter.hpp"
#include "src/node/sensor_session.hpp"
#include "src/node/wire_format.hpp"
#include "src/trackers/ebms.hpp"

namespace ebbiot {
namespace {

std::atomic<std::uint64_t>& gAllocations = gAllocationCount;

EventPacket denseTrafficWindow(std::uint64_t seed) {
  Rng rng(seed);
  EventPacket packet(0, 66000);
  // A vehicle-sized blob plus salt noise, enough to drive every front-end
  // stage (median, downsample, histograms, runs, validation, tightening).
  for (int y = 60; y < 90; ++y) {
    for (int x = 40; x < 110; ++x) {
      if (rng.chance(0.6)) {
        packet.push(Event{static_cast<std::uint16_t>(x),
                          static_cast<std::uint16_t>(y), Polarity::kOn,
                          1000});
      }
    }
  }
  for (int i = 0; i < 150; ++i) {
    packet.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                      static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                      Polarity::kOn, 2000});
  }
  return packet;
}

TEST(AllocationAuditTest, FrontEndSteadyStateAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  for (RpnKind kind : {RpnKind::kHistogram, RpnKind::kCca}) {
    for (bool incremental : {false, true}) {
      FrontEndConfig config;
      config.rpnKind = kind;
      config.incrementalMedian = incremental;
      FrameFrontEnd frontEnd(config);
      // Two distinct windows so the incremental median's diff path (not
      // just its identical-frame early-out) runs in the measured loop.
      const EventPacket packetA = denseTrafficWindow(5);
      const EventPacket packetB = denseTrafficWindow(6);
      (void)frontEnd.process(packetA);  // warm-up: capacities grow here
      (void)frontEnd.process(packetB);
      const std::uint64_t before = gAllocations.load();
      for (int i = 0; i < 10; ++i) {
        (void)frontEnd.process(i % 2 == 0 ? packetA : packetB);
      }
      const std::uint64_t after = gAllocations.load();
      EXPECT_EQ(after - before, 0U)
          << (kind == RpnKind::kHistogram ? "histogram" : "cca")
          << (incremental ? " (incremental median)" : "")
          << " front end allocated in steady state";
    }
  }
}

TEST(AllocationAuditTest, EbmsTracksPathSteadyStateAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  // The full event-domain tracks path: NN filter -> SoA EBMS tracker ->
  // visibleTracksInto/allClustersInto.  The tracker's SoA state and
  // history rings are sized at construction and the track vectors are
  // reused, so after warm-up the whole chain performs zero allocations
  // per window (EbmsPipeline drives exactly this chain internally).
  EbmsConfig ebmsConfig;
  ebmsConfig.positionSampleInterval = 2'000;  // exercise the history ring
  EbmsTracker tracker(ebmsConfig);
  NnFilter filter{NnFilterConfig{}};
  Rng rng(31);
  std::vector<EventPacket> windows;
  for (int w = 0; w < 4; ++w) {
    EventPacket p(w * 66'000, (w + 1) * 66'000);
    for (int i = 0; i < 600; ++i) {
      const int x = 60 + static_cast<int>(rng.uniformInt(0, 59));
      const int y = 70 + static_cast<int>(rng.uniformInt(0, 29));
      p.push(Event{static_cast<std::uint16_t>(x),
                   static_cast<std::uint16_t>(y), Polarity::kOn,
                   static_cast<TimeUs>(w * 66'000 + i * 100)});
    }
    windows.push_back(std::move(p));
  }
  EventPacket filtered;
  Tracks visible;
  Tracks all;
  for (const EventPacket& p : windows) {  // warm-up: capacities grow here
    filter.filterInto(p, filtered);
    tracker.processPacket(filtered);
    tracker.visibleTracksInto(visible);
    tracker.allClustersInto(all);
  }
  const std::uint64_t before = gAllocations.load();
  for (int rep = 0; rep < 3; ++rep) {
    filter.reset();  // replaying the same windows keeps timestamps sane
    for (const EventPacket& p : windows) {
      filter.filterInto(p, filtered);
      tracker.processPacket(filtered);
      tracker.visibleTracksInto(visible);
      tracker.allClustersInto(all);
    }
  }
  EXPECT_EQ(gAllocations.load() - before, 0U)
      << "EBMS tracks path allocated in steady state";
}

TEST(AllocationAuditTest, IncrementalMedianSteadyStateAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  MedianFilterIncremental median(3);
  Rng rng(17);
  std::vector<BinaryImage> frames;
  for (int f = 0; f < 3; ++f) {
    BinaryImage img(240, 180);
    for (int i = 0; i < 2000; ++i) {
      img.set(static_cast<int>(rng.uniformInt(0, 239)),
              static_cast<int>(rng.uniformInt(0, 179)), true);
    }
    frames.push_back(std::move(img));
  }
  for (const BinaryImage& f : frames) {
    (void)median.apply(f);  // warm-up
  }
  const std::uint64_t before = gAllocations.load();
  for (int i = 0; i < 12; ++i) {
    (void)median.apply(frames[static_cast<std::size_t>(i % 3)]);
  }
  EXPECT_EQ(gAllocations.load() - before, 0U);
}

TEST(AllocationAuditTest, CcaLabelerSteadyStateAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  // The run-based labeller's scratch (run lists, union-find, extents,
  // components, proposals, binarisation image) is all reused members;
  // cycling different frames after warm-up must not allocate.  The scalar
  // reference reuses its scratch the same way.
  Rng rng(11);
  std::vector<BinaryImage> frames;
  std::vector<CountImage> downs;
  for (int f = 0; f < 4; ++f) {
    BinaryImage img(240, 180);
    for (int i = 0; i < 3000; ++i) {
      img.set(static_cast<int>(rng.uniformInt(0, 239)),
              static_cast<int>(rng.uniformInt(0, 179)), true);
    }
    frames.push_back(std::move(img));
    CountImage down(40, 60);
    for (int i = 0; i < 400; ++i) {
      down.at(static_cast<int>(rng.uniformInt(0, 39)),
              static_cast<int>(rng.uniformInt(0, 59))) = 1;
    }
    downs.push_back(std::move(down));
  }
  CcaConfig config;
  config.minComponentPixels = 1;
  CcaLabeler cca(config);
  CcaLabelerReference reference(config);
  for (int f = 0; f < 4; ++f) {  // warm-up: capacities grow here
    (void)cca.propose(frames[static_cast<std::size_t>(f)]);
    (void)cca.labelDownsampled(downs[static_cast<std::size_t>(f)], 6, 3);
    (void)reference.propose(frames[static_cast<std::size_t>(f)]);
  }
  const std::uint64_t before = gAllocations.load();
  for (int i = 0; i < 12; ++i) {
    (void)cca.propose(frames[static_cast<std::size_t>(i % 4)]);
    (void)cca.labelDownsampled(downs[static_cast<std::size_t>(i % 4)], 6, 3);
    (void)reference.propose(frames[static_cast<std::size_t>(i % 4)]);
  }
  EXPECT_EQ(gAllocations.load() - before, 0U)
      << "CCA labelling allocated in steady state";
}

TEST(AllocationAuditTest, SensorSessionHotPathAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  // The ingest hot path — offerBytes (parser reassembly + decode into the
  // reused DecodedFrame) through the SPSC ring (per-slot EventPacket reset
  // + push) to drainInto — must be allocation-free once every ring slot's
  // window has grown to the stream's event count.  Frames are pre-encoded
  // so only session machinery is measured.
  NodeConfig config;
  config.width = 64;
  config.height = 48;
  config.maxEventsPerFrame = 64;
  SensorSession session(7, config);

  struct CountingSink final : WindowSink {
    std::size_t windows = 0;
    std::size_t events = 0;
    void onWindow(const EventPacket& window, std::uint32_t /*seq*/,
                  TimeUs /*ingestTime*/) override {
      ++windows;
      events += window.size();
    }
  } sink;

  constexpr TimeUs kPeriod = 10'000;
  const auto encodeSeq = [](std::uint32_t seq) {
    const TimeUs tStart = static_cast<TimeUs>(seq) * kPeriod;
    EventPacket window(tStart, tStart + kPeriod);
    for (std::uint32_t j = 0; j < 40; ++j) {
      window.push(Event{static_cast<std::uint16_t>((seq + 3 * j) % 64),
                        static_cast<std::uint16_t>((seq + j) % 48),
                        j % 2 == 0 ? Polarity::kOn : Polarity::kOff,
                        tStart + static_cast<TimeUs>(j) * 100});
    }
    std::vector<std::byte> bytes;
    encodeFrame(bytes, seq, 7, window);
    return bytes;
  };
  std::vector<std::vector<std::byte>> frames;
  for (std::uint32_t seq = 0; seq < 64; ++seq) {
    frames.push_back(encodeSeq(seq));
  }

  // Warm-up: cycle every ring slot so each slot's window reaches capacity.
  std::uint32_t seq = 0;
  for (; seq < 32; ++seq) {
    session.offerBytes(frames[seq], static_cast<TimeUs>(seq + 1) * kPeriod);
    (void)session.drainInto(sink, static_cast<TimeUs>(seq + 1) * kPeriod);
  }
  const std::uint64_t before = gAllocations.load();
  for (; seq < 64; ++seq) {
    session.offerBytes(frames[seq], static_cast<TimeUs>(seq + 1) * kPeriod);
    (void)session.drainInto(sink, static_cast<TimeUs>(seq + 1) * kPeriod);
  }
  EXPECT_EQ(gAllocations.load() - before, 0U)
      << "sensor session ingest/drain allocated in steady state";
  EXPECT_EQ(session.counters().framesAccepted, 64U);
  EXPECT_EQ(sink.windows, 64U);
  EXPECT_EQ(sink.events, 64U * 40U);
}

TEST(AllocationAuditTest, NnFilterFilterIntoAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  NnFilterConfig config;
  NnFilter filter(config);
  Rng rng(23);
  std::vector<EventPacket> windows;
  for (int w = 0; w < 4; ++w) {
    EventPacket p(w * 66'000, (w + 1) * 66'000);
    for (int i = 0; i < 800; ++i) {
      const int x = 40 + static_cast<int>(rng.uniformInt(0, 69));
      const int y = 60 + static_cast<int>(rng.uniformInt(0, 29));
      p.push(Event{static_cast<std::uint16_t>(x),
                   static_cast<std::uint16_t>(y), Polarity::kOn,
                   static_cast<TimeUs>(w * 66'000 + i * 80)});
    }
    windows.push_back(std::move(p));
  }
  EventPacket out;
  for (const EventPacket& p : windows) {
    filter.filterInto(p, out);  // warm-up: output capacity grows here
  }
  filter.reset();
  const std::uint64_t before = gAllocations.load();
  for (int rep = 0; rep < 3; ++rep) {
    filter.reset();  // replaying the same windows keeps timestamps sane
    for (const EventPacket& p : windows) {
      filter.filterInto(p, out);
    }
  }
  EXPECT_EQ(gAllocations.load() - before, 0U)
      << "NnFilter::filterInto allocated in steady state";
}

TEST(AllocationAuditTest, MedianFilterApplyIntoAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  MedianFilter median(3);
  BinaryImage in(240, 180);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    in.set(static_cast<int>(rng.uniformInt(0, 239)),
           static_cast<int>(rng.uniformInt(0, 179)), true);
  }
  BinaryImage out(240, 180);
  median.applyInto(in, out);  // warm-up
  const std::uint64_t before = gAllocations.load();
  for (int i = 0; i < 10; ++i) {
    median.applyInto(in, out);
  }
  EXPECT_EQ(gAllocations.load() - before, 0U);
}

}  // namespace
}  // namespace ebbiot
