// Steady-state allocation audit of the frame-domain front end.
//
// The per-frame hot path (EBBI build -> median filter -> RPN) reuses its
// buffers — images, count image, histogram bins, run and proposal vectors
// are all members with stable capacity.  This test pins that: after one
// warm-up window, processing further windows performs *zero* heap
// allocations.  Allocations are counted by replacing the global operator
// new/delete for this test binary (they forward to malloc/free, so every
// other test is unaffected beyond a relaxed atomic increment).
#include <gtest/gtest.h>

#include "src/common/alloc_counter.hpp"
#include "src/common/rng.hpp"
#include "src/core/front_end.hpp"

namespace ebbiot {
namespace {

std::atomic<std::uint64_t>& gAllocations = gAllocationCount;

EventPacket denseTrafficWindow(std::uint64_t seed) {
  Rng rng(seed);
  EventPacket packet(0, 66000);
  // A vehicle-sized blob plus salt noise, enough to drive every front-end
  // stage (median, downsample, histograms, runs, validation, tightening).
  for (int y = 60; y < 90; ++y) {
    for (int x = 40; x < 110; ++x) {
      if (rng.chance(0.6)) {
        packet.push(Event{static_cast<std::uint16_t>(x),
                          static_cast<std::uint16_t>(y), Polarity::kOn,
                          1000});
      }
    }
  }
  for (int i = 0; i < 150; ++i) {
    packet.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                      static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                      Polarity::kOn, 2000});
  }
  return packet;
}

TEST(AllocationAuditTest, FrontEndSteadyStateAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  for (RpnKind kind : {RpnKind::kHistogram, RpnKind::kCca}) {
    FrontEndConfig config;
    config.rpnKind = kind;
    FrameFrontEnd frontEnd(config);
    const EventPacket packet = denseTrafficWindow(5);
    (void)frontEnd.process(packet);  // warm-up: capacities grow here
    const std::uint64_t before = gAllocations.load();
    for (int i = 0; i < 10; ++i) {
      (void)frontEnd.process(packet);
    }
    const std::uint64_t after = gAllocations.load();
    EXPECT_EQ(after - before, 0U)
        << (kind == RpnKind::kHistogram ? "histogram" : "cca")
        << " front end allocated in steady state";
  }
}

TEST(AllocationAuditTest, MedianFilterApplyIntoAllocatesNothing) {
#ifdef EBBIOT_ALLOC_COUNTER_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  MedianFilter median(3);
  BinaryImage in(240, 180);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    in.set(static_cast<int>(rng.uniformInt(0, 239)),
           static_cast<int>(rng.uniformInt(0, 179)), true);
  }
  BinaryImage out(240, 180);
  median.applyInto(in, out);  // warm-up
  const std::uint64_t before = gAllocations.load();
  for (int i = 0; i < 10; ++i) {
    median.applyInto(in, out);
  }
  EXPECT_EQ(gAllocations.load() - before, 0U);
}

}  // namespace
}  // namespace ebbiot
