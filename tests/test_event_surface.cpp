// Differential tests pinning EventSurface (epoch-tagged map + recency
// bitplanes) bit-identical to EventSurfaceReference (scalar timestamp
// array + validity bytes) — recall, neighbourhood recency queries,
// clamped edges, negative times, epoch regressions and clear().  The
// filter-level lastOps() pinning of the surface-backed stages lives in
// tests/test_nn_filter.cpp (NnFilter vs NnFilterReference).
#include "src/events/event_surface.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/events/event_surface_reference.hpp"

namespace ebbiot {
namespace {

EventSurfaceConfig surfaceConfig(int width, int height, TimeUs window) {
  EventSurfaceConfig c;
  c.width = width;
  c.height = height;
  c.recencyWindow = window;
  return c;
}

/// Compare recall() across the whole frame and the recency query at a
/// probe grid, for the given query time.
void expectSurfacesAgree(const EventSurface& fast,
                         const EventSurfaceReference& reference, TimeUs t,
                         const char* label) {
  const EventSurfaceConfig& c = fast.config();
  for (int y = 0; y < c.height; ++y) {
    for (int x = 0; x < c.width; ++x) {
      const auto a = fast.recall(x, y);
      const auto b = reference.recall(x, y);
      ASSERT_EQ(a.fired, b.fired) << label << " recall at " << x << "," << y;
      if (a.fired) {
        ASSERT_EQ(a.t, b.t) << label << " time at " << x << "," << y;
      }
      if (c.recencyWindow > 0) {
        for (int radius : {1, 2}) {
          ASSERT_EQ(fast.anyNeighbourFiredWithin(x, y, t, radius),
                    reference.anyNeighbourFiredWithin(x, y, t, radius))
              << label << " query at " << x << "," << y << " r=" << radius;
        }
      }
    }
  }
}

TEST(EventSurfaceTest, ConfigValidationThrows) {
  EXPECT_NO_THROW(surfaceConfig(240, 180, 0).validate());
  EXPECT_NO_THROW(surfaceConfig(240, 180, 1'000).validate());
  EXPECT_THROW(surfaceConfig(0, 180, 0).validate(), ConfigError);
  EXPECT_THROW(surfaceConfig(240, -1, 0).validate(), ConfigError);
  EXPECT_THROW(surfaceConfig(240, 180, -5).validate(), ConfigError);
  EXPECT_THROW(surfaceConfig(240, 180, TimeUs{1} << 46).validate(),
               ConfigError);
  // Constructors of both twins validate.
  EXPECT_THROW(EventSurface{surfaceConfig(0, 1, 0)}, ConfigError);
  EXPECT_THROW(EventSurfaceReference{surfaceConfig(0, 1, 0)}, ConfigError);
}

TEST(EventSurfaceTest, NeverFiredDistinctFromNegativeTimestamp) {
  // The old kNever = -1 sentinel conflated "never fired" with a real
  // event at t = -1; the epoch-tagged map must not.
  EventSurface s(surfaceConfig(8, 8, 100));
  EXPECT_FALSE(s.recall(3, 3).fired);
  s.record(3, 3, -1);
  const auto r = s.recall(3, 3);
  EXPECT_TRUE(r.fired);
  EXPECT_EQ(r.t, -1);
  EXPECT_FALSE(s.recall(3, 4).fired);
  // And the neighbour query sees the t = -1 event as support.
  EXPECT_TRUE(s.anyNeighbourFiredWithin(4, 3, 0, 1));
}

TEST(EventSurfaceTest, ClearForgetsEverything) {
  EventSurface s(surfaceConfig(8, 8, 100));
  s.record(2, 2, 50);
  s.clear();
  EXPECT_FALSE(s.recall(2, 2).fired);
  EXPECT_FALSE(s.anyNeighbourFiredWithin(3, 2, 60, 1));
  s.record(2, 2, 10);  // surface is reusable after clear, even backwards
  EXPECT_TRUE(s.recall(2, 2).fired);
}

TEST(EventSurfaceTest, EpochTagWrapScrubsStaleEntries) {
  // After 65535 clears the 16-bit epoch tag wraps; entries written under
  // the original epoch must not resurrect.
  EventSurface s(surfaceConfig(4, 4, 0));
  s.record(1, 1, 123);
  for (int i = 0; i < 70'000; ++i) {
    s.clear();
  }
  EXPECT_FALSE(s.recall(1, 1).fired);
}

TEST(EventSurfaceTest, WindowBoundaryInclusive) {
  EventSurface s(surfaceConfig(8, 8, 100));
  s.record(2, 2, 1'000);
  EXPECT_TRUE(s.anyNeighbourFiredWithin(3, 2, 1'100, 1));   // t - ts == W
  EXPECT_FALSE(s.anyNeighbourFiredWithin(3, 2, 1'101, 1));  // just outside
  EXPECT_FALSE(s.anyNeighbourFiredWithin(2, 2, 1'050, 1));  // centre excluded
}

TEST(EventSurfaceTest, TimeRegressionStartsNewEpoch) {
  EventSurface fast(surfaceConfig(8, 8, 100));
  EventSurfaceReference reference(surfaceConfig(8, 8, 100));
  fast.record(2, 2, 5'000);
  reference.record(2, 2, 5'000);
  fast.noteTime(100);  // regression: both twins forget
  reference.noteTime(100);
  EXPECT_FALSE(fast.anyNeighbourFiredWithin(3, 2, 100, 1));
  EXPECT_FALSE(reference.anyNeighbourFiredWithin(3, 2, 100, 1));
  expectSurfacesAgree(fast, reference, 100, "post-regression");
}

TEST(EventSurfaceTest, RandomStreamMatchesReference) {
  // Random records at non-decreasing times (bursty gaps crossing many
  // bucket boundaries) interleaved with full-frame query sweeps.
  for (const TimeUs window : {TimeUs{64}, TimeUs{100}, TimeUs{700}}) {
    const EventSurfaceConfig c = surfaceConfig(70, 9, window);
    EventSurface fast(c);
    EventSurfaceReference reference(c);
    Rng rng(static_cast<std::uint64_t>(window) * 7 + 1);
    TimeUs t = -50;  // start below zero: negative-time bucket arithmetic
    for (int step = 0; step < 600; ++step) {
      t += rng.uniformInt(0, 3) == 0 ? rng.uniformInt(0, 3 * window)
                                     : rng.uniformInt(0, 8);
      const int x = static_cast<int>(rng.uniformInt(0, c.width - 1));
      const int y = static_cast<int>(rng.uniformInt(0, c.height - 1));
      fast.noteTime(t);
      reference.noteTime(t);
      fast.record(x, y, t);
      reference.record(x, y, t);
      if (step % 60 == 59) {
        expectSurfacesAgree(fast, reference, t, "sweep");
      }
    }
    expectSurfacesAgree(fast, reference, t, "final");
  }
}

TEST(EventSurfaceTest, RepeatedPixelKeepsNewestTimestamp) {
  // The exact-fallback reads the pixel's *newest* time; re-firing a
  // pixel in a later bucket must not leave the query using stale state.
  EventSurface fast(surfaceConfig(8, 8, 100));
  EventSurfaceReference reference(surfaceConfig(8, 8, 100));
  for (TimeUs t : {TimeUs{0}, TimeUs{500}, TimeUs{1'000}}) {
    fast.noteTime(t);
    reference.noteTime(t);
    fast.record(4, 4, t);
    reference.record(4, 4, t);
  }
  for (TimeUs probe : {TimeUs{1'000}, TimeUs{1'100}, TimeUs{1'101}}) {
    EXPECT_EQ(fast.anyNeighbourFiredWithin(5, 4, probe, 1),
              reference.anyNeighbourFiredWithin(5, 4, probe, 1))
        << "probe " << probe;
  }
  EXPECT_TRUE(fast.anyNeighbourFiredWithin(5, 4, 1'100, 1));
  EXPECT_FALSE(fast.anyNeighbourFiredWithin(5, 4, 1'101, 1));
}

TEST(EventSurfaceTest, MemoryBytesAccountsPlanes) {
  const EventSurface bare(surfaceConfig(64, 64, 0));
  const EventSurface planed(surfaceConfig(64, 64, 1'000));
  EXPECT_EQ(bare.memoryBytes(), 64U * 64U * 8U);  // map only
  EXPECT_GT(planed.memoryBytes(), bare.memoryBytes());
}

}  // namespace
}  // namespace ebbiot
