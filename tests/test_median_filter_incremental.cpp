// Differential tests pinning the row-diffing MedianFilterIncremental
// against the full-frame word-parallel MedianFilter: bit-identical
// filtered images and identical (closed-form Eq. (1)) OpCounts across
// frame *sequences* — dense random scenes, sparse bands, moving objects,
// blank frames, appearing/disappearing content — since correctness of
// the incremental path depends on the history, not one frame.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/core/front_end.hpp"
#include "src/filters/median_filter.hpp"
#include "src/filters/median_filter_incremental.hpp"

namespace ebbiot {
namespace {

BinaryImage randomImage(int w, int h, double density, std::uint64_t seed) {
  Rng rng(seed);
  BinaryImage img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rng.chance(density)) {
        img.set(x, y, true);
      }
    }
  }
  return img;
}

BinaryImage bandImage(int w, int h, int y0, int y1, int x0, int x1) {
  BinaryImage img(w, h);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      img.set(x, y, true);
    }
  }
  return img;
}

/// Feed the sequence through both filters; every frame must match in
/// image bits and OpCounts.
void expectSequenceIdentical(const std::vector<BinaryImage>& frames,
                             int patch = 3) {
  MedianFilter full(patch);
  MedianFilterIncremental incremental(patch);
  BinaryImage want(frames.front().width(), frames.front().height());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    full.applyInto(frames[i], want);
    const BinaryImage& got = incremental.apply(frames[i]);
    ASSERT_EQ(got, want) << "frame " << i << " diverged";
    EXPECT_EQ(incremental.lastOps(), full.lastOps())
        << "ops diverged at frame " << i;
  }
}

TEST(MedianFilterIncrementalTest, DenseRandomSequences) {
  std::vector<BinaryImage> frames;
  std::uint64_t seed = 1;
  for (int i = 0; i < 8; ++i) {
    frames.push_back(randomImage(240, 180, 0.3, seed++));
  }
  expectSequenceIdentical(frames);
}

TEST(MedianFilterIncrementalTest, RepeatedIdenticalFrames) {
  // Zero changed rows: the cached output must be returned untouched.
  const BinaryImage img = randomImage(240, 180, 0.2, 42);
  expectSequenceIdentical({img, img, img, img});
}

TEST(MedianFilterIncrementalTest, SparseMovingBand) {
  // A narrow band marching down the frame: each step changes a handful
  // of rows at the old and new locations; everything else is reused.
  std::vector<BinaryImage> frames;
  for (int step = 0; step < 20; ++step) {
    const int y0 = 10 + 6 * step;
    frames.push_back(bandImage(240, 180, y0, y0 + 4, 80, 160));
  }
  expectSequenceIdentical(frames);
}

TEST(MedianFilterIncrementalTest, ContentAppearsAndDisappears) {
  std::vector<BinaryImage> frames;
  frames.emplace_back(240, 180);                        // blank
  frames.push_back(bandImage(240, 180, 60, 90, 40, 110));  // appears
  frames.push_back(bandImage(240, 180, 60, 90, 40, 110));  // unchanged
  frames.emplace_back(240, 180);                        // disappears
  frames.emplace_back(240, 180);                        // stays blank
  frames.push_back(bandImage(240, 180, 0, 3, 0, 240));  // top edge band
  frames.push_back(bandImage(240, 180, 177, 180, 0, 240));  // bottom edge
  expectSequenceIdentical(frames);
}

TEST(MedianFilterIncrementalTest, DisjointBandsSwap) {
  // Content jumping between distant bands: the diff must cover the union
  // of the old and new content spans, not just the new dirty band.
  std::vector<BinaryImage> frames;
  for (int i = 0; i < 6; ++i) {
    frames.push_back(i % 2 == 0 ? bandImage(240, 180, 5, 12, 10, 60)
                                : bandImage(240, 180, 150, 160, 180, 230));
  }
  expectSequenceIdentical(frames);
}

TEST(MedianFilterIncrementalTest, WordBoundaryWidthsAndDensities) {
  for (int w : {63, 64, 65, 130}) {
    std::vector<BinaryImage> frames;
    std::uint64_t seed = 100 + static_cast<std::uint64_t>(w);
    for (double density : {0.05, 0.5, 0.9, 0.0, 0.3}) {
      frames.push_back(randomImage(w, 40, density, seed++));
    }
    expectSequenceIdentical(frames);
  }
}

TEST(MedianFilterIncrementalTest, SinglePixelFlips) {
  // Minimal diffs: one pixel toggling on/off near a word boundary and at
  // frame corners.
  BinaryImage base = randomImage(240, 180, 0.1, 7);
  std::vector<BinaryImage> frames;
  frames.push_back(base);
  BinaryImage f1 = base;
  f1.set(64, 90, !f1.get(64, 90));
  frames.push_back(f1);
  BinaryImage f2 = f1;
  f2.set(0, 0, true);
  frames.push_back(f2);
  BinaryImage f3 = f2;
  f3.set(239, 179, true);
  frames.push_back(f3);
  frames.push_back(base);  // revert everything
  expectSequenceIdentical(frames);
}

TEST(MedianFilterIncrementalTest, ResetForgetsHistory) {
  MedianFilter full(3);
  MedianFilterIncremental incremental(3);
  const BinaryImage a = randomImage(240, 180, 0.4, 11);
  const BinaryImage b = randomImage(240, 180, 0.4, 12);
  (void)incremental.apply(a);
  incremental.reset();
  const BinaryImage& got = incremental.apply(b);
  BinaryImage want(240, 180);
  full.applyInto(b, want);
  EXPECT_EQ(got, want);
}

TEST(MedianFilterIncrementalTest, ShapeChangeRestartsCleanly) {
  MedianFilter full3(3);
  MedianFilterIncremental incremental(3);
  (void)incremental.apply(randomImage(240, 180, 0.3, 21));
  const BinaryImage small = randomImage(65, 40, 0.3, 22);
  BinaryImage want(65, 40);
  full3.applyInto(small, want);
  EXPECT_EQ(incremental.apply(small), want);
}

TEST(MedianFilterIncrementalTest, NonThreePatchFallsBackToFullFilter) {
  for (int patch : {1, 5}) {
    std::vector<BinaryImage> frames;
    std::uint64_t seed = 300 + static_cast<std::uint64_t>(patch);
    for (int i = 0; i < 3; ++i) {
      frames.push_back(randomImage(97, 33, 0.4, seed++));
    }
    expectSequenceIdentical(frames, patch);
  }
}

TEST(MedianFilterIncrementalTest, FrontEndVariantMatchesClassicByteForByte) {
  // The FrontEndConfig::incrementalMedian flag must be invisible to the
  // pipeline output: filtered image, proposals and per-stage ops all
  // identical, window after window.
  FrontEndConfig classicConfig;
  FrontEndConfig incConfig;
  incConfig.incrementalMedian = true;
  for (RpnKind kind : {RpnKind::kHistogram, RpnKind::kCca}) {
    classicConfig.rpnKind = kind;
    incConfig.rpnKind = kind;
    FrameFrontEnd classic(classicConfig);
    FrameFrontEnd inc(incConfig);
    Rng rng(55);
    for (int f = 0; f < 6; ++f) {
      EventPacket packet(f * 66'000, (f + 1) * 66'000);
      const int blobX = 40 + 10 * f;
      for (int y = 70; y < 95; ++y) {
        for (int x = blobX; x < blobX + 50; ++x) {
          if (rng.chance(0.55)) {
            packet.push(Event{static_cast<std::uint16_t>(x),
                              static_cast<std::uint16_t>(y), Polarity::kOn,
                              f * 66'000 + 100});
          }
        }
      }
      const RegionProposals& a = classic.process(packet);
      const RegionProposals& b = inc.process(packet);
      ASSERT_EQ(classic.lastFiltered(), inc.lastFiltered())
          << "filtered image diverged at frame " << f;
      EXPECT_EQ(a, b);
      EXPECT_EQ(classic.lastOps().medianFilter, inc.lastOps().medianFilter);
      EXPECT_EQ(classic.lastOps().rpn.total(), inc.lastOps().rpn.total());
    }
  }
}

}  // namespace
}  // namespace ebbiot
