#!/usr/bin/env python3
"""Self-test for tools/lint_invariants.py on synthetic fixture repos.

Each case builds a miniature repo in a temp directory and asserts the
linter accepts the house-rule-abiding layout and rejects each negative
fixture with the right rule tag.  Run directly:

    python3 tests/test_lint_invariants.py

CI runs this (and the linter itself against the real repo) from the
static-analysis job; ctest registers both, so `ctest -R lint` covers it
locally too.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import lint_invariants  # noqa: E402


def write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def run_check(root: Path, check: str):
    if check == "twins":
        return lint_invariants.check_reference_twins(root)
    if check == "hotpath":
        return lint_invariants.check_hot_paths(
            root, root / "tools" / "hot_path_manifest.json")
    return lint_invariants.check_ops_model(root)


class FixtureCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "tests").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def manifest(self, entries):
        write(self.root, "tools/hot_path_manifest.json",
              json.dumps({"hot_paths": entries}))


class TwinsCheck(FixtureCase):
    GOOD_TEST = """
        #include "src/detect/foo.hpp"
        #include "src/detect/foo_reference.hpp"
        TEST(FooDiff, Matches) {
          Foo fast(cfg); FooReference ref(cfg);
          EXPECT_EQ(fast.lastOps(), ref.lastOps());
        }
    """

    def setUp(self):
        super().setUp()
        write(self.root, "src/detect/foo.hpp", "class Foo {};\n")
        write(self.root, "src/detect/foo_reference.hpp",
              "class FooReference {};\n")

    def test_differential_test_with_ops_compare_passes(self):
        write(self.root, "tests/test_foo_diff.cpp", self.GOOD_TEST)
        self.assertEqual(run_check(self.root, "twins"), [])

    def test_missing_differential_test_fails(self):
        problems = run_check(self.root, "twins")
        self.assertEqual(len(problems), 1)
        self.assertIn("[twins]", problems[0])

    def test_test_without_ops_comparison_fails(self):
        write(self.root, "tests/test_foo_diff.cpp",
              self.GOOD_TEST.replace("lastOps", "boxes"))
        problems = run_check(self.root, "twins")
        self.assertEqual(len(problems), 1)
        self.assertIn("lastOps", problems[0])

    def test_reference_without_fast_twin_fails(self):
        write(self.root, "src/detect/orphan_reference.hpp",
              "class OrphanReference {};\n")
        write(self.root, "tests/test_foo_diff.cpp", self.GOOD_TEST)
        problems = run_check(self.root, "twins")
        self.assertEqual(len(problems), 1)
        self.assertIn("orphan_reference", problems[0])


class HotPathCheck(FixtureCase):
    def lint_hot(self, body: str, init_functions=()):
        write(self.root, "src/hot.cpp", body)
        entry = {"file": "src/hot.cpp"}
        if init_functions:
            entry["init_functions"] = list(init_functions)
        self.manifest([entry])
        return run_check(self.root, "hotpath")

    def test_clean_steady_state_passes(self):
        self.assertEqual(self.lint_hot("""
            Stage::Stage(int n) { buf_.resize(n); }  // ctor: allowed
            void Stage::step() {
              buf_[0] += 1;
              scratch_.runs.push_back(Run{0, 1});  // member scratch: allowed
            }
        """), [])

    def test_new_in_steady_state_fails(self):
        problems = self.lint_hot("""
            void Stage::step() { auto* p = new int[64]; use(p); }
        """)
        self.assertEqual(len(problems), 1)
        self.assertIn("`new`", problems[0])

    def test_new_inside_comment_is_ignored(self):
        self.assertEqual(self.lint_hot("""
            void Stage::step() {
              // a new plan: never allocate here, not even make_unique
              counter += 1;  /* push_back would be bad */
            }
        """), [])

    def test_std_function_in_hot_file_fails(self):
        problems = self.lint_hot("""
            void Stage::step(const std::function<void(int)>& cb) { cb(1); }
        """)
        self.assertEqual(len(problems), 1)
        self.assertIn("std::function", problems[0])

    def test_local_vector_growth_fails(self):
        problems = self.lint_hot("""
            void Stage::step() {
              std::vector<int> order;
              order.push_back(1);
            }
        """)
        self.assertEqual(len(problems), 1)
        self.assertIn("order.push_back", problems[0])

    def test_reserve_guarded_local_passes(self):
        self.assertEqual(self.lint_hot("""
            void Stage::step() {
              std::vector<int> order;
              order.reserve(kMax);
              order.push_back(1);
            }
        """), [])

    def test_reference_bound_scratch_passes(self):
        self.assertEqual(self.lint_hot("""
            void Stage::step() {
              std::vector<int>& live = scratch_.live;
              live.clear();
              live.push_back(1);
            }
        """), [])

    def test_init_function_listing_allows_growth(self):
        body = """
            void Stage::reset() {
              std::vector<int> grid;
              grid.resize(kCells);
              grid_.swap(grid);
            }
        """
        self.assertEqual(len(self.lint_hot(body)), 1)
        self.assertEqual(self.lint_hot(body, init_functions=["reset"]), [])

    def test_waiver_comment_allows_with_visible_reason(self):
        self.assertEqual(self.lint_hot("""
            void Stage::step() {
              std::vector<int> once;
              // hot-path: bounded by CLmax, measured zero-alloc after warmup
              once.push_back(1);
            }
        """), [])

    def test_manifest_listing_missing_file_fails(self):
        self.manifest([{"file": "src/gone.cpp"}])
        problems = run_check(self.root, "hotpath")
        self.assertEqual(len(problems), 1)
        self.assertIn("absent", problems[0])


class OpsModelCheck(FixtureCase):
    def test_untagged_lastops_header_fails(self):
        write(self.root, "src/stage.hpp", """
            class Stage {
             public:
              const OpCounts& lastOps() const { return ops_; }
            };
        """)
        problems = run_check(self.root, "opsmodel")
        self.assertEqual(len(problems), 1)
        self.assertIn("[opsmodel]", problems[0])

    def test_ops_model_tag_passes(self):
        write(self.root, "src/stage.hpp", """
            class Stage {
             public:
              /// ops-model: metered — counted as the scan runs.
              const OpCounts& lastOps() const { return ops_; }
            };
        """)
        self.assertEqual(run_check(self.root, "opsmodel"), [])

    def test_closed_form_in_sibling_cpp_passes(self):
        write(self.root, "src/stage.hpp", """
            class Stage {
             public:
              const OpCounts& lastOps() const { return ops_; }
            };
        """)
        write(self.root, "src/stage.cpp", """
            void Stage::apply() { ops_ = closedFormOps(w, h); }
        """)
        self.assertEqual(run_check(self.root, "opsmodel"), [])

    def test_header_without_lastops_is_ignored(self):
        write(self.root, "src/util.hpp", "inline int add(int a) {return a;}\n")
        self.assertEqual(run_check(self.root, "opsmodel"), [])


if __name__ == "__main__":
    unittest.main()
