#!/usr/bin/env python3
"""Self-test for tools/bench_node_gate.py on synthetic fixture records.

Each case builds a BENCH_node.json-shaped record in a temp directory,
mutates one aspect, and asserts the gate accepts the healthy record and
rejects each regression with a message naming the actual problem.  Run
directly:

    python3 tests/test_bench_node_gate.py

CI runs this before the real gate in the bench job; ctest registers it
(plus the gate against the committed BENCH_node.json), so `ctest -R
bench_node_gate` covers both locally too.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

GATE = Path(__file__).resolve().parent.parent / "tools" / "bench_node_gate.py"

PROFILES = ("clean", "bitflip", "truncate", "flood", "stall")
STREAMS = (1, 8, 32)
LIVE_STREAMS = (64, 256, 1024)


def healthy_record():
    """A minimal record every gate check accepts."""
    cells = []
    for profile in PROFILES:
        for streams in STREAMS:
            frames = 256 * streams
            accepted = frames if profile == "clean" else frames - 10
            cells.append({
                "profile": profile, "streams": streams,
                "frames_decoded": accepted, "frames_corrupted":
                    0 if profile == "clean" else 10,
                "frames_accepted": accepted,
                "resyncs": 0 if profile == "clean" else 9,
                "seq_gaps": 0 if profile == "clean" else 9,
                "frames_lost_to_gaps": 0 if profile == "clean" else 10,
                "out_of_order_dropped": 0, "timestamp_regressions": 0,
                "windows_delivered": frames if profile == "clean"
                    else accepted,
                "windows_rejected": 0, "windows_shed_stale": 0,
                "windows_shed_overload": 0,
                "watchdog_stalls": 0 if profile != "stall" else 8,
                "degrade_entries": 0 if profile == "clean" else 2,
                "recovery_attempts": 0 if profile == "clean" else 2,
                "recovery_failures": 0,
                "recoveries": 0 if profile == "clean" else 2,
                "sessions_quarantined": 0,
                "p50_latency_us": 8000, "p99_latency_us": 19000,
                "wall_ns_per_window": 2000.0,
            })
    live = [{
        "streams": streams, "producer_threads": 4,
        "chunks_delivered": 64 * streams, "frames_accepted": 64 * streams,
        "windows_delivered": 64 * streams, "windows_rejected": 0,
        "lossless_waits": 5, "sessions_quarantined": 0,
        "wall_seconds": 0.05,
    } for streams in LIVE_STREAMS]
    accuracy = [{
        "profile": profile,
        "baseline_tracks": 204,
        "matched_tracks": 204 if profile in ("clean", "stall") else 190,
        "windows_tracked": 512, "windows_coasted": 0, "resyncs": 0,
        "recall": 1.0 if profile in ("clean", "stall") else 190 / 204,
    } for profile in PROFILES]
    return {
        "bench": "bench_iovt_node",
        "frames_per_stream": 256,
        "frame_period_us": 10000,
        "steady_allocs_per_window": 0.0,
        "cells": cells,
        "live_frames_per_stream": 64,
        "live_cells": live,
        "accuracy_under_fault": {
            "sensors": 4, "frames": 128, "iou_threshold": 0.3,
            "profiles": accuracy,
        },
    }


class GateCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        self.record = healthy_record()

    def tearDown(self):
        self._tmp.cleanup()

    def run_gate(self, payload=None):
        path = self.root / "BENCH_node.json"
        if payload is None:
            path.write_text(json.dumps(self.record))
        else:
            path.write_text(payload)
        return subprocess.run([sys.executable, str(GATE), str(path)],
                              capture_output=True, text=True)

    def cell(self, profile, streams):
        for cell in self.record["cells"]:
            if cell["profile"] == profile and cell["streams"] == streams:
                return cell
        raise AssertionError(f"no fixture cell {profile}/{streams}")

    def assert_fails(self, needle):
        result = self.run_gate()
        self.assertNotEqual(result.returncode, 0, result.stdout)
        self.assertIn(needle, result.stderr)

    def test_healthy_record_passes(self):
        result = self.run_gate()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("bench_node_gate: OK", result.stdout)

    def test_alloc_regression_fails(self):
        self.record["steady_allocs_per_window"] = 1.25
        self.assert_fails("allocated in steady state")

    def test_null_allocs_sanitizer_build_passes(self):
        self.record["steady_allocs_per_window"] = None
        result = self.run_gate()
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_missing_sweep_cell_fails(self):
        self.record["cells"] = [
            c for c in self.record["cells"]
            if not (c["profile"] == "flood" and c["streams"] == 8)]
        self.assert_fails("sweep cell missing: flood x 8")

    def test_clean_cell_with_corruption_fails(self):
        self.cell("clean", 8)["frames_corrupted"] = 3
        self.assert_fails("frames_corrupted")

    def test_clean_cell_recovery_ladder_activity_fails(self):
        self.cell("clean", 32)["recovery_attempts"] = 1
        self.assert_fails("recovery_attempts")

    def test_clean_cell_short_delivery_fails(self):
        self.cell("clean", 1)["windows_delivered"] = 255
        self.assert_fails("delivered 255 of 256")

    def test_fault_cell_starved_delivery_fails(self):
        self.cell("stall", 8)["windows_delivered"] = 0
        self.assert_fails("starved delivery")

    def test_latency_over_two_periods_fails(self):
        self.cell("bitflip", 8)["p99_latency_us"] = 20001
        self.assert_fails("exceeds two window periods")

    def test_flat_latency_distribution_fails(self):
        cell = self.cell("flood", 32)
        cell["p50_latency_us"] = cell["p99_latency_us"] = 10000
        self.assert_fails("flat drain-latency distribution")

    def test_missing_live_cell_fails(self):
        self.record["live_cells"] = [
            c for c in self.record["live_cells"] if c["streams"] != 1024]
        self.assert_fails("live cell missing: 1024")

    def test_live_cell_lossy_delivery_fails(self):
        self.record["live_cells"][1]["windows_delivered"] -= 1
        self.assert_fails("lossless real-thread delivery must be exact")

    def test_live_cell_quarantine_fails(self):
        self.record["live_cells"][0]["sessions_quarantined"] = 2
        self.assert_fails("quarantined on a clean run")

    def test_missing_accuracy_section_fails(self):
        del self.record["accuracy_under_fault"]
        self.assert_fails("accuracy_under_fault section missing")

    def test_clean_recall_below_one_fails(self):
        acc = self.record["accuracy_under_fault"]["profiles"]
        acc[0]["recall"] = 0.999
        self.assert_fails("no longer bit-identical")

    def test_fault_recall_below_floor_fails(self):
        acc = self.record["accuracy_under_fault"]["profiles"]
        for row in acc:
            if row["profile"] == "flood":
                row["recall"] = 0.5
        self.assert_fails("below floor")

    def test_malformed_json_fails(self):
        result = self.run_gate(payload="{ not json")
        self.assertNotEqual(result.returncode, 0)

    def test_committed_record_matches_fixture_shape(self):
        # The real committed record must carry every field the fixture
        # models (catches the gate and the bench drifting apart).
        committed = Path(__file__).resolve().parent.parent / \
            "BENCH_node.json"
        if not committed.exists():
            self.skipTest("no committed BENCH_node.json")
        real = json.loads(committed.read_text())
        fixture = healthy_record()
        self.assertEqual(set(fixture.keys()), set(real.keys()))
        self.assertEqual(set(fixture["cells"][0].keys()),
                         set(real["cells"][0].keys()))
        self.assertEqual(set(fixture["live_cells"][0].keys()),
                         set(real["live_cells"][0].keys()))
        self.assertEqual(
            set(fixture["accuracy_under_fault"]["profiles"][0].keys()),
            set(real["accuracy_under_fault"]["profiles"][0].keys()))


if __name__ == "__main__":
    unittest.main()
