#include "src/eval/track_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

Track makeTrack(std::uint32_t id, float x, float y, float vx = 0.0F) {
  Track t;
  t.id = id;
  t.box = BBox{x, y, 20, 10};
  t.velocity = Vec2f{vx, 0.0F};
  return t;
}

TEST(TrackLogTest, AddFramesInOrder) {
  TrackLog log;
  log.addFrame(66'000, {makeTrack(1, 10, 50)});
  log.addFrame(132'000, {makeTrack(1, 14, 50), makeTrack(2, 100, 80)});
  EXPECT_EQ(log.frameCount(), 2U);
  EXPECT_EQ(log.totalBoxes(), 3U);
}

TEST(TrackLogTest, OutOfOrderFrameRejected) {
  TrackLog log;
  log.addFrame(132'000, {});
  EXPECT_THROW(log.addFrame(66'000, {}), LogicError);
}

TEST(TrackLogTest, TrajectoriesGroupById) {
  TrackLog log;
  log.addFrame(66'000, {makeTrack(1, 10, 50)});
  log.addFrame(132'000, {makeTrack(1, 14, 50), makeTrack(2, 100, 80)});
  log.addFrame(198'000, {makeTrack(1, 18, 50)});
  const auto traj = log.trajectories();
  ASSERT_EQ(traj.size(), 2U);
  EXPECT_EQ(traj.at(1).size(), 3U);
  EXPECT_EQ(traj.at(2).size(), 1U);
  EXPECT_EQ(traj.at(1)[2].t, 198'000);
  EXPECT_FLOAT_EQ(traj.at(1)[2].box.x, 18.0F);
}

TEST(TrackLogTest, MeanSpeedFromDisplacement) {
  TrackLog log;
  // 4 px per 66 ms frame for 10 frames.
  for (int f = 1; f <= 10; ++f) {
    log.addFrame(f * 66'000,
                 {makeTrack(1, 10.0F + 4.0F * static_cast<float>(f), 50)});
  }
  EXPECT_NEAR(log.meanSpeed(1, 66'000), 4.0, 1e-4);
  EXPECT_DOUBLE_EQ(log.meanSpeed(99, 66'000), 0.0);  // unknown track
}

TEST(TrackLogCsvTest, RoundTrip) {
  TrackLog log;
  log.addFrame(66'000, {makeTrack(1, 10.5F, 50.25F, 3.5F)});
  log.addFrame(132'000, {makeTrack(1, 14, 50), makeTrack(2, 100, 80)});
  std::stringstream buffer;
  writeTrackLogCsv(buffer, log);
  const TrackLog back = readTrackLogCsv(buffer);
  ASSERT_EQ(back.frameCount(), 2U);
  EXPECT_EQ(back.frames()[0].t, 66'000);
  ASSERT_EQ(back.frames()[0].tracks.size(), 1U);
  EXPECT_EQ(back.frames()[0].tracks[0].id, 1U);
  EXPECT_FLOAT_EQ(back.frames()[0].tracks[0].box.x, 10.5F);
  EXPECT_FLOAT_EQ(back.frames()[0].tracks[0].velocity.x, 3.5F);
  EXPECT_EQ(back.frames()[1].tracks.size(), 2U);
}

TEST(TrackLogCsvTest, EmptyLog) {
  TrackLog log;
  std::stringstream buffer;
  writeTrackLogCsv(buffer, log);
  const TrackLog back = readTrackLogCsv(buffer);
  EXPECT_EQ(back.frameCount(), 0U);
}

TEST(TrackLogCsvTest, HeaderValidated) {
  std::stringstream buffer;
  buffer << "nope\n";
  EXPECT_THROW((void)readTrackLogCsv(buffer), IoError);
}

TEST(TrackLogCsvTest, MalformedRowRejected) {
  std::stringstream buffer;
  buffer << "t_us,track_id,x,y,w,h,vx,vy\n66000,1,2,3\n";
  EXPECT_THROW((void)readTrackLogCsv(buffer), IoError);
}

}  // namespace
}  // namespace ebbiot
