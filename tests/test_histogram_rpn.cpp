#include "src/detect/histogram_rpn.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

void fillBlock(BinaryImage& img, int x0, int y0, int w, int h) {
  for (int y = y0; y < y0 + h; ++y) {
    for (int x = x0; x < x0 + w; ++x) {
      img.set(x, y, true);
    }
  }
}

HistogramRpnConfig paperConfig() {
  return HistogramRpnConfig{};  // s1=6, s2=3, threshold=1
}

TEST(HistogramRpnTest, EmptyImageNoProposals) {
  HistogramRpn rpn(paperConfig());
  const BinaryImage img(240, 180);
  EXPECT_TRUE(rpn.propose(img).empty());
}

TEST(HistogramRpnTest, SingleObjectSingleProposal) {
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  fillBlock(img, 60, 60, 48, 24);
  const RegionProposals props = rpn.propose(img);
  ASSERT_EQ(props.size(), 1U);
  const BBox& b = props[0].box;
  // Proposal covers the object (downsampling can pad to block boundaries).
  EXPECT_LE(b.left(), 60.0F);
  EXPECT_GE(b.right(), 108.0F);
  EXPECT_LE(b.bottom(), 60.0F);
  EXPECT_GE(b.top(), 84.0F);
  // But not grossly oversized: within one block on each side.
  EXPECT_GE(b.left(), 60.0F - 6.0F);
  EXPECT_LE(b.right(), 108.0F + 6.0F);
  EXPECT_GE(b.bottom(), 60.0F - 3.0F);
  EXPECT_LE(b.top(), 84.0F + 3.0F);
}

TEST(HistogramRpnTest, FragmentedObjectMergedByCoarseHistogram) {
  // The Fig. 3 phenomenon: a vehicle with a sparse mid-section splits
  // into two blobs at full resolution, but the coarse X histogram bridges
  // the gap when the gap is smaller than one downsample block.
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  fillBlock(img, 60, 60, 20, 24);   // front of the bus
  fillBlock(img, 84, 60, 20, 24);   // rear (4 px gap < s1 = 6)
  const RegionProposals props = rpn.propose(img);
  ASSERT_EQ(props.size(), 1U);
  EXPECT_GE(props[0].box.w, 40.0F);
}

TEST(HistogramRpnTest, TwoSeparatedObjectsTwoProposals) {
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  fillBlock(img, 20, 60, 30, 20);
  fillBlock(img, 150, 61, 30, 20);  // same Y band, far in X
  const RegionProposals props = rpn.propose(img);
  EXPECT_EQ(props.size(), 2U);
}

TEST(HistogramRpnTest, DiagonalObjectsValidityCheckSuppressesGhosts) {
  // Two objects in different X *and* Y bands create 4 X-run x Y-run
  // intersections; the two empty "ghost" corners must be rejected by the
  // original-image validity check (Section II-B).
  HistogramRpnConfig config = paperConfig();
  config.minValidPixels = 4;
  HistogramRpn rpn(config);
  BinaryImage img(240, 180);
  fillBlock(img, 20, 30, 30, 20);
  fillBlock(img, 150, 120, 30, 20);
  const RegionProposals props = rpn.propose(img);
  ASSERT_EQ(props.size(), 2U);
  for (const RegionProposal& p : props) {
    EXPECT_GE(p.support, 4U);
  }
}

TEST(HistogramRpnTest, GhostsSurviveWithoutValidation) {
  // Control for the test above: with validation forced off via a huge
  // run threshold... instead check alwaysValidate=false but single-axis
  // ambiguity: two objects sharing a Y band produce no ghosts.
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  fillBlock(img, 20, 60, 30, 20);
  fillBlock(img, 150, 60, 30, 20);
  const RegionProposals props = rpn.propose(img);
  // Single Y-run: 2 proposals, no validation needed.
  EXPECT_EQ(props.size(), 2U);
  EXPECT_EQ(rpn.lastRunsY().size(), 1U);
  EXPECT_EQ(rpn.lastRunsX().size(), 2U);
}

TEST(HistogramRpnTest, SparseNoisePixelFormsTinyProposal) {
  // A single pixel passes threshold 1; downstream the tracker's
  // minSeedArea guards against it.  The RPN itself reports it, tightened
  // to the pixel.
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  img.set(100, 100, true);
  const RegionProposals props = rpn.propose(img);
  ASSERT_EQ(props.size(), 1U);
  EXPECT_EQ(props[0].box, (BBox{100, 100, 1, 1}));
}

TEST(HistogramRpnTest, UntightenedBoxesPadToBlocks) {
  HistogramRpnConfig config = paperConfig();
  config.tightenBoxes = false;
  HistogramRpn rpn(config);
  BinaryImage img(240, 180);
  img.set(100, 100, true);
  const RegionProposals props = rpn.propose(img);
  ASSERT_EQ(props.size(), 1U);
  EXPECT_FLOAT_EQ(props[0].box.w, 6.0F);   // one block
  EXPECT_FLOAT_EQ(props[0].box.h, 3.0F);
}

TEST(HistogramRpnTest, HigherThresholdSuppressesThinRows) {
  HistogramRpnConfig config = paperConfig();
  config.threshold = 3;
  HistogramRpn rpn(config);
  BinaryImage img(240, 180);
  img.set(100, 100, true);  // mass 1 per histogram bin < 3
  EXPECT_TRUE(rpn.propose(img).empty());
}

TEST(HistogramRpnTest, IntermediatesExposed) {
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  fillBlock(img, 60, 60, 12, 6);
  (void)rpn.propose(img);
  EXPECT_EQ(rpn.lastDownsampled().width(), 40);
  EXPECT_EQ(rpn.lastDownsampled().height(), 60);
  EXPECT_EQ(rpn.lastHistograms().hx.size(), 40U);
  EXPECT_EQ(rpn.lastHistograms().hy.size(), 60U);
  EXPECT_EQ(rpn.lastRunsX().size(), 1U);
  EXPECT_EQ(rpn.lastRunsY().size(), 1U);
}

TEST(HistogramRpnTest, OpsOrderMatchesEq5) {
  // Eq. (5): C_RPN = A*B + 2*A*B/(s1*s2) = 48 kops at the paper point.
  // The measured count includes run-finding comparisons (~100), so it
  // should land within a few percent of the model.
  HistogramRpn rpn(paperConfig());
  BinaryImage img(240, 180);
  fillBlock(img, 60, 60, 48, 24);
  (void)rpn.propose(img);
  const double measured = static_cast<double>(rpn.lastOps().total());
  const double model = 240.0 * 180.0 + 2.0 * 240.0 * 180.0 / 18.0;
  EXPECT_NEAR(measured / model, 1.0, 0.10);
}

TEST(HistogramRpnTest, MaxGapBridgesWiderFragmentation) {
  HistogramRpnConfig config = paperConfig();
  config.maxGap = 2;
  HistogramRpn rpn(config);
  BinaryImage img(240, 180);
  fillBlock(img, 60, 60, 18, 24);
  fillBlock(img, 90, 60, 18, 24);  // 12 px gap = 2 blocks
  const RegionProposals props = rpn.propose(img);
  ASSERT_EQ(props.size(), 1U);
  EXPECT_GE(props[0].box.w, 48.0F);
}

TEST(HistogramRpnTest, InvalidConfigRejected) {
  HistogramRpnConfig bad = paperConfig();
  bad.threshold = 0;
  EXPECT_THROW(HistogramRpn{bad}, LogicError);
  HistogramRpnConfig bad2 = paperConfig();
  bad2.minValidPixels = 0;
  EXPECT_THROW(HistogramRpn{bad2}, LogicError);
}

// Property: every proposal lies inside the frame and contains at least
// one set pixel when validation is on.
class RpnContainmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(RpnContainmentProperty, ProposalsValidAndInFrame) {
  const int seed = GetParam();
  HistogramRpnConfig config;
  config.alwaysValidate = true;
  HistogramRpn rpn(config);
  BinaryImage img(240, 180);
  std::uint64_t s = static_cast<std::uint64_t>(seed) * 2654435761ULL + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int b = 0; b < 4; ++b) {
    const int x0 = static_cast<int>(next() % 200);
    const int y0 = static_cast<int>(next() % 150);
    const int w = 8 + static_cast<int>(next() % 40);
    const int h = 6 + static_cast<int>(next() % 25);
    fillBlock(img, x0, y0, std::min(w, 240 - x0), std::min(h, 180 - y0));
  }
  for (const RegionProposal& p : rpn.propose(img)) {
    EXPECT_GE(p.box.left(), 0.0F);
    EXPECT_GE(p.box.bottom(), 0.0F);
    EXPECT_LE(p.box.right(), 240.0F);
    EXPECT_LE(p.box.top(), 180.0F);
    EXPECT_TRUE(img.anySetInRegion(p.box));
    EXPECT_GE(p.support, 1U);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpnContainmentProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace ebbiot
