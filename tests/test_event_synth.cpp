#include "src/sim/event_synth.hpp"

#include <gtest/gtest.h>

#include "src/events/stats.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

EventSynthConfig quietConfig() {
  EventSynthConfig c;
  c.backgroundActivityHz = 0.0;
  c.seed = 4;
  return c;
}

TEST(FastEventSynthTest, EmptySceneNoNoiseNoEvents) {
  ScriptedScene scene(240, 180);
  FastEventSynth synth(scene, quietConfig());
  EXPECT_TRUE(synth.nextWindow(kDefaultFramePeriodUs).empty());
}

TEST(FastEventSynthTest, StationaryObjectEmitsNothing) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{50, 60, 48, 22}, Vec2f{0, 0}, 0,
                  secondsToUs(10.0));
  FastEventSynth synth(scene, quietConfig());
  EXPECT_TRUE(synth.nextWindow(kDefaultFramePeriodUs).empty());
}

TEST(FastEventSynthTest, MovingObjectEventsConcentrateAtContours) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kBus, BBox{60, 60, 120, 38}, Vec2f{45, 0}, 0,
                  secondsToUs(10.0));
  FastEventSynth synth(scene, quietConfig());
  const EventPacket p = synth.nextWindow(kDefaultFramePeriodUs);
  ASSERT_GT(p.size(), 50U);
  // Split events into edge bands (near x=60 and x=180) vs interior.
  std::size_t nearEdges = 0;
  std::size_t interior = 0;
  for (const Event& e : p) {
    const float x = static_cast<float>(e.x);
    if (std::abs(x - 60.0F) < 8.0F || std::abs(x - 180.0F) < 8.0F) {
      ++nearEdges;
    } else if (x > 70.0F && x < 170.0F) {
      ++interior;
    }
  }
  // A flat-sided bus: contours dominate its interior.
  EXPECT_GT(nearEdges, interior);
}

TEST(FastEventSynthTest, LeadingEdgeOffTrailingOn) {
  ScriptedScene scene(240, 180);
  // Moving right: leading (right) contour OFF, trailing (left) ON.
  scene.addLinear(ObjectClass::kCar, BBox{60, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  FastEventSynth synth(scene, quietConfig());
  const EventPacket p = synth.nextWindow(kDefaultFramePeriodUs);
  std::size_t offRight = 0;
  std::size_t onRight = 0;
  std::size_t onLeft = 0;
  std::size_t offLeft = 0;
  for (const Event& e : p) {
    const float x = static_cast<float>(e.x);
    if (x > 98.0F) {  // near the leading face (108 at midpoint)
      (e.p == Polarity::kOff ? offRight : onRight) += 1;
    } else if (x < 70.0F) {  // near the trailing face
      (e.p == Polarity::kOn ? onLeft : offLeft) += 1;
    }
  }
  EXPECT_GT(offRight, onRight);
  EXPECT_GT(onLeft, offLeft);
}

TEST(FastEventSynthTest, EventCountScalesWithSpeed) {
  auto countAtSpeed = [](float speed) {
    ScriptedScene scene(240, 180);
    scene.addLinear(ObjectClass::kCar, BBox{20, 60, 48, 22},
                    Vec2f{speed, 0}, 0, secondsToUs(10.0));
    FastEventSynth synth(scene, quietConfig());
    std::size_t total = 0;
    for (int i = 0; i < 10; ++i) {
      total += synth.nextWindow(kDefaultFramePeriodUs).size();
    }
    return total;
  };
  const std::size_t slow = countAtSpeed(15.0F);
  const std::size_t fast = countAtSpeed(60.0F);
  EXPECT_GT(static_cast<double>(fast), 2.5 * static_cast<double>(slow));
}

TEST(FastEventSynthTest, NoiseRateMatchesConfig) {
  ScriptedScene scene(240, 180);
  EventSynthConfig c = quietConfig();
  c.backgroundActivityHz = 0.5;
  FastEventSynth synth(scene, c);
  std::size_t total = 0;
  for (int i = 0; i < 30; ++i) {
    total += synth.nextWindow(kDefaultFramePeriodUs).size();
  }
  const double expected = 0.5 * 240 * 180 * 0.066 * 30;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.05);
}

TEST(FastEventSynthTest, DistractorRegionEmits) {
  ScriptedScene scene(240, 180);
  EventSynthConfig c = quietConfig();
  c.distractors.push_back(DistractorRegion{BBox{200, 140, 30, 30}, 3000.0});
  FastEventSynth synth(scene, c);
  const EventPacket p = synth.nextWindow(kDefaultFramePeriodUs);
  EXPECT_GT(p.size(), 100U);  // ~3000 * 0.066 ~= 200
  for (const Event& e : p) {
    EXPECT_GE(e.x, 200);
    EXPECT_GE(e.y, 140);
  }
}

TEST(FastEventSynthTest, EventsWithinFrameAndWindowSorted) {
  ScriptedScene scene(240, 180);
  // Object straddling the frame edge: all events must still be in-frame.
  scene.addLinear(ObjectClass::kBus, BBox{-60, 60, 120, 38}, Vec2f{45, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig c = quietConfig();
  c.backgroundActivityHz = 0.2;
  FastEventSynth synth(scene, c);
  for (int i = 0; i < 5; ++i) {
    const EventPacket p = synth.nextWindow(kDefaultFramePeriodUs);
    EXPECT_TRUE(p.isTimeSorted());
    for (const Event& e : p) {
      EXPECT_LT(e.x, 240);
      EXPECT_LT(e.y, 180);
      EXPECT_GE(e.t, p.tStart());
      EXPECT_LT(e.t, p.tEnd());
    }
  }
}

TEST(FastEventSynthTest, Deterministic) {
  auto run = [] {
    ScriptedScene scene(240, 180);
    scene.addLinear(ObjectClass::kCar, BBox{20, 60, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(10.0));
    EventSynthConfig c;
    c.seed = 1234;
    FastEventSynth synth(scene, c);
    return synth.nextWindow(kDefaultFramePeriodUs);
  };
  const EventPacket a = run();
  const EventPacket b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(FastEventSynthTest, AgreesWithDavisSimulatorOnEventBudget) {
  // The statistical synthesizer must land in the same order of magnitude
  // as the rasterising simulator for a standard car so that pipeline
  // parameters transfer (DESIGN.md substitution argument).
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{20, 70, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));

  DavisConfig dc;
  dc.backgroundActivityHz = 0.0;
  dc.hotPixelFraction = 0.0;
  DavisSimulator davis(scene, dc);
  std::size_t davisTotal = 0;
  for (int i = 0; i < 20; ++i) {
    davisTotal += davis.nextWindow(kDefaultFramePeriodUs).size();
  }

  ScriptedScene scene2(240, 180);
  scene2.addLinear(ObjectClass::kCar, BBox{20, 70, 48, 22}, Vec2f{60, 0}, 0,
                   secondsToUs(10.0));
  FastEventSynth synth(scene2, quietConfig());
  std::size_t synthTotal = 0;
  for (int i = 0; i < 20; ++i) {
    synthTotal += synth.nextWindow(kDefaultFramePeriodUs).size();
  }
  ASSERT_GT(davisTotal, 0U);
  ASSERT_GT(synthTotal, 0U);
  const double ratio = static_cast<double>(synthTotal) /
                       static_cast<double>(davisTotal);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace ebbiot
