#include "src/ebbi/binary_image.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

TEST(BinaryImageTest, StartsCleared) {
  const BinaryImage img(240, 180);
  EXPECT_EQ(img.width(), 240);
  EXPECT_EQ(img.height(), 180);
  EXPECT_EQ(img.popcount(), 0U);
}

TEST(BinaryImageTest, SetGetRoundTrip) {
  BinaryImage img(100, 50);
  img.set(3, 7, true);
  EXPECT_TRUE(img.get(3, 7));
  EXPECT_FALSE(img.get(4, 7));
  img.set(3, 7, false);
  EXPECT_FALSE(img.get(3, 7));
}

TEST(BinaryImageTest, WordBoundaryPixels) {
  BinaryImage img(130, 4);  // crosses two 64-bit words per row
  for (int x : {0, 63, 64, 127, 128, 129}) {
    img.set(x, 2, true);
  }
  for (int x : {0, 63, 64, 127, 128, 129}) {
    EXPECT_TRUE(img.get(x, 2)) << "x=" << x;
  }
  EXPECT_EQ(img.popcount(), 6U);
  // Neighbours untouched.
  EXPECT_FALSE(img.get(1, 2));
  EXPECT_FALSE(img.get(65, 2));
  EXPECT_FALSE(img.get(129, 1));
}

TEST(BinaryImageTest, OutOfBoundsThrows) {
  BinaryImage img(10, 10);
  EXPECT_THROW((void)img.get(10, 0), LogicError);
  EXPECT_THROW((void)img.get(0, 10), LogicError);
  EXPECT_THROW(img.set(-1, 0, true), LogicError);
}

TEST(BinaryImageTest, ClearResetsAllBits) {
  BinaryImage img(64, 64);
  for (int i = 0; i < 64; ++i) {
    img.set(i, i, true);
  }
  EXPECT_EQ(img.popcount(), 64U);
  img.clear();
  EXPECT_EQ(img.popcount(), 0U);
}

TEST(BinaryImageTest, PopcountInRegion) {
  BinaryImage img(20, 20);
  img.set(5, 5, true);
  img.set(6, 5, true);
  img.set(15, 15, true);
  EXPECT_EQ(img.popcountInRegion(BBox{5, 5, 3, 3}), 2U);
  EXPECT_EQ(img.popcountInRegion(BBox{0, 0, 20, 20}), 3U);
  EXPECT_EQ(img.popcountInRegion(BBox{0, 0, 4, 4}), 0U);
  // Region partly outside the frame is clamped, not an error; the
  // half-open right edge at x = 6 excludes pixel (6, 5).
  EXPECT_EQ(img.popcountInRegion(BBox{-10, -10, 16, 16}), 1U);
  EXPECT_EQ(img.popcountInRegion(BBox{-10, -10, 17, 16}), 2U);
}

TEST(BinaryImageTest, AnySetInRegion) {
  BinaryImage img(20, 20);
  img.set(10, 10, true);
  EXPECT_TRUE(img.anySetInRegion(BBox{9, 9, 3, 3}));
  EXPECT_FALSE(img.anySetInRegion(BBox{0, 0, 5, 5}));
  EXPECT_FALSE(img.anySetInRegion(BBox{100, 100, 5, 5}));  // clamped empty
}

TEST(BinaryImageTest, OrWithCombines) {
  BinaryImage a(16, 16);
  BinaryImage b(16, 16);
  a.set(1, 1, true);
  b.set(2, 2, true);
  a.orWith(b);
  EXPECT_TRUE(a.get(1, 1));
  EXPECT_TRUE(a.get(2, 2));
  EXPECT_EQ(a.popcount(), 2U);
}

TEST(BinaryImageTest, OrWithShapeMismatchThrows) {
  BinaryImage a(16, 16);
  BinaryImage b(16, 17);
  EXPECT_THROW(a.orWith(b), LogicError);
}

TEST(BinaryImageTest, BoundingBoxOfSetPixels) {
  BinaryImage img(40, 40);
  EXPECT_TRUE(img.boundingBoxOfSetPixels().empty());
  img.set(10, 12, true);
  img.set(20, 30, true);
  const BBox b = img.boundingBoxOfSetPixels();
  EXPECT_FLOAT_EQ(b.x, 10.0F);
  EXPECT_FLOAT_EQ(b.y, 12.0F);
  EXPECT_FLOAT_EQ(b.w, 11.0F);
  EXPECT_FLOAT_EQ(b.h, 19.0F);
}

TEST(BinaryImageTest, PayloadBitsMatchesGeometry) {
  const BinaryImage img(240, 180);
  EXPECT_EQ(img.payloadBits(), 240U * 180U);
}

TEST(BinaryImageTest, OccupiedRowSpanTracksDirtyBand) {
  BinaryImage img(100, 200);
  EXPECT_TRUE(img.occupiedRowSpan().empty());  // fresh frame: blank
  img.set(3, 70, true);
  EXPECT_EQ(img.occupiedRowSpan(), (RowSpan{70, 71}));
  img.set(50, 131, true);
  EXPECT_EQ(img.occupiedRowSpan(), (RowSpan{70, 132}));
  // Clearing a pixel keeps the conservative span (occupancy never shrinks
  // short of clear()).
  img.set(3, 70, false);
  EXPECT_EQ(img.occupiedRowSpan(), (RowSpan{70, 132}));
  img.clear();
  EXPECT_TRUE(img.occupiedRowSpan().empty());
}

TEST(BinaryImageTest, OccupiedRowSpanAtFrameEdges) {
  BinaryImage img(10, 130);  // > 2 occupancy words
  img.set(0, 0, true);
  img.set(9, 129, true);
  EXPECT_EQ(img.occupiedRowSpan(), (RowSpan{0, 130}));
}

TEST(BinaryImageTest, ForEachRunInRowFindsWordBoundaryRuns) {
  BinaryImage img(200, 4);
  // Runs: [5, 8), one straddling the first word boundary [60, 70), a
  // single pixel at 199 (last column).
  for (int x = 5; x < 8; ++x) {
    img.set(x, 1, true);
  }
  for (int x = 60; x < 70; ++x) {
    img.set(x, 1, true);
  }
  img.set(199, 1, true);
  std::vector<PixelRun> runs;
  img.forEachRunInRow(1, [&](int b, int e) { runs.push_back({b, e}); });
  ASSERT_EQ(runs.size(), 3U);
  EXPECT_EQ(runs[0], (PixelRun{5, 8}));
  EXPECT_EQ(runs[1], (PixelRun{60, 70}));
  EXPECT_EQ(runs[2], (PixelRun{199, 200}));
  // Blank row: no runs.
  runs.clear();
  img.forEachRunInRow(0, [&](int b, int e) { runs.push_back({b, e}); });
  EXPECT_TRUE(runs.empty());
}

TEST(BinaryImageTest, ForEachRunInRowFullRowAcrossWords) {
  for (int w : {63, 64, 65, 130, 192}) {
    BinaryImage img(w, 2);
    for (int x = 0; x < w; ++x) {
      img.set(x, 0, true);
    }
    std::vector<PixelRun> runs;
    img.forEachRunInRow(0, [&](int b, int e) { runs.push_back({b, e}); });
    ASSERT_EQ(runs.size(), 1U) << "width " << w;
    EXPECT_EQ(runs[0], (PixelRun{0, w})) << "width " << w;
  }
}

TEST(BinaryImageTest, ForEachRunInRowMatchesScalarScanRandomly) {
  Rng rng(77);
  for (int w : {1, 63, 64, 65, 240}) {
    BinaryImage img(w, 1);
    for (int x = 0; x < w; ++x) {
      if (rng.chance(0.5)) {
        img.set(x, 0, true);
      }
    }
    std::vector<PixelRun> got;
    img.forEachRunInRow(0, [&](int b, int e) { got.push_back({b, e}); });
    std::vector<PixelRun> want;
    forEachRun(
        w, [&](int x) { return img.get(x, 0); }, 0,
        [&](int b, int e) { want.push_back({b, e}); });
    EXPECT_EQ(got, want) << "width " << w;
  }
}

// Property: popcount equals number of sets over random patterns.
class BinaryImagePopcountProperty : public ::testing::TestWithParam<int> {};

TEST_P(BinaryImagePopcountProperty, PopcountMatchesSetCount) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  BinaryImage img(97, 53);  // awkward width to stress word packing
  std::size_t expected = 0;
  for (int i = 0; i < 400; ++i) {
    const int x = static_cast<int>(rng.uniformInt(0, 96));
    const int y = static_cast<int>(rng.uniformInt(0, 52));
    if (!img.get(x, y)) {
      img.set(x, y, true);
      ++expected;
    }
  }
  EXPECT_EQ(img.popcount(), expected);
  EXPECT_EQ(img.popcountInRegion(BBox{0, 0, 97, 53}), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryImagePopcountProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ebbiot
