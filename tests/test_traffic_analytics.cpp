#include "src/analytics/traffic_analytics.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

Track makeTrack(std::uint32_t id, float x, float y) {
  Track t;
  t.id = id;
  t.box = BBox{x, y, 20, 10};
  return t;
}

/// A log with one track moving +dx px/frame from x0 and another moving
/// -dx from x1, over `frames` frames.
TrackLog twoOpposingTracks(float x0, float x1, float dx, int frames) {
  TrackLog log;
  for (int f = 1; f <= frames; ++f) {
    const float step = dx * static_cast<float>(f);
    log.addFrame(static_cast<TimeUs>(f) * kDefaultFramePeriodUs,
                 {makeTrack(1, x0 + step, 50), makeTrack(2, x1 - step, 80)});
  }
  return log;
}

TEST(LineCounterTest, CountsBothDirections) {
  // Track 1: 40 -> 160; track 2: 200 -> 80.  Line at x = 120 (centres
  // cross at 110 + 10 = 120 offset; box centre = x + 10).
  const TrackLog log = twoOpposingTracks(40, 200, 4, 30);
  LineCounter counter(120.0F);
  counter.process(log);
  EXPECT_EQ(counter.leftToRight(), 1U);
  EXPECT_EQ(counter.rightToLeft(), 1U);
  EXPECT_EQ(counter.total(), 2U);
}

TEST(LineCounterTest, NoCrossingNoCount) {
  const TrackLog log = twoOpposingTracks(10, 230, 0.5F, 10);
  LineCounter counter(120.0F);
  counter.process(log);
  EXPECT_EQ(counter.total(), 0U);
}

TEST(LineCounterTest, ReprocessingIsIdempotent) {
  const TrackLog log = twoOpposingTracks(40, 200, 4, 30);
  LineCounter counter(120.0F);
  counter.process(log);
  counter.process(log);
  EXPECT_EQ(counter.total(), 2U);
}

TEST(LineCounterTest, OscillationCountsEachCrossing) {
  TrackLog log;
  const float xs[] = {100, 130, 100, 130};  // centre = x + 10
  for (int f = 0; f < 4; ++f) {
    log.addFrame(static_cast<TimeUs>(f + 1) * kDefaultFramePeriodUs,
                 {makeTrack(1, xs[f], 50)});
  }
  LineCounter counter(120.0F);
  counter.process(log);
  EXPECT_EQ(counter.leftToRight(), 2U);
  EXPECT_EQ(counter.rightToLeft(), 1U);
}

TEST(SpeedEstimatorTest, ConvertsToKmh) {
  // 4 px/frame at 15.15 fps and 4 px/m -> 15.15 m/s... use exact math:
  // px/s = 4 / 0.066; m/s = that / 4 = 1/0.066 = 15.15; km/h = 54.5.
  TrackLog log;
  for (int f = 1; f <= 20; ++f) {
    log.addFrame(static_cast<TimeUs>(f) * kDefaultFramePeriodUs,
                 {makeTrack(1, 4.0F * static_cast<float>(f), 50)});
  }
  SpeedEstimatorConfig config;
  config.pixelsPerMeter = 4.0;
  SpeedEstimator estimator(config);
  const auto reports = estimator.estimate(log);
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(reports[0].trackId, 1U);
  EXPECT_NEAR(reports[0].pxPerFrame, 4.0, 1e-3);
  EXPECT_NEAR(reports[0].kmPerHour, 4.0 / 0.066 / 4.0 * 3.6, 0.5);
}

TEST(SpeedEstimatorTest, ShortTracksSkipped) {
  TrackLog log;
  for (int f = 1; f <= 5; ++f) {  // below default minSamples = 10
    log.addFrame(static_cast<TimeUs>(f) * kDefaultFramePeriodUs,
                 {makeTrack(1, 4.0F * static_cast<float>(f), 50)});
  }
  SpeedEstimator estimator{SpeedEstimatorConfig{}};
  EXPECT_TRUE(estimator.estimate(log).empty());
  EXPECT_DOUBLE_EQ(estimator.meanKmPerHour(log), 0.0);
}

TEST(SpeedEstimatorTest, InvalidConfigRejected) {
  SpeedEstimatorConfig bad;
  bad.pixelsPerMeter = 0.0;
  EXPECT_THROW(SpeedEstimator{bad}, LogicError);
}

TEST(AnalyzeZoneTest, DwellAccounting) {
  TrackLog log;
  // Track 1 inside the zone for 10 of 20 frames; track 2 never.
  for (int f = 1; f <= 20; ++f) {
    const float x = 4.0F * static_cast<float>(f);  // centre = x + 10
    log.addFrame(static_cast<TimeUs>(f) * kDefaultFramePeriodUs,
                 {makeTrack(1, x, 50), makeTrack(2, x, 150)});
  }
  // Zone over centre x in (30, 70], y around 55: frames 6..15 inside.
  const ZoneReport report =
      analyzeZone(log, BBox{30, 40, 40, 30}, kDefaultFramePeriodUs);
  EXPECT_EQ(report.tracksSeen, 1U);
  EXPECT_NEAR(usToSeconds(report.totalDwell), 10 * 0.066, 1e-6);
  EXPECT_NEAR(report.meanDwellS, 0.66, 1e-6);
}

TEST(AnalyzeZoneTest, EmptyLog) {
  const ZoneReport report =
      analyzeZone(TrackLog{}, BBox{0, 0, 100, 100}, kDefaultFramePeriodUs);
  EXPECT_EQ(report.tracksSeen, 0U);
  EXPECT_DOUBLE_EQ(report.meanDwellS, 0.0);
}

TEST(SummarizeTrafficTest, EndToEnd) {
  const TrackLog log = twoOpposingTracks(40, 200, 4, 30);
  const TrafficSummary summary = summarizeTraffic(log, 120.0F);
  EXPECT_EQ(summary.tracksTotal, 2U);
  EXPECT_EQ(summary.countedLeftToRight, 1U);
  EXPECT_EQ(summary.countedRightToLeft, 1U);
  EXPECT_GT(summary.meanSpeedKmh, 0.0);
  EXPECT_NEAR(summary.durationS, 30 * 0.066, 1e-3);
  EXPECT_NEAR(summary.flowPerMinute, 2.0 * 60.0 / (30 * 0.066), 1.0);
}

}  // namespace
}  // namespace ebbiot
