// Deterministic fault matrix: every FaultKind x both backpressure
// policies drives a SensorSession to an exactly predicted outcome —
// counters are pinned with EXPECT_EQ, not ranges.  Plus the seeded fuzz
// smoke test, the timestamp-wrap end-to-end pin, and the clean-stream
// RunResult equivalence pin.
#include "src/node/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/core/runner.hpp"
#include "src/node/framed_replay.hpp"
#include "src/node/node_config.hpp"
#include "src/node/sensor_session.hpp"
#include "src/node/wire_format.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/recording.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

constexpr TimeUs kWindow = 10'000;
constexpr std::size_t kFrames = 10;
constexpr std::size_t kFaultFrame = 4;
constexpr std::size_t kFrameBytes = 73;  // frameSizeBytes(5)

NodeConfig matrixConfig(BackpressurePolicy policy) {
  NodeConfig config;
  config.width = 64;
  config.height = 48;
  config.queueCapacity = 4;
  config.backpressure = policy;
  config.freshnessLagWindows = 2;
  config.watchdogTimeoutUs = 50'000;
  config.maxEventsPerFrame = 64;
  config.degradeFaultThreshold = 3;
  config.degradeFrameWindow = 8;
  config.recoverCleanFrames = 2;
  config.quarantineResyncLimit = 64;
  return config;
}

EventPacket makeWindow(std::uint32_t i) {
  const TimeUs tStart = static_cast<TimeUs>(i) * kWindow;
  EventPacket p(tStart, tStart + kWindow);
  for (std::uint32_t j = 0; j < 5; ++j) {
    Event e;
    e.x = static_cast<std::uint16_t>((i + 7 * j) % 64);
    e.y = static_cast<std::uint16_t>((3 * i + j) % 48);
    e.p = (i + j) % 2 == 0 ? Polarity::kOn : Polarity::kOff;
    e.t = tStart + static_cast<TimeUs>(j) * 100;
    p.push(e);
  }
  return p;
}

std::vector<std::vector<std::byte>> pristineFrames(std::size_t n) {
  std::vector<std::vector<std::byte>> frames(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    encodeFrame(frames[i], i, 7, makeWindow(i));
  }
  return frames;
}

struct SeqSink final : WindowSink {
  std::vector<std::uint32_t> seqs;
  void onWindow(const EventPacket& /*window*/, std::uint32_t seq,
                TimeUs /*ingestTime*/) override {
    seqs.push_back(seq);
  }
};

struct CellResult {
  SessionCounters counters;
  SessionState state = SessionState::kSyncing;
  std::vector<std::uint32_t> seqs;
  TimeUs maxLatency = 0;
};

/// Replay delivery chunks on a virtual ingest clock: time advances by
/// each chunk's delay, the consumer drains at every window boundary
/// (before the next offer), and once more at the end.
CellResult runCell(const std::vector<DeliveryChunk>& chunks,
                   const NodeConfig& config) {
  SensorSession session(7, config);
  SeqSink sink;
  TimeUs now = 0;
  for (const DeliveryChunk& chunk : chunks) {
    now += chunk.delayUs;
    if (chunk.delayUs > 0) {
      (void)session.drainInto(sink, now);
    }
    session.offerBytes(chunk.bytes, now);
  }
  (void)session.drainInto(sink, now + kWindow);
  CellResult r;
  r.counters = session.counters();
  r.state = session.state();
  r.seqs = sink.seqs;
  for (const TimeUs latency : session.latencySamples()) {
    r.maxLatency = std::max(r.maxLatency, latency);
  }
  return r;
}

CellResult runScripted(FaultKind kind, BackpressurePolicy policy) {
  FaultInjector injector(42);
  injector.script({kind, kFaultFrame});
  const std::vector<std::vector<std::byte>> frames = pristineFrames(kFrames);
  return runCell(injector.corrupt(frames), matrixConfig(policy));
}

/// Accounting that must hold in every cell once the queue is drained.
void expectConservation(const SessionCounters& c) {
  EXPECT_EQ(c.framesAccepted, c.windowsDelivered + c.windowsShedStale +
                                  c.windowsShedOverload + c.windowsRejected);
  EXPECT_EQ(c.framesDecoded,
            c.framesAccepted + c.outOfOrderDropped + c.timestampRegressions);
}

void expectStrictlyIncreasing(const std::vector<std::uint32_t>& seqs) {
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_LT(seqs[i - 1], seqs[i]);
  }
}

constexpr BackpressurePolicy kPolicies[] = {
    BackpressurePolicy::kDropOldestWindow, BackpressurePolicy::kRejectPacket};

TEST(NodeFaultMatrixTest, CleanStreamIsLossless) {
  for (const BackpressurePolicy policy : kPolicies) {
    FaultInjector injector(42);  // no script, no profile: passthrough
    const std::vector<std::vector<std::byte>> frames = pristineFrames(kFrames);
    const CellResult r = runCell(injector.corrupt(frames),
                                 matrixConfig(policy));
    EXPECT_EQ(r.counters.bytesOffered, kFrames * kFrameBytes);
    EXPECT_EQ(r.counters.framesDecoded, kFrames);
    EXPECT_EQ(r.counters.framesAccepted, kFrames);
    EXPECT_EQ(r.counters.windowsDelivered, kFrames);
    EXPECT_EQ(r.counters.framesCorrupted, 0U);
    EXPECT_EQ(r.counters.resyncs, 0U);
    EXPECT_EQ(r.counters.seqGaps, 0U);
    EXPECT_EQ(r.counters.outOfOrderDropped, 0U);
    EXPECT_EQ(r.counters.timestampRegressions, 0U);
    EXPECT_EQ(r.counters.windowsRejected, 0U);
    EXPECT_EQ(r.counters.windowsShedStale, 0U);
    EXPECT_EQ(r.counters.watchdogStalls, 0U);
    EXPECT_EQ(r.counters.degradeEntries, 0U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    // One window of pipeline lag, exactly, for every window.
    EXPECT_EQ(r.maxLatency, kWindow);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, TruncatedFrameIsResyncedPast) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kTruncate, policy);
    EXPECT_EQ(r.counters.bytesOffered, 9 * kFrameBytes + kFrameBytes / 2);
    EXPECT_EQ(r.counters.framesDecoded, 9U);
    EXPECT_EQ(r.counters.framesCorrupted, 1U);
    EXPECT_EQ(r.counters.resyncs, 1U);
    EXPECT_EQ(r.counters.bytesSkipped, kFrameBytes / 2);
    EXPECT_EQ(r.counters.framesAccepted, 9U);
    EXPECT_EQ(r.counters.seqGaps, 1U);
    EXPECT_EQ(r.counters.framesLostToGaps, 1U);
    EXPECT_EQ(r.counters.windowsDelivered, 9U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, BitFlipIsCaughtByCrcAndResyncedPast) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kBitFlip, policy);
    EXPECT_EQ(r.counters.bytesOffered, kFrames * kFrameBytes);
    EXPECT_EQ(r.counters.framesDecoded, 9U);
    EXPECT_EQ(r.counters.framesCorrupted, 1U);
    EXPECT_EQ(r.counters.resyncs, 1U);
    EXPECT_EQ(r.counters.bytesSkipped, kFrameBytes);
    EXPECT_EQ(r.counters.framesAccepted, 9U);
    EXPECT_EQ(r.counters.seqGaps, 1U);
    EXPECT_EQ(r.counters.framesLostToGaps, 1U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, DuplicateFrameIsDroppedNotRedelivered) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kDuplicate, policy);
    EXPECT_EQ(r.counters.bytesOffered, (kFrames + 1) * kFrameBytes);
    EXPECT_EQ(r.counters.framesDecoded, 11U);
    EXPECT_EQ(r.counters.framesAccepted, 10U);
    EXPECT_EQ(r.counters.outOfOrderDropped, 1U);
    EXPECT_EQ(r.counters.seqGaps, 0U);
    EXPECT_EQ(r.counters.windowsDelivered, 10U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, ReorderedFrameDeliversSuccessorDropsStraggler) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kReorder, policy);
    EXPECT_EQ(r.counters.framesDecoded, 10U);
    EXPECT_EQ(r.counters.framesAccepted, 9U);
    EXPECT_EQ(r.counters.seqGaps, 1U);
    EXPECT_EQ(r.counters.framesLostToGaps, 1U);
    EXPECT_EQ(r.counters.outOfOrderDropped, 1U);
    EXPECT_EQ(r.counters.timestampRegressions, 0U);
    EXPECT_EQ(r.counters.windowsDelivered, 9U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, DroppedFrameIsOneGapNothingElse) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kDrop, policy);
    EXPECT_EQ(r.counters.bytesOffered, 9 * kFrameBytes);
    EXPECT_EQ(r.counters.framesDecoded, 9U);
    EXPECT_EQ(r.counters.framesCorrupted, 0U);
    EXPECT_EQ(r.counters.framesAccepted, 9U);
    EXPECT_EQ(r.counters.seqGaps, 1U);
    EXPECT_EQ(r.counters.framesLostToGaps, 1U);
    EXPECT_EQ(r.counters.windowsDelivered, 9U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, TimestampRegressionIsRejectedWithoutSeqGap) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kTimestampRegress, policy);
    EXPECT_EQ(r.counters.framesDecoded, 10U);
    EXPECT_EQ(r.counters.framesCorrupted, 0U);  // CRC was refreshed
    EXPECT_EQ(r.counters.framesAccepted, 9U);
    EXPECT_EQ(r.counters.timestampRegressions, 1U);
    // The sequence number was genuine, so no gap is charged and the next
    // frame is accepted seamlessly.
    EXPECT_EQ(r.counters.seqGaps, 0U);
    EXPECT_EQ(r.counters.wrapEpochs, 0U);
    EXPECT_EQ(r.counters.windowsDelivered, 9U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, BurstFloodDegradesAndPoliciesDiverge) {
  // 8 flood copies (seq 5..12) arrive in the same instant as frame 4:
  // the queue (capacity 4) fills with {4,5,6,7}, rejects 5 at the tail,
  // and the 5 genuine frames 5..9 are then behind seq 13 -> dropped.
  // The fault streak drives STREAMING -> DEGRADED.
  {
    const CellResult r =
        runScripted(FaultKind::kBurstFlood, BackpressurePolicy::kDropOldestWindow);
    EXPECT_EQ(r.counters.framesDecoded, 18U);
    EXPECT_EQ(r.counters.framesAccepted, 13U);
    EXPECT_EQ(r.counters.outOfOrderDropped, 5U);
    EXPECT_EQ(r.counters.windowsRejected, 5U);
    EXPECT_EQ(r.counters.seqGaps, 0U);
    EXPECT_EQ(r.counters.degradeEntries, 1U);
    EXPECT_EQ(r.counters.recoveries, 0U);
    EXPECT_EQ(r.state, SessionState::kDegraded);
    // Freshness policy: of the burst backlog {4,5,6,7} only the two
    // newest windows run; the stale head is shed.
    EXPECT_EQ(r.counters.windowsShedStale, 2U);
    EXPECT_EQ(r.counters.windowsDelivered, 6U);
    EXPECT_EQ(r.seqs, (std::vector<std::uint32_t>{0, 1, 2, 3, 6, 7}));
    expectConservation(r.counters);
  }
  {
    const CellResult r =
        runScripted(FaultKind::kBurstFlood, BackpressurePolicy::kRejectPacket);
    EXPECT_EQ(r.counters.framesDecoded, 18U);
    EXPECT_EQ(r.counters.framesAccepted, 13U);
    EXPECT_EQ(r.counters.outOfOrderDropped, 5U);
    EXPECT_EQ(r.counters.windowsRejected, 5U);
    EXPECT_EQ(r.counters.degradeEntries, 1U);
    EXPECT_EQ(r.state, SessionState::kDegraded);
    // Completeness policy: everything that made it into the queue runs.
    EXPECT_EQ(r.counters.windowsShedStale, 0U);
    EXPECT_EQ(r.counters.windowsDelivered, 8U);
    EXPECT_EQ(r.seqs, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, StallTripsWatchdogThenRecovers) {
  for (const BackpressurePolicy policy : kPolicies) {
    const CellResult r = runScripted(FaultKind::kStall, policy);
    EXPECT_EQ(r.counters.watchdogStalls, 1U);
    EXPECT_EQ(r.counters.recoveries, 1U);
    EXPECT_EQ(r.counters.framesDecoded, 10U);
    // The stall re-armed synchronisation, so the returning stream is
    // adopted in full: no gap, no regression, nothing lost.
    EXPECT_EQ(r.counters.framesAccepted, 10U);
    EXPECT_EQ(r.counters.seqGaps, 0U);
    EXPECT_EQ(r.counters.timestampRegressions, 0U);
    EXPECT_EQ(r.counters.windowsDelivered, 10U);
    EXPECT_EQ(r.state, SessionState::kStreaming);
    // The window queued just before the silence waited out the whole
    // 1 s stall plus its own window of lag.
    EXPECT_EQ(r.maxLatency, 1'000'000 + kWindow);
    expectStrictlyIncreasing(r.seqs);
    expectConservation(r.counters);
  }
}

TEST(NodeFaultMatrixTest, RepeatedCorruptionQuarantines) {
  NodeConfig config = matrixConfig(BackpressurePolicy::kDropOldestWindow);
  config.quarantineResyncLimit = 2;
  FaultInjector injector(42);
  injector.script({FaultKind::kBitFlip, 2});
  injector.script({FaultKind::kBitFlip, 6});
  const std::vector<std::vector<std::byte>> frames = pristineFrames(kFrames);
  const CellResult r = runCell(injector.corrupt(frames), config);

  EXPECT_EQ(r.state, SessionState::kQuarantined);
  EXPECT_EQ(r.counters.resyncs, 2U);
  EXPECT_EQ(r.counters.framesCorrupted, 2U);
  // Frames 0,1 + 3,4,5 made it through before the budget ran out at
  // frame 6; frames 7..9 were never even parsed.
  EXPECT_EQ(r.counters.framesAccepted, 5U);
  EXPECT_EQ(r.counters.windowsDelivered, 5U);
  EXPECT_EQ(r.counters.bytesOffered, 7 * kFrameBytes);
  EXPECT_EQ(r.counters.bytesIgnoredQuarantined, 3 * kFrameBytes);
  expectStrictlyIncreasing(r.seqs);
  expectConservation(r.counters);
}

TEST(NodeFaultFuzz, SeededProfilesPreserveInvariants) {
  int seeds = 10;
  if (const char* env = std::getenv("EBBIOT_NODE_FUZZ_SEEDS")) {
    seeds = std::atoi(env);
  }
  FaultProfile profile;
  profile.truncateProb = 0.08;
  profile.bitFlipProb = 0.08;
  profile.duplicateProb = 0.08;
  profile.reorderProb = 0.08;
  profile.dropProb = 0.08;
  profile.regressProb = 0.05;
  profile.floodProb = 0.04;
  profile.stallProb = 0.02;

  for (int seed = 1; seed <= seeds; ++seed) {
    for (const BackpressurePolicy policy : kPolicies) {
      NodeConfig config = matrixConfig(policy);
      // Keep the session out of quarantine so the conservation law over
      // decoded frames stays exact (quarantine discards mid-flight).
      config.quarantineResyncLimit = 1'000;
      FaultInjector injector(static_cast<std::uint64_t>(seed));
      injector.setProfile(profile);
      // Every third seed also splinters the stream into 17-byte chunks
      // to fuzz reassembly along with the faults.
      if (seed % 3 == 0) {
        injector.setChunkBytes(17);
      }
      const std::vector<std::vector<std::byte>> frames = pristineFrames(50);
      const std::vector<DeliveryChunk> chunks = injector.corrupt(frames);
      std::uint64_t offered = 0;
      for (const DeliveryChunk& chunk : chunks) {
        offered += chunk.bytes.size();
      }
      const CellResult r = runCell(chunks, config);
      EXPECT_EQ(r.counters.bytesOffered +
                    r.counters.bytesIgnoredQuarantined,
                offered)
          << "seed " << seed;
      EXPECT_NE(r.state, SessionState::kQuarantined) << "seed " << seed;
      expectConservation(r.counters);
      // Delivery order is sacrosanct unless a stall re-based the
      // sequence space.
      if (r.counters.watchdogStalls == 0) {
        expectStrictlyIncreasing(r.seqs);
      }
    }
  }
}

// ---- timestamp wrap end-to-end -------------------------------------

/// Adapter shifting an inner stream by a constant offset, to park a
/// recording on either side of the 32-bit wire-timestamp wrap.
class ShiftedSource final : public EventSource {
 public:
  ShiftedSource(EventSource& inner, TimeUs offset)
      : inner_(inner), offset_(offset) {}

  [[nodiscard]] EventPacket nextWindow(TimeUs duration) override {
    const EventPacket w = inner_.nextWindow(duration);
    EventPacket shifted(w.tStart() + offset_, w.tEnd() + offset_);
    for (const Event& e : w) {
      Event s = e;
      s.t += offset_;
      shifted.push(s);
    }
    return shifted;
  }
  [[nodiscard]] TimeUs now() const override { return inner_.now() + offset_; }
  [[nodiscard]] int width() const override { return inner_.width(); }
  [[nodiscard]] int height() const override { return inner_.height(); }

 private:
  EventSource& inner_;
  TimeUs offset_;
};

TEST(TimestampWrapE2ETest, TracksBitIdenticalAcrossWrap) {
  constexpr int kWindows = 20;
  constexpr TimeUs kFrame = kDefaultFramePeriodUs;
  // Same scripted scene either far from the wrap or straddling it
  // (the wrap lands between windows 9 and 10).
  const TimeUs offsets[2] = {10 * kFrame,
                             (TimeUs{1} << 32) - 10 * kFrame};
  std::vector<Tracks> perRun[2];
  std::uint64_t wrapEpochs[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ScriptedScene scene(240, 180);
    scene.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0}, 0,
                    secondsToUs(10.0));
    EventSynthConfig synthConfig;
    synthConfig.backgroundActivityHz = 0.3;
    synthConfig.seed = 21;
    FastEventSynth synth(scene, synthConfig);
    ShiftedSource shifted(synth, offsets[run]);
    FramedReplaySource framed(shifted, NodeConfig{});
    EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
    for (int w = 0; w < kWindows; ++w) {
      const EventPacket window = framed.nextWindow(kFrame);
      const EventPacket latched = latchReadout(window, 240, 180);
      perRun[run].push_back(pipeline.processWindow(latched));
    }
    wrapEpochs[run] = framed.session().counters().wrapEpochs;
    EXPECT_EQ(framed.session().counters().framesAccepted,
              static_cast<std::uint64_t>(kWindows));
    EXPECT_EQ(framed.session().counters().timestampRegressions, 0U);
  }
  // The second run really crossed the wrap; the first never did.
  EXPECT_EQ(wrapEpochs[0], 0U);
  EXPECT_EQ(wrapEpochs[1], 1U);
  // And the tracker output is bit-identical window for window.
  ASSERT_EQ(perRun[0].size(), perRun[1].size());
  for (std::size_t w = 0; w < perRun[0].size(); ++w) {
    EXPECT_EQ(perRun[0][w], perRun[1][w]) << "window " << w;
  }
}

// ---- clean-stream equivalence --------------------------------------

void expectSameStats(const PipelineRunStats& a, const PipelineRunStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.filteredEventsPerFrame, b.filteredEventsPerFrame);
  EXPECT_EQ(a.totalOps.compares, b.totalOps.compares);
  EXPECT_EQ(a.totalOps.adds, b.totalOps.adds);
  EXPECT_EQ(a.totalOps.multiplies, b.totalOps.multiplies);
  EXPECT_EQ(a.totalOps.memWrites, b.totalOps.memWrites);
  EXPECT_EQ(a.totalOps.memReads, b.totalOps.memReads);
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (std::size_t i = 0; i < a.counts.size(); ++i) {
    EXPECT_EQ(a.counts[i].truePositives, b.counts[i].truePositives);
    EXPECT_EQ(a.counts[i].predictions, b.counts[i].predictions);
    EXPECT_EQ(a.counts[i].groundTruths, b.counts[i].groundTruths);
  }
}

TEST(CleanStreamEquivalenceTest, SessionLayerAddsNothingToHealthyStream) {
  const RecordingSpec spec = scaledRecording(makeSyntheticEng(3), 0.004);
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const TimeUs duration = secondsToUs(spec.durationS);

  Recording direct = openRecording(spec);
  const RunResult raw =
      runRecording(*direct.source, *direct.scenario, duration, config);

  Recording replay = openRecording(spec);
  FramedReplaySource framed(*replay.source, NodeConfig{});
  const RunResult viaNode =
      runRecording(framed, *replay.scenario, duration, config);

  // The session carried every window, untouched.
  const SessionCounters c = framed.session().counters();
  EXPECT_EQ(c.framesAccepted, static_cast<std::uint64_t>(viaNode.frames));
  EXPECT_EQ(c.windowsDelivered, c.framesAccepted);
  EXPECT_EQ(c.framesCorrupted, 0U);
  EXPECT_EQ(c.windowsRejected, 0U);
  EXPECT_EQ(c.windowsShedStale, 0U);

  // And the run result is bit-identical, field by field.
  EXPECT_EQ(raw.thresholds, viaNode.thresholds);
  EXPECT_EQ(raw.frames, viaNode.frames);
  EXPECT_EQ(raw.gtTracks, viaNode.gtTracks);
  EXPECT_EQ(raw.gtBoxes, viaNode.gtBoxes);
  EXPECT_EQ(raw.streamEvents, viaNode.streamEvents);
  EXPECT_EQ(raw.latchedEvents, viaNode.latchedEvents);
  EXPECT_EQ(raw.meanAlpha, viaNode.meanAlpha);
  EXPECT_EQ(raw.meanBeta, viaNode.meanBeta);
  EXPECT_EQ(raw.meanEventsPerFrame, viaNode.meanEventsPerFrame);
  EXPECT_EQ(raw.meanFilteredEventsPerFrame, viaNode.meanFilteredEventsPerFrame);
  ASSERT_EQ(raw.pipelines.size(), viaNode.pipelines.size());
  for (std::size_t i = 0; i < raw.pipelines.size(); ++i) {
    expectSameStats(raw.pipelines[i], viaNode.pipelines[i]);
  }
}

}  // namespace
}  // namespace ebbiot
