#include "src/common/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ebbiot {
namespace {

TEST(BBoxTest, EmptyWhenZeroSized) {
  EXPECT_TRUE(BBox{}.empty());
  EXPECT_TRUE((BBox{1, 1, 0, 5}).empty());
  EXPECT_TRUE((BBox{1, 1, 5, 0}).empty());
  EXPECT_FALSE((BBox{0, 0, 1, 1}).empty());
}

TEST(BBoxTest, AreaOfEmptyIsZero) {
  EXPECT_FLOAT_EQ((BBox{3, 4, 0, 7}).area(), 0.0F);
  EXPECT_FLOAT_EQ((BBox{0, 0, 4, 5}).area(), 20.0F);
}

TEST(BBoxTest, EdgesAndCenter) {
  const BBox b{2, 3, 10, 6};
  EXPECT_FLOAT_EQ(b.left(), 2.0F);
  EXPECT_FLOAT_EQ(b.right(), 12.0F);
  EXPECT_FLOAT_EQ(b.bottom(), 3.0F);
  EXPECT_FLOAT_EQ(b.top(), 9.0F);
  EXPECT_FLOAT_EQ(b.center().x, 7.0F);
  EXPECT_FLOAT_EQ(b.center().y, 6.0F);
}

TEST(BBoxTest, ContainsUsesHalfOpenConvention) {
  const BBox b{0, 0, 4, 4};
  EXPECT_TRUE(b.contains(0.0F, 0.0F));
  EXPECT_TRUE(b.contains(3.99F, 3.99F));
  EXPECT_FALSE(b.contains(4.0F, 2.0F));
  EXPECT_FALSE(b.contains(2.0F, 4.0F));
  EXPECT_FALSE(b.contains(-0.01F, 2.0F));
}

TEST(BBoxTest, TranslatedPreservesSize) {
  const BBox b{1, 2, 3, 4};
  const BBox t = b.translated(5.0F, -2.0F);
  EXPECT_FLOAT_EQ(t.x, 6.0F);
  EXPECT_FLOAT_EQ(t.y, 0.0F);
  EXPECT_FLOAT_EQ(t.w, 3.0F);
  EXPECT_FLOAT_EQ(t.h, 4.0F);
}

TEST(BBoxTest, WithCenterMovesBox) {
  const BBox b{0, 0, 4, 2};
  const BBox m = b.withCenter({10.0F, 10.0F});
  EXPECT_FLOAT_EQ(m.center().x, 10.0F);
  EXPECT_FLOAT_EQ(m.center().y, 10.0F);
  EXPECT_FLOAT_EQ(m.w, 4.0F);
  EXPECT_FLOAT_EQ(m.h, 2.0F);
}

TEST(IntersectTest, OverlappingBoxes) {
  const BBox a{0, 0, 10, 10};
  const BBox b{5, 5, 10, 10};
  const BBox i = intersect(a, b);
  EXPECT_FLOAT_EQ(i.x, 5.0F);
  EXPECT_FLOAT_EQ(i.y, 5.0F);
  EXPECT_FLOAT_EQ(i.w, 5.0F);
  EXPECT_FLOAT_EQ(i.h, 5.0F);
}

TEST(IntersectTest, DisjointBoxesGiveEmpty) {
  EXPECT_TRUE(intersect(BBox{0, 0, 2, 2}, BBox{5, 5, 2, 2}).empty());
}

TEST(IntersectTest, TouchingEdgesAreEmpty) {
  EXPECT_TRUE(intersect(BBox{0, 0, 2, 2}, BBox{2, 0, 2, 2}).empty());
}

TEST(UniteTest, CoversBothBoxes) {
  const BBox u = unite(BBox{0, 0, 2, 2}, BBox{5, 5, 2, 2});
  EXPECT_FLOAT_EQ(u.x, 0.0F);
  EXPECT_FLOAT_EQ(u.y, 0.0F);
  EXPECT_FLOAT_EQ(u.right(), 7.0F);
  EXPECT_FLOAT_EQ(u.top(), 7.0F);
}

TEST(UniteTest, EmptyOperandIsIdentity) {
  const BBox b{3, 4, 5, 6};
  EXPECT_EQ(unite(BBox{}, b), b);
  EXPECT_EQ(unite(b, BBox{}), b);
}

TEST(UniteAllTest, EmptyListGivesEmptyBox) {
  EXPECT_TRUE(uniteAll({}).empty());
}

TEST(UniteAllTest, SpansAllBoxes) {
  const BBox u = uniteAll({BBox{0, 0, 1, 1}, BBox{10, 0, 1, 1},
                           BBox{5, 20, 1, 1}});
  EXPECT_FLOAT_EQ(u.right(), 11.0F);
  EXPECT_FLOAT_EQ(u.top(), 21.0F);
}

TEST(IouTest, IdenticalBoxesGiveOne) {
  const BBox b{2, 3, 7, 5};
  EXPECT_FLOAT_EQ(iou(b, b), 1.0F);
}

TEST(IouTest, DisjointBoxesGiveZero) {
  EXPECT_FLOAT_EQ(iou(BBox{0, 0, 2, 2}, BBox{10, 10, 2, 2}), 0.0F);
}

TEST(IouTest, HalfOverlapValue) {
  // Two 2x2 boxes overlapping in a 1x2 strip: I = 2, U = 6.
  const float v = iou(BBox{0, 0, 2, 2}, BBox{1, 0, 2, 2});
  EXPECT_NEAR(v, 2.0F / 6.0F, 1e-6F);
}

TEST(IouTest, EmptyBoxesGiveZero) {
  EXPECT_FLOAT_EQ(iou(BBox{}, BBox{}), 0.0F);
  EXPECT_FLOAT_EQ(iou(BBox{}, BBox{0, 0, 3, 3}), 0.0F);
}

TEST(OverlapFractionTest, FractionOfFirstArea) {
  const BBox a{0, 0, 4, 4};   // area 16
  const BBox b{2, 0, 4, 4};   // overlap 8
  EXPECT_FLOAT_EQ(overlapFractionOfFirst(a, b), 0.5F);
}

TEST(OverlapMatchesTest, MatchesWhenEitherFractionHigh) {
  // Small box fully inside a big one: fraction of small = 1.0, of big is
  // tiny.  Must still match (the OT's "either box" rule).
  const BBox big{0, 0, 100, 100};
  const BBox small{10, 10, 5, 5};
  EXPECT_TRUE(overlapMatches(big, small, 0.5F));
  EXPECT_TRUE(overlapMatches(small, big, 0.5F));
}

TEST(OverlapMatchesTest, RejectsThinOverlap) {
  const BBox a{0, 0, 10, 10};
  const BBox b{9, 0, 10, 10};  // 10% of each
  EXPECT_FALSE(overlapMatches(a, b, 0.25F));
  EXPECT_TRUE(overlapMatches(a, b, 0.05F));
}

TEST(ClampToFrameTest, InsideBoxUnchanged) {
  const BBox b{5, 5, 10, 10};
  EXPECT_EQ(clampToFrame(b, 240, 180), b);
}

TEST(ClampToFrameTest, PartiallyOutsideClipped) {
  const BBox c = clampToFrame(BBox{-5, -5, 20, 20}, 240, 180);
  EXPECT_FLOAT_EQ(c.x, 0.0F);
  EXPECT_FLOAT_EQ(c.y, 0.0F);
  EXPECT_FLOAT_EQ(c.w, 15.0F);
  EXPECT_FLOAT_EQ(c.h, 15.0F);
}

TEST(ClampToFrameTest, FullyOutsideBecomesEmpty) {
  EXPECT_TRUE(clampToFrame(BBox{300, 5, 10, 10}, 240, 180).empty());
  EXPECT_TRUE(clampToFrame(BBox{-50, 5, 10, 10}, 240, 180).empty());
}

TEST(Vec2fTest, Arithmetic) {
  const Vec2f a{1, 2};
  const Vec2f b{3, 4};
  EXPECT_EQ((a + b), (Vec2f{4, 6}));
  EXPECT_EQ((b - a), (Vec2f{2, 2}));
  EXPECT_EQ((a * 2.0F), (Vec2f{2, 4}));
  EXPECT_FLOAT_EQ((Vec2f{3, 4}).norm(), 5.0F);
}

// ------------------------------------------------------------------
// Property sweeps: IoU invariants over a grid of box pairs.

struct IouCase {
  BBox a;
  BBox b;
};

class IouPropertyTest : public ::testing::TestWithParam<IouCase> {};

TEST_P(IouPropertyTest, SymmetricBoundedAndConsistent) {
  const auto& [a, b] = GetParam();
  const float ab = iou(a, b);
  const float ba = iou(b, a);
  EXPECT_FLOAT_EQ(ab, ba);
  EXPECT_GE(ab, 0.0F);
  EXPECT_LE(ab, 1.0F);
  // intersection <= union and area identities
  EXPECT_LE(intersectionArea(a, b), unionArea(a, b) + 1e-4F);
  EXPECT_NEAR(unionArea(a, b),
              a.area() + b.area() - intersectionArea(a, b), 1e-3F);
  // intersection fits inside both
  const BBox i = intersect(a, b);
  EXPECT_LE(i.area(), a.area() + 1e-4F);
  EXPECT_LE(i.area(), b.area() + 1e-4F);
  // union box contains both
  const BBox u = unite(a, b);
  EXPECT_GE(u.area() + 1e-4F, a.area());
  EXPECT_GE(u.area() + 1e-4F, b.area());
}

std::vector<IouCase> makeIouGrid() {
  std::vector<IouCase> cases;
  const float positions[] = {-3.0F, 0.0F, 2.5F, 7.0F};
  const float sizes[] = {1.0F, 4.0F, 9.5F};
  for (float ax : positions) {
    for (float aw : sizes) {
      for (float bx : positions) {
        for (float bw : sizes) {
          cases.push_back(IouCase{BBox{ax, ax / 2.0F, aw, aw * 0.75F},
                                  BBox{bx, bx / 3.0F, bw, bw * 1.25F}});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(BoxGrid, IouPropertyTest,
                         ::testing::ValuesIn(makeIouGrid()));

}  // namespace
}  // namespace ebbiot
