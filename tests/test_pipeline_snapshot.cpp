// Differential tests of the pipeline snapshot/restore hooks
// (PipelineSnapshot, Pipeline::makeSnapshot/saveState/restoreState/
// resetState) over every registered variant: a restored pipeline must
// replay the exact window sequence bit-identically (track vectors
// compared with Track::operator==), a snapshot must transfer to a fresh
// twin, resetState must equal fresh construction, and cross-type
// save/restore must be rejected without touching state.  These hooks
// are what the node recovery layer (src/node/pipeline_sink.*) leans on
// to resync a sensor's tracking after transport gaps.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/core/variant_registry.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

constexpr int kWidth = 240;
constexpr int kHeight = 180;
constexpr int kWarmup = 12;  ///< windows processed before the snapshot
constexpr int kReplay = 10;  ///< windows compared after the snapshot

/// A car and a pedestrian crossing in opposite directions, with noise —
/// enough structure that every variant carries live tracker state at the
/// snapshot point.
std::vector<EventPacket> makeStreamWindows(int count) {
  ScriptedScene scene(kWidth, kHeight);
  scene.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  scene.addLinear(ObjectClass::kHuman, BBox{200, 110, 12, 30}, Vec2f{-25, 0},
                  0, secondsToUs(10.0));
  EventSynthConfig config;
  config.backgroundActivityHz = 0.5;
  config.seed = 97;
  FastEventSynth synth(scene, config);
  std::vector<EventPacket> windows;
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    windows.push_back(synth.nextWindow(kDefaultFramePeriodUs));
  }
  return windows;
}

/// Per-domain inputs for the same underlying scene.
struct WindowSet {
  std::vector<EventPacket> stream;
  std::vector<EventPacket> latched;

  explicit WindowSet(int count) : stream(makeStreamWindows(count)) {
    latched.reserve(stream.size());
    for (const EventPacket& w : stream) {
      latched.push_back(latchReadout(w, kWidth, kHeight));
    }
  }

  [[nodiscard]] const EventPacket& inputFor(const Pipeline& pipeline,
                                            std::size_t i) const {
    return pipeline.inputDomain() == InputDomain::kLatchedFrame ? latched[i]
                                                                : stream[i];
  }
};

std::unique_ptr<Pipeline> buildVariant(const VariantInfo& info) {
  return info.build(VariantContext{kWidth, kHeight});
}

class PipelineSnapshotTest : public ::testing::Test {
 protected:
  WindowSet windows_{kWarmup + kReplay};
};

TEST_F(PipelineSnapshotTest, RestoreReplaysBitIdentical) {
  for (const VariantInfo& info : variantRegistry().variants()) {
    SCOPED_TRACE(info.key);
    std::unique_ptr<Pipeline> pipeline = buildVariant(info);
    for (int i = 0; i < kWarmup; ++i) {
      (void)pipeline->processWindow(
          windows_.inputFor(*pipeline, static_cast<std::size_t>(i)));
    }
    std::unique_ptr<PipelineSnapshot> snap = pipeline->makeSnapshot();
    ASSERT_NE(snap, nullptr);
    ASSERT_TRUE(pipeline->saveState(*snap));

    std::vector<Tracks> firstPass;
    for (int i = kWarmup; i < kWarmup + kReplay; ++i) {
      firstPass.push_back(pipeline->processWindow(
          windows_.inputFor(*pipeline, static_cast<std::size_t>(i))));
    }
    ASSERT_TRUE(pipeline->restoreState(*snap));
    for (int i = kWarmup; i < kWarmup + kReplay; ++i) {
      const Tracks replay = pipeline->processWindow(
          windows_.inputFor(*pipeline, static_cast<std::size_t>(i)));
      EXPECT_TRUE(replay == firstPass[static_cast<std::size_t>(i - kWarmup)])
          << "window " << i << " diverged after restore";
    }
  }
}

TEST_F(PipelineSnapshotTest, SnapshotTransfersToFreshTwin) {
  for (const VariantInfo& info : variantRegistry().variants()) {
    SCOPED_TRACE(info.key);
    std::unique_ptr<Pipeline> warm = buildVariant(info);
    for (int i = 0; i < kWarmup; ++i) {
      (void)warm->processWindow(
          windows_.inputFor(*warm, static_cast<std::size_t>(i)));
    }
    std::unique_ptr<PipelineSnapshot> snap = warm->makeSnapshot();
    ASSERT_NE(snap, nullptr);
    ASSERT_TRUE(warm->saveState(*snap));

    std::unique_ptr<Pipeline> twin = buildVariant(info);
    ASSERT_TRUE(twin->restoreState(*snap));
    for (int i = kWarmup; i < kWarmup + kReplay; ++i) {
      const Tracks a = warm->processWindow(
          windows_.inputFor(*warm, static_cast<std::size_t>(i)));
      const Tracks b = twin->processWindow(
          windows_.inputFor(*twin, static_cast<std::size_t>(i)));
      EXPECT_TRUE(a == b) << "window " << i
                          << " diverged between warm pipeline and twin";
    }
  }
}

TEST_F(PipelineSnapshotTest, ResetMatchesFreshConstruction) {
  for (const VariantInfo& info : variantRegistry().variants()) {
    SCOPED_TRACE(info.key);
    std::unique_ptr<Pipeline> reset = buildVariant(info);
    for (int i = 0; i < kWarmup; ++i) {
      (void)reset->processWindow(
          windows_.inputFor(*reset, static_cast<std::size_t>(i)));
    }
    reset->resetState();

    std::unique_ptr<Pipeline> fresh = buildVariant(info);
    for (int i = kWarmup; i < kWarmup + kReplay; ++i) {
      const Tracks a = reset->processWindow(
          windows_.inputFor(*reset, static_cast<std::size_t>(i)));
      const Tracks b = fresh->processWindow(
          windows_.inputFor(*fresh, static_cast<std::size_t>(i)));
      EXPECT_TRUE(a == b) << "window " << i
                          << " diverged between reset pipeline and fresh one";
    }
  }
}

TEST_F(PipelineSnapshotTest, CrossTypeSnapshotsAreRejectedAndHarmless) {
  // A KF snapshot offered to an OT pipeline (and vice versa, and a frame
  // snapshot offered to the event-domain pipeline) must be refused with
  // `false` and leave the receiver's state bit-identical to a twin that
  // never saw the foreign snapshot.
  std::unique_ptr<Pipeline> ebbiot = buildVariant(*variantRegistry().find(
      "EBBIOT"));
  std::unique_ptr<Pipeline> kalman = buildVariant(*variantRegistry().find(
      "EBBI+KF"));
  std::unique_ptr<Pipeline> ebms = buildVariant(*variantRegistry().find(
      "EBMS"));
  std::unique_ptr<Pipeline> twin = buildVariant(*variantRegistry().find(
      "EBBIOT"));
  for (int i = 0; i < kWarmup; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    (void)ebbiot->processWindow(windows_.latched[s]);
    (void)twin->processWindow(windows_.latched[s]);
    (void)kalman->processWindow(windows_.latched[s]);
    (void)ebms->processWindow(windows_.stream[s]);
  }
  std::unique_ptr<PipelineSnapshot> kfSnap = kalman->makeSnapshot();
  ASSERT_NE(kfSnap, nullptr);
  ASSERT_TRUE(kalman->saveState(*kfSnap));

  EXPECT_FALSE(ebbiot->saveState(*kfSnap));
  EXPECT_FALSE(ebbiot->restoreState(*kfSnap));
  EXPECT_FALSE(ebms->saveState(*kfSnap));
  EXPECT_FALSE(ebms->restoreState(*kfSnap));

  std::unique_ptr<PipelineSnapshot> otSnap = ebbiot->makeSnapshot();
  ASSERT_TRUE(ebbiot->saveState(*otSnap));
  EXPECT_FALSE(kalman->restoreState(*otSnap));

  // The refused restores left the OT pipeline untouched.
  for (int i = kWarmup; i < kWarmup + kReplay; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    const Tracks a = ebbiot->processWindow(windows_.latched[s]);
    const Tracks b = twin->processWindow(windows_.latched[s]);
    EXPECT_TRUE(a == b) << "window " << i
                        << " diverged after a refused restore";
  }
}

}  // namespace
}  // namespace ebbiot
