#include "src/sim/traffic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TrafficConfig smallConfig(std::uint64_t seed = 5) {
  TrafficConfig c;
  c.width = 240;
  c.height = 180;
  c.lensScale = 1.0F;
  c.lanes = makeDefaultLanes(180, 1.0F);
  c.seed = seed;
  return c;
}

TEST(MakeDefaultLanesTest, LanesAreValid) {
  const auto lanes = makeDefaultLanes(180, 1.0F);
  ASSERT_GE(lanes.size(), 3U);
  for (const LaneSpec& lane : lanes) {
    EXPECT_GT(lane.yCenter, 0.0F);
    EXPECT_LT(lane.yCenter, 180.0F);
    EXPECT_TRUE(lane.direction == 1 || lane.direction == -1);
    EXPECT_GT(lane.arrivalRateHz, 0.0);
    double total = 0.0;
    for (double w : lane.classWeights) {
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
  // Both directions present (needed for crossing occlusions).
  bool hasLeft = false;
  bool hasRight = false;
  for (const LaneSpec& lane : lanes) {
    hasLeft = hasLeft || lane.direction == -1;
    hasRight = hasRight || lane.direction == +1;
  }
  EXPECT_TRUE(hasLeft);
  EXPECT_TRUE(hasRight);
}

TEST(TrafficScenarioTest, ScheduleIsSortedAndWithinDuration) {
  TrafficScenario scenario(smallConfig(), secondsToUs(120.0));
  const auto& schedule = scenario.schedule();
  ASSERT_FALSE(schedule.empty());
  TimeUs prev = 0;
  for (const ScriptedObject& o : schedule) {
    EXPECT_GE(o.tStart, prev);
    prev = o.tStart;
    EXPECT_LT(o.tStart, secondsToUs(120.0));
    EXPECT_LE(o.tEnd, secondsToUs(120.0));
    EXPECT_GT(o.tEnd, o.tStart);
  }
}

TEST(TrafficScenarioTest, ArrivalCountNearExpectation) {
  TrafficConfig config = smallConfig();
  double totalRate = 0.0;
  for (const LaneSpec& lane : config.lanes) {
    totalRate += lane.arrivalRateHz;
  }
  const double durationS = 600.0;
  TrafficScenario scenario(config, secondsToUs(durationS));
  const double expected = totalRate * durationS;
  const double actual = static_cast<double>(scenario.schedule().size());
  // Min-headway clipping biases slightly low; allow a generous band.
  EXPECT_GT(actual, expected * 0.5);
  EXPECT_LT(actual, expected * 1.3);
}

TEST(TrafficScenarioTest, ObjectsMoveInLaneDirection) {
  TrafficScenario scenario(smallConfig(), secondsToUs(120.0));
  for (const ScriptedObject& o : scenario.schedule()) {
    if (o.velocity.x > 0) {
      EXPECT_LT(o.boxAtStart.x, 0.0F);  // enters from the left
    } else {
      EXPECT_GE(o.boxAtStart.x, 240.0F);  // enters from the right
    }
    EXPECT_FLOAT_EQ(o.velocity.y, 0.0F);
  }
}

TEST(TrafficScenarioTest, DeterministicForSeed) {
  TrafficScenario a(smallConfig(42), secondsToUs(60.0));
  TrafficScenario b(smallConfig(42), secondsToUs(60.0));
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].tStart, b.schedule()[i].tStart);
    EXPECT_EQ(a.schedule()[i].boxAtStart, b.schedule()[i].boxAtStart);
  }
  // A different seed must change *something* about the schedule.
  TrafficScenario c(smallConfig(43), secondsToUs(60.0));
  bool anyDifference = a.schedule().size() != c.schedule().size();
  if (!anyDifference) {
    for (std::size_t i = 0; i < a.schedule().size(); ++i) {
      if (a.schedule()[i].tStart != c.schedule()[i].tStart ||
          a.schedule()[i].boxAtStart != c.schedule()[i].boxAtStart) {
        anyDifference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(anyDifference);
}

TEST(TrafficScenarioTest, ObjectsAtReturnsOnlyVisible) {
  TrafficScenario scenario(smallConfig(), secondsToUs(300.0));
  const BBox frame{0, 0, 240, 180};
  for (double t = 10.0; t < 300.0; t += 25.0) {
    for (const ObjectState& o : scenario.objectsAt(secondsToUs(t))) {
      EXPECT_FALSE(intersect(o.box, frame).empty());
    }
  }
}

TEST(TrafficScenarioTest, AverageConcurrencyIsPaperLike) {
  // The paper's operating point has NT ~= 2 trackers active on average;
  // the default lane set should hold mean visible objects in [0.5, 4].
  TrafficScenario scenario(smallConfig(), secondsToUs(600.0));
  double sum = 0.0;
  int samples = 0;
  for (double t = 5.0; t < 600.0; t += 5.0) {
    sum += static_cast<double>(scenario.objectsAt(secondsToUs(t)).size());
    ++samples;
  }
  const double mean = sum / samples;
  EXPECT_GT(mean, 0.5);
  EXPECT_LT(mean, 4.5);
}

TEST(TrafficScenarioTest, GroundTruthFramesCoverDuration) {
  TrafficScenario scenario(smallConfig(), secondsToUs(60.0));
  const GroundTruth gt = scenario.groundTruth(kDefaultFramePeriodUs);
  const auto expectedFrames =
      static_cast<std::size_t>(secondsToUs(60.0) / kDefaultFramePeriodUs);
  EXPECT_EQ(gt.frames.size(), expectedFrames);
  EXPECT_GT(gt.distinctTracks(), 0U);
  EXPECT_GT(gt.totalBoxes(), 0U);
}

TEST(TrafficScenarioTest, LensScaleShrinksObjects) {
  TrafficConfig full = smallConfig(7);
  TrafficConfig half = smallConfig(7);
  half.lensScale = 0.5F;
  half.lanes = makeDefaultLanes(180, 0.5F);
  TrafficScenario a(full, secondsToUs(300.0));
  TrafficScenario b(half, secondsToUs(300.0));
  auto meanWidth = [](const TrafficScenario& s) {
    double sum = 0.0;
    for (const ScriptedObject& o : s.schedule()) {
      sum += o.boxAtStart.w;
    }
    return sum / static_cast<double>(s.schedule().size());
  };
  EXPECT_NEAR(meanWidth(b) / meanWidth(a), 0.5, 0.15);
}

TEST(TrafficScenarioTest, CrossingsOccur) {
  // Opposing lanes must actually produce overlapping boxes at some time
  // (dynamic occlusions, needed by the Fig. 4 scenario).
  TrafficScenario scenario(smallConfig(), secondsToUs(600.0));
  bool crossing = false;
  for (double t = 1.0; t < 600.0 && !crossing; t += 0.5) {
    const auto objects = scenario.objectsAt(secondsToUs(t));
    for (std::size_t i = 0; i < objects.size() && !crossing; ++i) {
      for (std::size_t j = i + 1; j < objects.size(); ++j) {
        if (!intersect(objects[i].box, objects[j].box).empty()) {
          crossing = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(crossing);
}

TEST(TrafficScenarioTest, InvalidConfigRejected) {
  TrafficConfig noLanes = smallConfig();
  noLanes.lanes.clear();
  EXPECT_THROW(TrafficScenario(noLanes, secondsToUs(10.0)), LogicError);
  EXPECT_THROW(TrafficScenario(smallConfig(), 0), LogicError);
}

}  // namespace
}  // namespace ebbiot
