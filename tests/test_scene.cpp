#include "src/sim/scene.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(ScriptedSceneTest, ObjectVisibleOnlyDuringLifetime) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{10, 60, 40, 20}, Vec2f{30, 0},
                  secondsToUs(1.0), secondsToUs(5.0));
  EXPECT_TRUE(scene.objectsAt(secondsToUs(0.5)).empty());
  EXPECT_EQ(scene.objectsAt(secondsToUs(2.0)).size(), 1U);
  EXPECT_TRUE(scene.objectsAt(secondsToUs(5.0)).empty());  // tEnd exclusive
}

TEST(ScriptedSceneTest, LinearMotionIsExact) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{10, 60, 40, 20}, Vec2f{30, -6},
                  0, secondsToUs(10.0));
  const auto at2 = scene.objectsAt(secondsToUs(2.0));
  ASSERT_EQ(at2.size(), 1U);
  EXPECT_FLOAT_EQ(at2[0].box.x, 70.0F);   // 10 + 30*2
  EXPECT_FLOAT_EQ(at2[0].box.y, 48.0F);   // 60 - 6*2
  EXPECT_FLOAT_EQ(at2[0].box.w, 40.0F);
  EXPECT_FLOAT_EQ(at2[0].box.h, 20.0F);
}

TEST(ScriptedSceneTest, OffscreenObjectNotReported) {
  ScriptedScene scene(240, 180);
  // Starts fully left of frame; becomes visible once it crosses x > -40.
  scene.addLinear(ObjectClass::kCar, BBox{-100, 60, 40, 20}, Vec2f{30, 0},
                  0, secondsToUs(20.0));
  EXPECT_TRUE(scene.objectsAt(secondsToUs(1.0)).empty());   // x = -70
  EXPECT_EQ(scene.objectsAt(secondsToUs(3.0)).size(), 1U);  // x = -10
}

TEST(ScriptedSceneTest, IdsAreStableAndUnique) {
  ScriptedScene scene(240, 180);
  const auto idA = scene.addLinear(ObjectClass::kCar, BBox{10, 60, 40, 20},
                                   Vec2f{10, 0}, 0, secondsToUs(10.0));
  const auto idB = scene.addLinear(ObjectClass::kBus, BBox{10, 100, 80, 30},
                                   Vec2f{10, 0}, 0, secondsToUs(10.0));
  EXPECT_NE(idA, idB);
  const auto objects = scene.objectsAt(secondsToUs(1.0));
  ASSERT_EQ(objects.size(), 2U);
  EXPECT_EQ(objects[0].id, idA);
  EXPECT_EQ(objects[1].id, idB);
  // Same query later: same ids.
  const auto later = scene.objectsAt(secondsToUs(2.0));
  ASSERT_EQ(later.size(), 2U);
  EXPECT_EQ(later[0].id, idA);
}

TEST(ScriptedSceneTest, ExplicitIdRespected) {
  ScriptedScene scene(240, 180);
  ScriptedObject obj;
  obj.id = 77;
  obj.kind = ObjectClass::kVan;
  obj.boxAtStart = BBox{10, 10, 20, 20};
  obj.tStart = 0;
  obj.tEnd = secondsToUs(1.0);
  EXPECT_EQ(scene.add(obj), 77U);
  const auto objects = scene.objectsAt(100);
  ASSERT_EQ(objects.size(), 1U);
  EXPECT_EQ(objects[0].id, 77U);
}

TEST(ScriptedSceneTest, InvertedLifetimeThrows) {
  ScriptedScene scene(240, 180);
  ScriptedObject obj;
  obj.tStart = 100;
  obj.tEnd = 50;
  EXPECT_THROW(scene.add(obj), LogicError);
}

TEST(ScriptedBoxAtTest, TranslatesFromStartTime) {
  ScriptedObject obj;
  obj.boxAtStart = BBox{0, 0, 10, 10};
  obj.velocity = Vec2f{15, 0};
  obj.tStart = secondsToUs(2.0);
  obj.tEnd = secondsToUs(10.0);
  const BBox b = scriptedBoxAt(obj, secondsToUs(4.0));
  EXPECT_FLOAT_EQ(b.x, 30.0F);  // 15 px/s for 2 s
}

}  // namespace
}  // namespace ebbiot
