#include "src/core/runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/error.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

struct Fixture {
  Fixture() : scene(240, 180) {
    scene.addLinear(ObjectClass::kCar, BBox{-48, 60, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(20.0));
    scene.addLinear(ObjectClass::kVan, BBox{240, 100, 60, 28},
                    Vec2f{-45, 0}, secondsToUs(1.0), secondsToUs(20.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.3;
    config.seed = 31;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

TEST(RunnerTest, RunsAllPipelinesAndCountsFrames) {
  Fixture fix;
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(8.0), config);
  const auto expectedFrames =
      static_cast<std::size_t>(secondsToUs(8.0) / kDefaultFramePeriodUs);
  EXPECT_EQ(result.frames, expectedFrames);
  ASSERT_TRUE(result.ebbiot.has_value());
  ASSERT_TRUE(result.kalman.has_value());
  ASSERT_TRUE(result.ebms.has_value());
  EXPECT_EQ(result.ebbiot->frames, expectedFrames);
  EXPECT_EQ(result.thresholds, config.iouThresholds);
  EXPECT_GT(result.streamEvents, 0U);
  EXPECT_GT(result.latchedEvents, 0U);
  EXPECT_LE(result.latchedEvents, result.streamEvents);
  EXPECT_EQ(result.gtTracks, 2U);
  EXPECT_GT(result.gtBoxes, 0U);
}

TEST(RunnerTest, EbbiotAchievesGoodRecallOnEasyScene) {
  Fixture fix;
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(8.0), config);
  // At IoU 0.3 on two clean vehicles, EBBIOT should recall most boxes.
  const PrCounts& counts = result.ebbiot->counts[2];  // threshold 0.3
  EXPECT_GT(counts.recall(), 0.6);
  EXPECT_GT(counts.precision(), 0.6);
}

TEST(RunnerTest, PipelinesCanBeDisabled) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = false;
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(2.0), config);
  EXPECT_TRUE(result.ebbiot.has_value());
  EXPECT_FALSE(result.kalman.has_value());
  EXPECT_FALSE(result.ebms.has_value());
}

TEST(RunnerTest, StatsKeyedByPipelineName) {
  Fixture fix;
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(2.0), config);
  ASSERT_EQ(result.pipelines.size(), 3U);
  EXPECT_EQ(result.pipelines[0].name, "EBBIOT");
  EXPECT_EQ(result.pipelines[1].name, "EBBI+KF");
  EXPECT_EQ(result.pipelines[2].name, "EBMS");
  ASSERT_NE(result.stats("EBBIOT"), nullptr);
  ASSERT_NE(result.stats("EBBI+KF"), nullptr);
  ASSERT_NE(result.stats("EBMS"), nullptr);
  EXPECT_EQ(result.stats("nonesuch"), nullptr);
  // The convenience views mirror the keyed entries.
  EXPECT_EQ(result.ebbiot->totalOps, result.stats("EBBIOT")->totalOps);
  EXPECT_EQ(result.kalman->totalOps, result.stats("EBBI+KF")->totalOps);
  EXPECT_EQ(result.ebms->totalOps, result.stats("EBMS")->totalOps);
  EXPECT_EQ(result.meanFilteredEventsPerFrame,
            result.ebms->filteredEventsPerFrame);
}

TEST(RunnerTest, ExtraPipelineRegistersInOneLine) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = false;
  EbbiotPipelineConfig ccaVariant = config.ebbiot;
  ccaVariant.rpnKind = RpnKind::kCca;
  ccaVariant.cca.minComponentPixels = 6;
  config.extraPipelines.push_back([ccaVariant] {
    return std::make_unique<EbbiotPipeline>(ccaVariant, "EBBIOT-cca");
  });
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(4.0), config);
  ASSERT_EQ(result.pipelines.size(), 2U);
  const PipelineRunStats* cca = result.stats("EBBIOT-cca");
  ASSERT_NE(cca, nullptr);
  EXPECT_EQ(cca->frames, result.frames);
  EXPECT_GT(cca->totalOps.total(), 0U);
  // Both variants see the same recording; the CCA variant tracks too.
  EXPECT_GT(cca->counts[0].recall(), 0.3);
}

TEST(RunnerTest, DuplicatePipelineNamesRejected) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const EbbiotPipelineConfig dup = config.ebbiot;
  config.extraPipelines.push_back(
      [dup] { return std::make_unique<EbbiotPipeline>(dup); });
  EXPECT_THROW(
      (void)runRecording(*fix.synth, fix.scene, secondsToUs(1.0), config),
      LogicError);
}

TEST(RunnerTest, MaxFramesLimitsWork) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.maxFrames = 5;
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(8.0), config);
  EXPECT_EQ(result.frames, 5U);
}

TEST(RunnerTest, MeanStatsPopulated) {
  Fixture fix;
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(4.0), config);
  EXPECT_GT(result.meanAlpha, 0.0);
  EXPECT_LT(result.meanAlpha, 0.2);
  EXPECT_GE(result.meanBeta, 1.0);
  EXPECT_GT(result.meanEventsPerFrame, 0.0);
  EXPECT_GT(result.meanFilteredEventsPerFrame, 0.0);
  EXPECT_LT(result.meanFilteredEventsPerFrame, result.meanEventsPerFrame);
  EXPECT_GT(result.ebbiot->meanOpsPerFrame(), 0.0);
}

TEST(RunnerTest, ToRecordingResultCarriesWeights) {
  Fixture fix;
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(4.0), config);
  const RecordingResult rec =
      result.toRecordingResult(*result.ebbiot, "unit");
  EXPECT_EQ(rec.name, "unit");
  EXPECT_EQ(rec.gtTracks, result.gtTracks);
  EXPECT_EQ(rec.thresholds, result.thresholds);
  EXPECT_EQ(rec.counts.size(), result.thresholds.size());
}

TEST(RunnerTest, GeometryMismatchRejected) {
  Fixture fix;
  ScriptedScene other(120, 90);
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  EXPECT_THROW(
      (void)runRecording(*fix.synth, other, secondsToUs(1.0), config),
      LogicError);
}

TEST(RunnerTest, ZeroDurationRejected) {
  Fixture fix;
  const RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  EXPECT_THROW((void)runRecording(*fix.synth, fix.scene, 0, config),
               LogicError);
}

TEST(RunnerConfigTest, DefaultIsValid) {
  EXPECT_NO_THROW(RunnerConfig{}.validate());
  EXPECT_NO_THROW(makeDefaultRunnerConfig(240, 180).validate());
}

TEST(RunnerConfigTest, BadValuesThrowConfigError) {
  {
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.framePeriod = 0;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.framePeriod = -66'000;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.iouThresholds.clear();
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.iouThresholds = {0.5f, 1.5f};
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.iouThresholds = {-0.1f};
    EXPECT_THROW(config.validate(), ConfigError);
  }
}

TEST(RunnerConfigTest, RunRecordingValidatesUpFront) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.iouThresholds.clear();
  EXPECT_THROW(
      (void)runRecording(*fix.synth, fix.scene, secondsToUs(1.0), config),
      ConfigError);
}

}  // namespace
}  // namespace ebbiot
