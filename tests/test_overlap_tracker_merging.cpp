// Focused tests for the OT's fragment-absorption and duplicate-
// suppression machinery (Section II-C steps 4-5 as implemented in
// src/trackers/overlap_tracker.cpp).
#include <gtest/gtest.h>

#include "src/trackers/overlap_tracker.hpp"

namespace ebbiot {
namespace {

OverlapTrackerConfig testConfig() {
  OverlapTrackerConfig c;
  c.minHitsToReport = 1;
  c.minSeedArea = 4.0F;
  return c;
}

RegionProposals props(std::initializer_list<BBox> boxes) {
  RegionProposals out;
  for (const BBox& b : boxes) {
    out.push_back(RegionProposal{b, static_cast<std::uint64_t>(b.area())});
  }
  return out;
}

/// Establish a tracker at the given box with ~zero velocity.
void establish(OverlapTracker& tracker, const BBox& box, int frames = 3) {
  for (int i = 0; i < frames; ++i) {
    (void)tracker.update(props({box}));
  }
}

TEST(OtFragmentMergeTest, SameBandFragmentsAbsorbed) {
  OverlapTracker tracker(testConfig());
  establish(tracker, BBox{50, 50, 60, 24});
  // Two horizontal fragments of the object.
  const Tracks t =
      tracker.update(props({BBox{50, 50, 24, 24}, BBox{84, 50, 26, 24}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_GT(t[0].box.w, 45.0F);  // union spans both fragments
}

TEST(OtFragmentMergeTest, DifferentBandFragmentReleasedAndSeeded) {
  OverlapTracker tracker(testConfig());
  establish(tracker, BBox{50, 50, 60, 24});
  // Second proposal is vertically displaced (another lane) but overlaps
  // the tracker in X enough to be matched: it must NOT be absorbed.
  const BBox otherLane{55, 80, 50, 24};
  (void)tracker.update(props({BBox{50, 50, 60, 24}, otherLane}));
  EXPECT_EQ(tracker.activeCount(), 2);
  const Tracks live = tracker.liveTracks();
  // The original tracker kept roughly its own height.
  EXPECT_LT(live[0].box.h, 30.0F);
}

TEST(OtFragmentMergeTest, OvergrowingUnionRejected) {
  OverlapTrackerConfig config = testConfig();
  config.maxUnionGrowth = 1.2F;
  config.unionGrowthMarginPx = 2.0F;
  OverlapTracker tracker(config);
  establish(tracker, BBox{50, 50, 30, 20});
  // A same-band fragment whose union would be ~3x the remembered width.
  (void)tracker.update(props({BBox{50, 50, 30, 20}, BBox{120, 50, 30, 20}}));
  const Tracks live = tracker.liveTracks();
  ASSERT_GE(live.size(), 1U);
  // Tracker did not balloon to 100 px.
  EXPECT_LT(live[0].box.w, 50.0F);
  // The far fragment is big relative to the tracker -> released + seeded.
  EXPECT_EQ(tracker.activeCount(), 2);
}

TEST(OtFragmentMergeTest, SmallShardConsumedSilently) {
  OverlapTrackerConfig config = testConfig();
  config.maxUnionGrowth = 1.2F;
  config.unionGrowthMarginPx = 2.0F;
  OverlapTracker tracker(config);
  establish(tracker, BBox{50, 50, 40, 20});
  // A 10x10 shard hanging off the tracker's top edge: it matches (their
  // boxes overlap) but fails the Y-band rule, and at 100 px^2 it is well
  // under a quarter of the tracker's 800 px^2 — so it is neither
  // absorbed nor allowed to seed a ghost track.
  (void)tracker.update(props({BBox{50, 50, 40, 20}, BBox{60, 68, 10, 10}}));
  EXPECT_EQ(tracker.activeCount(), 1);
  const Tracks live = tracker.liveTracks();
  ASSERT_EQ(live.size(), 1U);
  EXPECT_LT(live[0].box.h, 25.0F);  // shard not absorbed either
}

TEST(OtDuplicateSuppressionTest, CoMovingOverlappedTrackersCollapse) {
  OverlapTracker tracker(testConfig());
  // Two trackers drifting together at 0.5 px/frame each (relative speed
  // 1 px/frame, inside the duplicate tolerance).  Once their boxes
  // overlap by more than duplicateOverlap of the smaller, the junior is
  // suppressed.
  bool collapsed = false;
  for (int f = 0; f < 24 && !collapsed; ++f) {
    const float drift = 0.5F * static_cast<float>(f);
    (void)tracker.update(props({BBox{50.0F + drift, 50, 30, 20},
                                BBox{78.0F - drift, 50, 30, 20}}));
    if (f > 2) {
      EXPECT_GE(tracker.activeCount(), 1);
    }
    collapsed = tracker.activeCount() == 1;
  }
  EXPECT_TRUE(collapsed);
}

TEST(OtDuplicateSuppressionTest, CrossingTrackersNotCollapsed) {
  OverlapTracker tracker(testConfig());
  // Opposite velocities, briefly overlapping boxes: must both survive.
  auto left = [](int f) {
    return BBox{40.0F + 5.0F * static_cast<float>(f), 50, 24, 16};
  };
  auto right = [](int f) {
    return BBox{150.0F - 5.0F * static_cast<float>(f), 51, 24, 16};
  };
  for (int f = 0; f < 10; ++f) {
    (void)tracker.update(props({left(f), right(f)}));
  }
  // Boxes now overlap strongly but velocities oppose.
  EXPECT_EQ(tracker.activeCount(), 2);
}

TEST(OtOcclusionTest, SweptLookaheadCatchesFastClosing) {
  // Closing speed so high the boxes would hop across each other between
  // integer steps: the swept check must still classify it as occlusion.
  OverlapTrackerConfig config = testConfig();
  OverlapTracker tracker(config);
  auto a = [](int f) {
    return BBox{20.0F + 8.0F * static_cast<float>(f), 50, 20, 16};
  };
  auto b = [](int f) {
    return BBox{200.0F - 8.0F * static_cast<float>(f), 52, 20, 16};
  };
  int f = 0;
  for (; f < 10; ++f) {
    (void)tracker.update(props({a(f), b(f)}));
  }
  ASSERT_EQ(tracker.activeCount(), 2);
  const Tracks before = tracker.liveTracks();
  // Single merged proposal while they pass each other.
  for (; f < 14; ++f) {
    (void)tracker.update(props({unite(a(f), b(f))}));
  }
  EXPECT_EQ(tracker.activeCount(), 2);
  Tracks after;
  for (; f < 20; ++f) {
    after = tracker.update(props({a(f), b(f)}));
  }
  ASSERT_EQ(after.size(), 2U);
  EXPECT_EQ(after[0].id, before[0].id);
  EXPECT_EQ(after[1].id, before[1].id);
}

TEST(OtOcclusionTest, OccludedTracksFlaggedAndCoasting) {
  OverlapTracker tracker(testConfig());
  auto a = [](int f) {
    return BBox{40.0F + 4.0F * static_cast<float>(f), 50, 24, 16};
  };
  auto b = [](int f) {
    return BBox{150.0F - 4.0F * static_cast<float>(f), 52, 24, 16};
  };
  int f = 0;
  for (; f < 12; ++f) {
    (void)tracker.update(props({a(f), b(f)}));
  }
  const Tracks merged = tracker.update(props({unite(a(f), b(f))}));
  ASSERT_EQ(merged.size(), 2U);
  EXPECT_TRUE(merged[0].occluded);
  EXPECT_TRUE(merged[1].occluded);
  // Velocities retained through the blob frame.
  EXPECT_GT(merged[0].velocity.x, 2.0F);
  EXPECT_LT(merged[1].velocity.x, -2.0F);
}

}  // namespace
}  // namespace ebbiot
