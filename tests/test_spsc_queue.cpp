// SpscQueue edge coverage: capacity-1 behaviour, index wrap-around over
// many laps, slot reuse, and a true producer/consumer thread stress run
// (the case TSan actually exercises — the single-threaded suite cannot).
#include "src/node/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace ebbiot {
namespace {

TEST(SpscQueueTest, CapacityOneAlternatesFullAndEmpty) {
  SpscQueue<int> queue(1);
  EXPECT_EQ(queue.capacity(), 1U);
  for (int lap = 0; lap < 100; ++lap) {
    EXPECT_TRUE(queue.tryEmplace([&](int& slot) { slot = lap; }));
    // Full at capacity 1: the second emplace must refuse WITHOUT
    // invoking fill (a fill call here would clobber the pending item).
    EXPECT_FALSE(queue.tryEmplace([](int&) { FAIL() << "fill on full"; }));
    EXPECT_EQ(queue.sizeApprox(), 1U);
    int got = -1;
    EXPECT_TRUE(queue.tryConsume([&](int& slot) { got = slot; }));
    EXPECT_EQ(got, lap);
    EXPECT_FALSE(queue.tryConsume([](int&) { FAIL() << "consume empty"; }));
    EXPECT_EQ(queue.sizeApprox(), 0U);
  }
}

TEST(SpscQueueTest, ManyLapsWrapIndicesWithoutCorruption) {
  // Capacity 3 and 10'000 items: the head/tail indices lap the ring
  // thousands of times; FIFO order and values must survive every wrap.
  SpscQueue<std::uint64_t> queue(3);
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  const std::uint64_t kTotal = 10'000;
  while (consumed < kTotal) {
    while (produced < kTotal &&
           queue.tryEmplace([&](std::uint64_t& slot) { slot = produced; })) {
      ++produced;
    }
    std::uint64_t got = 0;
    ASSERT_TRUE(queue.tryConsume([&](std::uint64_t& slot) { got = slot; }));
    EXPECT_EQ(got, consumed);
    ++consumed;
  }
  EXPECT_EQ(queue.sizeApprox(), 0U);
}

TEST(SpscQueueTest, SlotsAreReusedNotReconstructed) {
  // The contract says fill() sees the previous lap's state — that is how
  // EventPacket slots keep their heap capacity.  Pin it with a vector
  // payload whose capacity must survive laps.
  SpscQueue<std::vector<int>> queue(2);
  for (int lap = 0; lap < 8; ++lap) {
    ASSERT_TRUE(queue.tryEmplace([&](std::vector<int>& slot) {
      if (lap >= 2) {
        // Same ring slot as two laps ago: still holds 64 elements.
        EXPECT_EQ(slot.size(), 64U);
      }
      slot.assign(64, lap);
    }));
    ASSERT_TRUE(queue.tryConsume([&](std::vector<int>& slot) {
      ASSERT_EQ(slot.size(), 64U);
      EXPECT_EQ(slot.front(), lap);
    }));
  }
}

TEST(SpscQueueTest, ProducerConsumerThreadStress) {
  // One real producer thread vs one real consumer thread over a small
  // ring, so full/empty edges are hit constantly.  Under TSan this is
  // the witness that the acquire/release pairing is right; everywhere
  // else it still checks ordering and loss-freedom under contention.
  SpscQueue<std::uint32_t> queue(4);
  const std::uint32_t kTotal = 200'000;

  std::thread producer([&] {
    std::uint32_t next = 0;
    while (next < kTotal) {
      if (queue.tryEmplace([&](std::uint32_t& slot) { slot = next; })) {
        ++next;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint32_t expected = 0;
  std::uint64_t checksum = 0;
  while (expected < kTotal) {
    std::uint32_t got = 0;
    if (queue.tryConsume([&](std::uint32_t& slot) { got = slot; })) {
      ASSERT_EQ(got, expected);  // strict FIFO, nothing lost or duplicated
      checksum += got;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(checksum,
            static_cast<std::uint64_t>(kTotal - 1) * kTotal / 2);
  EXPECT_EQ(queue.sizeApprox(), 0U);
}

}  // namespace
}  // namespace ebbiot
