#include "src/trackers/overlap_tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

OverlapTrackerConfig testConfig() {
  OverlapTrackerConfig c;
  c.minHitsToReport = 2;
  c.minSeedArea = 4.0F;
  return c;
}

RegionProposals props(std::initializer_list<BBox> boxes) {
  RegionProposals out;
  for (const BBox& b : boxes) {
    out.push_back(RegionProposal{b, static_cast<std::uint64_t>(b.area())});
  }
  return out;
}

TEST(OverlapTrackerTest, SeedsFromProposal) {
  OverlapTracker tracker(testConfig());
  EXPECT_TRUE(tracker.update(props({BBox{10, 10, 20, 10}})).empty());
  EXPECT_EQ(tracker.activeCount(), 1);
  // Second matched frame passes minHitsToReport.
  const Tracks t = tracker.update(props({BBox{11, 10, 20, 10}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].hits, 2);
}

TEST(OverlapTrackerTest, TinyProposalNotSeeded) {
  OverlapTracker tracker(testConfig());
  (void)tracker.update(props({BBox{10, 10, 1, 1}}));
  EXPECT_EQ(tracker.activeCount(), 0);
}

TEST(OverlapTrackerTest, TracksConstantVelocityObject) {
  OverlapTracker tracker(testConfig());
  // Object moving +3 px/frame in x.
  for (int f = 0; f < 20; ++f) {
    const float x = 10.0F + 3.0F * static_cast<float>(f);
    (void)tracker.update(props({BBox{x, 50, 30, 16}}));
  }
  const Tracks live = tracker.liveTracks();
  ASSERT_EQ(live.size(), 1U);
  // Velocity estimate converges to ~3 px/frame.
  EXPECT_NEAR(live[0].velocity.x, 3.0F, 0.5F);
  EXPECT_NEAR(live[0].velocity.y, 0.0F, 0.2F);
  // Position tracks the object within a couple of pixels.
  EXPECT_NEAR(live[0].box.x, 10.0F + 3.0F * 19.0F, 3.0F);
  // Identity was stable the whole time: only one track ever created.
  EXPECT_EQ(live[0].id, 1U);
}

TEST(OverlapTrackerTest, CoastsThroughMissedFrames) {
  OverlapTracker tracker(testConfig());
  for (int f = 0; f < 10; ++f) {
    const float x = 10.0F + 3.0F * static_cast<float>(f);
    (void)tracker.update(props({BBox{x, 50, 30, 16}}));
  }
  // Two empty frames: tracker coasts by velocity.
  (void)tracker.update({});
  const Tracks coasted = tracker.update({});
  ASSERT_EQ(coasted.size(), 1U);
  EXPECT_EQ(coasted[0].misses, 2);
  EXPECT_NEAR(coasted[0].box.x, 10.0F + 3.0F * 11.0F, 4.0F);
  // Reacquires afterwards with the same identity.
  const Tracks reacquired =
      tracker.update(props({BBox{10.0F + 3.0F * 12.0F, 50, 30, 16}}));
  ASSERT_EQ(reacquired.size(), 1U);
  EXPECT_EQ(reacquired[0].id, coasted[0].id);
  EXPECT_EQ(reacquired[0].misses, 0);
}

TEST(OverlapTrackerTest, FreesSlotAfterMaxMisses) {
  OverlapTrackerConfig config = testConfig();
  config.maxMisses = 2;
  OverlapTracker tracker(config);
  (void)tracker.update(props({BBox{100, 50, 30, 16}}));
  (void)tracker.update(props({BBox{100, 50, 30, 16}}));
  EXPECT_EQ(tracker.activeCount(), 1);
  (void)tracker.update({});
  (void)tracker.update({});
  EXPECT_EQ(tracker.activeCount(), 1);  // misses = 2 = maxMisses: still alive
  (void)tracker.update({});
  EXPECT_EQ(tracker.activeCount(), 0);  // misses = 3 > maxMisses
}

TEST(OverlapTrackerTest, KillsTrackLeavingFrame) {
  OverlapTracker tracker(testConfig());
  // Fast object heading off the right edge.
  for (int f = 0; f < 12; ++f) {
    const float x = 200.0F + 6.0F * static_cast<float>(f);
    (void)tracker.update(props({BBox{std::min(x, 239.0F), 50, 20, 16}}));
  }
  // Let it coast out of frame.
  for (int f = 0; f < 12; ++f) {
    (void)tracker.update({});
  }
  EXPECT_EQ(tracker.activeCount(), 0);
}

TEST(OverlapTrackerTest, FragmentedProposalsMergedIntoOneTrack) {
  // Paper case 4: an established bus track receives two fragments; the
  // union box should be assigned to the single tracker, not seed another.
  OverlapTracker tracker(testConfig());
  (void)tracker.update(props({BBox{50, 50, 80, 30}}));
  (void)tracker.update(props({BBox{52, 50, 80, 30}}));
  EXPECT_EQ(tracker.activeCount(), 1);
  const Tracks t =
      tracker.update(props({BBox{54, 50, 30, 30}, BBox{100, 50, 36, 30}}));
  EXPECT_EQ(tracker.activeCount(), 1);
  ASSERT_EQ(t.size(), 1U);
  // Box spans both fragments (with smoothing toward the prediction).
  EXPECT_GT(t[0].box.w, 60.0F);
}

TEST(OverlapTrackerTest, DuplicateTrackersMergedWhenNoOcclusion) {
  // Paper case 5b: fragmentation earlier seeded two trackers over one
  // object; when a single unfragmented proposal arrives and the trackers'
  // trajectories do not cross, the duplicate is freed.
  OverlapTrackerConfig config = testConfig();
  OverlapTracker tracker(config);
  // Seed two side-by-side trackers (both nearly static).
  (void)tracker.update(props({BBox{50, 50, 20, 24}, BBox{74, 50, 20, 24}}));
  (void)tracker.update(props({BBox{51, 50, 20, 24}, BBox{75, 50, 20, 24}}));
  EXPECT_EQ(tracker.activeCount(), 2);
  // One merged proposal covering both.
  (void)tracker.update(props({BBox{50, 50, 46, 24}}));
  EXPECT_EQ(tracker.activeCount(), 1);
}

TEST(OverlapTrackerTest, OcclusionPreservesBothTracks) {
  // Paper case 5a: two objects crossing.  Track A moves right at 4
  // px/frame, track B moves left at 4 px/frame; when they overlap, a
  // single merged proposal arrives.  Both trackers must survive on their
  // predictions with velocities retained.
  OverlapTracker tracker(testConfig());
  auto boxA = [](int f) {
    return BBox{40.0F + 4.0F * static_cast<float>(f), 50, 24, 16};
  };
  auto boxB = [](int f) {
    return BBox{160.0F - 4.0F * static_cast<float>(f), 52, 24, 16};
  };
  int f = 0;
  // Approach phase: separated proposals.
  for (; f < 12; ++f) {
    (void)tracker.update(props({boxA(f), boxB(f)}));
  }
  EXPECT_EQ(tracker.activeCount(), 2);
  const Tracks before = tracker.liveTracks();
  ASSERT_EQ(before.size(), 2U);
  EXPECT_GT(before[0].velocity.x, 2.0F);
  EXPECT_LT(before[1].velocity.x, -2.0F);

  // Crossing phase: one merged proposal spanning both objects.
  for (; f < 18; ++f) {
    (void)tracker.update(props({unite(boxA(f), boxB(f))}));
  }
  EXPECT_EQ(tracker.activeCount(), 2) << "occlusion must not merge tracks";

  // Separation: both reacquire, identities preserved.
  Tracks after;
  for (; f < 26; ++f) {
    after = tracker.update(props({boxA(f), boxB(f)}));
  }
  ASSERT_EQ(after.size(), 2U);
  EXPECT_EQ(after[0].id, before[0].id);
  EXPECT_EQ(after[1].id, before[1].id);
  // And they are near the true positions.
  EXPECT_NEAR(after[0].box.x, boxA(25).x, 6.0F);
  EXPECT_NEAR(after[1].box.x, boxB(25).x, 6.0F);
}

TEST(OverlapTrackerTest, RegionOfExclusionBlocksSeeding) {
  OverlapTrackerConfig config = testConfig();
  config.regionsOfExclusion.push_back(BBox{200, 140, 40, 40});
  OverlapTracker tracker(config);
  // Distractor proposals inside the ROE (tree flutter).
  for (int f = 0; f < 5; ++f) {
    (void)tracker.update(props({BBox{210, 150, 15, 15}}));
  }
  EXPECT_EQ(tracker.activeCount(), 0);
  // A proposal outside the ROE still seeds.
  (void)tracker.update(props({BBox{50, 50, 30, 16}}));
  EXPECT_EQ(tracker.activeCount(), 1);
}

TEST(OverlapTrackerTest, CapsAtMaxTrackers) {
  OverlapTrackerConfig config = testConfig();
  config.maxTrackers = 3;
  OverlapTracker tracker(config);
  RegionProposals many;
  for (int i = 0; i < 6; ++i) {
    many.push_back(RegionProposal{
        BBox{static_cast<float>(10 + 40 * i), 50, 20, 16}, 100});
  }
  (void)tracker.update(many);
  EXPECT_EQ(tracker.activeCount(), 3);
}

TEST(OverlapTrackerTest, NtEightPaperDefault) {
  EXPECT_EQ(OverlapTrackerConfig{}.maxTrackers, 8);
}

TEST(OverlapTrackerTest, OpsCountedPerFrame) {
  OverlapTracker tracker(testConfig());
  (void)tracker.update(props({BBox{10, 10, 20, 10}}));
  EXPECT_GT(tracker.lastOps().total(), 0U);
  (void)tracker.update({});
  // Coasting frame with one live tracker still does a little work.
  const auto coastOps = tracker.lastOps().total();
  EXPECT_GT(coastOps, 0U);
  EXPECT_LT(coastOps, 100U);
}

TEST(OverlapTrackerTest, EmptyProposalBoxIgnored) {
  OverlapTracker tracker(testConfig());
  (void)tracker.update(props({BBox{}}));
  EXPECT_EQ(tracker.activeCount(), 0);
}

TEST(OverlapTrackerTest, InvalidConfigRejected) {
  OverlapTrackerConfig bad = testConfig();
  bad.maxTrackers = 0;
  EXPECT_THROW(OverlapTracker{bad}, LogicError);
  OverlapTrackerConfig bad2 = testConfig();
  bad2.matchFraction = 0.0F;
  EXPECT_THROW(OverlapTracker{bad2}, LogicError);
}

// Property: the tracker never reports more than maxTrackers tracks, never
// reports empty boxes, and ids are unique within a frame.
class OverlapTrackerInvariantProperty
    : public ::testing::TestWithParam<int> {};

TEST_P(OverlapTrackerInvariantProperty, FrameInvariants) {
  const int seed = GetParam();
  OverlapTracker tracker(testConfig());
  std::uint64_t s = static_cast<std::uint64_t>(seed) * 0x9E3779B9ULL + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int f = 0; f < 60; ++f) {
    RegionProposals p;
    const int count = static_cast<int>(next() % 5);
    for (int i = 0; i < count; ++i) {
      p.push_back(RegionProposal{
          BBox{static_cast<float>(next() % 220),
               static_cast<float>(next() % 160),
               static_cast<float>(4 + next() % 60),
               static_cast<float>(4 + next() % 30)},
          10});
    }
    const Tracks tracks = tracker.update(p);
    EXPECT_LE(tracks.size(),
              static_cast<std::size_t>(tracker.config().maxTrackers));
    EXPECT_LE(tracker.activeCount(), tracker.config().maxTrackers);
    std::set<std::uint32_t> ids;
    for (const Track& t : tracks) {
      EXPECT_FALSE(t.box.empty());
      EXPECT_TRUE(ids.insert(t.id).second) << "duplicate id in frame";
      EXPECT_GE(t.hits, tracker.config().minHitsToReport);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapTrackerInvariantProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace ebbiot
