// Differential tests pinning the word-parallel MedianFilter against the
// scalar MedianFilterReference: bit-identical filtered images and
// bit-identical OpCounts (the closed-form accounting must equal the
// reference's metered values), across sizes that exercise every word-
// boundary case, random densities, frame borders, all-set and all-clear
// frames, and the active-row band skip.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.hpp"
#include "src/filters/median_filter.hpp"
#include "src/filters/median_filter_reference.hpp"

namespace ebbiot {
namespace {

BinaryImage randomImage(int w, int h, double density, std::uint64_t seed) {
  Rng rng(seed);
  BinaryImage img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rng.chance(density)) {
        img.set(x, y, true);
      }
    }
  }
  return img;
}

void expectIdentical(const BinaryImage& img, int patch) {
  MedianFilter fast(patch);
  MedianFilterReference reference(patch);
  const BinaryImage got = fast.apply(img);
  const BinaryImage want = reference.apply(img);
  ASSERT_EQ(got, want) << "image " << img.width() << "x" << img.height()
                       << " patch " << patch;
  EXPECT_EQ(fast.lastOps(), reference.lastOps())
      << "closed-form ops diverge from metered reference";
}

TEST(MedianFilterWordTest, MatchesReferenceAcrossWordBoundarySizes) {
  // Widths around the 64-bit word boundary, including single-word,
  // exactly-one-word, multi-word and ragged-tail shapes.
  const int widths[] = {1, 2, 3, 31, 63, 64, 65, 127, 128, 130, 240};
  const int heights[] = {1, 2, 3, 17, 180};
  std::uint64_t seed = 1;
  for (int w : widths) {
    for (int h : heights) {
      expectIdentical(randomImage(w, h, 0.3, seed++), 3);
    }
  }
}

TEST(MedianFilterWordTest, MatchesReferenceAcrossDensities) {
  std::uint64_t seed = 100;
  for (double density : {0.01, 0.05, 0.2, 0.5, 0.8, 0.95}) {
    expectIdentical(randomImage(240, 180, density, seed++), 3);
    expectIdentical(randomImage(65, 40, density, seed++), 3);
  }
}

TEST(MedianFilterWordTest, AllClearAndAllSetFrames) {
  for (int w : {5, 64, 65, 240}) {
    const int h = 20;
    expectIdentical(BinaryImage(w, h), 3);  // all clear
    BinaryImage full(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        full.set(x, y, true);
      }
    }
    expectIdentical(full, 3);  // all set (borders still erode identically)
  }
}

TEST(MedianFilterWordTest, BorderColumnsAndRows) {
  // Dense content hugging each frame edge — the cross-word carries and the
  // zero-padding clamp must agree with the scalar clamp exactly.
  for (int w : {64, 65, 130}) {
    const int h = 30;
    BinaryImage img(w, h);
    for (int y = 0; y < h; ++y) {
      img.set(0, y, true);
      img.set(1, y, true);
      img.set(w - 1, y, true);
      img.set(w - 2, y, true);
    }
    for (int x = 0; x < w; ++x) {
      img.set(x, 0, true);
      img.set(x, h - 1, true);
    }
    expectIdentical(img, 3);
  }
}

TEST(MedianFilterWordTest, PixelsStraddlingWordBoundary) {
  BinaryImage img(130, 10);
  // A 3x3 block centred on the word boundary at x = 63..65.
  for (int y = 4; y <= 6; ++y) {
    for (int x = 63; x <= 65; ++x) {
      img.set(x, y, true);
    }
  }
  // And one at the second boundary covering the ragged tail word.
  for (int y = 2; y <= 4; ++y) {
    for (int x = 127; x <= 129; ++x) {
      img.set(x, y, true);
    }
  }
  expectIdentical(img, 3);
}

TEST(MedianFilterWordTest, SparseActiveBandSkipsBlankRows) {
  // Content confined to a narrow band; the fast path must fill the rest
  // with zeros exactly like the reference (its band skip is invisible).
  BinaryImage img(240, 180);  // all clear
  for (int y = 90; y <= 93; ++y) {
    for (int x = 100; x <= 140; ++x) {
      img.set(x, y, true);
    }
  }
  expectIdentical(img, 3);
}

TEST(MedianFilterWordTest, StaleOccupancyRowsStayCorrect) {
  // Rows where pixels were set then cleared have a conservative "maybe
  // occupied" occupancy bit; the result must still match the reference.
  BinaryImage img(100, 50);
  for (int x = 0; x < 100; ++x) {
    img.set(x, 10, true);
  }
  for (int x = 0; x < 100; ++x) {
    img.set(x, 10, false);  // row 10 now blank but flagged occupied
  }
  for (int y = 20; y <= 22; ++y) {
    for (int x = 30; x <= 60; ++x) {
      img.set(x, y, true);
    }
  }
  expectIdentical(img, 3);
}

TEST(MedianFilterWordTest, ReusedOutputIsOverwrittenCompletely) {
  // applyInto into an output that previously held a *different* dense
  // result must leave no residue outside the new active band.
  MedianFilter filter(3);
  BinaryImage dense = randomImage(240, 180, 0.9, 77);
  BinaryImage out(240, 180);
  filter.applyInto(dense, out);
  BinaryImage sparse(240, 180);
  sparse.set(5, 5, true);
  filter.applyInto(sparse, out);
  EXPECT_EQ(out.popcount(), 0U);  // lone pixel removed, no stale content
}

TEST(MedianFilterWordTest, ScalarFallbackPatchSizesMatchReference) {
  std::uint64_t seed = 500;
  for (int patch : {1, 5, 7}) {
    expectIdentical(randomImage(97, 33, 0.4, seed++), patch);
    expectIdentical(randomImage(64, 16, 0.2, seed++), patch);
  }
}

TEST(MedianFilterWordTest, QuietSceneDirtyBandSeedStaysIdentical) {
  // The dirty-row-span seed (BinaryImage::occupiedRowSpan, maintained by
  // the builder's writes) lets a quiet scene skip every untouched row;
  // the result must stay bit-identical to the scalar reference, including
  // bands hugging the top and bottom frame edges.
  expectIdentical(BinaryImage(240, 180), 3);  // fully quiet frame
  for (int bandStart : {0, 1, 88, 176, 178}) {
    BinaryImage img(240, 180);
    for (int y = bandStart; y < std::min(180, bandStart + 2); ++y) {
      for (int x = 200; x < 230; ++x) {
        img.set(x, y, true);
      }
    }
    expectIdentical(img, 3);
  }
  // A two-pixel speck: the narrowest possible dirty band.
  BinaryImage speck(240, 180);
  speck.set(120, 0, true);
  speck.set(121, 0, true);
  expectIdentical(speck, 3);
}

TEST(MedianFilterWordTest, TwoTimescaleStyleOrWithImagesMatch) {
  // OR-combined images (the slow frame path) carry merged occupancy;
  // results must stay identical.
  BinaryImage a = randomImage(240, 64, 0.1, 900);
  const BinaryImage b = randomImage(240, 64, 0.1, 901);
  a.orWith(b);
  expectIdentical(a, 3);
}

}  // namespace
}  // namespace ebbiot
