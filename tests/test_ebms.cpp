#include "src/trackers/ebms.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

EbmsConfig testConfig() {
  EbmsConfig c;
  c.visibilitySupport = 10;
  return c;
}

/// Emit a burst of events uniformly over a box within [t0, t1).
EventPacket burst(const BBox& box, TimeUs t0, TimeUs t1, int count,
                  std::uint64_t seed) {
  Rng rng(seed);
  EventPacket p(t0, t1);
  for (int i = 0; i < count; ++i) {
    Event e;
    e.x = static_cast<std::uint16_t>(rng.uniform(box.left(), box.right()));
    e.y = static_cast<std::uint16_t>(rng.uniform(box.bottom(), box.top()));
    e.p = rng.chance(0.5) ? Polarity::kOn : Polarity::kOff;
    e.t = t0 + rng.uniformInt(0, t1 - t0 - 1);
    p.push(e);
  }
  p.sortByTime();
  return p;
}

TEST(EbmsTrackerTest, SeedsPotentialClusterFromFirstEvent) {
  EbmsTracker tracker(testConfig());
  tracker.processEvent(Event{50, 50, Polarity::kOn, 100});
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_TRUE(tracker.visibleTracks().empty());  // below support threshold
}

TEST(EbmsTrackerTest, ClusterBecomesVisibleWithSupport) {
  EbmsTracker tracker(testConfig());
  tracker.processPacket(burst(BBox{45, 45, 12, 12}, 0, 66'000, 40, 1));
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  EXPECT_NEAR(t[0].box.center().x, 51.0F, 6.0F);
  EXPECT_NEAR(t[0].box.center().y, 51.0F, 6.0F);
}

TEST(EbmsTrackerTest, MeanShiftFollowsMovingBurst) {
  EbmsTracker tracker(testConfig());
  // Bursts marching right 4 px per 66 ms frame.
  for (int f = 0; f < 15; ++f) {
    const float x = 40.0F + 4.0F * static_cast<float>(f);
    tracker.processPacket(burst(BBox{x, 60, 16, 16},
                                f * 66'000, (f + 1) * 66'000, 120,
                                static_cast<std::uint64_t>(f + 1)));
  }
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  const float finalCenter = 40.0F + 4.0F * 14.0F + 8.0F;
  EXPECT_NEAR(t[0].box.center().x, finalCenter, 8.0F);
  // Velocity fit positive (px/s): 4 px / 66 ms ~= 60 px/s.
  EXPECT_GT(t[0].velocity.x, 20.0F);
}

TEST(EbmsTrackerTest, TwoSeparatedBurstsTwoClusters) {
  EbmsTracker tracker(testConfig());
  EventPacket p = mergePackets(burst(BBox{30, 40, 12, 12}, 0, 66'000, 60, 1),
                               burst(BBox{160, 90, 12, 12}, 0, 66'000, 60, 2));
  tracker.processPacket(p);
  EXPECT_EQ(tracker.visibleTracks().size(), 2U);
}

TEST(EbmsTrackerTest, OverlappingClustersMerge) {
  // Small capture radius so two clusters seed over adjacent bursts, with
  // a merge threshold their MAD boxes exceed.
  EbmsConfig config = testConfig();
  config.captureRadius = 6.0F;
  config.mergeOverlapFraction = 0.05F;
  EbmsTracker tracker(config);
  EventPacket p = mergePackets(burst(BBox{46, 48, 8, 8}, 0, 66'000, 60, 1),
                               burst(BBox{56, 48, 8, 8}, 0, 66'000, 60, 2));
  tracker.processPacket(p);
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_GT(tracker.mergeCount(), 0U);
}

TEST(EbmsTrackerTest, SilentClusterPruned) {
  EbmsConfig config = testConfig();
  config.clusterLifetime = 50'000;
  EbmsTracker tracker(config);
  tracker.processPacket(burst(BBox{50, 50, 10, 10}, 0, 66'000, 60, 1));
  EXPECT_EQ(tracker.activeCount(), 1);
  // Two empty frames exceed the 50 ms lifetime.
  tracker.processPacket(EventPacket(66'000, 132'000));
  EXPECT_EQ(tracker.activeCount(), 0);
}

TEST(EbmsTrackerTest, CapsAtMaxClusters) {
  EbmsConfig config = testConfig();
  config.maxClusters = 3;
  config.captureRadius = 5.0F;
  EbmsTracker tracker(config);
  // Events at 8 well-separated spots; only 3 slots exist.
  EventPacket p(0, 66'000);
  for (int i = 0; i < 8; ++i) {
    p.push(Event{static_cast<std::uint16_t>(20 + 25 * i), 50, Polarity::kOn,
                 static_cast<TimeUs>(i * 100)});
  }
  tracker.processPacket(p);
  EXPECT_EQ(tracker.activeCount(), 3);
}

TEST(EbmsTrackerTest, PaperDefaultClMaxIsEight) {
  EXPECT_EQ(EbmsConfig{}.maxClusters, 8);
  EXPECT_EQ(EbmsConfig{}.velocityWindow, 10);  // LSQ over past 10 positions
}

TEST(EbmsTrackerTest, VelocityFitUsesLeastSquares) {
  // Feed a cluster whose sampled positions advance linearly; the LSQ
  // slope must recover the speed even with the mean-shift lag.
  EbmsConfig config = testConfig();
  config.mixingFactor = 0.3F;  // fast adaptation for a clean fit
  // Sample positions every half frame so the 10-sample window spans
  // several frames of motion (the within-frame burst is stationary).
  config.positionSampleInterval = 33'000;
  EbmsTracker tracker(config);
  for (int f = 0; f < 12; ++f) {
    const float x = 40.0F + 3.0F * static_cast<float>(f);
    tracker.processPacket(burst(BBox{x, 60, 10, 10}, f * 66'000,
                                (f + 1) * 66'000, 80,
                                static_cast<std::uint64_t>(f + 7)));
  }
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  // 3 px per 66 ms ~= 45 px/s.
  EXPECT_NEAR(t[0].velocity.x, 45.0F, 20.0F);
  EXPECT_NEAR(t[0].velocity.y, 0.0F, 10.0F);
}

TEST(EbmsTrackerTest, SizeEstimateTracksBurstExtent) {
  EbmsConfig config = testConfig();
  config.sizeSmoothing = 0.9F;
  EbmsTracker tracker(config);
  tracker.processPacket(burst(BBox{40, 50, 40, 20}, 0, 66'000, 400, 3));
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  // MAD-based box: wider than tall, at the right order of magnitude.
  EXPECT_GT(t[0].box.w, t[0].box.h);
  EXPECT_GT(t[0].box.w, 15.0F);
  EXPECT_LT(t[0].box.w, 60.0F);
}

TEST(EbmsTrackerTest, OpsAccumulatePerPacket) {
  EbmsTracker tracker(testConfig());
  tracker.processPacket(burst(BBox{40, 50, 20, 20}, 0, 66'000, 100, 5));
  const auto ops = tracker.lastOps().total();
  EXPECT_GT(ops, 100U);
  // Cost scales with event count (Eq. (8): proportional to NF).
  tracker.processPacket(burst(BBox{40, 50, 20, 20}, 66'000, 132'000, 400, 6));
  EXPECT_GT(tracker.lastOps().total(), ops * 2);
}

TEST(EbmsTrackerTest, InvalidConfigRejected) {
  EbmsConfig bad = testConfig();
  bad.maxClusters = 0;
  EXPECT_THROW(EbmsTracker{bad}, LogicError);
  EbmsConfig bad2 = testConfig();
  bad2.mixingFactor = 0.0F;
  EXPECT_THROW(EbmsTracker{bad2}, LogicError);
}

// Property: cluster count never exceeds CLmax, boxes stay positive-sized.
class EbmsInvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(EbmsInvariantProperty, Invariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  EbmsTracker tracker(testConfig());
  for (int f = 0; f < 30; ++f) {
    EventPacket p(f * 66'000, (f + 1) * 66'000);
    const int count = static_cast<int>(rng.uniformInt(0, 200));
    for (int i = 0; i < count; ++i) {
      p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                   static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                   Polarity::kOn,
                   f * 66'000 + rng.uniformInt(0, 65'999)});
    }
    p.sortByTime();
    tracker.processPacket(p);
    EXPECT_LE(tracker.activeCount(), tracker.config().maxClusters);
    for (const Track& t : tracker.allClusters()) {
      EXPECT_GT(t.box.w, 0.0F);
      EXPECT_GT(t.box.h, 0.0F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EbmsInvariantProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ebbiot
