#include "src/trackers/ebms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

EbmsConfig testConfig() {
  EbmsConfig c;
  c.visibilitySupport = 10;
  return c;
}

/// Emit a burst of events uniformly over a box within [t0, t1).
EventPacket burst(const BBox& box, TimeUs t0, TimeUs t1, int count,
                  std::uint64_t seed) {
  Rng rng(seed);
  EventPacket p(t0, t1);
  for (int i = 0; i < count; ++i) {
    Event e;
    e.x = static_cast<std::uint16_t>(rng.uniform(box.left(), box.right()));
    e.y = static_cast<std::uint16_t>(rng.uniform(box.bottom(), box.top()));
    e.p = rng.chance(0.5) ? Polarity::kOn : Polarity::kOff;
    e.t = t0 + rng.uniformInt(0, t1 - t0 - 1);
    p.push(e);
  }
  p.sortByTime();
  return p;
}

TEST(EbmsTrackerTest, SeedsPotentialClusterFromFirstEvent) {
  EbmsTracker tracker(testConfig());
  tracker.processEvent(Event{50, 50, Polarity::kOn, 100});
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_TRUE(tracker.visibleTracks().empty());  // below support threshold
}

TEST(EbmsTrackerTest, ClusterBecomesVisibleWithSupport) {
  EbmsTracker tracker(testConfig());
  tracker.processPacket(burst(BBox{45, 45, 12, 12}, 0, 66'000, 40, 1));
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  EXPECT_NEAR(t[0].box.center().x, 51.0F, 6.0F);
  EXPECT_NEAR(t[0].box.center().y, 51.0F, 6.0F);
}

TEST(EbmsTrackerTest, MeanShiftFollowsMovingBurst) {
  EbmsTracker tracker(testConfig());
  // Bursts marching right 4 px per 66 ms frame.
  for (int f = 0; f < 15; ++f) {
    const float x = 40.0F + 4.0F * static_cast<float>(f);
    tracker.processPacket(burst(BBox{x, 60, 16, 16},
                                f * 66'000, (f + 1) * 66'000, 120,
                                static_cast<std::uint64_t>(f + 1)));
  }
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  const float finalCenter = 40.0F + 4.0F * 14.0F + 8.0F;
  EXPECT_NEAR(t[0].box.center().x, finalCenter, 8.0F);
  // Velocity fit positive (px/s): 4 px / 66 ms ~= 60 px/s.
  EXPECT_GT(t[0].velocity.x, 20.0F);
}

TEST(EbmsTrackerTest, TwoSeparatedBurstsTwoClusters) {
  EbmsTracker tracker(testConfig());
  EventPacket p = mergePackets(burst(BBox{30, 40, 12, 12}, 0, 66'000, 60, 1),
                               burst(BBox{160, 90, 12, 12}, 0, 66'000, 60, 2));
  tracker.processPacket(p);
  EXPECT_EQ(tracker.visibleTracks().size(), 2U);
}

TEST(EbmsTrackerTest, OverlappingClustersMerge) {
  // Small capture radius so two clusters seed over adjacent bursts, with
  // a merge threshold their MAD boxes exceed.
  EbmsConfig config = testConfig();
  config.captureRadius = 6.0F;
  config.mergeOverlapFraction = 0.05F;
  EbmsTracker tracker(config);
  EventPacket p = mergePackets(burst(BBox{46, 48, 8, 8}, 0, 66'000, 60, 1),
                               burst(BBox{56, 48, 8, 8}, 0, 66'000, 60, 2));
  tracker.processPacket(p);
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_GT(tracker.mergeCount(), 0U);
}

TEST(EbmsTrackerTest, SilentClusterPruned) {
  EbmsConfig config = testConfig();
  config.clusterLifetime = 50'000;
  EbmsTracker tracker(config);
  tracker.processPacket(burst(BBox{50, 50, 10, 10}, 0, 66'000, 60, 1));
  EXPECT_EQ(tracker.activeCount(), 1);
  // Two empty frames exceed the 50 ms lifetime.
  tracker.processPacket(EventPacket(66'000, 132'000));
  EXPECT_EQ(tracker.activeCount(), 0);
}

TEST(EbmsTrackerTest, CapsAtMaxClusters) {
  EbmsConfig config = testConfig();
  config.maxClusters = 3;
  config.captureRadius = 5.0F;
  EbmsTracker tracker(config);
  // Events at 8 well-separated spots; only 3 slots exist.
  EventPacket p(0, 66'000);
  for (int i = 0; i < 8; ++i) {
    p.push(Event{static_cast<std::uint16_t>(20 + 25 * i), 50, Polarity::kOn,
                 static_cast<TimeUs>(i * 100)});
  }
  tracker.processPacket(p);
  EXPECT_EQ(tracker.activeCount(), 3);
}

TEST(EbmsTrackerTest, PaperDefaultClMaxIsEight) {
  EXPECT_EQ(EbmsConfig{}.maxClusters, 8);
  EXPECT_EQ(EbmsConfig{}.velocityWindow, 10);  // LSQ over past 10 positions
}

TEST(EbmsTrackerTest, VelocityFitUsesLeastSquares) {
  // Feed a cluster whose sampled positions advance linearly; the LSQ
  // slope must recover the speed even with the mean-shift lag.
  EbmsConfig config = testConfig();
  config.mixingFactor = 0.3F;  // fast adaptation for a clean fit
  // Sample positions every half frame so the 10-sample window spans
  // several frames of motion (the within-frame burst is stationary).
  config.positionSampleInterval = 33'000;
  EbmsTracker tracker(config);
  for (int f = 0; f < 12; ++f) {
    const float x = 40.0F + 3.0F * static_cast<float>(f);
    tracker.processPacket(burst(BBox{x, 60, 10, 10}, f * 66'000,
                                (f + 1) * 66'000, 80,
                                static_cast<std::uint64_t>(f + 7)));
  }
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  // 3 px per 66 ms ~= 45 px/s.
  EXPECT_NEAR(t[0].velocity.x, 45.0F, 20.0F);
  EXPECT_NEAR(t[0].velocity.y, 0.0F, 10.0F);
}

TEST(EbmsTrackerTest, SizeEstimateTracksBurstExtent) {
  EbmsConfig config = testConfig();
  config.sizeSmoothing = 0.9F;
  EbmsTracker tracker(config);
  tracker.processPacket(burst(BBox{40, 50, 40, 20}, 0, 66'000, 400, 3));
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  // MAD-based box: wider than tall, at the right order of magnitude.
  EXPECT_GT(t[0].box.w, t[0].box.h);
  EXPECT_GT(t[0].box.w, 15.0F);
  EXPECT_LT(t[0].box.w, 60.0F);
}

TEST(EbmsTrackerTest, OpsAccumulatePerPacket) {
  EbmsTracker tracker(testConfig());
  tracker.processPacket(burst(BBox{40, 50, 20, 20}, 0, 66'000, 100, 5));
  const auto ops = tracker.lastOps().total();
  EXPECT_GT(ops, 100U);
  // Cost scales with event count (Eq. (8): proportional to NF).
  tracker.processPacket(burst(BBox{40, 50, 20, 20}, 66'000, 132'000, 400, 6));
  EXPECT_GT(tracker.lastOps().total(), ops * 2);
}

TEST(EbmsTrackerTest, PruneScanChargesPreEraseCount) {
  // The prune scan visits every live cluster; its comparisons must be
  // charged on the *pre*-erase size (the old code charged the post-erase
  // count, reporting zero ops for a maintain that pruned everything).
  EbmsConfig config = testConfig();
  config.clusterLifetime = 50'000;
  EbmsTracker tracker(config);
  EventPacket p(0, 66'000);
  p.push(Event{30, 40, Polarity::kOn, 60'000});
  p.push(Event{200, 140, Polarity::kOn, 61'000});
  tracker.processPacket(p);
  ASSERT_EQ(tracker.activeCount(), 2);
  // An empty window beyond the lifetime prunes both clusters; the only
  // work of that packet is the 2-cluster prune scan (no boxes, no merge
  // pairs, no velocity fits remain).
  tracker.processPacket(EventPacket(66'000, 132'000));
  EXPECT_EQ(tracker.activeCount(), 0);
  OpCounts expected;
  expected.compares = 2;
  EXPECT_EQ(tracker.lastOps(), expected);
}

TEST(EbmsTrackerTest, MadMeasuresDeviationBeforePositionUpdate) {
  // The size estimate must use the event's deviation from the centroid
  // *before* the mean-shift step.  (Measuring after it shrank every
  // deviation by (1 - mixingFactor), biasing the reported box small — at
  // the large mixing factor below, by half.)  The test replays the exact
  // recurrence and pins the reported box to it.
  EbmsConfig config = testConfig();
  config.mixingFactor = 0.5F;
  config.sizeSmoothing = 0.9F;
  config.positionSampleInterval = 10'000'000;  // history stays at 1 sample
  EbmsTracker tracker(config);
  EventPacket p(0, 66'000);
  float pos = 0.0F;
  float mad = kEbmsInitialMad;
  for (int i = 0; i < 200; ++i) {
    const std::uint16_t x = i % 2 == 0 ? 92 : 108;
    p.push(Event{x, 48, Polarity::kOn, static_cast<TimeUs>(i * 100)});
    const float px = static_cast<float>(x) + 0.5F;
    if (i == 0) {
      pos = px;  // seeds the cluster
      continue;
    }
    const float dev = std::abs(px - pos);  // deviation pre-update
    mad = 0.9F * mad + (1.0F - 0.9F) * dev;
    pos = (1.0F - 0.5F) * pos + 0.5F * px;
  }
  tracker.processPacket(p);
  const Tracks t = tracker.visibleTracks();
  ASSERT_EQ(t.size(), 1U);
  const float expectedW = std::max(config.minBoxSide, 4.0F * mad);
  EXPECT_FLOAT_EQ(t[0].box.w, expectedW);
  // Events alternate +-8 px around the centre: an unbiased MAD sits near
  // 10 px and the box near 40 px.  The old post-update measurement gave
  // roughly half that — pin the fix coarsely too.
  EXPECT_GT(t[0].box.w, 30.0F);
  // y never deviates: madY decays and the height floors at minBoxSide.
  EXPECT_FLOAT_EQ(t[0].box.h, config.minBoxSide);
}

TEST(EbmsTrackerTest, MergePassMetersCachedBoxesAndScan) {
  // Two clusters seeded 8 px apart with the default 4 px MAD produce
  // 16x16 boxes overlapping by half, so one merge fires at the packet
  // boundary.  The expected counts below are the *cached-box* merge pass:
  // one box per cluster plus one recompute for the survivor, one overlap
  // test for the single pair — not the old restart-the-world accounting
  // that recomputed both boxes per pair per sweep.
  EbmsConfig config = testConfig();
  config.captureRadius = 6.0F;
  config.mergeOverlapFraction = 0.05F;
  EbmsTracker tracker(config);
  EventPacket p(0, 66'000);
  p.push(Event{50, 48, Polarity::kOn, 0});
  p.push(Event{58, 48, Polarity::kOn, 100});
  tracker.processPacket(p);
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_EQ(tracker.mergeCount(), 1U);
  OpCounts expected;
  // Event 1 scans no clusters and seeds; event 2 scans one cluster
  // (2 compares + 2 adds), finds it out of capture range, and seeds.
  expected.memWrites = 6 + 6;
  expected.compares = 2;
  expected.adds = 2;
  // Maintain: prune scan over 2 clusters.
  expected.compares += 2;
  // Merge pass: 2 cached boxes (2 multiplies + 2 compares each), one
  // overlap test (4 compares), the merge arithmetic (4 multiplies +
  // 6 adds), and the survivor's box recompute (2 multiplies +
  // 2 compares).  Velocity: the survivor's 1-sample history fits nothing.
  expected.multiplies = 2 * 2 + 4 + 2;
  expected.compares += 2 * 2 + 4 + 2;
  expected.adds += 6;
  EXPECT_EQ(tracker.lastOps(), expected);
}

TEST(EbmsTrackerTest, InvalidConfigRejected) {
  EbmsConfig bad = testConfig();
  bad.maxClusters = 0;
  EXPECT_THROW(EbmsTracker{bad}, LogicError);
  EbmsConfig bad2 = testConfig();
  bad2.mixingFactor = 0.0F;
  EXPECT_THROW(EbmsTracker{bad2}, LogicError);
}

// Property: cluster count never exceeds CLmax, boxes stay positive-sized.
class EbmsInvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(EbmsInvariantProperty, Invariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  EbmsTracker tracker(testConfig());
  for (int f = 0; f < 30; ++f) {
    EventPacket p(f * 66'000, (f + 1) * 66'000);
    const int count = static_cast<int>(rng.uniformInt(0, 200));
    for (int i = 0; i < count; ++i) {
      p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                   static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                   Polarity::kOn,
                   f * 66'000 + rng.uniformInt(0, 65'999)});
    }
    p.sortByTime();
    tracker.processPacket(p);
    EXPECT_LE(tracker.activeCount(), tracker.config().maxClusters);
    for (const Track& t : tracker.allClusters()) {
      EXPECT_GT(t.box.w, 0.0F);
      EXPECT_GT(t.box.h, 0.0F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EbmsInvariantProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ebbiot
