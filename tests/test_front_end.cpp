// Parity tests for the shared FrameFrontEnd: the extracted class must be
// byte-identical to the pre-refactor per-pipeline stage chain (EBBI build
// -> median filter -> RPN/CCA, each pipeline owning its own stage
// members), and both frame-domain pipelines must observe the same front
// end.  Golden values pin the behaviour to a seeded FastEventSynth scene
// so a silent change to any stage shows up as a diff here.
#include "src/core/front_end.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

/// The seeded scene all parity tests replay: one car crossing the frame
/// over light background noise.
class SeededScene {
 public:
  SeededScene() : scene_(240, 180) {
    scene_.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0},
                     0, secondsToUs(10.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.3;
    config.seed = 21;
    synth_ = std::make_unique<FastEventSynth>(scene_, config);
  }

  EventPacket nextLatched() {
    return latchReadout(synth_->nextWindow(kDefaultFramePeriodUs), 240, 180);
  }

 private:
  ScriptedScene scene_;
  std::unique_ptr<FastEventSynth> synth_;
};

/// The pre-refactor front end: the stage chain exactly as the old
/// EbbiotPipeline/KalmanPipeline members ran it.
struct LegacyFrontEnd {
  explicit LegacyFrontEnd(const FrontEndConfig& config)
      : builder(config.width, config.height),
        median(config.medianPatch),
        rpn(config.rpn),
        cca(config.cca),
        kind(config.rpnKind),
        ebbiImage(config.width, config.height),
        filtered(config.width, config.height) {}

  RegionProposals process(const EventPacket& packet) {
    builder.buildInto(packet, ebbiImage);
    ops.ebbi = builder.lastOps();
    median.applyInto(ebbiImage, filtered);
    ops.medianFilter = median.lastOps();
    RegionProposals proposals;
    if (kind == RpnKind::kHistogram) {
      proposals = rpn.propose(filtered);
      ops.rpn = rpn.lastOps();
    } else {
      proposals = cca.propose(filtered);
      ops.rpn = cca.lastOps();
    }
    return proposals;
  }

  EbbiBuilder builder;
  MedianFilter median;
  HistogramRpn rpn;
  CcaLabeler cca;
  RpnKind kind;
  BinaryImage ebbiImage;
  BinaryImage filtered;
  FrontEndOps ops;
};

void expectIdentical(FrameFrontEnd& shared, LegacyFrontEnd& legacy,
                     SeededScene& sceneA, SeededScene& sceneB, int frames) {
  for (int f = 0; f < frames; ++f) {
    const RegionProposals& got = shared.process(sceneA.nextLatched());
    const RegionProposals want = legacy.process(sceneB.nextLatched());
    ASSERT_EQ(shared.lastEbbi(), legacy.ebbiImage) << "frame " << f;
    ASSERT_EQ(shared.lastFiltered(), legacy.filtered) << "frame " << f;
    ASSERT_EQ(got, want) << "frame " << f;
    EXPECT_EQ(shared.lastOps().ebbi, legacy.ops.ebbi);
    EXPECT_EQ(shared.lastOps().medianFilter, legacy.ops.medianFilter);
    EXPECT_EQ(shared.lastOps().rpn, legacy.ops.rpn);
  }
}

TEST(FrameFrontEndTest, ByteIdenticalToLegacyChainHistogramRpn) {
  SeededScene a;
  SeededScene b;
  FrameFrontEnd shared{FrontEndConfig{}};
  LegacyFrontEnd legacy{FrontEndConfig{}};
  expectIdentical(shared, legacy, a, b, 20);
}

TEST(FrameFrontEndTest, ByteIdenticalToLegacyChainCcaRpn) {
  FrontEndConfig config;
  config.rpnKind = RpnKind::kCca;
  config.cca.minComponentPixels = 6;
  SeededScene a;
  SeededScene b;
  FrameFrontEnd shared{config};
  LegacyFrontEnd legacy{config};
  expectIdentical(shared, legacy, a, b, 20);
}

TEST(FrameFrontEndTest, GoldenValuesOnSeededScene) {
  // Pinned outputs of frame 10 of the seeded scene at paper defaults.
  // These came from the legacy chain before the refactor; if they move,
  // a front-end stage changed behaviour.
  SeededScene scene;
  FrameFrontEnd frontEnd{FrontEndConfig{}};
  RegionProposals proposals;
  for (int f = 0; f < 10; ++f) {
    proposals = frontEnd.process(scene.nextLatched());
  }
  ASSERT_EQ(proposals.size(), 1U);
  // The car started at x=10 moving 60 px/s; after 10 windows of 66 ms it
  // sits near x = 49.6.  The proposal must cover most of the 48x22 body.
  const BBox carBox{10.0F + 60.0F * 0.66F, 60, 48, 22};
  EXPECT_GT(iou(proposals[0].box, carBox), 0.5F);
  EXPECT_GT(frontEnd.lastEbbi().popcount(), 0U);
  EXPECT_LE(frontEnd.lastFiltered().popcount(),
            frontEnd.lastEbbi().popcount());
  EXPECT_GT(frontEnd.lastOps().total().total(), 0U);
}

TEST(FrameFrontEndTest, BothFramePipelinesShareFrontEndBehaviour) {
  // EBBIOT and EBBI+KF configured identically must expose identical
  // front-end products every frame — they are the same FrameFrontEnd.
  SeededScene a;
  SeededScene b;
  EbbiotPipeline ours{EbbiotPipelineConfig{}};
  KalmanPipeline kf{KalmanPipelineConfig{}};
  for (int f = 0; f < 15; ++f) {
    (void)ours.processWindow(a.nextLatched());
    (void)kf.processWindow(b.nextLatched());
    ASSERT_EQ(ours.lastEbbi(), kf.lastEbbi()) << "frame " << f;
    ASSERT_EQ(ours.lastFiltered(), kf.lastFiltered()) << "frame " << f;
    ASSERT_EQ(ours.lastProposals(), kf.lastProposals()) << "frame " << f;
    EXPECT_EQ(ours.stageOps().frontEnd.total(),
              kf.stageOps().frontEnd.total());
  }
}

TEST(FrameFrontEndTest, ProcessReturnsReferenceToLastProposals) {
  SeededScene scene;
  FrameFrontEnd frontEnd{FrontEndConfig{}};
  const RegionProposals& ref = frontEnd.process(scene.nextLatched());
  EXPECT_EQ(&ref, &frontEnd.lastProposals());
}

}  // namespace
}  // namespace ebbiot
