#include "src/events/stats.hpp"

#include <gtest/gtest.h>

namespace ebbiot {
namespace {

TEST(FrameStatsTest, EmptyPacket) {
  const EventPacket p(0, 66'000);
  const FrameStats s = computeFrameStats(p, 240, 180);
  EXPECT_EQ(s.eventCount, 0U);
  EXPECT_EQ(s.activePixels, 0U);
  EXPECT_DOUBLE_EQ(s.alpha, 0.0);
  EXPECT_DOUBLE_EQ(s.beta, 0.0);
}

TEST(FrameStatsTest, CountsDistinctPixels) {
  EventPacket p(0, 1'000'000);
  p.push(Event{0, 0, Polarity::kOn, 10});
  p.push(Event{0, 0, Polarity::kOff, 20});  // same pixel again
  p.push(Event{1, 0, Polarity::kOn, 30});
  const FrameStats s = computeFrameStats(p, 10, 10);
  EXPECT_EQ(s.eventCount, 3U);
  EXPECT_EQ(s.activePixels, 2U);
  EXPECT_DOUBLE_EQ(s.alpha, 0.02);
  EXPECT_DOUBLE_EQ(s.beta, 1.5);
  EXPECT_NEAR(s.onFraction, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.eventRateHz, 3.0);  // 3 events / 1 s
}

TEST(FrameStatsTest, BetaIsAtLeastOneWhenActive) {
  EventPacket p(0, 66'000);
  p.push(Event{5, 5, Polarity::kOn, 10});
  const FrameStats s = computeFrameStats(p, 10, 10);
  EXPECT_GE(s.beta, 1.0);
}

TEST(StreamStatsAccumulatorTest, AggregatesAcrossFrames) {
  StreamStatsAccumulator acc(10, 10);
  EventPacket a(0, 1'000'000);
  a.push(Event{0, 0, Polarity::kOn, 10});
  a.push(Event{1, 1, Polarity::kOn, 20});
  acc.addPacket(a);
  EventPacket b(1'000'000, 2'000'000);
  b.push(Event{2, 2, Polarity::kOn, 1'500'000});
  b.push(Event{2, 2, Polarity::kOff, 1'600'000});
  acc.addPacket(b);

  EXPECT_EQ(acc.totalEvents(), 4U);
  EXPECT_EQ(acc.frames(), 2U);
  EXPECT_EQ(acc.totalDuration(), 2'000'000);
  EXPECT_DOUBLE_EQ(acc.meanEventsPerFrame(), 2.0);
  EXPECT_DOUBLE_EQ(acc.meanEventRateHz(), 2.0);
  // alpha: frame a = 0.02, frame b = 0.01 -> mean 0.015
  EXPECT_NEAR(acc.meanAlpha(), 0.015, 1e-12);
  // beta: frame a = 1.0, frame b = 2.0 -> mean 1.5
  EXPECT_NEAR(acc.meanBeta(), 1.5, 1e-12);
}

TEST(StreamStatsAccumulatorTest, IdleFramesExcludedFromAlphaBeta) {
  StreamStatsAccumulator acc(10, 10);
  acc.addPacket(EventPacket(0, 1'000));  // idle frame
  EventPacket b(1'000, 2'000);
  b.push(Event{0, 0, Polarity::kOn, 1'500});
  acc.addPacket(b);
  EXPECT_DOUBLE_EQ(acc.meanAlpha(), 0.01);
  EXPECT_DOUBLE_EQ(acc.meanBeta(), 1.0);
}

}  // namespace
}  // namespace ebbiot
