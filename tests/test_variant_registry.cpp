#include "src/core/variant_registry.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/error.hpp"
#include "src/core/runner.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

TEST(VariantRegistryTest, GlobalRegistryHoldsBuiltinsAndExtensions) {
  VariantRegistry& reg = variantRegistry();
  EXPECT_GE(reg.size(), 6U);
  for (const char* key : {"EBBIOT", "EBBI+KF", "EBMS", "EBBINNOT", "Hybrid",
                          "EBBINNOT-Hybrid"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
    ASSERT_NE(reg.find(key), nullptr);
    EXPECT_FALSE(reg.find(key)->description.empty());
  }
  EXPECT_FALSE(reg.contains("nonesuch"));
  EXPECT_EQ(reg.find("nonesuch"), nullptr);
}

TEST(VariantRegistryTest, BuildProducesPipelineNamedLikeTheKey) {
  const VariantContext ctx{240, 180};
  for (const std::string& key : variantRegistry().keys()) {
    const std::unique_ptr<Pipeline> p = variantRegistry().build(key, ctx);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), key);
  }
}

TEST(VariantRegistryTest, DuplicateEmptyAndNullRegistrationsRejected) {
  VariantRegistry local;
  local.add("x", "a variant", [](const VariantContext&) {
    return std::make_unique<EbbiotPipeline>(EbbiotPipelineConfig{}, "x");
  });
  EXPECT_THROW(local.add("x", "again", [](const VariantContext&) {
    return std::make_unique<EbbiotPipeline>(EbbiotPipelineConfig{}, "x");
  }),
               LogicError);
  EXPECT_THROW(local.add("", "no key", [](const VariantContext&) {
    return std::make_unique<EbbiotPipeline>(EbbiotPipelineConfig{});
  }),
               LogicError);
  EXPECT_THROW(local.add("y", "no builder", nullptr), LogicError);
}

TEST(VariantRegistryTest, UnknownKeyAndNameMismatchThrowOnBuild) {
  VariantRegistry local;
  EXPECT_THROW((void)local.build("missing", VariantContext{}), LogicError);
  local.add("well-named", "name disagrees with key",
            [](const VariantContext&) {
              return std::make_unique<EbbiotPipeline>(EbbiotPipelineConfig{},
                                                      "something-else");
            });
  EXPECT_THROW((void)local.build("well-named", VariantContext{}), LogicError);
}

TEST(VariantRegistryTest, ContextGeometryReachesThePipelines) {
  VariantRegistry local;
  registerBuiltinVariants(local);
  const VariantContext ctx{120, 90};
  const std::unique_ptr<Pipeline> p = local.build("EBBIOT", ctx);
  const auto* ebbiot = dynamic_cast<EbbiotPipeline*>(p.get());
  ASSERT_NE(ebbiot, nullptr);
  EXPECT_EQ(ebbiot->config().width, 120);
  EXPECT_EQ(ebbiot->config().height, 90);
}

// --- Runner integration: one runRecording call sweeps the registry.

struct Fixture {
  Fixture() : scene(240, 180) {
    scene.addLinear(ObjectClass::kCar, BBox{-48, 60, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(20.0));
    scene.addLinear(ObjectClass::kVan, BBox{240, 100, 60, 28}, Vec2f{-45, 0},
                    secondsToUs(1.0), secondsToUs(20.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.3;
    config.seed = 31;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

TEST(VariantRegistryRunnerTest, OneRunEvaluatesEveryRegisteredVariant) {
  Fixture fix;
  const RunnerConfig config = makeRegistryRunnerConfig(240, 180);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(6.0), config);
  // All registered variants evaluated side by side: the three paper
  // built-ins plus the NN-filtered and hybrid back ends — >= 5 pipelines
  // in one call, each with per-variant ops and PR counts.
  ASSERT_GE(result.pipelines.size(), 5U);
  EXPECT_EQ(result.pipelines.size(), variantRegistry().size());
  for (const PipelineRunStats& stats : result.pipelines) {
    EXPECT_TRUE(variantRegistry().contains(stats.name)) << stats.name;
    EXPECT_EQ(stats.frames, result.frames) << stats.name;
    EXPECT_GT(stats.totalOps.total(), 0U) << stats.name;
    EXPECT_EQ(stats.counts.size(), config.iouThresholds.size());
  }
  // The convenience views keep working because the registry names match.
  ASSERT_TRUE(result.ebbiot.has_value());
  ASSERT_TRUE(result.kalman.has_value());
  ASSERT_TRUE(result.ebms.has_value());
  // The extension variants track the easy scene too.
  const PipelineRunStats* nn = result.stats("EBBINNOT");
  const PipelineRunStats* hybrid = result.stats("Hybrid");
  ASSERT_NE(nn, nullptr);
  ASSERT_NE(hybrid, nullptr);
  EXPECT_GT(nn->counts[2].recall(), 0.5);
  EXPECT_GT(hybrid->counts[2].recall(), 0.5);
}

TEST(VariantRegistryRunnerTest, NamedVariantsRideAlongBuiltins) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = false;
  config.variants = {"Hybrid", "EBBINNOT"};
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(2.0), config);
  ASSERT_EQ(result.pipelines.size(), 3U);
  EXPECT_EQ(result.pipelines[0].name, "EBBIOT");
  EXPECT_EQ(result.pipelines[1].name, "Hybrid");
  EXPECT_EQ(result.pipelines[2].name, "EBBINNOT");
}

TEST(VariantRegistryRunnerTest, LocalRegistrySweepsAdHocGrid) {
  Fixture fix;
  VariantRegistry local;
  for (int s1 : {3, 6}) {
    const std::string key = "EBBIOT-s" + std::to_string(s1);
    local.add(key, "downsample ablation point",
              [key, s1](const VariantContext& ctx) {
                EbbiotPipelineConfig c;
                c.width = ctx.width;
                c.height = ctx.height;
                c.rpn.s1 = s1;
                return std::make_unique<EbbiotPipeline>(c, key);
              });
  }
  const RunnerConfig config = makeRegistryRunnerConfig(240, 180, &local);
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(2.0), config);
  ASSERT_EQ(result.pipelines.size(), 2U);
  EXPECT_NE(result.stats("EBBIOT-s3"), nullptr);
  EXPECT_NE(result.stats("EBBIOT-s6"), nullptr);
  // The global registry was not polluted by the local sweep.
  EXPECT_FALSE(variantRegistry().contains("EBBIOT-s3"));
}

TEST(VariantRegistryRunnerTest, VariantDuplicatingBuiltinRejected) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.variants = {"EBBIOT"};  // clashes with the enabled built-in
  EXPECT_THROW(
      (void)runRecording(*fix.synth, fix.scene, secondsToUs(1.0), config),
      LogicError);
}

}  // namespace
}  // namespace ebbiot
