// Differential tests pinning the run-based word-parallel CcaLabeler
// against the scalar two-pass CcaLabelerReference: bit-identical
// components (boxes, pixel counts, deterministic order) and bit-identical
// OpCounts (the closed-form per-pixel accounting must equal the
// reference's metered values), across word-boundary widths, random
// densities, all-set/all-clear rows, diagonal topologies under both
// connectivities, minComponentPixels filtering, stale occupancy, and the
// downsampled CountImage path.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/detect/cca.hpp"
#include "src/detect/cca_reference.hpp"

namespace ebbiot {
namespace {

BinaryImage randomImage(int w, int h, double density, std::uint64_t seed) {
  Rng rng(seed);
  BinaryImage img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rng.chance(density)) {
        img.set(x, y, true);
      }
    }
  }
  return img;
}

void expectIdentical(const BinaryImage& img, const CcaConfig& config) {
  CcaLabeler fast(config);
  CcaLabelerReference reference(config);
  const auto& got = fast.label(img);
  const auto& want = reference.label(img);
  ASSERT_EQ(got.size(), want.size())
      << "image " << img.width() << "x" << img.height() << " conn "
      << static_cast<int>(config.connectivity);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].box, want[i].box) << "component " << i;
    EXPECT_EQ(got[i].pixelCount, want[i].pixelCount) << "component " << i;
  }
  EXPECT_EQ(fast.lastOps(), reference.lastOps())
      << "closed-form ops diverge from metered reference ("
      << img.width() << "x" << img.height() << ")";
}

void expectIdenticalBothConnectivities(const BinaryImage& img,
                                       std::size_t minPixels = 1) {
  for (Connectivity conn : {Connectivity::kEight, Connectivity::kFour}) {
    CcaConfig config;
    config.connectivity = conn;
    config.minComponentPixels = minPixels;
    expectIdentical(img, config);
  }
}

TEST(CcaWordTest, MatchesReferenceAcrossWordBoundarySizes) {
  // Widths around the 64-bit word boundary, including single-word,
  // exactly-one-word, multi-word and ragged-tail shapes.
  const int widths[] = {1, 2, 3, 31, 63, 64, 65, 127, 128, 130, 240};
  const int heights[] = {1, 2, 3, 17, 180};
  std::uint64_t seed = 1;
  for (int w : widths) {
    for (int h : heights) {
      expectIdenticalBothConnectivities(randomImage(w, h, 0.3, seed++));
    }
  }
}

TEST(CcaWordTest, MatchesReferenceAcrossDensities) {
  std::uint64_t seed = 100;
  for (double density : {0.01, 0.05, 0.2, 0.5, 0.8, 0.95}) {
    expectIdenticalBothConnectivities(randomImage(240, 180, density, seed++));
    expectIdenticalBothConnectivities(randomImage(65, 40, density, seed++));
  }
}

TEST(CcaWordTest, AllClearAndAllSetFrames) {
  for (int w : {5, 63, 64, 65, 240}) {
    const int h = 20;
    expectIdenticalBothConnectivities(BinaryImage(w, h));  // all clear
    BinaryImage full(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        full.set(x, y, true);
      }
    }
    expectIdenticalBothConnectivities(full);  // one frame-sized component
  }
}

TEST(CcaWordTest, AlternatingFullAndEmptyRows) {
  // Stripes exercise the prev-row reset between disconnected rows; runs
  // spanning whole multi-word rows exercise the cross-word run scan.
  for (int w : {63, 64, 65, 130}) {
    BinaryImage img(w, 24);
    for (int y = 0; y < 24; y += 2) {
      for (int x = 0; x < w; ++x) {
        img.set(x, y, true);
      }
    }
    expectIdenticalBothConnectivities(img);
  }
}

TEST(CcaWordTest, SinglePixelDiagonalsAcrossWordBoundary) {
  // A diagonal staircase is one component under 8-connectivity and N
  // singletons under 4-connectivity; run it across the x=63/64 boundary.
  BinaryImage img(130, 40);
  for (int i = 0; i < 30; ++i) {
    img.set(50 + i, 5 + i, true);
  }
  expectIdenticalBothConnectivities(img);
  // Anti-diagonal too: its merges come from the SE probe.
  BinaryImage anti(130, 40);
  for (int i = 0; i < 30; ++i) {
    anti.set(90 - i, 5 + i, true);
  }
  expectIdenticalBothConnectivities(anti);
}

TEST(CcaWordTest, MinComponentPixelsFiltering) {
  Rng rng(7);
  BinaryImage img = randomImage(240, 100, 0.1, 42);
  for (std::size_t minPixels : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{10}}) {
    expectIdenticalBothConnectivities(img, minPixels);
  }
}

TEST(CcaWordTest, UShapeMergesAcrossRuns) {
  // The U forces two run chains to union through the bridge row.
  BinaryImage img(96, 32);
  for (int y = 5; y < 17; ++y) {
    for (int x = 60; x < 63; ++x) {
      img.set(x, y, true);  // left arm (crosses no boundary)
    }
    for (int x = 70; x < 73; ++x) {
      img.set(x, y, true);  // right arm
    }
  }
  for (int x = 60; x < 73; ++x) {
    img.set(x, 5, true);  // bridge
  }
  expectIdenticalBothConnectivities(img);
}

TEST(CcaWordTest, StaleOccupancyRowsStayCorrect) {
  // Rows where pixels were set then cleared keep a conservative "maybe
  // occupied" bit; the labeller must treat them as the blank rows they
  // are, with identical components AND identical ops.
  BinaryImage img(100, 50);
  for (int x = 0; x < 100; ++x) {
    img.set(x, 10, true);
  }
  for (int x = 0; x < 100; ++x) {
    img.set(x, 10, false);  // row 10 blank but flagged occupied
  }
  for (int y = 9; y <= 12; ++y) {
    for (int x = 30; x <= 60; ++x) {
      img.set(x, y, true);  // straddles the stale row
    }
  }
  expectIdenticalBothConnectivities(img);
}

TEST(CcaWordTest, DeterministicOrderingAcrossRepeatedCalls) {
  const BinaryImage img = randomImage(240, 180, 0.25, 99);
  CcaConfig config;
  config.minComponentPixels = 1;
  CcaLabeler cca(config);
  const std::vector<ConnectedComponent> first = cca.label(img);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cca.label(img), first);
  }
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_FALSE(componentScanOrderLess(first[i], first[i - 1]))
        << "output not sorted at " << i;
  }
}

TEST(CcaWordTest, DownsampledPathMatchesReference) {
  std::uint64_t seed = 300;
  for (double density : {0.05, 0.3, 0.8}) {
    Rng rng(seed++);
    CountImage down(40, 60);
    for (int y = 0; y < 60; ++y) {
      for (int x = 0; x < 40; ++x) {
        if (rng.chance(density)) {
          down.at(x, y) = static_cast<std::uint16_t>(rng.uniformInt(1, 18));
        }
      }
    }
    for (Connectivity conn : {Connectivity::kEight, Connectivity::kFour}) {
      CcaConfig config;
      config.connectivity = conn;
      config.minComponentPixels = 2;
      CcaLabeler fast(config);
      CcaLabelerReference reference(config);
      const auto& got = fast.labelDownsampled(down, 6, 3);
      const auto& want = reference.labelDownsampled(down, 6, 3);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].box, want[i].box) << "component " << i;
        EXPECT_EQ(got[i].pixelCount, want[i].pixelCount) << "component " << i;
      }
      EXPECT_EQ(fast.lastOps(), reference.lastOps());
    }
  }
}

TEST(CcaWordTest, ProposalsMirrorReference) {
  const BinaryImage img = randomImage(240, 180, 0.2, 1234);
  CcaLabeler fast(CcaConfig{});
  CcaLabelerReference reference(CcaConfig{});
  const RegionProposals& got = fast.propose(img);
  const RegionProposals& want = reference.propose(img);
  EXPECT_EQ(got, want);
  EXPECT_EQ(fast.lastOps(), reference.lastOps());
}

}  // namespace
}  // namespace ebbiot
