// Differential tests pinning the batched SoA EbmsTracker against the
// scalar deque-based EbmsTrackerReference: bit-identical clusters,
// visible tracks (ids, boxes, velocities, hits) *and* OpCounts (the fast
// path's closed-form accounting must equal the reference's metered
// values) after every packet, across random scenes, merge/prune-heavy
// configs, long runs that cycle the history ring, and empty windows —
// the MedianFilter/CcaLabeler reference-pinning convention of PRs 3-4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/trackers/ebms.hpp"
#include "src/trackers/ebms_reference.hpp"

namespace ebbiot {
namespace {

EventPacket randomWindow(Rng& rng, int frame, int maxEvents,
                         int width = 240, int height = 180) {
  EventPacket p(frame * 66'000, (frame + 1) * 66'000);
  const int count = static_cast<int>(rng.uniformInt(0, maxEvents));
  for (int i = 0; i < count; ++i) {
    p.push(Event{
        static_cast<std::uint16_t>(rng.uniformInt(0, width - 1)),
        static_cast<std::uint16_t>(rng.uniformInt(0, height - 1)),
        rng.chance(0.5) ? Polarity::kOn : Polarity::kOff,
        frame * 66'000 + rng.uniformInt(0, 65'999)});
  }
  p.sortByTime();
  return p;
}

/// A blob of events around a (possibly moving) centre, plus salt noise —
/// drives capture, sampling, merging and velocity estimation.
EventPacket blobWindow(Rng& rng, int frame, float cx, float cy, float halfW,
                       int blobEvents, int noiseEvents) {
  EventPacket p(frame * 66'000, (frame + 1) * 66'000);
  for (int i = 0; i < blobEvents; ++i) {
    const float x = cx + static_cast<float>(rng.uniform(-halfW, halfW));
    const float y = cy + static_cast<float>(rng.uniform(-halfW, halfW));
    const int xi = std::max(0, std::min(239, static_cast<int>(x)));
    const int yi = std::max(0, std::min(179, static_cast<int>(y)));
    p.push(Event{static_cast<std::uint16_t>(xi),
                 static_cast<std::uint16_t>(yi), Polarity::kOn,
                 frame * 66'000 + rng.uniformInt(0, 65'999)});
  }
  for (int i = 0; i < noiseEvents; ++i) {
    p.push(Event{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                 static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                 Polarity::kOn, frame * 66'000 + rng.uniformInt(0, 65'999)});
  }
  p.sortByTime();
  return p;
}

void expectIdenticalState(const EbmsTracker& fast,
                          const EbmsTrackerReference& reference, int frame) {
  ASSERT_EQ(fast.activeCount(), reference.activeCount())
      << "cluster count diverged at frame " << frame;
  EXPECT_EQ(fast.mergeCount(), reference.mergeCount())
      << "merge count diverged at frame " << frame;
  const Tracks fastAll = fast.allClusters();
  const Tracks refAll = reference.allClusters();
  ASSERT_EQ(fastAll.size(), refAll.size());
  for (std::size_t i = 0; i < fastAll.size(); ++i) {
    EXPECT_EQ(fastAll[i], refAll[i])
        << "cluster " << i << " diverged at frame " << frame;
  }
  EXPECT_EQ(fast.visibleTracks(), reference.visibleTracks())
      << "visible tracks diverged at frame " << frame;
  EXPECT_EQ(fast.lastOps(), reference.lastOps())
      << "closed-form ops diverge from metered reference at frame " << frame;
}

void runDifferential(const EbmsConfig& config, std::uint64_t seed,
                     int frames, int maxEvents) {
  EbmsTracker fast(config);
  EbmsTrackerReference reference(config);
  Rng rngA(seed);
  Rng rngB(seed);
  for (int f = 0; f < frames; ++f) {
    const EventPacket pa = randomWindow(rngA, f, maxEvents);
    const EventPacket pb = randomWindow(rngB, f, maxEvents);
    fast.processPacket(pa);
    reference.processPacket(pb);
    expectIdenticalState(fast, reference, f);
  }
}

TEST(EbmsSoaDifferentialTest, RandomScenesDefaultConfig) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    runDifferential(EbmsConfig{}, seed, 25, 250);
  }
}

TEST(EbmsSoaDifferentialTest, MergeHeavyConfig) {
  // Small capture radius seeds many clusters over one scene; a permissive
  // merge threshold then collapses them — exercises the in-place merge
  // pass (slot-keeping, box cache, op metering) hard.
  EbmsConfig config;
  config.captureRadius = 6.0F;
  config.mergeOverlapFraction = 0.05F;
  config.maxClusters = 8;
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    runDifferential(config, seed, 25, 300);
  }
}

TEST(EbmsSoaDifferentialTest, PruneHeavyConfig) {
  // Lifetime shorter than a window: every maintain prunes, repeatedly
  // exercising erase/compaction and re-seeding with fresh ids.
  EbmsConfig config;
  config.clusterLifetime = 30'000;
  for (std::uint64_t seed = 20; seed <= 23; ++seed) {
    runDifferential(config, seed, 25, 150);
  }
}

TEST(EbmsSoaDifferentialTest, FastSamplingCyclesHistoryRing) {
  // A dense sample cadence fills and cycles the velocity ring many times
  // over; the running sums must match the reference's window recompute
  // exactly (including after merges move histories between slots).
  EbmsConfig config;
  config.positionSampleInterval = 500;
  config.velocityWindow = 4;
  config.mixingFactor = 0.2F;
  for (std::uint64_t seed = 30; seed <= 33; ++seed) {
    runDifferential(config, seed, 30, 250);
  }
}

TEST(EbmsSoaDifferentialTest, MovingBlobsLongRun) {
  // Two blobs converging then crossing, over enough frames that history
  // origins sit far behind the live window — velocities must stay
  // bit-identical (shift-invariant integer sums).
  EbmsConfig config;
  config.positionSampleInterval = 3'300;
  EbmsTracker fast(config);
  EbmsTrackerReference reference(config);
  Rng rngA(77);
  Rng rngB(77);
  for (int f = 0; f < 120; ++f) {
    const float ax = 30.0F + 1.5F * static_cast<float>(f);
    const float bx = 210.0F - 1.5F * static_cast<float>(f);
    EventPacket pa(f * 66'000, (f + 1) * 66'000);
    {
      const EventPacket a = blobWindow(rngA, f, ax, 60.0F, 8.0F, 60, 10);
      const EventPacket b = blobWindow(rngA, f, bx, 100.0F, 8.0F, 60, 0);
      pa = mergePackets(a, b);
    }
    EventPacket pb(f * 66'000, (f + 1) * 66'000);
    {
      const EventPacket a = blobWindow(rngB, f, ax, 60.0F, 8.0F, 60, 10);
      const EventPacket b = blobWindow(rngB, f, bx, 100.0F, 8.0F, 60, 0);
      pb = mergePackets(a, b);
    }
    fast.processPacket(pa);
    reference.processPacket(pb);
    expectIdenticalState(fast, reference, f);
  }
}

TEST(EbmsSoaDifferentialTest, EmptyWindowsAndSingleEvents) {
  EbmsConfig config;
  config.clusterLifetime = 100'000;
  EbmsTracker fast(config);
  EbmsTrackerReference reference(config);
  auto both = [&](const EventPacket& p, int frame) {
    fast.processPacket(p);
    reference.processPacket(p);
    expectIdenticalState(fast, reference, frame);
  };
  both(EventPacket(0, 66'000), 0);  // nothing yet: empty maintain
  EventPacket single(66'000, 132'000);
  single.push(Event{120, 90, Polarity::kOn, 70'000});
  both(single, 1);
  both(EventPacket(132'000, 198'000), 2);  // silence: prune countdown
  both(EventPacket(198'000, 264'000), 3);  // cluster pruned here
  EXPECT_EQ(fast.activeCount(), 0);
}

TEST(EbmsSoaDifferentialTest, ProcessEventMatchesReference) {
  // The public single-event entry point must track the reference too
  // (tests drive it directly), including the ops metered so far — the
  // fast path charges its closed form per call outside processPacket.
  EbmsTracker fast{EbmsConfig{}};
  EbmsTrackerReference reference{EbmsConfig{}};
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Event e{static_cast<std::uint16_t>(rng.uniformInt(0, 239)),
                  static_cast<std::uint16_t>(rng.uniformInt(0, 179)),
                  Polarity::kOn, static_cast<TimeUs>(i * 100)};
    fast.processEvent(e);
    reference.processEvent(e);
    EXPECT_EQ(fast.lastOps(), reference.lastOps()) << "event " << i;
  }
  EXPECT_EQ(fast.activeCount(), reference.activeCount());
  EXPECT_EQ(fast.allClusters(), reference.allClusters());
}

TEST(EbmsSoaDifferentialTest, InterleavedBlobsOverlappedChains) {
  // Eight well-separated blobs at CLmax = 8, events interleaved in time
  // across all of them: the grouped path resolves nearly every event to
  // a distinct chain up front, so this run lives almost entirely in the
  // overlapped phase-B replay — which must stay bit-identical, clusters
  // and ops alike.
  EbmsConfig config;
  config.maxClusters = 8;
  EbmsTracker fast(config);
  EbmsTrackerReference reference(config);
  const float cxs[] = {30, 120, 210, 30, 120, 210, 75, 165};
  const float cys[] = {30, 30, 30, 150, 150, 150, 90, 90};
  Rng rngA(41);
  Rng rngB(41);
  auto window = [&](Rng& rng, int f) {
    EventPacket p(f * 66'000, (f + 1) * 66'000);
    for (int i = 0; i < 150; ++i) {
      for (int b = 0; b < 8; ++b) {  // round-robin: maximal interleave
        const float x = cxs[b] + static_cast<float>(rng.uniform(-6.0, 6.0));
        const float y = cys[b] + static_cast<float>(rng.uniform(-6.0, 6.0));
        p.push(Event{
            static_cast<std::uint16_t>(std::clamp(static_cast<int>(x), 0, 239)),
            static_cast<std::uint16_t>(std::clamp(static_cast<int>(y), 0, 179)),
            Polarity::kOn,
            f * 66'000 + static_cast<TimeUs>(i) * 50 + b});
      }
    }
    return p;
  };
  for (int f = 0; f < 12; ++f) {
    fast.processPacket(window(rngA, f));
    reference.processPacket(window(rngB, f));
    expectIdenticalState(fast, reference, f);
  }
}

TEST(EbmsSoaDifferentialTest, MarginalRadiusEventsFlushGroups) {
  // Events placed right at the capture-radius boundary of two nearby
  // clusters: neither definitely-in nor definitely-out under the group
  // snapshot, so the grouped path must flush and replay them through
  // the exact scalar step — any admission slip shows up as a cluster or
  // ops divergence.
  EbmsConfig config;
  config.maxClusters = 8;
  config.captureRadius = 20.0F;
  config.mixingFactor = 0.1F;  // fast drift: stresses the budget bound
  EbmsTracker fast(config);
  EbmsTrackerReference reference(config);
  Rng rngA(52);
  Rng rngB(52);
  auto window = [&](Rng& rng, int f) {
    EventPacket p(f * 66'000, (f + 1) * 66'000);
    for (int i = 0; i < 400; ++i) {
      // Two anchors 45 px apart; events sprayed in the band between and
      // around them, many near |d| ~ radius of both.
      const float base = rng.chance(0.5) ? 90.0F : 135.0F;
      const float x = base + static_cast<float>(rng.uniform(-22.0, 22.0));
      const float y = 90.0F + static_cast<float>(rng.uniform(-22.0, 22.0));
      p.push(Event{
          static_cast<std::uint16_t>(std::clamp(static_cast<int>(x), 0, 239)),
          static_cast<std::uint16_t>(std::clamp(static_cast<int>(y), 0, 179)),
          Polarity::kOn, f * 66'000 + static_cast<TimeUs>(i) * 160});
    }
    return p;
  };
  for (int f = 0; f < 15; ++f) {
    fast.processPacket(window(rngA, f));
    reference.processPacket(window(rngB, f));
    expectIdenticalState(fast, reference, f);
  }
}

TEST(EbmsSoaDifferentialTest, MidBurstSeedsFlushGroups) {
  // A new blob igniting mid-window while existing chains are being
  // grouped: the first unassigned event must flush the group, seed via
  // the scalar path, and the freshly seeded cluster must start
  // capturing within the same packet — all bit-identical.
  EbmsConfig config;
  config.maxClusters = 8;
  EbmsTracker fast(config);
  EbmsTrackerReference reference(config);
  Rng rngA(63);
  Rng rngB(63);
  auto window = [&](Rng& rng, int f) {
    EventPacket p(f * 66'000, (f + 1) * 66'000);
    const float nx = 20.0F + 25.0F * static_cast<float>(f % 8);
    for (int i = 0; i < 300; ++i) {
      float x = 60.0F;
      float y = 60.0F;
      if (i >= 120 && rng.chance(0.5)) {
        x = nx;  // the igniting blob, absent for the first 120 events
        y = 140.0F;
      }
      x += static_cast<float>(rng.uniform(-7.0, 7.0));
      y += static_cast<float>(rng.uniform(-7.0, 7.0));
      p.push(Event{
          static_cast<std::uint16_t>(std::clamp(static_cast<int>(x), 0, 239)),
          static_cast<std::uint16_t>(std::clamp(static_cast<int>(y), 0, 179)),
          Polarity::kOn, f * 66'000 + static_cast<TimeUs>(i) * 200});
    }
    return p;
  };
  for (int f = 0; f < 16; ++f) {
    fast.processPacket(window(rngA, f));
    reference.processPacket(window(rngB, f));
    expectIdenticalState(fast, reference, f);
  }
}

TEST(EbmsSoaDifferentialTest, IntoAccessorsMatchByValueAccessors) {
  EbmsTracker tracker{EbmsConfig{}};
  Rng rng(9);
  tracker.processPacket(randomWindow(rng, 0, 400));
  Tracks visible;
  Tracks all;
  tracker.visibleTracksInto(visible);
  tracker.allClustersInto(all);
  EXPECT_EQ(visible, tracker.visibleTracks());
  EXPECT_EQ(all, tracker.allClusters());
  // Reused vectors are cleared, not appended to.
  tracker.visibleTracksInto(visible);
  EXPECT_EQ(visible, tracker.visibleTracks());
}

}  // namespace
}  // namespace ebbiot
