#include "src/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

/// Latched packets for a scripted car crossing the frame.
class CarFixture {
 public:
  CarFixture()
      : scene_(240, 180) {
    scene_.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0},
                     0, secondsToUs(10.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.3;
    config.seed = 21;
    synth_ = std::make_unique<FastEventSynth>(scene_, config);
  }

  EventPacket nextStream() { return synth_->nextWindow(kDefaultFramePeriodUs); }
  EventPacket nextLatched() {
    return latchReadout(nextStream(), 240, 180);
  }
  const ScriptedScene& scene() const { return scene_; }

 private:
  ScriptedScene scene_;
  std::unique_ptr<FastEventSynth> synth_;
};

TEST(EbbiotPipelineTest, TracksScriptedCar) {
  CarFixture fix;
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  Tracks tracks;
  for (int f = 0; f < 20; ++f) {
    tracks = pipeline.processWindow(fix.nextLatched());
  }
  ASSERT_GE(tracks.size(), 1U);
  // The car at t ~= 20*66 ms is near x = 10 + 60*1.32 = 89.
  const BBox carBox{10.0F + 60.0F * 1.32F, 60, 48, 22};
  EXPECT_GT(iou(tracks[0].box, carBox), 0.3F);
}

TEST(EbbiotPipelineTest, IntermediatesPopulated) {
  CarFixture fix;
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  (void)pipeline.processWindow(fix.nextLatched());
  EXPECT_GT(pipeline.lastEbbi().popcount(), 0U);
  // Median filtering strictly reduces or keeps the pixel count on noisy
  // frames.
  EXPECT_LE(pipeline.lastFiltered().popcount(),
            pipeline.lastEbbi().popcount());
}

TEST(EbbiotPipelineTest, StageOpsPlausibleAgainstModels) {
  CarFixture fix;
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  for (int f = 0; f < 5; ++f) {
    (void)pipeline.processWindow(fix.nextLatched());
  }
  const StageOps& ops = pipeline.stageOps();
  // Median filter: exactly Eq. (1)'s fixed 2*A*B compute floor (majority
  // compare + write per pixel), activity-independent; the ~p^2*A*B patch
  // fetches land in memReads (border patches clamp smaller).
  EXPECT_EQ(ops.frontEnd.medianFilter.total(), 2U * 240U * 180U);
  EXPECT_GT(ops.frontEnd.medianFilter.memReads, 8U * 240U * 180U);
  EXPECT_LT(ops.frontEnd.medianFilter.memReads, 9U * 240U * 180U);
  // RPN: near A*B + 2*A*B/18.
  EXPECT_GT(ops.frontEnd.rpn.total(), 45'000U);
  EXPECT_LT(ops.frontEnd.rpn.total(), 55'000U);
  // Tracker: hundreds of ops, not thousands (Eq. (6) order).
  EXPECT_LT(ops.tracker.total(), 5'000U);
}

TEST(EbbiotPipelineTest, CcaRpnVariantAlsoTracks) {
  CarFixture fix;
  EbbiotPipelineConfig config;
  config.rpnKind = RpnKind::kCca;
  config.cca.minComponentPixels = 6;
  EbbiotPipeline pipeline(config);
  Tracks tracks;
  for (int f = 0; f < 20; ++f) {
    tracks = pipeline.processWindow(fix.nextLatched());
  }
  ASSERT_GE(tracks.size(), 1U);
  const BBox carBox{10.0F + 60.0F * 1.32F, 60, 48, 22};
  EXPECT_GT(iou(tracks[0].box, carBox), 0.3F);
}

TEST(KalmanPipelineTest, TracksScriptedCar) {
  CarFixture fix;
  KalmanPipeline pipeline{KalmanPipelineConfig{}};
  Tracks tracks;
  for (int f = 0; f < 20; ++f) {
    tracks = pipeline.processWindow(fix.nextLatched());
  }
  ASSERT_GE(tracks.size(), 1U);
  const BBox carBox{10.0F + 60.0F * 1.32F, 60, 48, 22};
  EXPECT_GT(iou(tracks[0].box, carBox), 0.25F);
}

TEST(EbmsPipelineTest, TracksScriptedCarFromStream) {
  CarFixture fix;
  EbmsPipeline pipeline{EbmsPipelineConfig{}};
  Tracks tracks;
  for (int f = 0; f < 20; ++f) {
    tracks = pipeline.processWindow(fix.nextStream());
  }
  ASSERT_GE(tracks.size(), 1U);
  // EBMS boxes are centroid+extent estimates; demand centre proximity
  // rather than tight IoU.
  const BBox carBox{10.0F + 60.0F * 1.32F, 60, 48, 22};
  const Vec2f c = tracks[0].box.center();
  const Vec2f truth = carBox.center();
  EXPECT_LT((c - truth).norm(), 25.0F);
}

TEST(EbmsPipelineTest, NnFilterReducesEventCount) {
  CarFixture fix;
  EbmsPipeline pipeline{EbmsPipelineConfig{}};
  const EventPacket stream = fix.nextStream();
  (void)pipeline.processWindow(stream);
  EXPECT_LT(pipeline.lastFilteredEventCount(), stream.size());
  EXPECT_GT(pipeline.lastFilteredEventCount(), 0U);
}

TEST(EbmsPipelineTest, OpsDominatedByPerEventWork) {
  CarFixture fix;
  EbmsPipeline pipeline{EbmsPipelineConfig{}};
  (void)pipeline.processWindow(fix.nextStream());
  const EbmsStageOps& ops = pipeline.stageOps();
  EXPECT_GT(ops.nnFilter.total(), 0U);
  EXPECT_GT(ops.ebms.total(), 0U);
}

TEST(EbmsPipelineTest, OptionalRefractoryStageThinsTheStream) {
  // With the refractory stage enabled, the NN filter sees at most one
  // event per pixel per period — fewer (never more) events than the
  // bare pipeline — while the default config keeps the old shape.
  CarFixture bareFix;
  CarFixture refrFix;
  EbmsPipeline bare{EbmsPipelineConfig{}};
  EbmsPipelineConfig withRefractory;
  withRefractory.refractoryPeriod = 20'000;
  EbmsPipeline refr{withRefractory};
  for (int f = 0; f < 5; ++f) {
    (void)bare.processWindow(bareFix.nextStream());
    (void)refr.processWindow(refrFix.nextStream());
    EXPECT_LE(refr.stageOps().nnFilter.total(),
              bare.stageOps().nnFilter.total())
        << "frame " << f;
  }
  // Snapshot round-trip carries the refractory surface along.
  auto snap = refr.makeSnapshot();
  ASSERT_TRUE(refr.saveState(*snap));
  EXPECT_TRUE(refr.restoreState(*snap));
  // A refractory-less pipeline refuses a refractory-ful snapshot.
  EXPECT_FALSE(bare.restoreState(*snap));
}

TEST(PipelineInterfaceTest, AllThreePipelinesDriveUniformly) {
  // The three paper pipelines behind one vtable: names, input domains,
  // and processWindow all reachable through Pipeline*.
  CarFixture fix;
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  pipelines.push_back(
      std::make_unique<EbbiotPipeline>(EbbiotPipelineConfig{}));
  pipelines.push_back(
      std::make_unique<KalmanPipeline>(KalmanPipelineConfig{}));
  pipelines.push_back(std::make_unique<EbmsPipeline>(EbmsPipelineConfig{}));
  EXPECT_EQ(pipelines[0]->name(), "EBBIOT");
  EXPECT_EQ(pipelines[1]->name(), "EBBI+KF");
  EXPECT_EQ(pipelines[2]->name(), "EBMS");
  EXPECT_EQ(pipelines[0]->inputDomain(), InputDomain::kLatchedFrame);
  EXPECT_EQ(pipelines[1]->inputDomain(), InputDomain::kLatchedFrame);
  EXPECT_EQ(pipelines[2]->inputDomain(), InputDomain::kEventStream);

  for (int f = 0; f < 5; ++f) {
    const EventPacket stream = fix.nextStream();
    const EventPacket latched = latchReadout(stream, 240, 180);
    for (auto& p : pipelines) {
      const EventPacket& input =
          p->inputDomain() == InputDomain::kLatchedFrame ? latched : stream;
      (void)p->processWindow(input);
      EXPECT_GT(p->lastOps().total(), 0U) << p->name();
    }
  }
  // Only the event-domain pipeline reports a filtered event count.
  EXPECT_EQ(pipelines[0]->lastFilteredEventCount(), 0U);
  EXPECT_GT(pipelines[2]->lastFilteredEventCount(), 0U);
}

TEST(PipelineInterfaceTest, CustomNameOverridesDefault) {
  EbbiotPipelineConfig config;
  config.rpnKind = RpnKind::kCca;
  EbbiotPipeline pipeline(config, "EBBIOT-cca");
  EXPECT_EQ(pipeline.name(), "EBBIOT-cca");
}

TEST(PipelineComparisonTest, EbbiotCheaperThanEbmsPerFrameWhenBusy) {
  // The measured Fig. 5 direction: at the paper's operating point (a busy
  // junction, thousands of events per frame) the event-domain chain costs
  // more ops per frame than the whole EBBIOT chain.  EBBIOT's cost is
  // frame-dominated (~constant); the EBMS chain's scales with event rate.
  auto makeBusyScene = [](ScriptedScene& scene) {
    scene.addLinear(ObjectClass::kBus, BBox{-60, 40, 120, 38}, Vec2f{45, 0},
                    0, secondsToUs(20.0));
    scene.addLinear(ObjectClass::kBus, BBox{240, 85, 120, 38},
                    Vec2f{-40, 0}, 0, secondsToUs(20.0));
    scene.addLinear(ObjectClass::kCar, BBox{-48, 130, 48, 22}, Vec2f{70, 0},
                    0, secondsToUs(20.0));
  };
  EventSynthConfig synthConfig;
  synthConfig.backgroundActivityHz = 1.0;
  synthConfig.seed = 77;

  ScriptedScene sceneA(240, 180);
  makeBusyScene(sceneA);
  FastEventSynth synthA(sceneA, synthConfig);
  EbbiotPipeline ours{EbbiotPipelineConfig{}};
  std::uint64_t oursOps = 0;

  ScriptedScene sceneB(240, 180);
  makeBusyScene(sceneB);
  FastEventSynth synthB(sceneB, synthConfig);
  EbmsPipeline theirs{EbmsPipelineConfig{}};
  std::uint64_t theirsOps = 0;

  for (int f = 0; f < 30; ++f) {
    const EventPacket stream = synthA.nextWindow(kDefaultFramePeriodUs);
    (void)ours.processWindow(latchReadout(stream, 240, 180));
    oursOps += ours.lastOps().total();
    (void)theirs.processWindow(synthB.nextWindow(kDefaultFramePeriodUs));
    theirsOps += theirs.lastOps().total();
  }
  EXPECT_LT(oursOps, theirsOps);
}

}  // namespace
}  // namespace ebbiot
