#include "src/detect/cca.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

void fillBlock(BinaryImage& img, int x0, int y0, int w, int h) {
  for (int y = y0; y < y0 + h; ++y) {
    for (int x = x0; x < x0 + w; ++x) {
      img.set(x, y, true);
    }
  }
}

/// Reference flood-fill labeller for the property test.
std::vector<ConnectedComponent> floodFillReference(const BinaryImage& img,
                                                   Connectivity conn,
                                                   std::size_t minPixels) {
  const int w = img.width();
  const int h = img.height();
  std::vector<bool> visited(static_cast<std::size_t>(w) * h, false);
  std::vector<ConnectedComponent> out;
  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      if (!img.get(sx, sy) || visited[static_cast<std::size_t>(sy) * w + sx]) {
        continue;
      }
      int minX = sx;
      int maxX = sx;
      int minY = sy;
      int maxY = sy;
      std::size_t count = 0;
      std::queue<std::pair<int, int>> q;
      q.emplace(sx, sy);
      visited[static_cast<std::size_t>(sy) * w + sx] = true;
      while (!q.empty()) {
        const auto [x, y] = q.front();
        q.pop();
        ++count;
        minX = std::min(minX, x);
        maxX = std::max(maxX, x);
        minY = std::min(minY, y);
        maxY = std::max(maxY, y);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) {
              continue;
            }
            if (conn == Connectivity::kFour && dx != 0 && dy != 0) {
              continue;
            }
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || nx >= w || ny < 0 || ny >= h) {
              continue;
            }
            if (!img.get(nx, ny) ||
                visited[static_cast<std::size_t>(ny) * w + nx]) {
              continue;
            }
            visited[static_cast<std::size_t>(ny) * w + nx] = true;
            q.emplace(nx, ny);
          }
        }
      }
      if (count >= minPixels) {
        out.push_back(ConnectedComponent{
            BBox{static_cast<float>(minX), static_cast<float>(minY),
                 static_cast<float>(maxX - minX + 1),
                 static_cast<float>(maxY - minY + 1)},
            count});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectedComponent& a, const ConnectedComponent& b) {
              if (a.box.y != b.box.y) {
                return a.box.y < b.box.y;
              }
              return a.box.x < b.box.x;
            });
  return out;
}

TEST(CcaTest, EmptyImageNoComponents) {
  CcaLabeler cca(CcaConfig{});
  const BinaryImage img(64, 64);
  EXPECT_TRUE(cca.label(img).empty());
}

TEST(CcaTest, SingleBlockOneComponent) {
  CcaLabeler cca(CcaConfig{});
  BinaryImage img(64, 64);
  fillBlock(img, 10, 10, 8, 6);
  const auto comps = cca.label(img);
  ASSERT_EQ(comps.size(), 1U);
  EXPECT_EQ(comps[0].pixelCount, 48U);
  EXPECT_EQ(comps[0].box, (BBox{10, 10, 8, 6}));
}

TEST(CcaTest, TwoBlocksTwoComponents) {
  CcaLabeler cca(CcaConfig{});
  BinaryImage img(64, 64);
  fillBlock(img, 5, 5, 6, 6);
  fillBlock(img, 30, 30, 6, 6);
  EXPECT_EQ(cca.label(img).size(), 2U);
}

TEST(CcaTest, DiagonalTouchJoinsOnlyWithEightConnectivity) {
  BinaryImage img(16, 16);
  img.set(5, 5, true);
  img.set(6, 6, true);
  CcaConfig eight;
  eight.minComponentPixels = 1;
  CcaLabeler ccaEight(eight);
  EXPECT_EQ(ccaEight.label(img).size(), 1U);
  CcaConfig four;
  four.connectivity = Connectivity::kFour;
  four.minComponentPixels = 1;
  CcaLabeler ccaFour(four);
  EXPECT_EQ(ccaFour.label(img).size(), 2U);
}

TEST(CcaTest, UShapeIsOneComponent) {
  // U-shape forces label equivalences to be resolved by union-find.
  BinaryImage img(32, 32);
  fillBlock(img, 5, 5, 3, 12);    // left arm
  fillBlock(img, 15, 5, 3, 12);   // right arm
  fillBlock(img, 5, 5, 13, 3);    // bottom bridge
  CcaConfig config;
  config.minComponentPixels = 1;
  CcaLabeler cca(config);
  const auto comps = cca.label(img);
  ASSERT_EQ(comps.size(), 1U);
  EXPECT_EQ(comps[0].box, (BBox{5, 5, 13, 12}));
}

TEST(CcaTest, MinComponentPixelsFilters) {
  BinaryImage img(32, 32);
  fillBlock(img, 5, 5, 5, 5);    // 25 px
  img.set(20, 20, true);         // 1 px speck
  CcaConfig config;
  config.minComponentPixels = 4;
  CcaLabeler cca(config);
  const auto comps = cca.label(img);
  ASSERT_EQ(comps.size(), 1U);
  EXPECT_EQ(comps[0].pixelCount, 25U);
}

TEST(CcaTest, ProposalsMirrorComponents) {
  CcaLabeler cca(CcaConfig{});
  BinaryImage img(64, 64);
  fillBlock(img, 10, 10, 8, 6);
  const RegionProposals props = cca.propose(img);
  ASSERT_EQ(props.size(), 1U);
  EXPECT_EQ(props[0].box, (BBox{10, 10, 8, 6}));
  EXPECT_EQ(props[0].support, 48U);
}

TEST(CcaTest, DownsampledLabellingScalesBoxes) {
  CountImage down(40, 60);
  down.at(5, 10) = 3;
  down.at(6, 10) = 2;
  CcaConfig config;
  config.minComponentPixels = 1;
  CcaLabeler cca(config);
  const auto comps = cca.labelDownsampled(down, 6, 3);
  ASSERT_EQ(comps.size(), 1U);
  EXPECT_EQ(comps[0].box, (BBox{30, 30, 12, 3}));
  EXPECT_EQ(comps[0].pixelCount, 2U);  // cells, not mass
}

// Property: two-pass union-find agrees exactly with flood fill on random
// images at both connectivities.
struct CcaPropertyCase {
  int seed;
  Connectivity conn;
};

class CcaEquivalenceProperty
    : public ::testing::TestWithParam<CcaPropertyCase> {};

TEST_P(CcaEquivalenceProperty, MatchesFloodFill) {
  const auto [seed, conn] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  BinaryImage img(48, 48);
  // Mixture of blobs and noise for interesting topologies.
  for (int b = 0; b < 5; ++b) {
    const int x0 = static_cast<int>(rng.uniformInt(0, 40));
    const int y0 = static_cast<int>(rng.uniformInt(0, 40));
    fillBlock(img, x0, y0, static_cast<int>(rng.uniformInt(2, 7)),
              static_cast<int>(rng.uniformInt(2, 7)));
  }
  for (int i = 0; i < 120; ++i) {
    img.set(static_cast<int>(rng.uniformInt(0, 47)),
            static_cast<int>(rng.uniformInt(0, 47)), true);
  }
  CcaConfig config;
  config.connectivity = conn;
  config.minComponentPixels = 1;
  CcaLabeler cca(config);
  const auto ours = cca.label(img);
  const auto reference = floodFillReference(img, conn, 1);
  ASSERT_EQ(ours.size(), reference.size());
  for (std::size_t i = 0; i < ours.size(); ++i) {
    EXPECT_EQ(ours[i].box, reference[i].box) << "component " << i;
    EXPECT_EQ(ours[i].pixelCount, reference[i].pixelCount) << "component "
                                                            << i;
  }
}

std::vector<CcaPropertyCase> makeCcaCases() {
  std::vector<CcaPropertyCase> cases;
  for (int seed = 1; seed <= 8; ++seed) {
    cases.push_back({seed, Connectivity::kEight});
    cases.push_back({seed, Connectivity::kFour});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomImages, CcaEquivalenceProperty,
                         ::testing::ValuesIn(makeCcaCases()));

}  // namespace
}  // namespace ebbiot
