#include "src/viz/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(RgbImageTest, FillAndAccess) {
  RgbImage img(8, 4, colors::kWhite);
  EXPECT_EQ(img.at(0, 0), colors::kWhite);
  img.set(3, 2, colors::kTrack);
  EXPECT_EQ(img.at(3, 2), colors::kTrack);
  EXPECT_EQ(img.at(3, 1), colors::kWhite);
}

TEST(RgbImageTest, SensorYUpMapsToRasterTopDown) {
  RgbImage img(4, 4);
  img.set(0, 3, Rgb{9, 9, 9});  // top-left in sensor coords
  // Raster row 0 (top) should hold it: bytes offset 0.
  EXPECT_EQ(img.bytes()[0], 9);
}

TEST(RgbImageTest, OutOfBoundsThrows) {
  RgbImage img(4, 4);
  EXPECT_THROW((void)img.at(4, 0), LogicError);
  EXPECT_THROW(img.set(0, -1, colors::kWhite), LogicError);
}

TEST(RenderEbbiTest, SetPixelsBecomeGray) {
  BinaryImage ebbi(16, 16);
  ebbi.set(5, 5, true);
  const RgbImage img = renderEbbi(ebbi);
  EXPECT_EQ(img.at(5, 5), colors::kEventGray);
  EXPECT_EQ(img.at(6, 5), colors::kBlack);
}

TEST(DrawBoxTest, OutlineOnly) {
  RgbImage img(20, 20);
  drawBox(img, BBox{5, 5, 6, 4}, colors::kTrack);
  EXPECT_EQ(img.at(5, 5), colors::kTrack);    // corner
  EXPECT_EQ(img.at(10, 8), colors::kTrack);   // right edge
  EXPECT_EQ(img.at(7, 7), colors::kBlack);    // interior untouched
}

TEST(DrawBoxTest, ClippedAtFrame) {
  RgbImage img(10, 10);
  drawBox(img, BBox{-5, -5, 30, 30}, colors::kTrack);  // no throw
  EXPECT_EQ(img.at(0, 0), colors::kTrack);
  drawBox(img, BBox{50, 50, 5, 5}, colors::kTrack);    // fully outside
}

TEST(RenderFrameTest, OverlayPriorities) {
  BinaryImage ebbi(40, 40);
  ebbi.set(30, 30, true);  // clear of every overlay outline
  RegionProposals proposals{RegionProposal{BBox{10, 10, 10, 10}, 5}};
  Tracks tracks;
  Track t;
  t.id = 1;
  t.box = BBox{12, 12, 10, 10};
  tracks.push_back(t);
  std::vector<GtBox> gt{GtBox{1, ObjectClass::kCar, BBox{11, 11, 10, 10}}};
  FrameOverlay overlay;
  overlay.proposals = &proposals;
  overlay.tracks = &tracks;
  overlay.groundTruth = &gt;
  const RgbImage img = renderFrame(ebbi, overlay);
  EXPECT_EQ(img.at(30, 30), colors::kEventGray);
  EXPECT_EQ(img.at(10, 10), colors::kProposal);   // proposal corner
  EXPECT_EQ(img.at(11, 11), colors::kGroundTruth);
  EXPECT_EQ(img.at(12, 12), colors::kTrack);      // tracks drawn last
}

TEST(WritePpmTest, HeaderAndPayload) {
  RgbImage img(3, 2, Rgb{1, 2, 3});
  std::ostringstream os;
  writePpm(os, img);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("P6\n3 2\n255\n", 0), 0U);
  EXPECT_EQ(s.size(), 11U + 3U * 2U * 3U);
}

TEST(RenderAsciiTest, EventsAndBoxes) {
  BinaryImage ebbi(80, 48);
  for (int x = 30; x < 40; ++x) {
    for (int y = 20; y < 28; ++y) {
      ebbi.set(x, y, true);
    }
  }
  Tracks tracks;
  Track t;
  t.box = BBox{28, 18, 14, 12};
  tracks.push_back(t);
  FrameOverlay overlay;
  overlay.tracks = &tracks;
  const std::string art = renderAscii(ebbi, overlay, 40, 12);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);
  // 12 rows of 40 chars + newlines.
  EXPECT_EQ(art.size(), 12U * 41U);
}

TEST(RenderAsciiTest, EmptyFrameAllDots) {
  const BinaryImage ebbi(16, 16);
  const std::string art = renderAscii(ebbi, FrameOverlay{}, 8, 4);
  for (char c : art) {
    EXPECT_TRUE(c == '.' || c == '\n');
  }
}

}  // namespace
}  // namespace ebbiot
