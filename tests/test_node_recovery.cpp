// PipelineSink gap-aware tracking recovery: coast-through-gap, blind
// idle coasting, snapshot-restore/reset resync, the per-outage coast
// budget — each pinned bit-identically against a bare Pipeline twin fed
// the equivalent window sequence — plus the drain-latency tail pin
// (a stalled drain must show p99 > p50, not a flat frame-period line).
#include "src/node/pipeline_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/node/node_config.hpp"
#include "src/node/wire_format.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

constexpr int kWidth = 64;
constexpr int kHeight = 48;
constexpr TimeUs kWindow = 10'000;

/// Stream-mode windows of a car crossing a small frame.
std::vector<EventPacket> makeWindows(int count) {
  ScriptedScene scene(kWidth, kHeight);
  scene.addLinear(ObjectClass::kCar, BBox{2, 18, 20, 10}, Vec2f{140, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig config;
  config.backgroundActivityHz = 0.2;
  config.seed = 4242;
  FastEventSynth synth(scene, config);
  std::vector<EventPacket> windows;
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    windows.push_back(synth.nextWindow(kWindow));
  }
  return windows;
}

EbbiotPipelineConfig smallConfig() {
  EbbiotPipelineConfig config;
  config.width = kWidth;
  config.height = kHeight;
  return config;
}

std::unique_ptr<Pipeline> makeSmallEbbiot() {
  return std::make_unique<EbbiotPipeline>(smallConfig());
}

/// Bare-pipeline reference step: latch + process, as the sink does.
Tracks referenceStep(Pipeline& pipeline, const EventPacket& window) {
  if (pipeline.inputDomain() == InputDomain::kLatchedFrame) {
    return pipeline.processWindow(latchReadout(window, kWidth, kHeight));
  }
  return pipeline.processWindow(window);
}

/// Empty window continuing the reference clock (coast step).
Tracks referenceCoast(Pipeline& pipeline, TimeUs tStart) {
  const EventPacket empty(tStart, tStart + kWindow);
  return pipeline.processWindow(empty);
}

TEST(PipelineSinkTest, ContiguousStreamMatchesBarePipeline) {
  const std::vector<EventPacket> windows = makeWindows(24);

  // Frame domain (exercises the in-place latch) and event domain.
  {
    PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, {});
    EbbiotPipeline bare(smallConfig());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                    windows[i].tEnd());
      const Tracks expected = referenceStep(bare, windows[i]);
      EXPECT_TRUE(sink.lastTracks() == expected) << "window " << i;
    }
    EXPECT_EQ(sink.counters().windowsTracked, windows.size());
    EXPECT_EQ(sink.counters().windowsCoasted, 0U);
    EXPECT_EQ(sink.counters().resyncRestores, 0U);
    EXPECT_EQ(sink.counters().resyncResets, 0U);
  }
  {
    PipelineSink sink(std::make_unique<EbmsPipeline>(EbmsPipelineConfig{}),
                      kWidth, kHeight, {});
    EbmsPipeline bare{EbmsPipelineConfig{}};
    for (std::size_t i = 0; i < windows.size(); ++i) {
      sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                    windows[i].tEnd());
      const Tracks expected = referenceStep(bare, windows[i]);
      EXPECT_TRUE(sink.lastTracks() == expected) << "window " << i;
    }
  }
}

TEST(PipelineSinkTest, BridgeableGapCoastsTracks) {
  const std::vector<EventPacket> windows = makeWindows(24);
  PipelineSinkConfig config;
  config.maxCoastWindows = 4;
  PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, config);
  EbbiotPipeline bare(smallConfig());

  // Windows 0..9 contiguous, 10..12 lost, then 13 onward.
  for (std::size_t i = 0; i < 10; ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    (void)referenceStep(bare, windows[i]);
  }
  for (std::size_t i = 13; i < windows.size(); ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
  }
  // The reference bridges the same gap with three empty windows.
  for (int c = 0; c < 3; ++c) {
    (void)referenceCoast(bare, windows[9].tEnd() +
                                   static_cast<TimeUs>(c) * kWindow);
  }
  Tracks expected;
  for (std::size_t i = 13; i < windows.size(); ++i) {
    expected = referenceStep(bare, windows[i]);
  }
  EXPECT_TRUE(sink.lastTracks() == expected);
  EXPECT_EQ(sink.counters().gapsCoasted, 1U);
  EXPECT_EQ(sink.counters().windowsCoasted, 3U);
  EXPECT_EQ(sink.counters().resyncRestores, 0U);
  EXPECT_EQ(sink.counters().resyncResets, 0U);
}

TEST(PipelineSinkTest, IdleCoastKeepsPredictingThenRestoreRollsBack) {
  const std::vector<EventPacket> windows = makeWindows(20);
  PipelineSinkConfig config;
  config.maxCoastWindows = 8;
  config.resync = ResyncPolicy::kRestoreSnapshot;
  PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, config);
  // The twin never sees the outage at all.
  PipelineSink twin(makeSmallEbbiot(), kWidth, kHeight, config);

  for (std::size_t i = 0; i < 10; ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    twin.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
  }
  const Tracks beforeOutage = sink.lastTracks();
  ASSERT_FALSE(beforeOutage.empty());

  // Sensor goes silent: blind coasting keeps reporting predicted tracks
  // (the car keeps moving on its velocity model).
  ASSERT_TRUE(sink.coastIdle());
  ASSERT_TRUE(sink.coastIdle());
  ASSERT_TRUE(sink.coastIdle());
  EXPECT_EQ(sink.counters().idleCoastWindows, 3U);
  ASSERT_FALSE(sink.lastTracks().empty());
  EXPECT_FALSE(sink.lastTracks() == beforeOutage);  // predictions moved

  // The stream resumes in-sequence: the blind predictions are rolled
  // back to the last observed state, so from here on the sink is
  // bit-identical to the twin that never idled.
  for (std::size_t i = 10; i < windows.size(); ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    twin.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    EXPECT_TRUE(sink.lastTracks() == twin.lastTracks()) << "window " << i;
  }
  EXPECT_EQ(sink.counters().resyncRestores, 1U);
  EXPECT_EQ(sink.counters().resyncResets, 0U);
}

TEST(PipelineSinkTest, UnbridgeableGapRestoresLastObservedState) {
  const std::vector<EventPacket> windows = makeWindows(30);
  PipelineSinkConfig config;
  config.maxCoastWindows = 4;
  config.resync = ResyncPolicy::kRestoreSnapshot;
  PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, config);
  EbbiotPipeline bare(smallConfig());

  for (std::size_t i = 0; i < 10; ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    (void)referenceStep(bare, windows[i]);
  }
  // 15 windows lost — beyond the coast budget.  kRestoreSnapshot keeps
  // the last observed state (no coast damage) and continues directly.
  Tracks expected;
  for (std::size_t i = 25; i < windows.size(); ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    expected = referenceStep(bare, windows[i]);
    EXPECT_TRUE(sink.lastTracks() == expected) << "window " << i;
  }
  EXPECT_EQ(sink.counters().resyncRestores, 1U);
  EXPECT_EQ(sink.counters().windowsCoasted, 0U);
}

TEST(PipelineSinkTest, ResetPolicyStartsCleanOnResync) {
  const std::vector<EventPacket> windows = makeWindows(30);
  PipelineSinkConfig config;
  config.maxCoastWindows = 4;
  config.resync = ResyncPolicy::kReset;
  PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, config);

  for (std::size_t i = 0; i < 10; ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
  }
  // A fresh pipeline sees only the post-gap stream.
  EbbiotPipeline fresh(smallConfig());
  Tracks expected;
  for (std::size_t i = 25; i < windows.size(); ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i),
                  windows[i].tEnd());
    expected = referenceStep(fresh, windows[i]);
    EXPECT_TRUE(sink.lastTracks() == expected) << "window " << i;
  }
  EXPECT_EQ(sink.counters().resyncResets, 1U);
  EXPECT_EQ(sink.counters().resyncRestores, 0U);
}

TEST(PipelineSinkTest, BackwardSeqIsARebasedStreamResync) {
  const std::vector<EventPacket> windows = makeWindows(20);
  PipelineSinkConfig config;
  config.resync = ResyncPolicy::kRestoreSnapshot;
  PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, config);

  // Stream runs at seq 100..109, then the sensor reboots into a fresh
  // sequence space starting at 3 (watchdog re-adopt downstream of the
  // session) — the sink must resync, not interpret 100 -> 3 as a gap.
  for (std::size_t i = 0; i < 10; ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(100 + i),
                  windows[i].tEnd());
  }
  for (std::size_t i = 10; i < windows.size(); ++i) {
    sink.onWindow(windows[i], static_cast<std::uint32_t>(i - 7),
                  windows[i].tEnd());
  }
  EXPECT_EQ(sink.counters().resyncRestores, 1U);
  EXPECT_EQ(sink.counters().windowsTracked, windows.size());
}

TEST(PipelineSinkTest, IdleCoastBudgetIsPerOutage) {
  const std::vector<EventPacket> windows = makeWindows(8);
  PipelineSinkConfig config;
  config.maxCoastWindows = 2;
  PipelineSink sink(makeSmallEbbiot(), kWidth, kHeight, config);

  // Not primed yet: nothing to coast from.
  EXPECT_FALSE(sink.coastIdle());

  sink.onWindow(windows[0], 0, windows[0].tEnd());
  EXPECT_TRUE(sink.coastIdle());
  EXPECT_TRUE(sink.coastIdle());
  EXPECT_FALSE(sink.coastIdle());  // budget spent for this outage

  // A real window closes the outage and re-arms the budget.
  sink.onWindow(windows[1], 1, windows[1].tEnd());
  EXPECT_TRUE(sink.coastIdle());
  EXPECT_EQ(sink.counters().idleCoastWindows, 3U);
}

// ---- drain-latency tail (satellite: percentiles must not be flat) ----

TEST(SessionLatencyTailTest, StalledDrainShowsTailAboveMedian) {
  NodeConfig config;
  config.width = kWidth;
  config.height = kHeight;
  config.queueCapacity = 8;
  config.backpressure = BackpressurePolicy::kRejectPacket;
  config.watchdogTimeoutUs = 10'000'000;
  config.maxEventsPerFrame = 64;
  SensorSession session(3, config);

  struct NullSink final : WindowSink {
    void onWindow(const EventPacket&, std::uint32_t, TimeUs) override {}
  } sink;

  // Six windows ingested over 60 ms while the consumer is stalled; one
  // late drain at t=100 ms then sees six distinct queue waits
  // (40..90 ms), so the latency distribution has a real tail.
  std::vector<std::byte> bytes;
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    const TimeUs t = static_cast<TimeUs>(seq + 1) * kWindow;
    EventPacket window(t, t + kWindow);
    Event e;
    e.x = 1;
    e.y = 1;
    e.p = Polarity::kOn;
    e.t = t;
    window.push(e);
    bytes.clear();
    encodeFrame(bytes, seq, 3, window);
    session.offerBytes(bytes, t);
  }
  ASSERT_EQ(session.drainInto(sink, 100'000), 6U);

  std::vector<TimeUs> samples(session.latencySamples().begin(),
                              session.latencySamples().end());
  ASSERT_EQ(samples.size(), 6U);
  std::sort(samples.begin(), samples.end());
  const TimeUs p50 = samples[samples.size() / 2];
  const TimeUs p99 = samples.back();
  EXPECT_EQ(samples.front(), 40'000);
  EXPECT_EQ(p99, 90'000);
  EXPECT_GT(p99, p50);
}

}  // namespace
}  // namespace ebbiot
