// Wire-format codec, frame parser (reassembly + resync) and timestamp
// unwrapper of the node ingest layer.
#include "src/node/wire_format.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/error.hpp"
#include "src/node/node_config.hpp"

namespace ebbiot {
namespace {

NodeConfig testConfig() {
  NodeConfig config;
  config.width = 64;
  config.height = 48;
  config.maxEventsPerFrame = 64;
  return config;
}

/// Deterministic window: 5 events, seq-dependent content.
EventPacket makeWindow(std::uint32_t i, TimeUs duration = 10'000) {
  const TimeUs tStart = static_cast<TimeUs>(i) * duration;
  EventPacket p(tStart, tStart + duration);
  for (std::uint32_t j = 0; j < 5; ++j) {
    Event e;
    e.x = static_cast<std::uint16_t>((i + 7 * j) % 64);
    e.y = static_cast<std::uint16_t>((3 * i + j) % 48);
    e.p = (i + j) % 2 == 0 ? Polarity::kOn : Polarity::kOff;
    e.t = tStart + static_cast<TimeUs>(j) * 100;
    p.push(e);
  }
  return p;
}

std::vector<std::byte> encodeOne(std::uint32_t seq, std::uint16_t sensor,
                                 const EventPacket& window) {
  std::vector<std::byte> out;
  encodeFrame(out, seq, sensor, window);
  return out;
}

TEST(WireFormatTest, FrameSizeIsClosedForm) {
  EXPECT_EQ(frameSizeBytes(0), 28U);
  EXPECT_EQ(frameSizeBytes(5), 28U + 45U);
  const EventPacket w = makeWindow(3);
  EXPECT_EQ(encodeOne(3, 7, w).size(), frameSizeBytes(w.size()));
}

TEST(WireFormatTest, RoundTripPreservesEverything) {
  const EventPacket w = makeWindow(4);
  const std::vector<std::byte> bytes = encodeOne(4, 7, w);

  FrameParser parser(testConfig());
  parser.offer(bytes);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 4U);
  EXPECT_EQ(frame.sensorId, 7U);
  EXPECT_EQ(frame.windowStart32, static_cast<std::uint32_t>(w.tStart()));
  EXPECT_EQ(frame.durationUs, static_cast<std::uint32_t>(w.duration()));
  ASSERT_EQ(frame.events.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(frame.events[i].x, w[i].x);
    EXPECT_EQ(frame.events[i].y, w[i].y);
    EXPECT_EQ(frame.events[i].p, w[i].p);
    // Decoded t carries the delta from the window start.
    EXPECT_EQ(frame.events[i].t, w[i].t - w.tStart());
  }
  EXPECT_EQ(parser.next(frame), FrameParser::Status::kNeedMore);
  EXPECT_EQ(parser.counters().framesDecoded, 1U);
  EXPECT_EQ(parser.counters().framesCorrupted, 0U);
  EXPECT_EQ(parser.counters().resyncs, 0U);
}

TEST(WireFormatTest, EmptyWindowRoundTrips) {
  const EventPacket w(5'000, 15'000);
  const std::vector<std::byte> bytes = encodeOne(9, 1, w);
  EXPECT_EQ(bytes.size(), frameSizeBytes(0));

  FrameParser parser(testConfig());
  parser.offer(bytes);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 9U);
  EXPECT_TRUE(frame.events.empty());
  EXPECT_EQ(frame.windowStart32, 5'000U);
  EXPECT_EQ(frame.durationUs, 10'000U);
}

TEST(WireFormatTest, ByteAtATimeReassembly) {
  const std::vector<std::byte> bytes = encodeOne(2, 7, makeWindow(2));
  FrameParser parser(testConfig());
  DecodedFrame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.offer({&bytes[i], 1});
    ASSERT_EQ(parser.next(frame), FrameParser::Status::kNeedMore);
  }
  parser.offer({&bytes.back(), 1});
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 2U);
  EXPECT_EQ(parser.counters().framesDecoded, 1U);
  EXPECT_EQ(parser.counters().resyncs, 0U);
}

TEST(WireFormatTest, CrcCorruptionResyncsToNextFrame) {
  std::vector<std::byte> f0 = encodeOne(0, 7, makeWindow(0));
  const std::vector<std::byte> f1 = encodeOne(1, 7, makeWindow(1));
  f0[kFrameWindowStartOffset] ^= std::byte{1};  // CRC now mismatches

  FrameParser parser(testConfig());
  parser.offer(f0);
  parser.offer(f1);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 1U);
  EXPECT_EQ(parser.next(frame), FrameParser::Status::kNeedMore);
  EXPECT_EQ(parser.counters().framesDecoded, 1U);
  EXPECT_EQ(parser.counters().framesCorrupted, 1U);
  EXPECT_EQ(parser.counters().resyncs, 1U);
  // The whole corrupted frame was scanned past, byte by byte.
  EXPECT_EQ(parser.counters().bytesSkipped, f0.size());
}

TEST(WireFormatTest, GarbagePrefixResyncs) {
  const std::vector<std::byte> garbage(37, std::byte{0xAB});
  const std::vector<std::byte> f0 = encodeOne(0, 7, makeWindow(0));
  FrameParser parser(testConfig());
  parser.offer(garbage);
  parser.offer(f0);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 0U);
  EXPECT_EQ(parser.counters().resyncs, 1U);
  EXPECT_EQ(parser.counters().bytesSkipped, garbage.size());
  // Garbage never presented a plausible header, so nothing was counted
  // as a corrupted *frame*.
  EXPECT_EQ(parser.counters().framesCorrupted, 0U);
}

TEST(WireFormatTest, ImplausibleEventCountRejectedWithoutAllocation) {
  // A CRC-valid frame declaring more events than the config admits must
  // be treated as corruption (and never allocated for), not trusted.
  std::vector<std::byte> f0 = encodeOne(0, 7, makeWindow(0));
  f0[kFrameEventCountOffset + 3] = std::byte{0x7F};
  refreshFrameCrc(f0);
  const std::vector<std::byte> f1 = encodeOne(1, 7, makeWindow(1));

  FrameParser parser(testConfig());
  parser.offer(f0);
  parser.offer(f1);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 1U);
  EXPECT_EQ(parser.counters().framesCorrupted, 1U);
  EXPECT_EQ(parser.counters().resyncs, 1U);
}

TEST(WireFormatTest, CrcValidButSemanticallyImpossibleEventsRejected) {
  // Out-of-bounds coordinate with a refreshed CRC: a buggy or hostile
  // sender the checksum alone cannot catch.
  std::vector<std::byte> f0 = encodeOne(0, 7, makeWindow(0));
  f0[kFrameHeaderSize] = std::byte{0xFF};  // event 0 x -> 255 >= width 64
  refreshFrameCrc(f0);
  const std::vector<std::byte> f1 = encodeOne(1, 7, makeWindow(1));

  FrameParser parser(testConfig());
  parser.offer(f0);
  parser.offer(f1);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 1U);
  EXPECT_EQ(parser.counters().framesCorrupted, 1U);

  // Same for a polarity byte outside {1, -1}.
  std::vector<std::byte> f2 = encodeOne(2, 7, makeWindow(2));
  f2[kFrameHeaderSize + 4] = std::byte{3};
  refreshFrameCrc(f2);
  const std::vector<std::byte> f3 = encodeOne(3, 7, makeWindow(3));
  parser.offer(f2);
  parser.offer(f3);
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 3U);
  EXPECT_EQ(parser.counters().framesCorrupted, 2U);
}

TEST(WireFormatTest, ReassemblyBufferIsBounded) {
  NodeConfig config = testConfig();
  config.maxBufferedBytes = config.maxFrameBytes();  // tightest legal cap
  FrameParser parser(config);
  // Offer three frames' worth of junk at once: everything beyond the cap
  // must be dropped and counted, not buffered.
  const std::vector<std::byte> junk(3 * config.maxFrameBytes(),
                                    std::byte{0x00});
  parser.offer(junk);
  EXPECT_EQ(parser.counters().bytesOffered, junk.size());
  EXPECT_EQ(parser.counters().bytesDroppedOverflow,
            junk.size() - config.maxFrameBytes());
  EXPECT_EQ(parser.buffered(), config.maxFrameBytes());
}

TEST(WireFormatTest, SeqAndWindowStartFieldAccessors) {
  std::vector<std::byte> f0 = encodeOne(41, 7, makeWindow(41));
  EXPECT_EQ(frameSeq(f0), 41U);
  EXPECT_EQ(frameWindowStart32(f0), 410'000U);
  setFrameSeq(f0, 99);
  setFrameWindowStart32(f0, 123'456);
  refreshFrameCrc(f0);
  EXPECT_EQ(frameSeq(f0), 99U);
  EXPECT_EQ(frameWindowStart32(f0), 123'456U);

  FrameParser parser(testConfig());
  parser.offer(f0);
  DecodedFrame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.seq, 99U);
  EXPECT_EQ(frame.windowStart32, 123'456U);
}

TEST(WireFormatTest, Crc32MatchesKnownVector) {
  // IEEE CRC32 of "123456789" is the classic check value 0xCBF43926.
  const char* digits = "123456789";
  std::vector<std::byte> bytes;
  for (const char* p = digits; *p != '\0'; ++p) {
    bytes.push_back(static_cast<std::byte>(*p));
  }
  EXPECT_EQ(crc32(bytes), 0xCBF43926U);
}

TEST(WireFormatTest, ParserRejectsInvalidConfig) {
  NodeConfig config = testConfig();
  config.maxEventsPerFrame = 0;
  EXPECT_THROW(FrameParser{config}, ConfigError);
}

TEST(TimestampUnwrapperTest, ForwardStepsAccumulate) {
  TimestampUnwrapper u;
  EXPECT_EQ(u.unwrap(100).t, 100);
  const auto r = u.unwrap(2'000'000'000U);
  EXPECT_EQ(r.t, 2'000'000'000);
  EXPECT_FALSE(r.wrapped);
  EXPECT_FALSE(r.regressed);
}

TEST(TimestampUnwrapperTest, WrapAdvancesEpoch) {
  TimestampUnwrapper u;
  (void)u.unwrap(2'000'000'000U);
  (void)u.unwrap(4'000'000'000U);
  const auto r = u.unwrap(294'967'295U);  // numerically smaller: wrapped
  EXPECT_TRUE(r.wrapped);
  EXPECT_FALSE(r.regressed);
  EXPECT_EQ(r.t, (TimeUs{1} << 32) + 294'967'295);
  // A second lap keeps accumulating.
  (void)u.unwrap(2'400'000'000U);
  const auto r2 = u.unwrap(100U);
  EXPECT_TRUE(r2.wrapped);
  EXPECT_EQ(r2.t, (TimeUs{2} << 32) + 100);
}

TEST(TimestampUnwrapperTest, BackwardStepIsRegression) {
  TimestampUnwrapper u;
  (void)u.unwrap(2'000'000'000U);
  const auto r = u.unwrap(1'999'000'000U);
  EXPECT_TRUE(r.regressed);
  EXPECT_FALSE(r.wrapped);
  EXPECT_EQ(r.t, 1'999'000'000);  // informational position
  // The stream position did not move: the next forward sample unwraps
  // against the *accepted* history.
  EXPECT_EQ(u.unwrap(2'000'000'100U).t, 2'000'000'100);
}

TEST(TimestampUnwrapperTest, ResetForgetsEpoch) {
  TimestampUnwrapper u;
  (void)u.unwrap(2'000'000'000U);
  (void)u.unwrap(4'000'000'000U);
  (void)u.unwrap(294'967'295U);  // epoch 1
  u.reset();
  const auto r = u.unwrap(50U);
  EXPECT_FALSE(r.wrapped);
  EXPECT_FALSE(r.regressed);
  EXPECT_EQ(r.t, 50);
}

}  // namespace
}  // namespace ebbiot
