#include "src/eval/metrics.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

Tracks makeTracks(std::initializer_list<BBox> boxes) {
  Tracks out;
  std::uint32_t id = 1;
  for (const BBox& b : boxes) {
    Track t;
    t.id = id++;
    t.box = b;
    out.push_back(t);
  }
  return out;
}

std::vector<GtBox> makeGt(std::initializer_list<BBox> boxes) {
  std::vector<GtBox> out;
  std::uint32_t id = 1;
  for (const BBox& b : boxes) {
    out.push_back(GtBox{id++, ObjectClass::kCar, b});
  }
  return out;
}

TEST(PrCountsTest, PrecisionRecallF1) {
  PrCounts c;
  c.truePositives = 6;
  c.predictions = 8;
  c.groundTruths = 12;
  EXPECT_DOUBLE_EQ(c.precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_NEAR(c.f1(), 0.6, 1e-12);
}

TEST(PrCountsTest, ZeroDenominators) {
  PrCounts c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(PrSweepAccumulatorTest, AccumulatesPerThreshold) {
  PrSweepAccumulator acc({0.3F, 0.6F});
  // IoU = 0.5 between these: true positive at 0.3, miss at 0.6.
  acc.addFrame(makeTracks({BBox{0, 0, 10, 10}}),
               makeGt({BBox{0, 0, 15, 10}}));  // IoU = 100/150 = 0.67
  EXPECT_EQ(acc.at(0.3F).truePositives, 1U);
  EXPECT_EQ(acc.at(0.6F).truePositives, 1U);
  acc.addFrame(makeTracks({BBox{0, 0, 10, 10}}),
               makeGt({BBox{5, 0, 10, 10}}));  // IoU = 1/3
  EXPECT_EQ(acc.at(0.3F).truePositives, 2U);
  EXPECT_EQ(acc.at(0.6F).truePositives, 1U);
  EXPECT_EQ(acc.at(0.3F).predictions, 2U);
  EXPECT_EQ(acc.at(0.3F).groundTruths, 2U);
}

TEST(PrSweepAccumulatorTest, MonotoneInThreshold) {
  // Raising the IoU threshold can only lose true positives.
  PrSweepAccumulator acc(defaultIouSweep());
  for (int f = 0; f < 10; ++f) {
    acc.addFrame(
        makeTracks({BBox{static_cast<float>(f), 0, 10, 10},
                    BBox{50, 50, 8, 8}}),
        makeGt({BBox{static_cast<float>(f) + 2.0F, 0, 10, 10},
                BBox{52, 50, 8, 8}}));
  }
  const auto& counts = acc.counts();
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i].truePositives, counts[i - 1].truePositives);
    EXPECT_LE(counts[i].precision(), counts[i - 1].precision() + 1e-12);
    EXPECT_LE(counts[i].recall(), counts[i - 1].recall() + 1e-12);
  }
}

TEST(PrSweepAccumulatorTest, UnknownThresholdThrows) {
  PrSweepAccumulator acc({0.5F});
  EXPECT_THROW((void)acc.at(0.25F), LogicError);
}

TEST(PrSweepAccumulatorTest, UnsortedThresholdsRejected) {
  EXPECT_THROW(PrSweepAccumulator({0.5F, 0.3F}), LogicError);
  EXPECT_THROW(PrSweepAccumulator({}), LogicError);
}

TEST(WeightedAverageTest, WeightsByGtTracks) {
  // Recording A: precision 1.0, 30 tracks.  Recording B: precision 0.5,
  // 10 tracks.  Weighted: (30*1 + 10*0.5)/40 = 0.875.
  RecordingResult a;
  a.name = "A";
  a.gtTracks = 30;
  a.thresholds = {0.5F};
  PrCounts ca;
  ca.truePositives = 10;
  ca.predictions = 10;
  ca.groundTruths = 20;
  a.counts = {ca};

  RecordingResult b;
  b.name = "B";
  b.gtTracks = 10;
  b.thresholds = {0.5F};
  PrCounts cb;
  cb.truePositives = 5;
  cb.predictions = 10;
  cb.groundTruths = 10;
  b.counts = {cb};

  const auto avg = weightedAverage({a, b});
  ASSERT_EQ(avg.size(), 1U);
  EXPECT_FLOAT_EQ(avg[0].threshold, 0.5F);
  EXPECT_NEAR(avg[0].precision, 0.875, 1e-12);
  EXPECT_NEAR(avg[0].recall, (30.0 * 0.5 + 10.0 * 0.5) / 40.0, 1e-12);
}

TEST(WeightedAverageTest, MismatchedThresholdsRejected) {
  RecordingResult a;
  a.gtTracks = 1;
  a.thresholds = {0.5F};
  a.counts = {PrCounts{}};
  RecordingResult b;
  b.gtTracks = 1;
  b.thresholds = {0.6F};
  b.counts = {PrCounts{}};
  EXPECT_THROW((void)weightedAverage({a, b}), LogicError);
}

TEST(DefaultIouSweepTest, SortedAndCoversPaperRange) {
  const auto sweep = defaultIouSweep();
  EXPECT_GE(sweep.size(), 5U);
  EXPECT_TRUE(std::is_sorted(sweep.begin(), sweep.end()));
  EXPECT_LE(sweep.front(), 0.1F + 1e-6F);
  EXPECT_GE(sweep.back(), 0.5F);
}

}  // namespace
}  // namespace ebbiot
