// Cross-module integration tests: full recordings through all three
// pipelines, reproducing the *direction* of the paper's findings on
// short synthetic traffic (the full-scale reproduction lives in bench/).
#include <gtest/gtest.h>

#include "src/core/runner.hpp"
#include "src/resource/cost_model.hpp"
#include "src/sim/recording.hpp"

namespace ebbiot {
namespace {

/// ~40 s of SyntheticENG traffic through every pipeline.
class EngShortRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const RecordingSpec spec = scaledRecording(makeSyntheticEng(3), 0.027);
    recording_ = new Recording(openRecording(spec));
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    // Same evaluation protocol as bench_fig4: annotate objects once a
    // tenth is visible so entering vehicles score against their tracks.
    config.gtOptions.minVisibleFraction = 0.10F;
    result_ = new RunResult(runRecording(
        *recording_->source, *recording_->scenario,
        secondsToUs(spec.durationS), config));
  }

  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
    delete recording_;
    recording_ = nullptr;
  }

  static Recording* recording_;
  static RunResult* result_;
};

Recording* EngShortRun::recording_ = nullptr;
RunResult* EngShortRun::result_ = nullptr;

TEST_F(EngShortRun, AllPipelinesProduceTracks) {
  ASSERT_TRUE(result_->ebbiot && result_->kalman && result_->ebms);
  // At the loosest threshold every tracker must find a healthy share of
  // the ground truth.
  EXPECT_GT(result_->ebbiot->counts[0].recall(), 0.4);
  EXPECT_GT(result_->kalman->counts[0].recall(), 0.3);
  EXPECT_GT(result_->ebms->counts[0].recall(), 0.15);
}

TEST_F(EngShortRun, EbbiotBeatsEbmsOnF1) {
  // Fig. 4's headline: EBBIOT outperforms EBMS.  Compare mid-sweep
  // (IoU 0.3 and 0.4) F1.
  for (std::size_t i : {2U, 3U}) {
    const double ours = result_->ebbiot->counts[i].f1();
    const double ebms = result_->ebms->counts[i].f1();
    EXPECT_GT(ours, ebms)
        << "threshold " << result_->thresholds[i];
  }
}

TEST_F(EngShortRun, EbbiotAtLeastMatchesKalman) {
  // Fig. 4: EBBIOT >= KF overall (they share the front end; the OT's
  // fragmentation/occlusion handling is the differentiator).
  double oursSum = 0.0;
  double kfSum = 0.0;
  for (std::size_t i = 0; i < result_->thresholds.size(); ++i) {
    oursSum += result_->ebbiot->counts[i].f1();
    kfSum += result_->kalman->counts[i].f1();
  }
  EXPECT_GE(oursSum, kfSum * 0.95);
}

TEST_F(EngShortRun, EbbiotStablestAcrossThresholds) {
  // "EBBIOT ... shows more stable precision and recall values for varying
  // thresholds": the drop from the loosest to IoU 0.5 is the smallest.
  auto dropOf = [&](const PipelineRunStats& s) {
    const double first = s.counts[0].recall();
    const double mid = s.counts[4].recall();  // threshold 0.5
    return first > 0.0 ? (first - mid) / first : 1.0;
  };
  const double oursDrop = dropOf(*result_->ebbiot);
  const double ebmsDrop = dropOf(*result_->ebms);
  EXPECT_LE(oursDrop, ebmsDrop + 0.05);
}

TEST_F(EngShortRun, MeasuredOpsFollowFig5Structure) {
  // The Fig. 5 *model* comparison at the measured operating point: the
  // EBMS chain (Eq. 2 + Eq. 8) costs a multiple of the EBBIOT chain
  // (Eq. 1 + 5 + 6).  (The measured EBMS ops sit below Eq. (8)'s — our
  // reimplementation is leaner than the jAER-style tracker the paper
  // modelled; see EXPERIMENTS.md — so the model is compared at the
  // measured alpha/beta/NF, and the measured assertions below check the
  // structural claims that are implementation-independent.)
  PipelineCostParams params;
  params.ebbi.alpha = result_->meanAlpha;
  params.nnFilt.alpha = result_->meanAlpha;
  params.nnFilt.beta = std::max(1.0, result_->meanBeta);
  params.ebms.nF = result_->meanFilteredEventsPerFrame;
  const double modelOurs = ebbiotPipelineCost(params).computesPerFrame;
  const double modelEbms = ebmsPipelineCost(params).computesPerFrame;
  EXPECT_GT(modelEbms / modelOurs, 2.0);

  // Measured, implementation-independent structure:
  //  * EBBIOT's cost is frame-dominated — within 25% of its model;
  const double oursOps = result_->ebbiot->meanOpsPerFrame();
  EXPECT_NEAR(oursOps / modelOurs, 1.0, 0.25);
  //  * the front-end-dominated KF pipeline costs about the same as ours;
  const double kfOps = result_->kalman->meanOpsPerFrame();
  EXPECT_NEAR(kfOps / oursOps, 1.0, 0.25);
  //  * the event-domain chain pays at least the NN-filt floor of
  //    2(p^2-1)+Bt = 32 ops per raw event (Eq. 2).
  const double ebmsOps = result_->ebms->meanOpsPerFrame();
  EXPECT_GT(ebmsOps, result_->meanEventsPerFrame * 32.0 * 0.9);
}

TEST_F(EngShortRun, MeasuredAlphaBetaNearModelDefaults) {
  // The cost models assume alpha <= 0.1 and beta ~= 2; the synthetic
  // traffic must actually operate in that regime.
  EXPECT_LT(result_->meanAlpha, 0.1);
  EXPECT_GT(result_->meanAlpha, 0.001);
  EXPECT_GT(result_->meanBeta, 1.0);
  EXPECT_LT(result_->meanBeta, 3.0);
}

TEST(IntegrationTest, Lt4SmallObjectsStillTracked) {
  const RecordingSpec spec = scaledRecording(makeSyntheticLt4(5), 0.03);
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runEbms = false;
  config.runKalman = false;
  // Smaller objects at the 6 mm lens: relax the seed gate.
  config.ebbiot.tracker.minSeedArea = 6.0F;
  const RunResult result =
      runRecording(*rec.source, *rec.scenario, secondsToUs(spec.durationS),
                   config);
  ASSERT_TRUE(result.ebbiot.has_value());
  EXPECT_GT(result.ebbiot->counts[0].recall(), 0.3);
}

TEST(IntegrationTest, RoeSuppressesDistractorFalsePositives) {
  // A fluttering tree with and without a Region of Exclusion.
  auto runWith = [](bool useRoe) {
    ScriptedScene scene(240, 180);
    scene.addLinear(ObjectClass::kCar, BBox{-48, 60, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(12.0));
    EventSynthConfig synthConfig;
    synthConfig.backgroundActivityHz = 0.2;
    synthConfig.seed = 9;
    synthConfig.distractors.push_back(
        DistractorRegion{BBox{190, 130, 40, 40}, 6'000.0});
    FastEventSynth synth(scene, synthConfig);
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.runKalman = false;
    config.runEbms = false;
    if (useRoe) {
      config.ebbiot.tracker.regionsOfExclusion.push_back(
          BBox{185, 125, 50, 50});
    }
    return runRecording(synth, scene, secondsToUs(12.0), config);
  };
  const RunResult without = runWith(false);
  const RunResult with = runWith(true);
  // The ROE strictly improves precision (fewer distractor tracks) without
  // hurting recall.
  const PrCounts& p0 = without.ebbiot->counts[1];
  const PrCounts& p1 = with.ebbiot->counts[1];
  EXPECT_GT(p1.precision(), p0.precision());
  EXPECT_GE(p1.recall() + 0.02, p0.recall());
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto runOnce = [] {
    const RecordingSpec spec = scaledRecording(makeSyntheticEng(11), 0.004);
    Recording rec = openRecording(spec);
    RunnerConfig config = makeDefaultRunnerConfig(240, 180);
    config.runEbms = false;
    return runRecording(*rec.source, *rec.scenario,
                        secondsToUs(spec.durationS), config);
  };
  const RunResult a = runOnce();
  const RunResult b = runOnce();
  EXPECT_EQ(a.streamEvents, b.streamEvents);
  EXPECT_EQ(a.gtBoxes, b.gtBoxes);
  for (std::size_t i = 0; i < a.thresholds.size(); ++i) {
    EXPECT_EQ(a.ebbiot->counts[i].truePositives,
              b.ebbiot->counts[i].truePositives);
    EXPECT_EQ(a.kalman->counts[i].truePositives,
              b.kalman->counts[i].truePositives);
  }
  EXPECT_EQ(a.ebbiot->totalOps, b.ebbiot->totalOps);
}

TEST(IntegrationTest, AnalyticModelsTrackMeasuredOpsWithinFactorTwo) {
  // Eq. (1)+(5)+(6) vs the instrumented pipeline on ENG-like traffic:
  // same order of magnitude (the models are architectural estimates, the
  // measurement is exact).
  const RecordingSpec spec = scaledRecording(makeSyntheticEng(13), 0.004);
  Recording rec = openRecording(spec);
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runEbms = false;
  config.runKalman = false;
  const RunResult result = runRecording(
      *rec.source, *rec.scenario, secondsToUs(spec.durationS), config);
  const double measured = result.ebbiot->meanOpsPerFrame();
  const double model = ebbiotPipelineCost().computesPerFrame;
  EXPECT_GT(measured / model, 0.5);
  EXPECT_LT(measured / model, 2.0);
}

}  // namespace
}  // namespace ebbiot
