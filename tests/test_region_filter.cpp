#include "src/detect/region_filter.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

BinaryImage imageWithBlock(int w, int h, const BBox& block) {
  BinaryImage img(w, h);
  for (int y = static_cast<int>(block.bottom());
       y < static_cast<int>(block.top()); ++y) {
    for (int x = static_cast<int>(block.left());
         x < static_cast<int>(block.right()); ++x) {
      img.set(x, y, true);
    }
  }
  return img;
}

RegionProposal proposalOf(const BBox& box) {
  return RegionProposal{box, static_cast<std::uint64_t>(box.area())};
}

TEST(RegionFilterTest, AcceptsDenseVehicleLikePatch) {
  const BBox car{50, 60, 40, 20};
  const BinaryImage img = imageWithBlock(240, 180, car);
  RegionFilter filter{RegionFilterConfig{}};
  EXPECT_GT(filter.score(img, proposalOf(car)), 0);
  const RegionProposals out = filter.apply(img, {proposalOf(car)});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].box, car);
  EXPECT_EQ(filter.lastRejectedCount(), 0U);
}

TEST(RegionFilterTest, RejectsSparseNoisePatch) {
  // A 12x12 proposal holding a handful of scattered survivors — the
  // distractor class EBBINNOT's classifier removes.
  BinaryImage img(240, 180);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    img.set(100 + static_cast<int>(rng.uniformInt(0, 11)),
            100 + static_cast<int>(rng.uniformInt(0, 11)), true);
  }
  RegionFilter filter{RegionFilterConfig{}};
  const RegionProposal noise = proposalOf(BBox{100, 100, 12, 12});
  EXPECT_LE(filter.score(img, noise), 0);
  const RegionProposals out = filter.apply(img, {noise});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(filter.lastRejectedCount(), 1U);
}

TEST(RegionFilterTest, KeepsOrderAndDropsOnlyRejected) {
  const BBox carA{20, 60, 40, 20};
  const BBox carB{120, 100, 48, 22};
  BinaryImage img = imageWithBlock(240, 180, carA);
  const BinaryImage imgB = imageWithBlock(240, 180, carB);
  img.orWith(imgB);
  img.set(200, 30, true);  // lone survivor inside the noise proposal
  RegionFilter filter{RegionFilterConfig{}};
  const RegionProposals out = filter.apply(
      img,
      {proposalOf(carA), proposalOf(BBox{195, 25, 10, 10}), proposalOf(carB)});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].box, carA);
  EXPECT_EQ(out[1].box, carB);
  EXPECT_EQ(filter.lastRejectedCount(), 1U);
}

TEST(RegionFilterTest, BypassPassesEverythingButStillMeters) {
  BinaryImage img(240, 180);
  img.set(100, 100, true);
  RegionFilterConfig config;
  config.bypass = true;
  RegionFilter filter{config};
  const RegionProposals out =
      filter.apply(img, {proposalOf(BBox{98, 98, 8, 8})});
  EXPECT_EQ(out.size(), 1U);
  EXPECT_GT(filter.lastOps().total(), 0U);  // cost ablations still priced
}

TEST(RegionFilterTest, EmptyBoxesAreDropped) {
  BinaryImage img(240, 180);
  RegionFilter filter{RegionFilterConfig{}};
  const RegionProposals out = filter.apply(img, {proposalOf(BBox{})});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(filter.lastRejectedCount(), 1U);
}

TEST(RegionFilterTest, OpsScaleWithProposalCountNotActivity) {
  const BBox box{50, 60, 32, 16};
  const BinaryImage blank = imageWithBlock(240, 180, BBox{});
  const BinaryImage full = imageWithBlock(240, 180, box);
  RegionFilter filter{RegionFilterConfig{}};
  (void)filter.apply(blank, {proposalOf(box)});
  const OpCounts one = filter.lastOps();
  EXPECT_GT(one.total(), 0U);
  EXPECT_GT(one.memReads, 0U);  // patch fetches + weight fetches
  // Same box over a set patch: identical work (reads are unconditional).
  (void)filter.apply(full, {proposalOf(box)});
  EXPECT_EQ(filter.lastOps(), one);
  // Two proposals: exactly double.
  (void)filter.apply(full, {proposalOf(box), proposalOf(box)});
  const OpCounts two = filter.lastOps();
  EXPECT_EQ(two.multiplies, 2 * one.multiplies);
  EXPECT_EQ(two.adds, 2 * one.adds);
  EXPECT_EQ(two.memReads, 2 * one.memReads);
  // No proposals: the stage is free.
  (void)filter.apply(full, {});
  EXPECT_EQ(filter.lastOps().total(), 0U);
}

TEST(RegionFilterTest, DeterministicAcrossInstancesAndSeeds) {
  const BBox car{50, 60, 40, 20};
  const BinaryImage img = imageWithBlock(240, 180, car);
  RegionFilter a{RegionFilterConfig{}};
  RegionFilter b{RegionFilterConfig{}};
  EXPECT_EQ(a.score(img, proposalOf(car)), b.score(img, proposalOf(car)));
  // The structural gates dominate: a different mixing seed may move the
  // logit but not the decision on a clear-cut patch.
  RegionFilterConfig other;
  other.weightSeed = 0xDEADBEEFU;
  RegionFilter c{other};
  EXPECT_GT(c.score(img, proposalOf(car)), 0);
}

TEST(RegionFilterTest, InvalidConfigRejected) {
  RegionFilterConfig bad;
  bad.patchGrid = 0;
  EXPECT_THROW(RegionFilter{bad}, LogicError);
  RegionFilterConfig bad2;
  bad2.hiddenUnits = 2;
  EXPECT_THROW(RegionFilter{bad2}, LogicError);
  RegionFilterConfig bad3;
  bad3.referenceArea = 0.0F;
  EXPECT_THROW(RegionFilter{bad3}, LogicError);
}

// --- End-to-end: the EBBINNOT-style pipeline still tracks the vehicle.

TEST(RegionFilterPipelineTest, NnFilteredPipelineStillTracksCar) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig synthConfig;
  synthConfig.backgroundActivityHz = 0.3;
  synthConfig.seed = 21;
  FastEventSynth synth(scene, synthConfig);

  EbbiotPipelineConfig config;
  config.regionFilter = RegionFilterConfig{};
  EbbiotPipeline pipeline(config, "EBBINNOT");
  Tracks tracks;
  for (int f = 0; f < 20; ++f) {
    tracks = pipeline.processWindow(
        latchReadout(synth.nextWindow(kDefaultFramePeriodUs), 240, 180));
  }
  ASSERT_GE(tracks.size(), 1U);
  const BBox carBox{10.0F + 60.0F * 1.32F, 60, 48, 22};
  EXPECT_GT(iou(tracks[0].box, carBox), 0.3F);
  // The stage metered its work and it shows up in the pipeline total.
  EXPECT_GT(pipeline.stageOps().regionFilter.total(), 0U);
  EXPECT_EQ(pipeline.stageOps().total().total(),
            pipeline.lastOps().total());
  // Survivors are what the tracker saw.
  EXPECT_LE(pipeline.lastTrackedProposals().size(),
            pipeline.lastProposals().size());
}

TEST(RegionFilterPipelineTest, NoFilterMeansZeroStageOps) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig synthConfig;
  synthConfig.seed = 21;
  FastEventSynth synth(scene, synthConfig);
  EbbiotPipeline pipeline{EbbiotPipelineConfig{}};
  (void)pipeline.processWindow(
      latchReadout(synth.nextWindow(kDefaultFramePeriodUs), 240, 180));
  EXPECT_EQ(pipeline.stageOps().regionFilter, OpCounts{});
  EXPECT_EQ(&pipeline.lastTrackedProposals(), &pipeline.lastProposals());
}

}  // namespace
}  // namespace ebbiot
