#include "src/common/op_counter.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ebbiot {
namespace {

TEST(OpCountsTest, TotalSumsAllCategories) {
  OpCounts c;
  c.compares = 1;
  c.adds = 2;
  c.multiplies = 3;
  c.memWrites = 4;
  EXPECT_EQ(c.total(), 10U);
}

TEST(OpCountsTest, MemReadsTrackedButExcludedFromTotal) {
  // Section II-A ignores reads in the op budget; they still accumulate
  // for the memory-access comparison.
  OpCounts c;
  c.compares = 2;
  c.memWrites = 3;
  c.memReads = 100;
  EXPECT_EQ(c.total(), 5U);
  EXPECT_EQ(c.memAccesses(), 103U);
  OpCounts d;
  d.memReads = 7;
  c += d;
  EXPECT_EQ(c.memReads, 107U);
  EXPECT_NE(c, OpCounts{});
}

TEST(OpCountsTest, PlusEqualsAccumulates) {
  OpCounts a;
  a.adds = 5;
  OpCounts b;
  b.compares = 3;
  b.adds = 2;
  a += b;
  EXPECT_EQ(a.adds, 7U);
  EXPECT_EQ(a.compares, 3U);
}

TEST(OpCountsTest, PlusOperator) {
  OpCounts a;
  a.memWrites = 1;
  OpCounts b;
  b.memWrites = 2;
  EXPECT_EQ((a + b).memWrites, 3U);
}

TEST(OpCountsTest, ResetZeroes) {
  OpCounts a;
  a.adds = 9;
  a.reset();
  EXPECT_EQ(a, OpCounts{});
  EXPECT_EQ(a.total(), 0U);
}

TEST(OpCountsTest, StreamOutputMentionsTotal) {
  OpCounts a;
  a.adds = 2;
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("total=2"), std::string::npos);
}

TEST(FormatKopsTest, RangesAndUnits) {
  EXPECT_EQ(formatKops(500.0), "500 ops");
  EXPECT_EQ(formatKops(125'280.0), "125.3 kops");
  EXPECT_EQ(formatKops(5.6e9), "5600.00 Mops");
}

TEST(FormatBytesTest, RangesAndUnits) {
  EXPECT_EQ(formatBytes(512.0), "512 B");
  EXPECT_EQ(formatBytes(10.8 * 1024.0), "10.80 kB");
  EXPECT_EQ(formatBytes(2.5 * 1024.0 * 1024.0), "2.50 MB");
}

}  // namespace
}  // namespace ebbiot
