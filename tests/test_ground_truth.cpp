#include "src/sim/ground_truth.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

TEST(AnnotateSceneTest, ClipsBoxesToFrame) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{-10, 60, 40, 20}, Vec2f{0, 1}, 0,
                  secondsToUs(10.0));
  const GtFrame frame = annotateScene(scene, secondsToUs(1.0));
  ASSERT_EQ(frame.boxes.size(), 1U);
  EXPECT_FLOAT_EQ(frame.boxes[0].box.x, 0.0F);
  EXPECT_FLOAT_EQ(frame.boxes[0].box.w, 30.0F);
}

TEST(AnnotateSceneTest, BarelyVisibleObjectExcluded) {
  ScriptedScene scene(240, 180);
  // Only 10% of the object inside the frame < default 25% threshold.
  scene.addLinear(ObjectClass::kCar, BBox{-36, 60, 40, 20}, Vec2f{0, 1}, 0,
                  secondsToUs(10.0));
  const GtFrame frame = annotateScene(scene, secondsToUs(1.0));
  EXPECT_TRUE(frame.boxes.empty());
}

TEST(AnnotateSceneTest, VisibilityThresholdConfigurable) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{-36, 60, 40, 20}, Vec2f{0, 1}, 0,
                  secondsToUs(10.0));
  GtOptions options;
  options.minVisibleFraction = 0.05F;
  const GtFrame frame = annotateScene(scene, secondsToUs(1.0), options);
  EXPECT_EQ(frame.boxes.size(), 1U);
}

TEST(AnnotateSceneTest, TinyBoxExcluded) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kHuman, BBox{50, 50, 1.5F, 1.5F},
                  Vec2f{0, 1}, 0, secondsToUs(10.0));
  const GtFrame frame = annotateScene(scene, secondsToUs(1.0));
  EXPECT_TRUE(frame.boxes.empty());
}

TEST(AnnotateSceneTest, KeepsTrackIdAndClass) {
  ScriptedScene scene(240, 180);
  const auto id = scene.addLinear(ObjectClass::kBus, BBox{50, 50, 100, 38},
                                  Vec2f{10, 0}, 0, secondsToUs(10.0));
  const GtFrame frame = annotateScene(scene, secondsToUs(1.0));
  ASSERT_EQ(frame.boxes.size(), 1U);
  EXPECT_EQ(frame.boxes[0].trackId, id);
  EXPECT_EQ(frame.boxes[0].kind, ObjectClass::kBus);
}

TEST(GroundTruthTest, DistinctTracksAndTotalBoxes) {
  GroundTruth gt;
  gt.frames.push_back(GtFrame{
      0, {GtBox{1, ObjectClass::kCar, BBox{0, 0, 5, 5}},
          GtBox{2, ObjectClass::kBus, BBox{10, 10, 5, 5}}}});
  gt.frames.push_back(
      GtFrame{100, {GtBox{1, ObjectClass::kCar, BBox{1, 0, 5, 5}}}});
  EXPECT_EQ(gt.distinctTracks(), 2U);
  EXPECT_EQ(gt.totalBoxes(), 3U);
}

TEST(GroundTruthCsvTest, RoundTrip) {
  GroundTruth gt;
  gt.frames.push_back(GtFrame{
      66'000, {GtBox{1, ObjectClass::kCar, BBox{1.5F, 2.5F, 40, 20}},
               GtBox{2, ObjectClass::kHuman, BBox{100, 90, 8, 20}}}});
  gt.frames.push_back(
      GtFrame{132'000, {GtBox{1, ObjectClass::kCar, BBox{5, 2.5F, 40, 20}}}});
  std::stringstream buffer;
  writeGroundTruthCsv(buffer, gt);
  const GroundTruth back = readGroundTruthCsv(buffer);
  ASSERT_EQ(back.frames.size(), 2U);
  EXPECT_EQ(back.frames[0].t, 66'000);
  ASSERT_EQ(back.frames[0].boxes.size(), 2U);
  EXPECT_EQ(back.frames[0].boxes[0].trackId, 1U);
  EXPECT_EQ(back.frames[0].boxes[1].kind, ObjectClass::kHuman);
  EXPECT_FLOAT_EQ(back.frames[0].boxes[0].box.x, 1.5F);
  EXPECT_EQ(back.frames[1].boxes.size(), 1U);
}

TEST(GroundTruthCsvTest, HeaderValidated) {
  std::stringstream buffer;
  buffer << "wrong,header\n";
  EXPECT_THROW((void)readGroundTruthCsv(buffer), IoError);
}

TEST(GroundTruthCsvTest, UnknownClassRejected) {
  std::stringstream buffer;
  buffer << "t_us,track_id,class,x,y,w,h\n"
         << "0,1,spaceship,0,0,5,5\n";
  EXPECT_THROW((void)readGroundTruthCsv(buffer), IoError);
}

TEST(GroundTruthCsvTest, MalformedRowRejected) {
  std::stringstream buffer;
  buffer << "t_us,track_id,class,x,y,w,h\n"
         << "0,1,car,0,0\n";
  EXPECT_THROW((void)readGroundTruthCsv(buffer), IoError);
}

}  // namespace
}  // namespace ebbiot
