// Differential tests for the word-parallel BinaryImage region scans and
// the word-sliced block-sum downsampler, pinned against scalar per-pixel
// references on random images including frame borders, word boundaries,
// all-set and all-clear frames, and stale-occupancy rows.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/ebbi/binary_image.hpp"
#include "src/ebbi/downsample.hpp"

namespace ebbiot {
namespace {

BinaryImage randomImage(int w, int h, double density, std::uint64_t seed) {
  Rng rng(seed);
  BinaryImage img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rng.chance(density)) {
        img.set(x, y, true);
      }
    }
  }
  return img;
}

// Scalar references: the pre-word-parallel per-pixel formulations.
std::size_t popcountInRegionScalar(const BinaryImage& img,
                                   const BBox& region) {
  const BBox r = clampToFrame(region, img.width(), img.height());
  if (r.empty()) {
    return 0;
  }
  std::size_t n = 0;
  for (int y = static_cast<int>(std::floor(r.bottom()));
       y < static_cast<int>(std::ceil(r.top())); ++y) {
    for (int x = static_cast<int>(std::floor(r.left()));
         x < static_cast<int>(std::ceil(r.right())); ++x) {
      if (img.get(x, y)) {
        ++n;
      }
    }
  }
  return n;
}

CountImage downsampleScalar(const BinaryImage& image, int s1, int s2) {
  const int outW = image.width() / s1;
  const int outH = image.height() / s2;
  CountImage out(outW, outH);
  for (int j = 0; j < outH; ++j) {
    for (int i = 0; i < outW; ++i) {
      std::uint16_t acc = 0;
      for (int n = 0; n < s2; ++n) {
        for (int m = 0; m < s1; ++m) {
          acc = static_cast<std::uint16_t>(
              acc + (image.get(i * s1 + m, j * s2 + n) ? 1 : 0));
        }
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

TEST(WordRegionOpsTest, PopcountInRegionMatchesScalarOnRandomBoxes) {
  Rng rng(42);
  for (int w : {63, 64, 65, 240}) {
    const int h = 90;
    const BinaryImage img = randomImage(w, h, 0.25, 1000 + w);
    for (int trial = 0; trial < 50; ++trial) {
      const float x0 = static_cast<float>(rng.uniform(-10.0, w + 10.0));
      const float y0 = static_cast<float>(rng.uniform(-10.0, h + 10.0));
      const BBox box{x0, y0, static_cast<float>(rng.uniform(0.0, w + 20.0)),
                     static_cast<float>(rng.uniform(0.0, h + 20.0))};
      EXPECT_EQ(img.popcountInRegion(box), popcountInRegionScalar(img, box));
      EXPECT_EQ(img.anySetInRegion(box),
                popcountInRegionScalar(img, box) > 0);
    }
  }
}

TEST(WordRegionOpsTest, RegionOpsOnDegenerateAndFullBoxes) {
  const BinaryImage img = randomImage(240, 180, 0.1, 7);
  const BBox full{0, 0, 240, 180};
  EXPECT_EQ(img.popcountInRegion(full), img.popcount());
  EXPECT_TRUE(img.anySetInRegion(full));
  const BBox empty{10, 10, 0, 5};
  EXPECT_EQ(img.popcountInRegion(empty), 0U);
  EXPECT_FALSE(img.anySetInRegion(empty));
  const BBox outside{300, 300, 20, 20};
  EXPECT_EQ(img.popcountInRegion(outside), 0U);
  // Sub-pixel boxes round outward to the covering pixel rect.
  const BBox subPixel{5.25F, 5.25F, 0.5F, 0.5F};
  EXPECT_EQ(img.popcountInRegion(subPixel),
            popcountInRegionScalar(img, subPixel));
}

TEST(WordRegionOpsTest, AllClearAndAllSetRegions) {
  BinaryImage blank(128, 50);
  EXPECT_EQ(blank.popcountInRegion(BBox{0, 0, 128, 50}), 0U);
  EXPECT_FALSE(blank.anySetInRegion(BBox{0, 0, 128, 50}));
  BinaryImage full(128, 50);
  for (int y = 0; y < 50; ++y) {
    for (int x = 0; x < 128; ++x) {
      full.set(x, y, true);
    }
  }
  EXPECT_EQ(full.popcountInRegion(BBox{63, 10, 2, 2}), 4U);
  EXPECT_EQ(full.popcountInRegion(BBox{0, 0, 128, 50}), 128U * 50U);
}

TEST(WordRegionOpsTest, StaleOccupancyRowsCountAsEmpty) {
  BinaryImage img(100, 40);
  img.set(50, 20, true);
  img.set(50, 20, false);  // row 20 occupancy stays set, pixels are clear
  EXPECT_EQ(img.popcountInRegion(BBox{0, 0, 100, 40}), 0U);
  EXPECT_FALSE(img.anySetInRegion(BBox{40, 15, 20, 10}));
  EXPECT_TRUE(img.boundingBoxOfSetPixels().empty());
}

TEST(WordRegionOpsTest, TightBoundingBoxInRegionMatchesScan) {
  const BinaryImage img = randomImage(130, 60, 0.02, 99);
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const int x0 = static_cast<int>(rng.uniformInt(0, 129));
    const int y0 = static_cast<int>(rng.uniformInt(0, 59));
    const int x1 = static_cast<int>(rng.uniformInt(x0, 130));
    const int y1 = static_cast<int>(rng.uniformInt(y0, 60));
    int minX = 130;
    int maxX = -1;
    int minY = 60;
    int maxY = -1;
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        if (img.get(x, y)) {
          minX = std::min(minX, x);
          maxX = std::max(maxX, x);
          minY = std::min(minY, y);
          maxY = std::max(maxY, y);
        }
      }
    }
    const BBox got = img.tightBoundingBoxInRegion(x0, y0, x1, y1);
    if (maxX < 0) {
      EXPECT_TRUE(got.empty());
    } else {
      EXPECT_EQ(got, (BBox{static_cast<float>(minX), static_cast<float>(minY),
                           static_cast<float>(maxX - minX + 1),
                           static_cast<float>(maxY - minY + 1)}));
    }
  }
}

TEST(WordRowAccessTest, WordRowExposesSetBitsAndZeroTail) {
  BinaryImage img(70, 3);  // ragged tail: 6 valid bits in word 1
  img.set(0, 1, true);
  img.set(63, 1, true);
  img.set(64, 1, true);
  img.set(69, 1, true);
  ASSERT_EQ(img.wordsPerRow(), 2U);
  const std::uint64_t* row = img.wordRow(1);
  EXPECT_EQ(row[0], (std::uint64_t{1} << 63) | 1U);
  EXPECT_EQ(row[1], (std::uint64_t{1} << 5) | 1U);
  EXPECT_EQ(img.tailMask(), (std::uint64_t{1} << 6) - 1);
  // Blank rows read as zero words.
  EXPECT_EQ(img.wordRow(0)[0], 0U);
  EXPECT_FALSE(img.rowMayHaveSetPixels(0));
  EXPECT_TRUE(img.rowMayHaveSetPixels(1));
}

TEST(WordRowAccessTest, MutableWordRowMarksOccupancy) {
  BinaryImage img(64, 4);
  EXPECT_FALSE(img.rowMayHaveSetPixels(2));
  std::uint64_t* row = img.mutableWordRow(2);
  row[0] = 0b1010;
  EXPECT_TRUE(img.rowMayHaveSetPixels(2));
  EXPECT_TRUE(img.get(1, 2));
  EXPECT_TRUE(img.get(3, 2));
  EXPECT_EQ(img.popcount(), 2U);
}

TEST(WordRowAccessTest, EqualityIgnoresOccupancyCache) {
  BinaryImage a(50, 20);
  a.set(10, 10, true);
  a.set(10, 10, false);  // stale occupancy on row 10
  const BinaryImage b(50, 20);
  EXPECT_TRUE(a == b);
}

TEST(WordDownsampleTest, MatchesScalarAcrossFactorsAndShapes) {
  std::uint64_t seed = 2000;
  for (double density : {0.0, 0.1, 0.5, 1.0}) {
    for (int w : {64, 65, 66, 128, 240}) {
      for (const auto& [s1, s2] : {std::pair{6, 3}, std::pair{3, 3},
                                   std::pair{12, 6}, std::pair{1, 1},
                                   std::pair{64, 2}, std::pair{7, 5}}) {
        if (w / s1 == 0) {
          continue;
        }
        const BinaryImage img = randomImage(w, 45, density, seed++);
        Downsampler down(s1, s2);
        EXPECT_EQ(down.downsample(img), downsampleScalar(img, s1, s2))
            << "w=" << w << " s1=" << s1 << " s2=" << s2;
      }
    }
  }
}

TEST(WordDownsampleTest, OpsAreClosedFormAndActivityIndependent) {
  Downsampler down(6, 3);
  const BinaryImage blank(240, 180);
  (void)down.downsample(blank);
  const OpCounts blankOps = down.lastOps();
  EXPECT_EQ(blankOps.adds, 40U * 60U * 18U);  // outW*outH*s1*s2
  EXPECT_EQ(blankOps.memWrites, 40U * 60U);
  const BinaryImage busy = randomImage(240, 180, 0.5, 3);
  (void)down.downsample(busy);
  EXPECT_EQ(down.lastOps(), blankOps);
}

TEST(WordDownsampleTest, DownsampleIntoReusesAndReshapes) {
  Downsampler down(6, 3);
  CountImage out;
  down.downsampleInto(randomImage(240, 180, 0.2, 11), out);
  EXPECT_EQ(out.width(), 40);
  EXPECT_EQ(out.height(), 60);
  // Reuse with a different source shape reshapes and fully overwrites.
  const BinaryImage small = randomImage(66, 45, 0.9, 12);
  down.downsampleInto(small, out);
  EXPECT_EQ(out.width(), 11);
  EXPECT_EQ(out.height(), 15);
  EXPECT_EQ(out, downsampleScalar(small, 6, 3));
}

}  // namespace
}  // namespace ebbiot
