// Verifies the closed-form cost models against every number printed in
// the paper (Sections II-A through II-C).
#include "src/resource/cost_model.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(EbbiCostTest, PaperNumbers) {
  // "a conservative estimate of C_EBBI = 125.2 kops/frame"
  const CostEstimate est = ebbiCost();
  EXPECT_NEAR(est.computesPerFrame, 125'280.0, 1.0);
  // "the reduced memory requirement of our proposed EBBI is only 10.8 kB"
  // (2 bits/pixel over 240x180 = 86400 bits; the paper divides by 1000).
  EXPECT_NEAR(est.memoryBits, 86'400.0, 1e-9);
  EXPECT_NEAR(est.memoryBytes(), 10'800.0, 1e-9);
}

TEST(NnFiltCostTest, PaperNumbers) {
  // "C_NN-filt ~= 276.4 kops/frame" at beta = 2, alpha = 0.1, Bt = 16.
  const CostEstimate est = nnFiltCost();
  EXPECT_NEAR(est.computesPerFrame, 276'480.0, 1.0);
  // M_NN-filt = 16 * 43200 bits = 86.4 kB.
  EXPECT_NEAR(est.memoryBytes(), 86'400.0, 1e-9);
}

TEST(NnFiltCostTest, EightTimesMemoryOfEbbi) {
  // "our proposed method provides 8X memory savings" (Bt/2 = 8).
  EXPECT_NEAR(nnFiltCost().memoryBits / ebbiCost().memoryBits, 8.0, 1e-12);
}

TEST(RpnCostTest, FormulaAndPrintedVariant) {
  // Eq. (5) as written: A*B + 2*A*B/(s1*s2) = 48.0 kops.
  EXPECT_NEAR(rpnCost().computesPerFrame, 48'000.0, 1.0);
  // The paper's printed value (45.6 kops) = single-histogram accounting.
  RpnCostParams printed;
  printed.printedVariant = true;
  EXPECT_NEAR(rpnCost(printed).computesPerFrame, 45'600.0, 1.0);
}

TEST(RpnCostTest, PaperMemory) {
  // M_RPN = 2400*5 + 40*11 + 60*10 = 13040 bits ~= 1.6 kB.
  const CostEstimate est = rpnCost();
  EXPECT_NEAR(est.memoryBits, 13'040.0, 1e-9);
  EXPECT_NEAR(est.memoryKB(), 1.59, 0.01);
}

TEST(OtCostTest, PaperNumbers) {
  // "NT ~= 2 resulting in C_OT ~= 564" (134*4 = 536 + residual terms).
  const CostEstimate est = otCost();
  EXPECT_NEAR(est.computesPerFrame, 564.0, 1.0);
  // "memory requirement for this tracker is negligible (< 0.5 kB)".
  EXPECT_LT(est.memoryBytes(), 512.0);
  EXPECT_GT(est.memoryBits, 0.0);
}

TEST(OtCostTest, QuadraticInTrackerCount) {
  OtCostParams p4;
  p4.nT = 4.0;
  OtCostParams p2;
  p2.nT = 2.0;
  const double delta =
      otCost(p4).computesPerFrame - otCost(p2).computesPerFrame;
  EXPECT_NEAR(delta, 134.0 * (16.0 - 4.0), 1e-9);
}

TEST(KfCostTest, PaperNumbers) {
  // Eq. (7) with n = m = 4: 4*64 + 6*64 + 4*64 + 4*64 + 3*16 = 1200.
  const CostEstimate est = kfCost();
  EXPECT_NEAR(est.computesPerFrame, 1'200.0, 1e-9);
  // "Memory requirement of the KF is ~= 1.1 kB".
  EXPECT_NEAR(est.memoryKB(), 1.06, 0.06);
}

TEST(EbmsCostTest, PaperNumbers) {
  // "EBMS requires 252 kops per frame" at NF=650, CL=2, gamma=0.1.
  const CostEstimate est = ebmsCost();
  EXPECT_NEAR(est.computesPerFrame, 252'330.0, 1.0);
  // Eq. (8): M_EBMS = 408*8 + 56 = 3320 (the paper reads this as 3.32 kB;
  // the equation is stated in bits — we return the equation's value).
  EXPECT_NEAR(est.memoryBits, 3'320.0, 1e-9);
}

TEST(EbmsCostTest, AboutFiveHundredTimesOtCompute) {
  // "EBMS requires ... ~= 500X higher than EBBIOT['s tracker]".
  const double ratio =
      ebmsCost().computesPerFrame / otCost().computesPerFrame;
  EXPECT_GT(ratio, 400.0);
  EXPECT_LT(ratio, 500.0);
}

TEST(PipelineCostTest, EbbiotTotals) {
  const CostEstimate est = ebbiotPipelineCost();
  // 125.28k + 48.0k + 0.564k ~= 173.8 kops/frame.
  EXPECT_NEAR(est.computesPerFrame, 173'844.0, 10.0);
  // 10.8 kB + 1.63 kB + 128 B ~= 12.6 kB.
  EXPECT_NEAR(est.memoryBytes(), 12'558.0, 10.0);
}

TEST(PipelineCostTest, EbmsPipelineRatios) {
  // Fig. 5: ~3X less computes and ~7X less memory than the EBMS chain.
  const CostEstimate ours = ebbiotPipelineCost();
  const CostEstimate theirs = ebmsPipelineCost();
  const double computeRatio = theirs.computesPerFrame / ours.computesPerFrame;
  EXPECT_GT(computeRatio, 2.5);
  EXPECT_LT(computeRatio, 3.5);
  const double memoryRatio = theirs.memoryBits / ours.memoryBits;
  EXPECT_GT(memoryRatio, 6.0);
  EXPECT_LT(memoryRatio, 8.0);
}

TEST(PipelineCostTest, KfPipelineComparableComputeMoreMemory) {
  const CostEstimate ours = ebbiotPipelineCost();
  const CostEstimate kf = ebbiKfPipelineCost();
  // Compute nearly identical (tracker is a rounding error of the front
  // end); memory slightly higher for the KF state.
  EXPECT_NEAR(kf.computesPerFrame / ours.computesPerFrame, 1.0, 0.01);
  EXPECT_GT(kf.memoryBits, ours.memoryBits);
}

TEST(FrameBasedReferenceTest, OverThousandTimesWorse) {
  // Section II-B: "> 1000X less memory and computes compared to frame
  // based approaches."
  const CostEstimate cnn = frameBasedDetectorReference();
  const CostEstimate rpn = rpnCost();
  EXPECT_GT(cnn.computesPerFrame / rpn.computesPerFrame, 1'000.0);
  EXPECT_GT(cnn.memoryBits / rpn.memoryBits, 1'000.0);
  const CostEstimate ours = ebbiotPipelineCost();
  EXPECT_GT(cnn.computesPerFrame / ours.computesPerFrame, 1'000.0);
  EXPECT_GT(cnn.memoryBits / ours.memoryBits, 1'000.0);
}

TEST(CostModelTest, InvalidParamsRejected) {
  EbbiCostParams badEbbi;
  badEbbi.alpha = 1.5;
  EXPECT_THROW((void)ebbiCost(badEbbi), LogicError);
  NnFiltCostParams badNn;
  badNn.beta = 0.5;  // beta >= 1 by definition
  EXPECT_THROW((void)nnFiltCost(badNn), LogicError);
  RpnCostParams badRpn;
  badRpn.s1 = 0;
  EXPECT_THROW((void)rpnCost(badRpn), LogicError);
  KfCostParams badKf;
  badKf.nT = 0;
  EXPECT_THROW((void)kfCost(badKf), LogicError);
}

TEST(CostEstimateTest, Addition) {
  CostEstimate a{100.0, 800.0};
  CostEstimate b{50.0, 200.0};
  const CostEstimate s = a + b;
  EXPECT_DOUBLE_EQ(s.computesPerFrame, 150.0);
  EXPECT_DOUBLE_EQ(s.memoryBits, 1000.0);
  EXPECT_DOUBLE_EQ(s.memoryBytes(), 125.0);
}

}  // namespace
}  // namespace ebbiot
