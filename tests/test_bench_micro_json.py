#!/usr/bin/env python3
"""Self-test for tools/bench_micro_json.py on synthetic fixture runs.

Each case synthesises a google-benchmark raw JSON document, runs the
converter over it in a temp directory, and asserts the conversion and
each gate (--fail-on-steady-allocs, --fail-on-ops-regression,
--update-ops-baseline) accepts healthy runs and rejects each regression
with a message naming the actual problem.  Run directly:

    python3 tests/test_bench_micro_json.py

CI runs this in the test job; ctest registers it (plus the committed
tools/BENCH_ops_baseline.json shape check), so `ctest -R
bench_micro_json` covers both locally too.
"""

import importlib.util
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
SCRIPT = TOOLS / "bench_micro_json.py"

# Import the converter module itself for its pinned-stage lists: the
# fixture must stay complete as stages are added, without hand-copying.
_spec = importlib.util.spec_from_file_location("bench_micro_json", SCRIPT)
_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_mod)
STEADY = sorted(_mod.STEADY_STATE_BENCHES)
PINNED = list(_mod.OPS_PINNED_BENCHES)
TOLERANCE = _mod.DEFAULT_TOLERANCE


def healthy_raw():
    """A raw google-benchmark document every converter gate accepts."""
    benches = []
    for i, name in enumerate(sorted(set(STEADY) | set(PINNED))):
        benches.append({
            "name": name,
            "run_type": "iteration",
            "real_time": 1000.0 + i,
            "time_unit": "ns",
            "ops_frame": 5000.0 + 100.0 * i,
            "allocs_frame": 0.0,
        })
    # An aggregate row the converter must skip, and a thread-scaling grid.
    benches.append({
        "name": f"{STEADY[0]}_mean",
        "run_type": "aggregate",
        "real_time": 999.0,
        "time_unit": "ns",
    })
    for threads in (1, 2):
        for pipelined in (0, 1):
            benches.append({
                "name": f"BM_RunRecordingRegistry/{threads}/{pipelined}",
                "run_type": "iteration",
                "real_time": 8.0 / threads,
                "time_unit": "us",
            })
    return {
        "context": {
            "date": "2026-01-01T00:00:00+00:00",
            "num_cpus": 1,
            "library_build_type": "release",
        },
        "benchmarks": benches,
    }


class ConverterCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        self.raw = healthy_raw()

    def tearDown(self):
        self._tmp.cleanup()

    def run_tool(self, *flags):
        raw_path = self.root / "raw.json"
        out_path = self.root / "BENCH_micro.json"
        raw_path.write_text(json.dumps(self.raw))
        result = subprocess.run(
            [sys.executable, str(SCRIPT), str(raw_path), str(out_path),
             *flags],
            capture_output=True, text=True)
        return result, out_path

    def bench(self, name):
        for bench in self.raw["benchmarks"]:
            if bench["name"] == name:
                return bench
        raise AssertionError(f"no fixture benchmark {name}")

    def write_baseline(self):
        """Generate a matching baseline from the healthy fixture."""
        path = self.root / "baseline.json"
        result, _ = self.run_tool(f"--update-ops-baseline={path}")
        self.assertEqual(result.returncode, 0, result.stderr)
        return path

    def test_healthy_conversion(self):
        result, out_path = self.run_tool()
        self.assertEqual(result.returncode, 0, result.stderr)
        out = json.loads(out_path.read_text())
        self.assertEqual(out["schema"], "ebbiot-bench-micro/1")
        names = {r["name"] for r in out["benchmarks"]}
        for name in STEADY:
            self.assertIn(name, names)
        # Aggregate rows are skipped, not converted.
        self.assertNotIn(f"{STEADY[0]}_mean", names)

    def test_thread_scaling_section(self):
        _, out_path = self.run_tool()
        scaling = json.loads(out_path.read_text())["thread_scaling"]
        self.assertEqual(scaling["host_cpus"], 1)
        by_cell = {(c["threads"], c["pipelined"]): c
                   for c in scaling["cells"]}
        self.assertEqual(by_cell[(1, False)]["speedup_vs_serial"], 1.0)
        self.assertEqual(by_cell[(2, False)]["speedup_vs_serial"], 2.0)

    def test_time_units_normalised_to_ns(self):
        _, out_path = self.run_tool()
        out = json.loads(out_path.read_text())
        cell = next(r for r in out["benchmarks"]
                    if r["name"] == "BM_RunRecordingRegistry/1/0")
        self.assertAlmostEqual(cell["ns_per_frame"], 8000.0)

    def test_steady_alloc_regression_fails(self):
        self.bench(STEADY[0])["allocs_frame"] = 0.5
        result, _ = self.run_tool("--fail-on-steady-allocs")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("allocates", result.stderr)
        self.assertIn(STEADY[0], result.stderr)

    def test_steady_alloc_counter_missing_fails(self):
        del self.bench(STEADY[0])["allocs_frame"]
        result, _ = self.run_tool("--fail-on-steady-allocs")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("no allocs_frame counter", result.stderr)

    def test_steady_bench_missing_from_run_fails(self):
        self.raw["benchmarks"] = [
            b for b in self.raw["benchmarks"] if b["name"] != STEADY[0]]
        result, _ = self.run_tool("--fail-on-steady-allocs")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("missing from output", result.stderr)

    def test_ops_within_tolerance_passes(self):
        baseline = self.write_baseline()
        self.bench(PINNED[0])["ops_frame"] *= 1.0 + TOLERANCE / 2
        result, _ = self.run_tool(f"--fail-on-ops-regression={baseline}")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_ops_drift_beyond_tolerance_fails(self):
        baseline = self.write_baseline()
        self.bench(PINNED[0])["ops_frame"] *= 1.0 + 2 * TOLERANCE
        result, _ = self.run_tool(f"--fail-on-ops-regression={baseline}")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("drifted", result.stderr)
        self.assertIn(PINNED[0], result.stderr)

    def test_pinned_stage_missing_from_baseline_fails(self):
        baseline = self.write_baseline()
        record = json.loads(baseline.read_text())
        del record["ops_per_frame"][PINNED[0]]
        baseline.write_text(json.dumps(record))
        result, _ = self.run_tool(f"--fail-on-ops-regression={baseline}")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("missing from the baseline", result.stderr)

    def test_stale_baseline_entry_fails(self):
        baseline = self.write_baseline()
        record = json.loads(baseline.read_text())
        record["ops_per_frame"]["BM_RemovedStage"] = 1.0
        baseline.write_text(json.dumps(record))
        result, _ = self.run_tool(f"--fail-on-ops-regression={baseline}")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("no longer in", result.stderr)

    def test_update_baseline_then_gate_roundtrips(self):
        baseline = self.write_baseline()
        record = json.loads(baseline.read_text())
        self.assertEqual(record["schema"], "ebbiot-bench-ops-baseline/1")
        self.assertEqual(set(record["ops_per_frame"]), set(PINNED))
        result, _ = self.run_tool(f"--fail-on-ops-regression={baseline}")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_update_baseline_without_counter_fails(self):
        del self.bench(PINNED[0])["ops_frame"]
        result, _ = self.run_tool(
            f"--update-ops-baseline={self.root / 'baseline.json'}")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("cannot baseline", result.stderr)

    def test_unknown_flag_fails(self):
        result, _ = self.run_tool("--no-such-flag")
        self.assertNotEqual(result.returncode, 0)

    def test_committed_baseline_matches_pinned_stages(self):
        # The real committed baseline must gate exactly the stages the
        # converter pins (catches the two drifting apart).
        committed = TOOLS / "BENCH_ops_baseline.json"
        if not committed.exists():
            self.skipTest("no committed BENCH_ops_baseline.json")
        record = json.loads(committed.read_text())
        self.assertEqual(record["schema"], "ebbiot-bench-ops-baseline/1")
        self.assertEqual(set(record["ops_per_frame"]), set(PINNED))


if __name__ == "__main__":
    unittest.main()
