#include "src/ebbi/histogram.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

TEST(HistogramBuilderTest, ColumnAndRowSums) {
  CountImage img(3, 2);
  img.at(0, 0) = 1;
  img.at(1, 0) = 2;
  img.at(2, 1) = 3;
  HistogramBuilder builder;
  const HistogramPair h = builder.build(img);
  ASSERT_EQ(h.hx.size(), 3U);
  ASSERT_EQ(h.hy.size(), 2U);
  EXPECT_EQ(h.hx[0], 1U);
  EXPECT_EQ(h.hx[1], 2U);
  EXPECT_EQ(h.hx[2], 3U);
  EXPECT_EQ(h.hy[0], 3U);
  EXPECT_EQ(h.hy[1], 3U);
}

TEST(HistogramBuilderTest, SumsEqualTotalMass) {
  Rng rng(5);
  CountImage img(40, 60);
  for (int i = 0; i < 500; ++i) {
    img.at(static_cast<int>(rng.uniformInt(0, 39)),
           static_cast<int>(rng.uniformInt(0, 59))) =
        static_cast<std::uint16_t>(rng.uniformInt(0, 18));
  }
  HistogramBuilder builder;
  const HistogramPair h = builder.build(img);
  std::uint64_t sumX = 0;
  for (auto v : h.hx) {
    sumX += v;
  }
  std::uint64_t sumY = 0;
  for (auto v : h.hy) {
    sumY += v;
  }
  EXPECT_EQ(sumX, img.totalMass());
  EXPECT_EQ(sumY, img.totalMass());
}

TEST(FindRunsTest, NoRunsInFlatHistogram) {
  EXPECT_TRUE(findRuns({0, 0, 0, 0}, 1).empty());
}

TEST(FindRunsTest, SingleRun) {
  const auto runs = findRuns({0, 2, 3, 1, 0}, 1);
  ASSERT_EQ(runs.size(), 1U);
  EXPECT_EQ(runs[0].begin, 1);
  EXPECT_EQ(runs[0].end, 4);
  EXPECT_EQ(runs[0].length(), 3);
  EXPECT_EQ(runs[0].mass, 6U);
}

TEST(FindRunsTest, MultipleRunsSplitByGaps) {
  const auto runs = findRuns({1, 0, 2, 2, 0, 0, 5}, 1);
  ASSERT_EQ(runs.size(), 3U);
  EXPECT_EQ(runs[0].begin, 0);
  EXPECT_EQ(runs[0].end, 1);
  EXPECT_EQ(runs[1].begin, 2);
  EXPECT_EQ(runs[1].end, 4);
  EXPECT_EQ(runs[2].begin, 6);
  EXPECT_EQ(runs[2].end, 7);
}

TEST(FindRunsTest, RunsAtBothEnds) {
  const auto runs = findRuns({3, 0, 0, 4}, 1);
  ASSERT_EQ(runs.size(), 2U);
  EXPECT_EQ(runs[0].begin, 0);
  EXPECT_EQ(runs[1].end, 4);
}

TEST(FindRunsTest, ThresholdFiltersWeakBins) {
  const auto runs = findRuns({1, 1, 5, 5, 1}, 3);
  ASSERT_EQ(runs.size(), 1U);
  EXPECT_EQ(runs[0].begin, 2);
  EXPECT_EQ(runs[0].end, 4);
  EXPECT_EQ(runs[0].mass, 10U);
}

TEST(FindRunsTest, MaxGapBridgesShortGaps) {
  // Gap of 1 bin between two runs: maxGap=1 merges them.
  const auto merged = findRuns({2, 0, 2}, 1, 1);
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0].begin, 0);
  EXPECT_EQ(merged[0].end, 3);
  // Gap of 2 bins is not bridged by maxGap=1.
  const auto split = findRuns({2, 0, 0, 2}, 1, 1);
  EXPECT_EQ(split.size(), 2U);
}

TEST(FindRunsTest, EmptyHistogram) {
  EXPECT_TRUE(findRuns({}, 1).empty());
}

// Property: runs tile the above-threshold bins exactly, never overlap,
// and are maximal.
class FindRunsProperty : public ::testing::TestWithParam<int> {};

TEST_P(FindRunsProperty, RunsAreExactCover) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::uint32_t> hist(64);
  for (auto& v : hist) {
    v = static_cast<std::uint32_t>(rng.uniformInt(0, 3));
  }
  const std::uint32_t threshold = 2;
  const auto runs = findRuns(hist, threshold);
  std::vector<bool> covered(hist.size(), false);
  int prevEnd = -1;
  for (const HistogramRun& r : runs) {
    EXPECT_GT(r.begin, prevEnd);  // ordered, disjoint, non-adjacent
    EXPECT_LT(r.begin, r.end);
    std::uint64_t mass = 0;
    for (int i = r.begin; i < r.end; ++i) {
      EXPECT_GE(hist[static_cast<std::size_t>(i)], threshold);
      covered[static_cast<std::size_t>(i)] = true;
      mass += hist[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(r.mass, mass);
    prevEnd = r.end;
  }
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_EQ(covered[i], hist[i] >= threshold) << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindRunsProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace ebbiot
