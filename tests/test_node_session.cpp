// SensorSession state machine, backpressure policies, NodeConfig
// validation, and NodeSupervisor sharding/shedding.
#include "src/node/sensor_session.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/node/node_config.hpp"
#include "src/node/node_supervisor.hpp"
#include "src/node/wire_format.hpp"

namespace ebbiot {
namespace {

constexpr TimeUs kWindow = 10'000;

NodeConfig testConfig() {
  NodeConfig config;
  config.width = 64;
  config.height = 48;
  config.queueCapacity = 4;
  config.freshnessLagWindows = 2;
  config.watchdogTimeoutUs = 50'000;
  config.maxEventsPerFrame = 64;
  config.degradeFaultThreshold = 3;
  config.degradeFrameWindow = 8;
  config.recoverCleanFrames = 2;
  return config;
}

/// Deterministic window for sequence `i`: 5 in-bounds events.
EventPacket makeWindow(std::uint32_t i) {
  const TimeUs tStart = static_cast<TimeUs>(i) * kWindow;
  EventPacket p(tStart, tStart + kWindow);
  for (std::uint32_t j = 0; j < 5; ++j) {
    Event e;
    e.x = static_cast<std::uint16_t>((i + 7 * j) % 64);
    e.y = static_cast<std::uint16_t>((3 * i + j) % 48);
    e.p = (i + j) % 2 == 0 ? Polarity::kOn : Polarity::kOff;
    e.t = tStart + static_cast<TimeUs>(j) * 100;
    p.push(e);
  }
  return p;
}

std::vector<std::byte> encodeSeq(std::uint32_t seq, std::uint16_t sensor = 7) {
  std::vector<std::byte> out;
  encodeFrame(out, seq, sensor, makeWindow(seq));
  return out;
}

/// Records every delivered window's identity for order/content checks.
struct CaptureSink final : WindowSink {
  struct Delivery {
    std::uint32_t seq;
    TimeUs tStart;
    std::size_t events;
    TimeUs ingestTime;
  };
  std::vector<Delivery> deliveries;

  void onWindow(const EventPacket& window, std::uint32_t seq,
                TimeUs ingestTime) override {
    deliveries.push_back({seq, window.tStart(), window.size(), ingestTime});
  }
};

// ---- NodeConfig validation -----------------------------------------

TEST(NodeConfigTest, DefaultConfigIsValid) {
  EXPECT_NO_THROW(NodeConfig{}.validate());
  EXPECT_NO_THROW(testConfig().validate());
}

TEST(NodeConfigTest, EachBadFieldThrows) {
  const auto expectBad = [](auto&& mutate) {
    NodeConfig config = testConfig();
    mutate(config);
    EXPECT_THROW(config.validate(), ConfigError);
  };
  expectBad([](NodeConfig& c) { c.width = 0; });
  expectBad([](NodeConfig& c) { c.width = 70'000; });
  expectBad([](NodeConfig& c) { c.height = 0; });
  expectBad([](NodeConfig& c) { c.queueCapacity = 0; });
  expectBad([](NodeConfig& c) { c.freshnessLagWindows = 0; });
  expectBad([](NodeConfig& c) { c.watchdogTimeoutUs = 0; });
  expectBad([](NodeConfig& c) { c.maxEventsPerFrame = 0; });
  // A nonzero buffer cap smaller than one max-size frame could never
  // reassemble anything.
  expectBad([](NodeConfig& c) { c.maxBufferedBytes = c.maxFrameBytes() - 1; });
  expectBad([](NodeConfig& c) { c.degradeFaultThreshold = 0; });
  expectBad([](NodeConfig& c) { c.degradeFrameWindow = 0; });
  expectBad([](NodeConfig& c) { c.degradeFrameWindow = 65; });
  expectBad([](NodeConfig& c) {
    c.degradeFaultThreshold = 5;
    c.degradeFrameWindow = 4;
  });
  expectBad([](NodeConfig& c) { c.recoverCleanFrames = 0; });
  expectBad([](NodeConfig& c) { c.recoveryBackoffInitialUs = 0; });
  expectBad([](NodeConfig& c) {
    c.recoveryBackoffMaxUs = c.recoveryBackoffInitialUs - 1;
  });
  expectBad([](NodeConfig& c) { c.recoveryBackoffFactor = 0; });
  expectBad([](NodeConfig& c) { c.recoveryMaxAttempts = 0; });
  expectBad([](NodeConfig& c) { c.quarantineResyncLimit = 0; });
  expectBad([](NodeConfig& c) { c.latencySampleCapacity = 0; });
}

TEST(NodeConfigTest, SessionAndSupervisorValidateOnConstruction) {
  NodeConfig bad = testConfig();
  bad.queueCapacity = 0;
  EXPECT_THROW((SensorSession{7, bad}), ConfigError);
  ThreadPool pool(1);
  EXPECT_THROW((NodeSupervisor{bad, pool}), ConfigError);
}

// ---- SensorSession -------------------------------------------------

TEST(SensorSessionTest, CleanStreamDeliversInOrder) {
  // Enough freshness headroom that the drop-oldest policy stays inert;
  // this test pins the clean-path accounting only.
  NodeConfig config = testConfig();
  config.freshnessLagWindows = 4;
  SensorSession session(7, config);
  EXPECT_EQ(session.state(), SessionState::kSyncing);
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    session.offerBytes(encodeSeq(seq), static_cast<TimeUs>(seq + 1) * kWindow);
  }
  EXPECT_EQ(session.state(), SessionState::kStreaming);
  EXPECT_EQ(session.backlog(), 3U);

  CaptureSink sink;
  EXPECT_EQ(session.drainInto(sink, 40'000), 3U);
  ASSERT_EQ(sink.deliveries.size(), 3U);
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    EXPECT_EQ(sink.deliveries[seq].seq, seq);
    EXPECT_EQ(sink.deliveries[seq].tStart, static_cast<TimeUs>(seq) * kWindow);
    EXPECT_EQ(sink.deliveries[seq].events, 5U);
  }
  const SessionCounters c = session.counters();
  EXPECT_EQ(c.framesDecoded, 3U);
  EXPECT_EQ(c.framesAccepted, 3U);
  EXPECT_EQ(c.windowsDelivered, 3U);
  EXPECT_EQ(c.framesCorrupted, 0U);
  EXPECT_EQ(c.seqGaps, 0U);
  EXPECT_EQ(c.outOfOrderDropped, 0U);
  EXPECT_EQ(c.windowsRejected, 0U);
  EXPECT_EQ(c.windowsShedStale, 0U);
}

TEST(SensorSessionTest, SeqGapCountedButStreamContinues) {
  SensorSession session(7, testConfig());
  session.offerBytes(encodeSeq(0), 10'000);
  session.offerBytes(encodeSeq(1), 20'000);
  session.offerBytes(encodeSeq(4), 30'000);  // 2 and 3 lost in transit
  const SessionCounters c = session.counters();
  EXPECT_EQ(c.framesAccepted, 3U);
  EXPECT_EQ(c.seqGaps, 1U);
  EXPECT_EQ(c.framesLostToGaps, 2U);
  EXPECT_EQ(session.state(), SessionState::kStreaming);
}

TEST(SensorSessionTest, DuplicateAndStaleSeqNeverDelivered) {
  NodeConfig config = testConfig();
  config.freshnessLagWindows = 4;  // keep all three accepted windows
  SensorSession session(7, config);
  session.offerBytes(encodeSeq(0), 10'000);
  session.offerBytes(encodeSeq(1), 20'000);
  session.offerBytes(encodeSeq(1), 21'000);  // duplicate
  session.offerBytes(encodeSeq(0), 22'000);  // stale straggler
  session.offerBytes(encodeSeq(2), 30'000);
  const SessionCounters c = session.counters();
  EXPECT_EQ(c.framesDecoded, 5U);
  EXPECT_EQ(c.framesAccepted, 3U);
  EXPECT_EQ(c.outOfOrderDropped, 2U);

  CaptureSink sink;
  session.drainInto(sink, 40'000);
  ASSERT_EQ(sink.deliveries.size(), 3U);
  EXPECT_EQ(sink.deliveries[0].seq, 0U);
  EXPECT_EQ(sink.deliveries[1].seq, 1U);
  EXPECT_EQ(sink.deliveries[2].seq, 2U);
}

TEST(SensorSessionTest, WatchdogStallThenRecovery) {
  SensorSession session(7, testConfig());
  session.offerBytes(encodeSeq(0), 10'000);
  EXPECT_EQ(session.state(), SessionState::kStreaming);

  // Silence past the 50 ms watchdog.
  session.onIdleTick(70'000);
  EXPECT_EQ(session.state(), SessionState::kStalled);
  EXPECT_EQ(session.counters().watchdogStalls, 1U);

  // The sensor returns having rebooted: fresh sequence space and clock.
  // The stall re-armed synchronisation, so the stream is re-adopted
  // without spurious gap or regression counts.
  session.offerBytes(encodeSeq(100), 80'000);
  EXPECT_EQ(session.state(), SessionState::kRecovering);
  session.offerBytes(encodeSeq(101), 90'000);
  EXPECT_EQ(session.state(), SessionState::kStreaming);

  const SessionCounters c = session.counters();
  EXPECT_EQ(c.framesAccepted, 3U);
  EXPECT_EQ(c.recoveries, 1U);
  EXPECT_EQ(c.seqGaps, 0U);
  EXPECT_EQ(c.timestampRegressions, 0U);
}

TEST(SensorSessionTest, DegradeOnFaultRateThenRecoverThroughLadder) {
  NodeConfig config = testConfig();
  config.recoveryBackoffInitialUs = 30'000;
  SensorSession session(7, config);
  std::vector<std::byte> stream;
  const auto append = [&stream](std::vector<std::byte> frame,
                                bool corrupt = false) {
    if (corrupt) {
      frame[kFrameWindowStartOffset] ^= std::byte{1};  // breaks the CRC
    }
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  append(encodeSeq(0));
  append(encodeSeq(1));
  append(encodeSeq(2), /*corrupt=*/true);
  append(encodeSeq(3), /*corrupt=*/true);
  append(encodeSeq(4), /*corrupt=*/true);
  append(encodeSeq(5));
  append(encodeSeq(6));
  session.offerBytes(stream, 70'000);

  {
    const SessionCounters c = session.counters();
    EXPECT_EQ(c.framesDecoded, 4U);
    EXPECT_EQ(c.framesCorrupted, 3U);
    EXPECT_EQ(c.framesAccepted, 4U);
    EXPECT_EQ(c.seqGaps, 1U);
    EXPECT_EQ(c.framesLostToGaps, 3U);
    // Three contiguous corrupted frames form one resync episode.
    EXPECT_EQ(c.resyncs, 1U);
    EXPECT_EQ(c.bytesSkipped, 3U * frameSizeBytes(5));
    // Fault rate crossed the threshold (3 of the last 8).  Two clean
    // frames satisfy the streak, but the 30 ms hold-down has not elapsed
    // (the whole stream arrived at one instant), so the ladder keeps the
    // session DEGRADED instead of the old immediate retry.
    EXPECT_EQ(c.degradeEntries, 1U);
    EXPECT_EQ(c.recoveryAttempts, 0U);
    EXPECT_EQ(c.recoveries, 0U);
    EXPECT_EQ(session.state(), SessionState::kDegraded);
  }

  // Still inside the hold-down: clean frames keep the streak alive but
  // cannot start the attempt.
  session.offerBytes(encodeSeq(7), 90'000);
  EXPECT_EQ(session.state(), SessionState::kDegraded);

  // Hold-down elapsed: the next clean frame starts the recovery attempt,
  // and a fresh clean streak then re-earns STREAMING.
  session.offerBytes(encodeSeq(8), 101'000);
  EXPECT_EQ(session.state(), SessionState::kRecovering);
  session.offerBytes(encodeSeq(9), 111'000);
  EXPECT_EQ(session.state(), SessionState::kRecovering);
  session.offerBytes(encodeSeq(10), 121'000);
  EXPECT_EQ(session.state(), SessionState::kStreaming);

  const SessionCounters c = session.counters();
  EXPECT_EQ(c.framesAccepted, 8U);
  EXPECT_EQ(c.degradeEntries, 1U);
  EXPECT_EQ(c.recoveryAttempts, 1U);
  EXPECT_EQ(c.recoveryFailures, 0U);
  EXPECT_EQ(c.recoveries, 1U);
}

TEST(SensorSessionTest, RecoveryLadderBacksOffThenQuarantines) {
  NodeConfig config = testConfig();
  config.degradeFaultThreshold = 1;
  config.recoverCleanFrames = 1;
  config.recoveryBackoffInitialUs = 10'000;
  config.recoveryBackoffMaxUs = 40'000;
  config.recoveryBackoffFactor = 2;
  config.recoveryMaxAttempts = 3;
  config.watchdogTimeoutUs = 1'000'000;  // keep the watchdog out of this
  SensorSession session(7, config);

  const auto corruptAt = [&session](std::uint32_t seq, TimeUs now) {
    std::vector<std::byte> frame = encodeSeq(seq);
    frame[kFrameWindowStartOffset] ^= std::byte{1};
    session.offerBytes(frame, now);
  };

  session.offerBytes(encodeSeq(0), 0);
  EXPECT_EQ(session.state(), SessionState::kStreaming);

  // Attempt 0: hold-down 10 ms.
  corruptAt(1, 10'000);
  EXPECT_EQ(session.state(), SessionState::kDegraded);
  session.offerBytes(encodeSeq(2), 20'000);
  EXPECT_EQ(session.state(), SessionState::kRecovering);
  corruptAt(3, 30'000);  // attempt fails
  EXPECT_EQ(session.state(), SessionState::kDegraded);

  // Attempt 1: hold-down doubled to 20 ms — a clean frame at +10 ms is
  // too early, one at +20 ms starts the attempt.
  session.offerBytes(encodeSeq(4), 40'000);
  EXPECT_EQ(session.state(), SessionState::kDegraded);
  session.offerBytes(encodeSeq(5), 50'000);
  EXPECT_EQ(session.state(), SessionState::kRecovering);
  corruptAt(6, 60'000);  // attempt fails again
  EXPECT_EQ(session.state(), SessionState::kDegraded);

  // Attempt 2: hold-down clamped at the 40 ms cap.
  session.offerBytes(encodeSeq(7), 80'000);
  EXPECT_EQ(session.state(), SessionState::kDegraded);
  session.offerBytes(encodeSeq(8), 100'000);
  EXPECT_EQ(session.state(), SessionState::kRecovering);

  // Third failure exhausts recoveryMaxAttempts: terminal quarantine.
  corruptAt(9, 110'000);
  EXPECT_EQ(session.state(), SessionState::kQuarantined);

  const SessionCounters c = session.counters();
  EXPECT_EQ(c.degradeEntries, 3U);
  EXPECT_EQ(c.recoveryAttempts, 3U);
  EXPECT_EQ(c.recoveryFailures, 3U);
  EXPECT_EQ(c.recoveries, 0U);

  // Quarantine is terminal: further bytes are ignored and counted.
  const std::vector<std::byte> late = encodeSeq(10);
  session.offerBytes(late, 120'000);
  EXPECT_EQ(session.state(), SessionState::kQuarantined);
  EXPECT_EQ(session.counters().bytesIgnoredQuarantined, late.size());
}

TEST(SensorSessionTest, QuarantineIsTerminal) {
  NodeConfig config = testConfig();
  config.quarantineResyncLimit = 2;
  SensorSession session(7, config);

  std::vector<std::byte> f0 = encodeSeq(0);
  f0[kFrameWindowStartOffset] ^= std::byte{1};
  session.offerBytes(f0, 10'000);
  session.offerBytes(encodeSeq(1), 20'000);  // clears the first episode
  EXPECT_EQ(session.state(), SessionState::kStreaming);

  std::vector<std::byte> f2 = encodeSeq(2);
  f2[kFrameWindowStartOffset] ^= std::byte{1};
  // The second resync episode exhausts the budget as soon as it starts.
  session.offerBytes(f2, 30'000);
  EXPECT_EQ(session.state(), SessionState::kQuarantined);

  // Further bytes are ignored and counted, and ticks change nothing.
  const std::vector<std::byte> late = encodeSeq(4);
  session.offerBytes(late, 50'000);
  session.onIdleTick(10'000'000);
  EXPECT_EQ(session.state(), SessionState::kQuarantined);
  EXPECT_EQ(session.counters().bytesIgnoredQuarantined, late.size());
  EXPECT_EQ(session.counters().framesAccepted, 1U);
}

TEST(SensorSessionTest, RejectPolicyKeepsOldestOnOverflow) {
  NodeConfig config = testConfig();
  config.backpressure = BackpressurePolicy::kRejectPacket;
  config.queueCapacity = 2;
  SensorSession session(7, config);
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    session.offerBytes(encodeSeq(seq), static_cast<TimeUs>(seq + 1) * kWindow);
  }
  const SessionCounters before = session.counters();
  EXPECT_EQ(before.framesAccepted, 4U);
  EXPECT_EQ(before.windowsRejected, 2U);

  CaptureSink sink;
  EXPECT_EQ(session.drainInto(sink, 50'000), 2U);
  ASSERT_EQ(sink.deliveries.size(), 2U);
  // Completeness policy: the queue holds the *earliest* windows; loss
  // happened at the tail.
  EXPECT_EQ(sink.deliveries[0].seq, 0U);
  EXPECT_EQ(sink.deliveries[1].seq, 1U);
  EXPECT_EQ(session.counters().windowsShedStale, 0U);
}

TEST(SensorSessionTest, DropOldestPolicyKeepsFreshestOnDrain) {
  SensorSession session(7, testConfig());  // drop-oldest, lag 2, capacity 4
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    session.offerBytes(encodeSeq(seq), static_cast<TimeUs>(seq + 1) * kWindow);
  }
  CaptureSink sink;
  EXPECT_EQ(session.drainInto(sink, 50'000), 2U);
  ASSERT_EQ(sink.deliveries.size(), 2U);
  // Freshness policy: the two oldest were shed, the two newest ran.
  EXPECT_EQ(sink.deliveries[0].seq, 2U);
  EXPECT_EQ(sink.deliveries[1].seq, 3U);
  const SessionCounters c = session.counters();
  EXPECT_EQ(c.windowsShedStale, 2U);
  EXPECT_EQ(c.windowsDelivered, 2U);
  EXPECT_EQ(c.windowsRejected, 0U);
}

TEST(SensorSessionTest, LatencySamplesMeasureIngestToDrain) {
  SensorSession session(7, testConfig());
  session.offerBytes(encodeSeq(0), 10'000);
  session.offerBytes(encodeSeq(1), 20'000);
  CaptureSink sink;
  session.drainInto(sink, 32'000);
  const std::span<const TimeUs> samples = session.latencySamples();
  ASSERT_EQ(samples.size(), 2U);
  EXPECT_EQ(samples[0], 22'000);
  EXPECT_EQ(samples[1], 12'000);
}

// ---- NodeSupervisor ------------------------------------------------

TEST(NodeSupervisorTest, RegistrationIsValidated) {
  ThreadPool pool(1);
  NodeSupervisor supervisor(testConfig(), pool);
  CaptureSink sink;
  EXPECT_THROW(supervisor.addSensor({1, 0, nullptr}), ConfigError);
  supervisor.addSensor({1, 0, &sink});
  EXPECT_THROW(supervisor.addSensor({1, 5, &sink}), ConfigError);
  EXPECT_EQ(supervisor.sensorCount(), 1U);
  EXPECT_NE(supervisor.find(1), nullptr);
  EXPECT_EQ(supervisor.find(2), nullptr);
}

TEST(NodeSupervisorTest, RoutesStreamsAndDrainsAll) {
  ThreadPool pool(1);
  NodeSupervisor supervisor(testConfig(), pool);
  CaptureSink sinkA;
  CaptureSink sinkB;
  supervisor.addSensor({1, 0, &sinkA});
  supervisor.addSensor({2, 0, &sinkB});

  for (std::uint32_t seq = 0; seq < 2; ++seq) {
    const TimeUs now = static_cast<TimeUs>(seq + 1) * kWindow;
    supervisor.offerBytes(1, encodeSeq(seq, 1), now);
    supervisor.offerBytes(2, encodeSeq(seq, 2), now);
  }
  EXPECT_EQ(supervisor.totalBacklog(), 4U);
  const NodeSupervisor::PumpStats stats = supervisor.pump(30'000);
  EXPECT_EQ(stats.windowsDelivered, 4U);
  EXPECT_EQ(stats.windowsShedOverload, 0U);
  EXPECT_EQ(stats.sensorsShed, 0U);
  EXPECT_EQ(sinkA.deliveries.size(), 2U);
  EXPECT_EQ(sinkB.deliveries.size(), 2U);
  EXPECT_EQ(supervisor.totalBacklog(), 0U);

  // Watchdogs run node-wide through the supervisor.
  supervisor.tickWatchdogs(10'000'000);
  EXPECT_EQ(supervisor.find(1)->state(), SessionState::kStalled);
  EXPECT_EQ(supervisor.find(2)->state(), SessionState::kStalled);
}

TEST(NodeSupervisorTest, OverloadShedsWholeSensorsLowestPriorityFirst) {
  NodeConfig config = testConfig();
  config.shedBacklogWindows = 2;
  ThreadPool pool(1);
  NodeSupervisor supervisor(config, pool);
  CaptureSink sinkLow;
  CaptureSink sinkHigh;
  supervisor.addSensor({1, /*priority=*/5, &sinkHigh});
  supervisor.addSensor({2, /*priority=*/0, &sinkLow});

  for (std::uint32_t seq = 0; seq < 2; ++seq) {
    const TimeUs now = static_cast<TimeUs>(seq + 1) * kWindow;
    supervisor.offerBytes(1, encodeSeq(seq, 1), now);
    supervisor.offerBytes(2, encodeSeq(seq, 2), now);
  }
  const NodeSupervisor::PumpStats stats = supervisor.pump(30'000);
  // Backlog 4 > 2: the priority-0 sensor lost its whole backlog; the
  // priority-5 sensor was drained untouched.
  EXPECT_EQ(stats.sensorsShed, 1U);
  EXPECT_EQ(stats.windowsShedOverload, 2U);
  EXPECT_EQ(stats.windowsDelivered, 2U);
  EXPECT_TRUE(sinkLow.deliveries.empty());
  EXPECT_EQ(sinkHigh.deliveries.size(), 2U);
  EXPECT_EQ(supervisor.find(2)->counters().windowsShedOverload, 2U);
  EXPECT_EQ(supervisor.find(1)->counters().windowsShedOverload, 0U);
}

TEST(NodeSupervisorTest, ParallelPumpMatchesSerialPump) {
  const auto run = [](ThreadPool& pool) {
    NodeSupervisor supervisor(testConfig(), pool);
    std::vector<CaptureSink> sinks(4);
    for (std::uint16_t id = 0; id < 4; ++id) {
      supervisor.addSensor({id, 0, &sinks[id]});
    }
    for (std::uint32_t seq = 0; seq < 2; ++seq) {
      for (std::uint16_t id = 0; id < 4; ++id) {
        supervisor.offerBytes(id, encodeSeq(seq, id),
                              static_cast<TimeUs>(seq + 1) * kWindow);
      }
    }
    (void)supervisor.pump(30'000);
    std::vector<SessionCounters> counters;
    std::vector<std::vector<std::uint32_t>> seqs;
    for (std::uint16_t id = 0; id < 4; ++id) {
      counters.push_back(supervisor.find(id)->counters());
      seqs.emplace_back();
      for (const CaptureSink::Delivery& d : sinks[id].deliveries) {
        seqs.back().push_back(d.seq);
      }
    }
    return std::pair(counters, seqs);
  };
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const auto a = run(serial);
  const auto b = run(parallel);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace ebbiot
