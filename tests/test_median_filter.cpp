#include "src/filters/median_filter.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

BinaryImage blockImage(int w, int h, const BBox& block) {
  BinaryImage img(w, h);
  for (int y = static_cast<int>(block.bottom());
       y < static_cast<int>(block.top()); ++y) {
    for (int x = static_cast<int>(block.left());
         x < static_cast<int>(block.right()); ++x) {
      img.set(x, y, true);
    }
  }
  return img;
}

TEST(MedianFilterTest, RemovesIsolatedPixel) {
  BinaryImage img(20, 20);
  img.set(10, 10, true);  // salt noise
  MedianFilter filter(3);
  const BinaryImage out = filter.apply(img);
  EXPECT_EQ(out.popcount(), 0U);
}

TEST(MedianFilterTest, KeepsSolidBlockInterior) {
  const BinaryImage img = blockImage(20, 20, BBox{5, 5, 8, 8});
  MedianFilter filter(3);
  const BinaryImage out = filter.apply(img);
  // Interior survives; corners (with only 4 of 9 neighbours set) erode.
  EXPECT_TRUE(out.get(8, 8));
  EXPECT_TRUE(out.get(6, 6));
  EXPECT_FALSE(out.get(5, 5));   // corner: 4 <= floor(9/2)
  EXPECT_TRUE(out.get(9, 5));    // edge midpoint: 6 > 4
}

TEST(MedianFilterTest, FillsSinglePixelHole) {
  BinaryImage img = blockImage(20, 20, BBox{5, 5, 8, 8});
  img.set(9, 9, false);  // pepper noise inside the block
  MedianFilter filter(3);
  const BinaryImage out = filter.apply(img);
  EXPECT_TRUE(out.get(9, 9));
}

TEST(MedianFilterTest, RemovesLoneBorderPixel) {
  BinaryImage img(20, 20);
  img.set(0, 0, true);
  img.set(19, 19, true);
  MedianFilter filter(3);
  const BinaryImage out = filter.apply(img);
  EXPECT_EQ(out.popcount(), 0U);
}

TEST(MedianFilterTest, PatchSizeOneIsIdentity) {
  Rng rng(3);
  BinaryImage img(30, 30);
  for (int i = 0; i < 100; ++i) {
    img.set(static_cast<int>(rng.uniformInt(0, 29)),
            static_cast<int>(rng.uniformInt(0, 29)), true);
  }
  MedianFilter filter(1);
  EXPECT_EQ(filter.apply(img), img);
}

TEST(MedianFilterTest, EvenPatchSizeRejected) {
  EXPECT_THROW(MedianFilter(2), LogicError);
  EXPECT_THROW(MedianFilter(0), LogicError);
}

TEST(MedianFilterTest, ApplyIntoShapeMismatchThrows) {
  MedianFilter filter(3);
  BinaryImage in(10, 10);
  BinaryImage out(11, 10);
  EXPECT_THROW(filter.applyInto(in, out), LogicError);
}

TEST(MedianFilterTest, OpsMatchEq1Structure) {
  // Eq. (1)'s fixed floor: every patch pixel is fetched and tested
  // regardless of its value (one memRead each), plus one majority
  // comparison and one write per output pixel — a compute total of
  // exactly 2*A*B.  On a 16x16 image with p = 3 the border clamp shrinks
  // edge patches: per axis the patch widths sum to 2 + 14*3 + 2 = 46, so
  // the frame visits 46*46 = 2116 patch pixels.
  constexpr std::uint64_t kPatchPixels = 46U * 46U;
  BinaryImage img(16, 16);
  MedianFilter filter(3);
  (void)filter.apply(img);
  const OpCounts blank = filter.lastOps();
  EXPECT_EQ(blank.memReads, kPatchPixels);
  EXPECT_EQ(blank.compares, 16U * 16U);
  EXPECT_EQ(blank.memWrites, 16U * 16U);
  EXPECT_EQ(blank.adds, 0U);
  EXPECT_EQ(blank.multiplies, 0U);
  EXPECT_EQ(blank.total(), 2U * 16U * 16U);  // the fixed 2*A*B floor
}

TEST(MedianFilterTest, OpsAreActivityIndependent) {
  // The reported cost must not scale with scene activity: a blank frame
  // and a fully set frame do identical per-patch work (the pre-fix
  // accounting charged one add per *set* pixel, making the measured cost
  // track alpha instead of Eq. (1)'s fixed read/compare floor).
  MedianFilter filter(3);
  (void)filter.apply(BinaryImage(32, 32));
  const OpCounts blank = filter.lastOps();
  (void)filter.apply(blockImage(32, 32, BBox{0, 0, 32, 32}));
  const OpCounts full = filter.lastOps();
  EXPECT_EQ(blank, full);
  (void)filter.apply(blockImage(32, 32, BBox{8, 8, 10, 10}));
  EXPECT_EQ(filter.lastOps(), full);
}

TEST(MedianFilterTest, MajorityThresholdExact) {
  // A pixel with exactly 5 of 9 set (> floor(9/2) = 4) stays; 4 of 9 goes.
  BinaryImage img(5, 5);
  // Centre + 4 in a cross = 5 set pixels in the centre's patch.
  img.set(2, 2, true);
  img.set(1, 2, true);
  img.set(3, 2, true);
  img.set(2, 1, true);
  img.set(2, 3, true);
  MedianFilter filter(3);
  const BinaryImage out = filter.apply(img);
  EXPECT_TRUE(out.get(2, 2));
  // Remove one arm: 4 of 9 -> erased.
  img.set(2, 3, false);
  const BinaryImage out2 = filter.apply(img);
  EXPECT_FALSE(out2.get(2, 2));
}

// Property: the filter never *increases* the symmetric difference under
// idempotence-like repetition — applying twice equals applying once for
// well-separated shapes (erosion of corners converges quickly).
class MedianStabilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MedianStabilityProperty, SecondPassChangesLittle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Dense blocks + sparse noise.
  BinaryImage img(64, 64);
  for (int b = 0; b < 3; ++b) {
    const int x0 = static_cast<int>(rng.uniformInt(2, 40));
    const int y0 = static_cast<int>(rng.uniformInt(2, 40));
    for (int y = y0; y < y0 + 12; ++y) {
      for (int x = x0; x < x0 + 12; ++x) {
        img.set(x, y, true);
      }
    }
  }
  for (int i = 0; i < 60; ++i) {
    img.set(static_cast<int>(rng.uniformInt(0, 63)),
            static_cast<int>(rng.uniformInt(0, 63)), true);
  }
  MedianFilter filter(3);
  const BinaryImage once = filter.apply(img);
  const BinaryImage twice = filter.apply(once);
  // Count differing pixels.
  std::size_t diff = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (once.get(x, y) != twice.get(x, y)) {
        ++diff;
      }
    }
  }
  // The second pass may nibble a few corner pixels but must not rework
  // the image wholesale.
  EXPECT_LE(diff, once.popcount() / 10 + 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MedianStabilityProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ebbiot
