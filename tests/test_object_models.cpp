#include "src/sim/object_models.hpp"

#include <gtest/gtest.h>

namespace ebbiot {
namespace {

TEST(ObjectCatalogueTest, AllClassesPresentAndNamed) {
  const auto& catalogue = objectCatalogue();
  ASSERT_EQ(catalogue.size(), static_cast<std::size_t>(kObjectClassCount));
  for (int i = 0; i < kObjectClassCount; ++i) {
    const auto c = static_cast<ObjectClass>(i);
    EXPECT_EQ(catalogue[static_cast<std::size_t>(i)].kind, c);
    EXPECT_NE(objectClassName(c), "unknown");
  }
}

TEST(ObjectCatalogueTest, SizesSpanOrderOfMagnitude) {
  // Section III-A: "sizes of various moving objects vary by an order of
  // magnitude in any given scene."
  float minW = 1e9F;
  float maxW = 0.0F;
  for (const ObjectClassModel& m : objectCatalogue()) {
    minW = std::min(minW, m.width);
    maxW = std::max(maxW, m.width);
  }
  EXPECT_GE(maxW / minW, 10.0F);
}

TEST(ObjectCatalogueTest, SpeedsCoverSubPixelToSixPixelsPerFrame) {
  // At tF = 66 ms, 1 px/frame ~= 15 px/s.  Humans must be sub-pixel,
  // fastest cars ~5-6 px/frame.
  const ObjectClassModel& human = classModel(ObjectClass::kHuman);
  EXPECT_LT(human.maxSpeed / 15.0F, 1.0F);
  const ObjectClassModel& car = classModel(ObjectClass::kCar);
  EXPECT_GE(car.maxSpeed / 15.0F, 5.0F);
  EXPECT_LE(car.maxSpeed / 15.0F, 7.0F);
}

TEST(ObjectCatalogueTest, FlatSidedVehiclesHaveLowInteriorDensity) {
  // The fragmentation phenomenon (Fig. 3) requires buses/trucks to emit
  // few interior events relative to cars.
  EXPECT_LT(classModel(ObjectClass::kBus).interiorEventDensity,
            classModel(ObjectClass::kCar).interiorEventDensity);
  EXPECT_LT(classModel(ObjectClass::kTruck).interiorEventDensity,
            classModel(ObjectClass::kCar).interiorEventDensity);
}

TEST(SampleObjectTest, RespectsLensScale) {
  Rng rng(3);
  const SampledObject full = sampleObject(ObjectClass::kBus, 1.0F, rng);
  Rng rng2(3);
  const SampledObject half = sampleObject(ObjectClass::kBus, 0.5F, rng2);
  EXPECT_NEAR(half.width, full.width / 2.0F, 1e-4F);
  EXPECT_NEAR(half.height, full.height / 2.0F, 1e-4F);
  EXPECT_NEAR(half.speed, full.speed / 2.0F, 1e-4F);
}

TEST(SampleObjectTest, SizesWithinJitterBounds) {
  Rng rng(5);
  const ObjectClassModel& m = classModel(ObjectClass::kCar);
  for (int i = 0; i < 200; ++i) {
    const SampledObject s = sampleObject(ObjectClass::kCar, 1.0F, rng);
    EXPECT_GE(s.width, m.width * (1.0F - m.sizeJitter) - 1e-3F);
    EXPECT_LE(s.width, m.width * (1.0F + m.sizeJitter) + 1e-3F);
    EXPECT_GE(s.speed, m.minSpeed - 1e-3F);
    EXPECT_LE(s.speed, m.maxSpeed + 1e-3F);
    EXPECT_EQ(s.kind, ObjectClass::kCar);
  }
}

TEST(SampleObjectTest, TinyLensScaleClampedToMinimumSize) {
  Rng rng(5);
  const SampledObject s = sampleObject(ObjectClass::kHuman, 0.01F, rng);
  EXPECT_GE(s.width, 2.0F);
  EXPECT_GE(s.height, 2.0F);
}

}  // namespace
}  // namespace ebbiot
