#include "src/sim/recording.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(RecordingSpecTest, EngMatchesTableOne) {
  const RecordingSpec spec = makeSyntheticEng();
  EXPECT_EQ(spec.name, "SyntheticENG");
  EXPECT_DOUBLE_EQ(spec.lensMm, 12.0);
  EXPECT_DOUBLE_EQ(spec.durationS, 2998.4);
  EXPECT_EQ(spec.paperEventCount, 107'500'000U);
  EXPECT_FLOAT_EQ(spec.traffic.lensScale, 1.0F);
}

TEST(RecordingSpecTest, Lt4MatchesTableOne) {
  const RecordingSpec spec = makeSyntheticLt4();
  EXPECT_EQ(spec.name, "SyntheticLT4");
  EXPECT_DOUBLE_EQ(spec.lensMm, 6.0);
  EXPECT_DOUBLE_EQ(spec.durationS, 999.5);
  EXPECT_EQ(spec.paperEventCount, 12'500'000U);
  EXPECT_FLOAT_EQ(spec.traffic.lensScale, 0.5F);
}

TEST(RecordingSpecTest, ScaledRecordingShrinksDurationAndTarget) {
  const RecordingSpec spec = scaledRecording(makeSyntheticEng(), 0.1);
  EXPECT_NEAR(spec.durationS, 299.84, 1e-9);
  EXPECT_EQ(spec.paperEventCount, 10'750'000U);
  EXPECT_THROW((void)scaledRecording(makeSyntheticEng(), 0.0), LogicError);
  EXPECT_THROW((void)scaledRecording(makeSyntheticEng(), 1.5), LogicError);
}

TEST(OpenRecordingTest, ProducesWorkingSourceAndScenario) {
  const RecordingSpec spec = scaledRecording(makeSyntheticEng(), 0.005);
  Recording rec = openRecording(spec);
  ASSERT_NE(rec.scenario, nullptr);
  ASSERT_NE(rec.source, nullptr);
  EXPECT_EQ(rec.source->width(), 240);
  EXPECT_EQ(rec.source->height(), 180);
  std::size_t events = 0;
  for (int i = 0; i < 30; ++i) {
    events += rec.source->nextWindow(spec.framePeriod).size();
  }
  EXPECT_GT(events, 0U);
}

TEST(OpenRecordingTest, EventRateNearTableOneTarget) {
  // Generate ~60 s of ENG and check the event rate lands within 2x of the
  // Table I average (35.9 k events/s).  The full-duration comparison is
  // bench_table1_datasets' job; this is the smoke-level calibration gate.
  const RecordingSpec spec = scaledRecording(makeSyntheticEng(), 0.02);
  Recording rec = openRecording(spec);
  std::uint64_t events = 0;
  const auto frames = static_cast<std::size_t>(
      secondsToUs(spec.durationS) / spec.framePeriod);
  for (std::size_t i = 0; i < frames; ++i) {
    events += rec.source->nextWindow(spec.framePeriod).size();
  }
  const double rate = static_cast<double>(events) / spec.durationS;
  const double target = static_cast<double>(makeSyntheticEng().paperEventCount) /
                        makeSyntheticEng().durationS;
  EXPECT_GT(rate, target * 0.5);
  EXPECT_LT(rate, target * 2.0);
}

TEST(OpenRecordingTest, Lt4HasLowerRateThanEng) {
  auto rateOf = [](const RecordingSpec& base) {
    const RecordingSpec spec = scaledRecording(base, 0.02);
    Recording rec = openRecording(spec);
    std::uint64_t events = 0;
    const auto frames = static_cast<std::size_t>(
        secondsToUs(spec.durationS) / spec.framePeriod);
    for (std::size_t i = 0; i < frames; ++i) {
      events += rec.source->nextWindow(spec.framePeriod).size();
    }
    return static_cast<double>(events) / spec.durationS;
  };
  EXPECT_GT(rateOf(makeSyntheticEng()), 2.0 * rateOf(makeSyntheticLt4()));
}

}  // namespace
}  // namespace ebbiot
