// Negative-compile probe for the Clang Thread Safety Analysis leg.
//
// Compiled two ways by CI's static-analysis job (and never linked into
// anything):
//
//   1. Without EBBIOT_EXPECT_THREAD_SAFETY_ERROR: the guarded access is
//      compiled out, the TU is empty of violations, and it must build
//      clean under -Wthread-safety -Werror.  This proves the probe
//      itself isn't what trips the analysis.
//   2. With -DEBBIOT_EXPECT_THREAD_SAFETY_ERROR: touchWithoutLock()
//      reads and writes a GUARDED_BY field with no lock held, and the
//      build MUST fail.  If it ever compiles, the analysis has gone
//      dark — macros expanding to nothing under Clang, the warning
//      dropped from the flags, or the wrapper types losing their
//      capability attributes — and CI fails loudly instead of the
//      annotations silently becoming decoration.
//
// Under GCC the attributes are no-ops and both variants compile; only
// the Clang leg gives this file meaning.
#include <cstdint>

#include "src/common/thread_annotations.hpp"

namespace ebbiot::negative {

class Counter {
 public:
  void increment() {
    const MutexLock lock(mutex_);
    value_ += 1;
  }

#ifdef EBBIOT_EXPECT_THREAD_SAFETY_ERROR
  // error: reading/writing variable 'value_' requires holding mutex
  // 'mutex_' [-Werror,-Wthread-safety-analysis]
  std::uint64_t touchWithoutLock() {
    value_ += 1;
    return value_;
  }
#endif

 private:
  Mutex mutex_;
  std::uint64_t value_ EBBIOT_GUARDED_BY(mutex_) = 0;
};

// Anchor so the TU is never empty and the class is instantiated.
std::uint64_t poke() {
  Counter counter;
  counter.increment();
#ifdef EBBIOT_EXPECT_THREAD_SAFETY_ERROR
  return counter.touchWithoutLock();
#else
  return 0;
#endif
}

}  // namespace ebbiot::negative
