// Parameterized end-to-end pipeline properties: invariants that must
// hold across the configuration grid, not just at the paper's defaults.
#include <gtest/gtest.h>

#include <set>

#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

struct PipelineCase {
  int medianPatch;
  int s1;
  int s2;
  RpnKind rpnKind;
};

class PipelineConfigSweep : public ::testing::TestWithParam<PipelineCase> {
 protected:
  static EventPacket window(FastEventSynth& synth) {
    return latchReadout(synth.nextWindow(kDefaultFramePeriodUs), 240, 180);
  }
};

TEST_P(PipelineConfigSweep, InvariantsHoldOverBusyTraffic) {
  const auto& [patch, s1, s2, rpnKind] = GetParam();
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{-48, 40, 48, 22}, Vec2f{65, 0},
                  0, secondsToUs(10.0));
  scene.addLinear(ObjectClass::kBus, BBox{240, 75, 120, 38}, Vec2f{-45, 0},
                  0, secondsToUs(10.0));
  scene.addLinear(ObjectClass::kVan, BBox{-60, 110, 60, 28}, Vec2f{50, 0},
                  secondsToUs(1.0), secondsToUs(10.0));
  EventSynthConfig synthConfig;
  synthConfig.backgroundActivityHz = 0.3;
  synthConfig.seed = 99;
  FastEventSynth synth(scene, synthConfig);

  EbbiotPipelineConfig config;
  config.medianPatch = patch;
  config.rpn.s1 = s1;
  config.rpn.s2 = s2;
  config.rpnKind = rpnKind;
  EbbiotPipeline pipeline(config);

  for (int f = 0; f < 45; ++f) {
    const Tracks tracks = pipeline.processWindow(window(synth));
    // Never more tracks than slots; ids unique; boxes non-empty and
    // near the frame (coasting may overhang slightly).
    EXPECT_LE(tracks.size(), 8U);
    std::set<std::uint32_t> ids;
    for (const Track& t : tracks) {
      EXPECT_TRUE(ids.insert(t.id).second);
      EXPECT_FALSE(t.box.empty());
      EXPECT_FALSE(clampToFrame(t.box, 300, 240).empty());
      EXPECT_GE(t.hits, 1);
      EXPECT_GE(t.age, t.hits);
    }
    // Ops are measured every frame and bounded: the front end can't
    // exceed a few multiples of A*B even at p = 5.
    const auto total = pipeline.lastOps().total();
    EXPECT_GT(total, 0U);
    EXPECT_LT(total, 20U * 240U * 180U);
    // Filtered image never has more pixels than the raw EBBI for p >= 3
    // on sparse frames... (strictly: median can fill holes, so allow a
    // small excess).
    EXPECT_LE(pipeline.lastFiltered().popcount(),
              pipeline.lastEbbi().popcount() * 11 / 10 + 16);
  }
}

TEST_P(PipelineConfigSweep, DeterministicAcrossRuns) {
  const auto& [patch, s1, s2, rpnKind] = GetParam();
  auto run = [&] {
    ScriptedScene scene(240, 180);
    scene.addLinear(ObjectClass::kCar, BBox{-48, 70, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(5.0));
    EventSynthConfig synthConfig;
    synthConfig.seed = 7;
    FastEventSynth synth(scene, synthConfig);
    EbbiotPipelineConfig config;
    config.medianPatch = patch;
    config.rpn.s1 = s1;
    config.rpn.s2 = s2;
    config.rpnKind = rpnKind;
    EbbiotPipeline pipeline(config);
    Tracks last;
    std::uint64_t opsTotal = 0;
    for (int f = 0; f < 30; ++f) {
      last = pipeline.processWindow(window(synth));
      opsTotal += pipeline.lastOps().total();
    }
    return std::pair{last, opsTotal};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.second, b.second);
  ASSERT_EQ(a.first.size(), b.first.size());
  for (std::size_t i = 0; i < a.first.size(); ++i) {
    EXPECT_EQ(a.first[i], b.first[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, PipelineConfigSweep,
    ::testing::Values(PipelineCase{3, 6, 3, RpnKind::kHistogram},  // paper
                      PipelineCase{1, 6, 3, RpnKind::kHistogram},
                      PipelineCase{5, 6, 3, RpnKind::kHistogram},
                      PipelineCase{3, 2, 2, RpnKind::kHistogram},
                      PipelineCase{3, 12, 6, RpnKind::kHistogram},
                      PipelineCase{3, 6, 3, RpnKind::kCca}));

}  // namespace
}  // namespace ebbiot
