#include "src/eval/matching.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

Tracks makeTracks(std::initializer_list<BBox> boxes) {
  Tracks out;
  std::uint32_t id = 1;
  for (const BBox& b : boxes) {
    Track t;
    t.id = id++;
    t.box = b;
    out.push_back(t);
  }
  return out;
}

std::vector<GtBox> makeGt(std::initializer_list<BBox> boxes) {
  std::vector<GtBox> out;
  std::uint32_t id = 1;
  for (const BBox& b : boxes) {
    out.push_back(GtBox{id++, ObjectClass::kCar, b});
  }
  return out;
}

TEST(MatchFrameTest, PerfectMatch) {
  const auto result = matchFrame(makeTracks({BBox{10, 10, 20, 10}}),
                                 makeGt({BBox{10, 10, 20, 10}}), 0.5F);
  EXPECT_EQ(result.truePositives(), 1U);
  EXPECT_EQ(result.falsePositives(), 0U);
  EXPECT_EQ(result.falseNegatives(), 0U);
  EXPECT_FLOAT_EQ(result.matches[0].iou, 1.0F);
}

TEST(MatchFrameTest, NoOverlapNoMatch) {
  const auto result = matchFrame(makeTracks({BBox{10, 10, 20, 10}}),
                                 makeGt({BBox{100, 100, 20, 10}}), 0.1F);
  EXPECT_EQ(result.truePositives(), 0U);
  EXPECT_EQ(result.falsePositives(), 1U);
  EXPECT_EQ(result.falseNegatives(), 1U);
}

TEST(MatchFrameTest, ThresholdGatesMatch) {
  // IoU of these boxes = 50/150 = 1/3.
  const Tracks pred = makeTracks({BBox{0, 0, 10, 10}});
  const auto gt = makeGt({BBox{5, 0, 10, 10}});
  EXPECT_EQ(matchFrame(pred, gt, 0.30F).truePositives(), 1U);
  EXPECT_EQ(matchFrame(pred, gt, 0.34F).truePositives(), 0U);
}

TEST(MatchFrameTest, OneToOneAssignment) {
  // Two predictions over one ground truth: only one true positive.
  const auto result = matchFrame(
      makeTracks({BBox{10, 10, 20, 10}, BBox{11, 10, 20, 10}}),
      makeGt({BBox{10, 10, 20, 10}}), 0.5F);
  EXPECT_EQ(result.truePositives(), 1U);
  EXPECT_EQ(result.falsePositives(), 1U);
  // The better-overlapping prediction won.
  EXPECT_EQ(result.matches[0].predIndex, 0U);
}

TEST(MatchFrameTest, GreedyPicksBestPairsFirst) {
  // pred0 overlaps gt0 weakly and gt1 strongly; pred1 overlaps gt0
  // strongly.  Greedy must pair (pred0, gt1) and (pred1, gt0).
  const Tracks pred = makeTracks({BBox{50, 0, 10, 10}, BBox{2, 0, 10, 10}});
  const auto gt = makeGt({BBox{0, 0, 10, 10}, BBox{50, 0, 10, 10}});
  const auto result = matchFrame(pred, gt, 0.1F);
  ASSERT_EQ(result.truePositives(), 2U);
  for (const MatchedPair& m : result.matches) {
    if (m.predIndex == 0) {
      EXPECT_EQ(m.gtIndex, 1U);
    } else {
      EXPECT_EQ(m.gtIndex, 0U);
    }
  }
}

TEST(MatchFrameTest, EmptyInputs) {
  const auto r1 = matchFrame({}, makeGt({BBox{0, 0, 5, 5}}), 0.5F);
  EXPECT_EQ(r1.falseNegatives(), 1U);
  const auto r2 = matchFrame(makeTracks({BBox{0, 0, 5, 5}}), {}, 0.5F);
  EXPECT_EQ(r2.falsePositives(), 1U);
  const auto r3 = matchFrame({}, {}, 0.5F);
  EXPECT_EQ(r3.truePositives(), 0U);
}

TEST(MatchFrameTest, ZeroThresholdMeansAnyPositiveOverlap) {
  // A sweep point at threshold 0.0 must not degenerate to "every pair
  // matches": disjoint boxes stay unmatched, any positive overlap counts.
  const Tracks pred = makeTracks({BBox{0, 0, 10, 10}});
  // Sliver overlap: IoU = 9/(191) ~ 0.047 > 0.
  EXPECT_EQ(matchFrame(pred, makeGt({BBox{9, 1, 10, 10}}), 0.0F)
                .truePositives(),
            1U);
  // Disjoint: no match even at 0.0.
  EXPECT_EQ(matchFrame(pred, makeGt({BBox{50, 50, 10, 10}}), 0.0F)
                .truePositives(),
            0U);
  // Touching edges (zero-area intersection, IoU == 0): still no match.
  EXPECT_EQ(matchFrame(pred, makeGt({BBox{10, 0, 10, 10}}), 0.0F)
                .truePositives(),
            0U);
}

TEST(MatchFrameTest, ZeroThresholdConsistentWithEpsilonThreshold) {
  // Threshold 0.0 and a vanishingly small positive threshold agree: the
  // zero point of the sweep is the limit of the curve, not a special case.
  const Tracks pred = makeTracks({BBox{0, 0, 10, 10}, BBox{30, 30, 4, 4}});
  const auto gt = makeGt({BBox{8, 8, 10, 10}, BBox{100, 100, 4, 4}});
  const auto atZero = matchFrame(pred, gt, 0.0F);
  const auto atEps = matchFrame(pred, gt, 1e-6F);
  EXPECT_EQ(atZero.truePositives(), atEps.truePositives());
  EXPECT_EQ(atZero.falsePositives(), atEps.falsePositives());
  EXPECT_EQ(atZero.falseNegatives(), atEps.falseNegatives());
}

TEST(MatchFrameTest, InvalidThresholdRejected) {
  EXPECT_THROW((void)matchFrame({}, {}, -0.1F), LogicError);
  EXPECT_THROW((void)matchFrame({}, {}, 1.5F), LogicError);
}

TEST(MatchFrameTest, CountsAreConsistent) {
  const auto result = matchFrame(
      makeTracks({BBox{0, 0, 10, 10}, BBox{30, 0, 10, 10},
                  BBox{200, 100, 10, 10}}),
      makeGt({BBox{1, 0, 10, 10}, BBox{31, 0, 10, 10},
              BBox{100, 100, 10, 10}, BBox{150, 50, 10, 10}}),
      0.5F);
  EXPECT_EQ(result.predictions, 3U);
  EXPECT_EQ(result.groundTruths, 4U);
  EXPECT_EQ(result.truePositives(), 2U);
  EXPECT_EQ(result.falsePositives(), 1U);
  EXPECT_EQ(result.falseNegatives(), 2U);
}

}  // namespace
}  // namespace ebbiot
