#include "src/filters/refractory_filter.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(RefractoryFilterTest, FirstEventPasses) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(RefractoryFilterTest, EventWithinDeadTimeDropped) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  p.push(Event{5, 5, Polarity::kOff, 600});   // 500 us later: dropped
  p.push(Event{5, 5, Polarity::kOn, 1'100});  // 1000 us after first: passes
  const EventPacket out = filter.filter(p);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].t, 100);
  EXPECT_EQ(out[1].t, 1'100);
}

TEST(RefractoryFilterTest, DifferentPixelsIndependent) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  p.push(Event{6, 5, Polarity::kOn, 150});
  EXPECT_EQ(filter.filter(p).size(), 2U);
}

TEST(RefractoryFilterTest, StatePersistsAcrossPackets) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket a(0, 500);
  a.push(Event{5, 5, Polarity::kOn, 400});
  (void)filter.filter(a);
  EventPacket b(500, 2'000);
  b.push(Event{5, 5, Polarity::kOn, 900});   // 500 us after: dropped
  b.push(Event{5, 5, Polarity::kOn, 1'500});  // 1100 us after: passes
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(RefractoryFilterTest, ResetForgetsHistory) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket a(0, 500);
  a.push(Event{5, 5, Polarity::kOn, 400});
  (void)filter.filter(a);
  filter.reset();
  EventPacket b(500, 1'000);
  b.push(Event{5, 5, Polarity::kOn, 600});
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(RefractoryFilterTest, ZeroPeriodPassesEverything) {
  RefractoryFilter filter(32, 32, 0);
  EventPacket p(0, 10'000);
  for (int i = 0; i < 5; ++i) {
    p.push(Event{5, 5, Polarity::kOn, static_cast<TimeUs>(i)});
  }
  EXPECT_EQ(filter.filter(p).size(), 5U);
}

TEST(RefractoryFilterTest, UnsortedPacketRejected) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{1, 1, Polarity::kOn, 500});
  p.push(Event{2, 2, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

TEST(RefractoryFilterTest, BoundsCheckedAgainstGeometry) {
  RefractoryFilter filter(8, 8, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{9, 1, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

}  // namespace
}  // namespace ebbiot
