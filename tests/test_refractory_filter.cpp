#include "src/filters/refractory_filter.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(RefractoryFilterTest, FirstEventPasses) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  EXPECT_EQ(filter.filter(p).size(), 1U);
}

TEST(RefractoryFilterTest, EventWithinDeadTimeDropped) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  p.push(Event{5, 5, Polarity::kOff, 600});   // 500 us later: dropped
  p.push(Event{5, 5, Polarity::kOn, 1'100});  // 1000 us after first: passes
  const EventPacket out = filter.filter(p);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].t, 100);
  EXPECT_EQ(out[1].t, 1'100);
}

TEST(RefractoryFilterTest, DifferentPixelsIndependent) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  p.push(Event{6, 5, Polarity::kOn, 150});
  EXPECT_EQ(filter.filter(p).size(), 2U);
}

TEST(RefractoryFilterTest, StatePersistsAcrossPackets) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket a(0, 500);
  a.push(Event{5, 5, Polarity::kOn, 400});
  (void)filter.filter(a);
  EventPacket b(500, 2'000);
  b.push(Event{5, 5, Polarity::kOn, 900});   // 500 us after: dropped
  b.push(Event{5, 5, Polarity::kOn, 1'500});  // 1100 us after: passes
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(RefractoryFilterTest, ResetForgetsHistory) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket a(0, 500);
  a.push(Event{5, 5, Polarity::kOn, 400});
  (void)filter.filter(a);
  filter.reset();
  EventPacket b(500, 1'000);
  b.push(Event{5, 5, Polarity::kOn, 600});
  EXPECT_EQ(filter.filter(b).size(), 1U);
}

TEST(RefractoryFilterTest, ZeroPeriodPassesEverything) {
  RefractoryFilter filter(32, 32, 0);
  EventPacket p(0, 10'000);
  for (int i = 0; i < 5; ++i) {
    p.push(Event{5, 5, Polarity::kOn, static_cast<TimeUs>(i)});
  }
  EXPECT_EQ(filter.filter(p).size(), 5U);
}

TEST(RefractoryFilterTest, UnsortedPacketRejected) {
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{1, 1, Polarity::kOn, 500});
  p.push(Event{2, 2, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

TEST(RefractoryFilterTest, BoundsCheckedAgainstGeometry) {
  RefractoryFilter filter(8, 8, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{9, 1, Polarity::kOn, 100});
  EXPECT_THROW((void)filter.filter(p), LogicError);
}

TEST(RefractoryFilterTest, ConfigValidationThrows) {
  RefractoryFilterConfig good;
  EXPECT_NO_THROW(good.validate());
  RefractoryFilterConfig c = good;
  c.width = 0;
  EXPECT_THROW(RefractoryFilter{c}, ConfigError);
  c = good;
  c.height = -2;
  EXPECT_THROW(RefractoryFilter{c}, ConfigError);
  c = good;
  c.refractoryPeriod = -1;
  EXPECT_THROW(RefractoryFilter{c}, ConfigError);
  c = good;
  c.refractoryPeriod = 0;  // explicitly allowed: pass-through filter
  EXPECT_NO_THROW(RefractoryFilter{c});
}

TEST(RefractoryFilterTest, NegativeTimestampsAreNotNeverFired) {
  // An event at t = -1 (legal after node-side unwrap rebasing) must arm
  // the refractory window like any other; the old kNever = -1 sentinel
  // read it back as an unfired pixel and passed the follow-up event.
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(-10, 10'000);
  p.push(Event{5, 5, Polarity::kOn, -1});
  p.push(Event{5, 5, Polarity::kOn, 500});    // 501 us later: dropped
  p.push(Event{5, 5, Polarity::kOn, 1'000});  // 1001 us later: passes
  const EventPacket out = filter.filter(p);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].t, -1);
  EXPECT_EQ(out[1].t, 1'000);
}

TEST(RefractoryFilterTest, OnlyKeptEventsArmTheWindow) {
  // A dropped event must not extend the dead time (the surface records
  // kept events only) — matching the DAVIS pixel's own behaviour.
  RefractoryFilter filter(32, 32, 1'000);
  EventPacket p(0, 10'000);
  p.push(Event{5, 5, Polarity::kOn, 100});
  p.push(Event{5, 5, Polarity::kOn, 900});    // dropped; must not re-arm
  p.push(Event{5, 5, Polarity::kOn, 1'200});  // 1100 us after the *kept* one
  EXPECT_EQ(filter.filter(p).size(), 2U);
}

TEST(RefractoryFilterTest, FilterIntoReusesPacketAndMatchesFilter) {
  RefractoryFilter a(32, 32, 1'000);
  RefractoryFilter b(32, 32, 1'000);
  EventPacket out;
  for (int round = 0; round < 3; ++round) {
    EventPacket p(round * 10'000, (round + 1) * 10'000);
    for (int i = 0; i < 40; ++i) {
      p.push(Event{static_cast<std::uint16_t>(i % 4 + 3),
                   static_cast<std::uint16_t>(i % 3 + 3), Polarity::kOn,
                   static_cast<TimeUs>(round * 10'000 + i * 211)});
    }
    a.filterInto(p, out);
    const EventPacket byValue = b.filter(p);
    ASSERT_EQ(out.size(), byValue.size()) << "round " << round;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], byValue[i]);
    }
  }
}

}  // namespace
}  // namespace ebbiot
