#include "src/trackers/kalman.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

KalmanTrackerConfig testConfig() {
  KalmanTrackerConfig c;
  c.minHitsToReport = 2;
  c.minSeedArea = 4.0F;
  return c;
}

RegionProposals props(std::initializer_list<BBox> boxes) {
  RegionProposals out;
  for (const BBox& b : boxes) {
    out.push_back(RegionProposal{b, static_cast<std::uint64_t>(b.area())});
  }
  return out;
}

TEST(ConstantVelocityKalmanTest, InitialStateAtMeasurement) {
  ConstantVelocityKalman kf(Vec2f{10, 20}, KalmanConfig{});
  EXPECT_FLOAT_EQ(kf.position().x, 10.0F);
  EXPECT_FLOAT_EQ(kf.position().y, 20.0F);
  EXPECT_FLOAT_EQ(kf.velocity().x, 0.0F);
}

TEST(ConstantVelocityKalmanTest, ConvergesToConstantVelocity) {
  ConstantVelocityKalman kf(Vec2f{0, 0}, KalmanConfig{});
  for (int f = 1; f <= 30; ++f) {
    kf.predict();
    kf.update(Vec2f{3.0F * static_cast<float>(f),
                    -1.0F * static_cast<float>(f)});
  }
  EXPECT_NEAR(kf.velocity().x, 3.0F, 0.2F);
  EXPECT_NEAR(kf.velocity().y, -1.0F, 0.2F);
  EXPECT_NEAR(kf.position().x, 90.0F, 1.0F);
}

TEST(ConstantVelocityKalmanTest, PredictExtrapolatesLinearly) {
  ConstantVelocityKalman kf(Vec2f{0, 0}, KalmanConfig{});
  for (int f = 1; f <= 20; ++f) {
    kf.predict();
    kf.update(Vec2f{2.0F * static_cast<float>(f), 0.0F});
  }
  const float xBefore = kf.position().x;
  kf.predict();  // no measurement
  EXPECT_NEAR(kf.position().x - xBefore, 2.0F, 0.3F);
}

TEST(ConstantVelocityKalmanTest, NoisyMeasurementsSmoothed) {
  Rng rng(11);
  ConstantVelocityKalman kf(Vec2f{0, 0}, KalmanConfig{});
  double errSum = 0.0;
  double rawErrSum = 0.0;
  int n = 0;
  for (int f = 1; f <= 100; ++f) {
    kf.predict();
    const float truth = 2.0F * static_cast<float>(f);
    const float noisy = truth + static_cast<float>(rng.normal(0.0, 2.0));
    kf.update(Vec2f{noisy, 0.0F});
    if (f > 20) {
      errSum += std::abs(kf.position().x - truth);
      rawErrSum += std::abs(noisy - truth);
      ++n;
    }
  }
  // Filtered error beats raw measurement error.
  EXPECT_LT(errSum / n, rawErrSum / n);
}

TEST(ConstantVelocityKalmanTest, CovarianceShrinksWithUpdates) {
  ConstantVelocityKalman kf(Vec2f{0, 0}, KalmanConfig{});
  const double before = kf.covariance()(2, 2);  // velocity variance
  for (int f = 1; f <= 10; ++f) {
    kf.predict();
    kf.update(Vec2f{1.0F * static_cast<float>(f), 0.0F});
  }
  EXPECT_LT(kf.covariance()(2, 2), before);
}

TEST(ConstantVelocityKalmanTest, InnovationReported) {
  ConstantVelocityKalman kf(Vec2f{0, 0}, KalmanConfig{});
  kf.predict();
  kf.update(Vec2f{3, 4});
  EXPECT_NEAR(kf.lastInnovation(), 5.0, 1e-3);
}

TEST(KalmanTrackerTest, SeedsAndReports) {
  KalmanTracker tracker(testConfig());
  EXPECT_TRUE(tracker.update(props({BBox{10, 10, 20, 10}})).empty());
  const Tracks t = tracker.update(props({BBox{12, 10, 20, 10}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(tracker.activeCount(), 1);
}

TEST(KalmanTrackerTest, TracksMovingObject) {
  KalmanTracker tracker(testConfig());
  Tracks last;
  for (int f = 0; f < 25; ++f) {
    const float x = 10.0F + 3.0F * static_cast<float>(f);
    last = tracker.update(props({BBox{x, 50, 30, 16}}));
  }
  ASSERT_EQ(last.size(), 1U);
  EXPECT_NEAR(last[0].velocity.x, 3.0F, 0.4F);
  EXPECT_NEAR(last[0].box.center().x, 10.0F + 3.0F * 24.0F + 15.0F, 3.0F);
  EXPECT_EQ(last[0].id, 1U);
}

TEST(KalmanTrackerTest, GateRejectsFarProposals) {
  KalmanTrackerConfig config = testConfig();
  config.gateDistance = 20.0;
  KalmanTracker tracker(config);
  (void)tracker.update(props({BBox{10, 10, 20, 10}}));
  // A proposal 100 px away cannot be associated: it seeds a second track
  // and the first coasts.
  (void)tracker.update(props({BBox{150, 10, 20, 10}}));
  EXPECT_EQ(tracker.activeCount(), 2);
}

TEST(KalmanTrackerTest, GreedyAssociationIsOneToOne) {
  KalmanTracker tracker(testConfig());
  (void)tracker.update(props({BBox{10, 50, 20, 10}, BBox{60, 50, 20, 10}}));
  (void)tracker.update(props({BBox{12, 50, 20, 10}, BBox{62, 50, 20, 10}}));
  EXPECT_EQ(tracker.activeCount(), 2);
  // One proposal near both tracks: only one track gets it.
  const Tracks t = tracker.update(props({BBox{36, 50, 20, 10}}));
  EXPECT_EQ(tracker.activeCount(), 2);
  int matched = 0;
  for (const Track& track : t) {
    if (track.misses == 0) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, 1);
}

TEST(KalmanTrackerTest, CoastsAndDies) {
  KalmanTrackerConfig config = testConfig();
  config.maxMisses = 2;
  KalmanTracker tracker(config);
  for (int f = 0; f < 5; ++f) {
    (void)tracker.update(props({BBox{50.0F + 2.0F * f, 50, 20, 10}}));
  }
  EXPECT_EQ(tracker.activeCount(), 1);
  (void)tracker.update({});
  (void)tracker.update({});
  EXPECT_EQ(tracker.activeCount(), 1);
  (void)tracker.update({});
  EXPECT_EQ(tracker.activeCount(), 0);
}

TEST(KalmanTrackerTest, CapsAtMaxTracks) {
  KalmanTrackerConfig config = testConfig();
  config.maxTracks = 2;
  KalmanTracker tracker(config);
  (void)tracker.update(props(
      {BBox{10, 50, 20, 10}, BBox{60, 50, 20, 10}, BBox{110, 50, 20, 10}}));
  EXPECT_EQ(tracker.activeCount(), 2);
}

TEST(KalmanTrackerTest, SizeSmoothingDampsFlicker) {
  KalmanTracker tracker(testConfig());
  (void)tracker.update(props({BBox{50, 50, 30, 16}}));
  (void)tracker.update(props({BBox{52, 50, 30, 16}}));
  // A fragment proposal with half the width: the reported box shrinks
  // only partially.
  const Tracks t = tracker.update(props({BBox{54, 50, 15, 16}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_GT(t[0].box.w, 22.0F);
}

TEST(KalmanTrackerTest, InvalidConfigRejected) {
  KalmanTrackerConfig bad = testConfig();
  bad.maxTracks = 0;
  EXPECT_THROW(KalmanTracker{bad}, LogicError);
  KalmanTrackerConfig bad2 = testConfig();
  bad2.gateDistance = 0.0;
  EXPECT_THROW(KalmanTracker{bad2}, LogicError);
}

// Property: invariants over random proposal streams.
class KalmanTrackerInvariantProperty : public ::testing::TestWithParam<int> {
};

TEST_P(KalmanTrackerInvariantProperty, FrameInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  KalmanTracker tracker(testConfig());
  for (int f = 0; f < 60; ++f) {
    RegionProposals p;
    const int count = static_cast<int>(rng.uniformInt(0, 4));
    for (int i = 0; i < count; ++i) {
      p.push_back(RegionProposal{
          BBox{static_cast<float>(rng.uniformInt(0, 219)),
               static_cast<float>(rng.uniformInt(0, 159)),
               static_cast<float>(rng.uniformInt(4, 64)),
               static_cast<float>(rng.uniformInt(4, 34))},
          10});
    }
    const Tracks tracks = tracker.update(p);
    EXPECT_LE(tracker.activeCount(), tracker.config().maxTracks);
    std::set<std::uint32_t> ids;
    for (const Track& t : tracks) {
      EXPECT_FALSE(t.box.empty());
      EXPECT_TRUE(ids.insert(t.id).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KalmanTrackerInvariantProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ebbiot
