#include "src/events/stream_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

EventPacket makeTestPacket() {
  EventPacket p(100, 10'000);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Event e;
    e.x = static_cast<std::uint16_t>(rng.uniformInt(0, 239));
    e.y = static_cast<std::uint16_t>(rng.uniformInt(0, 179));
    e.p = rng.chance(0.5) ? Polarity::kOn : Polarity::kOff;
    e.t = rng.uniformInt(100, 9'999);
    p.push(e);
  }
  p.sortByTime();
  return p;
}

TEST(BinaryStreamTest, RoundTripPreservesEverything) {
  const EventPacket original = makeTestPacket();
  std::stringstream buffer;
  writeBinaryStream(buffer, original, 240, 180);
  const BinaryStreamContents back = readBinaryStream(buffer);
  EXPECT_EQ(back.header.width, 240);
  EXPECT_EQ(back.header.height, 180);
  EXPECT_EQ(back.header.tStart, original.tStart());
  EXPECT_EQ(back.header.tEnd, original.tEnd());
  EXPECT_EQ(back.header.eventCount, original.size());
  ASSERT_EQ(back.packet.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(back.packet[i], original[i]);
  }
}

TEST(BinaryStreamTest, EmptyPacketRoundTrip) {
  const EventPacket empty(0, 1000);
  std::stringstream buffer;
  writeBinaryStream(buffer, empty, 64, 64);
  const BinaryStreamContents back = readBinaryStream(buffer);
  EXPECT_TRUE(back.packet.empty());
  EXPECT_EQ(back.header.eventCount, 0U);
}

TEST(BinaryStreamTest, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOPE-this-is-not-a-stream";
  EXPECT_THROW((void)readBinaryStream(buffer), IoError);
}

TEST(BinaryStreamTest, TruncatedPayloadRejected) {
  const EventPacket original = makeTestPacket();
  std::stringstream buffer;
  writeBinaryStream(buffer, original, 240, 180);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)readBinaryStream(truncated), IoError);
}

TEST(BinaryStreamTest, CorruptPolarityRejected) {
  const EventPacket p(0, 100);
  std::stringstream buffer;
  writeBinaryStream(buffer, p, 16, 16);
  std::string data = buffer.str();
  // Append a malformed event record and patch the count.
  // Simpler: write a packet with one event, then flip the polarity byte.
  EventPacket one(0, 100);
  one.push(Event{1, 1, Polarity::kOn, 10});
  std::stringstream buf2;
  writeBinaryStream(buf2, one, 16, 16);
  std::string d2 = buf2.str();
  // Event record begins after 4+4+2+2+8+8+8 = 36 bytes; polarity is byte 4
  // of the record (after x:2 and y:2).
  d2[36 + 4] = 0x7F;
  std::stringstream corrupt(d2);
  EXPECT_THROW((void)readBinaryStream(corrupt), IoError);
}

TEST(BinaryStreamTest, OutOfFrameCoordinateRejected) {
  EventPacket one(0, 100);
  one.push(Event{200, 1, Polarity::kOn, 10});
  std::stringstream buffer;
  writeBinaryStream(buffer, one, 240, 180);
  std::string data = buffer.str();
  // Shrink the header's width below the event's x (width lives at offset 8).
  data[8] = 10;
  data[9] = 0;
  std::stringstream corrupt(data);
  EXPECT_THROW((void)readBinaryStream(corrupt), IoError);
}

TEST(BinaryStreamTest, FileRoundTrip) {
  const EventPacket original = makeTestPacket();
  const std::string path = ::testing::TempDir() + "/ebbiot_io_test.ebbt";
  writeBinaryStreamFile(path, original, 240, 180);
  const BinaryStreamContents back = readBinaryStreamFile(path);
  EXPECT_EQ(back.packet.size(), original.size());
}

TEST(BinaryStreamTest, MissingFileThrows) {
  EXPECT_THROW((void)readBinaryStreamFile("/nonexistent/path.ebbt"), IoError);
}

TEST(CsvStreamTest, RoundTrip) {
  const EventPacket original = makeTestPacket();
  std::stringstream buffer;
  writeCsvStream(buffer, original);
  const EventPacket back = readCsvStream(buffer);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(back[i], original[i]);
  }
}

TEST(CsvStreamTest, HeaderValidated) {
  std::stringstream buffer;
  buffer << "x,y,t\n1,2,3\n";
  EXPECT_THROW((void)readCsvStream(buffer), IoError);
}

TEST(CsvStreamTest, MalformedRowRejected) {
  std::stringstream buffer;
  buffer << "t_us,x,y,polarity\n10,5,5,3\n";  // polarity 3 invalid
  EXPECT_THROW((void)readCsvStream(buffer), IoError);
}

TEST(CsvStreamTest, EmptyBodyGivesEmptyPacket) {
  std::stringstream buffer;
  buffer << "t_us,x,y,polarity\n";
  const EventPacket p = readCsvStream(buffer);
  EXPECT_TRUE(p.empty());
}

// ---- malformed-input hardening -------------------------------------

/// Run `f`, requiring it to throw IoError; returns the message.
template <typename F>
std::string ioErrorMessage(F&& f) {
  try {
    f();
  } catch (const IoError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected IoError";
  return {};
}

TEST(BinaryStreamTest, LyingEventCountRejectedBeforeAllocation) {
  // A header declaring billions of events over a near-empty payload must
  // be rejected by comparing against the bytes actually present — not by
  // attempting the reserve.
  EventPacket one(0, 100);
  one.push(Event{1, 1, Polarity::kOn, 10});
  std::stringstream buffer;
  writeBinaryStream(buffer, one, 16, 16);
  std::string data = buffer.str();
  // eventCount is the u64 at offset 28 (magic 4 + version 4 + dims 2+2 +
  // window 8+8); overwrite with 2^40.
  for (int i = 0; i < 8; ++i) {
    data[28 + i] = static_cast<char>(i == 5 ? 1 : 0);
  }
  std::stringstream corrupt(data);
  const std::string what =
      ioErrorMessage([&] { (void)readBinaryStream(corrupt); });
  EXPECT_NE(what.find("declares"), std::string::npos) << what;
  EXPECT_NE(what.find("1099511627776"), std::string::npos) << what;
}

TEST(BinaryStreamTest, SlightlyOverdeclaredCountRejected) {
  // Off-by-one over-declaration: payload holds 1 record, header says 2.
  EventPacket one(0, 100);
  one.push(Event{1, 1, Polarity::kOn, 10});
  std::stringstream buffer;
  writeBinaryStream(buffer, one, 16, 16);
  std::string data = buffer.str();
  data[28] = 2;
  std::stringstream corrupt(data);
  EXPECT_THROW((void)readBinaryStream(corrupt), IoError);
}

TEST(CsvStreamTest, TruncatedRowReportsLineNumber) {
  std::stringstream buffer;
  buffer << "t_us,x,y,polarity\n10,5,5,1\n20,7\n";
  const std::string what =
      ioErrorMessage([&] { (void)readCsvStream(buffer); });
  EXPECT_NE(what.find("line 3"), std::string::npos) << what;
}

TEST(CsvStreamTest, BadPolarityReportsLineNumber) {
  std::stringstream buffer;
  buffer << "t_us,x,y,polarity\n10,5,5,0\n";
  const std::string what =
      ioErrorMessage([&] { (void)readCsvStream(buffer); });
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(CsvStreamTest, OutOfBoundsCoordinateReportsLineNumber) {
  std::stringstream buffer;
  buffer << "t_us,x,y,polarity\n10,5,5,1\n20,70000,5,1\n";
  const std::string what =
      ioErrorMessage([&] { (void)readCsvStream(buffer); });
  EXPECT_NE(what.find("line 3"), std::string::npos) << what;

  std::stringstream negative;
  negative << "t_us,x,y,polarity\n10,-3,5,1\n";
  const std::string what2 =
      ioErrorMessage([&] { (void)readCsvStream(negative); });
  EXPECT_NE(what2.find("line 2"), std::string::npos) << what2;
}

TEST(CsvStreamTest, MissingHeaderReportsLineNumber) {
  std::stringstream empty;
  const std::string what =
      ioErrorMessage([&] { (void)readCsvStream(empty); });
  EXPECT_NE(what.find("line 1"), std::string::npos) << what;

  std::stringstream wrong;
  wrong << "10,5,5,1\n";
  const std::string what2 =
      ioErrorMessage([&] { (void)readCsvStream(wrong); });
  EXPECT_NE(what2.find("line 1"), std::string::npos) << what2;
}

TEST(CsvStreamTest, TrailingGarbageRejected) {
  std::stringstream buffer;
  buffer << "t_us,x,y,polarity\n10,5,5,1,junk\n";
  const std::string what =
      ioErrorMessage([&] { (void)readCsvStream(buffer); });
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

}  // namespace
}  // namespace ebbiot
