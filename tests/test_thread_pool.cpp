#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ebbiot {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1);
  std::vector<int> order;
  pool.parallelFor(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no data race: no workers
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45U);
  }
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(8,
                       [](std::size_t i) {
                         if (i == 3) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallelFor(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::resolveThreadCount(-2), 1);
}

}  // namespace
}  // namespace ebbiot
