#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ebbiot {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1);
  std::vector<int> order;
  pool.parallelFor(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no data race: no workers
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45U);
  }
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(8,
                       [](std::size_t i) {
                         if (i == 3) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallelFor(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::resolveThreadCount(-2), 1);
}

TEST(ThreadPoolTest, MultiThrowRethrowsFirstRecordedAndAbandonsRest) {
  // Every index throws a distinct exception.  Contract: the first
  // *recorded* exception is rethrown after every index either completed
  // or was abandoned — single-threaded that is deterministically index
  // 0, and abandonment means not all 64 indices ran.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::string message;
  try {
    pool.parallelFor(64, [&](std::size_t i) {
      ++ran;
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected parallelFor to throw";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message, "0");
  EXPECT_EQ(ran.load(), 1);  // indices 1..63 abandoned
}

TEST(ThreadPoolTest, MultiThrowAcrossThreadsSurvivesAndRethrowsOne) {
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> ran{0};
    std::string message;
    try {
      pool.parallelFor(128, [&](std::size_t i) {
        ++ran;
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected parallelFor to throw";
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    // The rethrown exception is one of the thrown ones, and at least one
    // index ran; the abandoned remainder never started.
    const int thrown = std::stoi(message);
    EXPECT_GE(thrown, 0);
    EXPECT_LT(thrown, 128);
    EXPECT_GE(ran.load(), 1);
    EXPECT_LE(ran.load(), 128);
  }
  // The pool survives repeated throwing jobs.
  std::atomic<int> count{0};
  pool.parallelFor(16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, StealHeavyStressSkewedCosts) {
  // Heavily skewed per-index costs: a handful of indices dominate, so
  // the guided chunks of the fast indices must migrate to idle workers
  // through the steal path for the pool to finish at all promptly.
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  std::vector<std::uint64_t> out(kTasks, 0);
  pool.parallelFor(kTasks, [&](std::size_t i) {
    std::uint64_t acc = i;
    const int spins = (i % 64 == 0) ? 20000 : 20;
    for (int s = 0; s < spins; ++s) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    out[i] = acc | 1;  // every slot written exactly once, nonzero
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_NE(out[i], 0U) << "index " << i << " never ran";
  }
}

TEST(ThreadPoolTest, NestedParallelForFromTasks) {
  // parallelFor is reentrant: task bodies fan out again on the same
  // pool, and the waiting thread helps instead of deadlocking.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallelFor(8, [&](std::size_t) {
    pool.parallelFor(32, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 8 * 32);
}

TEST(ThreadPoolTest, NestedSubmitRecursiveTree) {
  // Tasks submit subtasks and block on them: a binary tree of depth 6,
  // counted at every node.  Waiting inside a worker must help-execute
  // queued tasks (its own deque or steals) for the tree to complete.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::function<void(int)> node = [&](int depth) {
    ++count;
    if (depth == 0) {
      return;
    }
    const TaskHandle left = pool.submit([&node, depth] { node(depth - 1); });
    const TaskHandle right = pool.submit([&node, depth] { node(depth - 1); });
    pool.wait(left);
    pool.wait(right);
  };
  const TaskHandle root = pool.submit([&node] { node(6); });
  pool.wait(root);
  EXPECT_EQ(count.load(), (1 << 7) - 1);
}

TEST(TaskGraphTest, DependenciesOrderDiamond) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::mutex mutex;
    std::vector<char> order;
    auto record = [&](char who) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(who);
    };
    const TaskHandle a = pool.submit([&] { record('a'); });
    const TaskHandle b = pool.submit([&] { record('b'); }, {a});
    const TaskHandle c = pool.submit([&] { record('c'); }, {a});
    const TaskHandle d = pool.submit([&] { record('d'); }, {b, c});
    pool.wait(d);
    ASSERT_EQ(order.size(), 4U);
    EXPECT_EQ(order.front(), 'a');
    EXPECT_EQ(order.back(), 'd');
    EXPECT_TRUE(a.done() && b.done() && c.done() && d.done());
  }
}

TEST(TaskGraphTest, DependencyOnCompletedTaskRunsImmediately) {
  ThreadPool pool(2);
  const TaskHandle first = pool.submit([] {});
  pool.wait(first);
  ASSERT_TRUE(first.done());
  std::atomic<bool> ran{false};
  const TaskHandle second = pool.submit([&] { ran = true; }, {first});
  pool.wait(second);
  EXPECT_TRUE(ran.load());
}

TEST(TaskGraphTest, EmptyHandleDependencyIsIgnored) {
  ThreadPool pool(2);
  const TaskHandle empty;
  EXPECT_TRUE(empty.done());
  pool.wait(empty);  // no-op
  std::atomic<bool> ran{false};
  const TaskHandle task = pool.submit([&] { ran = true; }, {empty});
  pool.wait(task);
  EXPECT_TRUE(ran.load());
}

TEST(TaskGraphTest, ThrowingTaskStillReleasesSuccessors) {
  ThreadPool pool(2);
  std::atomic<bool> successorRan{false};
  const TaskHandle bad =
      pool.submit([] { throw std::runtime_error("stage failed"); });
  const TaskHandle after = pool.submit([&] { successorRan = true; }, {bad});
  pool.wait(after);  // dependencies express completion, not success
  EXPECT_TRUE(successorRan.load());
  EXPECT_THROW(pool.wait(bad), std::runtime_error);
  EXPECT_THROW(pool.wait(bad), std::runtime_error);  // rethrows repeatedly
}

TEST(TaskGraphTest, LongChainCompletesInOrder) {
  // A frame-chain shape: each link depends on its predecessor and bumps
  // a sequence counter; any reordering would break the equality.
  ThreadPool pool(4);
  constexpr int kLinks = 200;
  std::vector<int> sequence;
  sequence.reserve(kLinks);
  TaskHandle prev;
  for (int i = 0; i < kLinks; ++i) {
    prev = pool.submit([&sequence, i] { sequence.push_back(i); }, {prev});
  }
  pool.wait(prev);
  ASSERT_EQ(sequence.size(), static_cast<std::size_t>(kLinks));
  for (int i = 0; i < kLinks; ++i) {
    EXPECT_EQ(sequence[i], i);
  }
}

// --- Shutdown / teardown edges -----------------------------------------
//
// Contract under test (see ~ThreadPool): destroying a pool with
// un-waited tasks *abandons* them — they never run, their handles stay
// valid and report done() == false, and the whole graph is freed (the
// ASan CI leg turns a missed release into a leak report here).
// ThreadPool(1) makes abandonment deterministic: it spawns no workers,
// so a submitted-but-never-waited task cannot have started.

TEST(TaskGraphTest, DestructorAbandonsQueuedTasks) {
  std::atomic<int> ran{0};
  TaskHandle first;
  TaskHandle last;
  {
    ThreadPool pool(1);
    first = pool.submit([&] { ++ran; });
    last = pool.submit([&] { ++ran; }, {first});
    // No wait(): both tasks are still in the injector when the pool dies.
  }
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(first.valid());
  EXPECT_TRUE(last.valid());
  EXPECT_FALSE(first.done());
  EXPECT_FALSE(last.done());
}

TEST(TaskGraphTest, DestructorAbandonsLongDependencyChain) {
  // A deep never-dispatched chain: each node holds a reference to its
  // successor, and only the head sits in the injector.  The destructor's
  // release must cascade down the whole chain (ASan checks the frees).
  std::atomic<int> ran{0};
  TaskHandle tail;
  {
    ThreadPool pool(1);
    TaskHandle prev;
    for (int i = 0; i < 100; ++i) {
      prev = pool.submit([&] { ++ran; }, {prev});
    }
    tail = prev;
  }
  EXPECT_EQ(ran.load(), 0);
  EXPECT_FALSE(tail.done());
}

TEST(TaskGraphTest, HandlesOutliveThePool) {
  // A completed task's handle must keep answering done() == true after
  // the pool is gone: the handle's node reference, not the pool, owns
  // the completion state.  Copies and moves of a dead-pool handle must
  // also stay safe.
  TaskHandle finished;
  TaskHandle abandoned;
  {
    ThreadPool pool(1);
    finished = pool.submit([] {});
    pool.wait(finished);
    abandoned = pool.submit([] {});
  }
  EXPECT_TRUE(finished.done());
  EXPECT_FALSE(abandoned.done());
  TaskHandle copy = finished;
  EXPECT_TRUE(copy.done());
  const TaskHandle moved = std::move(copy);
  EXPECT_TRUE(moved.done());
  copy = abandoned;  // NOLINT(bugprone-use-after-move): reassignment
  EXPECT_FALSE(copy.done());
}

TEST(TaskGraphTest, AbandonedTaskIsUsableAsDependencyInAnotherPool) {
  // Dependencies express completion; an abandoned handle from a dead
  // pool is a *never-completing* dependency, so it must not be handed to
  // a live pool.  What IS allowed: a completed handle from a dead pool
  // gating work in a new pool (sweep harnesses rebuild pools per grid
  // point but cache result handles).
  TaskHandle fromOldPool;
  {
    ThreadPool old(1);
    fromOldPool = old.submit([] {});
    old.wait(fromOldPool);
  }
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  const TaskHandle task = pool.submit([&] { ran = true; }, {fromOldPool});
  pool.wait(task);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ImmediateDestructionIsClean) {
  // Construct-and-destroy with no work: workers park on the timed wait
  // and must all observe shutdown promptly.  Looped to shake the
  // park/notify race the destructor's sleepMutex_ section closes.
  for (int i = 0; i < 50; ++i) {
    ThreadPool pool(4);
  }
}

TEST(TaskGraphTest, GlobalPoolShardsIndependentJobs) {
  ThreadPool& pool = globalThreadPool();
  EXPECT_GE(pool.threadCount(), 1);
  std::vector<int> slots(64, 0);
  pool.parallelFor(slots.size(),
                   [&](std::size_t i) { slots[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i));
  }
  // Same instance on every call.
  EXPECT_EQ(&globalThreadPool(), &pool);
}

}  // namespace
}  // namespace ebbiot
