#include "src/trackers/assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ebbiot {
namespace {

TEST(AssignmentTest, EmptyProblem) {
  const Assignment a = solveAssignment({}, 0, 0);
  EXPECT_TRUE(a.columnOfRow.empty());
  EXPECT_DOUBLE_EQ(a.totalCost, 0.0);
}

TEST(AssignmentTest, SingleCell) {
  const Assignment a = solveAssignment({3.5}, 1, 1);
  ASSERT_EQ(a.columnOfRow.size(), 1U);
  EXPECT_EQ(a.columnOfRow[0], 0);
  EXPECT_DOUBLE_EQ(a.totalCost, 3.5);
}

TEST(AssignmentTest, TwoByTwoPicksOptimal) {
  // Greedy would take (0,0)=1 then forced into (1,1)=10 -> 11.
  // Optimal is (0,1)=2 + (1,0)=3 -> 5.
  const Assignment a = solveAssignment({1, 2, 3, 10}, 2, 2);
  EXPECT_EQ(a.columnOfRow[0], 1);
  EXPECT_EQ(a.columnOfRow[1], 0);
  EXPECT_DOUBLE_EQ(a.totalCost, 5.0);
}

TEST(AssignmentTest, RectangularMoreColumns) {
  // 2 rows x 3 cols: best is (0,2)=1 and (1,0)=2.
  const Assignment a = solveAssignment({5, 4, 1, 2, 6, 7}, 2, 3);
  EXPECT_EQ(a.columnOfRow[0], 2);
  EXPECT_EQ(a.columnOfRow[1], 0);
  EXPECT_DOUBLE_EQ(a.totalCost, 3.0);
}

TEST(AssignmentTest, RectangularMoreRowsLeavesOneUnassigned) {
  // 3 rows x 2 cols: one row must stay unmatched.
  const Assignment a = solveAssignment({1, 9, 2, 1, 8, 8}, 3, 2);
  int assigned = 0;
  for (int c : a.columnOfRow) {
    if (c >= 0) {
      ++assigned;
    }
  }
  EXPECT_EQ(assigned, 2);
  EXPECT_DOUBLE_EQ(a.totalCost, 2.0);  // (0,0)=1 + (1,1)=1
  EXPECT_EQ(a.columnOfRow[2], -1);
}

TEST(AssignmentTest, ForbiddenPairsNeverAssigned) {
  constexpr double kBig = 1e18;
  const Assignment a = solveAssignment({kBig, kBig, kBig, 1}, 2, 2, 1e17);
  EXPECT_EQ(a.columnOfRow[0], -1);
  EXPECT_EQ(a.columnOfRow[1], 1);
  EXPECT_DOUBLE_EQ(a.totalCost, 1.0);
}

TEST(AssignmentTest, SizeMismatchThrows) {
  EXPECT_THROW((void)solveAssignment({1, 2, 3}, 2, 2), LogicError);
}

// Property: matches brute force on random matrices up to 6x6.
struct BruteCase {
  std::size_t rows;
  std::size_t cols;
  int seed;
};

class AssignmentBruteForceProperty
    : public ::testing::TestWithParam<BruteCase> {};

double bruteForceBest(const std::vector<double>& cost, std::size_t rows,
                      std::size_t cols) {
  // Permute over the larger side; allow unassigned rows when rows > cols.
  std::vector<int> perm(std::max(rows, cols));
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e30;
  do {
    double total = 0.0;
    if (rows <= cols) {
      for (std::size_t r = 0; r < rows; ++r) {
        total += cost[r * cols + static_cast<std::size_t>(perm[r])];
      }
    } else {
      for (std::size_t c = 0; c < cols; ++c) {
        total += cost[static_cast<std::size_t>(perm[c]) * cols + c];
      }
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST_P(AssignmentBruteForceProperty, MatchesExhaustiveSearch) {
  const auto [rows, cols, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<double> cost(rows * cols);
  for (double& c : cost) {
    c = rng.uniform(0.0, 100.0);
  }
  const Assignment a = solveAssignment(cost, rows, cols);
  // Verify one-to-one.
  std::vector<bool> colUsed(cols, false);
  std::size_t assigned = 0;
  for (int c : a.columnOfRow) {
    if (c < 0) {
      continue;
    }
    EXPECT_FALSE(colUsed[static_cast<std::size_t>(c)]);
    colUsed[static_cast<std::size_t>(c)] = true;
    ++assigned;
  }
  EXPECT_EQ(assigned, std::min(rows, cols));
  EXPECT_NEAR(a.totalCost, bruteForceBest(cost, rows, cols), 1e-9);
}

std::vector<BruteCase> makeBruteCases() {
  std::vector<BruteCase> cases;
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {2, 5}, {3, 6}, {5, 2}, {6, 3}};
  for (const auto& [r, c] : shapes) {
    for (int seed = 1; seed <= 3; ++seed) {
      cases.push_back(BruteCase{r, c, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, AssignmentBruteForceProperty,
                         ::testing::ValuesIn(makeBruteCases()));

}  // namespace
}  // namespace ebbiot
