#include "src/trackers/hybrid_tracker.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/core/pipeline.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

HybridTrackerConfig testConfig() {
  HybridTrackerConfig c;
  c.minHitsToReport = 1;
  c.minSeedArea = 4.0F;
  return c;
}

RegionProposals props(std::initializer_list<BBox> boxes) {
  RegionProposals out;
  for (const BBox& b : boxes) {
    out.push_back(RegionProposal{b, static_cast<std::uint64_t>(b.area())});
  }
  return out;
}

TEST(HybridTrackerTest, SeedsAndReportsAfterMinHits) {
  HybridTrackerConfig config = testConfig();
  config.minHitsToReport = 3;
  HybridTracker tracker(config);
  EXPECT_TRUE(tracker.update(props({BBox{50, 50, 30, 20}})).empty());
  EXPECT_TRUE(tracker.update(props({BBox{52, 50, 30, 20}})).empty());
  const Tracks t = tracker.update(props({BBox{54, 50, 30, 20}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].hits, 3);
  EXPECT_EQ(tracker.activeCount(), 1);
}

TEST(HybridTrackerTest, EstimatesVelocityThroughKalman) {
  HybridTracker tracker(testConfig());
  Tracks t;
  for (int f = 0; f < 12; ++f) {
    t = tracker.update(
        props({BBox{50.0F + 4.0F * static_cast<float>(f), 50, 30, 20}}));
  }
  ASSERT_EQ(t.size(), 1U);
  EXPECT_NEAR(t[0].velocity.x, 4.0F, 1.0F);
  EXPECT_NEAR(t[0].velocity.y, 0.0F, 1.0F);
}

TEST(HybridTrackerTest, CoastsOnKalmanPredictionWithVelocityRetained) {
  HybridTracker tracker(testConfig());
  Tracks t;
  for (int f = 0; f < 12; ++f) {
    t = tracker.update(
        props({BBox{50.0F + 4.0F * static_cast<float>(f), 50, 30, 20}}));
  }
  ASSERT_EQ(t.size(), 1U);
  const float xBefore = t[0].box.center().x;
  // Proposal dropout: the track must keep moving at its learned velocity.
  t = tracker.update({});
  ASSERT_EQ(t.size(), 1U);
  EXPECT_TRUE(t[0].occluded);
  EXPECT_EQ(t[0].misses, 1);
  EXPECT_NEAR(t[0].box.center().x - xBefore, 4.0F, 1.5F);
  EXPECT_NEAR(t[0].velocity.x, 4.0F, 1.5F);
  const float xOneMiss = t[0].box.center().x;
  t = tracker.update({});
  ASSERT_EQ(t.size(), 1U);
  EXPECT_NEAR(t[0].box.center().x - xOneMiss, 4.0F, 1.5F);
  // Reacquire: the coasted prediction still overlaps the object.
  t = tracker.update(props({BBox{50.0F + 4.0F * 14.0F, 50, 30, 20}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].misses, 0);
  EXPECT_FALSE(t[0].occluded);
}

TEST(HybridTrackerTest, DiesAfterMaxMissesOrOffFrame) {
  HybridTrackerConfig config = testConfig();
  config.maxMisses = 2;
  HybridTracker tracker(config);
  for (int f = 0; f < 5; ++f) {
    (void)tracker.update(props({BBox{50, 50, 30, 20}}));
  }
  ASSERT_EQ(tracker.activeCount(), 1);
  (void)tracker.update({});
  (void)tracker.update({});
  EXPECT_EQ(tracker.activeCount(), 1);  // misses == maxMisses: still alive
  (void)tracker.update({});
  EXPECT_EQ(tracker.activeCount(), 0);  // exceeded the coast budget
}

TEST(HybridTrackerTest, AbsorbsFragmentsIntoOneMeasurement) {
  HybridTracker tracker(testConfig());
  for (int f = 0; f < 4; ++f) {
    (void)tracker.update(props({BBox{50, 50, 60, 24}}));
  }
  ASSERT_EQ(tracker.activeCount(), 1);
  // The object fragments into two proposals; both overlap the prediction
  // and their union stays within the growth guard -> one track follows
  // the full extent, no second track is seeded.
  const Tracks t =
      tracker.update(props({BBox{50, 50, 26, 24}, BBox{82, 50, 28, 24}}));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(tracker.activeCount(), 1);
  EXPECT_GT(t[0].box.w, 40.0F);
}

TEST(HybridTrackerTest, SlotBoundHonoured) {
  HybridTrackerConfig config = testConfig();
  config.maxTrackers = 3;
  HybridTracker tracker(config);
  RegionProposals many;
  for (int i = 0; i < 6; ++i) {
    many.push_back(RegionProposal{
        BBox{10.0F + 40.0F * static_cast<float>(i), 20, 20, 16}, 320});
  }
  (void)tracker.update(many);
  EXPECT_EQ(tracker.activeCount(), 3);
}

TEST(HybridTrackerTest, OpsMetered) {
  HybridTracker tracker(testConfig());
  (void)tracker.update(props({BBox{50, 50, 30, 20}}));
  EXPECT_GT(tracker.lastOps().total(), 0U);  // seed writes
  (void)tracker.update(props({BBox{52, 50, 30, 20}}));
  // Predict + associate + KF update all metered.
  EXPECT_GT(tracker.lastOps().multiplies, 100U);
  EXPECT_GT(tracker.lastOps().adds, 100U);
}

TEST(HybridTrackerTest, InvalidConfigRejected) {
  HybridTrackerConfig bad = testConfig();
  bad.maxTrackers = 0;
  EXPECT_THROW(HybridTracker{bad}, LogicError);
  HybridTrackerConfig bad2 = testConfig();
  bad2.matchFraction = 0.0F;
  EXPECT_THROW(HybridTracker{bad2}, LogicError);
}

// --- End-to-end behind the shared front end.

TEST(HybridPipelineTest, TracksScriptedCar) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{10, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig synthConfig;
  synthConfig.backgroundActivityHz = 0.3;
  synthConfig.seed = 21;
  FastEventSynth synth(scene, synthConfig);
  HybridPipeline pipeline{HybridPipelineConfig{}};
  EXPECT_EQ(pipeline.name(), "Hybrid");
  EXPECT_EQ(pipeline.inputDomain(), InputDomain::kLatchedFrame);
  Tracks tracks;
  for (int f = 0; f < 20; ++f) {
    tracks = pipeline.processWindow(
        latchReadout(synth.nextWindow(kDefaultFramePeriodUs), 240, 180));
  }
  ASSERT_GE(tracks.size(), 1U);
  const BBox carBox{10.0F + 60.0F * 1.32F, 60, 48, 22};
  EXPECT_GT(iou(tracks[0].box, carBox), 0.3F);
  EXPECT_GT(pipeline.stageOps().tracker.total(), 0U);
}

}  // namespace
}  // namespace ebbiot
