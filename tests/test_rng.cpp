#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo = sawLo || v == 0;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sumSq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.poisson(2.5);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(1000.0));
  }
  EXPECT_NEAR(sum / n, 1000.0, 5.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng childA = parent.fork(1);
  Rng childA2 = Rng(42).fork(1);
  EXPECT_DOUBLE_EQ(childA.uniform(), childA2.uniform());

  Rng childB = parent.fork(2);
  int equal = 0;
  Rng a = parent.fork(1);
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == childB.uniform()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(5.0, 2.0), LogicError);
  EXPECT_THROW((void)rng.uniformInt(5, 2), LogicError);
  EXPECT_THROW((void)rng.exponential(0.0), LogicError);
  EXPECT_THROW((void)rng.poisson(-1.0), LogicError);
}

}  // namespace
}  // namespace ebbiot
