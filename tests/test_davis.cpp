#include "src/sim/davis.hpp"

#include <gtest/gtest.h>

#include "src/events/stats.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

DavisConfig quietConfig() {
  DavisConfig c;
  c.backgroundActivityHz = 0.0;
  c.hotPixelFraction = 0.0;
  c.seed = 99;
  return c;
}

TEST(DavisSimulatorTest, StaticSceneEmitsNothingWithoutNoise) {
  ScriptedScene scene(64, 64);  // no objects at all
  DavisSimulator sim(scene, quietConfig());
  const EventPacket p = sim.nextWindow(kDefaultFramePeriodUs);
  EXPECT_TRUE(p.empty());
}

TEST(DavisSimulatorTest, NoiseOnlyRateMatchesConfig) {
  ScriptedScene scene(64, 64);
  DavisConfig c = quietConfig();
  c.backgroundActivityHz = 5.0;  // per pixel
  DavisSimulator sim(scene, c);
  // 1 second: expect ~ 5 * 64 * 64 = 20480 events.
  std::size_t total = 0;
  for (int i = 0; i < 15; ++i) {
    total += sim.nextWindow(kDefaultFramePeriodUs).size();
  }
  const double expected = 5.0 * 64 * 64 * 0.066 * 15;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.1);
}

TEST(DavisSimulatorTest, MovingObjectProducesEventsNearItsBox) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{20, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  DavisSimulator sim(scene, quietConfig());
  (void)sim.nextWindow(kDefaultFramePeriodUs);  // settle the first frame
  const EventPacket p = sim.nextWindow(kDefaultFramePeriodUs);
  ASSERT_GT(p.size(), 50U);
  // All events should fall inside the inflated object footprint over the
  // window (box at window start/end +- 2 px).
  const BBox footprint{20.0F + 60.0F * 0.066F - 3.0F, 57.0F,
                       48.0F + 60.0F * 0.066F * 2.0F + 6.0F, 28.0F};
  for (const Event& e : p) {
    EXPECT_TRUE(footprint.contains(static_cast<float>(e.x),
                                   static_cast<float>(e.y)))
        << "event at (" << e.x << "," << e.y << ")";
  }
}

TEST(DavisSimulatorTest, FasterObjectYieldsMoreEvents) {
  auto countEvents = [](float speed) {
    ScriptedScene scene(240, 180);
    scene.addLinear(ObjectClass::kCar, BBox{20, 60, 48, 22},
                    Vec2f{speed, 0}, 0, secondsToUs(10.0));
    DavisSimulator sim(scene, quietConfig());
    std::size_t total = 0;
    for (int i = 0; i < 10; ++i) {
      total += sim.nextWindow(kDefaultFramePeriodUs).size();
    }
    return total;
  };
  EXPECT_GT(countEvents(80.0F), countEvents(20.0F));
}

TEST(DavisSimulatorTest, DeterministicForSameSeed) {
  auto run = [] {
    ScriptedScene scene(64, 64);
    DavisConfig c = quietConfig();
    c.backgroundActivityHz = 2.0;
    DavisSimulator sim(scene, c);
    return sim.nextWindow(kDefaultFramePeriodUs);
  };
  const EventPacket a = run();
  const EventPacket b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(DavisSimulatorTest, EventsAreTimeSortedAndInWindow) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kBus, BBox{0, 50, 120, 38}, Vec2f{45, 0}, 0,
                  secondsToUs(10.0));
  DavisConfig c = quietConfig();
  c.backgroundActivityHz = 1.0;
  DavisSimulator sim(scene, c);
  TimeUs cursor = 0;
  for (int i = 0; i < 5; ++i) {
    const EventPacket p = sim.nextWindow(kDefaultFramePeriodUs);
    EXPECT_EQ(p.tStart(), cursor);
    EXPECT_TRUE(p.isTimeSorted());
    for (const Event& e : p) {
      EXPECT_GE(e.t, p.tStart());
      EXPECT_LT(e.t, p.tEnd());
    }
    cursor = p.tEnd();
  }
  EXPECT_EQ(sim.now(), cursor);
}

TEST(DavisSimulatorTest, HotPixelsFireRepeatedly) {
  ScriptedScene scene(64, 64);
  DavisConfig c = quietConfig();
  c.hotPixelFraction = 0.005;  // ~20 hot pixels
  c.hotPixelRateHz = 100.0;
  DavisSimulator sim(scene, c);
  std::size_t total = 0;
  for (int i = 0; i < 15; ++i) {
    total += sim.nextWindow(kDefaultFramePeriodUs).size();
  }
  // ~20 px * 100 Hz * 1 s = 2000 events.
  EXPECT_GT(total, 1000U);
}

TEST(DavisSimulatorTest, LuminanceModelDistinguishesObjectFromBackground) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kBus, BBox{50, 50, 120, 38}, Vec2f{10, 0}, 0,
                  secondsToUs(10.0));
  DavisSimulator sim(scene, quietConfig());
  const double bg = sim.luminanceAt(5, 5, 0);
  EXPECT_NEAR(bg, 0.5, 1e-9);
  // Average over the object body differs from the background.
  double sum = 0.0;
  int n = 0;
  for (int x = 60; x < 160; x += 5) {
    for (int y = 55; y < 85; y += 5) {
      sum += sim.luminanceAt(x, y, 0);
      ++n;
    }
  }
  EXPECT_LT(sum / n, 0.45);
}

TEST(LatchReadoutTest, KeepsFirstEventPerPixel) {
  EventPacket p(0, 1'000);
  p.push(Event{3, 3, Polarity::kOn, 10});
  p.push(Event{3, 3, Polarity::kOff, 50});
  p.push(Event{4, 4, Polarity::kOn, 60});
  p.push(Event{3, 3, Polarity::kOn, 70});
  const EventPacket out = latchReadout(p, 8, 8);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].t, 10);
  EXPECT_EQ(out[0].p, Polarity::kOn);  // first event's polarity retained
  EXPECT_EQ(out[1].x, 4);
}

TEST(LatchReadoutTest, LatchedNeverExceedsPixelCount) {
  EventPacket p(0, 1'000);
  for (int i = 0; i < 500; ++i) {
    p.push(Event{static_cast<std::uint16_t>(i % 4),
                 static_cast<std::uint16_t>((i / 4) % 4), Polarity::kOn,
                 static_cast<TimeUs>(i)});
  }
  const EventPacket out = latchReadout(p, 4, 4);
  EXPECT_LE(out.size(), 16U);
  EXPECT_EQ(out.size(), 16U);  // all 16 pixels fired at least once
}

TEST(LatchedSourceTest, WrapsAnInnerSource) {
  ScriptedScene scene(240, 180);
  scene.addLinear(ObjectClass::kCar, BBox{20, 60, 48, 22}, Vec2f{60, 0}, 0,
                  secondsToUs(10.0));
  DavisConfig c = quietConfig();
  c.backgroundActivityHz = 1.0;
  DavisSimulator raw(scene, c);
  LatchedSource latched(raw);
  EXPECT_EQ(latched.width(), 240);
  EXPECT_EQ(latched.height(), 180);
  const EventPacket p = latched.nextWindow(kDefaultFramePeriodUs);
  // At most one event per pixel.
  FrameStats stats = computeFrameStats(p, 240, 180);
  EXPECT_EQ(stats.eventCount, stats.activePixels);
}

}  // namespace
}  // namespace ebbiot
