// Determinism of the multithreaded runner: runRecording must reproduce
// the serial RunResult *exactly* (counts, ops, stream stats, every
// pipeline of the full variant registry) for every thread count and for
// pipelined (stage-graph) and barrier execution alike, because each
// accumulator is owned by exactly one task chain and updated in frame
// order — only which OS thread executes a task varies.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/runner.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

struct Fixture {
  Fixture() : scene(240, 180) {
    scene.addLinear(ObjectClass::kCar, BBox{-48, 60, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(20.0));
    scene.addLinear(ObjectClass::kVan, BBox{240, 100, 60, 28},
                    Vec2f{-45, 0}, secondsToUs(1.0), secondsToUs(20.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.3;
    config.seed = 31;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

void expectPipelineStatsEqual(const PipelineRunStats& a,
                              const PipelineRunStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.totalOps, b.totalOps);
  EXPECT_EQ(a.filteredEventsPerFrame, b.filteredEventsPerFrame);
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (std::size_t t = 0; t < a.counts.size(); ++t) {
    EXPECT_EQ(a.counts[t].truePositives, b.counts[t].truePositives);
    EXPECT_EQ(a.counts[t].predictions, b.counts[t].predictions);
    EXPECT_EQ(a.counts[t].groundTruths, b.counts[t].groundTruths);
  }
}

void expectRunResultsEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.thresholds, b.thresholds);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.gtTracks, b.gtTracks);
  EXPECT_EQ(a.gtBoxes, b.gtBoxes);
  EXPECT_EQ(a.streamEvents, b.streamEvents);
  EXPECT_EQ(a.latchedEvents, b.latchedEvents);
  EXPECT_EQ(a.meanAlpha, b.meanAlpha);
  EXPECT_EQ(a.meanBeta, b.meanBeta);
  EXPECT_EQ(a.meanEventsPerFrame, b.meanEventsPerFrame);
  ASSERT_EQ(a.pipelines.size(), b.pipelines.size());
  for (std::size_t i = 0; i < a.pipelines.size(); ++i) {
    expectPipelineStatsEqual(a.pipelines[i], b.pipelines[i]);
  }
}

TEST(RunnerThreadsTest, EveryThreadCountAndModeReproducesSerialExactly) {
  // Full registry: all named variants run in one call, maximising the
  // chance any cross-pipeline interference would surface.  Sweep
  // {pipelined off/on} x {1, 2, 4, 0 = hardware} threads against the
  // serial baseline — every cell must be bit-identical.
  constexpr double kSeconds = 2.0;
  RunnerConfig serial = makeRegistryRunnerConfig(240, 180);
  serial.threads = 1;
  serial.pipelined = false;

  Fixture fixSerial;
  const RunResult baseline = runRecording(*fixSerial.synth, fixSerial.scene,
                                          secondsToUs(kSeconds), serial);
  ASSERT_GT(baseline.pipelines.size(), 1U);

  for (const bool pipelined : {false, true}) {
    for (const int threads : {1, 2, 4, 0}) {
      RunnerConfig config = serial;
      config.threads = threads;
      config.pipelined = pipelined;
      Fixture fix;
      const RunResult run = runRecording(*fix.synth, fix.scene,
                                         secondsToUs(kSeconds), config);
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " pipelined=" << pipelined);
      expectRunResultsEqual(baseline, run);
    }
  }
}

TEST(RunnerThreadsTest, ThreadsZeroMeansHardwareConcurrency) {
  Fixture fixA;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.threads = 0;  // resolves to >= 1 without changing results
  const RunResult a =
      runRecording(*fixA.synth, fixA.scene, secondsToUs(1.0), config);
  Fixture fixB;
  config.threads = 1;
  const RunResult b =
      runRecording(*fixB.synth, fixB.scene, secondsToUs(1.0), config);
  expectRunResultsEqual(a, b);
}

TEST(RunnerThreadsTest, MoreThreadsThanPipelinesIsFine) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = false;
  config.threads = 16;  // 1 pipeline; the fan-out clamps to useful width
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(1.0), config);
  ASSERT_TRUE(result.ebbiot.has_value());
  EXPECT_GT(result.ebbiot->frames, 0U);
}

}  // namespace
}  // namespace ebbiot
