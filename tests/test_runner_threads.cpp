// Determinism of the multithreaded runner: runRecording with threads = 4
// must reproduce the threads = 1 RunResult *exactly* (counts, ops, stream
// stats, every pipeline of the full variant registry), because each
// pipeline's work and accumulation order is unchanged — only which OS
// thread executes it varies.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/runner.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

struct Fixture {
  Fixture() : scene(240, 180) {
    scene.addLinear(ObjectClass::kCar, BBox{-48, 60, 48, 22}, Vec2f{60, 0},
                    0, secondsToUs(20.0));
    scene.addLinear(ObjectClass::kVan, BBox{240, 100, 60, 28},
                    Vec2f{-45, 0}, secondsToUs(1.0), secondsToUs(20.0));
    EventSynthConfig config;
    config.backgroundActivityHz = 0.3;
    config.seed = 31;
    synth = std::make_unique<FastEventSynth>(scene, config);
  }
  ScriptedScene scene;
  std::unique_ptr<FastEventSynth> synth;
};

void expectPipelineStatsEqual(const PipelineRunStats& a,
                              const PipelineRunStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.totalOps, b.totalOps);
  EXPECT_EQ(a.filteredEventsPerFrame, b.filteredEventsPerFrame);
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (std::size_t t = 0; t < a.counts.size(); ++t) {
    EXPECT_EQ(a.counts[t].truePositives, b.counts[t].truePositives);
    EXPECT_EQ(a.counts[t].predictions, b.counts[t].predictions);
    EXPECT_EQ(a.counts[t].groundTruths, b.counts[t].groundTruths);
  }
}

void expectRunResultsEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.thresholds, b.thresholds);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.gtTracks, b.gtTracks);
  EXPECT_EQ(a.gtBoxes, b.gtBoxes);
  EXPECT_EQ(a.streamEvents, b.streamEvents);
  EXPECT_EQ(a.latchedEvents, b.latchedEvents);
  EXPECT_EQ(a.meanAlpha, b.meanAlpha);
  EXPECT_EQ(a.meanBeta, b.meanBeta);
  EXPECT_EQ(a.meanEventsPerFrame, b.meanEventsPerFrame);
  ASSERT_EQ(a.pipelines.size(), b.pipelines.size());
  for (std::size_t i = 0; i < a.pipelines.size(); ++i) {
    expectPipelineStatsEqual(a.pipelines[i], b.pipelines[i]);
  }
}

TEST(RunnerThreadsTest, FourThreadsReproduceSerialResultExactly) {
  // Full registry: all 7 named variants run in one call, maximising the
  // chance any cross-pipeline interference would surface.
  RunnerConfig serial = makeRegistryRunnerConfig(240, 180);
  serial.threads = 1;
  RunnerConfig threaded = serial;
  threaded.threads = 4;

  Fixture fixSerial;
  const RunResult a =
      runRecording(*fixSerial.synth, fixSerial.scene, secondsToUs(3.0),
                   serial);
  Fixture fixThreaded;
  const RunResult b =
      runRecording(*fixThreaded.synth, fixThreaded.scene, secondsToUs(3.0),
                   threaded);

  ASSERT_GT(a.pipelines.size(), 1U);
  expectRunResultsEqual(a, b);
}

TEST(RunnerThreadsTest, ThreadsZeroMeansHardwareConcurrency) {
  Fixture fixA;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.threads = 0;  // resolves to >= 1 without changing results
  const RunResult a =
      runRecording(*fixA.synth, fixA.scene, secondsToUs(1.0), config);
  Fixture fixB;
  config.threads = 1;
  const RunResult b =
      runRecording(*fixB.synth, fixB.scene, secondsToUs(1.0), config);
  expectRunResultsEqual(a, b);
}

TEST(RunnerThreadsTest, MoreThreadsThanPipelinesIsFine) {
  Fixture fix;
  RunnerConfig config = makeDefaultRunnerConfig(240, 180);
  config.runKalman = false;
  config.runEbms = false;
  config.threads = 16;  // 1 pipeline; the fan-out clamps to useful width
  const RunResult result =
      runRecording(*fix.synth, fix.scene, secondsToUs(1.0), config);
  ASSERT_TRUE(result.ebbiot.has_value());
  EXPECT_GT(result.ebbiot->frames, 0U);
}

}  // namespace
}  // namespace ebbiot
