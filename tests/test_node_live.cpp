// LiveTransport end-to-end: real producer threads push framed bytes
// through SensorSessions while the supervisor pumps on the test thread,
// and every delivered window lands in a PipelineSink.
//
//   * Clean-stream bit-identity: with lossless backpressure, the
//     per-window track sequence each sensor produces over real threads
//     is byte-for-byte the sequence a single-threaded bare pipeline
//     produces from the same windows — the pin that threading changes
//     scheduling, never results.
//   * Env-gated soak (EBBIOT_SOAK=1): mixed fault profiles over more
//     sensors and longer scripts; gates on conservation invariants
//     (every accepted frame delivered, shed, or rejected — none lost)
//     and zero quarantine leaks.  The CI chaos-soak job runs this under
//     ASan and TSan.
#include "src/node/live_transport.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/pipeline.hpp"
#include "src/node/fault_injection.hpp"
#include "src/node/node_supervisor.hpp"
#include "src/node/pipeline_sink.hpp"
#include "src/node/wire_format.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/event_synth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {
namespace {

constexpr int kWidth = 64;
constexpr int kHeight = 48;
constexpr TimeUs kWindow = 10'000;

std::vector<EventPacket> makeWindows(int count, std::uint64_t seed) {
  ScriptedScene scene(kWidth, kHeight);
  scene.addLinear(ObjectClass::kCar, BBox{2, 18, 20, 10}, Vec2f{120, 0}, 0,
                  secondsToUs(10.0));
  EventSynthConfig config;
  config.backgroundActivityHz = 0.2;
  config.seed = seed;
  FastEventSynth synth(scene, config);
  std::vector<EventPacket> windows;
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    windows.push_back(synth.nextWindow(kWindow));
  }
  return windows;
}

std::vector<std::vector<std::byte>> encodeAll(
    const std::vector<EventPacket>& windows, std::uint16_t sensorId) {
  std::vector<std::vector<std::byte>> frames;
  frames.reserve(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    std::vector<std::byte> bytes;
    encodeFrame(bytes, static_cast<std::uint32_t>(i), sensorId, windows[i]);
    frames.push_back(std::move(bytes));
  }
  return frames;
}

/// Nominal pacing: one chunk per frame, one frame period apart.
std::vector<DeliveryChunk> paceClean(
    const std::vector<std::vector<std::byte>>& frames) {
  std::vector<DeliveryChunk> chunks;
  chunks.reserve(frames.size());
  for (const std::vector<std::byte>& frame : frames) {
    chunks.push_back(DeliveryChunk{frame, kWindow});
  }
  return chunks;
}

EbbiotPipelineConfig smallConfig() {
  EbbiotPipelineConfig config;
  config.width = kWidth;
  config.height = kHeight;
  return config;
}

NodeConfig liveNodeConfig() {
  NodeConfig config;
  config.width = kWidth;
  config.height = kHeight;
  config.queueCapacity = 4;
  config.backpressure = BackpressurePolicy::kRejectPacket;
  // The virtual clock runs at timeScale x wall speed and producer
  // scheduling is up to the OS, so keep the watchdog out of the picture
  // for the determinism test.
  config.watchdogTimeoutUs = 100'000'000;
  config.shedBacklogWindows = 1'000'000;
  return config;
}

/// Per-sensor track capture: observer fires on the consumer side only.
struct TrackCapture {
  std::vector<std::uint32_t> seqs;
  std::vector<Tracks> tracks;
};

TEST(LiveTransportTest, CleanStreamsTrackBitIdenticalToBarePipeline) {
  constexpr int kSensors = 4;
  constexpr int kFrames = 32;

  ThreadPool pool(2);
  NodeSupervisor supervisor(liveNodeConfig(), pool);

  std::vector<std::vector<EventPacket>> windows;
  std::vector<std::unique_ptr<PipelineSink>> sinks;
  std::vector<TrackCapture> captured(kSensors);
  std::vector<LiveStreamSpec> streams;
  for (int s = 0; s < kSensors; ++s) {
    windows.push_back(makeWindows(kFrames, 1000 + static_cast<std::uint64_t>(s)));
    auto sink = std::make_unique<PipelineSink>(
        std::make_unique<EbbiotPipeline>(smallConfig()), kWidth, kHeight,
        PipelineSinkConfig{});
    TrackCapture& capture = captured[static_cast<std::size_t>(s)];
    sink->setTrackObserver([&capture](std::uint32_t seq, const Tracks& tracks) {
      capture.seqs.push_back(seq);
      capture.tracks.push_back(tracks);
    });
    const auto id = static_cast<std::uint16_t>(s);
    supervisor.addSensor({id, /*priority=*/s % 2, sink.get()});
    streams.push_back({id, paceClean(encodeAll(windows.back(), id))});
    sinks.push_back(std::move(sink));
  }

  LiveTransportConfig transportConfig;
  transportConfig.producerThreads = 2;
  transportConfig.timeScale = 25.0;
  transportConfig.pumpPeriodUs = kWindow;
  transportConfig.lossless = true;
  LiveTransport transport(supervisor, streams, transportConfig);
  const LiveTransport::RunStats stats = transport.run();

  EXPECT_EQ(stats.chunksDelivered,
            static_cast<std::uint64_t>(kSensors) * kFrames);
  EXPECT_EQ(stats.windowsDelivered,
            static_cast<std::uint64_t>(kSensors) * kFrames);
  EXPECT_EQ(supervisor.totalBacklog(), 0U);

  for (int s = 0; s < kSensors; ++s) {
    const auto& capture = captured[static_cast<std::size_t>(s)];
    const auto& sink = *sinks[static_cast<std::size_t>(s)];
    ASSERT_EQ(capture.seqs.size(), static_cast<std::size_t>(kFrames))
        << "sensor " << s;
    // Lossless + kRejectPacket: in order, exactly once, nothing coasted.
    EXPECT_EQ(sink.counters().windowsTracked,
              static_cast<std::uint64_t>(kFrames));
    EXPECT_EQ(sink.counters().gapsCoasted, 0U);
    EXPECT_EQ(sink.counters().resyncRestores, 0U);
    EXPECT_EQ(sink.counters().resyncResets, 0U);

    const SensorSession* session =
        supervisor.find(static_cast<std::uint16_t>(s));
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->counters().framesAccepted,
              static_cast<std::uint64_t>(kFrames));
    EXPECT_EQ(session->counters().framesCorrupted, 0U);
    EXPECT_EQ(session->state(), SessionState::kStreaming);

    // The single-threaded reference: same windows, bare pipeline.
    EbbiotPipeline reference(smallConfig());
    for (int i = 0; i < kFrames; ++i) {
      const Tracks expected = reference.processWindow(latchReadout(
          windows[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)],
          kWidth, kHeight));
      EXPECT_EQ(capture.seqs[static_cast<std::size_t>(i)],
                static_cast<std::uint32_t>(i));
      EXPECT_TRUE(capture.tracks[static_cast<std::size_t>(i)] == expected)
          << "sensor " << s << " window " << i;
    }
  }
}

TEST(LiveTransportTest, SoakMixedFaultsConservesEveryAcceptedFrame) {
  // Long-running chaos soak; opt-in via EBBIOT_SOAK=1 (the nightly CI
  // job sets it and runs this under ASan and TSan).
  if (std::getenv("EBBIOT_SOAK") == nullptr) {
    GTEST_SKIP() << "set EBBIOT_SOAK=1 to run the chaos soak";
  }
  constexpr int kSensors = 8;
  constexpr int kFrames = 200;

  const FaultProfile kProfiles[] = {
      {},                                        // clean
      {.bitFlipProb = 0.05},                     // corruption
      {.truncateProb = 0.05, .dropProb = 0.02},   // loss
      {.duplicateProb = 0.02, .floodProb = 0.02},
      {.reorderProb = 0.02, .stallProb = 0.02},
  };

  NodeConfig config = liveNodeConfig();
  config.backpressure = BackpressurePolicy::kDropOldestWindow;
  config.watchdogTimeoutUs = 200'000;

  ThreadPool pool(2);
  NodeSupervisor supervisor(config, pool);

  std::vector<std::unique_ptr<PipelineSink>> sinks;
  std::vector<LiveStreamSpec> streams;
  for (int s = 0; s < kSensors; ++s) {
    const auto id = static_cast<std::uint16_t>(s);
    auto sink = std::make_unique<PipelineSink>(
        std::make_unique<EbbiotPipeline>(smallConfig()), kWidth, kHeight,
        PipelineSinkConfig{});
    supervisor.addSensor({id, s % 4, sink.get()});
    sinks.push_back(std::move(sink));

    const auto frames = encodeAll(
        makeWindows(kFrames, 9000 + static_cast<std::uint64_t>(s)), id);
    FaultInjector injector(0xC0A57ull + static_cast<std::uint64_t>(s) * 131);
    injector.setProfile(kProfiles[static_cast<std::size_t>(s) %
                                  std::size(kProfiles)]);
    injector.setStallUs(500'000);
    streams.push_back({id, injector.corrupt(frames)});
  }

  LiveTransportConfig transportConfig;
  transportConfig.producerThreads = 3;
  transportConfig.timeScale = 200.0;
  transportConfig.pumpPeriodUs = kWindow;
  transportConfig.lossless = false;
  LiveTransport transport(supervisor, streams, transportConfig);
  const LiveTransport::RunStats stats = transport.run();
  EXPECT_GT(stats.chunksDelivered, 0U);
  EXPECT_EQ(supervisor.totalBacklog(), 0U);

  std::uint64_t totalDelivered = 0;
  std::uint64_t totalTracked = 0;
  for (int s = 0; s < kSensors; ++s) {
    const SensorSession* session =
        supervisor.find(static_cast<std::uint16_t>(s));
    ASSERT_NE(session, nullptr);
    const SessionCounters c = session->counters();
    // Conservation: every accepted frame was delivered, shed, or
    // rejected — the queue never loses a window silently.
    EXPECT_EQ(c.framesAccepted,
              c.windowsDelivered + c.windowsRejected + c.windowsShedStale +
                  c.windowsShedOverload)
        << "sensor " << s;
    // Quarantine leak: bytes are only ignored-as-quarantined while the
    // session is actually in the terminal QUARANTINED state.
    if (c.bytesIgnoredQuarantined > 0) {
      EXPECT_EQ(session->state(), SessionState::kQuarantined)
          << "sensor " << s;
    }
    totalDelivered += c.windowsDelivered;
    totalTracked += sinks[static_cast<std::size_t>(s)]->counters().windowsTracked;
  }
  // Every delivered window reached its pipeline exactly once.
  EXPECT_EQ(totalTracked, totalDelivered);
}

}  // namespace
}  // namespace ebbiot
