#include "src/events/event_packet.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

Event makeEvent(std::uint16_t x, std::uint16_t y, TimeUs t,
                Polarity p = Polarity::kOn) {
  return Event{x, y, p, t};
}

TEST(EventPacketTest, WindowAndDuration) {
  const EventPacket p(1000, 5000);
  EXPECT_EQ(p.tStart(), 1000);
  EXPECT_EQ(p.tEnd(), 5000);
  EXPECT_EQ(p.duration(), 4000);
  EXPECT_TRUE(p.empty());
}

TEST(EventPacketTest, PushInsideWindow) {
  EventPacket p(0, 100);
  p.push(makeEvent(1, 2, 50));
  EXPECT_EQ(p.size(), 1U);
  EXPECT_EQ(p[0].x, 1);
  EXPECT_EQ(p[0].t, 50);
}

TEST(EventPacketTest, PushOutsideWindowThrows) {
  EventPacket p(0, 100);
  EXPECT_THROW(p.push(makeEvent(0, 0, 100)), LogicError);   // tEnd exclusive
  EXPECT_THROW(p.push(makeEvent(0, 0, -1)), LogicError);
}

TEST(EventPacketTest, ConstructorValidatesEvents) {
  std::vector<Event> bad{makeEvent(0, 0, 500)};
  EXPECT_THROW(EventPacket(0, 100, std::move(bad)), LogicError);
}

TEST(EventPacketTest, InvertedWindowThrows) {
  EXPECT_THROW(EventPacket(100, 0), LogicError);
}

TEST(EventPacketTest, SortByTimeIsStableCanonicalOrder) {
  EventPacket p(0, 100);
  p.push(makeEvent(5, 5, 30));
  p.push(makeEvent(1, 1, 10));
  p.push(makeEvent(2, 2, 10));
  EXPECT_FALSE(p.isTimeSorted());
  p.sortByTime();
  EXPECT_TRUE(p.isTimeSorted());
  EXPECT_EQ(p[0].t, 10);
  EXPECT_EQ(p[0].x, 1);  // tie broken by (y, x)
  EXPECT_EQ(p[1].x, 2);
  EXPECT_EQ(p[2].t, 30);
}

TEST(EventPacketTest, SliceReturnsHalfOpenRange) {
  EventPacket p(0, 100);
  for (TimeUs t : {5, 10, 20, 30, 40}) {
    p.push(makeEvent(0, 0, t));
  }
  const EventPacket s = p.slice(10, 30);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_EQ(s[0].t, 10);
  EXPECT_EQ(s[1].t, 20);
  EXPECT_EQ(s.tStart(), 10);
  EXPECT_EQ(s.tEnd(), 30);
}

TEST(EventPacketTest, SliceOfUnsortedThrows) {
  EventPacket p(0, 100);
  p.push(makeEvent(0, 0, 50));
  p.push(makeEvent(0, 0, 10));
  EXPECT_THROW((void)p.slice(0, 100), LogicError);
}

TEST(EventPacketTest, FilterByRegionKeepsInsideEvents) {
  EventPacket p(0, 100);
  p.push(makeEvent(5, 5, 10));
  p.push(makeEvent(50, 50, 20));
  const EventPacket f = p.filterByRegion(BBox{0, 0, 10, 10});
  EXPECT_EQ(f.size(), 1U);
  EXPECT_EQ(f[0].x, 5);
}

TEST(EventPacketTest, CountOn) {
  EventPacket p(0, 100);
  p.push(makeEvent(0, 0, 1, Polarity::kOn));
  p.push(makeEvent(0, 0, 2, Polarity::kOff));
  p.push(makeEvent(0, 0, 3, Polarity::kOn));
  EXPECT_EQ(p.countOn(), 2U);
}

TEST(EventPacketTest, AppendChecksWindow) {
  EventPacket a(0, 100);
  EventPacket b(10, 50);
  b.push(makeEvent(1, 1, 20));
  a.append(b);
  EXPECT_EQ(a.size(), 1U);
  EventPacket wide(0, 200);
  EXPECT_THROW(a.append(wide), LogicError);
}

TEST(EventPacketTest, MergePreservesOrderAndWindow) {
  EventPacket a(0, 50);
  a.push(makeEvent(0, 0, 10));
  a.push(makeEvent(0, 0, 30));
  EventPacket b(20, 100);
  b.push(makeEvent(1, 1, 25));
  b.push(makeEvent(1, 1, 60));
  const EventPacket m = mergePackets(a, b);
  EXPECT_EQ(m.tStart(), 0);
  EXPECT_EQ(m.tEnd(), 100);
  ASSERT_EQ(m.size(), 4U);
  EXPECT_TRUE(m.isTimeSorted());
  EXPECT_EQ(m[1].t, 25);
}

TEST(EventPacketTest, TakeEventsMovesStorage) {
  EventPacket p(0, 100);
  p.push(makeEvent(3, 4, 10));
  std::vector<Event> v = std::move(p).takeEvents();
  ASSERT_EQ(v.size(), 1U);
  EXPECT_EQ(v[0].x, 3);
}

}  // namespace
}  // namespace ebbiot
