#include "src/ebbi/ebbi_builder.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

TEST(EbbiBuilderTest, SetsPixelsOfEvents) {
  EbbiBuilder builder(32, 32);
  EventPacket p(0, 1000);
  p.push(Event{5, 6, Polarity::kOn, 10});
  p.push(Event{7, 8, Polarity::kOff, 20});
  const BinaryImage img = builder.build(p);
  EXPECT_TRUE(img.get(5, 6));
  EXPECT_TRUE(img.get(7, 8));
  EXPECT_EQ(img.popcount(), 2U);
}

TEST(EbbiBuilderTest, DuplicateEventsIdempotent) {
  // The latch semantics: one bit per pixel regardless of fire count.
  EbbiBuilder builder(16, 16);
  EventPacket p(0, 1000);
  for (int i = 0; i < 10; ++i) {
    p.push(Event{3, 3, Polarity::kOn, static_cast<TimeUs>(i)});
  }
  const BinaryImage img = builder.build(p);
  EXPECT_EQ(img.popcount(), 1U);
}

TEST(EbbiBuilderTest, PolarityIgnoredInCombinedImage) {
  EbbiBuilder builder(16, 16);
  EventPacket p(0, 1000);
  p.push(Event{1, 1, Polarity::kOn, 1});
  p.push(Event{2, 2, Polarity::kOff, 2});
  const BinaryImage img = builder.build(p);
  EXPECT_TRUE(img.get(1, 1));
  EXPECT_TRUE(img.get(2, 2));
}

TEST(EbbiBuilderTest, BuildIntoClearsPreviousFrame) {
  EbbiBuilder builder(16, 16);
  BinaryImage img(16, 16);
  EventPacket a(0, 1000);
  a.push(Event{1, 1, Polarity::kOn, 1});
  builder.buildInto(a, img);
  EventPacket b(1000, 2000);
  b.push(Event{2, 2, Polarity::kOn, 1500});
  builder.buildInto(b, img);
  EXPECT_FALSE(img.get(1, 1));  // previous frame cleared
  EXPECT_TRUE(img.get(2, 2));
}

TEST(EbbiBuilderTest, BuildIntoShapeMismatchThrows) {
  EbbiBuilder builder(16, 16);
  BinaryImage wrong(8, 8);
  EventPacket p(0, 1000);
  EXPECT_THROW(builder.buildInto(p, wrong), LogicError);
}

TEST(EbbiBuilderTest, OutOfFrameEventThrows) {
  EbbiBuilder builder(8, 8);
  EventPacket p(0, 1000);
  p.push(Event{200, 1, Polarity::kOn, 10});
  EXPECT_THROW((void)builder.build(p), LogicError);
}

TEST(EbbiBuilderTest, OpsCountMemoryWritesPerEvent) {
  EbbiBuilder builder(16, 16);
  EventPacket p(0, 1000);
  for (int i = 0; i < 7; ++i) {
    p.push(Event{static_cast<std::uint16_t>(i), 0, Polarity::kOn,
                 static_cast<TimeUs>(i)});
  }
  (void)builder.build(p);
  EXPECT_EQ(builder.lastOps().memWrites, 7U);
  EXPECT_EQ(builder.lastOps().total(), 7U);
}

TEST(EbbiBuilderTest, PolaritySplitImages) {
  EbbiBuilder builder(16, 16);
  EventPacket p(0, 1000);
  p.push(Event{1, 1, Polarity::kOn, 1});
  p.push(Event{2, 2, Polarity::kOff, 2});
  p.push(Event{3, 3, Polarity::kOn, 3});
  BinaryImage on;
  BinaryImage off;
  const BinaryImage combined = builder.buildWithPolarity(p, on, off);
  EXPECT_EQ(combined.popcount(), 3U);
  EXPECT_EQ(on.popcount(), 2U);
  EXPECT_EQ(off.popcount(), 1U);
  EXPECT_TRUE(on.get(1, 1));
  EXPECT_TRUE(off.get(2, 2));
  EXPECT_FALSE(on.get(2, 2));
}

TEST(EbbiBuilderTest, EmptyPacketGivesBlankImage) {
  EbbiBuilder builder(16, 16);
  const BinaryImage img = builder.build(EventPacket(0, 1000));
  EXPECT_EQ(img.popcount(), 0U);
  EXPECT_EQ(builder.lastOps().total(), 0U);
}

}  // namespace
}  // namespace ebbiot
