// Parameterized property sweeps over the Eq. (1)-(8) cost models:
// formula identities and monotonicities that must hold at *every*
// operating point, not just the paper's.
#include <gtest/gtest.h>

#include "src/resource/cost_model.hpp"

namespace ebbiot {
namespace {

// ---------------------------------------------------------------- Eq. (1)
class EbbiCostSweep : public ::testing::TestWithParam<double> {};

TEST_P(EbbiCostSweep, FormulaIdentityAndMemoryInvariance) {
  const double alpha = GetParam();
  EbbiCostParams params;
  params.alpha = alpha;
  const CostEstimate est = ebbiCost(params);
  const double ab = 240.0 * 180.0;
  EXPECT_NEAR(est.computesPerFrame, (alpha * 9.0 + 2.0) * ab, 1e-6);
  // Memory is activity-independent: two bit-frames.
  EXPECT_NEAR(est.memoryBits, 2.0 * ab, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, EbbiCostSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.25,
                                           0.5, 1.0));

// ---------------------------------------------------------------- Eq. (2)
struct NnSweepCase {
  double alpha;
  double beta;
  int bt;
};

class NnFiltCostSweep : public ::testing::TestWithParam<NnSweepCase> {};

TEST_P(NnFiltCostSweep, LinearInEventCount) {
  const auto& [alpha, beta, bt] = GetParam();
  NnFiltCostParams params;
  params.alpha = alpha;
  params.beta = beta;
  params.timestampBits = bt;
  const CostEstimate est = nnFiltCost(params);
  const double n = beta * alpha * 240.0 * 180.0;
  EXPECT_NEAR(est.computesPerFrame, (16.0 + bt) * n, 1e-6);
  EXPECT_NEAR(est.memoryBits, bt * 240.0 * 180.0, 1e-9);
  // The event-domain filter always stores more than the EBBI when
  // Bt > 2 (the paper's 8x claim generalised).
  EXPECT_NEAR(est.memoryBits / ebbiCost().memoryBits, bt / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, NnFiltCostSweep,
    ::testing::Values(NnSweepCase{0.05, 1.0, 16}, NnSweepCase{0.1, 2.0, 16},
                      NnSweepCase{0.1, 2.0, 32}, NnSweepCase{0.2, 1.5, 8},
                      NnSweepCase{0.01, 3.0, 16}));

// ---------------------------------------------------------------- Eq. (5)
struct RpnSweepCase {
  int s1;
  int s2;
};

class RpnCostSweep : public ::testing::TestWithParam<RpnSweepCase> {};

TEST_P(RpnCostSweep, ComputeDominatedByFullResolutionPass) {
  const auto& [s1, s2] = GetParam();
  RpnCostParams params;
  params.s1 = s1;
  params.s2 = s2;
  const CostEstimate est = rpnCost(params);
  const double ab = 240.0 * 180.0;
  EXPECT_NEAR(est.computesPerFrame, ab + 2.0 * ab / (s1 * s2), 1e-6);
  // The A*B downsampling read dominates for every factor > 1.
  if (s1 * s2 > 2) {
    EXPECT_GT(ab, est.computesPerFrame / 2.0);
  }
  EXPECT_GT(est.memoryBits, 0.0);
}

TEST_P(RpnCostSweep, CoarserIsNeverMoreExpensive) {
  const auto& [s1, s2] = GetParam();
  RpnCostParams fine;
  fine.s1 = s1;
  fine.s2 = s2;
  RpnCostParams coarse;
  coarse.s1 = s1 * 2;
  coarse.s2 = s2;
  EXPECT_LE(rpnCost(coarse).computesPerFrame,
            rpnCost(fine).computesPerFrame + 1e-9);
  // Memory monotonicity holds away from the degenerate (1, 1) point,
  // where Eq. (5)'s ceil(log2(s1*s2)) = 0 charges the count image
  // nothing (it *is* the binary image there).
  if (s1 * s2 > 1) {
    EXPECT_LE(rpnCost(coarse).memoryBits, rpnCost(fine).memoryBits + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, RpnCostSweep,
                         ::testing::Values(RpnSweepCase{1, 1},
                                           RpnSweepCase{2, 2},
                                           RpnSweepCase{4, 2},
                                           RpnSweepCase{6, 3},
                                           RpnSweepCase{8, 4},
                                           RpnSweepCase{12, 6}));

// ---------------------------------------------------------------- Eq. (7)
class KfCostSweep : public ::testing::TestWithParam<int> {};

TEST_P(KfCostSweep, CubicGrowthInTrackCount) {
  const int nT = GetParam();
  KfCostParams params;
  params.nT = nT;
  const double n = 2.0 * nT;
  const CostEstimate est = kfCost(params);
  EXPECT_NEAR(est.computesPerFrame,
              4.0 * n * n * n + 6.0 * n * n * n + 4.0 * n * n * n +
                  4.0 * n * n * n + 3.0 * n * n,
              1e-6);
  // Doubling the tracks costs ~8x compute (cubic), not 2x.
  if (nT <= 4) {
    KfCostParams doubled;
    doubled.nT = 2 * nT;
    const double ratio =
        kfCost(doubled).computesPerFrame / est.computesPerFrame;
    EXPECT_GT(ratio, 7.0);
    EXPECT_LT(ratio, 9.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Tracks, KfCostSweep, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------- Eq. (8)
class EbmsCostSweep : public ::testing::TestWithParam<double> {};

TEST_P(EbmsCostSweep, LinearInFilteredEvents) {
  const double nF = GetParam();
  EbmsCostParams params;
  params.nF = nF;
  const double perEvent = 9.0 * 4.0 + (169.0 + 1.6) * 2.0 + 11.0;
  EXPECT_NEAR(ebmsCost(params).computesPerFrame, nF * perEvent, 1e-6);
  // Memory depends only on CLmax, not on traffic.
  EXPECT_NEAR(ebmsCost(params).memoryBits, 408.0 * 8 + 56.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EventRates, EbmsCostSweep,
                         ::testing::Values(0.0, 100.0, 650.0, 2'000.0,
                                           10'000.0));

// ------------------------------------------------------ crossover shape
TEST(PipelineCrossoverTest, EbmsWinsOnlyWhenScenesAreNearlyEmpty) {
  // EBBIOT's cost is ~fixed per frame; the event chain's scales with
  // activity.  The crossover must sit at very low activity — quantify
  // where.
  bool ebmsEverCheaper = false;
  double crossoverAlpha = -1.0;
  for (double alpha = 0.001; alpha <= 0.2; alpha += 0.001) {
    PipelineCostParams params;
    params.ebbi.alpha = alpha;
    params.nnFilt.alpha = alpha;
    params.nnFilt.beta = 1.5;
    params.ebms.nF = 0.3 * alpha * 240.0 * 180.0;  // post-filter share
    const double ours = ebbiotPipelineCost(params).computesPerFrame;
    const double theirs = ebmsPipelineCost(params).computesPerFrame;
    if (theirs < ours) {
      ebmsEverCheaper = true;
      crossoverAlpha = alpha;
    }
  }
  EXPECT_TRUE(ebmsEverCheaper);
  // The event chain only wins below ~2% active pixels — far below the
  // paper's surveillance operating point (alpha ~= 4-10%).
  EXPECT_LT(crossoverAlpha, 0.03);
}

}  // namespace
}  // namespace ebbiot
