// Edge-case tests for the OT paths that previously had no direct
// coverage: the case-5 duplicate-tracker merge (several trackers share
// one proposal without crossing trajectories), the dynamic-occlusion
// coast (velocity retained across multiple blob frames), and tracker-slot
// exhaustion at the paper's NT = 8 bound.
#include <gtest/gtest.h>

#include "src/trackers/overlap_tracker.hpp"

namespace ebbiot {
namespace {

OverlapTrackerConfig testConfig() {
  OverlapTrackerConfig c;
  c.minHitsToReport = 1;
  c.minSeedArea = 4.0F;
  return c;
}

RegionProposals props(std::initializer_list<BBox> boxes) {
  RegionProposals out;
  for (const BBox& b : boxes) {
    out.push_back(RegionProposal{b, static_cast<std::uint64_t>(b.area())});
  }
  return out;
}

TEST(OtCase5MergeTest, SharedProposalMergesDuplicatesIntoSenior) {
  OverlapTracker tracker(testConfig());
  // Seed A one frame before B so A is senior (more hits).  The boxes are
  // separated fragments of one stationary object, so their velocities
  // agree (~0) and the boxes never overlap — the continuous duplicate
  // suppression cannot fire; only the case-5 shared-proposal path can.
  const BBox fragA{50, 50, 20, 20};
  const BBox fragB{75, 50, 20, 20};
  (void)tracker.update(props({fragA}));
  for (int f = 0; f < 3; ++f) {
    (void)tracker.update(props({fragA, fragB}));
  }
  ASSERT_EQ(tracker.activeCount(), 2);
  const Tracks before = tracker.liveTracks();
  const std::uint32_t seniorId =
      before[0].hits >= before[1].hits ? before[0].id : before[1].id;

  // The fragments reconnect into one proposal matching both trackers:
  // co-moving trajectories -> not an occlusion -> duplicate merge.  The
  // senior tracker inherits the proposal; the junior slot is freed.
  const BBox whole{50, 50, 45, 20};
  const Tracks merged = tracker.update(props({whole}));
  EXPECT_EQ(tracker.activeCount(), 1);
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0].id, seniorId);
  EXPECT_FALSE(merged[0].occluded);
  EXPECT_EQ(merged[0].misses, 0);
}

TEST(OtCase5MergeTest, ThreeWayMergeKeepsExactlyOne) {
  OverlapTracker tracker(testConfig());
  const BBox a{40, 50, 14, 18};
  const BBox b{60, 50, 14, 18};
  const BBox c{80, 50, 14, 18};
  (void)tracker.update(props({a}));
  (void)tracker.update(props({a, b}));
  for (int f = 0; f < 2; ++f) {
    (void)tracker.update(props({a, b, c}));
  }
  ASSERT_EQ(tracker.activeCount(), 3);
  (void)tracker.update(props({BBox{40, 50, 54, 18}}));
  EXPECT_EQ(tracker.activeCount(), 1);
}

TEST(OtOcclusionCoastTest, VelocityRetainedAcrossMultipleBlobFrames) {
  OverlapTracker tracker(testConfig());
  auto left = [](int f) {
    return BBox{30.0F + 4.0F * static_cast<float>(f), 50, 24, 16};
  };
  auto right = [](int f) {
    return BBox{160.0F - 4.0F * static_cast<float>(f), 52, 24, 16};
  };
  int f = 0;
  for (; f < 12; ++f) {
    (void)tracker.update(props({left(f), right(f)}));
  }
  ASSERT_EQ(tracker.activeCount(), 2);
  Tracks prev = tracker.liveTracks();

  // Three consecutive merged-blob frames: both trackers must coast on
  // their own predictions — centres advancing by their velocities, the
  // occluded flag up, and no misses charged (the blob is a measurement,
  // just not an assignable one).
  for (int blob = 0; blob < 3; ++blob, ++f) {
    const Tracks now = tracker.update(props({unite(left(f), right(f))}));
    ASSERT_EQ(now.size(), 2U);
    for (const Track& t : now) {
      EXPECT_TRUE(t.occluded) << "blob frame " << blob;
      EXPECT_EQ(t.misses, 0);
    }
    // Identify by id: same order as prev (slot order is stable).
    ASSERT_EQ(now[0].id, prev[0].id);
    ASSERT_EQ(now[1].id, prev[1].id);
    EXPECT_NEAR(now[0].box.center().x - prev[0].box.center().x,
                now[0].velocity.x, 1.0F);
    EXPECT_NEAR(now[1].box.center().x - prev[1].box.center().x,
                now[1].velocity.x, 1.0F);
    EXPECT_GT(now[0].velocity.x, 2.0F);
    EXPECT_LT(now[1].velocity.x, -2.0F);
    prev = now;
  }

  // Once the objects have fully crossed and separated (their boxes stay
  // entangled for a few more frames, extending the occlusion), both
  // tracks re-acquire their own proposals with identities preserved.
  Tracks after;
  for (int post = 0; post < 8; ++post, ++f) {
    after = tracker.update(props({left(f), right(f)}));
  }
  ASSERT_EQ(after.size(), 2U);
  EXPECT_EQ(after[0].id, prev[0].id);
  EXPECT_EQ(after[1].id, prev[1].id);
  EXPECT_FALSE(after[0].occluded);
  EXPECT_FALSE(after[1].occluded);
}

TEST(OtSlotExhaustionTest, NinthProposalDroppedAtNt8) {
  OverlapTracker tracker(testConfig());  // maxTrackers = 8 (paper NT)
  RegionProposals ten;
  for (int i = 0; i < 10; ++i) {
    ten.push_back(RegionProposal{
        BBox{2.0F + 23.0F * static_cast<float>(i), 30, 16, 16}, 256});
  }
  (void)tracker.update(ten);
  EXPECT_EQ(tracker.activeCount(), 8);
  // The same scene again: the eight tracked objects re-match; the two
  // overflow proposals still find no free slot and are dropped, never
  // evicting an established tracker.
  const Tracks t = tracker.update(ten);
  EXPECT_EQ(tracker.activeCount(), 8);
  EXPECT_EQ(t.size(), 8U);
  for (const Track& tr : t) {
    EXPECT_EQ(tr.hits, 2);
  }
}

TEST(OtSlotExhaustionTest, FreedSlotsAreReused) {
  OverlapTrackerConfig config = testConfig();
  config.maxMisses = 1;
  OverlapTracker tracker(config);
  RegionProposals eight;
  for (int i = 0; i < 8; ++i) {
    eight.push_back(RegionProposal{
        BBox{2.0F + 28.0F * static_cast<float>(i), 30, 16, 16}, 256});
  }
  (void)tracker.update(eight);
  ASSERT_EQ(tracker.activeCount(), 8);
  // Everything disappears; after maxMisses+1 empty frames all slots free.
  (void)tracker.update({});
  (void)tracker.update({});
  ASSERT_EQ(tracker.activeCount(), 0);
  // A fresh object seeds immediately into a recycled slot with a new id.
  const Tracks t = tracker.update(props({BBox{100, 100, 20, 20}}));
  EXPECT_EQ(tracker.activeCount(), 1);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_GT(t[0].id, 8U);
}

}  // namespace
}  // namespace ebbiot
