#include "src/ebbi/two_timescale.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

EventPacket packetWithPixel(TimeUs t0, TimeUs t1, std::uint16_t x,
                            std::uint16_t y) {
  EventPacket p(t0, t1);
  p.push(Event{x, y, Polarity::kOn, t0});
  return p;
}

TEST(TwoTimescaleTest, FastFrameIsLatestWindowOnly) {
  TwoTimescaleBuilder builder(16, 16, 3);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  builder.addWindow(packetWithPixel(100, 200, 2, 2));
  EXPECT_FALSE(builder.fastFrame().get(1, 1));
  EXPECT_TRUE(builder.fastFrame().get(2, 2));
}

TEST(TwoTimescaleTest, SlowFrameIsUnionOfLastK) {
  TwoTimescaleBuilder builder(16, 16, 3);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  builder.addWindow(packetWithPixel(100, 200, 2, 2));
  builder.addWindow(packetWithPixel(200, 300, 3, 3));
  EXPECT_TRUE(builder.slowFrame().get(1, 1));
  EXPECT_TRUE(builder.slowFrame().get(2, 2));
  EXPECT_TRUE(builder.slowFrame().get(3, 3));
}

TEST(TwoTimescaleTest, SlowFrameSlidesForward) {
  TwoTimescaleBuilder builder(16, 16, 2);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  builder.addWindow(packetWithPixel(100, 200, 2, 2));
  builder.addWindow(packetWithPixel(200, 300, 3, 3));
  // Window 1 has fallen out of the 2-window ring.
  EXPECT_FALSE(builder.slowFrame().get(1, 1));
  EXPECT_TRUE(builder.slowFrame().get(2, 2));
  EXPECT_TRUE(builder.slowFrame().get(3, 3));
}

TEST(TwoTimescaleTest, FactorOneMakesFramesIdentical) {
  TwoTimescaleBuilder builder(16, 16, 1);
  builder.addWindow(packetWithPixel(0, 100, 4, 4));
  EXPECT_EQ(builder.fastFrame(), builder.slowFrame());
  builder.addWindow(packetWithPixel(100, 200, 5, 5));
  EXPECT_EQ(builder.fastFrame(), builder.slowFrame());
  EXPECT_FALSE(builder.slowFrame().get(4, 4));
}

TEST(TwoTimescaleTest, WarmupCountsWindows) {
  TwoTimescaleBuilder builder(16, 16, 4);
  EXPECT_EQ(builder.windowsSeen(), 0U);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  EXPECT_EQ(builder.windowsSeen(), 1U);
  EXPECT_TRUE(builder.slowFrame().get(1, 1));
}

TEST(TwoTimescaleTest, SlowFrameAccumulatesSlowObject) {
  // A slow object: one new pixel per window (sub-pixel-per-frame motion
  // leaves single-pixel traces).  The slow frame accumulates a silhouette
  // the fast frame never shows.
  TwoTimescaleBuilder builder(32, 32, 5);
  for (int i = 0; i < 5; ++i) {
    builder.addWindow(packetWithPixel(i * 100, (i + 1) * 100,
                                      static_cast<std::uint16_t>(10 + i), 10));
  }
  EXPECT_EQ(builder.fastFrame().popcount(), 1U);
  EXPECT_EQ(builder.slowFrame().popcount(), 5U);
}

TEST(TwoTimescaleTest, InvalidFactorThrows) {
  EXPECT_THROW(TwoTimescaleBuilder(16, 16, 0), LogicError);
}

}  // namespace
}  // namespace ebbiot
