#include "src/ebbi/two_timescale.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

EventPacket packetWithPixel(TimeUs t0, TimeUs t1, std::uint16_t x,
                            std::uint16_t y) {
  EventPacket p(t0, t1);
  p.push(Event{x, y, Polarity::kOn, t0});
  return p;
}

TEST(TwoTimescaleTest, FastFrameIsLatestWindowOnly) {
  TwoTimescaleBuilder builder(16, 16, 3);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  builder.addWindow(packetWithPixel(100, 200, 2, 2));
  EXPECT_FALSE(builder.fastFrame().get(1, 1));
  EXPECT_TRUE(builder.fastFrame().get(2, 2));
}

TEST(TwoTimescaleTest, SlowFrameIsUnionOfLastK) {
  TwoTimescaleBuilder builder(16, 16, 3);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  builder.addWindow(packetWithPixel(100, 200, 2, 2));
  builder.addWindow(packetWithPixel(200, 300, 3, 3));
  EXPECT_TRUE(builder.slowFrame().get(1, 1));
  EXPECT_TRUE(builder.slowFrame().get(2, 2));
  EXPECT_TRUE(builder.slowFrame().get(3, 3));
}

TEST(TwoTimescaleTest, SlowFrameSlidesForward) {
  TwoTimescaleBuilder builder(16, 16, 2);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  builder.addWindow(packetWithPixel(100, 200, 2, 2));
  builder.addWindow(packetWithPixel(200, 300, 3, 3));
  // Window 1 has fallen out of the 2-window ring.
  EXPECT_FALSE(builder.slowFrame().get(1, 1));
  EXPECT_TRUE(builder.slowFrame().get(2, 2));
  EXPECT_TRUE(builder.slowFrame().get(3, 3));
}

TEST(TwoTimescaleTest, FactorOneMakesFramesIdentical) {
  TwoTimescaleBuilder builder(16, 16, 1);
  builder.addWindow(packetWithPixel(0, 100, 4, 4));
  EXPECT_EQ(builder.fastFrame(), builder.slowFrame());
  builder.addWindow(packetWithPixel(100, 200, 5, 5));
  EXPECT_EQ(builder.fastFrame(), builder.slowFrame());
  EXPECT_FALSE(builder.slowFrame().get(4, 4));
}

TEST(TwoTimescaleTest, WarmupCountsWindows) {
  TwoTimescaleBuilder builder(16, 16, 4);
  EXPECT_EQ(builder.windowsSeen(), 0U);
  builder.addWindow(packetWithPixel(0, 100, 1, 1));
  EXPECT_EQ(builder.windowsSeen(), 1U);
  EXPECT_TRUE(builder.slowFrame().get(1, 1));
}

TEST(TwoTimescaleTest, SlowFrameAccumulatesSlowObject) {
  // A slow object: one new pixel per window (sub-pixel-per-frame motion
  // leaves single-pixel traces).  The slow frame accumulates a silhouette
  // the fast frame never shows.
  TwoTimescaleBuilder builder(32, 32, 5);
  for (int i = 0; i < 5; ++i) {
    builder.addWindow(packetWithPixel(i * 100, (i + 1) * 100,
                                      static_cast<std::uint16_t>(10 + i), 10));
  }
  EXPECT_EQ(builder.fastFrame().popcount(), 1U);
  EXPECT_EQ(builder.slowFrame().popcount(), 5U);
}

TEST(TwoTimescaleTest, InvalidFactorThrows) {
  EXPECT_THROW(TwoTimescaleBuilder(16, 16, 0), LogicError);
}

/// Naive recompute of the slow frame: OR of the EBBIs of the last k
/// windows, built independently.  The incremental update (OR the new
/// window in; full rebuild only when the evicted slot had content) must
/// stay bit-identical to this at every step.
class NaiveSlowFrame {
 public:
  NaiveSlowFrame(int width, int height, int k)
      : builder_(width, height), k_(static_cast<std::size_t>(k)),
        width_(width), height_(height) {}

  void addWindow(const EventPacket& packet) {
    frames_.push_back(builder_.build(packet));
    if (frames_.size() > k_) {
      frames_.erase(frames_.begin());
    }
  }

  [[nodiscard]] BinaryImage slow() const {
    BinaryImage out(width_, height_);
    for (const BinaryImage& f : frames_) {
      out.orWith(f);
    }
    return out;
  }

 private:
  EbbiBuilder builder_;
  std::size_t k_;
  int width_;
  int height_;
  std::vector<BinaryImage> frames_;
};

TEST(TwoTimescaleTest, SparseSceneMatchesNaiveRecompute) {
  // Mostly-blank windows (the incremental OR fast path) interleaved with
  // occasional content, including content that must *vanish* from the
  // slow frame k windows later (the eviction rebuild path).
  TwoTimescaleBuilder builder(64, 48, 4);
  NaiveSlowFrame naive(64, 48, 4);
  for (int w = 0; w < 24; ++w) {
    EventPacket p(w * 100, (w + 1) * 100);
    if (w % 5 == 0) {  // a lone speck every 5th window
      p.push(Event{static_cast<std::uint16_t>(5 + w), 10, Polarity::kOn,
                   static_cast<TimeUs>(w * 100)});
    }
    if (w == 7) {  // one dense burst that later falls out of the ring
      for (int y = 20; y < 30; ++y) {
        for (int x = 30; x < 50; ++x) {
          p.push(Event{static_cast<std::uint16_t>(x),
                       static_cast<std::uint16_t>(y), Polarity::kOn,
                       static_cast<TimeUs>(w * 100)});
        }
      }
    }
    builder.addWindow(p);
    naive.addWindow(p);
    ASSERT_EQ(builder.slowFrame(), naive.slow()) << "window " << w;
  }
}

TEST(TwoTimescaleTest, DenseSceneMatchesNaiveRecompute) {
  // Every window has content: every post-warm-up addWindow takes the
  // eviction-rebuild path and must still match the naive OR.
  TwoTimescaleBuilder builder(64, 48, 3);
  NaiveSlowFrame naive(64, 48, 3);
  for (int w = 0; w < 10; ++w) {
    EventPacket p(w * 100, (w + 1) * 100);
    for (int i = 0; i < 12; ++i) {
      p.push(Event{static_cast<std::uint16_t>((w * 7 + i * 5) % 64),
                   static_cast<std::uint16_t>((w * 3 + i) % 48),
                   Polarity::kOn, static_cast<TimeUs>(w * 100)});
    }
    builder.addWindow(p);
    naive.addWindow(p);
    ASSERT_EQ(builder.slowFrame(), naive.slow()) << "window " << w;
  }
}

TEST(TwoTimescaleTest, FastFrameReferenceTracksLatestRingSlot) {
  // fastFrame() aliases the ring slot of the most recent window: the
  // reference returned before an addWindow still describes the *old*
  // window afterwards only if re-fetched; re-fetching always yields the
  // latest build with no copy in between.
  TwoTimescaleBuilder builder(16, 16, 2);
  builder.addWindow(packetWithPixel(0, 100, 3, 3));
  const BinaryImage* first = &builder.fastFrame();
  EXPECT_TRUE(first->get(3, 3));
  builder.addWindow(packetWithPixel(100, 200, 9, 9));
  const BinaryImage* second = &builder.fastFrame();
  EXPECT_NE(first, second);  // k = 2: windows alternate ring slots
  EXPECT_TRUE(second->get(9, 9));
  EXPECT_FALSE(second->get(3, 3));
}

}  // namespace
}  // namespace ebbiot
