#include <vector>

#include "src/common/error.hpp"
#include "src/sim/davis.hpp"

namespace ebbiot {

EventPacket latchReadout(const EventPacket& packet, int width, int height) {
  EBBIOT_ASSERT(width > 0 && height > 0);
  EBBIOT_ASSERT(packet.isTimeSorted());
  std::vector<std::uint8_t> latched(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);
  EventPacket out(packet.tStart(), packet.tEnd());
  for (const Event& e : packet) {
    EBBIOT_ASSERT(e.x < width && e.y < height);
    std::uint8_t& cell =
        latched[static_cast<std::size_t>(e.y) * width + e.x];
    if (cell == 0) {
      cell = 1;
      out.push(e);
    }
  }
  return out;
}

}  // namespace ebbiot
