// Stochastic lane traffic — the paper's recording scenario.
//
// Section III-A: a stationary DAVIS watches a traffic junction from the
// side; humans, bikes, cars, vans, trucks and buses cross the field of
// view; object sizes span an order of magnitude and speeds run from
// sub-pixel to ~6 px/frame.  TrafficScenario reproduces that as lanes with
// Poisson arrivals: each lane has a vertical position, a travel direction
// and a class mix; every arrival samples a concrete object from the
// catalogue and crosses the frame at constant velocity.  Opposing lanes
// overlap vertically, so crossings produce genuine dynamic occlusions for
// the tracker.
//
// The whole schedule is generated up front from one seed, which makes the
// scenario a deterministic SceneProvider: objectsAt(t) is a pure function.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/ground_truth.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {

/// One traffic lane.
struct LaneSpec {
  float yCenter = 0.0F;   ///< vertical centre of objects in this lane, px
  int direction = +1;     ///< +1: left-to-right, -1: right-to-left
  double arrivalRateHz = 0.2;  ///< mean arrivals per second
  /// Relative class mix in this lane, indexed by ObjectClass; zero entries
  /// excluded.  Vehicles on road lanes, humans/bikes on path lanes.
  std::array<double, kObjectClassCount> classWeights{};
  double minHeadwayS = 1.5;  ///< minimum spacing between arrivals
};

struct TrafficConfig {
  int width = 240;
  int height = 180;
  float lensScale = 1.0F;   ///< 1.0 at 12 mm (ENG); 0.5 at 6 mm (LT4)
  std::vector<LaneSpec> lanes;
  std::uint64_t seed = 7;
};

/// Road+path lane set spanning the sensor for the given geometry: two
/// vehicle lanes in each direction plus a pedestrian path, scaled by
/// lensScale.
[[nodiscard]] std::vector<LaneSpec> makeDefaultLanes(int height,
                                                     float lensScale);

class TrafficScenario final : public SceneProvider {
 public:
  /// Generates the full arrival schedule for [0, duration) at construction.
  TrafficScenario(const TrafficConfig& config, TimeUs duration);

  [[nodiscard]] std::vector<ObjectState> objectsAt(TimeUs t) const override;
  [[nodiscard]] int width() const override { return config_.width; }
  [[nodiscard]] int height() const override { return config_.height; }

  [[nodiscard]] TimeUs duration() const { return duration_; }
  [[nodiscard]] const std::vector<ScriptedObject>& schedule() const {
    return schedule_;
  }

  /// Ground truth sampled at every multiple of framePeriod in [0,duration).
  [[nodiscard]] GroundTruth groundTruth(TimeUs framePeriod,
                                        const GtOptions& options = {}) const;

 private:
  void generateSchedule();

  TrafficConfig config_;
  TimeUs duration_;
  std::vector<ScriptedObject> schedule_;  ///< sorted by tStart
  std::uint32_t nextId_ = 1;
};

}  // namespace ebbiot
