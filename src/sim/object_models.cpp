#include "src/sim/object_models.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ebbiot {

std::string_view objectClassName(ObjectClass c) {
  switch (c) {
    case ObjectClass::kHuman:
      return "human";
    case ObjectClass::kBike:
      return "bike";
    case ObjectClass::kCar:
      return "car";
    case ObjectClass::kVan:
      return "van";
    case ObjectClass::kTruck:
      return "truck";
    case ObjectClass::kBus:
      return "bus";
  }
  return "unknown";
}

const std::array<ObjectClassModel, kObjectClassCount>& objectCatalogue() {
  // Sizes in pixels at the 12 mm ENG lens on the 240x180 DAVIS; side view.
  // Bus width (120 px) vs human width (8 px) spans the paper's "order of
  // magnitude" size range; speeds span sub-pixel (humans, ~0.3 px/frame)
  // to ~6 px/frame (fast cars) at tF = 66 ms.
  static const std::array<ObjectClassModel, kObjectClassCount> catalogue = {{
      {ObjectClass::kHuman, 8.0F, 20.0F, 0.20F, 4.0F, 12.0F, 1.2F, 0.30F},
      {ObjectClass::kBike, 16.0F, 18.0F, 0.20F, 30.0F, 60.0F, 1.2F, 0.25F},
      {ObjectClass::kCar, 48.0F, 22.0F, 0.15F, 30.0F, 90.0F, 1.5F, 0.18F},
      {ObjectClass::kVan, 60.0F, 28.0F, 0.15F, 30.0F, 75.0F, 1.5F, 0.12F},
      {ObjectClass::kTruck, 95.0F, 34.0F, 0.12F, 25.0F, 60.0F, 1.5F, 0.06F},
      {ObjectClass::kBus, 120.0F, 38.0F, 0.10F, 25.0F, 55.0F, 1.5F, 0.05F},
  }};
  return catalogue;
}

const ObjectClassModel& classModel(ObjectClass c) {
  const auto idx = static_cast<std::size_t>(c);
  EBBIOT_ASSERT(idx < kObjectClassCount);
  return objectCatalogue()[idx];
}

SampledObject sampleObject(ObjectClass c, float lensScale, Rng& rng) {
  EBBIOT_ASSERT(lensScale > 0.0F);
  const ObjectClassModel& m = classModel(c);
  SampledObject s;
  s.kind = c;
  const float jw = 1.0F + static_cast<float>(rng.uniform(-m.sizeJitter,
                                                         m.sizeJitter));
  const float jh = 1.0F + static_cast<float>(rng.uniform(-m.sizeJitter,
                                                         m.sizeJitter));
  s.width = std::max(2.0F, m.width * jw * lensScale);
  s.height = std::max(2.0F, m.height * jh * lensScale);
  s.speed = static_cast<float>(rng.uniform(m.minSpeed, m.maxSpeed)) * lensScale;
  return s;
}

}  // namespace ebbiot
