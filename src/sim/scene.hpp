// Scene abstraction: who is where at time t.
//
// Both sensor models (the rasterising DavisSimulator and the statistical
// FastEventSynth) consume a SceneProvider, which answers "which objects are
// visible at time t, and where".  Two implementations exist:
//   * ScriptedScene — hand-placed objects with linear trajectories, the
//     workhorse of the tracker unit tests (exact, deterministic motion);
//   * TrafficScenario (traffic.hpp) — stochastic lane traffic for the
//     paper-scale recordings.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/geometry.hpp"
#include "src/common/time.hpp"
#include "src/sim/object_models.hpp"

namespace ebbiot {

/// Snapshot of one object at a queried instant.
struct ObjectState {
  std::uint32_t id = 0;          ///< stable identity across frames
  ObjectClass kind = ObjectClass::kCar;
  BBox box;                      ///< full (unclipped) box, px
  Vec2f velocity;                ///< px/s
  /// Per-object texture phase seed, so the rasteriser draws a stable
  /// pattern that travels with the object.
  std::uint32_t textureSeed = 0;
};

/// Interface: enumerate visible objects at a given time.
class SceneProvider {
 public:
  virtual ~SceneProvider() = default;

  /// Objects whose (unclipped) boxes intersect the sensor frame at time t.
  /// Must be deterministic in t.
  [[nodiscard]] virtual std::vector<ObjectState> objectsAt(TimeUs t) const = 0;

  [[nodiscard]] virtual int width() const = 0;
  [[nodiscard]] virtual int height() const = 0;
};

/// A scripted linear trajectory: the box translates at constant velocity
/// from its pose at tStart; the object exists during [tStart, tEnd).
struct ScriptedObject {
  std::uint32_t id = 0;
  ObjectClass kind = ObjectClass::kCar;
  BBox boxAtStart;
  Vec2f velocity;  ///< px/s
  TimeUs tStart = 0;
  TimeUs tEnd = 0;
  std::uint32_t textureSeed = 0;
};

/// Deterministic scene assembled from scripted objects.
class ScriptedScene : public SceneProvider {
 public:
  ScriptedScene(int width, int height);

  /// Add an object; returns its id.
  std::uint32_t add(const ScriptedObject& object);

  /// Convenience: object of class `kind` entering with box `start` at
  /// tStart, moving with `velocity` until tEnd.
  std::uint32_t addLinear(ObjectClass kind, const BBox& start, Vec2f velocity,
                          TimeUs tStart, TimeUs tEnd);

  [[nodiscard]] std::vector<ObjectState> objectsAt(TimeUs t) const override;
  [[nodiscard]] int width() const override { return width_; }
  [[nodiscard]] int height() const override { return height_; }

  [[nodiscard]] std::size_t objectCount() const { return objects_.size(); }

 private:
  int width_;
  int height_;
  std::vector<ScriptedObject> objects_;
  std::uint32_t nextId_ = 1;
};

/// Pose of a scripted object at time t (shared by scene + ground truth).
[[nodiscard]] BBox scriptedBoxAt(const ScriptedObject& object, TimeUs t);

}  // namespace ebbiot
