#include "src/sim/recording.hpp"

#include "src/common/error.hpp"

namespace ebbiot {

RecordingSpec makeSyntheticEng(std::uint64_t seed) {
  RecordingSpec spec;
  spec.name = "SyntheticENG";
  spec.lensMm = 12.0;
  spec.durationS = 2998.4;
  spec.paperEventCount = 107'500'000;
  spec.traffic.width = 240;
  spec.traffic.height = 180;
  spec.traffic.lensScale = 1.0F;
  spec.traffic.lanes = makeDefaultLanes(180, 1.0F);
  spec.traffic.seed = seed;
  // Calibration: ENG averages ~35.8 k events/s (107.5 M / 2998.4 s).  With
  // the default lanes (~1.5-2.5 objects in frame), object contours and
  // interiors produce ~27 k events/s and background activity supplies the
  // rest (0.2 Hz/px * 43200 px = 8.6 k events/s).
  spec.synth.backgroundActivityHz = 0.2;
  spec.synth.edgeEventsPerPixelTravel = 1.3;
  spec.synth.interiorScale = 0.8;
  spec.synth.seed = seed ^ 0xEB1Au;
  return spec;
}

RecordingSpec makeSyntheticLt4(std::uint64_t seed) {
  RecordingSpec spec;
  spec.name = "SyntheticLT4";
  spec.lensMm = 6.0;
  spec.durationS = 999.5;
  spec.paperEventCount = 12'500'000;
  spec.traffic.width = 240;
  spec.traffic.height = 180;
  spec.traffic.lensScale = 0.5F;  // 6 mm lens halves apparent sizes
  spec.traffic.lanes = makeDefaultLanes(180, 0.5F);
  // Halved apparent speeds double each vehicle's dwell time; thin the
  // arrivals to keep in-frame concurrency at the ENG operating point.
  for (LaneSpec& lane : spec.traffic.lanes) {
    lane.arrivalRateHz *= 0.55;
  }
  spec.traffic.seed = seed;
  // LT4 averages ~12.5 k events/s; the half-size objects emit roughly a
  // quarter of the ENG signal rate, and the noise floor is lower (the 6 mm
  // recording in the paper has proportionally fewer events).  The shorter
  // lens squeezes the same physical texture into fewer pixels, so
  // per-pixel interior detail doubles (1 / lensScale).
  spec.synth.backgroundActivityHz = 0.07;
  spec.synth.edgeEventsPerPixelTravel = 1.3;
  spec.synth.interiorScale = 2.0;
  spec.synth.seed = seed ^ 0x174Fu;
  return spec;
}

RecordingSpec scaledRecording(const RecordingSpec& spec, double fraction) {
  EBBIOT_ASSERT(fraction > 0.0 && fraction <= 1.0);
  RecordingSpec scaled = spec;
  scaled.durationS = spec.durationS * fraction;
  scaled.paperEventCount = static_cast<std::uint64_t>(
      static_cast<double>(spec.paperEventCount) * fraction);
  return scaled;
}

Recording openRecording(const RecordingSpec& spec) {
  Recording rec;
  rec.spec = spec;
  rec.scenario = std::make_unique<TrafficScenario>(
      spec.traffic, secondsToUs(spec.durationS));
  rec.source = std::make_unique<FastEventSynth>(*rec.scenario, spec.synth);
  return rec;
}

}  // namespace ebbiot
