// Fast statistical event synthesizer.
//
// The rasterising DavisSimulator is faithful but costs O(object area /
// sim step); synthesising the paper's full recordings (Table I: 2998 s +
// 999 s, 120 M events) that way is wasteful.  FastEventSynth generates
// events *per frame window* directly from the statistics that matter to
// the downstream pipeline:
//
//   * leading and trailing vertical contours of each moving object emit
//     Poisson(edge_height x travel x density) events inside the band swept
//     during the window (OFF at the leading dark edge, ON at the trailing),
//   * horizontal (top/bottom) contours emit a grazing-incidence share,
//   * the interior emits Poisson(area x travel x interior density) events
//     (few for flat-sided buses/trucks -> fragmented EBBIs, as in Fig. 3),
//   * background-activity noise is uniform Poisson over the array,
//
// with all timestamps uniform in the window.  Event counts per object and
// per frame match the DavisSimulator closely enough that pipelines tuned
// on one behave identically on the other (verified by test).
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {

/// A scene element that emits events but is not a tracked object — the
/// paper's "distractors such as trees which create spurious events"
/// (Section II-C), to be masked by the Region of Exclusion.
struct DistractorRegion {
  BBox box;
  double eventRateHz = 0.0;  ///< total events per second across the region
};

struct EventSynthConfig {
  double backgroundActivityHz = 0.2;  ///< noise rate per pixel
  std::vector<DistractorRegion> distractors;
  /// Events per edge pixel per pixel of travel, before the per-class
  /// edgeEventDensity factor.  ~2 reproduces beta ~= 2 for fast edges in
  /// stream mode (each log-contrast edge crossing fires about twice).
  double edgeEventsPerPixelTravel = 2.0;
  /// Scale on per-class interior densities.
  double interiorScale = 1.0;
  std::uint64_t seed = 42;
};

class FastEventSynth final : public EventSource {
 public:
  /// The scene must outlive the synthesizer.
  FastEventSynth(const SceneProvider& scene, const EventSynthConfig& config);

  [[nodiscard]] EventPacket nextWindow(TimeUs duration) override;
  [[nodiscard]] TimeUs now() const override { return now_; }
  [[nodiscard]] int width() const override { return width_; }
  [[nodiscard]] int height() const override { return height_; }

  [[nodiscard]] const EventSynthConfig& config() const { return config_; }

 private:
  void emitObject(const ObjectState& object, TimeUs t0, TimeUs t1,
                  EventPacket& out);
  void emitBand(const BBox& band, double meanCount, Polarity polarity,
                TimeUs t0, TimeUs t1, EventPacket& out);
  void emitNoise(TimeUs t0, TimeUs t1, EventPacket& out);

  const SceneProvider& scene_;
  EventSynthConfig config_;
  int width_;
  int height_;
  TimeUs now_ = 0;
  Rng rng_;
};

}  // namespace ebbiot
