#include "src/sim/event_synth.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebbiot {

FastEventSynth::FastEventSynth(const SceneProvider& scene,
                               const EventSynthConfig& config)
    : scene_(scene),
      config_(config),
      width_(scene.width()),
      height_(scene.height()),
      rng_(config.seed) {
  EBBIOT_ASSERT(config.edgeEventsPerPixelTravel >= 0.0);
  EBBIOT_ASSERT(config.backgroundActivityHz >= 0.0);
}

EventPacket FastEventSynth::nextWindow(TimeUs duration) {
  EBBIOT_ASSERT(duration > 0);
  const TimeUs t0 = now_;
  const TimeUs t1 = now_ + duration;
  EventPacket out(t0, t1);
  // Objects evaluated at the window midpoint; travel within the window is
  // short relative to object size, so midpoint pose + swept bands is a
  // good model of the event footprint.
  for (const ObjectState& o : scene_.objectsAt((t0 + t1) / 2)) {
    emitObject(o, t0, t1, out);
  }
  const double dtS = usToSeconds(duration);
  for (const DistractorRegion& d : config_.distractors) {
    // Distractors flutter with mixed polarity; emitBand splits the mean so
    // both polarities appear.
    emitBand(d.box, d.eventRateHz * dtS / 2.0, Polarity::kOn, t0, t1, out);
    emitBand(d.box, d.eventRateHz * dtS / 2.0, Polarity::kOff, t0, t1, out);
  }
  emitNoise(t0, t1, out);
  out.sortByTime();
  now_ = t1;
  return out;
}

void FastEventSynth::emitObject(const ObjectState& object, TimeUs t0,
                                TimeUs t1, EventPacket& out) {
  const BBox frame{0.0F, 0.0F, static_cast<float>(width_),
                   static_cast<float>(height_)};
  const BBox visible = intersect(object.box, frame);
  if (visible.empty()) {
    return;
  }
  const double dtS = usToSeconds(t1 - t0);
  const double travel =
      static_cast<double>(object.velocity.norm()) * dtS;  // px this window
  if (travel <= 0.0) {
    return;  // stationary objects emit nothing (contrast unchanged)
  }
  const ObjectClassModel& model = classModel(object.kind);
  const double edgeRate =
      config_.edgeEventsPerPixelTravel * model.edgeEventDensity;
  const float bandW = static_cast<float>(std::max(1.0, travel));

  const bool movingRight = object.velocity.x >= 0.0F;
  // Vertical contours: the leading face sweeps [lead, lead +- travel], the
  // trailing face likewise.  A dark object on a brighter background makes
  // OFF events at the leading contour and ON at the trailing one.
  const float leadX = movingRight ? visible.right() - bandW : visible.left();
  const float trailX = movingRight ? visible.left() : visible.right() - bandW;
  const double vertMean = visible.h * travel * edgeRate;
  emitBand(BBox{leadX, visible.y, bandW, visible.h}, vertMean, Polarity::kOff,
           t0, t1, out);
  emitBand(BBox{trailX, visible.y, bandW, visible.h}, vertMean, Polarity::kOn,
           t0, t1, out);

  // Horizontal contours (top/bottom) at grazing incidence for horizontal
  // motion: a quarter of the vertical rate per pixel.
  const double horizMean = visible.w * travel * edgeRate * 0.25;
  emitBand(BBox{visible.x, visible.top() - 1.0F, visible.w, 1.0F},
           horizMean / 2.0, Polarity::kOff, t0, t1, out);
  emitBand(BBox{visible.x, visible.y, visible.w, 1.0F}, horizMean / 2.0,
           Polarity::kOn, t0, t1, out);

  // Interior texture events across the whole visible body.
  const double interiorMean = visible.area() * travel *
                              model.interiorEventDensity *
                              config_.interiorScale;
  const std::int64_t n = rng_.poisson(interiorMean);
  for (std::int64_t i = 0; i < n; ++i) {
    Event e;
    e.x = static_cast<std::uint16_t>(std::clamp(
        static_cast<int>(rng_.uniform(visible.left(), visible.right())), 0,
        width_ - 1));
    e.y = static_cast<std::uint16_t>(std::clamp(
        static_cast<int>(rng_.uniform(visible.bottom(), visible.top())), 0,
        height_ - 1));
    e.p = rng_.chance(0.5) ? Polarity::kOn : Polarity::kOff;
    e.t = t0 + rng_.uniformInt(0, t1 - t0 - 1);
    out.push(e);
  }
}

void FastEventSynth::emitBand(const BBox& band, double meanCount,
                              Polarity polarity, TimeUs t0, TimeUs t1,
                              EventPacket& out) {
  const BBox clipped = clampToFrame(band, width_, height_);
  if (clipped.empty() || meanCount <= 0.0) {
    return;
  }
  // Scale the count by the visible share of the band.
  const double scale = band.area() > 0.0F ? clipped.area() / band.area() : 0.0;
  const std::int64_t n = rng_.poisson(meanCount * scale);
  for (std::int64_t i = 0; i < n; ++i) {
    Event e;
    e.x = static_cast<std::uint16_t>(std::clamp(
        static_cast<int>(rng_.uniform(clipped.left(), clipped.right())), 0,
        width_ - 1));
    e.y = static_cast<std::uint16_t>(std::clamp(
        static_cast<int>(rng_.uniform(clipped.bottom(), clipped.top())), 0,
        height_ - 1));
    e.p = polarity;
    e.t = t0 + rng_.uniformInt(0, t1 - t0 - 1);
    out.push(e);
  }
}

void FastEventSynth::emitNoise(TimeUs t0, TimeUs t1, EventPacket& out) {
  const double dtS = usToSeconds(t1 - t0);
  const std::size_t pixels = static_cast<std::size_t>(width_) *
                             static_cast<std::size_t>(height_);
  const double mean =
      config_.backgroundActivityHz * static_cast<double>(pixels) * dtS;
  const std::int64_t n = rng_.poisson(mean);
  for (std::int64_t i = 0; i < n; ++i) {
    Event e;
    const std::int64_t pix =
        rng_.uniformInt(0, static_cast<std::int64_t>(pixels) - 1);
    e.x = static_cast<std::uint16_t>(pix % width_);
    e.y = static_cast<std::uint16_t>(pix / width_);
    e.p = rng_.chance(0.5) ? Polarity::kOn : Polarity::kOff;
    e.t = t0 + rng_.uniformInt(0, t1 - t0 - 1);
    out.push(e);
  }
}

}  // namespace ebbiot
