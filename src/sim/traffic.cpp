#include "src/sim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

std::array<double, kObjectClassCount> roadMix() {
  std::array<double, kObjectClassCount> w{};
  w[static_cast<std::size_t>(ObjectClass::kBike)] = 0.12;
  w[static_cast<std::size_t>(ObjectClass::kCar)] = 0.52;
  w[static_cast<std::size_t>(ObjectClass::kVan)] = 0.16;
  w[static_cast<std::size_t>(ObjectClass::kTruck)] = 0.10;
  w[static_cast<std::size_t>(ObjectClass::kBus)] = 0.10;
  return w;
}

std::array<double, kObjectClassCount> pathMix() {
  std::array<double, kObjectClassCount> w{};
  w[static_cast<std::size_t>(ObjectClass::kHuman)] = 0.7;
  w[static_cast<std::size_t>(ObjectClass::kBike)] = 0.3;
  return w;
}

ObjectClass sampleClass(const std::array<double, kObjectClassCount>& weights,
                        Rng& rng) {
  double total = 0.0;
  for (double w : weights) {
    EBBIOT_ASSERT(w >= 0.0);
    total += w;
  }
  EBBIOT_ASSERT(total > 0.0);
  double draw = rng.uniform(0.0, total);
  for (int i = 0; i < kObjectClassCount; ++i) {
    draw -= weights[static_cast<std::size_t>(i)];
    if (draw <= 0.0) {
      return static_cast<ObjectClass>(i);
    }
  }
  return ObjectClass::kBus;
}

}  // namespace

std::vector<LaneSpec> makeDefaultLanes(int height, float lensScale) {
  EBBIOT_ASSERT(height > 0 && lensScale > 0.0F);
  const float h = static_cast<float>(height);
  std::vector<LaneSpec> lanes;
  // Three vehicle lanes.  Separation is chosen so that ordinary vehicles
  // in different lanes occupy distinct Y bands (the paper's side-view
  // assumption: the 1-D histogram RPN needs lanes not to chain
  // vertically), while the tallest vehicles (buses, trucks) still graze
  // the neighbouring lane, producing occasional genuine dynamic
  // occlusions for the tracker's case-5 logic.
  lanes.push_back(LaneSpec{h * 0.24F, +1, 0.18, roadMix(), 2.0});
  lanes.push_back(LaneSpec{h * 0.42F, -1, 0.18, roadMix(), 2.0});
  lanes.push_back(LaneSpec{h * 0.60F, +1, 0.10, roadMix(), 2.5});
  // Pedestrian / cycle path further up (side view: further from camera).
  // Pedestrians linger for tens of seconds, so a very low arrival rate
  // still puts them in a meaningful share of frames while keeping overall
  // concurrency at the paper's operating point (~2 objects in frame).
  LaneSpec path{h * 0.80F, -1, 0.004, pathMix(), 3.0};
  lanes.push_back(path);
  return lanes;
}

TrafficScenario::TrafficScenario(const TrafficConfig& config, TimeUs duration)
    : config_(config), duration_(duration) {
  EBBIOT_ASSERT(config.width > 0 && config.height > 0);
  EBBIOT_ASSERT(config.lensScale > 0.0F);
  EBBIOT_ASSERT(duration > 0);
  EBBIOT_ASSERT(!config.lanes.empty());
  generateSchedule();
}

void TrafficScenario::generateSchedule() {
  Rng rng(config_.seed);
  const float frameW = static_cast<float>(config_.width);
  for (std::size_t laneIdx = 0; laneIdx < config_.lanes.size(); ++laneIdx) {
    const LaneSpec& lane = config_.lanes[laneIdx];
    EBBIOT_ASSERT(lane.arrivalRateHz > 0.0);
    Rng laneRng = rng.fork(laneIdx + 1);
    double tS = 0.0;
    while (true) {
      tS += std::max(laneRng.exponential(lane.arrivalRateHz),
                     lane.minHeadwayS);
      const TimeUs tStart = secondsToUs(tS);
      if (tStart >= duration_) {
        break;
      }
      const SampledObject sampled =
          sampleObject(sampleClass(lane.classWeights, laneRng),
                       config_.lensScale, laneRng);
      const float speed = std::max(sampled.speed, 1.0F);
      ScriptedObject obj;
      obj.id = nextId_++;
      obj.kind = sampled.kind;
      const float yJitter = static_cast<float>(laneRng.uniform(-2.0, 2.0));
      const float y = lane.yCenter - sampled.height / 2.0F + yJitter;
      const float x0 =
          lane.direction > 0 ? -sampled.width : frameW;
      obj.boxAtStart = BBox{x0, y, sampled.width, sampled.height};
      obj.velocity = Vec2f{static_cast<float>(lane.direction) * speed, 0.0F};
      obj.tStart = tStart;
      const double crossS =
          static_cast<double>(frameW + sampled.width) / speed;
      obj.tEnd = std::min(duration_, tStart + secondsToUs(crossS) + 1);
      obj.textureSeed = static_cast<std::uint32_t>(
          laneRng.uniformInt(1, std::numeric_limits<std::int32_t>::max()));
      schedule_.push_back(obj);
    }
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const ScriptedObject& a, const ScriptedObject& b) {
              if (a.tStart != b.tStart) {
                return a.tStart < b.tStart;
              }
              return a.id < b.id;
            });
}

std::vector<ObjectState> TrafficScenario::objectsAt(TimeUs t) const {
  std::vector<ObjectState> out;
  const BBox frame{0.0F, 0.0F, static_cast<float>(config_.width),
                   static_cast<float>(config_.height)};
  for (const ScriptedObject& o : schedule_) {
    if (o.tStart > t) {
      break;  // schedule is sorted by tStart
    }
    if (t >= o.tEnd) {
      continue;
    }
    const BBox box = scriptedBoxAt(o, t);
    if (intersect(box, frame).empty()) {
      continue;
    }
    out.push_back(ObjectState{o.id, o.kind, box, o.velocity, o.textureSeed});
  }
  return out;
}

GroundTruth TrafficScenario::groundTruth(TimeUs framePeriod,
                                         const GtOptions& options) const {
  EBBIOT_ASSERT(framePeriod > 0);
  GroundTruth gt;
  for (TimeUs t = framePeriod; t <= duration_; t += framePeriod) {
    gt.frames.push_back(annotateScene(*this, t, options));
  }
  return gt;
}

}  // namespace ebbiot
