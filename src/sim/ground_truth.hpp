// Ground-truth annotation types.
//
// The paper's recordings were manually annotated with tracker boxes
// (Section III-A).  Our scene generators know object poses exactly, so
// ground truth is emitted programmatically: at each evaluation instant the
// visible (frame-clipped) box of every sufficiently-visible object becomes
// a GtBox.  The same structures can be loaded/saved as CSV for interop.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/common/geometry.hpp"
#include "src/common/time.hpp"
#include "src/sim/object_models.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {

/// One annotated object at one instant.
struct GtBox {
  std::uint32_t trackId = 0;
  ObjectClass kind = ObjectClass::kCar;
  BBox box;  ///< clipped to the sensor frame

  friend bool operator==(const GtBox&, const GtBox&) = default;
};

/// All annotations for one evaluation instant.
struct GtFrame {
  TimeUs t = 0;
  std::vector<GtBox> boxes;
};

/// Full annotation track record of a recording.
struct GroundTruth {
  std::vector<GtFrame> frames;

  /// Number of distinct track ids across all frames — the weight used for
  /// cross-recording averaging in Fig. 4 ("weights correspond to the
  /// number of ground truth tracks present in a given recording").
  [[nodiscard]] std::size_t distinctTracks() const;

  /// Total number of ground-truth boxes (the recall denominator).
  [[nodiscard]] std::size_t totalBoxes() const;
};

/// Options controlling what counts as an annotatable object.
struct GtOptions {
  /// Minimum fraction of the object's area that must be inside the frame.
  float minVisibleFraction = 0.25F;
  /// Minimum visible box side in pixels.
  float minBoxSide = 2.0F;
  /// Drop humans from the annotations.  Matches the paper's evaluation
  /// scope: "we have not tracked slow and small objects like humans"
  /// (Section IV) — the Fig. 4 benches set this.
  bool excludeHumans = false;
};

/// Annotate one instant of a scene.
[[nodiscard]] GtFrame annotateScene(const SceneProvider& scene, TimeUs t,
                                    const GtOptions& options = {});

/// CSV round-trip: "t_us,track_id,class,x,y,w,h".
void writeGroundTruthCsv(std::ostream& os, const GroundTruth& gt);
[[nodiscard]] GroundTruth readGroundTruthCsv(std::istream& is);

}  // namespace ebbiot
