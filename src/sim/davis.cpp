#include "src/sim/davis.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

constexpr double kBackgroundLuminance = 0.50;

/// Texture of an object at object-local coordinates (u, v): a dark body
/// with a smooth two-axis sinusoid (windows / wheel arches / panel lines).
/// Wavelengths derive from the texture seed so each object looks distinct
/// but stable over time.
double objectLuminance(const ObjectState& o, float u, float v) {
  const double lambdaU = 5.0 + static_cast<double>(o.textureSeed % 7U);
  const double lambdaV = 4.0 + static_cast<double>((o.textureSeed / 7U) % 5U);
  constexpr double kTwoPi = 6.283185307179586;
  const double s = std::sin(kTwoPi * u / lambdaU) *
                   std::sin(kTwoPi * v / lambdaV);
  // Interior contrast scales with the class interior event density: buses
  // and trucks have nearly flat sides (log-contrast swing below the event
  // threshold over most of the surface — the Fig. 3 fragmentation), cars
  // are busier.  The 0.4 gain calibrates interior event rates to the
  // statistical synthesizer (test_event_synth checks the agreement).
  const double amp = 0.02 + 0.4 * classModel(o.kind).interiorEventDensity;
  return std::clamp(0.33 + amp * s, 0.02, 0.98);
}

}  // namespace

DavisSimulator::DavisSimulator(const SceneProvider& scene,
                               const DavisConfig& config)
    : scene_(scene),
      config_(config),
      width_(scene.width()),
      height_(scene.height()),
      rng_(config.seed) {
  EBBIOT_ASSERT(config.contrastThreshold > 0.0);
  EBBIOT_ASSERT(config.simStep > 0);
  EBBIOT_ASSERT(config.refractoryPeriod >= 0);
  const std::size_t n = static_cast<std::size_t>(width_) *
                        static_cast<std::size_t>(height_);
  refLog_.assign(n, static_cast<float>(std::log(kBackgroundLuminance)));
  lastEvent_.assign(n, -1);
  // Hot pixel population: fixed for the lifetime of the sensor.
  const auto hotCount = static_cast<std::size_t>(
      config.hotPixelFraction * static_cast<double>(n));
  Rng hotRng = rng_.fork(0x55AA);
  for (std::size_t i = 0; i < hotCount; ++i) {
    hotPixels_.push_back(static_cast<std::uint32_t>(
        hotRng.uniformInt(0, static_cast<std::int64_t>(n) - 1)));
  }
}

double DavisSimulator::luminanceAt(int x, int y, TimeUs t) const {
  EBBIOT_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
  const auto objects = scene_.objectsAt(t);
  const float px = static_cast<float>(x) + 0.5F;
  const float py = static_cast<float>(y) + 0.5F;
  // Later objects in the provider's order are closer to the camera.
  for (auto it = objects.rbegin(); it != objects.rend(); ++it) {
    if (it->box.contains(px, py)) {
      return objectLuminance(*it, px - it->box.x, py - it->box.y);
    }
  }
  return kBackgroundLuminance;
}

EventPacket DavisSimulator::nextWindow(TimeUs duration) {
  EBBIOT_ASSERT(duration > 0);
  const TimeUs tEndWindow = now_ + duration;
  EventPacket out(now_, tEndWindow);
  while (now_ < tEndWindow) {
    const TimeUs t1 = std::min(now_ + config_.simStep, tEndWindow);
    stepOnce(now_, t1, out);
    emitNoise(now_, t1, out);
    now_ = t1;
  }
  out.sortByTime();
  return out;
}

void DavisSimulator::stepOnce(TimeUs t0, TimeUs t1, EventPacket& out) {
  const auto objects = scene_.objectsAt(t1);
  // Dirty region: where something is now or was at the previous step.
  std::vector<BBox> dirty = prevBoxes_;
  dirty.reserve(dirty.size() + objects.size());
  for (const ObjectState& o : objects) {
    dirty.push_back(o.box);
  }
  prevBoxes_.clear();
  for (const ObjectState& o : objects) {
    prevBoxes_.push_back(o.box);
  }

  // Visit each dirty pixel once (mark visited in a scratch bitmap only for
  // overlapping rects; cheap approach: iterate rects, skip pixels whose
  // last-visit tag equals this step).  We use a per-call visited list to
  // stay allocation-light.
  for (const BBox& rawBox : dirty) {
    const BBox box = clampToFrame(
        BBox{rawBox.x - 1.0F, rawBox.y - 1.0F, rawBox.w + 2.0F,
             rawBox.h + 2.0F},
        width_, height_);
    if (box.empty()) {
      continue;
    }
    const int x0 = static_cast<int>(std::floor(box.left()));
    const int x1 = static_cast<int>(std::ceil(box.right()));
    const int y0 = static_cast<int>(std::floor(box.bottom()));
    const int y1 = static_cast<int>(std::ceil(box.top()));
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        const std::size_t idx =
            static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) + x;
        // Refractory: pixel silent until the dead time has elapsed.
        if (lastEvent_[idx] >= 0 &&
            t1 - lastEvent_[idx] < config_.refractoryPeriod) {
          continue;
        }
        double lum = kBackgroundLuminance;
        const float pxC = static_cast<float>(x) + 0.5F;
        const float pyC = static_cast<float>(y) + 0.5F;
        for (auto it = objects.rbegin(); it != objects.rend(); ++it) {
          if (it->box.contains(pxC, pyC)) {
            lum = objectLuminance(*it, pxC - it->box.x, pyC - it->box.y);
            break;
          }
        }
        const double curLog = std::log(lum);
        const double diff = curLog - refLog_[idx];
        const double theta = config_.contrastThreshold;
        if (std::abs(diff) < theta) {
          continue;
        }
        const auto crossings =
            static_cast<int>(std::floor(std::abs(diff) / theta));
        const Polarity p = diff > 0 ? Polarity::kOn : Polarity::kOff;
        // One event per step per pixel (the refractory period exceeds half
        // a step anyway); the reference catches up fully so a single fast
        // edge does not ring for many steps.
        Event e;
        e.x = static_cast<std::uint16_t>(x);
        e.y = static_cast<std::uint16_t>(y);
        e.p = p;
        e.t = t0 + rng_.uniformInt(0, t1 - t0 - 1);
        out.push(e);
        lastEvent_[idx] = e.t;
        refLog_[idx] +=
            static_cast<float>((diff > 0 ? 1.0 : -1.0) * crossings * theta);
      }
    }
  }
}

void DavisSimulator::emitNoise(TimeUs t0, TimeUs t1, EventPacket& out) {
  const double dtS = usToSeconds(t1 - t0);
  const std::size_t n = static_cast<std::size_t>(width_) *
                        static_cast<std::size_t>(height_);
  const double meanNoise =
      config_.backgroundActivityHz * static_cast<double>(n) * dtS;
  const std::int64_t count = rng_.poisson(meanNoise);
  for (std::int64_t i = 0; i < count; ++i) {
    Event e;
    const std::int64_t pix =
        rng_.uniformInt(0, static_cast<std::int64_t>(n) - 1);
    e.x = static_cast<std::uint16_t>(pix % width_);
    e.y = static_cast<std::uint16_t>(pix / width_);
    e.p = rng_.chance(0.5) ? Polarity::kOn : Polarity::kOff;
    e.t = t0 + rng_.uniformInt(0, t1 - t0 - 1);
    out.push(e);
  }
  // Hot pixels fire on top of the uniform background.
  for (std::uint32_t pix : hotPixels_) {
    const std::int64_t fires = rng_.poisson(config_.hotPixelRateHz * dtS);
    for (std::int64_t i = 0; i < fires; ++i) {
      Event e;
      e.x = static_cast<std::uint16_t>(pix % width_);
      e.y = static_cast<std::uint16_t>(pix / width_);
      e.p = rng_.chance(0.5) ? Polarity::kOn : Polarity::kOff;
      e.t = t0 + rng_.uniformInt(0, t1 - t0 - 1);
      out.push(e);
    }
  }
}

EventPacket LatchedSource::nextWindow(TimeUs duration) {
  return latchReadout(inner_.nextWindow(duration), inner_.width(),
                      inner_.height());
}

}  // namespace ebbiot
