#include "src/sim/scene.hpp"

#include "src/common/error.hpp"

namespace ebbiot {

ScriptedScene::ScriptedScene(int width, int height)
    : width_(width), height_(height) {
  EBBIOT_ASSERT(width > 0 && height > 0);
}

std::uint32_t ScriptedScene::add(const ScriptedObject& object) {
  EBBIOT_ASSERT(object.tStart <= object.tEnd);
  ScriptedObject copy = object;
  if (copy.id == 0) {
    copy.id = nextId_++;
  } else {
    nextId_ = std::max(nextId_, copy.id + 1);
  }
  objects_.push_back(copy);
  return copy.id;
}

std::uint32_t ScriptedScene::addLinear(ObjectClass kind, const BBox& start,
                                       Vec2f velocity, TimeUs tStart,
                                       TimeUs tEnd) {
  return add(ScriptedObject{0, kind, start, velocity, tStart, tEnd,
                            nextId_ * 7919U});
}

BBox scriptedBoxAt(const ScriptedObject& object, TimeUs t) {
  const float dt = static_cast<float>(usToSeconds(t - object.tStart));
  return object.boxAtStart.translated(object.velocity.x * dt,
                                      object.velocity.y * dt);
}

std::vector<ObjectState> ScriptedScene::objectsAt(TimeUs t) const {
  std::vector<ObjectState> out;
  const BBox frame{0.0F, 0.0F, static_cast<float>(width_),
                   static_cast<float>(height_)};
  for (const ScriptedObject& o : objects_) {
    if (t < o.tStart || t >= o.tEnd) {
      continue;
    }
    const BBox box = scriptedBoxAt(o, t);
    if (intersect(box, frame).empty()) {
      continue;
    }
    out.push_back(ObjectState{o.id, o.kind, box, o.velocity, o.textureSeed});
  }
  return out;
}

}  // namespace ebbiot
