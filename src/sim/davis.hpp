// Behavioural DAVIS simulator.
//
// The paper's data came from a stationary DAVIS240 (240x180) overlooking a
// traffic junction — hardware we substitute with this simulator (see
// DESIGN.md).  The model reproduces the properties the EBBIOT pipeline
// actually depends on:
//
//   * log-intensity change detection: each pixel remembers the log
//     intensity at its last event; when the current log intensity departs
//     by more than the contrast threshold, an ON/OFF event fires and the
//     reference steps toward the new value (so a fast edge yields several
//     events — the beta >= 1 of Eq. (2));
//   * per-pixel refractory period;
//   * background-activity (shot) noise: a Poisson process per pixel,
//     polarity random, independent of the scene — the salt-and-pepper
//     noise the median filter and NN-filt exist to remove;
//   * hot pixels: a small population firing at a much higher rate;
//   * scene texture: objects are textured rectangles whose pattern moves
//     with them, so interiors emit events proportional to texture gradient
//     and speed, while big flat vehicle sides emit few (the fragmentation
//     phenomenon of Fig. 3).
//
// The simulator only rasterises "dirty" pixels (union of object boxes now
// and at the previous step), so cost scales with scene activity, not with
// sensor area.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/time.hpp"
#include "src/events/event_packet.hpp"
#include "src/sim/scene.hpp"

namespace ebbiot {

/// Common interface of the two sensor models (DavisSimulator and
/// FastEventSynth): pull event packets window by window.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Produce all events in [now, now + duration) and advance the clock.
  [[nodiscard]] virtual EventPacket nextWindow(TimeUs duration) = 0;

  [[nodiscard]] virtual TimeUs now() const = 0;
  [[nodiscard]] virtual int width() const = 0;
  [[nodiscard]] virtual int height() const = 0;
};

struct DavisConfig {
  double contrastThreshold = 0.15;     ///< log-intensity step per event
  TimeUs refractoryPeriod = 2'000;     ///< per-pixel dead time, us
  double backgroundActivityHz = 0.2;   ///< noise rate per pixel
  double hotPixelFraction = 0.0002;    ///< share of pixels that are hot
  double hotPixelRateHz = 20.0;        ///< firing rate of a hot pixel
  TimeUs simStep = 2'000;              ///< raster step, us
  std::uint64_t seed = 42;
};

class DavisSimulator final : public EventSource {
 public:
  /// The scene must outlive the simulator.
  DavisSimulator(const SceneProvider& scene, const DavisConfig& config);

  [[nodiscard]] EventPacket nextWindow(TimeUs duration) override;
  [[nodiscard]] TimeUs now() const override { return now_; }
  [[nodiscard]] int width() const override { return width_; }
  [[nodiscard]] int height() const override { return height_; }

  [[nodiscard]] const DavisConfig& config() const { return config_; }

  /// Scene luminance at pixel (x, y) for the objects visible at time t.
  /// Exposed for tests of the intensity model.
  [[nodiscard]] double luminanceAt(int x, int y, TimeUs t) const;

 private:
  void stepOnce(TimeUs t0, TimeUs t1, EventPacket& out);
  void emitNoise(TimeUs t0, TimeUs t1, EventPacket& out);

  const SceneProvider& scene_;
  DavisConfig config_;
  int width_;
  int height_;
  TimeUs now_ = 0;
  std::vector<float> refLog_;       ///< per-pixel reference log intensity
  std::vector<TimeUs> lastEvent_;   ///< per-pixel last signal event time
  std::vector<BBox> prevBoxes_;     ///< dirty rects from the previous step
  std::vector<std::uint32_t> hotPixels_;
  Rng rng_;
};

/// Latch ("sensor as memory") readout, Section II-A: while the processor
/// sleeps, a pixel that has fired is not reset, so at most one event per
/// pixel survives per readout window.  This adapter keeps the *first*
/// event of each pixel in the packet and drops the rest — applying it to a
/// stream-mode packet yields exactly what the duty-cycled EBBIOT processor
/// would read.
[[nodiscard]] EventPacket latchReadout(const EventPacket& packet, int width,
                                       int height);

/// EventSource decorator applying latchReadout() to every window.
class LatchedSource final : public EventSource {
 public:
  explicit LatchedSource(EventSource& inner) : inner_(inner) {}

  [[nodiscard]] EventPacket nextWindow(TimeUs duration) override;
  [[nodiscard]] TimeUs now() const override { return inner_.now(); }
  [[nodiscard]] int width() const override { return inner_.width(); }
  [[nodiscard]] int height() const override { return inner_.height(); }

 private:
  EventSource& inner_;
};

}  // namespace ebbiot
