#include "src/sim/ground_truth.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "src/common/error.hpp"

namespace ebbiot {

std::size_t GroundTruth::distinctTracks() const {
  std::set<std::uint32_t> ids;
  for (const GtFrame& f : frames) {
    for (const GtBox& b : f.boxes) {
      ids.insert(b.trackId);
    }
  }
  return ids.size();
}

std::size_t GroundTruth::totalBoxes() const {
  std::size_t n = 0;
  for (const GtFrame& f : frames) {
    n += f.boxes.size();
  }
  return n;
}

GtFrame annotateScene(const SceneProvider& scene, TimeUs t,
                      const GtOptions& options) {
  GtFrame frame;
  frame.t = t;
  for (const ObjectState& o : scene.objectsAt(t)) {
    if (options.excludeHumans && o.kind == ObjectClass::kHuman) {
      continue;
    }
    const BBox clipped = clampToFrame(o.box, scene.width(), scene.height());
    if (clipped.empty()) {
      continue;
    }
    const float visibleFraction =
        o.box.area() > 0.0F ? clipped.area() / o.box.area() : 0.0F;
    if (visibleFraction < options.minVisibleFraction) {
      continue;
    }
    if (clipped.w < options.minBoxSide || clipped.h < options.minBoxSide) {
      continue;
    }
    frame.boxes.push_back(GtBox{o.id, o.kind, clipped});
  }
  return frame;
}

void writeGroundTruthCsv(std::ostream& os, const GroundTruth& gt) {
  os << "t_us,track_id,class,x,y,w,h\n";
  for (const GtFrame& f : gt.frames) {
    for (const GtBox& b : f.boxes) {
      os << f.t << ',' << b.trackId << ',' << objectClassName(b.kind) << ','
         << b.box.x << ',' << b.box.y << ',' << b.box.w << ',' << b.box.h
         << '\n';
    }
  }
  if (!os) {
    throw IoError("failed writing ground truth CSV");
  }
}

namespace {

ObjectClass classFromName(const std::string& name) {
  for (int i = 0; i < kObjectClassCount; ++i) {
    const auto c = static_cast<ObjectClass>(i);
    if (objectClassName(c) == name) {
      return c;
    }
  }
  throw IoError("unknown object class in ground truth CSV: " + name);
}

}  // namespace

GroundTruth readGroundTruthCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "t_us,track_id,class,x,y,w,h") {
    throw IoError("unexpected ground truth CSV header");
  }
  GroundTruth gt;
  GtFrame* current = nullptr;
  std::size_t lineNo = 1;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ls, field, ',')) {
      fields.push_back(field);
    }
    if (fields.size() != 7) {
      throw IoError("malformed ground truth CSV at line " +
                    std::to_string(lineNo));
    }
    try {
      const TimeUs t = std::stoll(fields[0]);
      GtBox box;
      box.trackId = static_cast<std::uint32_t>(std::stoul(fields[1]));
      box.kind = classFromName(fields[2]);
      box.box = BBox{std::stof(fields[3]), std::stof(fields[4]),
                     std::stof(fields[5]), std::stof(fields[6])};
      if (current == nullptr || current->t != t) {
        gt.frames.push_back(GtFrame{t, {}});
        current = &gt.frames.back();
      }
      current->boxes.push_back(box);
    } catch (const std::logic_error&) {
      throw IoError("unparseable number in ground truth CSV at line " +
                    std::to_string(lineNo));
    }
  }
  return gt;
}

}  // namespace ebbiot
