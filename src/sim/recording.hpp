// Recording presets replicating Table I of the paper.
//
//   Location  Lens (mm)  Duration (s)  Num Events
//   ENG       12         2998.4        107.5 M
//   LT4       6          999.5         12.5 M
//
// We cannot replay the authors' junctions, so each preset pins the knobs
// that determine the tracker-facing statistics: lens scale (object pixel
// sizes), duration, traffic intensity and noise rate, calibrated so the
// synthesized event totals land near the paper's (see
// bench_table1_datasets, which measures and prints the comparison).
#pragma once

#include <memory>
#include <string>

#include "src/sim/event_synth.hpp"
#include "src/sim/traffic.hpp"

namespace ebbiot {

struct RecordingSpec {
  std::string name;
  double lensMm = 12.0;
  double durationS = 0.0;
  std::uint64_t paperEventCount = 0;  ///< Table I target
  TrafficConfig traffic;
  EventSynthConfig synth;
  TimeUs framePeriod = kDefaultFramePeriodUs;
};

/// ENG: 12 mm lens, 2998.4 s, 107.5 M events target.
[[nodiscard]] RecordingSpec makeSyntheticEng(std::uint64_t seed = 7);

/// LT4: 6 mm lens, 999.5 s, 12.5 M events target.
[[nodiscard]] RecordingSpec makeSyntheticLt4(std::uint64_t seed = 11);

/// A spec scaled to `fraction` of its full duration (for quick runs;
/// the traffic process is stationary, so statistics are preserved).
[[nodiscard]] RecordingSpec scaledRecording(const RecordingSpec& spec,
                                            double fraction);

/// A generated recording: scenario + event source bound together.
struct Recording {
  RecordingSpec spec;
  std::unique_ptr<TrafficScenario> scenario;
  std::unique_ptr<FastEventSynth> source;
};

/// Instantiate the scenario and synthesizer of a spec.
[[nodiscard]] Recording openRecording(const RecordingSpec& spec);

}  // namespace ebbiot
