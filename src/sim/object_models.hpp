// Object class catalogue for the synthetic traffic scenes.
//
// Section III-A: "typical objects in the scene include humans, bikes, cars,
// vans, trucks and buses", with sizes varying "by an order of magnitude"
// and velocities from sub-pixel to 5-6 pixels/frame.  This catalogue pins
// nominal pixel dimensions (at the ENG recording's 12 mm lens) and speed
// ranges per class; the 6 mm LT4 lens halves apparent sizes via lensScale.
#pragma once

#include <array>
#include <string_view>

#include "src/common/rng.hpp"

namespace ebbiot {

enum class ObjectClass : int {
  kHuman = 0,
  kBike,
  kCar,
  kVan,
  kTruck,
  kBus,
};

inline constexpr int kObjectClassCount = 6;

[[nodiscard]] std::string_view objectClassName(ObjectClass c);

/// Static description of one object class.
struct ObjectClassModel {
  ObjectClass kind = ObjectClass::kCar;
  /// Nominal size in pixels at the 12 mm reference lens.
  float width = 0.0F;
  float height = 0.0F;
  /// Relative size jitter applied per spawned instance (+-).
  float sizeJitter = 0.15F;
  /// Speed range in pixels per second at the reference lens.  66 ms frames
  /// make 15 px/s roughly 1 px/frame.
  float minSpeed = 0.0F;
  float maxSpeed = 0.0F;
  /// Events per pixel of *edge* per pixel of travel (leading + trailing
  /// contours; large flat-sided vehicles have strong edges).
  float edgeEventDensity = 1.0F;
  /// Events per pixel of *interior* per pixel of travel.  Buses and trucks
  /// have large featureless sides ("a lot of plane surface ... that do not
  /// generate much events", Section II-C) -> low interior density, which is
  /// what produces the fragmentation the OT must repair.
  float interiorEventDensity = 0.1F;
};

/// The full catalogue, indexed by ObjectClass.
[[nodiscard]] const std::array<ObjectClassModel, kObjectClassCount>&
objectCatalogue();

[[nodiscard]] const ObjectClassModel& classModel(ObjectClass c);

/// Sampled concrete dimensions/speed for a new instance.
struct SampledObject {
  ObjectClass kind = ObjectClass::kCar;
  float width = 0.0F;
  float height = 0.0F;
  float speed = 0.0F;  ///< px/s, unsigned; direction set by the lane
};

/// Draw a concrete instance of class `c` at the given lens scale.
[[nodiscard]] SampledObject sampleObject(ObjectClass c, float lensScale,
                                         Rng& rng);

}  // namespace ebbiot
