#include "src/trackers/assignment.hpp"

#include <algorithm>
#include <limits>

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

/// Kuhn-Munkres with potentials; requires rows <= cols.  Returns, for
/// each row (1-based internally), its assigned column.
std::vector<int> kuhnMunkres(const std::vector<double>& cost,
                             std::size_t rows, std::size_t cols) {
  EBBIOT_ASSERT(rows <= cols);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = rows;
  const std::size_t m = cols;
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0);  // p[j] = row assigned to column j
  std::vector<std::size_t> way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) {
          continue;
        }
        const double cur =
            cost[(i0 - 1) * m + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> columnOfRow(n, -1);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] >= 1 && p[j] <= n) {
      columnOfRow[p[j] - 1] = static_cast<int>(j - 1);
    }
  }
  return columnOfRow;
}

}  // namespace

Assignment solveAssignment(const std::vector<double>& cost,
                           std::size_t rows, std::size_t cols,
                           double forbiddenCost) {
  EBBIOT_ASSERT(cost.size() == rows * cols);
  Assignment result;
  result.columnOfRow.assign(rows, -1);
  if (rows == 0 || cols == 0) {
    return result;
  }

  std::vector<int> columnOfRow;
  if (rows <= cols) {
    columnOfRow = kuhnMunkres(cost, rows, cols);
  } else {
    // Transpose, solve, invert the mapping.
    std::vector<double> t(cols * rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        t[c * rows + r] = cost[r * cols + c];
      }
    }
    const std::vector<int> rowOfColumn = kuhnMunkres(t, cols, rows);
    columnOfRow.assign(rows, -1);
    for (std::size_t c = 0; c < cols; ++c) {
      if (rowOfColumn[c] >= 0) {
        columnOfRow[static_cast<std::size_t>(rowOfColumn[c])] =
            static_cast<int>(c);
      }
    }
  }

  // Strip forbidden pairs and accumulate the real cost.
  for (std::size_t r = 0; r < rows; ++r) {
    const int c = columnOfRow[r];
    if (c < 0) {
      continue;
    }
    const double pairCost = cost[r * cols + static_cast<std::size_t>(c)];
    if (pairCost >= forbiddenCost) {
      continue;  // leave the row unassigned
    }
    result.columnOfRow[r] = c;
    result.totalCost += pairCost;
  }
  return result;
}

}  // namespace ebbiot
