// The Overlap-based Tracker (OT) — Section II-C, the paper's contribution.
//
// A multi-tracker with up to NT = 8 simultaneously active trackers.  Two
// design assumptions (from the paper):
//   * tF is small enough that an object overlaps itself between frames,
//     so plain box overlap is a sufficient association test;
//   * distractors (trees, static occluders) are masked by a manually
//     supplied Region of Exclusion (ROE).
//
// Per frame, with region proposals P_j and trackers T_i:
//   1. predict:  T_i^pred = T_i shifted by its per-frame velocity;
//   2. match:    T_i^pred vs every P_j — a match needs overlap area larger
//                than `matchFraction` of either box's area;
//   3. seed:     unmatched P_j claims a free tracker slot (if any);
//   4. one tracker <-> k proposals: all k are assigned to it; the union
//                box is blended with the prediction (weighted average) —
//                the tracker's history "removes fragmentation" in the
//                current proposals;
//   5. one proposal <-> m trackers: either a dynamic occlusion (predicted
//                trajectories still overlap n = 2 steps ahead -> each
//                tracker coasts on its own prediction, velocity retained)
//                or earlier fragmentation seeded duplicate trackers
//                (-> merge into the senior tracker, free the rest).
//
// Engineering elaborations the paper leaves open (documented choices):
//   * matching is resolved per connected component of the tracker/proposal
//     overlap graph; mixed components (>= 2 trackers and >= 2 proposals)
//     assign each proposal to its best-overlap tracker and then reduce to
//     cases 4/5;
//   * trackers missing a match coast along their velocity and are freed
//     after `maxMisses` consecutive misses or when they leave the frame;
//   * tracks are only *reported* after `minHitsToReport` matched frames,
//     suppressing single-frame noise tracks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/op_counter.hpp"
#include "src/detect/region.hpp"
#include "src/trackers/track.hpp"

namespace ebbiot {

struct OverlapTrackerConfig {
  int maxTrackers = 8;         ///< NT
  float matchFraction = 0.15F; ///< overlap fraction declaring a match
  /// Weight of the *prediction* when blending predicted and measured
  /// positions (Section II-C step 4 "weighted average").
  float predictionWeight = 0.4F;
  /// Weight of the previous size when blending sizes (size changes slowly;
  /// damping suppresses proposal-size flicker from fragmentation).
  float sizeSmoothing = 0.6F;
  /// EMA factor on velocity: v <- velBlend*v + (1-velBlend)*v_measured.
  float velocityBlend = 0.6F;
  /// Fragment-merge guard: when several proposals match one tracker, they
  /// are only absorbed while the union stays within this factor of the
  /// predicted box dimensions (plus a small absolute margin).  This is the
  /// "past history of tracker is used to remove fragmentation" rule of
  /// Section II-C step 4: history says how big the object is, so a merge
  /// that would swallow a *different* object is rejected and the spare
  /// proposal is released to seed its own tracker.
  float maxUnionGrowth = 1.5F;
  float unionGrowthMarginPx = 8.0F;
  /// Duplicate suppression (the case-5 "merged into one tracker" rule
  /// applied continuously): two live trackers whose boxes overlap by at
  /// least this fraction of the smaller box AND whose velocities agree
  /// within `duplicateVelocityTol` are duplicates of one object; the
  /// junior one (fewer hits) is freed.  Crossing objects have opposing
  /// velocities and are never collapsed.
  float duplicateOverlap = 0.6F;
  float duplicateVelocityTol = 1.5F;  ///< px/frame
  int occlusionLookahead = 2;  ///< n future steps for occlusion detection
  /// Position-uncertainty margin on the occlusion trajectory check.  The
  /// event halo merges two objects' proposals roughly one frame-travel
  /// before their boxes touch, so the trajectories are tested inflated by
  /// this many pixels.
  float occlusionMarginPx = 2.0F;
  int maxMisses = 3;           ///< coast budget before the slot is freed
  int minHitsToReport = 3;
  float minSeedArea = 12.0F;   ///< proposals smaller than this never seed
  int frameWidth = 240;
  int frameHeight = 180;
  /// Regions of exclusion: proposals whose centre falls inside any of
  /// these boxes are dropped before matching.
  std::vector<BBox> regionsOfExclusion;
};

class OverlapTracker {
 public:
  /// Config type consumed by this back end (used by FramePipeline).
  using Config = OverlapTrackerConfig;

  explicit OverlapTracker(const OverlapTrackerConfig& config);

  /// Advance one frame with this frame's region proposals; returns the
  /// reported tracks (post-update positions).
  Tracks update(const RegionProposals& rawProposals);

  /// All live (slot-occupying) tracks, reported or not — for tests.
  [[nodiscard]] Tracks liveTracks() const;

  /// Number of occupied tracker slots.
  [[nodiscard]] int activeCount() const;

  /// Ops of the most recent update() call, comparable to C_OT of Eq. (6).
  /// ops-model: metered — per-case association work counted as it runs.
  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

  [[nodiscard]] const OverlapTrackerConfig& config() const { return config_; }

 private:
  struct Slot {
    bool valid = false;
    Track track;
    Vec2f velocity;  ///< px/frame (duplicated into track.velocity on report)
  };

  [[nodiscard]] BBox predictBox(const Slot& slot, int steps) const;
  [[nodiscard]] bool insideRoe(const BBox& box) const;
  void seed(const RegionProposal& proposal);
  void updateMatched(Slot& slot, const BBox& merged);
  void coast(Slot& slot);
  [[nodiscard]] bool shouldKill(const Slot& slot) const;

  OverlapTrackerConfig config_;
  std::vector<Slot> slots_;
  std::uint32_t nextId_ = 1;
  OpCounts ops_;

  /// Per-frame working storage, reused across update() calls so the
  /// steady-state loop does not allocate (component-local vectors inside
  /// the case-5 resolution still may; they only exist when trackers
  /// interact).
  struct Scratch {
    std::vector<RegionProposal> proposals;     ///< after ROE masking
    std::vector<int> live;                     ///< occupied slot indices
    std::vector<BBox> pred;                    ///< 1-step predictions
    std::vector<std::vector<int>> matchesOfTracker;
    std::vector<std::vector<int>> matchesOfProposal;
    std::vector<bool> trackerDone;
    std::vector<bool> proposalDone;
    std::vector<bool> releasedProposal;
  };
  Scratch scratch_;
};

}  // namespace ebbiot
