// Scalar reference implementation of the EBMS cluster tracker.
//
// This is the original one-cluster-struct-at-a-time formulation (deque
// history, per-event metered ops) that the batched SoA fast path in
// ebms.hpp is pinned against: the fast path must produce bit-identical
// clusters, visible tracks *and* OpCounts (its closed-form accounting
// must equal the values this class meters as it runs) — see
// tests/test_ebms_soa.cpp, following the MedianFilterReference /
// CcaLabelerReference convention.  It is not used in the steady-state
// pipelines.
//
// Both implementations carry the PR 5 metering/geometry fixes:
//   * the prune scan charges the *pre*-erase cluster count;
//   * the MAD update measures the event's deviation against the
//     centroid *before* the mean-shift step (the old order shrank the
//     size estimate by (1 - mixingFactor));
//   * the merge pass caches cluster boxes, continues in place after a
//     merge (re-scanning only the survivor's row) instead of restarting
//     the full O(n^2) sweep, and meters exactly the boxes and overlap
//     tests it evaluates.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/op_counter.hpp"
#include "src/common/time.hpp"
#include "src/events/event_packet.hpp"
#include "src/trackers/ebms.hpp"
#include "src/trackers/track.hpp"

namespace ebbiot {

class EbmsTrackerReference {
 public:
  explicit EbmsTrackerReference(const EbmsConfig& config);

  /// Feed one denoised event.
  void processEvent(const Event& event);

  /// Feed a whole packet, then run maintenance (prune/merge/velocity) at
  /// the packet boundary.
  void processPacket(const EventPacket& packet);

  /// Clusters that have reached visibility, as tracks.
  [[nodiscard]] Tracks visibleTracks() const;

  /// All clusters including potential ones (tests).
  [[nodiscard]] Tracks allClusters() const;

  [[nodiscard]] int activeCount() const;

  /// Metered ops across the most recent processPacket call.
  /// ops-model: metered — deque-walk costs counted as they run.
  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

  [[nodiscard]] std::uint64_t mergeCount() const { return mergeCount_; }

  [[nodiscard]] const EbmsConfig& config() const { return config_; }

 private:
  struct Cluster {
    std::uint32_t id = 0;
    Vec2f position;
    Vec2f velocity;          ///< px/s
    float madX = kEbmsInitialMad;  ///< mean abs deviation of event x offsets
    float madY = kEbmsInitialMad;
    std::uint64_t support = 0;
    TimeUs lastEventT = 0;
    TimeUs lastSampleT = 0;
    TimeUs bornT = 0;
    std::deque<std::pair<TimeUs, Vec2f>> history;  ///< sampled positions
  };

  void maintain(TimeUs now);
  void mergePass();
  void fitVelocity(Cluster& cluster);
  [[nodiscard]] BBox clusterBox(const Cluster& cluster) const;

  EbmsConfig config_;
  std::vector<Cluster> clusters_;
  std::vector<BBox> boxes_;  ///< merge-pass box cache (reused scratch)
  std::uint32_t nextId_ = 1;
  std::uint64_t mergeCount_ = 0;
  OpCounts ops_;
  TimeUs lastMaintain_ = 0;
};

}  // namespace ebbiot
