#include "src/trackers/kalman.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"
#include "src/trackers/assignment.hpp"

namespace ebbiot {

ConstantVelocityKalman::ConstantVelocityKalman(Vec2f position,
                                               const KalmanConfig& config)
    : x_(Matrix::columnVector({position.x, position.y, 0.0, 0.0})),
      p_(Matrix::diagonal({config.measurementNoise * config.measurementNoise,
                           config.measurementNoise * config.measurementNoise,
                           config.initialVelocitySigma *
                               config.initialVelocitySigma,
                           config.initialVelocitySigma *
                               config.initialVelocitySigma})),
      f_(Matrix(4, 4,
                {1, 0, 1, 0,  //
                 0, 1, 0, 1,  //
                 0, 0, 1, 0,  //
                 0, 0, 0, 1})),
      h_(Matrix(2, 4,
                {1, 0, 0, 0,  //
                 0, 1, 0, 0})),
      r_(Matrix::diagonal(
          {config.measurementNoise * config.measurementNoise,
           config.measurementNoise * config.measurementNoise})) {
  // Discrete white-noise acceleration model, dt = 1 frame:
  //   Q = q * [dt^4/4, dt^3/2; dt^3/2, dt^2] per axis.
  const double q = config.processNoise;
  q_ = Matrix(4, 4);
  q_(0, 0) = q / 4.0;
  q_(1, 1) = q / 4.0;
  q_(0, 2) = q / 2.0;
  q_(2, 0) = q / 2.0;
  q_(1, 3) = q / 2.0;
  q_(3, 1) = q / 2.0;
  q_(2, 2) = q;
  q_(3, 3) = q;
}

void ConstantVelocityKalman::predict() {
  x_ = f_ * x_;
  p_ = f_ * p_ * f_.transposed() + q_;
}

void ConstantVelocityKalman::update(Vec2f measuredPosition) {
  const Matrix z = Matrix::columnVector(
      {measuredPosition.x, measuredPosition.y});
  const Matrix innovation = z - h_ * x_;
  const Matrix s = h_ * p_ * h_.transposed() + r_;
  const Matrix k = p_ * h_.transposed() * s.inverted();
  x_ = x_ + k * innovation;
  p_ = (Matrix::identity(4) - k * h_) * p_;
  lastInnovation_ = std::hypot(innovation(0, 0), innovation(1, 0));
}

Vec2f ConstantVelocityKalman::position() const {
  return {static_cast<float>(x_(0, 0)), static_cast<float>(x_(1, 0))};
}

Vec2f ConstantVelocityKalman::velocity() const {
  return {static_cast<float>(x_(2, 0)), static_cast<float>(x_(3, 0))};
}

KalmanTracker::KalmanTracker(const KalmanTrackerConfig& config)
    : config_(config) {
  EBBIOT_ASSERT(config.maxTracks >= 1);
  EBBIOT_ASSERT(config.gateDistance > 0.0);
  EBBIOT_ASSERT(config.frameWidth > 0 && config.frameHeight > 0);
}

void KalmanTracker::refreshTrackBox(Entry& entry) {
  const Vec2f c = entry.filter.position();
  entry.track.box = BBox{c.x - entry.w / 2.0F, c.y - entry.h / 2.0F,
                         entry.w, entry.h};
  entry.track.velocity = entry.filter.velocity();
}

Tracks KalmanTracker::update(const RegionProposals& proposals) {
  ops_.reset();

  // Time update for every live track.  Eq. (7) charges the KF recursions
  // in matrix-op counts; we meter real multiply/adds instead (4x4 matrix
  // products dominate).
  for (Entry& e : entries_) {
    e.filter.predict();
    ops_.multiplies += 4 * 4 * 4 * 2;  // F*x (4x4*4x1) + F*P*F^T products
    ops_.adds += 4 * 4 * 4 * 2;
  }

  // Gated association: centroid distances as costs, solved greedily
  // (closest pair first) or optimally (Hungarian), per config.
  const std::size_t nP = proposals.size();
  std::vector<bool> trackMatched(entries_.size(), false);
  std::vector<bool> proposalMatched(nP, false);
  constexpr double kForbidden = 1e17;

  std::vector<double> costs(entries_.size() * nP, kForbidden);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Vec2f c = entries_[i].filter.position();
    for (std::size_t j = 0; j < nP; ++j) {
      if (proposals[j].box.empty()) {
        continue;
      }
      const Vec2f pc = proposals[j].box.center();
      const double d = std::hypot(c.x - pc.x, c.y - pc.y);
      ops_.multiplies += 2;
      ops_.adds += 3;
      ops_.compares += 1;
      if (d <= config_.gateDistance) {
        costs[i * nP + j] = d;
      }
    }
  }

  auto commitMatch = [&](std::size_t track, std::size_t proposal) {
    trackMatched[track] = true;
    proposalMatched[proposal] = true;
    Entry& e = entries_[track];
    const RegionProposal& prop = proposals[proposal];
    e.filter.update(prop.box.center());
    ops_.multiplies += 2 * 4 * 4 * 3;  // K gain products + state update
    ops_.adds += 2 * 4 * 4 * 3;
    const float ss = config_.sizeSmoothing;
    e.w = ss * e.w + (1.0F - ss) * prop.box.w;
    e.h = ss * e.h + (1.0F - ss) * prop.box.h;
    ++e.track.age;
    ++e.track.hits;
    e.track.misses = 0;
    refreshTrackBox(e);
  };

  if (config_.association == AssociationMethod::kHungarian &&
      !entries_.empty() && nP > 0) {
    const Assignment assignment =
        solveAssignment(costs, entries_.size(), nP, kForbidden);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (assignment.columnOfRow[i] >= 0) {
        commitMatch(i, static_cast<std::size_t>(assignment.columnOfRow[i]));
      }
    }
    // Rough op charge for the O(n^3) solve.
    const std::size_t n = std::max(entries_.size(), nP);
    ops_.adds += n * n * n;
  } else {
    struct Pair {
      double dist;
      std::size_t track;
      std::size_t proposal;
    };
    std::vector<Pair> pairs;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      for (std::size_t j = 0; j < nP; ++j) {
        if (costs[i * nP + j] < kForbidden) {
          pairs.push_back(Pair{costs[i * nP + j], i, j});
        }
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.dist < b.dist; });
    for (const Pair& p : pairs) {
      if (trackMatched[p.track] || proposalMatched[p.proposal]) {
        continue;
      }
      commitMatch(p.track, p.proposal);
    }
  }

  // Unmatched tracks coast on the prediction.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (trackMatched[i]) {
      continue;
    }
    Entry& e = entries_[i];
    ++e.track.age;
    ++e.track.misses;
    refreshTrackBox(e);
  }

  // Kill stale or departed tracks.
  std::erase_if(entries_, [this](const Entry& e) {
    if (e.track.misses > config_.maxMisses) {
      return true;
    }
    return clampToFrame(e.track.box, config_.frameWidth, config_.frameHeight)
        .empty();
  });

  // Seed from unmatched proposals.
  for (std::size_t j = 0; j < nP; ++j) {
    if (proposalMatched[j] ||
        static_cast<int>(entries_.size()) >= config_.maxTracks) {
      continue;
    }
    const RegionProposal& prop = proposals[j];
    ops_.compares += 1;
    if (prop.box.area() < config_.minSeedArea) {
      continue;
    }
    Entry e{Track{}, ConstantVelocityKalman(prop.box.center(),
                                            config_.filter),
            prop.box.w, prop.box.h};
    e.track.id = nextId_++;
    e.track.age = 1;
    e.track.hits = 1;
    refreshTrackBox(e);
    entries_.push_back(std::move(e));
    ops_.memWrites += 8;
  }

  Tracks out;
  for (Entry& e : entries_) {
    if (e.track.hits >= config_.minHitsToReport) {
      out.push_back(e.track);
    }
  }
  return out;
}

Tracks KalmanTracker::liveTracks() const {
  Tracks out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(e.track);
  }
  return out;
}

int KalmanTracker::activeCount() const {
  return static_cast<int>(entries_.size());
}

}  // namespace ebbiot
