// Arithmetic shared by the two EBMS implementations (the batched SoA
// fast path in ebms.hpp and the scalar deque-based reference in
// ebms_reference.hpp): the least-squares velocity fit over the sampled
// position history.
//
// The fit is formulated over *exact integers* so that the reference's
// per-maintain O(window) recompute and the fast path's O(1) running sums
// produce bit-identical velocities:
//
//   * positions are quantised to 1/1024 px (quantizePosition) — far below
//     any physical localisation accuracy, and small enough that every sum
//     below stays exact;
//   * sample times enter as integer microsecond offsets dt_i from an
//     arbitrary per-cluster origin;
//   * all six regression sums are kept in uint64 with two's-complement
//     wraparound.  The slope numerator n·Σ(dt·q) − Σdt·Σq and denominator
//     n·Σdt² − (Σdt)² are *shift-invariant*: re-deriving them with any
//     other time origin yields the same integers, exactly, because the
//     identity holds in the ring Z/2^64 term by term.  The true
//     (window-origin) values fit comfortably in int64 for any sane
//     sampling config, so the final cast recovers them regardless of the
//     origin each implementation happened to use.
//
// Consequence: the reference may sum over its deque with the window's
// first sample as origin while the fast path maintains running sums
// against a fixed per-cluster origin — the solved velocity is the same
// float either way, which is what lets the differential tests pin the
// two trackers bit-identical.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/common/geometry.hpp"
#include "src/common/time.hpp"

namespace ebbiot {
namespace ebms_detail {

/// Position quantisation step of the velocity fit: 1/1024 px.
inline constexpr double kPosScale = 1024.0;

/// Converts the integer LSQ slope (quantised px per us) to px/s.
inline constexpr double kSlopeToPxPerSecond =
    static_cast<double>(kMicrosPerSecond) / kPosScale;

/// Quantise one position coordinate for the fit.  Deterministic for any
/// float input; exact (no double rounding) for coordinates below ~2^43 px.
inline std::int64_t quantizePosition(float v) {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(v) * kPosScale));
}

/// Running regression sums of one cluster's sampled (dt, qx, qy) history.
/// add/remove are exact inverses (uint64 wraparound), so a sliding window
/// maintained incrementally equals a fresh summation over its contents.
struct VelocitySums {
  std::uint64_t n = 0;
  std::uint64_t dt = 0;    ///< sum dt_i
  std::uint64_t dtDt = 0;  ///< sum dt_i^2
  std::uint64_t qx = 0;    ///< sum qx_i
  std::uint64_t qy = 0;    ///< sum qy_i
  std::uint64_t dtQx = 0;  ///< sum dt_i * qx_i
  std::uint64_t dtQy = 0;  ///< sum dt_i * qy_i

  void add(std::uint64_t dtI, std::int64_t qxI, std::int64_t qyI) {
    ++n;
    dt += dtI;
    dtDt += dtI * dtI;
    qx += static_cast<std::uint64_t>(qxI);
    qy += static_cast<std::uint64_t>(qyI);
    dtQx += dtI * static_cast<std::uint64_t>(qxI);
    dtQy += dtI * static_cast<std::uint64_t>(qyI);
  }

  void remove(std::uint64_t dtI, std::int64_t qxI, std::int64_t qyI) {
    --n;
    dt -= dtI;
    dtDt -= dtI * dtI;
    qx -= static_cast<std::uint64_t>(qxI);
    qy -= static_cast<std::uint64_t>(qyI);
    dtQx -= dtI * static_cast<std::uint64_t>(qxI);
    dtQy -= dtI * static_cast<std::uint64_t>(qyI);
  }
};

/// Result of solveVelocity: `fitted` is false when the determinant is zero
/// (all samples at one timestamp), in which case velocity is {0, 0}.
struct VelocityFit {
  bool fitted = false;
  Vec2f velocity;
};

/// Solve the LSQ slope from the sums; requires n >= 2.  Velocity in px/s.
inline VelocityFit solveVelocity(const VelocitySums& s) {
  const auto den = static_cast<std::int64_t>(s.n * s.dtDt - s.dt * s.dt);
  if (den == 0) {
    return {};
  }
  const auto numX = static_cast<std::int64_t>(s.n * s.dtQx - s.dt * s.qx);
  const auto numY = static_cast<std::int64_t>(s.n * s.dtQy - s.dt * s.qy);
  const double d = static_cast<double>(den);
  return {true,
          Vec2f{static_cast<float>(static_cast<double>(numX) / d *
                                   kSlopeToPxPerSecond),
                static_cast<float>(static_cast<double>(numY) / d *
                                   kSlopeToPxPerSecond)}};
}

}  // namespace ebms_detail
}  // namespace ebbiot
