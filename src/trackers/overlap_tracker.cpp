#include "src/trackers/overlap_tracker.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"

namespace ebbiot {

OverlapTracker::OverlapTracker(const OverlapTrackerConfig& config)
    : config_(config), slots_(static_cast<std::size_t>(config.maxTrackers)) {
  EBBIOT_ASSERT(config.maxTrackers >= 1);
  EBBIOT_ASSERT(config.matchFraction > 0.0F && config.matchFraction <= 1.0F);
  EBBIOT_ASSERT(config.predictionWeight >= 0.0F &&
                config.predictionWeight <= 1.0F);
  EBBIOT_ASSERT(config.occlusionLookahead >= 1);
  EBBIOT_ASSERT(config.frameWidth > 0 && config.frameHeight > 0);
}

BBox OverlapTracker::predictBox(const Slot& slot, int steps) const {
  const float s = static_cast<float>(steps);
  return slot.track.box.translated(slot.velocity.x * s, slot.velocity.y * s);
}

bool OverlapTracker::insideRoe(const BBox& box) const {
  const Vec2f c = box.center();
  for (const BBox& roe : config_.regionsOfExclusion) {
    if (roe.contains(c.x, c.y)) {
      return true;
    }
  }
  return false;
}

Tracks OverlapTracker::update(const RegionProposals& rawProposals) {
  ops_.reset();

  // --- Region of exclusion: mask distractor proposals up front.
  RegionProposals& proposals = scratch_.proposals;
  proposals.clear();
  proposals.reserve(rawProposals.size());
  for (const RegionProposal& p : rawProposals) {
    ops_.compares += config_.regionsOfExclusion.size();
    if (!p.box.empty() && !insideRoe(p.box)) {
      proposals.push_back(p);
    }
  }

  // --- Step 1: predictions for all valid trackers.
  std::vector<int>& live = scratch_.live;
  live.clear();
  for (int i = 0; i < config_.maxTrackers; ++i) {
    if (slots_[static_cast<std::size_t>(i)].valid) {
      live.push_back(i);
    }
  }
  std::vector<BBox>& pred = scratch_.pred;
  pred.assign(live.size(), BBox{});
  for (std::size_t k = 0; k < live.size(); ++k) {
    pred[k] = predictBox(slots_[static_cast<std::size_t>(live[k])], 1);
    ops_.adds += 2;  // x += vx, y += vy
  }

  // --- Step 2: overlap matches (tracker k <-> proposal j).
  const std::size_t nT = live.size();
  const std::size_t nP = proposals.size();
  auto resetAdjacency = [](std::vector<std::vector<int>>& adj, std::size_t n) {
    if (adj.size() < n) {
      adj.resize(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      adj[i].clear();  // keeps each inner vector's capacity warm
    }
  };
  std::vector<std::vector<int>>& matchesOfTracker = scratch_.matchesOfTracker;
  std::vector<std::vector<int>>& matchesOfProposal =
      scratch_.matchesOfProposal;
  resetAdjacency(matchesOfTracker, nT);
  resetAdjacency(matchesOfProposal, nP);
  for (std::size_t k = 0; k < nT; ++k) {
    for (std::size_t j = 0; j < nP; ++j) {
      // Overlap test: ~4 interval comparisons + area arithmetic.
      ops_.compares += 4;
      ops_.multiplies += 2;
      if (overlapMatches(pred[k], proposals[j].box, config_.matchFraction)) {
        matchesOfTracker[k].push_back(static_cast<int>(j));
        matchesOfProposal[j].push_back(static_cast<int>(k));
      }
    }
  }

  // --- Connected components of the match graph; each resolves to one of
  // the paper's cases.
  std::vector<bool>& trackerDone = scratch_.trackerDone;
  std::vector<bool>& proposalDone = scratch_.proposalDone;
  std::vector<bool>& releasedProposal = scratch_.releasedProposal;
  trackerDone.assign(nT, false);
  proposalDone.assign(nP, false);
  releasedProposal.assign(nP, false);

  // Fragment-absorption rule (Section II-C step 4): starting from the
  // best-overlapping proposal, absorb further fragments only while the
  // union stays near the tracker's remembered size.  Returns the merged
  // box; proposals that would overgrow it are released for re-seeding.
  auto absorbFragments = [&](const BBox& predicted,
                             const std::vector<int>& proposalIdx) {
    std::vector<int> order = proposalIdx;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return intersectionArea(predicted, proposals[static_cast<std::size_t>(
                                             a)].box) >
             intersectionArea(predicted, proposals[static_cast<std::size_t>(
                                             b)].box);
    });
    const float maxW = predicted.w * config_.maxUnionGrowth +
                       config_.unionGrowthMarginPx;
    const float maxH = predicted.h * config_.maxUnionGrowth +
                       config_.unionGrowthMarginPx;
    BBox merged;
    for (int j : order) {
      const BBox& candidate = proposals[static_cast<std::size_t>(j)].box;
      const BBox grown = unite(merged, candidate);
      ops_.compares += 2;
      ops_.adds += 4;
      if (merged.empty()) {
        merged = grown;
        continue;
      }
      // Side-view rule: fragments of one vehicle share its Y band, so a
      // candidate must overlap the prediction vertically; an object in a
      // different lane does not and is released to its own tracker.
      const float yOverlap = std::min(predicted.top(), candidate.top()) -
                             std::max(predicted.bottom(), candidate.bottom());
      const bool sameBand =
          yOverlap >= 0.5F * std::min(predicted.h, candidate.h);
      if (sameBand && grown.w <= maxW && grown.h <= maxH) {
        merged = grown;
      } else if (candidate.area() >= 0.25F * predicted.area()) {
        // Large enough to be a distinct object: release it so it can
        // seed its own tracker.
        releasedProposal[static_cast<std::size_t>(j)] = true;
      }
      // Small rejected shards are debris of this object (sparse interior
      // beyond the histogram gap); absorbing them would overgrow the box
      // and seeding them would fabricate ghost tracks, so they are
      // consumed silently.
    }
    return merged;
  };

  for (std::size_t start = 0; start < nT; ++start) {
    if (trackerDone[start] || matchesOfTracker[start].empty()) {
      continue;
    }
    // Gather the component via BFS over the bipartite graph.
    std::vector<int> compTrackers;
    std::vector<int> compProposals;
    std::vector<int> stackT{static_cast<int>(start)};
    std::vector<int> stackP;
    trackerDone[start] = true;
    while (!stackT.empty() || !stackP.empty()) {
      if (!stackT.empty()) {
        const int k = stackT.back();
        stackT.pop_back();
        compTrackers.push_back(k);
        for (int j : matchesOfTracker[static_cast<std::size_t>(k)]) {
          if (!proposalDone[static_cast<std::size_t>(j)]) {
            proposalDone[static_cast<std::size_t>(j)] = true;
            stackP.push_back(j);
          }
        }
      } else {
        const int j = stackP.back();
        stackP.pop_back();
        compProposals.push_back(j);
        for (int k : matchesOfProposal[static_cast<std::size_t>(j)]) {
          if (!trackerDone[static_cast<std::size_t>(k)]) {
            trackerDone[static_cast<std::size_t>(k)] = true;
            stackT.push_back(k);
          }
        }
      }
    }

    if (compTrackers.size() == 1) {
      // --- Case 4: one tracker, >= 1 proposals: the union of the
      // absorbable fragments repairs fragmentation; blend with prediction.
      const int k = compTrackers.front();
      Slot& slot = slots_[static_cast<std::size_t>(live[
          static_cast<std::size_t>(k)])];
      const BBox merged = absorbFragments(predictBox(slot, 1), compProposals);
      updateMatched(slot, merged);
      continue;
    }

    // >= 2 trackers: the paper's case 5, resolved proposal by proposal.
    //
    // The occlusion test compares the *pre-update trajectories* of the
    // trackers ("the predicted trajectory of those trackers for upto
    // n = 2 future time steps").  Each step is checked with the box swept
    // over the step interval (union of the n-1 and n step poses), because
    // fast closing speeds can cross entirely between two integer steps.
    struct Trajectory {
      BBox box;
      Vec2f velocity;
    };
    std::vector<Trajectory> preUpdate(compTrackers.size());
    for (std::size_t a = 0; a < compTrackers.size(); ++a) {
      const Slot& slot = slots_[static_cast<std::size_t>(
          live[static_cast<std::size_t>(compTrackers[a])])];
      preUpdate[a] = Trajectory{slot.track.box, slot.velocity};
    }
    auto sweptBoxAt = [&](std::size_t a, int step) {
      const Trajectory& t = preUpdate[a];
      const float s0 = static_cast<float>(step - 1);
      const float s1 = static_cast<float>(step);
      const BBox swept =
          unite(t.box.translated(t.velocity.x * s0, t.velocity.y * s0),
                t.box.translated(t.velocity.x * s1, t.velocity.y * s1));
      const float m = config_.occlusionMarginPx;
      return BBox{swept.x - m, swept.y - m, swept.w + 2.0F * m,
                  swept.h + 2.0F * m};
    };
    auto trajectoriesCross = [&](std::size_t a, std::size_t b) {
      // Occlusion needs genuine relative motion: co-moving trackers are
      // fragments of one object, never a crossing pair.
      const Vec2f dv = preUpdate[a].velocity - preUpdate[b].velocity;
      ops_.compares += 2;
      if (std::abs(dv.x) <= config_.duplicateVelocityTol &&
          std::abs(dv.y) <= config_.duplicateVelocityTol) {
        return false;
      }
      for (int n = 1; n <= config_.occlusionLookahead; ++n) {
        ops_.compares += 4;
        ops_.adds += 8;
        if (!intersect(sweptBoxAt(a, n), sweptBoxAt(b, n)).empty()) {
          return true;
        }
      }
      return false;
    };

    // Component-local index of each tracker.
    auto localIndex = [&](int trackerK) {
      for (std::size_t a = 0; a < compTrackers.size(); ++a) {
        if (compTrackers[a] == trackerK) {
          return a;
        }
      }
      EBBIOT_ASSERT(false && "tracker not in component");
      return std::size_t{0};
    };

    std::vector<bool> coasting(compTrackers.size(), false);
    std::vector<bool> freed(compTrackers.size(), false);
    std::vector<std::size_t> mergedInto(compTrackers.size());
    for (std::size_t a = 0; a < compTrackers.size(); ++a) {
      mergedInto[a] = a;
    }
    std::vector<std::vector<int>> assigned(compTrackers.size());

    // First pass: proposals shared by several trackers decide occlusion
    // vs fragmentation-merge.
    for (int j : compProposals) {
      const auto& matched = matchesOfProposal[static_cast<std::size_t>(j)];
      if (matched.size() < 2) {
        continue;
      }
      bool occlusion = false;
      for (std::size_t x = 0; x < matched.size() && !occlusion; ++x) {
        for (std::size_t y = x + 1; y < matched.size() && !occlusion; ++y) {
          occlusion = trajectoriesCross(localIndex(matched[x]),
                                        localIndex(matched[y]));
        }
      }
      if (occlusion) {
        // Case 5a: dynamic occlusion — every matched tracker coasts on
        // its own prediction with velocity retained; the merged blob
        // proposal is consumed without updating anyone.
        for (int k : matched) {
          coasting[localIndex(k)] = true;
        }
      } else {
        // Case 5b: duplicate trackers from earlier fragmentation — merge
        // into the senior (most-established) tracker, which inherits the
        // proposal; the duplicates are freed.
        std::size_t senior = localIndex(matched.front());
        for (int k : matched) {
          const std::size_t a = localIndex(k);
          const Slot& slot = slots_[static_cast<std::size_t>(
              live[static_cast<std::size_t>(compTrackers[a])])];
          const Slot& best = slots_[static_cast<std::size_t>(
              live[static_cast<std::size_t>(compTrackers[senior])])];
          if (slot.track.hits > best.track.hits) {
            senior = a;
          }
        }
        for (int k : matched) {
          const std::size_t a = localIndex(k);
          if (a != senior && !coasting[a]) {
            freed[a] = true;
            mergedInto[a] = senior;
          }
        }
        assigned[senior].push_back(j);
      }
    }

    // Second pass: exclusively-matched proposals go to their tracker —
    // or to the senior that absorbed it.
    for (int j : compProposals) {
      const auto& matched = matchesOfProposal[static_cast<std::size_t>(j)];
      if (matched.size() != 1) {
        continue;
      }
      std::size_t a = localIndex(matched.front());
      while (mergedInto[a] != a) {
        a = mergedInto[a];
      }
      assigned[a].push_back(j);
    }

    // Apply the outcome per tracker.
    for (std::size_t a = 0; a < compTrackers.size(); ++a) {
      Slot& slot = slots_[static_cast<std::size_t>(
          live[static_cast<std::size_t>(compTrackers[a])])];
      if (freed[a]) {
        slot.valid = false;
        continue;
      }
      if (coasting[a]) {
        slot.track.box = predictBox(slot, 1);
        slot.track.occluded = true;
        ++slot.track.age;
        slot.track.misses = 0;
        ops_.adds += 3;
        continue;
      }
      if (!assigned[a].empty()) {
        const BBox merged =
            absorbFragments(predictBox(slot, 1), assigned[a]);
        updateMatched(slot, merged);
        continue;
      }
      // Matched somewhere in the component but ended up with nothing
      // (e.g. its proposal went to an occluding pair): coast.
      coast(slot);
      if (shouldKill(slot)) {
        slot.valid = false;
      }
    }
  }

  // --- Step 3 + coasting: unmatched proposals seed; unmatched trackers
  // coast on their prediction.
  for (std::size_t k = 0; k < nT; ++k) {
    Slot& slot = slots_[static_cast<std::size_t>(live[k])];
    if (!slot.valid || !matchesOfTracker[k].empty()) {
      continue;
    }
    coast(slot);
    if (shouldKill(slot)) {
      slot.valid = false;
    }
  }
  for (std::size_t j = 0; j < nP; ++j) {
    if (!matchesOfProposal[j].empty() && !releasedProposal[j]) {
      continue;
    }
    ops_.compares += 1;
    if (proposals[j].box.area() >= config_.minSeedArea) {
      seed(proposals[j]);
    }
  }

  // --- Duplicate suppression: collapse co-moving, co-located trackers
  // (fragment shards that graduated into their own slots).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid) {
      continue;
    }
    for (std::size_t j = i + 1; j < slots_.size(); ++j) {
      if (!slots_[j].valid) {
        continue;
      }
      Slot& a = slots_[i];
      Slot& b = slots_[j];
      const float minArea = std::min(a.track.box.area(), b.track.box.area());
      ops_.compares += 3;
      ops_.multiplies += 2;
      if (minArea <= 0.0F ||
          intersectionArea(a.track.box, b.track.box) <
              config_.duplicateOverlap * minArea) {
        continue;
      }
      const Vec2f dv = a.velocity - b.velocity;
      if (std::abs(dv.x) > config_.duplicateVelocityTol ||
          std::abs(dv.y) > config_.duplicateVelocityTol) {
        continue;  // crossing objects, not duplicates
      }
      Slot& junior = a.track.hits >= b.track.hits ? b : a;
      junior.valid = false;
    }
  }

  // --- Report.
  Tracks out;
  for (const Slot& slot : slots_) {
    if (slot.valid && slot.track.hits >= config_.minHitsToReport) {
      Track t = slot.track;
      t.velocity = slot.velocity;
      out.push_back(t);
    }
  }
  return out;
}

void OverlapTracker::updateMatched(Slot& slot, const BBox& merged) {
  const BBox predicted = predictBox(slot, 1);
  const float wp = config_.predictionWeight;
  const float wm = 1.0F - wp;
  const float ws = config_.sizeSmoothing;

  BBox updated;
  // Blend sizes, then rate-limit growth so a transiently oversized merged
  // box cannot compound the tracker's size frame over frame (shrinking is
  // unconstrained: a departing object's visible part legitimately
  // collapses quickly).
  updated.w = ws * predicted.w + (1.0F - ws) * merged.w;
  updated.h = ws * predicted.h + (1.0F - ws) * merged.h;
  updated.w = std::min(updated.w, predicted.w * 1.15F + 3.0F);
  updated.h = std::min(updated.h, predicted.h * 1.15F + 3.0F);
  // Blend centres, then recover the bottom-left corner at the new size.
  const Vec2f cPred = predicted.center();
  const Vec2f cMeas = merged.center();
  const Vec2f c{wp * cPred.x + wm * cMeas.x, wp * cPred.y + wm * cMeas.y};
  updated.x = c.x - updated.w / 2.0F;
  updated.y = c.y - updated.h / 2.0F;

  const Vec2f cPrev = slot.track.box.center();
  const Vec2f vMeasured{c.x - cPrev.x, c.y - cPrev.y};
  const float vb = config_.velocityBlend;
  slot.velocity = Vec2f{vb * slot.velocity.x + (1.0F - vb) * vMeasured.x,
                        vb * slot.velocity.y + (1.0F - vb) * vMeasured.y};

  slot.track.box = updated;
  ++slot.track.age;
  ++slot.track.hits;
  slot.track.misses = 0;
  slot.track.occluded = false;
  ops_.adds += 12;
  ops_.multiplies += 10;
}

void OverlapTracker::coast(Slot& slot) {
  slot.track.box = predictBox(slot, 1);
  ++slot.track.age;
  ++slot.track.misses;
  slot.track.occluded = false;
  ops_.adds += 3;
}

bool OverlapTracker::shouldKill(const Slot& slot) const {
  if (slot.track.misses > config_.maxMisses) {
    return true;
  }
  const BBox inFrame = clampToFrame(slot.track.box, config_.frameWidth,
                                    config_.frameHeight);
  return inFrame.empty();
}

void OverlapTracker::seed(const RegionProposal& proposal) {
  for (Slot& slot : slots_) {
    if (slot.valid) {
      continue;
    }
    slot.valid = true;
    slot.track = Track{};
    slot.track.id = nextId_++;
    slot.track.box = proposal.box;
    slot.track.age = 1;
    slot.track.hits = 1;
    slot.track.misses = 0;
    slot.velocity = Vec2f{};
    ops_.memWrites += 6;
    return;
  }
  // No free tracker: the proposal is dropped (paper: "if ... there are
  // available free trackers", step 3).
}

Tracks OverlapTracker::liveTracks() const {
  Tracks out;
  for (const Slot& slot : slots_) {
    if (slot.valid) {
      Track t = slot.track;
      t.velocity = slot.velocity;
      out.push_back(t);
    }
  }
  return out;
}

int OverlapTracker::activeCount() const {
  return static_cast<int>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const Slot& s) { return s.valid; }));
}

}  // namespace ebbiot
