// Event-Based Mean Shift cluster tracker (EBMS) — the fully event-driven
// baseline of Section II-C / Eq. (8), re-implemented from Delbruck & Lang
// (Frontiers in Neuroscience 2013; the jAER "RectangularClusterTracker"
// family).
//
// Operation per event (after NN-filt denoising):
//   * find the nearest cluster whose capture region contains the event;
//   * if found, mean-shift the cluster toward the event with a small
//     mixing factor, update its running size estimate (mean absolute
//     deviation of recent events) and support count;
//   * otherwise seed a *potential* cluster in a free slot (CLmax bound);
//     potential clusters become visible once they accumulate enough
//     support events.
// Periodic maintenance (once per frame window in this implementation):
//   * prune clusters that have not received events within their lifetime;
//   * merge overlapping clusters, keeping the more-supported one (the
//     gamma_merge probability of Eq. (8));
//   * recompute velocity by least-squares regression over the last 10
//     sampled positions (the paper's stated velocity estimator).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/op_counter.hpp"
#include "src/common/time.hpp"
#include "src/events/event_packet.hpp"
#include "src/trackers/track.hpp"

namespace ebbiot {

struct EbmsConfig {
  int maxClusters = 8;            ///< CLmax of Eq. (8)
  float captureRadius = 30.0F;    ///< half-extent of the capture region, px
  float mixingFactor = 0.02F;     ///< mean-shift step per event
  int visibilitySupport = 15;     ///< events before a cluster is reported
  TimeUs clusterLifetime = 150'000;   ///< prune after this silence, us
  float mergeOverlapFraction = 0.4F;  ///< overlap triggering a merge
  int velocityWindow = 10;        ///< positions for the LSQ velocity fit
  TimeUs positionSampleInterval = 6'600;  ///< history sampling period, us
  float sizeSmoothing = 0.98F;    ///< EMA on the size estimate
  float minBoxSide = 6.0F;        ///< floor on reported box sides, px
};

class EbmsTracker {
 public:
  explicit EbmsTracker(const EbmsConfig& config);

  /// Feed one denoised event.
  void processEvent(const Event& event);

  /// Feed a whole packet, then run maintenance (prune/merge/velocity) at
  /// the packet boundary.
  void processPacket(const EventPacket& packet);

  /// Clusters that have reached visibility, as tracks (box = estimated
  /// extent around the cluster centre).
  [[nodiscard]] Tracks visibleTracks() const;

  /// All clusters including potential ones (tests).
  [[nodiscard]] Tracks allClusters() const;

  [[nodiscard]] int activeCount() const;

  /// Ops across the most recent processPacket call, comparable to the
  /// per-frame C_EBMS of Eq. (8).
  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

  /// Number of cluster merges performed so far (drives the measured
  /// gamma_merge of Eq. (8)).
  [[nodiscard]] std::uint64_t mergeCount() const { return mergeCount_; }

  [[nodiscard]] const EbmsConfig& config() const { return config_; }

 private:
  struct Cluster {
    std::uint32_t id = 0;
    Vec2f position;
    Vec2f velocity;          ///< px/us * 1e6 stored as px/s, see report
    float madX = 4.0F;       ///< mean abs deviation of event x offsets
    float madY = 4.0F;
    std::uint64_t support = 0;
    TimeUs lastEventT = 0;
    TimeUs lastSampleT = 0;
    TimeUs bornT = 0;
    std::deque<std::pair<TimeUs, Vec2f>> history;  ///< sampled positions
  };

  void maintain(TimeUs now);
  void fitVelocity(Cluster& cluster);
  [[nodiscard]] BBox clusterBox(const Cluster& cluster) const;

  EbmsConfig config_;
  std::vector<Cluster> clusters_;
  std::uint32_t nextId_ = 1;
  std::uint64_t mergeCount_ = 0;
  OpCounts ops_;
  TimeUs lastMaintain_ = 0;
};

}  // namespace ebbiot
