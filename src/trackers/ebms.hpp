// Event-Based Mean Shift cluster tracker (EBMS) — the fully event-driven
// baseline of Section II-C / Eq. (8), re-implemented from Delbruck & Lang
// (Frontiers in Neuroscience 2013; the jAER "RectangularClusterTracker"
// family).
//
// Operation per event (after NN-filt denoising):
//   * find the nearest cluster whose capture region contains the event;
//   * if found, update its running size estimate (mean absolute deviation
//     of event offsets, measured against the centroid *before* the step),
//     mean-shift the cluster toward the event with a small mixing factor
//     and bump its support count;
//   * otherwise seed a *potential* cluster in a free slot (CLmax bound);
//     potential clusters become visible once they accumulate enough
//     support events.
// Periodic maintenance (once per frame window in this implementation):
//   * prune clusters that have not received events within their lifetime;
//   * merge overlapping clusters, keeping the more-supported one (the
//     gamma_merge probability of Eq. (8));
//   * recompute velocity by least-squares regression over the last 10
//     sampled positions (the paper's stated velocity estimator).
//
// This class is the *batched structure-of-arrays fast path*: cluster
// state lives in parallel arrays sized CLmax at construction (positions,
// MADs, support, timestamps, velocity), and the per-event scan runs over
// those small arrays with the config hoisted into registers.  A coarse
// *capture grid* (32 px cells -> bitmask of clusters whose capture
// region, padded by a drift slack, can reach the cell) turns the
// capture-region early-exit into a per-cell candidate set: an event
// whose cell mask is empty can be captured by nothing and skips the
// scan entirely; otherwise only the masked clusters are tested — the
// argmin over that conservative superset equals the reference's full
// scan, bit for bit.  The position history is a fixed-capacity ring per
// cluster with running regression sums (see ebms_common.hpp), so the
// velocity fit is O(1) per sample and per maintain instead of
// O(window) per maintain — and the whole tracker allocates nothing
// after construction.
//
// processPacket additionally *overlaps independent cluster update
// chains*: the captured-update recurrences (MAD EMA + mean-shift) of
// distinct clusters share no state, but the sequential loop serialises
// them because each event's capture test reads the positions the
// previous update just stored.  The grouped path resolves a run of
// events to clusters up front against group-start position snapshots,
// admitting an event only when the snapshot plus a worst-case drift
// bound proves the sequential scan would pick the same single cluster
// (everything else — seeds, marginal-radius events, drift-budget
// exhaustion — flushes the group and replays through the exact scalar
// step).  The per-cluster chains then run back to back with no
// decision logic between them, so the out-of-order core overlaps the
// CLmax = 8 chains instead of draining one EMA latency per event.
//
// The scalar deque-based formulation is kept as EbmsTrackerReference
// (ebms_reference.hpp); differential tests pin this class bit-identical
// to it in clusters, visible tracks *and* OpCounts — the reference
// meters its ops as it runs, this class charges the same counts in
// closed form from per-packet tallies (the MedianFilter / CcaLabeler
// reference-pinning convention of PRs 3-4).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/op_counter.hpp"
#include "src/common/time.hpp"
#include "src/events/event_packet.hpp"
#include "src/trackers/ebms_common.hpp"
#include "src/trackers/track.hpp"

namespace ebbiot {

struct EbmsConfig {
  int maxClusters = 8;            ///< CLmax of Eq. (8)
  float captureRadius = 30.0F;    ///< half-extent of the capture region, px
  float mixingFactor = 0.02F;     ///< mean-shift step per event
  int visibilitySupport = 15;     ///< events before a cluster is reported
  TimeUs clusterLifetime = 150'000;   ///< prune after this silence, us
  float mergeOverlapFraction = 0.4F;  ///< overlap triggering a merge
  int velocityWindow = 10;        ///< positions for the LSQ velocity fit
  TimeUs positionSampleInterval = 6'600;  ///< history sampling period, us
  float sizeSmoothing = 0.98F;    ///< EMA on the size estimate
  float minBoxSide = 6.0F;        ///< floor on reported box sides, px
};

/// Initial MAD of a freshly seeded cluster, px (both implementations).
inline constexpr float kEbmsInitialMad = 4.0F;

class EbmsTracker {
 public:
  explicit EbmsTracker(const EbmsConfig& config);

  /// Feed one denoised event.
  void processEvent(const Event& event);

  /// Feed a whole packet, then run maintenance (prune/merge/velocity) at
  /// the packet boundary.
  void processPacket(const EventPacket& packet);

  /// Clusters that have reached visibility, as tracks (box = estimated
  /// extent around the cluster centre), into a reused vector — the
  /// steady-state path allocates nothing once `out` has capacity.
  void visibleTracksInto(Tracks& out) const;

  /// All clusters including potential ones, into a reused vector.
  void allClustersInto(Tracks& out) const;

  /// Convenience by-value variants of the Into accessors.
  [[nodiscard]] Tracks visibleTracks() const;
  [[nodiscard]] Tracks allClusters() const;

  [[nodiscard]] int activeCount() const { return count_; }

  /// Ops across the most recent processPacket call, comparable to the
  /// per-frame C_EBMS of Eq. (8).  Charged in closed form; pinned equal
  /// to EbmsTrackerReference's metered counts by differential tests.
  /// ops-model: closed-form — per-event capture/update costs charged analytically;
  /// pinned against the metered reference by tests/test_ebms_soa.cpp.
  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

  /// Number of cluster merges performed so far (drives the measured
  /// gamma_merge of Eq. (8)).
  [[nodiscard]] std::uint64_t mergeCount() const { return mergeCount_; }

  [[nodiscard]] const EbmsConfig& config() const { return config_; }

 private:
  /// Config fields of the per-event hot loop, copied into a local so the
  /// compiler can keep them in registers across the packet (stores into
  /// the SoA arrays cannot alias a stack copy).
  struct HotConfig {
    float radius;
    float mixing;
    float smoothing;
    float driftLimit;  ///< gridSlack_ - 1 px: re-anchor beyond this drift
    TimeUs sampleInterval;
    int maxClusters;
  };

  [[nodiscard]] HotConfig hotConfig() const {
    return {config_.captureRadius,          config_.mixingFactor,
            config_.sizeSmoothing,          gridSlack_ - 1.0F,
            config_.positionSampleInterval, config_.maxClusters};
  }

  /// Per-packet tallies of the event loop, kept in the caller's frame so
  /// the hot path updates registers, not member memory.
  struct Tally {
    std::uint64_t scanned = 0;
    std::uint64_t captured = 0;
  };

  // always_inline: GCC's size heuristics refuse to inline the event body
  // into the packet loop on their own, leaving a per-event call (and the
  // tally in memory instead of registers) that costs more than the
  // candidate scan itself.
  [[gnu::always_inline]] inline void eventStep(const Event& event,
                                               const HotConfig& hot,
                                               Tally& tally);
  // The captured-event update sequence, shared verbatim by eventStep and
  // the grouped phase-B path so both produce the identical float stream.
  [[gnu::always_inline]] inline void applyCapture(int best, float px,
                                                  float py, TimeUs t,
                                                  const HotConfig& hot);
  // Overlapped cluster chains (grid-enabled configs): resolve a run of
  // events to clusters against group-start snapshots (phase A), then
  // apply each cluster's mean-shift/MAD updates as its own dependency
  // chain (phase B).  Falls back to eventStep for any event whose
  // assignment is not provably identical to the sequential scan (seeds,
  // marginal-radius events, drift-budget exhaustion).  Bit-identical to
  // the reference by construction; see processPacketGrouped's comment.
  void processPacketGrouped(const EventPacket& packet, const HotConfig& hot,
                            Tally& tally);
  void chargeEventOps(const Tally& tally);
  void capturedSlowPath(int b, TimeUs t, float nx, float ny, bool sample,
                        bool rebuild);
  void seedCluster(float px, float py, TimeUs t);
  void pushSample(int i, TimeUs t, float x, float y);
  void maintain(TimeUs now);
  void mergePass();
  void refreshVelocity(int i);
  void eraseCluster(int i);
  void copyClusterIdentity(int from, int to);
  void rebuildGrid();
  [[nodiscard]] static int cellIndex(float v);
  [[nodiscard]] BBox boxOf(int i) const;
  [[nodiscard]] Track trackOf(int i) const;

  EbmsConfig config_;
  int count_ = 0;  ///< live clusters; arrays below are packed [0, count_)

  // Hot SoA state, sized maxClusters at construction.
  std::vector<float> posX_;
  std::vector<float> posY_;
  std::vector<float> madX_;
  std::vector<float> madY_;
  std::vector<float> velX_;
  std::vector<float> velY_;
  std::vector<std::uint64_t> support_;
  std::vector<std::uint32_t> id_;
  std::vector<TimeUs> lastEventT_;
  std::vector<TimeUs> lastSampleT_;
  std::vector<TimeUs> bornT_;

  // Velocity-fit state: per cluster a fixed-capacity ring of quantised
  // samples (slab of velocityWindow entries) plus running sums.
  std::vector<ebms_detail::VelocitySums> sums_;
  std::vector<TimeUs> histOrigin_;
  std::vector<int> histBegin_;
  std::vector<int> histCount_;
  std::vector<TimeUs> histT_;
  std::vector<std::int64_t> histQx_;
  std::vector<std::int64_t> histQy_;

  std::vector<BBox> boxes_;  ///< merge-pass box cache (reused scratch)

  // Capture grid: 32-px cells over [0, 2048)^2 px (coordinates beyond
  // clamp into the edge cells on both the cluster and the event side, so
  // the candidate masks stay conservative for any uint16 coordinate).
  // Cell masks hold clusters whose capture region padded by gridSlack_
  // can reach the cell at *grid-build* positions (anchors); the grid is
  // rebuilt whenever a cluster drifts within 1 px of the slack, on
  // seeding, and after each maintain — so between rebuilds a cluster
  // missing from a cell's mask provably cannot capture events there.
  // Disabled (full scan fallback) when maxClusters exceeds the 64-bit
  // mask width.
  static constexpr int kGridShift = 5;
  static constexpr int kGridDim = 64;
  bool gridEnabled_ = false;
  /// Drift slack of the cell masks, px: half the capture radius (floored
  /// at 8) trades registration reach against rebuild rate.
  float gridSlack_ = 8.0F;
  std::vector<std::uint64_t> grid_;  ///< kGridDim^2 cell masks
  std::vector<float> anchorX_;       ///< positions at the last rebuild
  std::vector<float> anchorY_;
  // Cell rectangle registered by the last rebuild — the only part of the
  // grid that needs clearing on the next one (clusters cover a small
  // corner of the 2048-px grid range on real sensors).
  int dirtyX0_ = 0;
  int dirtyX1_ = -1;
  int dirtyY0_ = 0;
  int dirtyY1_ = -1;

  std::uint32_t nextId_ = 1;
  std::uint64_t mergeCount_ = 0;
  OpCounts ops_;
  TimeUs lastMaintain_ = 0;
};

}  // namespace ebbiot
