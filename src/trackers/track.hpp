// Track types shared by all three trackers (OT, KF, EBMS).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/geometry.hpp"

namespace ebbiot {

/// One reported track at one frame instant.
struct Track {
  std::uint32_t id = 0;      ///< stable across frames while the track lives
  BBox box;                  ///< current estimate, full-resolution px
  Vec2f velocity;            ///< px per frame
  int age = 0;               ///< frames since the track was seeded
  int hits = 0;              ///< frames with a matched measurement
  int misses = 0;            ///< consecutive frames without a measurement
  bool occluded = false;     ///< OT: currently coasting through occlusion

  friend bool operator==(const Track&, const Track&) = default;
};

using Tracks = std::vector<Track>;

}  // namespace ebbiot
