#include "src/trackers/hybrid_tracker.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ebbiot {

HybridTracker::HybridTracker(const HybridTrackerConfig& config)
    : config_(config) {
  EBBIOT_ASSERT(config.maxTrackers >= 1);
  EBBIOT_ASSERT(config.matchFraction > 0.0F && config.matchFraction <= 1.0F);
  EBBIOT_ASSERT(config.sizeSmoothing >= 0.0F && config.sizeSmoothing <= 1.0F);
  EBBIOT_ASSERT(config.frameWidth > 0 && config.frameHeight > 0);
}

BBox HybridTracker::predictedBox(const Entry& entry) const {
  const Vec2f c = entry.filter.position();
  return BBox{c.x - entry.w / 2.0F, c.y - entry.h / 2.0F, entry.w, entry.h};
}

void HybridTracker::refreshTrackBox(Entry& entry) {
  entry.track.box = predictedBox(entry);
  entry.track.velocity = entry.filter.velocity();
}

Tracks HybridTracker::update(const RegionProposals& proposals) {
  ops_.reset();

  // --- Step 1: KF time update for every live track.
  for (Entry& e : entries_) {
    e.filter.predict();
    ops_.multiplies += 4 * 4 * 4 * 2;  // F*x + F*P*F^T products
    ops_.adds += 4 * 4 * 4 * 2;
  }

  // --- Step 2: overlap association, greedy largest-intersection first.
  const std::size_t nT = entries_.size();
  const std::size_t nP = proposals.size();
  std::vector<BBox> pred(nT);
  for (std::size_t i = 0; i < nT; ++i) {
    pred[i] = predictedBox(entries_[i]);
  }
  struct Candidate {
    float overlap;
    std::size_t track;
    std::size_t proposal;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < nT; ++i) {
    for (std::size_t j = 0; j < nP; ++j) {
      ops_.compares += 4;  // interval tests of the overlap predicate
      ops_.multiplies += 2;
      if (!proposals[j].box.empty() &&
          overlapMatches(pred[i], proposals[j].box, config_.matchFraction)) {
        candidates.push_back(
            Candidate{intersectionArea(pred[i], proposals[j].box), i, j});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.overlap != b.overlap) {
                return a.overlap > b.overlap;
              }
              if (a.track != b.track) {
                return a.track < b.track;
              }
              return a.proposal < b.proposal;
            });
  std::vector<int> trackOfProposal(nP, -1);
  std::vector<int> proposalOfTrack(nT, -1);
  for (const Candidate& c : candidates) {
    ops_.compares += 1;
    if (proposalOfTrack[c.track] >= 0 || trackOfProposal[c.proposal] >= 0) {
      continue;
    }
    proposalOfTrack[c.track] = static_cast<int>(c.proposal);
    trackOfProposal[c.proposal] = static_cast<int>(c.track);
  }

  // --- Step 3: leftover proposals that overlap a matched track's
  // prediction are fragments of it — union them into the measurement
  // while the union stays near the remembered size (track history
  // repairs fragmentation, as in the OT).
  std::vector<BBox> measurement(nT);
  for (std::size_t i = 0; i < nT; ++i) {
    if (proposalOfTrack[i] >= 0) {
      measurement[i] =
          proposals[static_cast<std::size_t>(proposalOfTrack[i])].box;
    }
  }
  for (const Candidate& c : candidates) {
    if (trackOfProposal[c.proposal] >= 0 || proposalOfTrack[c.track] < 0) {
      continue;  // proposal claimed, or track itself unmatched
    }
    const BBox grown =
        unite(measurement[c.track], proposals[c.proposal].box);
    const float maxW = pred[c.track].w * config_.maxUnionGrowth +
                       config_.unionGrowthMarginPx;
    const float maxH = pred[c.track].h * config_.maxUnionGrowth +
                       config_.unionGrowthMarginPx;
    ops_.compares += 2;
    ops_.adds += 4;
    if (grown.w <= maxW && grown.h <= maxH) {
      measurement[c.track] = grown;
      trackOfProposal[c.proposal] = static_cast<int>(c.track);
    }
  }

  // --- Steps 4 + 5: measurement updates and KF coasting.
  for (std::size_t i = 0; i < nT; ++i) {
    Entry& e = entries_[i];
    if (proposalOfTrack[i] >= 0) {
      const BBox& meas = measurement[i];
      e.filter.update(meas.center());
      ops_.multiplies += 2 * 4 * 4 * 3;  // gain products + state update
      ops_.adds += 2 * 4 * 4 * 3;
      const float ss = config_.sizeSmoothing;
      e.w = ss * e.w + (1.0F - ss) * meas.w;
      e.h = ss * e.h + (1.0F - ss) * meas.h;
      ops_.multiplies += 4;
      ops_.adds += 2;
      ++e.track.age;
      ++e.track.hits;
      e.track.misses = 0;
      e.track.occluded = false;
    } else {
      // Coast on the KF prediction: position already advanced in step 1,
      // velocity state retained for when the object reappears.
      ++e.track.age;
      ++e.track.misses;
      e.track.occluded = true;
      ops_.adds += 2;
    }
    refreshTrackBox(e);
  }

  // Kill stale or departed tracks.
  std::erase_if(entries_, [this](const Entry& e) {
    return e.track.misses > config_.maxMisses ||
           clampToFrame(e.track.box, config_.frameWidth, config_.frameHeight)
               .empty();
  });

  // --- Step 6: seed from unmatched proposals while slots remain.
  for (std::size_t j = 0; j < nP; ++j) {
    if (trackOfProposal[j] >= 0 ||
        static_cast<int>(entries_.size()) >= config_.maxTrackers) {
      continue;
    }
    const RegionProposal& prop = proposals[j];
    ops_.compares += 1;
    if (prop.box.empty() || prop.box.area() < config_.minSeedArea) {
      continue;
    }
    Entry e{Track{}, ConstantVelocityKalman(prop.box.center(), config_.filter),
            prop.box.w, prop.box.h};
    e.track.id = nextId_++;
    e.track.age = 1;
    e.track.hits = 1;
    refreshTrackBox(e);
    entries_.push_back(std::move(e));
    ops_.memWrites += 8;
  }

  Tracks out;
  for (Entry& e : entries_) {
    if (e.track.hits >= config_.minHitsToReport) {
      out.push_back(e.track);
    }
  }
  return out;
}

Tracks HybridTracker::liveTracks() const {
  Tracks out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(e.track);
  }
  return out;
}

int HybridTracker::activeCount() const {
  return static_cast<int>(entries_.size());
}

}  // namespace ebbiot
