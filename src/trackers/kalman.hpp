// Kalman-filter tracking baseline — Section II-C, Eq. (7).
//
// The paper's comparison tracker follows Lin, Ramesh & Xiang (ACCV 2015):
// a constant-velocity motion model over track centroids (the published
// description keeps a measurement vector of the two centroid coordinates
// per track).  This module provides:
//   * ConstantVelocityKalman — a single-target KF with state
//     [xc, yc, vx, vy]^T and measurement [xc, yc]^T on the dense Matrix
//     type, with the standard predict/update recursions; and
//   * KalmanTracker — the multi-target manager: greedy gated nearest-
//     centroid association of RPN proposals to tracks, seeding from
//     unmatched proposals, and EMA box-size smoothing (the KF itself
//     estimates only the centroid, as in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/op_counter.hpp"
#include "src/detect/region.hpp"
#include "src/trackers/track.hpp"

namespace ebbiot {

struct KalmanConfig {
  double processNoise = 1.0;      ///< accel noise spectral density, px/fr^2
  double measurementNoise = 2.0;  ///< centroid measurement sigma, px
  double initialVelocitySigma = 5.0;
};

/// Single-target constant-velocity Kalman filter (frame-indexed: dt = 1).
class ConstantVelocityKalman {
 public:
  ConstantVelocityKalman(Vec2f position, const KalmanConfig& config);

  /// Time update: x <- F x, P <- F P F^T + Q.
  void predict();

  /// Measurement update with a centroid observation.
  void update(Vec2f measuredPosition);

  [[nodiscard]] Vec2f position() const;
  [[nodiscard]] Vec2f velocity() const;

  /// Innovation (pre-fit residual) magnitude of the last update.
  [[nodiscard]] double lastInnovation() const { return lastInnovation_; }

  [[nodiscard]] const Matrix& covariance() const { return p_; }

 private:
  Matrix x_;  ///< 4x1 state [xc, yc, vx, vy]
  Matrix p_;  ///< 4x4 covariance
  Matrix f_;  ///< 4x4 transition
  Matrix q_;  ///< 4x4 process noise
  Matrix h_;  ///< 2x4 measurement
  Matrix r_;  ///< 2x2 measurement noise
  double lastInnovation_ = 0.0;
};

/// How proposals are associated to tracks.
enum class AssociationMethod {
  kGreedy,     ///< globally closest pair first (the embedded default)
  kHungarian,  ///< cost-optimal assignment (src/trackers/assignment.hpp)
};

struct KalmanTrackerConfig {
  int maxTracks = 8;            ///< NT, matched to the OT for fairness
  KalmanConfig filter;
  AssociationMethod association = AssociationMethod::kGreedy;
  double gateDistance = 40.0;   ///< max centroid distance for association
  float sizeSmoothing = 0.7F;   ///< EMA weight of previous size
  int maxMisses = 3;
  int minHitsToReport = 3;      ///< same report gate as the OT, for fairness
  float minSeedArea = 12.0F;
  int frameWidth = 240;
  int frameHeight = 180;
};

class KalmanTracker {
 public:
  /// Config type consumed by this back end (used by FramePipeline).
  using Config = KalmanTrackerConfig;

  explicit KalmanTracker(const KalmanTrackerConfig& config);

  /// Advance one frame with this frame's region proposals.
  Tracks update(const RegionProposals& proposals);

  [[nodiscard]] Tracks liveTracks() const;
  [[nodiscard]] int activeCount() const;

  /// Ops of the most recent update, comparable to C_KF of Eq. (7).
  /// ops-model: metered — predict/update matrix ops counted per live track.
  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

  [[nodiscard]] const KalmanTrackerConfig& config() const { return config_; }

 private:
  struct Entry {
    Track track;
    ConstantVelocityKalman filter;
    float w = 0.0F;  ///< smoothed box size
    float h = 0.0F;
  };

  void refreshTrackBox(Entry& entry);

  KalmanTrackerConfig config_;
  std::vector<Entry> entries_;
  std::uint32_t nextId_ = 1;
  OpCounts ops_;
};

}  // namespace ebbiot
