#include "src/trackers/ebms_reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/error.hpp"
#include "src/trackers/ebms_common.hpp"

namespace ebbiot {

EbmsTrackerReference::EbmsTrackerReference(const EbmsConfig& config)
    : config_(config) {
  EBBIOT_ASSERT(config.maxClusters >= 1);
  EBBIOT_ASSERT(config.captureRadius > 0.0F);
  EBBIOT_ASSERT(config.mixingFactor > 0.0F && config.mixingFactor <= 1.0F);
  EBBIOT_ASSERT(config.velocityWindow >= 2);
}

BBox EbmsTrackerReference::clusterBox(const Cluster& c) const {
  // Rectangular extent from the mean absolute deviation of recent events:
  // for a uniform box profile, full width ~= 4 * MAD.
  const float w = std::max(config_.minBoxSide, 4.0F * c.madX);
  const float h = std::max(config_.minBoxSide, 4.0F * c.madY);
  return BBox{c.position.x - w / 2.0F, c.position.y - h / 2.0F, w, h};
}

void EbmsTrackerReference::processEvent(const Event& event) {
  const Vec2f p{static_cast<float>(event.x) + 0.5F,
                static_cast<float>(event.y) + 0.5F};
  // Nearest cluster whose capture region contains the event.
  Cluster* best = nullptr;
  float bestDist = std::numeric_limits<float>::max();
  float bestDx = 0.0F;
  float bestDy = 0.0F;
  for (Cluster& c : clusters_) {
    const float dx = std::abs(p.x - c.position.x);
    const float dy = std::abs(p.y - c.position.y);
    ops_.compares += 2;
    ops_.adds += 2;
    if (dx <= config_.captureRadius && dy <= config_.captureRadius) {
      const float d = dx + dy;  // L1 is fine for the argmin
      if (d < bestDist) {
        bestDist = d;
        best = &c;
        bestDx = dx;
        bestDy = dy;
      }
    }
  }
  if (best != nullptr) {
    Cluster& c = *best;
    // Size estimate first: the deviation is measured against the centroid
    // *before* the mean-shift step (measuring after it shrank the MAD by
    // (1 - mixingFactor) and biased the reported box small).  The scan
    // already computed |p - position| for the pre-update centroid.
    const float s = config_.sizeSmoothing;
    c.madX = s * c.madX + (1.0F - s) * bestDx;
    c.madY = s * c.madY + (1.0F - s) * bestDy;
    const float m = config_.mixingFactor;
    c.position.x = (1.0F - m) * c.position.x + m * p.x;
    c.position.y = (1.0F - m) * c.position.y + m * p.y;
    ops_.multiplies += 8;
    ops_.adds += 4;
    ++c.support;
    c.lastEventT = event.t;
    if (event.t - c.lastSampleT >= config_.positionSampleInterval) {
      c.history.emplace_back(event.t, c.position);
      c.lastSampleT = event.t;
      while (static_cast<int>(c.history.size()) > config_.velocityWindow) {
        c.history.pop_front();
      }
      ops_.memWrites += 3;
    }
    return;
  }
  // Seed a potential cluster if a slot is free.
  if (static_cast<int>(clusters_.size()) < config_.maxClusters) {
    Cluster c;
    c.id = nextId_++;
    c.position = p;
    c.support = 1;
    c.lastEventT = event.t;
    c.lastSampleT = event.t;
    c.bornT = event.t;
    c.history.emplace_back(event.t, p);
    clusters_.push_back(std::move(c));
    ops_.memWrites += 6;
  }
}

void EbmsTrackerReference::processPacket(const EventPacket& packet) {
  ops_.reset();
  for (const Event& e : packet) {
    processEvent(e);
  }
  maintain(packet.tEnd());
}

void EbmsTrackerReference::maintain(TimeUs now) {
  // Prune silent clusters; the scan visits every live cluster, so the
  // comparison count is charged on the *pre*-erase size.
  ops_.compares += clusters_.size();
  std::erase_if(clusters_, [&](const Cluster& c) {
    return now - c.lastEventT > config_.clusterLifetime;
  });

  mergePass();

  for (Cluster& c : clusters_) {
    fitVelocity(c);
  }
  lastMaintain_ = now;
}

void EbmsTrackerReference::mergePass() {
  // Merge overlapping clusters: keep the better-supported one, pull it
  // slightly toward the victim (support-weighted), absorb the support.
  // Boxes are computed once per cluster and cached for the pass; after a
  // merge the scan continues in place, re-checking only the survivor's
  // row against its updated box instead of restarting the full O(n^2)
  // sweep.  Ops are charged for exactly the boxes and overlap tests
  // evaluated.
  boxes_.clear();
  for (const Cluster& c : clusters_) {
    boxes_.push_back(clusterBox(c));
    ops_.multiplies += 2;
    ops_.compares += 2;
  }
  std::size_t i = 0;
  while (i < clusters_.size()) {
    std::size_t j = i + 1;
    while (j < clusters_.size()) {
      ops_.compares += 4;
      if (!overlapMatches(boxes_[i], boxes_[j],
                          config_.mergeOverlapFraction)) {
        ++j;
        continue;
      }
      Cluster& a = clusters_[i];
      Cluster& b = clusters_[j];
      const bool keepA = a.support >= b.support;
      Cluster& k = keepA ? a : b;
      const Cluster& d = keepA ? b : a;
      const float wK = static_cast<float>(k.support) /
                       static_cast<float>(k.support + d.support);
      k.position.x = wK * k.position.x + (1.0F - wK) * d.position.x;
      k.position.y = wK * k.position.y + (1.0F - wK) * d.position.y;
      k.madX = std::max(k.madX, d.madX);
      k.madY = std::max(k.madY, d.madY);
      k.support += d.support;
      k.lastEventT = std::max(k.lastEventT, d.lastEventT);
      ops_.multiplies += 4;
      ops_.adds += 6;
      if (!keepA) {
        a = std::move(b);  // survivor always lives at the lower slot
      }
      clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(j));
      boxes_.erase(boxes_.begin() + static_cast<std::ptrdiff_t>(j));
      boxes_[i] = clusterBox(clusters_[i]);
      ops_.multiplies += 2;
      ops_.compares += 2;
      ++mergeCount_;
      j = i + 1;  // the survivor's box changed: re-scan its row
    }
    ++i;
  }
}

void EbmsTrackerReference::fitVelocity(Cluster& cluster) {
  // Least-squares line fit of position vs time over the sampled history
  // (the paper: "past 10 positions ... using least square regression"),
  // over the exact-integer sums of ebms_common.hpp so the SoA fast path's
  // incrementally-maintained fit is bit-identical.
  const std::size_t n = cluster.history.size();
  if (n < 2) {
    cluster.velocity = Vec2f{};
    return;
  }
  ebms_detail::VelocitySums sums;
  const TimeUs t0 = cluster.history.front().first;
  for (const auto& [t, p] : cluster.history) {
    sums.add(static_cast<std::uint64_t>(t - t0),
             ebms_detail::quantizePosition(p.x),
             ebms_detail::quantizePosition(p.y));
    ops_.multiplies += 3;
    ops_.adds += 6;
  }
  const ebms_detail::VelocityFit fit = ebms_detail::solveVelocity(sums);
  cluster.velocity = fit.velocity;
  if (fit.fitted) {
    ops_.multiplies += 8;
    ops_.adds += 4;
  }
}

Tracks EbmsTrackerReference::visibleTracks() const {
  Tracks out;
  for (const Cluster& c : clusters_) {
    if (c.support < static_cast<std::uint64_t>(config_.visibilitySupport)) {
      continue;
    }
    Track t;
    t.id = c.id;
    t.box = clusterBox(c);
    t.velocity = c.velocity;  // px/s
    t.hits = static_cast<int>(
        std::min<std::uint64_t>(c.support,
                                std::numeric_limits<int>::max()));
    out.push_back(t);
  }
  return out;
}

Tracks EbmsTrackerReference::allClusters() const {
  Tracks out;
  for (const Cluster& c : clusters_) {
    Track t;
    t.id = c.id;
    t.box = clusterBox(c);
    t.velocity = c.velocity;
    t.hits = static_cast<int>(
        std::min<std::uint64_t>(c.support,
                                std::numeric_limits<int>::max()));
    out.push_back(t);
  }
  return out;
}

int EbmsTrackerReference::activeCount() const {
  return static_cast<int>(clusters_.size());
}

}  // namespace ebbiot
