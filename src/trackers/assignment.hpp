// Linear assignment (Hungarian / Kuhn-Munkres) for data association.
//
// The Kalman baseline associates region proposals to tracks.  Greedy
// nearest-first matching (the default) is O(n^2 log n) and what most
// embedded trackers ship; the Hungarian algorithm finds the cost-optimal
// one-to-one assignment in O(n^3).  Both are provided so the ablation
// benches can quantify what optimal association is worth on this
// workload.
//
// Implementation: the classic potentials + augmenting-path formulation
// (Jonker-style) on a rectangular cost matrix, rows <= cols padded
// internally.  Costs above `forbiddenCost` mark impossible pairs.
#pragma once

#include <cstddef>
#include <vector>

namespace ebbiot {

/// Result of an assignment: for each row, the chosen column or -1.
struct Assignment {
  std::vector<int> columnOfRow;
  double totalCost = 0.0;
};

/// Solve min-cost one-to-one assignment.  `cost` is row-major
/// rows x cols.  Pairs with cost >= forbiddenCost are never assigned;
/// rows may stay unassigned when all their columns are forbidden or
/// taken by cheaper rows (rows > cols).
[[nodiscard]] Assignment solveAssignment(const std::vector<double>& cost,
                                         std::size_t rows, std::size_t cols,
                                         double forbiddenCost = 1e17);

}  // namespace ebbiot
