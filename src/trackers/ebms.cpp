#include "src/trackers/ebms.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <span>

#include "src/common/error.hpp"

namespace ebbiot {

EbmsTracker::EbmsTracker(const EbmsConfig& config) : config_(config) {
  EBBIOT_ASSERT(config.maxClusters >= 1);
  EBBIOT_ASSERT(config.captureRadius > 0.0F);
  EBBIOT_ASSERT(config.mixingFactor > 0.0F && config.mixingFactor <= 1.0F);
  EBBIOT_ASSERT(config.velocityWindow >= 2);
  const auto n = static_cast<std::size_t>(config.maxClusters);
  const auto w = static_cast<std::size_t>(config.velocityWindow);
  posX_.resize(n);
  posY_.resize(n);
  madX_.resize(n);
  madY_.resize(n);
  velX_.resize(n);
  velY_.resize(n);
  support_.resize(n);
  id_.resize(n);
  lastEventT_.resize(n);
  lastSampleT_.resize(n);
  bornT_.resize(n);
  sums_.resize(n);
  histOrigin_.resize(n);
  histBegin_.resize(n);
  histCount_.resize(n);
  histT_.resize(n * w);
  histQx_.resize(n * w);
  histQy_.resize(n * w);
  boxes_.reserve(n);
  gridEnabled_ = config.maxClusters <= 64;
  if (gridEnabled_) {
    gridSlack_ = std::max(8.0F, config.captureRadius * 0.5F);
    grid_.resize(static_cast<std::size_t>(kGridDim) * kGridDim, 0);
    anchorX_.resize(n);
    anchorY_.resize(n);
  }
}

BBox EbmsTracker::boxOf(int i) const {
  // Rectangular extent from the mean absolute deviation of recent events:
  // for a uniform box profile, full width ~= 4 * MAD.
  const auto idx = static_cast<std::size_t>(i);
  const float w = std::max(config_.minBoxSide, 4.0F * madX_[idx]);
  const float h = std::max(config_.minBoxSide, 4.0F * madY_[idx]);
  return BBox{posX_[idx] - w / 2.0F, posY_[idx] - h / 2.0F, w, h};
}

void EbmsTracker::processEvent(const Event& event) {
  Tally tally;
  eventStep(event, hotConfig(), tally);
  chargeEventOps(tally);  // per-call, like the reference's inline metering
}

void EbmsTracker::chargeEventOps(const Tally& tally) {
  // Closed form of the reference's per-event metering: 2 compares +
  // 2 adds per cluster scanned, 8 multiplies + 4 adds per captured
  // event.  (The sampling and seeding memWrites are charged by the cold
  // paths themselves.)
  ops_.compares += 2 * tally.scanned;
  ops_.adds += 2 * tally.scanned + 4 * tally.captured;
  ops_.multiplies += 8 * tally.captured;
}

// Hot per-event body.  Deliberately tiny (the sampling/seeding/rebuild
// tails live in out-of-line cold functions) so it inlines into the
// packet loop — a per-event call would cost more than the scan itself.
inline void EbmsTracker::eventStep(const Event& event, const HotConfig& hot,
                                   Tally& tally) {
  const float px = static_cast<float>(event.x) + 0.5F;
  const float py = static_cast<float>(event.y) + 0.5F;
  const int n = count_;
  // The reference scans every cluster for every event; the closed-form
  // accounting charges the same whether or not the candidate mask lets
  // this event skip most (or all) of the scan.
  tally.scanned += static_cast<std::uint64_t>(n);
  if (n > 0) {
    // Nearest cluster whose capture region contains the event (L1 argmin,
    // first-lowest-index wins ties — exactly the reference's scan).  With
    // the capture grid the scan visits only the event's cell candidates:
    // every cluster missing from the mask is provably outside capture
    // range (see the grid invariant in the header), so the argmin over
    // the mask equals the argmin over all clusters.  Mask bits are
    // visited in ascending index order, preserving the tie-break.
    int best = -1;
    float bestKey = std::numeric_limits<float>::max();
    const float* xs = posX_.data();
    const float* ys = posY_.data();
    const auto consider = [&](int i) {
      const float dx = std::abs(px - xs[i]);
      const float dy = std::abs(py - ys[i]);
      if (dx <= hot.radius && dy <= hot.radius) {
        const float d = dx + dy;
        if (d < bestKey) {  // strict <: first-lowest-index wins ties
          bestKey = d;
          best = i;
        }
      }
    };
    if (gridEnabled_) {
      const int cx =
          std::min(static_cast<int>(event.x) >> kGridShift, kGridDim - 1);
      const int cy =
          std::min(static_cast<int>(event.y) >> kGridShift, kGridDim - 1);
      for (std::uint64_t m = grid_[static_cast<std::size_t>(cy) * kGridDim +
                                   static_cast<std::size_t>(cx)];
           m != 0; m &= m - 1) {
        consider(std::countr_zero(m));
      }
    } else {
      for (int i = 0; i < n; ++i) {
        consider(i);
      }
    }
    if (best >= 0) {
      ++tally.captured;
      applyCapture(best, px, py, event.t, hot);
      return;
    }
  }
  // Seed a potential cluster if a slot is free.
  if (n < hot.maxClusters) [[unlikely]] {
    seedCluster(px, py, event.t);
  }
}

// The captured-event update, shared verbatim by the scalar eventStep and
// the grouped phase-B replay so both produce the identical float
// sequence: size estimate first (deviation measured against the centroid
// *before* the mean-shift step), then the mean-shift itself.
inline void EbmsTracker::applyCapture(int best, float px, float py, TimeUs t,
                                      const HotConfig& hot) {
  const auto b = static_cast<std::size_t>(best);
  const float bestDx = std::abs(px - posX_[b]);
  const float bestDy = std::abs(py - posY_[b]);
  const float s = hot.smoothing;
  madX_[b] = s * madX_[b] + (1.0F - s) * bestDx;
  madY_[b] = s * madY_[b] + (1.0F - s) * bestDy;
  const float m = hot.mixing;
  const float nx = (1.0F - m) * posX_[b] + m * px;
  const float ny = (1.0F - m) * posY_[b] + m * py;
  posX_[b] = nx;
  posY_[b] = ny;
  ++support_[b];
  lastEventT_[b] = t;
  const bool sample = t - lastSampleT_[b] >= hot.sampleInterval;
  // Re-anchor the grid before the drift eats the 1 px safety margin
  // the cell masks' slack leaves over the capture radius.
  const bool rebuild =
      gridEnabled_ && (std::abs(nx - anchorX_[b]) > hot.driftLimit ||
                       std::abs(ny - anchorY_[b]) > hot.driftLimit);
  if (sample || rebuild) [[unlikely]] {
    capturedSlowPath(best, t, nx, ny, sample, rebuild);
  }
}

void EbmsTracker::capturedSlowPath(int b, TimeUs t, float nx, float ny,
                                   bool sample, bool rebuild) {
  if (sample) {
    pushSample(b, t, nx, ny);
    lastSampleT_[static_cast<std::size_t>(b)] = t;
    ops_.memWrites += 3;
  }
  if (rebuild) {
    rebuildGrid();
  }
}

void EbmsTracker::seedCluster(float px, float py, TimeUs t) {
  const auto i = static_cast<std::size_t>(count_);
  id_[i] = nextId_++;
  posX_[i] = px;
  posY_[i] = py;
  madX_[i] = kEbmsInitialMad;
  madY_[i] = kEbmsInitialMad;
  velX_[i] = 0.0F;
  velY_[i] = 0.0F;
  support_[i] = 1;
  lastEventT_[i] = t;
  lastSampleT_[i] = t;
  bornT_[i] = t;
  sums_[i] = {};
  histBegin_[i] = 0;
  histCount_[i] = 0;
  ++count_;
  pushSample(static_cast<int>(i), t, px, py);
  if (gridEnabled_) {
    rebuildGrid();
  }
  ops_.memWrites += 6;
}

void EbmsTracker::pushSample(int i, TimeUs t, float x, float y) {
  const int w = config_.velocityWindow;
  const auto idx = static_cast<std::size_t>(i);
  const std::size_t base = idx * static_cast<std::size_t>(w);
  const std::int64_t qx = ebms_detail::quantizePosition(x);
  const std::int64_t qy = ebms_detail::quantizePosition(y);
  if (histCount_[idx] == 0) {
    // Fixed per-cluster origin; any origin solves the same fit exactly
    // (shift invariance of the integer sums, see ebms_common.hpp).
    histOrigin_[idx] = t;
  } else if (histCount_[idx] == w) {
    const std::size_t oldest =
        base + static_cast<std::size_t>(histBegin_[idx]);
    sums_[idx].remove(
        static_cast<std::uint64_t>(histT_[oldest] - histOrigin_[idx]),
        histQx_[oldest], histQy_[oldest]);
    histBegin_[idx] = (histBegin_[idx] + 1) % w;
    --histCount_[idx];
  }
  const std::size_t slot =
      base + static_cast<std::size_t>((histBegin_[idx] + histCount_[idx]) % w);
  histT_[slot] = t;
  histQx_[slot] = qx;
  histQy_[slot] = qy;
  sums_[idx].add(static_cast<std::uint64_t>(t - histOrigin_[idx]), qx, qy);
  ++histCount_[idx];
}

void EbmsTracker::processPacket(const EventPacket& packet) {
  ops_.reset();
  const HotConfig hot = hotConfig();
  Tally tally;  // stays in registers across the loop
  if (gridEnabled_) {
    processPacketGrouped(packet, hot, tally);
  } else {
    for (const Event& e : packet) {
      eventStep(e, hot, tally);
    }
  }
  chargeEventOps(tally);
  maintain(packet.tEnd());
}

namespace {

/// Safety margin, px, the proven-drift-headroom counter keeps over the
/// worst-case accumulated mean-shift drift.  Per-capture float rounding
/// is on the order of an ulp of the position, so a quarter pixel covers
/// any feasible run length thousands of times over.
constexpr float kDriftPad = 0.25F;

}  // namespace

// Run-based overlapped cluster chains.  Event streams are bursty: an
// object's events reach the packet in runs (sensor readout locality),
// and in the sequential loop each capture's EMA update must round-trip
// the SoA arrays before the next event's capture test can issue — the
// same-typed float vectors defeat alias analysis, so the whole run
// becomes one memory-serialised dependency chain.
//
// This path peels those runs off explicitly.  When an event's capture-
// grid cell holds exactly one candidate cluster, the grid invariant
// proves every other cluster is out of capture range, so the scalar L1
// argmin degenerates to a single radius test against that cluster.  The
// run loop then applies consecutive such events with the cluster state
// held in registers, reproducing applyCapture's float sequence verbatim
// (the differential suite in tests/test_ebms_soa.cpp pins this copy
// against the scalar step and the reference).  State goes back to the
// SoA arrays only at run boundaries, so consecutive runs — distinct
// clusters by construction — are independent dependency chains the
// out-of-order core overlaps at CLmax = 8.
//
// While every cluster slot is taken, a miss cannot seed — the scalar
// step discards the event after charging the scan — so the run also
// absorbs interleaved noise without breaking: empty-cell events, misses
// on this run's candidate, and misses on a *different* lone candidate
// (whose SoA state is current, only the run's own cluster lives in
// registers) are all provably stateless and just advance the cursor.
//
// Anything the run loop cannot reproduce locally falls back to the
// exact scalar eventStep for that event:
//
//   * a cell whose mask holds several candidates (clusters close enough
//     to contend — order matters there);
//   * any miss or empty cell while a slot is free (it may seed);
//   * a capture belonging to another cluster (the outer loop re-enters
//     and typically opens that cluster's run directly);
//   * a capture that re-anchors the grid (applied here exactly — store
//     back, shared slow path, reload — but it ends the run, because the
//     rebuilt masks must be re-read).
//
// Ops parity with the sequential loop is structural: count_ cannot
// change inside a run (seeds go through eventStep, which ends it), the
// scalar step charges count_ scans per event whether it captures or
// discards, so the scan charge is consumedEvents * count_ and each
// capture charges exactly one.
void EbmsTracker::processPacketGrouped(const EventPacket& packet,
                                       const HotConfig& hot, Tally& tally) {
  const std::span<const Event> events = packet.events();
  const std::size_t n = events.size();
  const float s = hot.smoothing;
  const float m = hot.mixing;
  const float s1 = 1.0F - s;  // hoisted: the loop body is register-starved
  const float m1 = 1.0F - m;
  // One capture moves a cluster at most step px in L-infinity (the
  // mean-shift pulls it a fraction m of a distance that the capture
  // test bounds by the radius), so after j captures the drift against
  // the grid anchor grew by at most j * step plus float rounding —
  // which kDriftPad dwarfs by orders of magnitude at any feasible run
  // length.  That bound lets the run loop *prove* the rebuild test
  // false for a counted number of upcoming captures and skip computing
  // it, without ever skipping a check whose outcome could differ from
  // the scalar step's.
  const float step = m * hot.radius;
  std::size_t i = 0;
  while (i < n) {
    const Event& first = events[i];
    const int cellX =
        std::min(static_cast<int>(first.x) >> kGridShift, kGridDim - 1);
    const int cellY =
        std::min(static_cast<int>(first.y) >> kGridShift, kGridDim - 1);
    const std::uint64_t mask =
        grid_[static_cast<std::size_t>(cellY) * kGridDim +
              static_cast<std::size_t>(cellX)];
    if (mask == 0 || (mask & (mask - 1)) != 0) {
      eventStep(first, hot, tally);  // contended or empty cell: exact step
      ++i;
      continue;
    }
    const int c = std::countr_zero(mask);
    const auto ci = static_cast<std::size_t>(c);
    // Hoist the candidate's state into registers for the run.
    float cpx = posX_[ci];
    float cpy = posY_[ci];
    float cmx = madX_[ci];
    float cmy = madY_[ci];
    const float ax = anchorX_[ci];
    const float ay = anchorY_[ci];
    TimeUs sampleAt = lastSampleT_[ci] + hot.sampleInterval;
    const std::uint64_t supportBase = support_[ci];
    const float drift0 = std::max(std::abs(cpx - ax), std::abs(cpy - ay));
    int safe =
        static_cast<int>((hot.driftLimit - drift0 - kDriftPad) / step);
    // Grow the run's cell into a pixel-space window while every
    // neighbouring cell keeps the same singleton mask: for events
    // inside it the candidate-set check is four integer compares, no
    // grid load.  The grid cannot change under the window mid-run —
    // only seeds and re-anchors touch it, and both end the run.
    int cx0 = cellX;
    int cx1 = cellX;
    int cy0 = cellY;
    int cy1 = cellY;
    const auto stripSingleton = [&](int sx0, int sx1, int sy0, int sy1) {
      for (int cy = sy0; cy <= sy1; ++cy) {
        for (int cx = sx0; cx <= sx1; ++cx) {
          if (grid_[static_cast<std::size_t>(cy) * kGridDim +
                    static_cast<std::size_t>(cx)] != mask) {
            return false;
          }
        }
      }
      return true;
    };
    if (cx0 > 0 && stripSingleton(cx0 - 1, cx0 - 1, cy0, cy1)) {
      --cx0;
    }
    if (cx1 < kGridDim - 1 && stripSingleton(cx1 + 1, cx1 + 1, cy0, cy1)) {
      ++cx1;
    }
    if (cy0 > 0 && stripSingleton(cx0, cx1, cy0 - 1, cy0 - 1)) {
      --cy0;
    }
    if (cy1 < kGridDim - 1 && stripSingleton(cx0, cx1, cy1 + 1, cy1 + 1)) {
      ++cy1;
    }
    // The topmost cell row/column absorbs every clamped coordinate.
    const int bx0 = cx0 << kGridShift;
    const int bx1 = cx1 == kGridDim - 1 ? std::numeric_limits<int>::max()
                                        : ((cx1 + 1) << kGridShift) - 1;
    const int by0 = cy0 << kGridShift;
    const int by1 = cy1 == kGridDim - 1 ? std::numeric_limits<int>::max()
                                        : ((cy1 + 1) << kGridShift) - 1;
    const bool full = count_ >= hot.maxClusters;  // misses cannot seed
    std::size_t j = 0;       // events this run consumed (capture or discard)
    std::uint64_t caps = 0;  // captures among them
    TimeUs lastCapT = 0;
    bool reanchored = false;
    while (i + j < n) {
      const Event& e = events[i + j];
      const int ex = e.x;
      const int ey = e.y;
      if (ex < bx0 || ex > bx1 || ey < by0 || ey > by1) [[unlikely]] {
        // Outside the proven window: one grid load classifies the event.
        const std::uint64_t em =
            grid_[static_cast<std::size_t>(
                      std::min(ey >> kGridShift, kGridDim - 1)) *
                      kGridDim +
                  static_cast<std::size_t>(
                      std::min(ex >> kGridShift, kGridDim - 1))];
        if (em != mask) {
          if (em == 0) {
            if (!full) {
              break;  // an empty cell may seed: exact step
            }
            ++j;  // pure discard (scan charge only): the run survives
            continue;
          }
          if ((em & (em - 1)) == 0 && full) {
            // A different lone candidate, SoA state current: the capture
            // test is exact, and a miss is a pure discard.
            const auto oi =
                static_cast<std::size_t>(std::countr_zero(em));
            const float opx = static_cast<float>(ex) + 0.5F;
            const float opy = static_cast<float>(ey) + 0.5F;
            if (!(std::abs(opx - posX_[oi]) <= hot.radius &&
                  std::abs(opy - posY_[oi]) <= hot.radius)) {
              ++j;
              continue;
            }
          }
          break;  // contended cell, possible seed, or capture elsewhere
        }
        // Same singleton mask beyond the grown window: run continues.
      }
      const float px = static_cast<float>(ex) + 0.5F;
      const float py = static_cast<float>(ey) + 0.5F;
      // The scalar argmin over a singleton candidate set is just the
      // capture test against the register copy of the position.
      const float bestDx = std::abs(px - cpx);
      const float bestDy = std::abs(py - cpy);
      if (!(bestDx <= hot.radius && bestDy <= hot.radius)) [[unlikely]] {
        if (!full) {
          break;  // a miss may seed: exact step
        }
        ++j;  // full: the miss is stateless, keep the run open
        continue;
      }
      // applyCapture's float sequence, on the register copies.
      cmx = s * cmx + s1 * bestDx;
      cmy = s * cmy + s1 * bestDy;
      const float nx = m1 * cpx + m * px;
      const float ny = m1 * cpy + m * py;
      cpx = nx;
      cpy = ny;
      ++caps;
      ++j;
      lastCapT = e.t;
      bool rebuild = false;
      if (--safe < 0) [[unlikely]] {
        // Out of proven headroom: run the exact rebuild test, and bank
        // a fresh skip allowance from the actual drift if it passes.
        rebuild = std::abs(nx - ax) > hot.driftLimit ||
                  std::abs(ny - ay) > hot.driftLimit;
        if (!rebuild) {
          const float drift =
              std::max(std::abs(nx - ax), std::abs(ny - ay));
          safe = static_cast<int>(
              (hot.driftLimit - drift - kDriftPad) / step);
        }
      }
      if (e.t >= sampleAt || rebuild) [[unlikely]] {
        // The shared slow path reads the SoA state: store the registers
        // back first, run it, then pick up whatever it changed.
        posX_[ci] = cpx;
        posY_[ci] = cpy;
        madX_[ci] = cmx;
        madY_[ci] = cmy;
        support_[ci] = supportBase + caps;
        lastEventT_[ci] = e.t;
        capturedSlowPath(c, e.t, nx, ny, e.t >= sampleAt, rebuild);
        sampleAt = lastSampleT_[ci] + hot.sampleInterval;
        if (rebuild) {
          reanchored = true;  // masks changed: re-read them for the rest
          break;
        }
      }
    }
    if (j == 0) {
      eventStep(first, hot, tally);  // miss on the single candidate
      ++i;
      continue;
    }
    if (caps != 0 && !reanchored) {
      posX_[ci] = cpx;
      posY_[ci] = cpy;
      madX_[ci] = cmx;
      madY_[ci] = cmy;
      support_[ci] = supportBase + caps;
      lastEventT_[ci] = lastCapT;
    }
    tally.scanned +=
        static_cast<std::uint64_t>(j) * static_cast<std::uint64_t>(count_);
    tally.captured += caps;
    i += j;
  }
}
void EbmsTracker::maintain(TimeUs now) {
  // Prune silent clusters (comparisons charged on the pre-erase count).
  ops_.compares += static_cast<std::uint64_t>(count_);
  for (int i = count_ - 1; i >= 0; --i) {
    if (now - lastEventT_[static_cast<std::size_t>(i)] >
        config_.clusterLifetime) {
      eraseCluster(i);
    }
  }

  mergePass();

  for (int i = 0; i < count_; ++i) {
    refreshVelocity(i);
  }
  if (gridEnabled_) {
    rebuildGrid();  // prune/merge moved or removed clusters
  }
  lastMaintain_ = now;
}

void EbmsTracker::mergePass() {
  // Merge overlapping clusters; same pass (and metering) as the
  // reference: boxes cached per pass, survivor stored at the lower slot,
  // scan continues in place re-checking only the survivor's row.
  boxes_.clear();
  for (int i = 0; i < count_; ++i) {
    boxes_.push_back(boxOf(i));
    ops_.multiplies += 2;
    ops_.compares += 2;
  }
  int i = 0;
  while (i < count_) {
    int j = i + 1;
    while (j < count_) {
      ops_.compares += 4;
      if (!overlapMatches(boxes_[static_cast<std::size_t>(i)],
                          boxes_[static_cast<std::size_t>(j)],
                          config_.mergeOverlapFraction)) {
        ++j;
        continue;
      }
      const auto ii = static_cast<std::size_t>(i);
      const auto jj = static_cast<std::size_t>(j);
      const bool keepFirst = support_[ii] >= support_[jj];
      const auto k = keepFirst ? ii : jj;
      const auto d = keepFirst ? jj : ii;
      const float wK = static_cast<float>(support_[k]) /
                       static_cast<float>(support_[k] + support_[d]);
      const float mergedX = wK * posX_[k] + (1.0F - wK) * posX_[d];
      const float mergedY = wK * posY_[k] + (1.0F - wK) * posY_[d];
      const float mergedMadX = std::max(madX_[k], madX_[d]);
      const float mergedMadY = std::max(madY_[k], madY_[d]);
      const std::uint64_t mergedSupport = support_[k] + support_[d];
      const TimeUs mergedLastEventT = std::max(lastEventT_[k], lastEventT_[d]);
      ops_.multiplies += 4;
      ops_.adds += 6;
      if (!keepFirst) {
        copyClusterIdentity(j, i);  // survivor's id/history move to slot i
      }
      posX_[ii] = mergedX;
      posY_[ii] = mergedY;
      madX_[ii] = mergedMadX;
      madY_[ii] = mergedMadY;
      support_[ii] = mergedSupport;
      lastEventT_[ii] = mergedLastEventT;
      eraseCluster(j);
      boxes_.erase(boxes_.begin() + j);
      boxes_[ii] = boxOf(i);
      ops_.multiplies += 2;
      ops_.compares += 2;
      ++mergeCount_;
      j = i + 1;  // the survivor's box changed: re-scan its row
    }
    ++i;
  }
}

void EbmsTracker::refreshVelocity(int i) {
  const auto idx = static_cast<std::size_t>(i);
  const std::uint64_t n = sums_[idx].n;
  if (n < 2) {
    velX_[idx] = 0.0F;
    velY_[idx] = 0.0F;
    return;
  }
  // The abstract accounting stays the reference's metered per-sample loop
  // (3 multiplies + 6 adds per history entry, 8 + 4 for the solve),
  // charged in closed form — the running sums make the solve O(1).
  ops_.multiplies += 3 * n;
  ops_.adds += 6 * n;
  const ebms_detail::VelocityFit fit = ebms_detail::solveVelocity(sums_[idx]);
  velX_[idx] = fit.velocity.x;
  velY_[idx] = fit.velocity.y;
  if (fit.fitted) {
    ops_.multiplies += 8;
    ops_.adds += 4;
  }
}

void EbmsTracker::eraseCluster(int i) {
  const auto shift = [&](auto& v) {
    std::copy(v.begin() + i + 1, v.begin() + count_, v.begin() + i);
  };
  shift(posX_);
  shift(posY_);
  shift(madX_);
  shift(madY_);
  shift(velX_);
  shift(velY_);
  shift(support_);
  shift(id_);
  shift(lastEventT_);
  shift(lastSampleT_);
  shift(bornT_);
  shift(sums_);
  shift(histOrigin_);
  shift(histBegin_);
  shift(histCount_);
  const auto w = static_cast<std::ptrdiff_t>(config_.velocityWindow);
  const auto from = static_cast<std::ptrdiff_t>(i + 1) * w;
  const auto to = static_cast<std::ptrdiff_t>(count_) * w;
  const auto dst = static_cast<std::ptrdiff_t>(i) * w;
  std::copy(histT_.begin() + from, histT_.begin() + to, histT_.begin() + dst);
  std::copy(histQx_.begin() + from, histQx_.begin() + to,
            histQx_.begin() + dst);
  std::copy(histQy_.begin() + from, histQy_.begin() + to,
            histQy_.begin() + dst);
  --count_;
}

void EbmsTracker::copyClusterIdentity(int from, int to) {
  const auto f = static_cast<std::size_t>(from);
  const auto t = static_cast<std::size_t>(to);
  id_[t] = id_[f];
  bornT_[t] = bornT_[f];
  lastSampleT_[t] = lastSampleT_[f];
  velX_[t] = velX_[f];
  velY_[t] = velY_[f];
  sums_[t] = sums_[f];
  histOrigin_[t] = histOrigin_[f];
  histBegin_[t] = histBegin_[f];
  histCount_[t] = histCount_[f];
  const auto w = static_cast<std::size_t>(config_.velocityWindow);
  std::copy(histT_.begin() + static_cast<std::ptrdiff_t>(f * w),
            histT_.begin() + static_cast<std::ptrdiff_t>(f * w + w),
            histT_.begin() + static_cast<std::ptrdiff_t>(t * w));
  std::copy(histQx_.begin() + static_cast<std::ptrdiff_t>(f * w),
            histQx_.begin() + static_cast<std::ptrdiff_t>(f * w + w),
            histQx_.begin() + static_cast<std::ptrdiff_t>(t * w));
  std::copy(histQy_.begin() + static_cast<std::ptrdiff_t>(f * w),
            histQy_.begin() + static_cast<std::ptrdiff_t>(f * w + w),
            histQy_.begin() + static_cast<std::ptrdiff_t>(t * w));
}

int EbmsTracker::cellIndex(float v) {
  const int cell = static_cast<int>(std::floor(v)) >> kGridShift;
  return std::clamp(cell, 0, kGridDim - 1);
}

void EbmsTracker::rebuildGrid() {
  // Clear only the cell rectangle the previous rebuild registered: the
  // rest of the grid is guaranteed zero already.
  for (int cy = dirtyY0_; cy <= dirtyY1_; ++cy) {
    std::fill_n(grid_.begin() + static_cast<std::ptrdiff_t>(cy) * kGridDim +
                    dirtyX0_,
                dirtyX1_ - dirtyX0_ + 1, std::uint64_t{0});
  }
  dirtyX0_ = kGridDim;
  dirtyX1_ = -1;
  dirtyY0_ = kGridDim;
  dirtyY1_ = -1;
  // A cluster can capture an event only within captureRadius of its
  // *current* position; registering anchor +- (radius + slack) cells and
  // re-anchoring before drift reaches slack - 1 px keeps every mask a
  // superset of the truly reachable clusters, with a >= 1 px margin over
  // any float rounding in the |p - pos| <= radius test.
  const float reach = config_.captureRadius + gridSlack_;
  for (int i = 0; i < count_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    anchorX_[idx] = posX_[idx];
    anchorY_[idx] = posY_[idx];
    const int x0 = cellIndex(posX_[idx] - reach);
    const int x1 = cellIndex(posX_[idx] + reach);
    const int y0 = cellIndex(posY_[idx] - reach);
    const int y1 = cellIndex(posY_[idx] + reach);
    dirtyX0_ = std::min(dirtyX0_, x0);
    dirtyX1_ = std::max(dirtyX1_, x1);
    dirtyY0_ = std::min(dirtyY0_, y0);
    dirtyY1_ = std::max(dirtyY1_, y1);
    const std::uint64_t bit = std::uint64_t{1} << i;
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        grid_[static_cast<std::size_t>(cy) * kGridDim +
              static_cast<std::size_t>(cx)] |= bit;
      }
    }
  }
}

Track EbmsTracker::trackOf(int i) const {
  const auto idx = static_cast<std::size_t>(i);
  Track t;
  t.id = id_[idx];
  t.box = boxOf(i);
  t.velocity = Vec2f{velX_[idx], velY_[idx]};  // px/s
  t.hits = static_cast<int>(std::min<std::uint64_t>(
      support_[idx], std::numeric_limits<int>::max()));
  return t;
}

void EbmsTracker::visibleTracksInto(Tracks& out) const {
  out.clear();
  const auto minSupport =
      static_cast<std::uint64_t>(config_.visibilitySupport);
  for (int i = 0; i < count_; ++i) {
    if (support_[static_cast<std::size_t>(i)] < minSupport) {
      continue;
    }
    out.push_back(trackOf(i));
  }
}

void EbmsTracker::allClustersInto(Tracks& out) const {
  out.clear();
  for (int i = 0; i < count_; ++i) {
    out.push_back(trackOf(i));
  }
}

Tracks EbmsTracker::visibleTracks() const {
  Tracks out;
  visibleTracksInto(out);
  return out;
}

Tracks EbmsTracker::allClusters() const {
  Tracks out;
  allClustersInto(out);
  return out;
}

}  // namespace ebbiot
