#include "src/trackers/ebms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace ebbiot {

EbmsTracker::EbmsTracker(const EbmsConfig& config) : config_(config) {
  EBBIOT_ASSERT(config.maxClusters >= 1);
  EBBIOT_ASSERT(config.captureRadius > 0.0F);
  EBBIOT_ASSERT(config.mixingFactor > 0.0F && config.mixingFactor <= 1.0F);
  EBBIOT_ASSERT(config.velocityWindow >= 2);
}

BBox EbmsTracker::clusterBox(const Cluster& c) const {
  // Rectangular extent from the mean absolute deviation of recent events:
  // for a uniform box profile, full width ~= 4 * MAD.
  const float w = std::max(config_.minBoxSide, 4.0F * c.madX);
  const float h = std::max(config_.minBoxSide, 4.0F * c.madY);
  return BBox{c.position.x - w / 2.0F, c.position.y - h / 2.0F, w, h};
}

void EbmsTracker::processEvent(const Event& event) {
  const Vec2f p{static_cast<float>(event.x) + 0.5F,
                static_cast<float>(event.y) + 0.5F};
  // Nearest cluster whose capture region contains the event.
  Cluster* best = nullptr;
  float bestDist = std::numeric_limits<float>::max();
  for (Cluster& c : clusters_) {
    const float dx = std::abs(p.x - c.position.x);
    const float dy = std::abs(p.y - c.position.y);
    ops_.compares += 2;
    ops_.adds += 2;
    if (dx <= config_.captureRadius && dy <= config_.captureRadius) {
      const float d = dx + dy;  // L1 is fine for the argmin
      if (d < bestDist) {
        bestDist = d;
        best = &c;
      }
    }
  }
  if (best != nullptr) {
    Cluster& c = *best;
    const float m = config_.mixingFactor;
    c.position.x = (1.0F - m) * c.position.x + m * p.x;
    c.position.y = (1.0F - m) * c.position.y + m * p.y;
    ops_.multiplies += 4;
    ops_.adds += 2;
    const float s = config_.sizeSmoothing;
    c.madX = s * c.madX + (1.0F - s) * std::abs(p.x - c.position.x);
    c.madY = s * c.madY + (1.0F - s) * std::abs(p.y - c.position.y);
    ops_.multiplies += 4;
    ops_.adds += 4;
    ++c.support;
    c.lastEventT = event.t;
    if (event.t - c.lastSampleT >= config_.positionSampleInterval) {
      c.history.emplace_back(event.t, c.position);
      c.lastSampleT = event.t;
      while (static_cast<int>(c.history.size()) > config_.velocityWindow) {
        c.history.pop_front();
      }
      ops_.memWrites += 3;
    }
    return;
  }
  // Seed a potential cluster if a slot is free.
  if (static_cast<int>(clusters_.size()) < config_.maxClusters) {
    Cluster c;
    c.id = nextId_++;
    c.position = p;
    c.support = 1;
    c.lastEventT = event.t;
    c.lastSampleT = event.t;
    c.bornT = event.t;
    c.history.emplace_back(event.t, p);
    clusters_.push_back(std::move(c));
    ops_.memWrites += 6;
  }
}

void EbmsTracker::processPacket(const EventPacket& packet) {
  ops_.reset();
  for (const Event& e : packet) {
    processEvent(e);
  }
  maintain(packet.tEnd());
}

void EbmsTracker::maintain(TimeUs now) {
  // Prune silent clusters.
  std::erase_if(clusters_, [&](const Cluster& c) {
    return now - c.lastEventT > config_.clusterLifetime;
  });
  ops_.compares += clusters_.size();

  // Merge overlapping clusters: keep the better-supported one, pull it
  // slightly toward the victim (support-weighted), absorb the support.
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < clusters_.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < clusters_.size() && !merged; ++j) {
        const BBox bi = clusterBox(clusters_[i]);
        const BBox bj = clusterBox(clusters_[j]);
        ops_.compares += 4;
        ops_.multiplies += 2;
        if (!overlapMatches(bi, bj, config_.mergeOverlapFraction)) {
          continue;
        }
        const std::size_t keep =
            clusters_[i].support >= clusters_[j].support ? i : j;
        const std::size_t drop = keep == i ? j : i;
        Cluster& k = clusters_[keep];
        const Cluster& d = clusters_[drop];
        const float wK = static_cast<float>(k.support) /
                         static_cast<float>(k.support + d.support);
        k.position.x = wK * k.position.x + (1.0F - wK) * d.position.x;
        k.position.y = wK * k.position.y + (1.0F - wK) * d.position.y;
        k.madX = std::max(k.madX, d.madX);
        k.madY = std::max(k.madY, d.madY);
        k.support += d.support;
        k.lastEventT = std::max(k.lastEventT, d.lastEventT);
        ops_.multiplies += 4;
        ops_.adds += 6;
        clusters_.erase(clusters_.begin() +
                        static_cast<std::ptrdiff_t>(drop));
        ++mergeCount_;
        merged = true;
      }
    }
  }

  for (Cluster& c : clusters_) {
    fitVelocity(c);
  }
  lastMaintain_ = now;
}

void EbmsTracker::fitVelocity(Cluster& cluster) {
  // Least-squares line fit of position vs time over the sampled history
  // (the paper: "past 10 positions ... using least square regression").
  const std::size_t n = cluster.history.size();
  if (n < 2) {
    cluster.velocity = Vec2f{};
    return;
  }
  double sumT = 0.0;
  double sumX = 0.0;
  double sumY = 0.0;
  double sumTT = 0.0;
  double sumTX = 0.0;
  double sumTY = 0.0;
  const TimeUs t0 = cluster.history.front().first;
  for (const auto& [t, p] : cluster.history) {
    const double ts = usToSeconds(t - t0);
    sumT += ts;
    sumX += p.x;
    sumY += p.y;
    sumTT += ts * ts;
    sumTX += ts * p.x;
    sumTY += ts * p.y;
    ops_.multiplies += 3;
    ops_.adds += 6;
  }
  const double nD = static_cast<double>(n);
  const double denom = nD * sumTT - sumT * sumT;
  if (std::abs(denom) < 1e-12) {
    cluster.velocity = Vec2f{};
    return;
  }
  // Slope is px/s; stored as px/s (converted to px/frame by callers that
  // need frame units).
  cluster.velocity.x =
      static_cast<float>((nD * sumTX - sumT * sumX) / denom);
  cluster.velocity.y =
      static_cast<float>((nD * sumTY - sumT * sumY) / denom);
  ops_.multiplies += 8;
  ops_.adds += 4;
}

Tracks EbmsTracker::visibleTracks() const {
  Tracks out;
  for (const Cluster& c : clusters_) {
    if (c.support < static_cast<std::uint64_t>(config_.visibilitySupport)) {
      continue;
    }
    Track t;
    t.id = c.id;
    t.box = clusterBox(c);
    t.velocity = c.velocity;  // px/s
    t.hits = static_cast<int>(
        std::min<std::uint64_t>(c.support,
                                std::numeric_limits<int>::max()));
    out.push_back(t);
  }
  return out;
}

Tracks EbmsTracker::allClusters() const {
  Tracks out;
  for (const Cluster& c : clusters_) {
    Track t;
    t.id = c.id;
    t.box = clusterBox(c);
    t.velocity = c.velocity;
    t.hits = static_cast<int>(
        std::min<std::uint64_t>(c.support,
                                std::numeric_limits<int>::max()));
    out.push_back(t);
  }
  return out;
}

int EbmsTracker::activeCount() const {
  return static_cast<int>(clusters_.size());
}

}  // namespace ebbiot
