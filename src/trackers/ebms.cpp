#include "src/trackers/ebms.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace ebbiot {

EbmsTracker::EbmsTracker(const EbmsConfig& config) : config_(config) {
  EBBIOT_ASSERT(config.maxClusters >= 1);
  EBBIOT_ASSERT(config.captureRadius > 0.0F);
  EBBIOT_ASSERT(config.mixingFactor > 0.0F && config.mixingFactor <= 1.0F);
  EBBIOT_ASSERT(config.velocityWindow >= 2);
  const auto n = static_cast<std::size_t>(config.maxClusters);
  const auto w = static_cast<std::size_t>(config.velocityWindow);
  posX_.resize(n);
  posY_.resize(n);
  madX_.resize(n);
  madY_.resize(n);
  velX_.resize(n);
  velY_.resize(n);
  support_.resize(n);
  id_.resize(n);
  lastEventT_.resize(n);
  lastSampleT_.resize(n);
  bornT_.resize(n);
  sums_.resize(n);
  histOrigin_.resize(n);
  histBegin_.resize(n);
  histCount_.resize(n);
  histT_.resize(n * w);
  histQx_.resize(n * w);
  histQy_.resize(n * w);
  boxes_.reserve(n);
  gridEnabled_ = config.maxClusters <= 64;
  if (gridEnabled_) {
    gridSlack_ = std::max(8.0F, config.captureRadius * 0.5F);
    grid_.resize(static_cast<std::size_t>(kGridDim) * kGridDim, 0);
    anchorX_.resize(n);
    anchorY_.resize(n);
  }
}

BBox EbmsTracker::boxOf(int i) const {
  // Rectangular extent from the mean absolute deviation of recent events:
  // for a uniform box profile, full width ~= 4 * MAD.
  const auto idx = static_cast<std::size_t>(i);
  const float w = std::max(config_.minBoxSide, 4.0F * madX_[idx]);
  const float h = std::max(config_.minBoxSide, 4.0F * madY_[idx]);
  return BBox{posX_[idx] - w / 2.0F, posY_[idx] - h / 2.0F, w, h};
}

void EbmsTracker::processEvent(const Event& event) {
  Tally tally;
  eventStep(event, hotConfig(), tally);
  chargeEventOps(tally);  // per-call, like the reference's inline metering
}

void EbmsTracker::chargeEventOps(const Tally& tally) {
  // Closed form of the reference's per-event metering: 2 compares +
  // 2 adds per cluster scanned, 8 multiplies + 4 adds per captured
  // event.  (The sampling and seeding memWrites are charged by the cold
  // paths themselves.)
  ops_.compares += 2 * tally.scanned;
  ops_.adds += 2 * tally.scanned + 4 * tally.captured;
  ops_.multiplies += 8 * tally.captured;
}

// Hot per-event body.  Deliberately tiny (the sampling/seeding/rebuild
// tails live in out-of-line cold functions) so it inlines into the
// packet loop — a per-event call would cost more than the scan itself.
inline void EbmsTracker::eventStep(const Event& event, const HotConfig& hot,
                                   Tally& tally) {
  const float px = static_cast<float>(event.x) + 0.5F;
  const float py = static_cast<float>(event.y) + 0.5F;
  const int n = count_;
  // The reference scans every cluster for every event; the closed-form
  // accounting charges the same whether or not the candidate mask lets
  // this event skip most (or all) of the scan.
  tally.scanned += static_cast<std::uint64_t>(n);
  if (n > 0) {
    // Nearest cluster whose capture region contains the event (L1 argmin,
    // first-lowest-index wins ties — exactly the reference's scan).  With
    // the capture grid the scan visits only the event's cell candidates:
    // every cluster missing from the mask is provably outside capture
    // range (see the grid invariant in the header), so the argmin over
    // the mask equals the argmin over all clusters.  Mask bits are
    // visited in ascending index order, preserving the tie-break.
    int best = -1;
    float bestKey = std::numeric_limits<float>::max();
    const float* xs = posX_.data();
    const float* ys = posY_.data();
    const auto consider = [&](int i) {
      const float dx = std::abs(px - xs[i]);
      const float dy = std::abs(py - ys[i]);
      if (dx <= hot.radius && dy <= hot.radius) {
        const float d = dx + dy;
        if (d < bestKey) {  // strict <: first-lowest-index wins ties
          bestKey = d;
          best = i;
        }
      }
    };
    if (gridEnabled_) {
      const int cx =
          std::min(static_cast<int>(event.x) >> kGridShift, kGridDim - 1);
      const int cy =
          std::min(static_cast<int>(event.y) >> kGridShift, kGridDim - 1);
      for (std::uint64_t m = grid_[static_cast<std::size_t>(cy) * kGridDim +
                                   static_cast<std::size_t>(cx)];
           m != 0; m &= m - 1) {
        consider(std::countr_zero(m));
      }
    } else {
      for (int i = 0; i < n; ++i) {
        consider(i);
      }
    }
    if (best >= 0) {
      const auto b = static_cast<std::size_t>(best);
      ++tally.captured;
      // Size estimate first: the deviation is measured against the
      // centroid *before* the mean-shift step.  Recomputed from the
      // winning cluster — the same floats the scan produced.
      const float bestDx = std::abs(px - posX_[b]);
      const float bestDy = std::abs(py - posY_[b]);
      const float s = hot.smoothing;
      madX_[b] = s * madX_[b] + (1.0F - s) * bestDx;
      madY_[b] = s * madY_[b] + (1.0F - s) * bestDy;
      const float m = hot.mixing;
      const float nx = (1.0F - m) * posX_[b] + m * px;
      const float ny = (1.0F - m) * posY_[b] + m * py;
      posX_[b] = nx;
      posY_[b] = ny;
      ++support_[b];
      lastEventT_[b] = event.t;
      const bool sample = event.t - lastSampleT_[b] >= hot.sampleInterval;
      // Re-anchor the grid before the drift eats the 1 px safety margin
      // the cell masks' slack leaves over the capture radius.
      const bool rebuild =
          gridEnabled_ && (std::abs(nx - anchorX_[b]) > hot.driftLimit ||
                           std::abs(ny - anchorY_[b]) > hot.driftLimit);
      if (sample || rebuild) [[unlikely]] {
        capturedSlowPath(best, event.t, nx, ny, sample, rebuild);
      }
      return;
    }
  }
  // Seed a potential cluster if a slot is free.
  if (n < hot.maxClusters) [[unlikely]] {
    seedCluster(px, py, event.t);
  }
}

void EbmsTracker::capturedSlowPath(int b, TimeUs t, float nx, float ny,
                                   bool sample, bool rebuild) {
  if (sample) {
    pushSample(b, t, nx, ny);
    lastSampleT_[static_cast<std::size_t>(b)] = t;
    ops_.memWrites += 3;
  }
  if (rebuild) {
    rebuildGrid();
  }
}

void EbmsTracker::seedCluster(float px, float py, TimeUs t) {
  const auto i = static_cast<std::size_t>(count_);
  id_[i] = nextId_++;
  posX_[i] = px;
  posY_[i] = py;
  madX_[i] = kEbmsInitialMad;
  madY_[i] = kEbmsInitialMad;
  velX_[i] = 0.0F;
  velY_[i] = 0.0F;
  support_[i] = 1;
  lastEventT_[i] = t;
  lastSampleT_[i] = t;
  bornT_[i] = t;
  sums_[i] = {};
  histBegin_[i] = 0;
  histCount_[i] = 0;
  ++count_;
  pushSample(static_cast<int>(i), t, px, py);
  if (gridEnabled_) {
    rebuildGrid();
  }
  ops_.memWrites += 6;
}

void EbmsTracker::pushSample(int i, TimeUs t, float x, float y) {
  const int w = config_.velocityWindow;
  const auto idx = static_cast<std::size_t>(i);
  const std::size_t base = idx * static_cast<std::size_t>(w);
  const std::int64_t qx = ebms_detail::quantizePosition(x);
  const std::int64_t qy = ebms_detail::quantizePosition(y);
  if (histCount_[idx] == 0) {
    // Fixed per-cluster origin; any origin solves the same fit exactly
    // (shift invariance of the integer sums, see ebms_common.hpp).
    histOrigin_[idx] = t;
  } else if (histCount_[idx] == w) {
    const std::size_t oldest =
        base + static_cast<std::size_t>(histBegin_[idx]);
    sums_[idx].remove(
        static_cast<std::uint64_t>(histT_[oldest] - histOrigin_[idx]),
        histQx_[oldest], histQy_[oldest]);
    histBegin_[idx] = (histBegin_[idx] + 1) % w;
    --histCount_[idx];
  }
  const std::size_t slot =
      base + static_cast<std::size_t>((histBegin_[idx] + histCount_[idx]) % w);
  histT_[slot] = t;
  histQx_[slot] = qx;
  histQy_[slot] = qy;
  sums_[idx].add(static_cast<std::uint64_t>(t - histOrigin_[idx]), qx, qy);
  ++histCount_[idx];
}

void EbmsTracker::processPacket(const EventPacket& packet) {
  ops_.reset();
  const HotConfig hot = hotConfig();
  Tally tally;  // stays in registers across the loop
  for (const Event& e : packet) {
    eventStep(e, hot, tally);
  }
  chargeEventOps(tally);
  maintain(packet.tEnd());
}

void EbmsTracker::maintain(TimeUs now) {
  // Prune silent clusters (comparisons charged on the pre-erase count).
  ops_.compares += static_cast<std::uint64_t>(count_);
  for (int i = count_ - 1; i >= 0; --i) {
    if (now - lastEventT_[static_cast<std::size_t>(i)] >
        config_.clusterLifetime) {
      eraseCluster(i);
    }
  }

  mergePass();

  for (int i = 0; i < count_; ++i) {
    refreshVelocity(i);
  }
  if (gridEnabled_) {
    rebuildGrid();  // prune/merge moved or removed clusters
  }
  lastMaintain_ = now;
}

void EbmsTracker::mergePass() {
  // Merge overlapping clusters; same pass (and metering) as the
  // reference: boxes cached per pass, survivor stored at the lower slot,
  // scan continues in place re-checking only the survivor's row.
  boxes_.clear();
  for (int i = 0; i < count_; ++i) {
    boxes_.push_back(boxOf(i));
    ops_.multiplies += 2;
    ops_.compares += 2;
  }
  int i = 0;
  while (i < count_) {
    int j = i + 1;
    while (j < count_) {
      ops_.compares += 4;
      if (!overlapMatches(boxes_[static_cast<std::size_t>(i)],
                          boxes_[static_cast<std::size_t>(j)],
                          config_.mergeOverlapFraction)) {
        ++j;
        continue;
      }
      const auto ii = static_cast<std::size_t>(i);
      const auto jj = static_cast<std::size_t>(j);
      const bool keepFirst = support_[ii] >= support_[jj];
      const auto k = keepFirst ? ii : jj;
      const auto d = keepFirst ? jj : ii;
      const float wK = static_cast<float>(support_[k]) /
                       static_cast<float>(support_[k] + support_[d]);
      const float mergedX = wK * posX_[k] + (1.0F - wK) * posX_[d];
      const float mergedY = wK * posY_[k] + (1.0F - wK) * posY_[d];
      const float mergedMadX = std::max(madX_[k], madX_[d]);
      const float mergedMadY = std::max(madY_[k], madY_[d]);
      const std::uint64_t mergedSupport = support_[k] + support_[d];
      const TimeUs mergedLastEventT = std::max(lastEventT_[k], lastEventT_[d]);
      ops_.multiplies += 4;
      ops_.adds += 6;
      if (!keepFirst) {
        copyClusterIdentity(j, i);  // survivor's id/history move to slot i
      }
      posX_[ii] = mergedX;
      posY_[ii] = mergedY;
      madX_[ii] = mergedMadX;
      madY_[ii] = mergedMadY;
      support_[ii] = mergedSupport;
      lastEventT_[ii] = mergedLastEventT;
      eraseCluster(j);
      boxes_.erase(boxes_.begin() + j);
      boxes_[ii] = boxOf(i);
      ops_.multiplies += 2;
      ops_.compares += 2;
      ++mergeCount_;
      j = i + 1;  // the survivor's box changed: re-scan its row
    }
    ++i;
  }
}

void EbmsTracker::refreshVelocity(int i) {
  const auto idx = static_cast<std::size_t>(i);
  const std::uint64_t n = sums_[idx].n;
  if (n < 2) {
    velX_[idx] = 0.0F;
    velY_[idx] = 0.0F;
    return;
  }
  // The abstract accounting stays the reference's metered per-sample loop
  // (3 multiplies + 6 adds per history entry, 8 + 4 for the solve),
  // charged in closed form — the running sums make the solve O(1).
  ops_.multiplies += 3 * n;
  ops_.adds += 6 * n;
  const ebms_detail::VelocityFit fit = ebms_detail::solveVelocity(sums_[idx]);
  velX_[idx] = fit.velocity.x;
  velY_[idx] = fit.velocity.y;
  if (fit.fitted) {
    ops_.multiplies += 8;
    ops_.adds += 4;
  }
}

void EbmsTracker::eraseCluster(int i) {
  const auto shift = [&](auto& v) {
    std::copy(v.begin() + i + 1, v.begin() + count_, v.begin() + i);
  };
  shift(posX_);
  shift(posY_);
  shift(madX_);
  shift(madY_);
  shift(velX_);
  shift(velY_);
  shift(support_);
  shift(id_);
  shift(lastEventT_);
  shift(lastSampleT_);
  shift(bornT_);
  shift(sums_);
  shift(histOrigin_);
  shift(histBegin_);
  shift(histCount_);
  const auto w = static_cast<std::ptrdiff_t>(config_.velocityWindow);
  const auto from = static_cast<std::ptrdiff_t>(i + 1) * w;
  const auto to = static_cast<std::ptrdiff_t>(count_) * w;
  const auto dst = static_cast<std::ptrdiff_t>(i) * w;
  std::copy(histT_.begin() + from, histT_.begin() + to, histT_.begin() + dst);
  std::copy(histQx_.begin() + from, histQx_.begin() + to,
            histQx_.begin() + dst);
  std::copy(histQy_.begin() + from, histQy_.begin() + to,
            histQy_.begin() + dst);
  --count_;
}

void EbmsTracker::copyClusterIdentity(int from, int to) {
  const auto f = static_cast<std::size_t>(from);
  const auto t = static_cast<std::size_t>(to);
  id_[t] = id_[f];
  bornT_[t] = bornT_[f];
  lastSampleT_[t] = lastSampleT_[f];
  velX_[t] = velX_[f];
  velY_[t] = velY_[f];
  sums_[t] = sums_[f];
  histOrigin_[t] = histOrigin_[f];
  histBegin_[t] = histBegin_[f];
  histCount_[t] = histCount_[f];
  const auto w = static_cast<std::size_t>(config_.velocityWindow);
  std::copy(histT_.begin() + static_cast<std::ptrdiff_t>(f * w),
            histT_.begin() + static_cast<std::ptrdiff_t>(f * w + w),
            histT_.begin() + static_cast<std::ptrdiff_t>(t * w));
  std::copy(histQx_.begin() + static_cast<std::ptrdiff_t>(f * w),
            histQx_.begin() + static_cast<std::ptrdiff_t>(f * w + w),
            histQx_.begin() + static_cast<std::ptrdiff_t>(t * w));
  std::copy(histQy_.begin() + static_cast<std::ptrdiff_t>(f * w),
            histQy_.begin() + static_cast<std::ptrdiff_t>(f * w + w),
            histQy_.begin() + static_cast<std::ptrdiff_t>(t * w));
}

int EbmsTracker::cellIndex(float v) {
  const int cell = static_cast<int>(std::floor(v)) >> kGridShift;
  return std::clamp(cell, 0, kGridDim - 1);
}

void EbmsTracker::rebuildGrid() {
  // Clear only the cell rectangle the previous rebuild registered: the
  // rest of the grid is guaranteed zero already.
  for (int cy = dirtyY0_; cy <= dirtyY1_; ++cy) {
    std::fill_n(grid_.begin() + static_cast<std::ptrdiff_t>(cy) * kGridDim +
                    dirtyX0_,
                dirtyX1_ - dirtyX0_ + 1, std::uint64_t{0});
  }
  dirtyX0_ = kGridDim;
  dirtyX1_ = -1;
  dirtyY0_ = kGridDim;
  dirtyY1_ = -1;
  // A cluster can capture an event only within captureRadius of its
  // *current* position; registering anchor +- (radius + slack) cells and
  // re-anchoring before drift reaches slack - 1 px keeps every mask a
  // superset of the truly reachable clusters, with a >= 1 px margin over
  // any float rounding in the |p - pos| <= radius test.
  const float reach = config_.captureRadius + gridSlack_;
  for (int i = 0; i < count_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    anchorX_[idx] = posX_[idx];
    anchorY_[idx] = posY_[idx];
    const int x0 = cellIndex(posX_[idx] - reach);
    const int x1 = cellIndex(posX_[idx] + reach);
    const int y0 = cellIndex(posY_[idx] - reach);
    const int y1 = cellIndex(posY_[idx] + reach);
    dirtyX0_ = std::min(dirtyX0_, x0);
    dirtyX1_ = std::max(dirtyX1_, x1);
    dirtyY0_ = std::min(dirtyY0_, y0);
    dirtyY1_ = std::max(dirtyY1_, y1);
    const std::uint64_t bit = std::uint64_t{1} << i;
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        grid_[static_cast<std::size_t>(cy) * kGridDim +
              static_cast<std::size_t>(cx)] |= bit;
      }
    }
  }
}

Track EbmsTracker::trackOf(int i) const {
  const auto idx = static_cast<std::size_t>(i);
  Track t;
  t.id = id_[idx];
  t.box = boxOf(i);
  t.velocity = Vec2f{velX_[idx], velY_[idx]};  // px/s
  t.hits = static_cast<int>(std::min<std::uint64_t>(
      support_[idx], std::numeric_limits<int>::max()));
  return t;
}

void EbmsTracker::visibleTracksInto(Tracks& out) const {
  out.clear();
  const auto minSupport =
      static_cast<std::uint64_t>(config_.visibilitySupport);
  for (int i = 0; i < count_; ++i) {
    if (support_[static_cast<std::size_t>(i)] < minSupport) {
      continue;
    }
    out.push_back(trackOf(i));
  }
}

void EbmsTracker::allClustersInto(Tracks& out) const {
  out.clear();
  for (int i = 0; i < count_; ++i) {
    out.push_back(trackOf(i));
  }
}

Tracks EbmsTracker::visibleTracks() const {
  Tracks out;
  visibleTracksInto(out);
  return out;
}

Tracks EbmsTracker::allClusters() const {
  Tracks out;
  allClustersInto(out);
  return out;
}

}  // namespace ebbiot
