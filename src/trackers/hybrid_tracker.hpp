// Hybrid tracker back end — Ussa et al., arXiv:2007.11404.
//
// The hybrid framework keeps EBBIOT's cheap overlap test for frame-to-
// frame association (an object overlaps itself between frames at tF) but
// replaces the OT's hand-rolled velocity bookkeeping with a constant-
// velocity Kalman filter per track: matches become KF measurement
// updates, and unmatched tracks *coast on the KF prediction* with their
// velocity state retained — the behaviour that carries tracks through
// occlusions and proposal dropouts without the OT's explicit
// trajectory-crossing machinery.
//
// Per frame, with proposals P_j and tracks T_i:
//   1. predict:   every track's KF time update moves its centroid;
//   2. associate: predicted boxes vs proposals by overlap fraction
//                 (greedy, largest intersection first, one-to-one);
//   3. absorb:    leftover proposals that still overlap a matched track's
//                 prediction are unioned into its measurement
//                 (fragmentation repair via the track's history);
//   4. update:    matched tracks take a KF update at the measured
//                 centroid + EMA size smoothing;
//   5. coast:     unmatched tracks keep their KF prediction (velocity
//                 retained), die after maxMisses or off frame;
//   6. seed:      unmatched proposals claim free slots (NT bound).
//
// Exposed as a FramePipelineTraits specialisation ("Hybrid") so it rides
// behind the shared FrameFrontEnd like every other back end.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/op_counter.hpp"
#include "src/detect/region.hpp"
#include "src/trackers/kalman.hpp"
#include "src/trackers/track.hpp"

namespace ebbiot {

struct HybridTrackerConfig {
  int maxTrackers = 8;          ///< NT, matched to the OT for fairness
  float matchFraction = 0.15F;  ///< overlap fraction declaring a match
  KalmanConfig filter;          ///< centroid KF parameters
  float sizeSmoothing = 0.6F;   ///< EMA weight of previous size
  /// Fragment-absorption guard, as in the OT: a leftover proposal is only
  /// unioned into a matched track's measurement while the union stays
  /// within this factor of the predicted dimensions (+ margin).
  float maxUnionGrowth = 1.5F;
  float unionGrowthMarginPx = 8.0F;
  int maxMisses = 3;            ///< coast budget before the slot is freed
  int minHitsToReport = 3;
  float minSeedArea = 12.0F;
  int frameWidth = 240;
  int frameHeight = 180;
};

class HybridTracker {
 public:
  /// Config type consumed by this back end (used by FramePipeline).
  using Config = HybridTrackerConfig;

  explicit HybridTracker(const HybridTrackerConfig& config);

  /// Advance one frame with this frame's region proposals; returns the
  /// reported tracks (post-update positions).
  Tracks update(const RegionProposals& proposals);

  /// All live tracks, reported or not — for tests.
  [[nodiscard]] Tracks liveTracks() const;

  /// Number of occupied track slots.
  [[nodiscard]] int activeCount() const;

  /// Ops of the most recent update() call.
  /// ops-model: metered — sum of the OT association and KF smoothing work that ran.
  [[nodiscard]] const OpCounts& lastOps() const { return ops_; }

  [[nodiscard]] const HybridTrackerConfig& config() const { return config_; }

 private:
  struct Entry {
    Track track;
    ConstantVelocityKalman filter;
    float w = 0.0F;  ///< smoothed box size
    float h = 0.0F;
  };

  [[nodiscard]] BBox predictedBox(const Entry& entry) const;
  void refreshTrackBox(Entry& entry);

  HybridTrackerConfig config_;
  std::vector<Entry> entries_;
  std::uint32_t nextId_ = 1;
  OpCounts ops_;
};

}  // namespace ebbiot
