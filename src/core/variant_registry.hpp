// Named registry of pipeline variants.
//
// Every end-to-end pipeline the harness knows how to build self-registers
// here under a string key, so evaluations, benches and examples sweep
// *registered variants* instead of hard-coded config structs:
//
//   RunnerConfig config = makeRegistryRunnerConfig(240, 180);
//   RunResult run = runRecording(source, scene, duration, config);
//   // -> one run, every registered variant evaluated side by side.
//
// The global registry is seeded with the paper's three built-ins plus the
// back-end extensions (EBBINNOT's NN region filter, the hybrid OT+KF
// tracker, and their combination); a new pipeline paper becomes one
// `variantRegistry().add(...)` call:
//
//   variantRegistry().add(
//       "EBBIOT-cca", "CCA proposer behind the paper tracker",
//       [](const VariantContext& ctx) {
//         EbbiotPipelineConfig c;
//         c.width = ctx.width; c.height = ctx.height;
//         c.rpnKind = RpnKind::kCca;
//         return std::make_unique<EbbiotPipeline>(c, "EBBIOT-cca");
//       });
//
// Benches that sweep ad-hoc parameter grids build a *local* VariantRegistry
// (optionally seeded via registerBuiltinVariants) and point
// RunnerConfig::registry at it, leaving the global registry untouched.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/pipeline.hpp"

namespace ebbiot {

/// Everything a variant builder may depend on at build time.  Kept small
/// on purpose: variants own their full config; the context only carries
/// what must match the recording being evaluated.
struct VariantContext {
  int width = 240;   ///< sensor width of the recording
  int height = 180;  ///< sensor height of the recording
};

/// Builds one pipeline instance for the given context.  The pipeline's
/// name() must equal the variant's registry key.
using VariantBuilder =
    std::function<std::unique_ptr<Pipeline>(const VariantContext&)>;

struct VariantInfo {
  std::string key;          ///< unique name, also the Pipeline::name()
  std::string description;  ///< one-liner for bench/example tables
  VariantBuilder build;
};

/// Ordered, key-unique collection of pipeline variants.
class VariantRegistry {
 public:
  /// An empty registry (for bench-local sweeps and tests).  The process-
  /// wide instance seeded with the built-ins is variantRegistry().
  VariantRegistry() = default;

  /// Register a variant; throws LogicError on a duplicate key, empty key,
  /// or null builder.
  void add(std::string key, std::string description, VariantBuilder build);

  [[nodiscard]] bool contains(std::string_view key) const;
  /// The variant with this key, or nullptr.
  [[nodiscard]] const VariantInfo* find(std::string_view key) const;
  /// All variants in registration order.
  [[nodiscard]] const std::vector<VariantInfo>& variants() const {
    return variants_;
  }
  /// All keys in registration order.
  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t size() const { return variants_.size(); }

  /// Build the keyed variant; throws LogicError on an unknown key, and if
  /// the built pipeline's name() does not equal the key.
  [[nodiscard]] std::unique_ptr<Pipeline> build(
      std::string_view key, const VariantContext& context) const;

 private:
  std::vector<VariantInfo> variants_;
};

/// Register the paper's built-ins and the back-end extension variants
/// into `registry`: EBBIOT, EBBI+KF, EBMS, EBBINNOT (NN region filter),
/// Hybrid (OT association + KF coasting), EBBINNOT-Hybrid (both), and
/// EBBIOT-CCA (the future-work connected-components proposer).
/// Throws if any of those keys is already present.
void registerBuiltinVariants(VariantRegistry& registry);

/// The process-wide registry, seeded with registerBuiltinVariants() on
/// first use.
[[nodiscard]] VariantRegistry& variantRegistry();

}  // namespace ebbiot
