#include "src/core/variant_registry.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"

namespace ebbiot {

void VariantRegistry::add(std::string key, std::string description,
                          VariantBuilder build) {
  EBBIOT_ASSERT(!key.empty());
  EBBIOT_ASSERT(build != nullptr);
  EBBIOT_ASSERT(!contains(key));
  variants_.push_back(
      VariantInfo{std::move(key), std::move(description), std::move(build)});
}

bool VariantRegistry::contains(std::string_view key) const {
  return find(key) != nullptr;
}

const VariantInfo* VariantRegistry::find(std::string_view key) const {
  const auto it =
      std::find_if(variants_.begin(), variants_.end(),
                   [&](const VariantInfo& v) { return v.key == key; });
  return it != variants_.end() ? &*it : nullptr;
}

std::vector<std::string> VariantRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const VariantInfo& v : variants_) {
    out.push_back(v.key);
  }
  return out;
}

std::unique_ptr<Pipeline> VariantRegistry::build(
    std::string_view key, const VariantContext& context) const {
  const VariantInfo* info = find(key);
  EBBIOT_ASSERT(info != nullptr && "unknown variant key");
  std::unique_ptr<Pipeline> pipeline = info->build(context);
  EBBIOT_ASSERT(pipeline != nullptr);
  EBBIOT_ASSERT(pipeline->name() == info->key &&
                "variant pipeline name must equal its registry key");
  return pipeline;
}

namespace {

EbbiotPipelineConfig ebbiotConfigFor(const VariantContext& ctx) {
  EbbiotPipelineConfig config;
  config.width = ctx.width;
  config.height = ctx.height;
  return config;
}

HybridPipelineConfig hybridConfigFor(const VariantContext& ctx) {
  HybridPipelineConfig config;
  config.width = ctx.width;
  config.height = ctx.height;
  return config;
}

}  // namespace

void registerBuiltinVariants(VariantRegistry& registry) {
  registry.add(
      "EBBIOT", "the paper: EBBI -> median -> RPN -> overlap tracker",
      [](const VariantContext& ctx) {
        return std::make_unique<EbbiotPipeline>(ebbiotConfigFor(ctx));
      });
  registry.add(
      "EBBI+KF", "comparison tracker: same front end, Kalman back end",
      [](const VariantContext& ctx) {
        KalmanPipelineConfig config;
        config.width = ctx.width;
        config.height = ctx.height;
        return std::make_unique<KalmanPipeline>(config);
      });
  registry.add(
      "EBMS", "event-domain baseline: NN-filter -> mean-shift clusters",
      [](const VariantContext& ctx) {
        EbmsPipelineConfig config;
        config.nnFilter.width = ctx.width;
        config.nnFilter.height = ctx.height;
        return std::make_unique<EbmsPipeline>(config);
      });
  registry.add(
      "EBBINNOT",
      "EBBIOT + NN region filter rejecting distractor proposals "
      "(arXiv:2006.00422)",
      [](const VariantContext& ctx) {
        EbbiotPipelineConfig config = ebbiotConfigFor(ctx);
        config.regionFilter = RegionFilterConfig{};
        return std::make_unique<EbbiotPipeline>(config, "EBBINNOT");
      });
  registry.add(
      "Hybrid",
      "overlap association + Kalman coasting back end (arXiv:2007.11404)",
      [](const VariantContext& ctx) {
        return std::make_unique<HybridPipeline>(hybridConfigFor(ctx));
      });
  registry.add(
      "EBBINNOT-Hybrid",
      "NN region filter + hybrid tracker (the full Ussa et al. chain)",
      [](const VariantContext& ctx) {
        HybridPipelineConfig config = hybridConfigFor(ctx);
        config.regionFilter = RegionFilterConfig{};
        return std::make_unique<HybridPipeline>(config, "EBBINNOT-Hybrid");
      });
  registry.add(
      "EBBIOT-CCA",
      "future-work proposer: full-res connected components, paper tracker",
      [](const VariantContext& ctx) {
        EbbiotPipelineConfig config = ebbiotConfigFor(ctx);
        config.rpnKind = RpnKind::kCca;
        config.cca.minComponentPixels = 6;
        return std::make_unique<EbbiotPipeline>(config, "EBBIOT-CCA");
      });
}

VariantRegistry& variantRegistry() {
  static VariantRegistry registry = [] {
    VariantRegistry seeded;
    registerBuiltinVariants(seeded);
    return seeded;
  }();
  return registry;
}

}  // namespace ebbiot
