// Shared frame-domain front end of the paper's Fig. 1 block diagram:
//
//   latched EventPacket -> EBBI build -> median filter -> region proposal
//                          (Sec. II-A)   (Sec. II-A)      (RPN or CCA)
//
// Both frame-domain pipelines (EBBIOT and EBBI+KF) consume exactly this
// chain; only their tracker back ends differ.  Extracting it into one
// class keeps the two byte-identical by construction and gives future
// back ends (EBBINNOT-style NN region filters, hybrid trackers) a single
// extension point.  Every stage's measured OpCounts are recorded for the
// Fig. 5 resource comparison.
#pragma once

#include <optional>

#include "src/common/op_counter.hpp"
#include "src/detect/cca.hpp"
#include "src/detect/histogram_rpn.hpp"
#include "src/ebbi/ebbi_builder.hpp"
#include "src/filters/median_filter.hpp"
#include "src/filters/median_filter_incremental.hpp"

namespace ebbiot {

/// Which region proposer the frame-domain front end uses.
enum class RpnKind {
  kHistogram,  ///< the paper's 1-D histogram RPN
  kCca,        ///< the future-work connected-components RPN
};

struct FrontEndConfig {
  int width = 240;
  int height = 180;
  int medianPatch = 3;  ///< p
  /// Use the row-diffing MedianFilterIncremental instead of the full
  /// per-window filter.  Bit-identical output (pinned by differential
  /// tests) and identical reported OpCounts; only wall-clock changes.
  bool incrementalMedian = false;
  RpnKind rpnKind = RpnKind::kHistogram;
  HistogramRpnConfig rpn;
  CcaConfig cca;
};

/// Measured per-stage operation counts of one front-end pass.
struct FrontEndOps {
  OpCounts ebbi;
  OpCounts medianFilter;
  OpCounts rpn;

  [[nodiscard]] OpCounts total() const { return ebbi + medianFilter + rpn; }
};

/// EBBI -> median -> RPN/CCA over one latch-readout window.
class FrameFrontEnd {
 public:
  explicit FrameFrontEnd(const FrontEndConfig& config);

  // The proposals view points into this instance's own proposer members;
  // copying would alias the source object, so front ends don't copy.
  FrameFrontEnd(const FrameFrontEnd&) = delete;
  FrameFrontEnd& operator=(const FrameFrontEnd&) = delete;

  /// Run the full chain on one latched packet; returns this window's
  /// region proposals (valid until the next process() call).
  const RegionProposals& process(const EventPacket& packet);

  /// Intermediate products of the most recent window (for examples,
  /// debugging and tests).
  [[nodiscard]] const BinaryImage& lastEbbi() const { return ebbiImage_; }
  [[nodiscard]] const BinaryImage& lastFiltered() const {
    return *filteredView_;
  }
  [[nodiscard]] const RegionProposals& lastProposals() const {
    return *proposals_;
  }
  /// ops-model: composite — sum of the stage records below, each with its own model.
  [[nodiscard]] const FrontEndOps& lastOps() const { return ops_; }

  [[nodiscard]] const FrontEndConfig& config() const { return config_; }

 private:
  FrontEndConfig config_;
  EbbiBuilder builder_;
  MedianFilter median_;
  std::optional<MedianFilterIncremental> incrementalMedian_;
  HistogramRpn rpn_;
  CcaLabeler cca_;
  BinaryImage ebbiImage_;
  BinaryImage filtered_;
  /// The active median's output: &filtered_ for the full filter, or the
  /// incremental filter's internal image (no per-frame copy either way).
  const BinaryImage* filteredView_ = &filtered_;
  /// View of the active proposer's reused output vector (empty_ before the
  /// first window) — no per-frame copy or allocation.
  const RegionProposals* proposals_ = &empty_;
  RegionProposals empty_;
  FrontEndOps ops_;
};

}  // namespace ebbiot
