// IoVT sensor-node budget model: duty cycle, energy, bandwidth, battery.
//
// The paper's motivation is node-level: "the focus of our approach is to
// make the whole system less memory intensive (thus reducing chip area)
// and less computationally complex leading to savings in energy", with
// the duty-cycled interrupt scheme of Fig. 2 letting the processor sleep
// between tF readouts, and edge processing shrinking what the radio must
// transmit.  This model turns a pipeline's per-frame op count and output
// payload into engineering quantities:
//
//   * active time/frame   = ops / (IPC * clock)
//   * duty cycle          = active time / tF
//   * processor energy    = active * P_active + sleep * P_sleep
//   * radio energy        = payload bits * E_tx
//   * battery life        = capacity / mean power
//
// Defaults are a Cortex-M-class microcontroller with a BLE-class radio —
// the platform the paper's "FPGA and microprocessors commonly used in
// IoT" remark points at.
//
// Thread compatibility: everything here is a plain value type and
// estimateNodeBudget() is a pure function of its arguments — no locks,
// no shared mutable state, nothing for -Wthread-safety to guard.  The
// planned IoVT node fleet may evaluate budgets from many worker threads
// concurrently; keep it that way (state added here would need a
// GUARDED_BY'd ebbiot::Mutex from src/common/thread_annotations.hpp).
#pragma once

#include "src/common/time.hpp"

namespace ebbiot {

struct NodePlatform {
  double clockHz = 50e6;          ///< core clock
  double opsPerCycle = 1.0;       ///< sustained abstract ops per cycle
  double activePowerMw = 12.0;    ///< core + memories while awake
  double sleepPowerUw = 4.0;      ///< deep-sleep floor (sensor stays on)
  double sensorPowerMw = 10.0;    ///< DAVIS-class sensor, always on
  double radioEnergyPerBitNj = 50.0;  ///< BLE-class transmit energy
  double batteryCapacityMwh = 6'000.0;  ///< 2000 mAh @ 3 V
};

/// What the node pushes upstream each frame.
struct NodeWorkload {
  double opsPerFrame = 0.0;       ///< pipeline computes per frame
  double txBitsPerFrame = 0.0;    ///< transmitted payload per frame
  TimeUs framePeriod = kDefaultFramePeriodUs;
};

struct NodeBudget {
  double activeSecondsPerFrame = 0.0;
  double dutyCycle = 0.0;             ///< active fraction of tF, [0, 1]
  double processorEnergyUjPerFrame = 0.0;
  double radioEnergyUjPerFrame = 0.0;
  double sensorEnergyUjPerFrame = 0.0;
  double meanPowerMw = 0.0;           ///< whole node, averaged over tF
  double bandwidthBps = 0.0;
  double batteryLifeHours = 0.0;
  /// True if the workload cannot finish within one frame period at this
  /// clock — the configuration is infeasible in real time.
  bool feasible = true;
};

/// Evaluate the budget of one workload on one platform.
[[nodiscard]] NodeBudget estimateNodeBudget(const NodePlatform& platform,
                                            const NodeWorkload& workload);

/// Payload sizes for the transmission policies compared in the benches.
/// Track list: id + box + velocity, 16 bits per field (the paper's OT
/// state lives in small registers).
[[nodiscard]] double trackPayloadBits(double meanTracks);
/// One EBBI bitmap per frame.
[[nodiscard]] double ebbiPayloadBits(int width, int height);
/// Raw AER events at `bitsPerEvent` (x, y, polarity, timestamp).
[[nodiscard]] double rawEventPayloadBits(double eventsPerFrame,
                                         int bitsPerEvent = 32);
/// A conventional 8-bit grayscale frame.
[[nodiscard]] double grayFramePayloadBits(int width, int height);

}  // namespace ebbiot
