#include "src/core/pipeline.hpp"

namespace ebbiot {

EbmsPipeline::EbmsPipeline(const EbmsPipelineConfig& config, std::string name)
    : config_(config),
      name_(std::move(name)),
      nnFilter_(config.nnFilter),
      tracker_(config.ebms) {
  if (config.refractoryPeriod > 0) {
    refractory_.emplace(RefractoryFilterConfig{
        config.nnFilter.width, config.nnFilter.height,
        config.refractoryPeriod});
  }
}

Tracks EbmsPipeline::processWindow(const EventPacket& packet) {
  // The intermediate packets and the tracks vector are reused members:
  // after one warm-up window the event-domain steady state allocates
  // nothing internally (like the frame path) — the only remaining
  // allocation is the by-value copy the uniform Pipeline interface
  // returns.
  const EventPacket* in = &packet;
  if (refractory_.has_value()) {
    refractory_->filterInto(packet, refracted_);
    in = &refracted_;
  }
  nnFilter_.filterInto(*in, filtered_);
  stageOps_.nnFilter = nnFilter_.lastOps();
  lastFilteredCount_ = filtered_.size();
  tracker_.processPacket(filtered_);
  stageOps_.ebms = tracker_.lastOps();
  tracker_.visibleTracksInto(tracks_);
  return tracks_;
}

std::unique_ptr<PipelineSnapshot> EbmsPipeline::makeSnapshot() const {
  return std::make_unique<EbmsPipelineSnapshot>(nnFilter_, tracker_,
                                                refractory_);
}

bool EbmsPipeline::saveState(PipelineSnapshot& out) const {
  auto* snap = dynamic_cast<EbmsPipelineSnapshot*>(&out);
  if (snap == nullptr) {
    return false;
  }
  snap->nnFilter = nnFilter_;
  snap->tracker = tracker_;
  snap->refractory = refractory_;
  return true;
}

bool EbmsPipeline::restoreState(const PipelineSnapshot& snapshot) {
  const auto* snap = dynamic_cast<const EbmsPipelineSnapshot*>(&snapshot);
  if (snap == nullptr ||
      snap->refractory.has_value() != refractory_.has_value()) {
    return false;
  }
  nnFilter_ = snap->nnFilter;
  tracker_ = snap->tracker;
  refractory_ = snap->refractory;
  return true;
}

void EbmsPipeline::resetState() {
  if (refractory_.has_value()) {
    refractory_->reset();
  }
  nnFilter_.reset();
  tracker_ = EbmsTracker(config_.ebms);
  stageOps_ = EbmsStageOps{};
  tracks_.clear();
  lastFilteredCount_ = 0;
}

}  // namespace ebbiot
