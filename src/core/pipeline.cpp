#include "src/core/pipeline.hpp"

namespace ebbiot {

EbmsPipeline::EbmsPipeline(const EbmsPipelineConfig& config, std::string name)
    : config_(config),
      name_(std::move(name)),
      nnFilter_(config.nnFilter),
      tracker_(config.ebms) {}

Tracks EbmsPipeline::processWindow(const EventPacket& packet) {
  const EventPacket filtered = nnFilter_.filter(packet);
  stageOps_.nnFilter = nnFilter_.lastOps();
  lastFilteredCount_ = filtered.size();
  tracker_.processPacket(filtered);
  stageOps_.ebms = tracker_.lastOps();
  return tracker_.visibleTracks();
}

}  // namespace ebbiot
