#include "src/core/pipeline.hpp"

namespace ebbiot {

EbmsPipeline::EbmsPipeline(const EbmsPipelineConfig& config, std::string name)
    : config_(config),
      name_(std::move(name)),
      nnFilter_(config.nnFilter),
      tracker_(config.ebms) {}

Tracks EbmsPipeline::processWindow(const EventPacket& packet) {
  // The filtered packet and the tracks vector are reused members: after
  // one warm-up window the event-domain steady state allocates nothing
  // internally (like the frame path) — the only remaining allocation is
  // the by-value copy the uniform Pipeline interface returns.
  nnFilter_.filterInto(packet, filtered_);
  stageOps_.nnFilter = nnFilter_.lastOps();
  lastFilteredCount_ = filtered_.size();
  tracker_.processPacket(filtered_);
  stageOps_.ebms = tracker_.lastOps();
  tracker_.visibleTracksInto(tracks_);
  return tracks_;
}

std::unique_ptr<PipelineSnapshot> EbmsPipeline::makeSnapshot() const {
  return std::make_unique<EbmsPipelineSnapshot>(nnFilter_, tracker_);
}

bool EbmsPipeline::saveState(PipelineSnapshot& out) const {
  auto* snap = dynamic_cast<EbmsPipelineSnapshot*>(&out);
  if (snap == nullptr) {
    return false;
  }
  snap->nnFilter = nnFilter_;
  snap->tracker = tracker_;
  return true;
}

bool EbmsPipeline::restoreState(const PipelineSnapshot& snapshot) {
  const auto* snap = dynamic_cast<const EbmsPipelineSnapshot*>(&snapshot);
  if (snap == nullptr) {
    return false;
  }
  nnFilter_ = snap->nnFilter;
  tracker_ = snap->tracker;
  return true;
}

void EbmsPipeline::resetState() {
  nnFilter_.reset();
  tracker_ = EbmsTracker(config_.ebms);
  stageOps_ = EbmsStageOps{};
  tracks_.clear();
  lastFilteredCount_ = 0;
}

}  // namespace ebbiot
