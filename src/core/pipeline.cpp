#include "src/core/pipeline.hpp"

#include "src/common/error.hpp"

namespace ebbiot {
namespace {

/// Shared front end of the two frame-domain pipelines.
template <typename Rpn>
RegionProposals runFrontEnd(const EventPacket& packet, EbbiBuilder& builder,
                            MedianFilter& median, Rpn& rpn, CcaLabeler& cca,
                            RpnKind kind, BinaryImage& ebbiImage,
                            BinaryImage& filtered, StageOps& stageOps) {
  builder.buildInto(packet, ebbiImage);
  stageOps.ebbi = builder.lastOps();
  median.applyInto(ebbiImage, filtered);
  stageOps.medianFilter = median.lastOps();
  RegionProposals proposals;
  if (kind == RpnKind::kHistogram) {
    proposals = rpn.propose(filtered);
    stageOps.rpn = rpn.lastOps();
  } else {
    proposals = cca.propose(filtered);
    stageOps.rpn = cca.lastOps();
  }
  return proposals;
}

}  // namespace

EbbiotPipeline::EbbiotPipeline(const EbbiotPipelineConfig& config)
    : config_(config),
      builder_(config.width, config.height),
      median_(config.medianPatch),
      rpn_(config.rpn),
      cca_(config.cca),
      tracker_([&config] {
        OverlapTrackerConfig c = config.tracker;
        c.frameWidth = config.width;
        c.frameHeight = config.height;
        return c;
      }()),
      ebbiImage_(config.width, config.height),
      filtered_(config.width, config.height) {}

Tracks EbbiotPipeline::processWindow(const EventPacket& packet) {
  proposals_ = runFrontEnd(packet, builder_, median_, rpn_, cca_,
                           config_.rpnKind, ebbiImage_, filtered_, stageOps_);
  Tracks tracks = tracker_.update(proposals_);
  stageOps_.tracker = tracker_.lastOps();
  return tracks;
}

KalmanPipeline::KalmanPipeline(const KalmanPipelineConfig& config)
    : config_(config),
      builder_(config.width, config.height),
      median_(config.medianPatch),
      rpn_(config.rpn),
      cca_(config.cca),
      tracker_([&config] {
        KalmanTrackerConfig c = config.tracker;
        c.frameWidth = config.width;
        c.frameHeight = config.height;
        return c;
      }()),
      ebbiImage_(config.width, config.height),
      filtered_(config.width, config.height) {}

Tracks KalmanPipeline::processWindow(const EventPacket& packet) {
  proposals_ = runFrontEnd(packet, builder_, median_, rpn_, cca_,
                           config_.rpnKind, ebbiImage_, filtered_, stageOps_);
  Tracks tracks = tracker_.update(proposals_);
  stageOps_.tracker = tracker_.lastOps();
  return tracks;
}

EbmsPipeline::EbmsPipeline(const EbmsPipelineConfig& config)
    : config_(config), nnFilter_(config.nnFilter), tracker_(config.ebms) {}

Tracks EbmsPipeline::processWindow(const EventPacket& packet) {
  const EventPacket filtered = nnFilter_.filter(packet);
  stageOps_.nnFilter = nnFilter_.lastOps();
  lastFilteredCount_ = filtered.size();
  tracker_.processPacket(filtered);
  stageOps_.ebms = tracker_.lastOps();
  return tracker_.visibleTracks();
}

}  // namespace ebbiot
