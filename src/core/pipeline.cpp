#include "src/core/pipeline.hpp"

namespace ebbiot {

EbmsPipeline::EbmsPipeline(const EbmsPipelineConfig& config, std::string name)
    : config_(config),
      name_(std::move(name)),
      nnFilter_(config.nnFilter),
      tracker_(config.ebms) {}

Tracks EbmsPipeline::processWindow(const EventPacket& packet) {
  // The filtered packet and the tracks vector are reused members: after
  // one warm-up window the event-domain steady state allocates nothing
  // internally (like the frame path) — the only remaining allocation is
  // the by-value copy the uniform Pipeline interface returns.
  nnFilter_.filterInto(packet, filtered_);
  stageOps_.nnFilter = nnFilter_.lastOps();
  lastFilteredCount_ = filtered_.size();
  tracker_.processPacket(filtered_);
  stageOps_.ebms = tracker_.lastOps();
  tracker_.visibleTracksInto(tracks_);
  return tracks_;
}

}  // namespace ebbiot
