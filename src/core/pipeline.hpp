// The three end-to-end pipelines compared in the paper.
//
//   EbbiotPipeline  (Fig. 1):  EBBI -> median filter -> histogram RPN
//                              -> overlap tracker        [the contribution]
//   KalmanPipeline  ("EBBI+KF"): same front end, Kalman tracker back end
//   EbmsPipeline    (event-domain baseline): NN-filt -> EBMS clusters
//
// The frame-domain pipelines consume latch-readout packets (one event per
// pixel per window — the sensor-as-memory scheme of Fig. 2); the EBMS
// pipeline consumes the full event stream, as in the paper's comparison.
// Every stage's measured OpCounts are exposed for the Fig. 5 comparison.
#pragma once

#include <optional>

#include "src/common/op_counter.hpp"
#include "src/detect/cca.hpp"
#include "src/detect/histogram_rpn.hpp"
#include "src/ebbi/ebbi_builder.hpp"
#include "src/filters/median_filter.hpp"
#include "src/filters/nn_filter.hpp"
#include "src/trackers/ebms.hpp"
#include "src/trackers/kalman.hpp"
#include "src/trackers/overlap_tracker.hpp"

namespace ebbiot {

/// Which region proposer the frame-domain pipelines use.
enum class RpnKind {
  kHistogram,  ///< the paper's 1-D histogram RPN
  kCca,        ///< the future-work connected-components RPN
};

struct EbbiotPipelineConfig {
  int width = 240;
  int height = 180;
  int medianPatch = 3;  ///< p
  RpnKind rpnKind = RpnKind::kHistogram;
  HistogramRpnConfig rpn;
  CcaConfig cca;
  OverlapTrackerConfig tracker;
};

/// Per-stage measured operation counts for one frame.
struct StageOps {
  OpCounts ebbi;
  OpCounts medianFilter;
  OpCounts rpn;
  OpCounts tracker;

  [[nodiscard]] OpCounts total() const {
    return ebbi + medianFilter + rpn + tracker;
  }
};

class EbbiotPipeline {
 public:
  explicit EbbiotPipeline(const EbbiotPipelineConfig& config);

  /// Process one latch-readout window; returns reported tracks.
  Tracks processWindow(const EventPacket& packet);

  /// Intermediate products of the most recent window (for examples,
  /// debugging and tests).
  [[nodiscard]] const BinaryImage& lastEbbi() const { return ebbiImage_; }
  [[nodiscard]] const BinaryImage& lastFiltered() const { return filtered_; }
  [[nodiscard]] const RegionProposals& lastProposals() const {
    return proposals_;
  }
  [[nodiscard]] const StageOps& lastOps() const { return stageOps_; }

  [[nodiscard]] OverlapTracker& tracker() { return tracker_; }
  [[nodiscard]] const EbbiotPipelineConfig& config() const { return config_; }

 private:
  EbbiotPipelineConfig config_;
  EbbiBuilder builder_;
  MedianFilter median_;
  HistogramRpn rpn_;
  CcaLabeler cca_;
  OverlapTracker tracker_;
  BinaryImage ebbiImage_;
  BinaryImage filtered_;
  RegionProposals proposals_;
  StageOps stageOps_;
};

struct KalmanPipelineConfig {
  int width = 240;
  int height = 180;
  int medianPatch = 3;
  RpnKind rpnKind = RpnKind::kHistogram;
  HistogramRpnConfig rpn;
  CcaConfig cca;
  KalmanTrackerConfig tracker;
};

class KalmanPipeline {
 public:
  explicit KalmanPipeline(const KalmanPipelineConfig& config);

  Tracks processWindow(const EventPacket& packet);

  [[nodiscard]] const RegionProposals& lastProposals() const {
    return proposals_;
  }
  [[nodiscard]] const StageOps& lastOps() const { return stageOps_; }
  [[nodiscard]] KalmanTracker& tracker() { return tracker_; }
  [[nodiscard]] const KalmanPipelineConfig& config() const { return config_; }

 private:
  KalmanPipelineConfig config_;
  EbbiBuilder builder_;
  MedianFilter median_;
  HistogramRpn rpn_;
  CcaLabeler cca_;
  KalmanTracker tracker_;
  BinaryImage ebbiImage_;
  BinaryImage filtered_;
  RegionProposals proposals_;
  StageOps stageOps_;
};

struct EbmsPipelineConfig {
  NnFilterConfig nnFilter;
  EbmsConfig ebms;
};

/// Per-frame ops of the event-domain pipeline.
struct EbmsStageOps {
  OpCounts nnFilter;
  OpCounts ebms;

  [[nodiscard]] OpCounts total() const { return nnFilter + ebms; }
};

class EbmsPipeline {
 public:
  explicit EbmsPipeline(const EbmsPipelineConfig& config);

  /// Process one *stream-mode* window; returns visible clusters at the
  /// window end.
  Tracks processWindow(const EventPacket& packet);

  [[nodiscard]] const EbmsStageOps& lastOps() const { return stageOps_; }
  [[nodiscard]] std::size_t lastFilteredEventCount() const {
    return lastFilteredCount_;
  }
  [[nodiscard]] EbmsTracker& tracker() { return tracker_; }
  [[nodiscard]] const EbmsPipelineConfig& config() const { return config_; }

 private:
  EbmsPipelineConfig config_;
  NnFilter nnFilter_;
  EbmsTracker tracker_;
  EbmsStageOps stageOps_;
  std::size_t lastFilteredCount_ = 0;
};

}  // namespace ebbiot
