// The end-to-end pipelines compared in the paper, behind one interface.
//
//   EbbiotPipeline  (Fig. 1):  FrameFrontEnd -> overlap tracker  [the paper]
//   KalmanPipeline  ("EBBI+KF"): FrameFrontEnd -> Kalman tracker
//   EbmsPipeline    (event-domain baseline): NN-filt -> EBMS clusters
//   HybridPipeline  ("Hybrid", arXiv:2007.11404): FrameFrontEnd ->
//                   overlap association + Kalman coasting
//
// Any frame-domain pipeline can additionally enable the EBBINNOT-style
// NN region filter (src/detect/region_filter.hpp) between the RPN and
// the tracker via FramePipelineConfig::regionFilter; the named variants
// live in src/core/variant_registry.hpp.
//
// The frame-domain pipelines are instances of one `FramePipeline<Tracker>`
// template over the shared `FrameFrontEnd` (src/core/front_end.hpp); a new
// tracker back end plugs in by specialising `FramePipelineTraits` — no
// front-end code is duplicated.  All pipelines implement the uniform
// `Pipeline` interface (processWindow / lastOps / name / inputDomain) that
// the runner iterates over, so adding a pipeline variant to an evaluation
// is a one-line registration (see RunnerConfig::extraPipelines).
//
// The frame-domain pipelines consume latch-readout packets (one event per
// pixel per window — the sensor-as-memory scheme of Fig. 2); the EBMS
// pipeline consumes the full event stream, as in the paper's comparison.
// Every stage's measured OpCounts are exposed for the Fig. 5 comparison.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/core/front_end.hpp"
#include "src/detect/region_filter.hpp"
#include "src/filters/nn_filter.hpp"
#include "src/filters/refractory_filter.hpp"
#include "src/trackers/ebms.hpp"
#include "src/trackers/hybrid_tracker.hpp"
#include "src/trackers/kalman.hpp"
#include "src/trackers/overlap_tracker.hpp"

namespace ebbiot {

/// What a pipeline expects in processWindow().
enum class InputDomain {
  kLatchedFrame,  ///< latchReadout() packets (one event per pixel per window)
  kEventStream,   ///< the raw event stream of the window
};

/// Opaque snapshot of one pipeline's cross-window state (tracker slots,
/// event-surface history — everything that carries information from one
/// window into the next).  Obtained from Pipeline::makeSnapshot() and
/// only meaningful with pipelines of the same concrete type and config;
/// the node recovery layer (src/node/pipeline_sink.*) keeps one rolling
/// snapshot per sensor and restores it when a stream resyncs.
class PipelineSnapshot {
 public:
  virtual ~PipelineSnapshot() = default;

 protected:
  PipelineSnapshot() = default;
  PipelineSnapshot(const PipelineSnapshot&) = default;
  PipelineSnapshot& operator=(const PipelineSnapshot&) = default;
};

/// Uniform interface of every end-to-end pipeline.  The runner drives a
/// vector of these; concrete classes keep richer typed accessors for
/// tests, examples and benches.
class Pipeline {
 public:
  virtual ~Pipeline() = default;

  /// Process one window's packet; returns the reported tracks.
  virtual Tracks processWindow(const EventPacket& packet) = 0;

  /// Total measured ops of the most recent window (all stages).
  /// ops-model: composite — sum of per-stage records, each with its own model.
  [[nodiscard]] virtual OpCounts lastOps() const = 0;

  /// Display/lookup name ("EBBIOT", "EBBI+KF", "EBMS", ...).  Stats in a
  /// RunResult are keyed by this.
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Which packet flavour processWindow() expects.
  [[nodiscard]] virtual InputDomain inputDomain() const = 0;

  /// Events surviving the pipeline's event-domain noise filter in the most
  /// recent window; 0 for frame-domain pipelines (their denoising is the
  /// pixel-domain median stage).
  [[nodiscard]] virtual std::size_t lastFilteredEventCount() const {
    return 0;
  }

  /// Allocate a snapshot sized for this pipeline's cross-window state.
  /// Allocate once, then reuse it via saveState() — the save itself is
  /// an element-wise copy into existing capacity (zero steady-state
  /// allocations).  nullptr means the pipeline has no snapshot support.
  [[nodiscard]] virtual std::unique_ptr<PipelineSnapshot> makeSnapshot()
      const {
    return nullptr;
  }

  /// Copy the current cross-window state into `out` (obtained from this
  /// pipeline's makeSnapshot()).  Returns false on a snapshot-type
  /// mismatch; `out` is untouched then.
  virtual bool saveState(PipelineSnapshot& out) const {
    (void)out;
    return false;
  }

  /// Overwrite the cross-window state with one captured by saveState();
  /// subsequent windows proceed bit-identically to a pipeline that never
  /// left that state.  Returns false on a snapshot-type mismatch; state
  /// is untouched then.
  virtual bool restoreState(const PipelineSnapshot& snapshot) {
    (void)snapshot;
    return false;
  }

  /// Drop all cross-window state, as if freshly constructed with the
  /// same config.  Always supported (the recovery fallback when no
  /// usable snapshot exists).
  virtual void resetState() = 0;

 protected:
  Pipeline() = default;
  Pipeline(const Pipeline&) = default;
  Pipeline& operator=(const Pipeline&) = default;
};

/// Per-stage measured operation counts of one frame-domain window.
struct StageOps {
  FrontEndOps frontEnd;
  OpCounts regionFilter;  ///< zero unless the NN region filter is enabled
  OpCounts tracker;

  [[nodiscard]] OpCounts total() const {
    return frontEnd.total() + regionFilter + tracker;
  }
};

/// Config of a frame-domain pipeline: the shared front end plus one
/// tracker back end.  Inherits the front-end fields flat (width, height,
/// medianPatch, rpnKind, rpn, cca) so call sites read naturally.
template <typename TrackerConfig>
struct FramePipelineConfig : FrontEndConfig {
  /// EBBINNOT-style NN region filter between the RPN and the tracker;
  /// absent = proposals flow through untouched (the paper's chain).
  std::optional<RegionFilterConfig> regionFilter;
  TrackerConfig tracker;
};

/// Compile-time registration of a tracker back end for FramePipeline:
/// names the pipeline built on it.  Specialise this (and give the tracker
/// a `Config` typedef) to plug a new back end into the frame-domain
/// chain.
template <typename Tracker>
struct FramePipelineTraits;

template <>
struct FramePipelineTraits<OverlapTracker> {
  static constexpr const char* kName = "EBBIOT";
};

template <>
struct FramePipelineTraits<KalmanTracker> {
  static constexpr const char* kName = "EBBI+KF";
};

template <>
struct FramePipelineTraits<HybridTracker> {
  static constexpr const char* kName = "Hybrid";
};

/// Snapshot of a frame-domain pipeline: a copy of the tracker back end.
/// The tracker is the only stage carrying information across windows —
/// the front end's incremental median cache is rebuilt per window and
/// is bit-identical regardless of history — so restoring the tracker
/// restores the pipeline exactly.
template <typename Tracker>
struct FramePipelineSnapshot final : PipelineSnapshot {
  explicit FramePipelineSnapshot(const Tracker& t) : tracker(t) {}
  Tracker tracker;
};

/// Frame-domain pipeline: shared FrameFrontEnd plus a tracker back end.
/// Tracker must provide `Tracks update(const RegionProposals&)` and
/// `OpCounts lastOps()`, and its config `frameWidth`/`frameHeight` fields
/// (filled from the front-end geometry here).
template <typename Tracker>
class FramePipeline final : public Pipeline {
 public:
  using Traits = FramePipelineTraits<Tracker>;
  using TrackerConfig = typename Tracker::Config;
  using Config = FramePipelineConfig<TrackerConfig>;
  using Snapshot = FramePipelineSnapshot<Tracker>;

  explicit FramePipeline(const Config& config,
                         std::string name = Traits::kName)
      : config_(config),
        name_(std::move(name)),
        frontEnd_(config),
        tracker_(resolvedTrackerConfig(config)) {
    if (config.regionFilter.has_value()) {
      regionFilter_.emplace(*config.regionFilter);
    }
  }

  Tracks processWindow(const EventPacket& packet) override {
    const RegionProposals& proposals = frontEnd_.process(packet);
    stageOps_.frontEnd = frontEnd_.lastOps();
    stageOps_.regionFilter = OpCounts{};
    const RegionProposals* toTrack = &proposals;
    if (regionFilter_.has_value()) {
      accepted_ = regionFilter_->apply(frontEnd_.lastFiltered(), proposals);
      stageOps_.regionFilter = regionFilter_->lastOps();
      toTrack = &accepted_;
    }
    Tracks tracks = tracker_.update(*toTrack);
    stageOps_.tracker = tracker_.lastOps();
    return tracks;
  }

  [[nodiscard]] OpCounts lastOps() const override { return stageOps_.total(); }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] InputDomain inputDomain() const override {
    return InputDomain::kLatchedFrame;
  }

  /// Intermediate products of the most recent window (for examples,
  /// debugging and tests).
  [[nodiscard]] const BinaryImage& lastEbbi() const {
    return frontEnd_.lastEbbi();
  }
  [[nodiscard]] const BinaryImage& lastFiltered() const {
    return frontEnd_.lastFiltered();
  }
  [[nodiscard]] const RegionProposals& lastProposals() const {
    return frontEnd_.lastProposals();
  }
  /// Proposals that reached the tracker in the most recent window: the
  /// region-filter survivors, or the raw RPN output when no filter is
  /// configured.
  [[nodiscard]] const RegionProposals& lastTrackedProposals() const {
    return regionFilter_.has_value() ? accepted_ : frontEnd_.lastProposals();
  }
  [[nodiscard]] const StageOps& stageOps() const { return stageOps_; }

  [[nodiscard]] const FrameFrontEnd& frontEnd() const { return frontEnd_; }
  [[nodiscard]] const std::optional<RegionFilter>& regionFilter() const {
    return regionFilter_;
  }
  [[nodiscard]] Tracker& tracker() { return tracker_; }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] std::unique_ptr<PipelineSnapshot> makeSnapshot()
      const override {
    return std::make_unique<Snapshot>(tracker_);
  }

  bool saveState(PipelineSnapshot& out) const override {
    auto* snap = dynamic_cast<Snapshot*>(&out);
    if (snap == nullptr) {
      return false;
    }
    snap->tracker = tracker_;
    return true;
  }

  bool restoreState(const PipelineSnapshot& snapshot) override {
    const auto* snap = dynamic_cast<const Snapshot*>(&snapshot);
    if (snap == nullptr) {
      return false;
    }
    tracker_ = snap->tracker;
    return true;
  }

  void resetState() override {
    tracker_ = Tracker(resolvedTrackerConfig(config_));
    stageOps_ = StageOps{};
  }

  /// The tracker config as the pipeline constructs it: the user's tracker
  /// fields with the geometry filled in from the front end.
  [[nodiscard]] static TrackerConfig resolvedTrackerConfig(
      const Config& config) {
    TrackerConfig c = config.tracker;
    c.frameWidth = config.width;
    c.frameHeight = config.height;
    return c;
  }

 private:
  Config config_;
  std::string name_;
  FrameFrontEnd frontEnd_;
  std::optional<RegionFilter> regionFilter_;
  RegionProposals accepted_;
  Tracker tracker_;
  StageOps stageOps_;
};

using EbbiotPipelineConfig = FramePipelineConfig<OverlapTrackerConfig>;
using KalmanPipelineConfig = FramePipelineConfig<KalmanTrackerConfig>;
using HybridPipelineConfig = FramePipelineConfig<HybridTrackerConfig>;

using EbbiotPipeline = FramePipeline<OverlapTracker>;
using KalmanPipeline = FramePipeline<KalmanTracker>;
using HybridPipeline = FramePipeline<HybridTracker>;

struct EbmsPipelineConfig {
  NnFilterConfig nnFilter;
  EbmsConfig ebms;
  /// Optional per-pixel refractory stage ahead of the NN filter (bounds
  /// beta when the sensor model did not already apply one).  0 disables
  /// the stage entirely — the default pipeline shape is unchanged.
  TimeUs refractoryPeriod = 0;
};

/// Per-window ops of the event-domain pipeline.
struct EbmsStageOps {
  OpCounts nnFilter;
  OpCounts ebms;

  [[nodiscard]] OpCounts total() const { return nnFilter + ebms; }
};

/// Snapshot of the event-domain pipeline: the NN filter's event surface
/// (its pass/reject decisions depend on past windows' events), the EBMS
/// cluster state, and the refractory stage's surface when that stage is
/// enabled.
struct EbmsPipelineSnapshot final : PipelineSnapshot {
  EbmsPipelineSnapshot(const NnFilter& filter, const EbmsTracker& t,
                       std::optional<RefractoryFilter> r = std::nullopt)
      : nnFilter(filter), tracker(t), refractory(std::move(r)) {}
  NnFilter nnFilter;
  EbmsTracker tracker;
  std::optional<RefractoryFilter> refractory;
};

/// Event-domain baseline: NN-filter -> EBMS mean-shift clusters.
class EbmsPipeline final : public Pipeline {
 public:
  explicit EbmsPipeline(const EbmsPipelineConfig& config,
                        std::string name = "EBMS");

  /// Process one *stream-mode* window; returns visible clusters at the
  /// window end.
  Tracks processWindow(const EventPacket& packet) override;

  [[nodiscard]] OpCounts lastOps() const override { return stageOps_.total(); }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] InputDomain inputDomain() const override {
    return InputDomain::kEventStream;
  }
  [[nodiscard]] std::size_t lastFilteredEventCount() const override {
    return lastFilteredCount_;
  }

  [[nodiscard]] std::unique_ptr<PipelineSnapshot> makeSnapshot()
      const override;
  bool saveState(PipelineSnapshot& out) const override;
  bool restoreState(const PipelineSnapshot& snapshot) override;
  void resetState() override;

  [[nodiscard]] const EbmsStageOps& stageOps() const { return stageOps_; }
  [[nodiscard]] EbmsTracker& tracker() { return tracker_; }
  [[nodiscard]] const EbmsPipelineConfig& config() const { return config_; }

  /// Tracks of the most recent window without the interface's by-value
  /// copy (valid until the next processWindow call).
  [[nodiscard]] const Tracks& lastTracks() const { return tracks_; }

 private:
  EbmsPipelineConfig config_;
  std::string name_;
  std::optional<RefractoryFilter> refractory_;  ///< set iff period > 0
  NnFilter nnFilter_;
  EbmsTracker tracker_;
  EbmsStageOps stageOps_;
  EventPacket refracted_;  ///< reused per window, refractory stage only
  EventPacket filtered_;   ///< reused per window (zero-alloc steady state)
  Tracks tracks_;          ///< reused per window (visibleTracksInto)
  std::size_t lastFilteredCount_ = 0;
};

}  // namespace ebbiot
