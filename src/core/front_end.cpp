#include "src/core/front_end.hpp"

namespace ebbiot {

FrameFrontEnd::FrameFrontEnd(const FrontEndConfig& config)
    : config_(config),
      builder_(config.width, config.height),
      median_(config.medianPatch),
      rpn_(config.rpn),
      cca_(config.cca),
      ebbiImage_(config.width, config.height),
      // The incremental filter owns its output image, so the full-filter
      // buffer is only allocated when it will actually be written.
      filtered_(config.incrementalMedian
                    ? BinaryImage()
                    : BinaryImage(config.width, config.height)) {
  if (config.incrementalMedian) {
    incrementalMedian_.emplace(config.medianPatch);
  }
}

const RegionProposals& FrameFrontEnd::process(const EventPacket& packet) {
  builder_.buildInto(packet, ebbiImage_);
  ops_.ebbi = builder_.lastOps();
  if (incrementalMedian_.has_value()) {
    filteredView_ = &incrementalMedian_->apply(ebbiImage_);
    ops_.medianFilter = incrementalMedian_->lastOps();
  } else {
    median_.applyInto(ebbiImage_, filtered_);
    filteredView_ = &filtered_;
    ops_.medianFilter = median_.lastOps();
  }
  if (config_.rpnKind == RpnKind::kHistogram) {
    proposals_ = &rpn_.propose(*filteredView_);
    ops_.rpn = rpn_.lastOps();
  } else {
    proposals_ = &cca_.propose(*filteredView_);
    ops_.rpn = cca_.lastOps();
  }
  return *proposals_;
}

}  // namespace ebbiot
