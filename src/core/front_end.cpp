#include "src/core/front_end.hpp"

namespace ebbiot {

FrameFrontEnd::FrameFrontEnd(const FrontEndConfig& config)
    : config_(config),
      builder_(config.width, config.height),
      median_(config.medianPatch),
      rpn_(config.rpn),
      cca_(config.cca),
      ebbiImage_(config.width, config.height),
      filtered_(config.width, config.height) {}

const RegionProposals& FrameFrontEnd::process(const EventPacket& packet) {
  builder_.buildInto(packet, ebbiImage_);
  ops_.ebbi = builder_.lastOps();
  median_.applyInto(ebbiImage_, filtered_);
  ops_.medianFilter = median_.lastOps();
  if (config_.rpnKind == RpnKind::kHistogram) {
    proposals_ = &rpn_.propose(filtered_);
    ops_.rpn = rpn_.lastOps();
  } else {
    proposals_ = &cca_.propose(filtered_);
    ops_.rpn = cca_.lastOps();
  }
  return *proposals_;
}

}  // namespace ebbiot
