#include "src/core/runner.hpp"

#include <set>

#include "src/common/error.hpp"

namespace ebbiot {

RecordingResult RunResult::toRecordingResult(
    const PipelineRunStats& stats, const std::string& recordingName) const {
  RecordingResult out;
  out.name = recordingName;
  out.gtTracks = gtTracks;
  out.thresholds = thresholds;
  out.counts = stats.counts;
  return out;
}

RunnerConfig makeDefaultRunnerConfig(int width, int height) {
  RunnerConfig config;
  config.ebbiot.width = width;
  config.ebbiot.height = height;
  config.kalman.width = width;
  config.kalman.height = height;
  config.ebms.nnFilter.width = width;
  config.ebms.nnFilter.height = height;
  return config;
}

RunResult runRecording(EventSource& source, const SceneProvider& scene,
                       TimeUs duration, const RunnerConfig& config) {
  EBBIOT_ASSERT(duration > 0);
  EBBIOT_ASSERT(config.framePeriod > 0);
  EBBIOT_ASSERT(!config.iouThresholds.empty());
  EBBIOT_ASSERT(source.width() == scene.width() &&
                source.height() == scene.height());

  RunResult result;
  result.thresholds = config.iouThresholds;

  std::optional<EbbiotPipeline> ebbiotPipe;
  std::optional<KalmanPipeline> kalmanPipe;
  std::optional<EbmsPipeline> ebmsPipe;
  if (config.runEbbiot) {
    ebbiotPipe.emplace(config.ebbiot);
    result.ebbiot = PipelineRunStats{
        "EBBIOT", std::vector<PrCounts>(config.iouThresholds.size()), {}, 0};
  }
  if (config.runKalman) {
    kalmanPipe.emplace(config.kalman);
    result.kalman = PipelineRunStats{
        "EBBI+KF", std::vector<PrCounts>(config.iouThresholds.size()), {}, 0};
  }
  if (config.runEbms) {
    ebmsPipe.emplace(config.ebms);
    result.ebms = PipelineRunStats{
        "EBMS", std::vector<PrCounts>(config.iouThresholds.size()), {}, 0};
  }

  std::set<std::uint32_t> gtIds;
  double alphaSum = 0.0;
  double betaSum = 0.0;
  std::size_t activityFrames = 0;
  double filteredSum = 0.0;

  const std::size_t totalFrames =
      static_cast<std::size_t>(duration / config.framePeriod);
  const std::size_t frameLimit =
      config.maxFrames > 0 ? std::min(config.maxFrames, totalFrames)
                           : totalFrames;

  for (std::size_t frame = 0; frame < frameLimit; ++frame) {
    const EventPacket streamPacket = source.nextWindow(config.framePeriod);
    result.streamEvents += streamPacket.size();

    const GtFrame gt = annotateScene(scene, streamPacket.tEnd(),
                                     config.gtOptions);
    for (const GtBox& b : gt.boxes) {
      gtIds.insert(b.trackId);
    }
    result.gtBoxes += gt.boxes.size();

    // Latched readout for the frame-domain pipelines.
    EventPacket latched;
    if (config.runEbbiot || config.runKalman) {
      latched = latchReadout(streamPacket, source.width(), source.height());
      result.latchedEvents += latched.size();
      const FrameStats stats =
          computeFrameStats(streamPacket, source.width(), source.height());
      if (stats.activePixels > 0) {
        alphaSum += stats.alpha;
        betaSum += stats.beta;
        ++activityFrames;
      }
    }

    auto evaluate = [&](PipelineRunStats& stats, const Tracks& rawTracks) {
      // Ground truth is frame-clipped; clip reported boxes the same way
      // so objects straddling the frame edge are scored fairly.
      Tracks tracks;
      tracks.reserve(rawTracks.size());
      for (const Track& t : rawTracks) {
        Track clipped = t;
        clipped.box = clampToFrame(t.box, source.width(), source.height());
        if (!clipped.box.empty()) {
          tracks.push_back(clipped);
        }
      }
      for (std::size_t i = 0; i < config.iouThresholds.size(); ++i) {
        stats.counts[i].add(
            matchFrame(tracks, gt.boxes, config.iouThresholds[i]));
      }
      ++stats.frames;
    };

    if (ebbiotPipe) {
      const Tracks tracks = ebbiotPipe->processWindow(latched);
      result.ebbiot->totalOps += ebbiotPipe->lastOps().total();
      evaluate(*result.ebbiot, tracks);
    }
    if (kalmanPipe) {
      const Tracks tracks = kalmanPipe->processWindow(latched);
      result.kalman->totalOps += kalmanPipe->lastOps().total();
      evaluate(*result.kalman, tracks);
    }
    if (ebmsPipe) {
      const Tracks tracks = ebmsPipe->processWindow(streamPacket);
      result.ebms->totalOps += ebmsPipe->lastOps().total();
      filteredSum += static_cast<double>(ebmsPipe->lastFilteredEventCount());
      evaluate(*result.ebms, tracks);
    }
    ++result.frames;
  }

  result.gtTracks = gtIds.size();
  if (activityFrames > 0) {
    result.meanAlpha = alphaSum / static_cast<double>(activityFrames);
    result.meanBeta = betaSum / static_cast<double>(activityFrames);
  }
  if (result.frames > 0) {
    result.meanEventsPerFrame = static_cast<double>(result.streamEvents) /
                                static_cast<double>(result.frames);
    result.meanFilteredEventsPerFrame =
        filteredSum / static_cast<double>(result.frames);
  }
  return result;
}

}  // namespace ebbiot
