#include "src/core/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"

namespace ebbiot {

const PipelineRunStats* RunResult::stats(std::string_view name) const {
  const auto it =
      std::find_if(pipelines.begin(), pipelines.end(),
                   [&](const PipelineRunStats& s) { return s.name == name; });
  return it != pipelines.end() ? &*it : nullptr;
}

RecordingResult RunResult::toRecordingResult(
    const PipelineRunStats& stats, const std::string& recordingName) const {
  RecordingResult out;
  out.name = recordingName;
  out.gtTracks = gtTracks;
  out.thresholds = thresholds;
  out.counts = stats.counts;
  return out;
}

RunnerConfig makeDefaultRunnerConfig(int width, int height) {
  RunnerConfig config;
  config.ebbiot.width = width;
  config.ebbiot.height = height;
  config.kalman.width = width;
  config.kalman.height = height;
  config.ebms.nnFilter.width = width;
  config.ebms.nnFilter.height = height;
  return config;
}

RunnerConfig makeRegistryRunnerConfig(int width, int height,
                                      const VariantRegistry* registry) {
  RunnerConfig config = makeDefaultRunnerConfig(width, height);
  config.runEbbiot = false;
  config.runKalman = false;
  config.runEbms = false;
  config.registry = registry;
  config.variants =
      (registry != nullptr ? *registry : variantRegistry()).keys();
  return config;
}

std::vector<std::unique_ptr<Pipeline>> buildPipelines(
    const RunnerConfig& config) {
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  if (config.runEbbiot) {
    pipelines.push_back(std::make_unique<EbbiotPipeline>(config.ebbiot));
  }
  if (config.runKalman) {
    pipelines.push_back(std::make_unique<KalmanPipeline>(config.kalman));
  }
  if (config.runEbms) {
    pipelines.push_back(std::make_unique<EbmsPipeline>(config.ebms));
  }
  if (!config.variants.empty()) {
    const VariantRegistry& registry =
        config.registry != nullptr ? *config.registry : variantRegistry();
    // Variants share the recording's geometry; the built-in configs carry
    // it (makeDefaultRunnerConfig / makeRegistryRunnerConfig set all
    // three consistently).
    const VariantContext context{config.ebbiot.width, config.ebbiot.height};
    for (const std::string& key : config.variants) {
      pipelines.push_back(registry.build(key, context));
    }
  }
  for (const PipelineFactory& make : config.extraPipelines) {
    EBBIOT_ASSERT(make != nullptr);
    std::unique_ptr<Pipeline> pipeline = make();
    EBBIOT_ASSERT(pipeline != nullptr);
    pipelines.push_back(std::move(pipeline));
  }
  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    for (std::size_t j = i + 1; j < pipelines.size(); ++j) {
      EBBIOT_ASSERT(pipelines[i]->name() != pipelines[j]->name());
    }
  }
  return pipelines;
}

RunResult runRecording(EventSource& source, const SceneProvider& scene,
                       TimeUs duration, const RunnerConfig& config) {
  EBBIOT_ASSERT(duration > 0);
  EBBIOT_ASSERT(config.framePeriod > 0);
  EBBIOT_ASSERT(!config.iouThresholds.empty());
  EBBIOT_ASSERT(source.width() == scene.width() &&
                source.height() == scene.height());

  RunResult result;
  result.thresholds = config.iouThresholds;

  const std::vector<std::unique_ptr<Pipeline>> pipelines =
      buildPipelines(config);
  const bool anyLatched = std::any_of(
      pipelines.begin(), pipelines.end(), [](const auto& p) {
        return p->inputDomain() == InputDomain::kLatchedFrame;
      });

  result.pipelines.reserve(pipelines.size());
  for (const auto& pipeline : pipelines) {
    PipelineRunStats stats;
    stats.name = pipeline->name();
    stats.counts.resize(config.iouThresholds.size());
    result.pipelines.push_back(std::move(stats));
  }
  std::vector<double> filteredSums(pipelines.size(), 0.0);

  std::set<std::uint32_t> gtIds;
  double alphaSum = 0.0;
  double betaSum = 0.0;
  std::size_t activityFrames = 0;

  const std::size_t totalFrames =
      static_cast<std::size_t>(duration / config.framePeriod);
  const std::size_t frameLimit =
      config.maxFrames > 0 ? std::min(config.maxFrames, totalFrames)
                           : totalFrames;

  // Worker pool for the per-frame pipeline fan-out.  More threads than
  // pipelines is pointless — a frame has at most one task per pipeline.
  const int threadCount =
      std::min(ThreadPool::resolveThreadCount(config.threads),
               std::max(1, static_cast<int>(pipelines.size())));
  std::unique_ptr<ThreadPool> pool;
  if (threadCount > 1) {
    pool = std::make_unique<ThreadPool>(threadCount);
  }

  // Per-frame inputs, re-pointed every iteration so the fan-out closure —
  // and its one-time std::function conversion for the pool — can live
  // outside the frame loop instead of heap-allocating per frame.
  const EventPacket* streamPacket = nullptr;
  const EventPacket* latched = nullptr;
  const GtFrame* gt = nullptr;

  auto evaluate = [&](PipelineRunStats& stats, const Tracks& rawTracks) {
    // Ground truth is frame-clipped; clip reported boxes the same way
    // so objects straddling the frame edge are scored fairly.
    Tracks tracks;
    tracks.reserve(rawTracks.size());
    for (const Track& t : rawTracks) {
      Track clipped = t;
      clipped.box = clampToFrame(t.box, source.width(), source.height());
      if (!clipped.box.empty()) {
        tracks.push_back(clipped);
      }
    }
    for (std::size_t i = 0; i < config.iouThresholds.size(); ++i) {
      stats.counts[i].add(
          matchFrame(tracks, gt->boxes, config.iouThresholds[i]));
    }
    ++stats.frames;
  };

  // One task per pipeline: pipeline i's state, stats slot and GT match
  // are touched only by whichever worker drew index i, and each
  // pipeline's accumulation order over frames is unchanged — the
  // RunResult is identical for every thread count.
  const std::function<void(std::size_t)> processPipeline =
      [&](std::size_t i) {
        Pipeline& pipeline = *pipelines[i];
        const EventPacket& input =
            pipeline.inputDomain() == InputDomain::kLatchedFrame
                ? *latched
                : *streamPacket;
        const Tracks tracks = pipeline.processWindow(input);
        result.pipelines[i].totalOps += pipeline.lastOps();
        filteredSums[i] +=
            static_cast<double>(pipeline.lastFilteredEventCount());
        evaluate(result.pipelines[i], tracks);
      };

  for (std::size_t frame = 0; frame < frameLimit; ++frame) {
    const EventPacket frameStream = source.nextWindow(config.framePeriod);
    streamPacket = &frameStream;
    result.streamEvents += frameStream.size();

    const GtFrame frameGt = annotateScene(scene, frameStream.tEnd(),
                                          config.gtOptions);
    gt = &frameGt;
    for (const GtBox& b : frameGt.boxes) {
      gtIds.insert(b.trackId);
    }
    result.gtBoxes += frameGt.boxes.size();

    // Latched readout for the frame-domain pipelines.
    EventPacket frameLatched;
    latched = &frameLatched;
    if (anyLatched) {
      frameLatched =
          latchReadout(frameStream, source.width(), source.height());
      result.latchedEvents += frameLatched.size();
      const FrameStats stats =
          computeFrameStats(frameStream, source.width(), source.height());
      if (stats.activePixels > 0) {
        alphaSum += stats.alpha;
        betaSum += stats.beta;
        ++activityFrames;
      }
    }

    if (pool != nullptr) {
      pool->parallelFor(pipelines.size(), processPipeline);
    } else {
      for (std::size_t i = 0; i < pipelines.size(); ++i) {
        processPipeline(i);
      }
    }
    ++result.frames;
  }

  result.gtTracks = gtIds.size();
  if (activityFrames > 0) {
    result.meanAlpha = alphaSum / static_cast<double>(activityFrames);
    result.meanBeta = betaSum / static_cast<double>(activityFrames);
  }
  if (result.frames > 0) {
    result.meanEventsPerFrame = static_cast<double>(result.streamEvents) /
                                static_cast<double>(result.frames);
    for (std::size_t i = 0; i < result.pipelines.size(); ++i) {
      result.pipelines[i].filteredEventsPerFrame =
          filteredSums[i] / static_cast<double>(result.frames);
    }
  }

  // Convenience views of the built-ins.
  if (const PipelineRunStats* s = result.stats("EBBIOT")) {
    result.ebbiot = *s;
  }
  if (const PipelineRunStats* s = result.stats("EBBI+KF")) {
    result.kalman = *s;
  }
  if (const PipelineRunStats* s = result.stats("EBMS")) {
    result.ebms = *s;
    result.meanFilteredEventsPerFrame = s->filteredEventsPerFrame;
  }
  return result;
}

}  // namespace ebbiot
