#include "src/core/runner.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <set>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"

namespace ebbiot {

const PipelineRunStats* RunResult::stats(std::string_view name) const {
  const auto it =
      std::find_if(pipelines.begin(), pipelines.end(),
                   [&](const PipelineRunStats& s) { return s.name == name; });
  return it != pipelines.end() ? &*it : nullptr;
}

RecordingResult RunResult::toRecordingResult(
    const PipelineRunStats& stats, const std::string& recordingName) const {
  RecordingResult out;
  out.name = recordingName;
  out.gtTracks = gtTracks;
  out.thresholds = thresholds;
  out.counts = stats.counts;
  return out;
}

void RunnerConfig::validate() const {
  if (framePeriod <= 0) {
    throw ConfigError("RunnerConfig: framePeriod must be > 0, got " +
                      std::to_string(framePeriod));
  }
  if (iouThresholds.empty()) {
    throw ConfigError("RunnerConfig: iouThresholds must not be empty");
  }
  for (const float t : iouThresholds) {
    if (!(t >= 0.0f && t <= 1.0f)) {
      throw ConfigError("RunnerConfig: IoU threshold " + std::to_string(t) +
                        " outside [0, 1]");
    }
  }
}

RunnerConfig makeDefaultRunnerConfig(int width, int height) {
  RunnerConfig config;
  config.ebbiot.width = width;
  config.ebbiot.height = height;
  config.kalman.width = width;
  config.kalman.height = height;
  config.ebms.nnFilter.width = width;
  config.ebms.nnFilter.height = height;
  return config;
}

RunnerConfig makeRegistryRunnerConfig(int width, int height,
                                      const VariantRegistry* registry) {
  RunnerConfig config = makeDefaultRunnerConfig(width, height);
  config.runEbbiot = false;
  config.runKalman = false;
  config.runEbms = false;
  config.registry = registry;
  config.variants =
      (registry != nullptr ? *registry : variantRegistry()).keys();
  return config;
}

std::vector<std::unique_ptr<Pipeline>> buildPipelines(
    const RunnerConfig& config) {
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  if (config.runEbbiot) {
    pipelines.push_back(std::make_unique<EbbiotPipeline>(config.ebbiot));
  }
  if (config.runKalman) {
    pipelines.push_back(std::make_unique<KalmanPipeline>(config.kalman));
  }
  if (config.runEbms) {
    pipelines.push_back(std::make_unique<EbmsPipeline>(config.ebms));
  }
  if (!config.variants.empty()) {
    const VariantRegistry& registry =
        config.registry != nullptr ? *config.registry : variantRegistry();
    // Variants share the recording's geometry; the built-in configs carry
    // it (makeDefaultRunnerConfig / makeRegistryRunnerConfig set all
    // three consistently).
    const VariantContext context{config.ebbiot.width, config.ebbiot.height};
    for (const std::string& key : config.variants) {
      pipelines.push_back(registry.build(key, context));
    }
  }
  for (const PipelineFactory& make : config.extraPipelines) {
    EBBIOT_ASSERT(make != nullptr);
    std::unique_ptr<Pipeline> pipeline = make();
    EBBIOT_ASSERT(pipeline != nullptr);
    pipelines.push_back(std::move(pipeline));
  }
  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    for (std::size_t j = i + 1; j < pipelines.size(); ++j) {
      EBBIOT_ASSERT(pipelines[i]->name() != pipelines[j]->name());
    }
  }
  return pipelines;
}

RunResult runRecording(EventSource& source, const SceneProvider& scene,
                       TimeUs duration, const RunnerConfig& config) {
  config.validate();
  EBBIOT_ASSERT(duration > 0);
  EBBIOT_ASSERT(source.width() == scene.width() &&
                source.height() == scene.height());

  RunResult result;
  result.thresholds = config.iouThresholds;

  const std::vector<std::unique_ptr<Pipeline>> pipelines =
      buildPipelines(config);
  const bool anyLatched = std::any_of(
      pipelines.begin(), pipelines.end(), [](const auto& p) {
        return p->inputDomain() == InputDomain::kLatchedFrame;
      });

  // Chain-owned accumulators, promoted from comments to types.  The stage
  // graph runs without locks, so every mutable accumulator must belong to
  // exactly ONE serial task chain: FrontEndAccum is written only by the
  // front-end chain F(0) -> F(1) -> ..., chains[i] only by pipeline i's
  // chain B_i(0) -> B_i(1) -> ...  The chains synchronise through task
  // dependencies alone; the fold into the shared RunResult happens after
  // every chain has drained.  (Lock-free ownership is not expressible as
  // a GUARDED_BY annotation — the structs make it structural instead, and
  // tests/test_runner_threads.cpp pins the resulting determinism.)
  struct FrontEndAccum {
    std::uint64_t streamEvents = 0;
    std::uint64_t latchedEvents = 0;
    std::set<std::uint32_t> gtIds;
    std::size_t gtBoxes = 0;
    std::size_t frames = 0;
    double alphaSum = 0.0;
    double betaSum = 0.0;
    std::size_t activityFrames = 0;
  };
  struct PipelineAccum {
    PipelineRunStats stats;
    double filteredSum = 0.0;
  };
  FrontEndAccum front;
  std::vector<PipelineAccum> chains(pipelines.size());
  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    chains[i].stats.name = pipelines[i]->name();
    chains[i].stats.counts.resize(config.iouThresholds.size());
  }

  const std::size_t totalFrames =
      static_cast<std::size_t>(duration / config.framePeriod);
  const std::size_t frameLimit =
      config.maxFrames > 0 ? std::min(config.maxFrames, totalFrames)
                           : totalFrames;

  const std::size_t pipelineCount = pipelines.size();

  // Sensor geometry snapshot: under the stage graph the evaluation tasks
  // run concurrently with the front-end chain drawing the next window,
  // so they must not touch the (stateful) source at all.
  const int width = source.width();
  const int height = source.height();

  // One window's shared inputs.  The serial and barrier modes reuse a
  // single slot; the stage graph keeps a small ring of them so the front
  // end can run ahead of the evaluations.
  struct FrameSlot {
    EventPacket stream;
    EventPacket latched;
    GtFrame gt;
  };

  // Front end of one window: stream draw, GT annotation, latch readout,
  // stream-stat accumulation.  Strictly sequential along frames (the
  // source is stateful), so every accumulator it touches is updated in
  // frame order regardless of which worker runs it.
  auto frontEnd = [&](FrameSlot& slot) {
    slot.stream = source.nextWindow(config.framePeriod);
    front.streamEvents += slot.stream.size();

    slot.gt = annotateScene(scene, slot.stream.tEnd(), config.gtOptions);
    for (const GtBox& b : slot.gt.boxes) {
      front.gtIds.insert(b.trackId);
    }
    front.gtBoxes += slot.gt.boxes.size();

    // Latched readout for the frame-domain pipelines.
    if (anyLatched) {
      slot.latched = latchReadout(slot.stream, width, height);
      front.latchedEvents += slot.latched.size();
      const FrameStats stats = computeFrameStats(slot.stream, width, height);
      if (stats.activePixels > 0) {
        front.alphaSum += stats.alpha;
        front.betaSum += stats.beta;
        ++front.activityFrames;
      }
    }
    ++front.frames;
  };

  auto evaluate = [&](PipelineRunStats& stats, const Tracks& rawTracks,
                      const GtFrame& gt) {
    // Ground truth is frame-clipped; clip reported boxes the same way
    // so objects straddling the frame edge are scored fairly.
    Tracks tracks;
    tracks.reserve(rawTracks.size());
    for (const Track& t : rawTracks) {
      Track clipped = t;
      clipped.box = clampToFrame(t.box, width, height);
      if (!clipped.box.empty()) {
        tracks.push_back(clipped);
      }
    }
    for (std::size_t i = 0; i < config.iouThresholds.size(); ++i) {
      stats.counts[i].add(
          matchFrame(tracks, gt.boxes, config.iouThresholds[i]));
    }
    ++stats.frames;
  };

  // One task per pipeline per window: pipeline i's state, stats slot and
  // GT match are touched only by this task, tasks of the same pipeline
  // are chained in frame order, and the window inputs they read are
  // frozen until every evaluation of that window finished — the
  // RunResult is identical for every thread count and schedule.
  auto processPipeline = [&](std::size_t i, const FrameSlot& slot) {
    Pipeline& pipeline = *pipelines[i];
    PipelineAccum& accum = chains[i];
    const EventPacket& input =
        pipeline.inputDomain() == InputDomain::kLatchedFrame ? slot.latched
                                                             : slot.stream;
    const Tracks tracks = pipeline.processWindow(input);
    accum.stats.totalOps += pipeline.lastOps();
    accum.filteredSum +=
        static_cast<double>(pipeline.lastFilteredEventCount());
    evaluate(accum.stats, tracks, slot.gt);
  };

  // More threads than stages is pointless: a window has one task per
  // pipeline, plus the overlapped front end of the next window when
  // pipelining.
  const int threadCount = std::min(
      ThreadPool::resolveThreadCount(config.threads),
      std::max(1, static_cast<int>(pipelineCount) + (config.pipelined ? 1 : 0)));

  if (threadCount <= 1) {
    // Serial reference order: front end, then pipelines 0..P-1, per frame.
    FrameSlot slot;
    for (std::size_t frame = 0; frame < frameLimit; ++frame) {
      frontEnd(slot);
      for (std::size_t i = 0; i < pipelineCount; ++i) {
        processPipeline(i, slot);
      }
    }
  } else if (!config.pipelined) {
    // Per-frame fan-out with a barrier between windows.
    ThreadPool pool(threadCount);
    FrameSlot slot;
    const std::function<void(std::size_t)> task = [&](std::size_t i) {
      processPipeline(i, slot);
    };
    for (std::size_t frame = 0; frame < frameLimit; ++frame) {
      frontEnd(slot);
      pool.parallelFor(pipelineCount, task);
    }
  } else {
    // Stage graph: the front-end chain F(0) -> F(1) -> ... runs
    // concurrently with the per-pipeline chains B_i; B_i(f) depends on
    // F(f) (its inputs) and B_i(f-1) (the pipeline's own state).  A
    // ring of frame slots decouples the chains: slot f % kSlots is
    // reused only after every evaluation of frame f - kSlots completed,
    // which also bounds how far the front end runs ahead.
    ThreadPool pool(threadCount);
    constexpr std::size_t kSlots = 3;
    std::array<FrameSlot, kSlots> slots;
    std::array<std::vector<TaskHandle>, kSlots> slotUsers;
    TaskHandle frontPrev;
    std::vector<TaskHandle> pipePrev(pipelineCount);
    std::exception_ptr error;
    auto drain = [&](const TaskHandle& handle) {
      try {
        pool.wait(handle);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
    };
    for (std::size_t frame = 0; frame < frameLimit && !error; ++frame) {
      const std::size_t s = frame % kSlots;
      for (const TaskHandle& user : slotUsers[s]) {
        drain(user);
      }
      slotUsers[s].clear();
      if (error) {
        break;  // abandon remaining windows; outstanding tasks drain below
      }
      FrameSlot& slot = slots[s];
      TaskHandle front = pool.submit([&frontEnd, &slot] { frontEnd(slot); },
                                     {frontPrev});
      for (std::size_t i = 0; i < pipelineCount; ++i) {
        TaskHandle task = pool.submit(
            [&processPipeline, i, &slot] { processPipeline(i, slot); },
            {front, pipePrev[i]});
        pipePrev[i] = task;
        slotUsers[s].push_back(std::move(task));
      }
      frontPrev = std::move(front);
    }
    // Every submitted task references stack state; drain them all before
    // leaving the scope (dependencies complete regardless of errors, so
    // this cannot deadlock), then surface the first failure.
    drain(frontPrev);
    for (const TaskHandle& task : pipePrev) {
      drain(task);
    }
    for (const auto& users : slotUsers) {
      for (const TaskHandle& user : users) {
        drain(user);
      }
    }
    if (error) {
      std::rethrow_exception(error);
    }
  }

  // Every chain has drained: fold the chain-owned accumulators into the
  // shared result (the only cross-chain reads in the function).
  result.streamEvents = front.streamEvents;
  result.latchedEvents = front.latchedEvents;
  result.gtBoxes = front.gtBoxes;
  result.frames = front.frames;
  result.gtTracks = front.gtIds.size();
  if (front.activityFrames > 0) {
    result.meanAlpha =
        front.alphaSum / static_cast<double>(front.activityFrames);
    result.meanBeta =
        front.betaSum / static_cast<double>(front.activityFrames);
  }
  result.pipelines.reserve(chains.size());
  for (PipelineAccum& chain : chains) {
    result.pipelines.push_back(std::move(chain.stats));
  }
  if (result.frames > 0) {
    result.meanEventsPerFrame = static_cast<double>(result.streamEvents) /
                                static_cast<double>(result.frames);
    for (std::size_t i = 0; i < result.pipelines.size(); ++i) {
      result.pipelines[i].filteredEventsPerFrame =
          chains[i].filteredSum / static_cast<double>(result.frames);
    }
  }

  // Convenience views of the built-ins.
  if (const PipelineRunStats* s = result.stats("EBBIOT")) {
    result.ebbiot = *s;
  }
  if (const PipelineRunStats* s = result.stats("EBBI+KF")) {
    result.kalman = *s;
  }
  if (const PipelineRunStats* s = result.stats("EBMS")) {
    result.ebms = *s;
    result.meanFilteredEventsPerFrame = s->filteredEventsPerFrame;
  }
  return result;
}

}  // namespace ebbiot
