// Frame-clocked evaluation runner.
//
// Drives an EventSource window by window (period tF) through a *vector of
// pipelines* behind the uniform Pipeline interface:
//   * frame-domain pipelines (InputDomain::kLatchedFrame) receive the
//     latch readout of each window — the duty-cycled scheme of Fig. 2;
//   * event-domain pipelines (InputDomain::kEventStream) receive the raw
//     stream, as in the paper's EBMS comparison.
// Every pipeline's tracks are matched against ground truth at each window
// boundary across a sweep of IoU thresholds (Fig. 4's evaluation), and
// measured per-stage operation counts and stream statistics accumulate
// per pipeline, keyed by Pipeline::name() (the empirical side of
// Fig. 5 / Table I).
//
// The three paper pipelines are built-ins toggled by run* flags; further
// variants come in two flavours:
//   * named variants from the registry (src/core/variant_registry.hpp) —
//     `config.variants = {"EBBINNOT", "Hybrid"}`, or every registered one
//     at once via makeRegistryRunnerConfig();
//   * ad-hoc one-offs through a factory:
//       config.extraPipelines.push_back([] {
//         return std::make_unique<EbbiotPipeline>(myConfig, "EBBIOT-cca");
//       });
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/core/variant_registry.hpp"
#include "src/eval/metrics.hpp"
#include "src/events/stats.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/ground_truth.hpp"

namespace ebbiot {

/// Builds one pipeline instance; invoked once per runRecording() call.
using PipelineFactory = std::function<std::unique_ptr<Pipeline>()>;

struct RunnerConfig {
  TimeUs framePeriod = kDefaultFramePeriodUs;
  std::vector<float> iouThresholds = defaultIouSweep();
  GtOptions gtOptions;
  bool runEbbiot = true;
  bool runKalman = true;
  bool runEbms = true;
  EbbiotPipelineConfig ebbiot;
  KalmanPipelineConfig kalman;
  EbmsPipelineConfig ebms;
  /// Registry keys of named variants to evaluate alongside the built-ins
  /// (resolved against `registry`).  A key that duplicates an enabled
  /// built-in's name is rejected — disable the built-in flag instead.
  std::vector<std::string> variants;
  /// Registry the `variants` keys resolve against; nullptr = the global
  /// variantRegistry().  Benches sweeping ad-hoc grids point this at a
  /// local registry.
  const VariantRegistry* registry = nullptr;
  /// Pipeline variants beyond the named ones, evaluated under the same
  /// protocol.  Names must be unique across the run.
  std::vector<PipelineFactory> extraPipelines;
  /// Stop after this many frames even if the source has more (0 = run the
  /// full `duration` passed to runRecording).
  std::size_t maxFrames = 0;
  /// Worker threads for the pipeline fan-out: each window's packet is
  /// latched once, then the pipelines (which own all their state) are
  /// processed and ground-truth-matched concurrently, one task per
  /// pipeline, with stats written to per-pipeline slots.  The RunResult
  /// is bit-identical for every thread count; run order of the reported
  /// pipelines is unchanged.  1 = the serial loop (default); 0 = one
  /// thread per hardware thread.
  int threads = 1;
  /// Stage-graph execution (effective only when threads resolve to > 1):
  /// the front end of window N+1 — stream draw, GT annotation, latch
  /// readout — overlaps the pipeline evaluation and GT matching of
  /// window N instead of idling at a per-frame barrier.  Every
  /// accumulator is still owned by exactly one task chain (front-end
  /// chain or one pipeline's chain) and updated in frame order, so the
  /// RunResult stays bit-identical to the serial loop; pinned by
  /// tests/test_runner_threads.cpp.  false falls back to the per-frame
  /// fan-out with a barrier between windows.
  bool pipelined = true;

  /// Throws ConfigError on any nonsensical value (non-positive frame
  /// period, empty or out-of-range IoU sweep).  runRecording() calls
  /// this up front so misconfiguration fails fast, before any pipeline
  /// or stage graph is built.
  void validate() const;
};

/// Result of one pipeline over one recording.
struct PipelineRunStats {
  std::string name;
  std::vector<PrCounts> counts;  ///< parallel to RunnerConfig thresholds
  OpCounts totalOps;
  std::size_t frames = 0;
  /// Mean events surviving the pipeline's event-domain filter per window
  /// (0 for frame-domain pipelines).
  double filteredEventsPerFrame = 0.0;

  [[nodiscard]] double meanOpsPerFrame() const {
    return frames > 0 ? static_cast<double>(totalOps.total()) /
                            static_cast<double>(frames)
                      : 0.0;
  }
};

struct RunResult {
  std::vector<float> thresholds;
  /// One entry per pipeline, in run order, keyed by Pipeline::name().
  std::vector<PipelineRunStats> pipelines;
  /// The three built-ins, looked up by name — convenience views for the
  /// paper's comparisons (absent when the pipeline was disabled).
  std::optional<PipelineRunStats> ebbiot;
  std::optional<PipelineRunStats> kalman;
  std::optional<PipelineRunStats> ebms;
  std::size_t gtTracks = 0;        ///< distinct ground-truth tracks seen
  std::size_t gtBoxes = 0;         ///< total ground-truth boxes
  std::size_t frames = 0;
  std::uint64_t streamEvents = 0;  ///< raw events drawn from the source
  std::uint64_t latchedEvents = 0; ///< after latch readout
  double meanAlpha = 0.0;          ///< active-pixel fraction (latched frame)
  double meanBeta = 0.0;           ///< stream events per active pixel
  double meanEventsPerFrame = 0.0; ///< raw stream events per frame
  double meanFilteredEventsPerFrame = 0.0;  ///< after NN-filt (EBMS only)

  /// Stats of the pipeline with this name, or nullptr if it did not run.
  [[nodiscard]] const PipelineRunStats* stats(std::string_view name) const;

  /// Convert one pipeline's stats into a RecordingResult for weighted
  /// cross-recording averaging.
  [[nodiscard]] RecordingResult toRecordingResult(
      const PipelineRunStats& stats, const std::string& recordingName) const;
};

/// Instantiate every enabled pipeline of `config` (built-ins first, then
/// extraPipelines, in order).
[[nodiscard]] std::vector<std::unique_ptr<Pipeline>> buildPipelines(
    const RunnerConfig& config);

/// Run all enabled pipelines against a source+scene for `duration`.
[[nodiscard]] RunResult runRecording(EventSource& source,
                                     const SceneProvider& scene,
                                     TimeUs duration,
                                     const RunnerConfig& config);

/// Convenience: a RunnerConfig with all pipeline geometries set for the
/// given sensor size and the paper's default parameters.
[[nodiscard]] RunnerConfig makeDefaultRunnerConfig(int width, int height);

/// A RunnerConfig that evaluates *every variant registered* in `registry`
/// (default: the global registry) in one runRecording() call.  The
/// built-in flags are turned off — with the global registry the
/// built-ins still participate through their registry entries, so stats
/// stay keyed by the same names and the RunResult convenience views
/// (ebbiot/kalman/ebms) still populate.  With a *local* registry only
/// its own keys run: the convenience optionals stay empty unless the
/// registry defines those names, so look results up via stats().
[[nodiscard]] RunnerConfig makeRegistryRunnerConfig(
    int width, int height, const VariantRegistry* registry = nullptr);

}  // namespace ebbiot
