// Frame-clocked evaluation runner.
//
// Drives an EventSource window by window (period tF), feeds
//   * the latch readout of each window to the EBBIOT and EBBI+KF
//     pipelines (the duty-cycled scheme of Fig. 2), and
//   * the raw stream to the NN-filt + EBMS pipeline,
// matches every pipeline's tracks against ground truth at each window
// boundary across a sweep of IoU thresholds (Fig. 4's evaluation), and
// accumulates measured per-stage operation counts and stream statistics
// (the empirical side of Fig. 5 / Table I).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/eval/metrics.hpp"
#include "src/events/stats.hpp"
#include "src/sim/davis.hpp"
#include "src/sim/ground_truth.hpp"

namespace ebbiot {

struct RunnerConfig {
  TimeUs framePeriod = kDefaultFramePeriodUs;
  std::vector<float> iouThresholds = defaultIouSweep();
  GtOptions gtOptions;
  bool runEbbiot = true;
  bool runKalman = true;
  bool runEbms = true;
  EbbiotPipelineConfig ebbiot;
  KalmanPipelineConfig kalman;
  EbmsPipelineConfig ebms;
  /// Stop after this many frames even if the source has more (0 = run the
  /// full `duration` passed to runRecording).
  std::size_t maxFrames = 0;
};

/// Result of one pipeline over one recording.
struct PipelineRunStats {
  std::string name;
  std::vector<PrCounts> counts;  ///< parallel to RunnerConfig thresholds
  OpCounts totalOps;
  std::size_t frames = 0;

  [[nodiscard]] double meanOpsPerFrame() const {
    return frames > 0 ? static_cast<double>(totalOps.total()) /
                            static_cast<double>(frames)
                      : 0.0;
  }
};

struct RunResult {
  std::vector<float> thresholds;
  std::optional<PipelineRunStats> ebbiot;
  std::optional<PipelineRunStats> kalman;
  std::optional<PipelineRunStats> ebms;
  std::size_t gtTracks = 0;        ///< distinct ground-truth tracks seen
  std::size_t gtBoxes = 0;         ///< total ground-truth boxes
  std::size_t frames = 0;
  std::uint64_t streamEvents = 0;  ///< raw events drawn from the source
  std::uint64_t latchedEvents = 0; ///< after latch readout
  double meanAlpha = 0.0;          ///< active-pixel fraction (latched frame)
  double meanBeta = 0.0;           ///< stream events per active pixel
  double meanEventsPerFrame = 0.0; ///< raw stream events per frame
  double meanFilteredEventsPerFrame = 0.0;  ///< after NN-filt (EBMS only)

  /// Convert one pipeline's stats into a RecordingResult for weighted
  /// cross-recording averaging.
  [[nodiscard]] RecordingResult toRecordingResult(
      const PipelineRunStats& stats, const std::string& recordingName) const;
};

/// Run all enabled pipelines against a source+scene for `duration`.
[[nodiscard]] RunResult runRecording(EventSource& source,
                                     const SceneProvider& scene,
                                     TimeUs duration,
                                     const RunnerConfig& config);

/// Convenience: a RunnerConfig with all pipeline geometries set for the
/// given sensor size and the paper's default parameters.
[[nodiscard]] RunnerConfig makeDefaultRunnerConfig(int width, int height);

}  // namespace ebbiot
