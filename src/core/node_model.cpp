#include "src/core/node_model.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ebbiot {

NodeBudget estimateNodeBudget(const NodePlatform& platform,
                              const NodeWorkload& workload) {
  EBBIOT_ASSERT(platform.clockHz > 0.0 && platform.opsPerCycle > 0.0);
  EBBIOT_ASSERT(workload.framePeriod > 0);
  EBBIOT_ASSERT(workload.opsPerFrame >= 0.0);
  EBBIOT_ASSERT(workload.txBitsPerFrame >= 0.0);

  NodeBudget budget;
  const double framePeriodS = usToSeconds(workload.framePeriod);
  budget.activeSecondsPerFrame =
      workload.opsPerFrame / (platform.clockHz * platform.opsPerCycle);
  budget.dutyCycle = budget.activeSecondsPerFrame / framePeriodS;
  budget.feasible = budget.dutyCycle <= 1.0;

  const double activeS = std::min(budget.activeSecondsPerFrame, framePeriodS);
  const double sleepS = framePeriodS - activeS;
  // mW * s = mJ; report uJ.
  budget.processorEnergyUjPerFrame =
      activeS * platform.activePowerMw * 1e3 +
      sleepS * platform.sleepPowerUw / 1e3 * 1e3;
  budget.radioEnergyUjPerFrame =
      workload.txBitsPerFrame * platform.radioEnergyPerBitNj / 1e3;
  budget.sensorEnergyUjPerFrame =
      framePeriodS * platform.sensorPowerMw * 1e3;

  const double totalUj = budget.processorEnergyUjPerFrame +
                         budget.radioEnergyUjPerFrame +
                         budget.sensorEnergyUjPerFrame;
  budget.meanPowerMw = totalUj / framePeriodS / 1e3;
  budget.bandwidthBps = workload.txBitsPerFrame / framePeriodS;
  budget.batteryLifeHours =
      budget.meanPowerMw > 0.0
          ? platform.batteryCapacityMwh / budget.meanPowerMw
          : 0.0;
  return budget;
}

double trackPayloadBits(double meanTracks) {
  EBBIOT_ASSERT(meanTracks >= 0.0);
  // id, x, y, w, h, vx, vy at 16 bits each.
  return meanTracks * 7.0 * 16.0;
}

double ebbiPayloadBits(int width, int height) {
  EBBIOT_ASSERT(width > 0 && height > 0);
  return static_cast<double>(width) * height;
}

double rawEventPayloadBits(double eventsPerFrame, int bitsPerEvent) {
  EBBIOT_ASSERT(eventsPerFrame >= 0.0 && bitsPerEvent > 0);
  return eventsPerFrame * bitsPerEvent;
}

double grayFramePayloadBits(int width, int height) {
  EBBIOT_ASSERT(width > 0 && height > 0);
  return static_cast<double>(width) * height * 8.0;
}

}  // namespace ebbiot
