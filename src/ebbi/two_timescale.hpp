// Two-timescale EBBI — the paper's stated future-work extension.
//
// Section IV: slow, small objects (pedestrians) produce too few events in a
// 66 ms window to form a usable silhouette; "this can be done by a two time
// scale approach where a second frame is generated with longer exposure
// times to capture activity of humans".
//
// This builder maintains, alongside the fast frame of each tF window, a
// slow frame that is the bitwise OR of the most recent k fast frames — an
// exposure of k*tF without a second sensor readout.  A ring of the k fast
// frames makes the slow frame a sliding (not tumbling) window.
//
// Steady-state costs: the fast frame is built directly into its ring slot
// and exposed by reference (no per-window full-image copy), and the slow
// frame is updated *incrementally* — the new window is OR-ed in over its
// dirty row band only; the full k-way re-OR runs just when the evicted
// ring slot may have held pixels, which on sparse scenes (most windows
// blank) is the exception rather than the rule.
#pragma once

#include <cstddef>
#include <vector>

#include "src/ebbi/binary_image.hpp"
#include "src/ebbi/ebbi_builder.hpp"
#include "src/events/event_packet.hpp"

namespace ebbiot {

class TwoTimescaleBuilder {
 public:
  /// `slowFactor` = k: the slow frame integrates the last k fast windows.
  TwoTimescaleBuilder(int width, int height, int slowFactor);

  /// Consume one fast-window packet; updates both frames.
  void addWindow(const EventPacket& packet);

  /// Fast frame = EBBI of the most recent window only.  A reference into
  /// the ring slot the window was built into (no copy); valid until the
  /// next addWindow() call.
  [[nodiscard]] const BinaryImage& fastFrame() const {
    return ring_[fastSlot_];
  }

  /// Slow frame = OR of the last k windows (fewer while warming up).  Its
  /// row-occupancy (and hence occupiedRowSpan()) is the union of the fast
  /// frames' dirty bands, so the downstream stages' band seeding stays
  /// exact for the long-exposure frame too.
  [[nodiscard]] const BinaryImage& slowFrame() const { return slow_; }

  /// Number of windows consumed so far.
  [[nodiscard]] std::size_t windowsSeen() const { return windowsSeen_; }

  [[nodiscard]] int slowFactor() const { return slowFactor_; }

 private:
  void rebuildSlow();

  EbbiBuilder builder_;
  int slowFactor_;
  std::vector<BinaryImage> ring_;  ///< last k fast frames
  std::size_t ringNext_ = 0;
  std::size_t ringFill_ = 0;
  std::size_t fastSlot_ = 0;  ///< slot holding the most recent window
  BinaryImage slow_;
  std::size_t windowsSeen_ = 0;
};

}  // namespace ebbiot
