// Bit-packed binary image.
//
// The Event-Based Binary Image (EBBI) is the paper's central data structure:
// one bit per pixel ("only one possible event per pixel, ignoring polarity",
// Section II-A).  1 bit/pixel is also what Eq. (1)'s memory model assumes
// (M_EBBI = 2*A*B bits), so this class stores exactly A*B bits in 64-bit
// words, with popcount and word-level row access for the downsampler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/geometry.hpp"

namespace ebbiot {

class BinaryImage {
 public:
  BinaryImage() = default;

  /// width x height, all zero.
  BinaryImage(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] bool sameShape(const BinaryImage& o) const {
    return width_ == o.width_ && height_ == o.height_;
  }

  [[nodiscard]] bool get(int x, int y) const;
  void set(int x, int y, bool value);

  /// Set every pixel to 0 without reallocating.
  void clear();

  /// Number of set pixels.
  [[nodiscard]] std::size_t popcount() const;

  /// Number of set pixels within the clamped box.
  [[nodiscard]] std::size_t popcountInRegion(const BBox& region) const;

  /// True if any pixel in the clamped box is set (early-out scan).  Used by
  /// the RPN validity check for intersection regions (Section II-B).
  [[nodiscard]] bool anySetInRegion(const BBox& region) const;

  /// Bitwise OR with another image of identical shape (used by the
  /// two-timescale long-exposure frame).
  void orWith(const BinaryImage& o);

  /// Tight bounding box of the set pixels (empty when image is blank).
  [[nodiscard]] BBox boundingBoxOfSetPixels() const;

  /// Memory footprint of the pixel payload in bits (= width*height as
  /// allocated, for the Eq. (1) style accounting).
  [[nodiscard]] std::size_t payloadBits() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  friend bool operator==(const BinaryImage&, const BinaryImage&) = default;

 private:
  [[nodiscard]] std::size_t wordIndex(int x, int y) const;
  [[nodiscard]] std::uint64_t bitMask(int x) const;
  void checkBounds(int x, int y) const;

  int width_ = 0;
  int height_ = 0;
  std::size_t wordsPerRow_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ebbiot
